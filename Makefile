GO ?= go

.PHONY: build test test-race fuzz-smoke vet lint-docs bench bench-kernels bench-wire bench-pull bench-pipeline soak-smoke soak-full serve-smoke serve-full api-surface api-check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel hot path (threaded kernels, sharded aggregation, buffer
# pool), the elastic scheduler (retries, speculation, fault injection), the
# real-network layer (failure detector, chaos suite, shuffle), the wire
# codec's pooled buffers, and the multi-tenant serving plane must stay
# race-detector-clean.
test-race:
	$(GO) test -race ./internal/matrix ./internal/core ./internal/cluster ./internal/engine ./internal/distnet ./internal/shuffle ./internal/codec ./internal/serve

# Ten-second fuzz smokes: hostile bytes against the storage reader and the
# wire block decoder must come back as typed errors, never a panic or a
# runaway allocation.
fuzz-smoke:
	$(GO) test -fuzz=FuzzRead -fuzztime=10s -run '^$$' ./internal/storage
	$(GO) test -fuzz=FuzzDecodeBlock -fuzztime=10s -run '^$$' ./internal/codec
	$(GO) test -fuzz=FuzzDecodeEncodings -fuzztime=10s -run '^$$' ./internal/codec
	$(GO) test -fuzz=FuzzDecodeManifest -fuzztime=10s -run '^$$' ./internal/codec

vet:
	$(GO) vet ./...

# Every ```go fence in README.md and docs/*.md must build against the
# current API — documentation examples cannot rot silently.
lint-docs:
	$(GO) run ./cmd/lint-docs

# Exported API surface of the public packages (root, internal/engine,
# internal/distnet), dumped one sorted line per symbol to api/surface.txt.
# api-check fails if the live surface differs from the checked-in file, so
# every surface change lands as a reviewable diff.
api-surface:
	$(GO) run ./cmd/apisurface -out api/surface.txt

api-check:
	$(GO) run ./cmd/apisurface -check

# Resident-handle vs driver-materialized pipeline benchmarks, refreshing the
# checked-in trajectory file. Exits nonzero if a warm iteration moves less
# than 5x fewer driver bytes than the baseline or any result is not
# bit-identical.
bench-pipeline:
	$(GO) run ./cmd/distme-bench -pipeline -pipeline-out BENCH_pipeline.json

# Seed-vs-current kernel regression benchmarks, refreshing the checked-in
# trajectory file.
bench-kernels:
	$(GO) run ./cmd/distme-bench -kernels -kernels-out BENCH_kernels.json

# Gob-vs-codec wire benchmarks, refreshing the checked-in trajectory file.
# Exits nonzero if any decode is not bit-identical to its input, or if the
# pull data plane's warm-operand multiply fails its gates: bit-identical to
# push, and at least 5x fewer driver bytes.
bench-wire:
	$(GO) run ./cmd/distme-bench -wire -wire-out BENCH_wire.json

# The push-vs-pull data-plane comparison rides in the wire report's `pull`
# section; this alias refreshes the same artifact.
bench-pull: bench-wire

# Self-healing soak: seeded chaos workload under the autoscaler, every
# result asserted bit-identical to pre-chaos references, p99/leak/scaling
# gates enforced. The smoke profile fits a CI slot (under 90s); the full
# profile is the nightly long-horizon run with the baseline-degradation
# gate on.
soak-smoke:
	$(GO) run ./cmd/distme-bench -soak -soak-profile smoke -soak-out BENCH_soak.json

soak-full:
	$(GO) run ./cmd/distme-bench -soak -soak-profile full -soak-out BENCH_soak.json

# Multi-tenant serving-plane load test: open-loop mixed-shape jobs through
# internal/serve, refreshing the checked-in trajectory file. Exits nonzero
# if the sustain rung misses its throughput floor or p99 SLO, overload
# fails to reject (or deadlocks), the light tenant's contended p99 breaches
# its fairness bound, or goroutines leak across teardown. The smoke profile
# fits a CI slot (under 30s); full is the nightly run.
serve-smoke:
	$(GO) run ./cmd/distme-bench -serve -serve-profile smoke -serve-out BENCH_serve.json

serve-full:
	$(GO) run ./cmd/distme-bench -serve -serve-profile full -serve-out BENCH_serve.json

# Full benchmark sweep (paper tables/figures + kernels + end-to-end).
bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
