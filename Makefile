GO ?= go

.PHONY: build test test-race fuzz-smoke vet bench bench-kernels clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel hot path (threaded kernels, sharded aggregation, buffer
# pool), the elastic scheduler (retries, speculation, fault injection), and
# the real-network layer (failure detector, chaos suite, shuffle) must stay
# race-detector-clean.
test-race:
	$(GO) test -race ./internal/matrix ./internal/core ./internal/cluster ./internal/engine ./internal/distnet ./internal/shuffle

# Ten-second fuzz smoke over the storage reader: hostile bytes must come
# back as ErrBadFormat/ErrChecksum, never a panic or a runaway allocation.
fuzz-smoke:
	$(GO) test -fuzz=FuzzRead -fuzztime=10s -run '^$$' ./internal/storage

vet:
	$(GO) vet ./...

# Seed-vs-current kernel regression benchmarks, refreshing the checked-in
# trajectory file.
bench-kernels:
	$(GO) run ./cmd/distme-bench -kernels -kernels-out BENCH_kernels.json

# Full benchmark sweep (paper tables/figures + kernels + end-to-end).
bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
