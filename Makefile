GO ?= go

.PHONY: build test test-race vet bench bench-kernels clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel hot path (threaded kernels, sharded aggregation, buffer
# pool) and the elastic scheduler (retries, speculation, fault injection)
# must stay race-detector-clean.
test-race:
	$(GO) test -race ./internal/matrix ./internal/core ./internal/cluster ./internal/engine

vet:
	$(GO) vet ./...

# Seed-vs-current kernel regression benchmarks, refreshing the checked-in
# trajectory file.
bench-kernels:
	$(GO) run ./cmd/distme-bench -kernels -kernels-out BENCH_kernels.json

# Full benchmark sweep (paper tables/figures + kernels + end-to-end).
bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
