package distme

import (
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/distnet"
	"distme/internal/engine"
)

// Typed error taxonomy. Every failure mode the engine can surface maps to
// one sentinel here, so callers branch with errors.Is instead of matching
// message strings:
//
//	c, _, err := eng.MultiplyCtx(ctx, a, b, opts)
//	switch {
//	case errors.Is(err, distme.ErrTaskOOM):
//		// shrink the workload or raise θt
//	case errors.Is(err, distme.ErrCancelled):
//		// ctx was cancelled; err wraps ctx.Err()
//	case errors.Is(err, distme.ErrRetriesExhausted):
//		// a task kept failing past Config.TaskRetries
//	}
//
// The sentinels alias the internal packages' values, so errors created deep
// in the engine match them end-to-end through every layer of wrapping.
var (
	// ErrTaskOOM reports that a task's working set exceeded the per-task
	// memory budget θt — the paper's "O.O.M." outcome. Surfaced both by the
	// scheduler's admission check and by injected out-of-memory faults.
	ErrTaskOOM = cluster.ErrOutOfMemory

	// ErrNoFeasibleParams reports that no (P,Q,R) cuboid partitioning fits
	// the per-task memory budget for the given shape (Eq.(2) infeasible).
	ErrNoFeasibleParams = core.ErrInfeasible

	// ErrShapeMismatch reports non-conformable operands: inner dimensions
	// or block sizes that do not line up for the requested operation.
	ErrShapeMismatch = core.ErrShapeMismatch

	// ErrRetriesExhausted reports that a task failed on every attempt the
	// cluster's retry budget allowed (Config.TaskRetries); the final
	// attempt's error is wrapped alongside.
	ErrRetriesExhausted = cluster.ErrRetriesExhausted

	// ErrCancelled reports that a context passed to MultiplyCtx (or RunCtx)
	// was cancelled; the error wraps ctx.Err(), so errors.Is with
	// context.Canceled or context.DeadlineExceeded also matches.
	ErrCancelled = cluster.ErrCancelled

	// ErrEngineClosed reports an operation on an engine after Close.
	ErrEngineClosed = engine.ErrEngineClosed

	// ErrUnknownMethod reports a MulOptions.Method outside the defined set.
	ErrUnknownMethod = engine.ErrUnknownMethod

	// ErrExceededDisk reports intermediate data past the cluster's disk
	// capacity — the paper's "E.D.C." outcome.
	ErrExceededDisk = cluster.ErrExceededDisk

	// ErrTimeout reports a job past its wall-clock budget — the paper's
	// "T.O." outcome.
	ErrTimeout = cluster.ErrTimeout

	// ErrWorkerDead reports a real-network RPC that failed because the
	// remote worker's connection is broken (detected by the heartbeat
	// failure detector or a failed call on the distnet driver path).
	ErrWorkerDead = distnet.ErrWorkerDead

	// ErrDeadlineExceeded reports a real-network RPC abandoned past its
	// per-call deadline; errors carrying it also match
	// context.DeadlineExceeded.
	ErrDeadlineExceeded = distnet.ErrDeadlineExceeded

	// ErrNoWorkers reports a distnet driver whose live membership drained
	// to zero with local fallback disabled.
	ErrNoWorkers = distnet.ErrNoWorkers

	// ErrWorkerDraining reports an RPC refused by a worker that is
	// shutting down gracefully. The driver treats it as transient and
	// reassigns the work, so it surfaces only from direct calls against a
	// draining worker.
	ErrWorkerDraining = distnet.ErrWorkerDraining
)
