// Package distme is a fast and elastic distributed matrix computation
// engine — a from-scratch Go reproduction of "DistME: A Fast and Elastic
// Distributed Matrix Computation Engine using GPUs" (Han et al., SIGMOD
// 2019).
//
// The engine executes distributed matrix multiplication with CuboidMM,
// which partitions the I×J×K voxel space of C = A×B into P·Q·R cuboids
// chosen to minimize network communication (Q·|A| + P·|B| + R·|C|) under a
// per-task memory budget θt; it generalizes the classical BMM, CPMM and RMM
// methods, all of which the engine also implements. Local multiplication
// can run on a simulated GPU that streams subcuboids sized for the device
// budget θg through asynchronous copy/kernel pipelines (the paper's §4).
//
// Quickstart:
//
//	eng, err := distme.NewEngine(distme.EngineConfig{Cluster: distme.LaptopCluster()})
//	if err != nil { ... }
//	rng := rand.New(rand.NewSource(1))
//	a := distme.RandomDense(rng, 1024, 1024, 64)
//	b := distme.RandomDense(rng, 1024, 1024, 64)
//	c, report, err := eng.Run(context.Background(),
//		distme.PlanMul(distme.PlanVar("a"), distme.PlanVar("b")),
//		map[string]*distme.Matrix{"a": a, "b": b})
//	fmt.Println(report.Params, report.Comm)
//
// The cluster, its task-memory discipline (which reproduces the paper's
// O.O.M. / E.D.C. failure modes), the GPU device model, and the
// communication accounting are all simulated in-process, deterministic, and
// byte-exact against the paper's Table 2 cost formulas.
package distme

import (
	"io"
	"math/rand"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/engine"
	"distme/internal/gpu"
	"distme/internal/matrix"
	"distme/internal/metrics"
	"distme/internal/ml"
	"distme/internal/obs"
	"distme/internal/plan"
	"distme/internal/storage"
	"distme/internal/workload"
)

// Matrix is a distributed block matrix: a grid of dense or CSR/CSC sparse
// blocks, the unit the engine partitions, shuffles and multiplies.
type Matrix = bmat.BlockMatrix

// Engine executes distributed matrix operators against a simulated cluster.
type Engine = engine.Engine

// EngineConfig configures an Engine: cluster envelope, GPU usage, layout
// tracking, and default multiplication method.
type EngineConfig = engine.Config

// ClusterConfig is the simulated hardware envelope (nodes, slots, θt, θg,
// bandwidths, disk).
type ClusterConfig = cluster.Config

// Method selects a multiplication strategy.
type Method = engine.Method

// Strategy constants.
const (
	// MethodAuto optimizes (P,Q,R) per Eq.(2) and runs CuboidMM.
	MethodAuto = engine.MethodAuto
	// MethodBMM broadcasts the B matrix (§2.2.1).
	MethodBMM = engine.MethodBMM
	// MethodCPMM runs cross-product multiplication (§2.2.2).
	MethodCPMM = engine.MethodCPMM
	// MethodRMM runs replication-based multiplication (§2.2.3).
	MethodRMM = engine.MethodRMM
	// MethodCuboid runs CuboidMM with explicit Params.
	MethodCuboid = engine.MethodCuboid
)

// MulOptions tunes one multiplication.
type MulOptions = engine.MulOptions

// Report describes one executed multiplication: method, parameters,
// communication snapshot, GPU statistics.
type Report = engine.Report

// Params is a (P,Q,R)-cuboid partitioning.
type Params = core.Params

// Shape summarizes one multiplication for the optimizer.
type Shape = core.Shape

// GPUSpec describes the simulated device.
type GPUSpec = gpu.Spec

// GPUStats aggregates device-timeline observations (PCI-E traffic,
// utilization).
type GPUStats = gpu.Stats

// CommSnapshot is a communication-accounting snapshot.
type CommSnapshot = metrics.Snapshot

// Faults configures deterministic fault injection for chaos runs: seeded
// task crashes, injected O.O.M., straggler delays and transient
// shuffle-fetch failures. Set it on ClusterConfig.Faults; the zero value
// disables injection. Results under any fault seed are bit-identical to the
// failure-free run.
type Faults = cluster.Faults

// ElasticStats counts the fault-tolerance work of a run: task retries,
// speculative copies launched and won, shuffle-fetch retries, lineage
// recomputations and injected faults. Available per-multiply on
// Report.Elastic and cumulatively via the recorder's snapshot.
type ElasticStats = metrics.ElasticStats

// Tracer collects end-to-end spans of the engine's execution. Set one on
// EngineConfig.Tracer (or distnet's driver/worker options) to record a span
// tree per multiplication; a nil tracer disables tracing with zero overhead.
type Tracer = obs.Tracer

// Trace is a set of completed spans — Report.Trace carries one per traced
// multiplication, and Trace.WriteChromeTrace renders it as Chrome
// trace_event JSON for chrome://tracing or Perfetto.
type Trace = obs.Trace

// SpanData is the record of one completed span within a Trace.
type SpanData = obs.SpanData

// NewTracer creates a span tracer bounded at a default completed-span limit.
func NewTracer() *Tracer { return obs.NewTracer() }

// GNMFOptions configures Gaussian non-negative matrix factorization.
type GNMFOptions = ml.GNMFOptions

// GNMFResult carries the GNMF factors and tracked objectives.
type GNMFResult = ml.GNMFResult

// Dataset describes a rating dataset by dimensions and non-zero count
// (Table 3 statistics).
type Dataset = workload.Dataset

// The paper's evaluation datasets (Table 3 statistics); RatingMatrix
// generates synthetic stand-ins with identical dimensions and density.
var (
	MovieLens  = workload.MovieLens
	Netflix    = workload.Netflix
	YahooMusic = workload.YahooMusic
)

// NewEngine creates a DistME engine.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// PaperCluster returns the paper's testbed envelope: 9 nodes × 10 tasks,
// θt = 6 GB, θg = 1 GB, 10 Gbps Ethernet, 36 TB disk.
func PaperCluster() ClusterConfig { return cluster.PaperConfig() }

// LaptopCluster returns a scaled-down envelope for single-machine runs.
func LaptopCluster() ClusterConfig { return cluster.LaptopConfig() }

// PaperGPU returns the testbed device model (GTX 1080 Ti under 10-way MPS).
func PaperGPU() GPUSpec { return gpu.PaperSpec() }

// NewMatrix creates an all-zero rows×cols matrix with the given block size.
func NewMatrix(rows, cols, blockSize int) *Matrix { return bmat.New(rows, cols, blockSize) }

// RandomDense generates a dense matrix with uniform [0,1) entries.
func RandomDense(rng *rand.Rand, rows, cols, blockSize int) *Matrix {
	return bmat.RandomDense(rng, rows, cols, blockSize)
}

// RandomSparse generates a CSR-blocked matrix with uniformly scattered
// non-zeros at the given density (fraction of non-zero elements).
func RandomSparse(rng *rand.Rand, rows, cols, blockSize int, density float64) *Matrix {
	return bmat.RandomSparse(rng, rows, cols, blockSize, density)
}

// FromDense splits a dense local matrix into blocks.
func FromDense(d *matrix.Dense, blockSize int) *Matrix { return bmat.FromDense(d, blockSize) }

// Identity returns the n×n identity matrix.
func Identity(n, blockSize int) *Matrix { return bmat.Identity(n, blockSize) }

// Optimize solves the paper's Eq.(2): the (P,Q,R) minimizing communication
// cost subject to the per-task memory budget, requiring at least `slots`
// cuboids for full cluster utilization.
func Optimize(s Shape, taskMemBytes int64, slots int) (Params, error) {
	return core.Optimize(s, taskMemBytes, slots)
}

// ShapeOf summarizes C = A×B for Optimize.
func ShapeOf(a, b *Matrix) Shape { return core.ShapeOf(a, b) }

// GNMF factorizes V ≈ W×H with the multiplicative update rules of the
// paper's Appendix A, running every product through the engine.
func GNMF(e *Engine, v *Matrix, opt GNMFOptions) (*GNMFResult, error) {
	return ml.GNMF(e, v, opt)
}

// SaveMatrix writes a matrix in the engine's chunked, checksummed binary
// format (the Parquet-on-HDFS stand-in).
func SaveMatrix(w io.Writer, m *Matrix) error { return storage.Write(w, m) }

// LoadMatrix reads a matrix written by SaveMatrix.
func LoadMatrix(r io.Reader) (*Matrix, error) { return storage.Read(r) }

// SaveMatrixFile writes a matrix to a file path.
func SaveMatrixFile(path string, m *Matrix) error { return storage.WriteFile(path, m) }

// LoadMatrixFile reads a matrix from a file path.
func LoadMatrixFile(path string) (*Matrix, error) { return storage.ReadFile(path) }

// --- Query plans (§5's declarative path) -----------------------------------

// PlanExpr is a logical matrix expression built with the plan constructors.
type PlanExpr = plan.Expr

// PlanProgram is a compiled, optimized physical plan: transposes pushed to
// the leaves, scalars folded, common subexpressions shared.
type PlanProgram = plan.Program

// Expression constructors for the plan DSL.
var (
	// PlanVar references an input matrix bound at evaluation time.
	PlanVar = plan.V
	// PlanMul builds a distributed multiplication node.
	PlanMul = plan.Mul
	// PlanAdd builds an element-wise addition node.
	PlanAdd = plan.Plus
	// PlanSub builds an element-wise subtraction node.
	PlanSub = plan.Minus
	// PlanEMul builds an element-wise (Hadamard) product node.
	PlanEMul = plan.EMul
	// PlanEDiv builds a guarded element-wise division node.
	PlanEDiv = plan.EDiv
	// PlanT builds a transpose node.
	PlanT = plan.T
	// PlanScale builds a scalar-multiplication node.
	PlanScale = plan.Times
)

// CompilePlan rewrites and hash-conses an expression into a program.
func CompilePlan(e PlanExpr) (*PlanProgram, error) { return plan.Compile(e) }

// RunOption tunes one Engine.Run call.
type RunOption = engine.RunOption

// Options for Engine.Run, the consolidated context-first entry point.
var (
	// WithMethod selects the multiplication strategy for every
	// multiplication in the expression.
	WithMethod = engine.WithMethod
	// WithMulOptions applies explicit per-multiplication options.
	WithMulOptions = engine.WithMulOptions
	// WithParams fixes explicit (P,Q,R) cuboid parameters.
	WithParams = engine.WithParams
	// WithRMMTasks overrides RMM's task count.
	WithRMMTasks = engine.WithRMMTasks
	// WithGPU overrides the engine's GPU default.
	WithGPU = engine.WithGPU
)

// --- Additional algorithms ---------------------------------------------------

// GNMFPlanned runs GNMF through the plan compiler — identical results to
// GNMF, exercising the declarative §5 path.
func GNMFPlanned(e *Engine, v *Matrix, opt GNMFOptions) (*GNMFResult, error) {
	return ml.GNMFPlanned(e, v, opt)
}

// PageRankOptions configures the PageRank power iteration.
type PageRankOptions = ml.PageRankOptions

// PageRankResult carries ranks and convergence facts.
type PageRankResult = ml.PageRankResult

// PageRank runs the damped power iteration over an adjacency matrix using
// the engine's distributed multiply.
func PageRank(e *Engine, adj *Matrix, opt PageRankOptions) (*PageRankResult, error) {
	return ml.PageRank(e, adj, opt)
}

// LoadRatings parses a "user item rating [timestamp]" ratings file (the
// MovieLens/Netflix export layout) into a sparse rating matrix.
func LoadRatings(r io.Reader, blockSize int) (*Matrix, error) {
	return workload.LoadRatings(r, blockSize)
}

// ALSOptions configures alternating least squares.
type ALSOptions = ml.ALSOptions

// ALSResult carries the ALS factors and tracked objective.
type ALSResult = ml.ALSResult

// ALS factorizes V ≈ W×H by alternating least squares: distributed products
// on the engine, local Cholesky solves for the r×r normal equations.
func ALS(e *Engine, v *Matrix, opt ALSOptions) (*ALSResult, error) {
	return ml.ALS(e, v, opt)
}

// SVDOptions configures the randomized truncated SVD.
type SVDOptions = ml.SVDOptions

// SVDResult carries the truncated factorization A ≈ U·diag(S)·Vᵀ.
type SVDResult = ml.SVDResult

// SVD computes a randomized truncated singular value decomposition with
// the big products running distributed through the engine.
func SVD(e *Engine, a *Matrix, opt SVDOptions) (*SVDResult, error) {
	return ml.SVD(e, a, opt)
}
