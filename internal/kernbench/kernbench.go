// Package kernbench packages the local-multiply kernel regression
// benchmarks behind a library API so `distme-bench -kernels` can emit a
// machine-readable trajectory file (BENCH_kernels.json). Each entry pits
// the repo's original serial kernel — preserved here verbatim — against
// the current implementation on the same operands, so a checked-in report
// proves (or disproves) every optimization on the machine that ran it.
//
// The same seed baselines appear in internal/matrix's benchmark tests for
// interactive `go test -bench` use; this package exists because the paper
// workflow wants the numbers as an artifact, not terminal scrollback.
package kernbench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/obs"
)

// Result is one seed-vs-current comparison. End-to-end entries have no
// seed variant (the engine's old aggregation path no longer exists), so
// the seed fields are zero and Speedup is omitted.
type Result struct {
	Name      string  `json:"name"`
	SeedMs    float64 `json:"seed_ms_per_op,omitempty"`
	CurrentMs float64 `json:"current_ms_per_op"`
	Speedup   float64 `json:"speedup,omitempty"`
	SeedGF    float64 `json:"seed_gflops,omitempty"`
	CurrentGF float64 `json:"current_gflops,omitempty"`
}

// Report is the full benchmark run: environment fingerprint plus results.
type Report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// Run executes every kernel and end-to-end benchmark and returns the
// report. Each timing comes from testing.Benchmark, i.e. the standard
// auto-scaled b.N loop.
func Run() (*Report, error) { return RunTraced(nil) }

// RunTraced is Run with each benchmark stage recorded as a KindBench span
// on tr (nil traces nothing), so `distme-bench -kernels -trace-out` leaves
// an inspectable timeline of the run alongside the numbers.
func RunTraced(tr *obs.Tracer) (*Report, error) {
	r := &Report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	root := tr.Start(0, "kernbench", obs.KindBench)
	defer root.End()
	stage := func(name string, f func() []Result) {
		sp := tr.Start(root.ID(), name, obs.KindBench)
		res := f()
		if sp.Active() {
			for _, b := range res {
				sp.SetAttr(b.Name, fmt.Sprintf("%.3f ms/op", b.CurrentMs))
			}
		}
		sp.End()
		r.Results = append(r.Results, res...)
	}
	stage("gemm", gemmResults)
	stage("csr-mul-dense", func() []Result { return []Result{csrMulDenseResult()} })
	stage("dense-mul-csc", func() []Result { return []Result{denseMulCSCResult()} })
	stage("csr-mul-csr", csrMulCSRResults)
	sp := tr.Start(root.ID(), "end-to-end", obs.KindBench)
	e2e, err := endToEndResults()
	if err != nil {
		if sp.Active() {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
		return nil, err
	}
	if sp.Active() {
		for _, b := range e2e {
			sp.SetAttr(b.Name, fmt.Sprintf("%.3f ms/op", b.CurrentMs))
		}
	}
	sp.End()
	r.Results = append(r.Results, e2e...)
	return r, nil
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Fprint renders the report as an aligned text table.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "kernel benchmarks  %s  %s/%s  %d CPU (GOMAXPROCS=%d)  %s\n",
		r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU, r.GOMAXPROCS, r.Date)
	fmt.Fprintf(w, "%-34s %12s %12s %8s\n", "benchmark", "seed ms/op", "curr ms/op", "speedup")
	for _, res := range r.Results {
		seed, speed := "-", "-"
		if res.SeedMs > 0 {
			seed = fmt.Sprintf("%.3f", res.SeedMs)
			speed = fmt.Sprintf("%.2fx", res.Speedup)
		}
		fmt.Fprintf(w, "%-34s %12s %12.3f %8s\n", res.Name, seed, res.CurrentMs, speed)
	}
}

// compare times the two closures and assembles a Result. flops==0 skips
// the GFLOPS columns (sparse×sparse, end-to-end).
func compare(name string, flops float64, seed, current func()) Result {
	seedRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seed()
		}
	})
	curRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			current()
		}
	})
	res := Result{
		Name:      name,
		SeedMs:    msPerOp(seedRes),
		CurrentMs: msPerOp(curRes),
	}
	if res.CurrentMs > 0 {
		res.Speedup = res.SeedMs / res.CurrentMs
	}
	if flops > 0 {
		res.SeedGF = flops / (res.SeedMs * 1e6)
		res.CurrentGF = flops / (res.CurrentMs * 1e6)
	}
	return res
}

func msPerOp(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N) / 1e6
}

func gemmResults() []Result {
	var out []Result
	for _, size := range []int{128, 256, 512} {
		rng := rand.New(rand.NewSource(1))
		x := matrix.RandomDense(rng, size, size)
		y := matrix.RandomDense(rng, size, size)
		c := matrix.NewDense(size, size)
		flops := 2 * float64(size) * float64(size) * float64(size)
		out = append(out, compare(fmt.Sprintf("Gemm/%d", size), flops,
			func() { c.Zero(); seedGemm(c, x, y) },
			func() { c.Zero(); matrix.Gemm(c, x, y) }))
	}
	return out
}

func csrMulDenseResult() Result {
	rng := rand.New(rand.NewSource(2))
	x := matrix.RandomSparse(rng, 2048, 2048, 0.01)
	y := matrix.RandomDense(rng, 2048, 128)
	c := matrix.NewDense(2048, 128)
	flops := 2 * float64(x.NNZ()) * 128
	return compare("CSRMulDense/2048x2048@1%x128", flops,
		func() { c.Zero(); seedCSRMulDense(c, x, y) },
		func() { c.Zero(); matrix.CSRMulDense(c, x, y) })
}

func denseMulCSCResult() Result {
	rng := rand.New(rand.NewSource(3))
	x := matrix.RandomDense(rng, 512, 512)
	y := matrix.NewCSCFromCSR(matrix.RandomSparse(rng, 512, 512, 0.05))
	c := matrix.NewDense(512, 512)
	flops := 2 * float64(y.NNZ()) * 512
	return compare("DenseMulCSC/512x512@5%", flops,
		func() { c.Zero(); seedDenseMulCSC(c, x, y) },
		func() { c.Zero(); matrix.DenseMulCSC(c, x, y) })
}

func csrMulCSRResults() []Result {
	rng := rand.New(rand.NewSource(4))
	cases := []struct {
		name    string
		density float64
		dim     int
	}{
		{"CSRMulCSR/sparse", 0.002, 2048},
		{"CSRMulCSR/denseRows", 0.05, 512},
	}
	var out []Result
	for _, tc := range cases {
		x := matrix.RandomSparse(rng, tc.dim, tc.dim, tc.density)
		y := matrix.RandomSparse(rng, tc.dim, tc.dim, tc.density)
		out = append(out, compare(tc.name, 0,
			func() { seedCSRMulCSR(x, y) },
			func() { matrix.CSRMulCSR(x, y) }))
	}
	return out
}

// endToEndResults times the full 3-step executor (repartition → local
// multiply → aggregation) at laptop scale. There is no seed variant — the
// sequential aggregation path is the workers=1 configuration of the same
// code — so these rows track absolute trajectory only.
func endToEndResults() ([]Result, error) {
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	cl, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	env := core.Env{Cluster: cl}
	params := core.Params{P: 2, Q: 2, R: 2}

	rng := rand.New(rand.NewSource(5))
	da := bmat.RandomDense(rng, 512, 512, 128)
	db := bmat.RandomDense(rng, 512, 512, 128)
	sa := bmat.RandomSparse(rng, 1024, 1024, 128, 0.01)
	sb := bmat.RandomDense(rng, 1024, 256, 128)

	bench := func(name string, a, b *bmat.BlockMatrix) (Result, error) {
		if _, err := core.MultiplyCuboid(a, b, params, env); err != nil {
			return Result{}, fmt.Errorf("%s: %w", name, err)
		}
		res := testing.Benchmark(func(bb *testing.B) {
			for i := 0; i < bb.N; i++ {
				if _, err := core.MultiplyCuboid(a, b, params, env); err != nil {
					bb.Fatal(err)
				}
			}
		})
		return Result{Name: name, CurrentMs: msPerOp(res)}, nil
	}

	var out []Result
	for _, tc := range []struct {
		name string
		a, b *bmat.BlockMatrix
	}{
		{"MultiplyCuboid/dense512", da, db},
		{"MultiplyCuboid/sparse1024@1%x256", sa, sb},
	} {
		res, err := bench(tc.name, tc.a, tc.b)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// ---- seed kernels, preserved verbatim as regression baselines ----

// seedGemmBlock mirrors the production kernel's cache-tiling factor.
const seedGemmBlock = 64

// seedGemm is the seed's i-k-j loop with k-tiling and zero skip, serial.
func seedGemm(c, a, b *matrix.Dense) {
	k := a.ColsN
	n := b.ColsN
	for kk := 0; kk < k; kk += seedGemmBlock {
		kmax := kk + seedGemmBlock
		if kmax > k {
			kmax = k
		}
		for i := 0; i < a.RowsN; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := c.Data[i*n : (i+1)*n]
			for p := kk; p < kmax; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	}
}

// seedCSRMulDense is the seed's serial row loop, one AXPY per entry.
func seedCSRMulDense(c *matrix.Dense, a *matrix.CSR, b *matrix.Dense) {
	m := a.RowsN
	n := b.ColsN
	for i := 0; i < m; i++ {
		crow := c.Data[i*n : (i+1)*n]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			av := a.Val[p]
			brow := b.Data[a.ColIdx[p]*n : (a.ColIdx[p]+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// seedDenseMulCSC is the seed's column-outer loop with stride-n C writes.
func seedDenseMulCSC(c *matrix.Dense, a *matrix.Dense, b *matrix.CSC) {
	m := a.RowsN
	ka := a.ColsN
	n := b.ColsN
	for j := 0; j < n; j++ {
		for p := b.ColPtr[j]; p < b.ColPtr[j+1]; p++ {
			bk := b.RowIdx[p]
			bv := b.Val[p]
			for i := 0; i < m; i++ {
				c.Data[i*n+j] += a.Data[i*ka+bk] * bv
			}
		}
	}
}

// seedCSRMulCSR is the seed's serial Gustavson with pure insertion sort
// per row (the pre-hybrid behavior — quadratic on dense result rows).
func seedCSRMulCSR(a, b *matrix.CSR) *matrix.CSR {
	m := a.RowsN
	n := b.ColsN
	out := &matrix.CSR{RowsN: m, ColsN: n, RowPtr: make([]int, m+1)}
	acc := make([]float64, n)
	marker := make([]int, n)
	for i := range marker {
		marker[i] = -1
	}
	var cols []int
	for i := 0; i < m; i++ {
		cols = cols[:0]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColIdx[p]
			av := a.Val[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				j := b.ColIdx[q]
				if marker[j] != i {
					marker[j] = i
					acc[j] = 0
					cols = append(cols, j)
				}
				acc[j] += av * b.Val[q]
			}
		}
		seedInsertionSort(cols)
		for _, j := range cols {
			if acc[j] != 0 {
				out.ColIdx = append(out.ColIdx, j)
				out.Val = append(out.Val, acc[j])
			}
		}
		out.RowPtr[i+1] = len(out.Val)
	}
	return out
}

func seedInsertionSort(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
