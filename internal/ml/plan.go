package ml

import (
	"fmt"
	"math/rand"

	"distme/internal/bmat"
	"distme/internal/engine"
	"distme/internal/plan"
)

// GNMFPlans returns the two compiled update plans of the GNMF query
// (Appendix A) as the plan compiler produces them — the §5 path where a
// declarative query is rewritten into a physical plan before execution.
// The shared Wᵀ (respectively Hᵀ) subterm is computed once per update
// thanks to common-subexpression elimination.
func GNMFPlans() (hUpdate, wUpdate *plan.Program, err error) {
	wt := plan.T(plan.V("W"))
	h := plan.EMul(plan.V("H"),
		plan.EDiv(
			plan.Mul(wt, plan.V("V")),
			plan.Mul(plan.Mul(wt, plan.V("W")), plan.V("H")),
			eps))
	ht := plan.T(plan.V("H"))
	w := plan.EMul(plan.V("W"),
		plan.EDiv(
			plan.Mul(plan.V("V"), ht),
			plan.Mul(plan.V("W"), plan.Mul(plan.V("H"), ht)),
			eps))
	hUpdate, err = plan.Compile(h)
	if err != nil {
		return nil, nil, fmt.Errorf("ml: compile H update: %w", err)
	}
	wUpdate, err = plan.Compile(w)
	if err != nil {
		return nil, nil, fmt.Errorf("ml: compile W update: %w", err)
	}
	return hUpdate, wUpdate, nil
}

// GNMFPlanned runs GNMF through the plan compiler and engine — functionally
// identical to GNMF but exercising the declarative path. It returns the
// factors after opt.Iterations updates.
func GNMFPlanned(eng *engine.Engine, v *bmat.BlockMatrix, opt GNMFOptions) (*GNMFResult, error) {
	if opt.Rank <= 0 {
		return nil, fmt.Errorf("ml: GNMFPlanned: rank must be positive, got %d", opt.Rank)
	}
	if opt.Iterations <= 0 {
		return nil, fmt.Errorf("ml: GNMFPlanned: iterations must be positive, got %d", opt.Iterations)
	}
	hPlan, wPlan, err := GNMFPlans()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	w := bmat.RandomDense(rng, v.Rows, opt.Rank, v.BlockSize)
	h := bmat.RandomDense(rng, opt.Rank, v.Cols, v.BlockSize)
	res := &GNMFResult{}
	for it := 0; it < opt.Iterations; it++ {
		binds := map[string]*bmat.BlockMatrix{"V": v, "W": w, "H": h}
		h, err = hPlan.Eval(eng, binds)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMFPlanned iteration %d: H: %w", it, err)
		}
		binds["H"] = h
		w, err = wPlan.Eval(eng, binds)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMFPlanned iteration %d: W: %w", it, err)
		}
		if opt.TrackObjective {
			wh, err := eng.Multiply(w, h)
			if err != nil {
				return nil, fmt.Errorf("ml: GNMFPlanned iteration %d: objective: %w", it, err)
			}
			res.Objectives = append(res.Objectives, bmat.Sub(v, wh).FrobeniusNorm())
		}
	}
	res.W, res.H = w, h
	return res, nil
}
