package ml

import (
	"fmt"
	"math/rand"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// ALSOptions configures alternating least squares.
type ALSOptions struct {
	// Rank is the factor dimension.
	Rank int
	// Iterations is the number of alternating sweeps.
	Iterations int
	// Lambda is the Tikhonov regularizer (λ·I added to each normal
	// equation); the Netflix-prize formulation [41] in the paper's
	// references.
	Lambda float64
	// Seed initializes the factors.
	Seed int64
	// TrackObjective records the regularized squared error per iteration.
	TrackObjective bool
}

// ALSResult carries the factors and the tracked objective.
type ALSResult struct {
	// W is users×rank; H is rank×items, as in GNMF.
	W, H *bmat.BlockMatrix
	// Objectives holds ‖V − W·H‖F² + λ(‖W‖F² + ‖H‖F²) per iteration.
	Objectives []float64
}

// ALS factorizes V ≈ W×H by alternating least squares — the
// collaborative-filtering algorithm of the paper's Netflix-prize citation
// [41]. Each sweep solves, for every user row and item column, an r×r
// ridge-regularized normal equation via the Cholesky kernel:
//
//	W ← V·Hᵀ·(H·Hᵀ + λI)⁻¹      H ← (Wᵀ·W + λI)⁻¹·Wᵀ·V
//
// The large products (V·Hᵀ, Wᵀ·V) and the r×r Grams run distributed on the
// engine; the tiny r×r solves run locally — the same split a production
// implementation uses. This is the dense-V formulation (all cells are
// observations), which matches the synthetic rating matrices.
func ALS(ops Ops, v *bmat.BlockMatrix, opt ALSOptions) (*ALSResult, error) {
	if opt.Rank <= 0 {
		return nil, fmt.Errorf("ml: ALS: rank must be positive, got %d", opt.Rank)
	}
	if opt.Iterations <= 0 {
		return nil, fmt.Errorf("ml: ALS: iterations must be positive, got %d", opt.Iterations)
	}
	if opt.Lambda < 0 {
		return nil, fmt.Errorf("ml: ALS: lambda must be non-negative, got %g", opt.Lambda)
	}
	lambda := opt.Lambda
	if lambda == 0 {
		lambda = 1e-9 // keep the normal equations positive definite
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	w := bmat.RandomDense(rng, v.Rows, opt.Rank, v.BlockSize)
	h := bmat.RandomDense(rng, opt.Rank, v.Cols, v.BlockSize)
	res := &ALSResult{}

	for it := 0; it < opt.Iterations; it++ {
		// --- W update: W = V·Hᵀ · (H·Hᵀ + λI)⁻¹ ---
		ht, err := ops.Transpose(h)
		if err != nil {
			return nil, fmt.Errorf("ml: ALS iteration %d: Hᵀ: %w", it, err)
		}
		vht, err := ops.Multiply(v, ht)
		if err != nil {
			return nil, fmt.Errorf("ml: ALS iteration %d: V·Hᵀ: %w", it, err)
		}
		hht, err := ops.Multiply(h, ht)
		if err != nil {
			return nil, fmt.Errorf("ml: ALS iteration %d: H·Hᵀ: %w", it, err)
		}
		w, err = solveRight(vht, hht, lambda, v.BlockSize)
		if err != nil {
			return nil, fmt.Errorf("ml: ALS iteration %d: W solve: %w", it, err)
		}

		// --- H update: H = (Wᵀ·W + λI)⁻¹ · Wᵀ·V ---
		wt, err := ops.Transpose(w)
		if err != nil {
			return nil, fmt.Errorf("ml: ALS iteration %d: Wᵀ: %w", it, err)
		}
		wtv, err := ops.Multiply(wt, v)
		if err != nil {
			return nil, fmt.Errorf("ml: ALS iteration %d: Wᵀ·V: %w", it, err)
		}
		wtw, err := ops.Multiply(wt, w)
		if err != nil {
			return nil, fmt.Errorf("ml: ALS iteration %d: Wᵀ·W: %w", it, err)
		}
		h, err = solveLeft(wtw, wtv, lambda, v.BlockSize)
		if err != nil {
			return nil, fmt.Errorf("ml: ALS iteration %d: H solve: %w", it, err)
		}

		if opt.TrackObjective {
			wh, err := ops.Multiply(w, h)
			if err != nil {
				return nil, fmt.Errorf("ml: ALS iteration %d: objective: %w", it, err)
			}
			diff := bmat.Sub(v, wh).FrobeniusNorm()
			wn := w.FrobeniusNorm()
			hn := h.FrobeniusNorm()
			res.Objectives = append(res.Objectives, diff*diff+opt.Lambda*(wn*wn+hn*hn))
		}
	}
	res.W, res.H = w, h
	return res, nil
}

// solveRight computes X = B · (G + λI)⁻¹ for an m×r B and r×r Gram G:
// transpose to (G + λI)·Xᵀ = Bᵀ and Cholesky-solve (G symmetric).
func solveRight(b, g *bmat.BlockMatrix, lambda float64, blockSize int) (*bmat.BlockMatrix, error) {
	gd := ridge(g, lambda)
	xt, err := matrix.SolveSPD(gd, b.ToDense().Transpose())
	if err != nil {
		return nil, err
	}
	return bmat.FromDense(xt.Transpose(), blockSize), nil
}

// solveLeft computes X = (G + λI)⁻¹ · B for an r×r Gram G and r×n B.
func solveLeft(g, b *bmat.BlockMatrix, lambda float64, blockSize int) (*bmat.BlockMatrix, error) {
	gd := ridge(g, lambda)
	x, err := matrix.SolveSPD(gd, b.ToDense())
	if err != nil {
		return nil, err
	}
	return bmat.FromDense(x, blockSize), nil
}

// ridge materializes G + λI locally: the Grams are r×r, driver-sized.
func ridge(g *bmat.BlockMatrix, lambda float64) *matrix.Dense {
	d := g.ToDense()
	for i := 0; i < d.RowsN && i < d.ColsN; i++ {
		d.Set(i, i, d.At(i, i)+lambda)
	}
	return d
}
