package ml

import (
	"math/rand"
	"testing"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

func TestALSObjectiveDecreases(t *testing.T) {
	e := testEngine(t)
	rng := rand.New(rand.NewSource(190))
	v := bmat.RandomDense(rng, 24, 20, 4)
	res, err := ALS(e, v, ALSOptions{Rank: 4, Iterations: 6, Lambda: 0.1, Seed: 1, TrackObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objectives) != 6 {
		t.Fatalf("tracked %d objectives", len(res.Objectives))
	}
	// ALS monotonically decreases the regularized objective.
	for i := 1; i < len(res.Objectives); i++ {
		if res.Objectives[i] > res.Objectives[i-1]*(1+1e-9) {
			t.Fatalf("objective increased at %d: %g → %g", i, res.Objectives[i-1], res.Objectives[i])
		}
	}
}

func TestALSRecoversLowRankMatrix(t *testing.T) {
	// V built as a rank-3 product must be fit almost exactly.
	e := testEngine(t)
	rng := rand.New(rand.NewSource(191))
	wTrue := bmat.RandomDense(rng, 20, 3, 4)
	hTrue := bmat.RandomDense(rng, 3, 16, 4)
	v, err := e.Multiply(wTrue, hTrue)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ALS(e, v, ALSOptions{Rank: 3, Iterations: 15, Lambda: 1e-6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wh, err := e.Multiply(res.W, res.H)
	if err != nil {
		t.Fatal(err)
	}
	rel := bmat.Sub(v, wh).FrobeniusNorm() / v.FrobeniusNorm()
	if rel > 1e-3 {
		t.Fatalf("rank-3 ALS left relative error %g", rel)
	}
}

func TestALSBeatsGNMFOnFit(t *testing.T) {
	// With the same rank and iterations, least squares fits a dense V at
	// least as well as the multiplicative updates (it solves each step
	// exactly).
	e := testEngine(t)
	rng := rand.New(rand.NewSource(192))
	v := bmat.RandomDense(rng, 20, 20, 4)
	als, err := ALS(e, v, ALSOptions{Rank: 5, Iterations: 5, Lambda: 1e-9, Seed: 3, TrackObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	gnmf, err := GNMF(e, v, GNMFOptions{Rank: 5, Iterations: 5, Seed: 3, TrackObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	alsErr := als.Objectives[len(als.Objectives)-1]
	gnmfObj := gnmf.Objectives[len(gnmf.Objectives)-1]
	if alsErr > gnmfObj*gnmfObj*1.05 { // ALS objective is squared error
		t.Fatalf("ALS fit %g worse than GNMF %g²", alsErr, gnmfObj)
	}
}

func TestALSDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(193))
	v := bmat.RandomDense(rng, 12, 12, 4)
	r1, err := ALS(testEngine(t), v, ALSOptions{Rank: 2, Iterations: 2, Lambda: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ALS(testEngine(t), v, ALSOptions{Rank: 2, Iterations: 2, Lambda: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.W.ToDense().Equal(r2.W.ToDense()) {
		t.Fatal("ALS not deterministic for a fixed seed")
	}
}

func TestALSInvalidOptions(t *testing.T) {
	e := testEngine(t)
	rng := rand.New(rand.NewSource(194))
	v := bmat.RandomDense(rng, 8, 8, 4)
	if _, err := ALS(e, v, ALSOptions{Rank: 0, Iterations: 1}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := ALS(e, v, ALSOptions{Rank: 2, Iterations: 0}); err == nil {
		t.Fatal("0 iterations accepted")
	}
	if _, err := ALS(e, v, ALSOptions{Rank: 2, Iterations: 1, Lambda: -1}); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

func TestSVDRecoversLowRank(t *testing.T) {
	// A built as a rank-3 product: the top-3 randomized SVD must capture
	// essentially all of its energy.
	e := testEngine(t)
	rng := rand.New(rand.NewSource(195))
	u := bmat.RandomDense(rng, 30, 3, 5)
	v := bmat.RandomDense(rng, 3, 24, 5)
	a, err := e.Multiply(u, v)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SVD(e, a, SVDOptions{Rank: 3, Oversample: 4, PowerIterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.S) != 3 {
		t.Fatalf("got %d singular values", len(res.S))
	}
	// Reconstruct U·diag(S)·Vᵀ and compare.
	us := res.U.ToDense()
	for j := 0; j < 3; j++ {
		for i := 0; i < us.RowsN; i++ {
			us.Set(i, j, us.At(i, j)*res.S[j])
		}
	}
	rec := matrixMulDense(us, res.V.ToDense().Transpose())
	rel := frobDiff(a.ToDense(), rec) / a.ToDense().FrobeniusNorm()
	if rel > 1e-6 {
		t.Fatalf("rank-3 SVD relative error %g", rel)
	}
	// Singular values descending and positive.
	for i := 1; i < len(res.S); i++ {
		if res.S[i] > res.S[i-1]+1e-12 {
			t.Fatal("singular values not descending")
		}
	}
}

func TestSVDOrthonormalFactors(t *testing.T) {
	e := testEngine(t)
	rng := rand.New(rand.NewSource(196))
	a := bmat.RandomDense(rng, 20, 16, 4)
	res, err := SVD(e, a, SVDOptions{Rank: 4, Oversample: 4, PowerIterations: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkOrtho(t, res.U.ToDense(), "U")
	checkOrtho(t, res.V.ToDense(), "V")
}

func checkOrtho(t *testing.T, q *matrix.Dense, name string) {
	t.Helper()
	r, c := q.Dims()
	for p := 0; p < c; p++ {
		for s := 0; s < c; s++ {
			var dot float64
			for i := 0; i < r; i++ {
				dot += q.At(i, p) * q.At(i, s)
			}
			want := 0.0
			if p == s {
				want = 1
			}
			if dot-want > 1e-6 || want-dot > 1e-6 {
				t.Fatalf("%sᵀ%s[%d,%d] = %g, want %g", name, name, p, s, dot, want)
			}
		}
	}
}

func TestSVDMatchesDominantEnergy(t *testing.T) {
	// On a random dense matrix, the truncated SVD's captured energy
	// Σσᵢ² must be ≤ ‖A‖F² and the leading σ₁ must be within a few percent
	// of the true spectral energy captured by a much larger sketch.
	e := testEngine(t)
	rng := rand.New(rand.NewSource(197))
	a := bmat.RandomDense(rng, 24, 24, 4)
	small, err := SVD(e, a, SVDOptions{Rank: 2, Oversample: 2, PowerIterations: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big, err := SVD(e, a, SVDOptions{Rank: 2, Oversample: 20, PowerIterations: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if small.S[0] > big.S[0]*1.02+1e-9 {
		t.Fatalf("sketched σ1 %g exceeds refined %g", small.S[0], big.S[0])
	}
	if small.S[0] < big.S[0]*0.9 {
		t.Fatalf("sketched σ1 %g far below refined %g", small.S[0], big.S[0])
	}
	norm := a.ToDense().FrobeniusNorm()
	var energy float64
	for _, s := range small.S {
		energy += s * s
	}
	if energy > norm*norm*(1+1e-9) {
		t.Fatal("captured energy exceeds total")
	}
}

func TestSVDInvalidOptions(t *testing.T) {
	e := testEngine(t)
	rng := rand.New(rand.NewSource(198))
	a := bmat.RandomDense(rng, 8, 8, 4)
	if _, err := SVD(e, a, SVDOptions{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := SVD(e, a, SVDOptions{Rank: 2, Oversample: -1}); err == nil {
		t.Fatal("negative oversample accepted")
	}
	if _, err := SVD(e, a, SVDOptions{Rank: 20}); err == nil {
		t.Fatal("rank beyond width accepted")
	}
}

func matrixMulDense(a, b *matrix.Dense) *matrix.Dense {
	m, _ := a.Dims()
	_, n := b.Dims()
	c := matrix.NewDense(m, n)
	matrix.Gemm(c, a, b)
	return c
}

func frobDiff(a, b *matrix.Dense) float64 {
	return matrix.Sub(a, b).FrobeniusNorm()
}
