package ml

import (
	"math/rand"
	"testing"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

func TestMLPLossDecreases(t *testing.T) {
	e := testEngine(t)
	rng := rand.New(rand.NewSource(210))
	x := bmat.RandomDense(rng, 32, 8, 8)
	y := bmat.RandomDense(rng, 32, 2, 8)
	res, err := TrainMLP(e, x, y, MLPOptions{
		Hidden: []int{16}, LearningRate: 0.05, Epochs: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 20 {
		t.Fatalf("tracked %d losses", len(res.Losses))
	}
	if last, first := res.Losses[19], res.Losses[0]; last >= first {
		t.Fatalf("loss did not decrease: %g → %g", first, last)
	}
}

func TestMLPLearnsLinearMap(t *testing.T) {
	// With no hidden layers the network is linear regression and must fit
	// an exactly linear target to near-zero loss.
	e := testEngine(t)
	rng := rand.New(rand.NewSource(211))
	x := bmat.RandomDense(rng, 40, 4, 8)
	wTrue := bmat.RandomDense(rng, 4, 2, 8)
	y, err := e.Multiply(x, wTrue)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainMLP(e, x, y, MLPOptions{LearningRate: 0.05, Epochs: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if final := res.Losses[len(res.Losses)-1]; final > 1e-3 {
		t.Fatalf("linear target not fit: final loss %g", final)
	}
	// Prediction path agrees with the training-time forward pass.
	pred, err := PredictMLP(e, x, res.Weights)
	if err != nil {
		t.Fatal(err)
	}
	rel := bmat.Sub(pred, y).FrobeniusNorm() / y.FrobeniusNorm()
	if rel > 0.05 {
		t.Fatalf("prediction relative error %g", rel)
	}
}

func TestMLPDeepLearnsNonlinear(t *testing.T) {
	// y = relu(x)·1 is nonlinear; a hidden layer should fit it much better
	// than the best epoch-0 guess.
	e := testEngine(t)
	rng := rand.New(rand.NewSource(212))
	xd := matrix.NewDense(48, 3)
	for i := range xd.Data {
		xd.Data[i] = rng.NormFloat64()
	}
	yd := matrix.NewDense(48, 1)
	for i := 0; i < 48; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			s += relu(xd.At(i, j))
		}
		yd.Set(i, 0, s)
	}
	x := bmat.FromDense(xd, 8)
	y := bmat.FromDense(yd, 8)
	res, err := TrainMLP(e, x, y, MLPOptions{
		Hidden: []int{12}, LearningRate: 0.03, Epochs: 200, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Losses[len(res.Losses)-1] > res.Losses[0]*0.2 {
		t.Fatalf("deep net barely learned: %g → %g", res.Losses[0], res.Losses[len(res.Losses)-1])
	}
}

func TestMLPDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	x := bmat.RandomDense(rng, 16, 4, 4)
	y := bmat.RandomDense(rng, 16, 1, 4)
	opt := MLPOptions{Hidden: []int{8}, LearningRate: 0.05, Epochs: 3, Seed: 9}
	r1, err := TrainMLP(testEngine(t), x, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TrainMLP(testEngine(t), x, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	for l := range r1.Weights {
		if !r1.Weights[l].ToDense().Equal(r2.Weights[l].ToDense()) {
			t.Fatalf("layer %d weights diverge across identical runs", l)
		}
	}
}

func TestMLPInvalidOptions(t *testing.T) {
	e := testEngine(t)
	rng := rand.New(rand.NewSource(214))
	x := bmat.RandomDense(rng, 8, 2, 4)
	y := bmat.RandomDense(rng, 8, 1, 4)
	if _, err := TrainMLP(e, x, y, MLPOptions{LearningRate: 0.1}); err == nil {
		t.Fatal("0 epochs accepted")
	}
	if _, err := TrainMLP(e, x, y, MLPOptions{Epochs: 1}); err == nil {
		t.Fatal("0 learning rate accepted")
	}
	bad := bmat.RandomDense(rng, 6, 1, 4)
	if _, err := TrainMLP(e, x, bad, MLPOptions{Epochs: 1, LearningRate: 0.1}); err == nil {
		t.Fatal("sample-count mismatch accepted")
	}
}
