package ml

import (
	"math/rand"
	"testing"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/engine"
	"distme/internal/systems"
)

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	e, err := engine.New(engine.Config{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func ratingMatrix(t *testing.T, seed int64, rows, cols int) *bmat.BlockMatrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return bmat.RandomSparse(rng, rows, cols, 4, 0.2)
}

func TestGNMFObjectiveDecreases(t *testing.T) {
	e := testEngine(t)
	v := ratingMatrix(t, 110, 24, 20)
	res, err := GNMF(e, v, GNMFOptions{Rank: 4, Iterations: 8, Seed: 1, TrackObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Objectives) != 8 {
		t.Fatalf("tracked %d objectives, want 8", len(res.Objectives))
	}
	// Multiplicative updates are monotone non-increasing on the Frobenius
	// objective (Lee & Seung 2001); allow a hair of float slack.
	for i := 1; i < len(res.Objectives); i++ {
		if res.Objectives[i] > res.Objectives[i-1]*(1+1e-9) {
			t.Fatalf("objective increased at iteration %d: %g → %g",
				i, res.Objectives[i-1], res.Objectives[i])
		}
	}
	// And it should actually make progress.
	if res.Objectives[len(res.Objectives)-1] >= res.Objectives[0] {
		t.Fatal("objective made no progress over 8 iterations")
	}
}

func TestGNMFFactorsShapedAndNonNegative(t *testing.T) {
	e := testEngine(t)
	v := ratingMatrix(t, 111, 16, 12)
	res, err := GNMF(e, v, GNMFOptions{Rank: 3, Iterations: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.W.Rows != 16 || res.W.Cols != 3 {
		t.Fatalf("W is %dx%d, want 16x3", res.W.Rows, res.W.Cols)
	}
	if res.H.Rows != 3 || res.H.Cols != 12 {
		t.Fatalf("H is %dx%d, want 3x12", res.H.Rows, res.H.Cols)
	}
	for _, m := range []*bmat.BlockMatrix{res.W, res.H} {
		d := m.ToDense()
		for _, x := range d.Data {
			if x < 0 {
				t.Fatal("multiplicative updates produced a negative factor")
			}
		}
	}
}

func TestGNMFDeterministicForSeed(t *testing.T) {
	v := ratingMatrix(t, 112, 12, 12)
	r1, err := GNMF(testEngine(t), v, GNMFOptions{Rank: 2, Iterations: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := GNMF(testEngine(t), v, GNMFOptions{Rank: 2, Iterations: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !r1.W.ToDense().Equal(r2.W.ToDense()) || !r1.H.ToDense().Equal(r2.H.ToDense()) {
		t.Fatal("same seed produced different factors")
	}
}

func TestGNMFRunsOnEverySystem(t *testing.T) {
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	v := ratingMatrix(t, 113, 16, 16)
	for _, p := range systems.All() {
		sys, err := systems.New(p, cfg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		res, err := GNMF(sys, v, GNMFOptions{Rank: 4, Iterations: 2, Seed: 3, TrackObjective: true})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if res.Objectives[1] > res.Objectives[0]*(1+1e-9) {
			t.Errorf("%s: objective increased", p.Name)
		}
	}
}

func TestGNMFSameFactorsAcrossSystems(t *testing.T) {
	// All systems run the same arithmetic, so with one seed the factors
	// must agree bit-for-bit across strategy choices — the distributed
	// generalization claim applied to a whole query.
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	v := ratingMatrix(t, 114, 12, 12)
	var refW, refH *bmat.BlockMatrix
	for _, p := range []systems.Profile{systems.SystemMLC, systems.DistMEC, systems.DistMEG} {
		sys, err := systems.New(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := GNMF(sys, v, GNMFOptions{Rank: 2, Iterations: 2, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if refW == nil {
			refW, refH = res.W, res.H
			continue
		}
		if !res.W.ToDense().EqualApprox(refW.ToDense(), 1e-9) ||
			!res.H.ToDense().EqualApprox(refH.ToDense(), 1e-9) {
			t.Errorf("%s: factors diverge from reference", p.Name)
		}
	}
}

func TestGNMFInvalidOptions(t *testing.T) {
	e := testEngine(t)
	v := ratingMatrix(t, 115, 8, 8)
	if _, err := GNMF(e, v, GNMFOptions{Rank: 0, Iterations: 1}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := GNMF(e, v, GNMFOptions{Rank: 2, Iterations: 0}); err == nil {
		t.Fatal("0 iterations accepted")
	}
}

func TestGNMFObjectiveMatchesDirect(t *testing.T) {
	e := testEngine(t)
	v := ratingMatrix(t, 116, 20, 16)
	res, err := GNMF(e, v, GNMFOptions{Rank: 4, Iterations: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Direct: materialize W·H and subtract.
	wh, err := e.Multiply(res.W, res.H)
	if err != nil {
		t.Fatal(err)
	}
	want := bmat.Sub(v, wh).FrobeniusNorm()
	got, err := GNMFObjective(e, v, res.W, res.H)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Gram-trick objective %g, direct %g", got, want)
	}
}
