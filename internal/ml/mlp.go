package ml

import (
	"fmt"
	"math"
	"math/rand"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// MLPOptions configures a small multi-layer perceptron trained with
// full-batch gradient descent — the "deep neural network" entry of the
// paper's §1 application list, with every dense layer's forward and
// backward pass running as distributed multiplications on the engine.
type MLPOptions struct {
	// Hidden lists the hidden-layer widths, e.g. {64, 32}.
	Hidden []int
	// LearningRate is the gradient-descent step size.
	LearningRate float64
	// Epochs is the number of full-batch passes.
	Epochs int
	// Seed initializes the weights.
	Seed int64
}

// MLPResult carries the trained weights and the loss trajectory.
type MLPResult struct {
	// Weights[l] is the layer-l weight matrix (in×out).
	Weights []*bmat.BlockMatrix
	// Losses is the mean squared error after each epoch.
	Losses []float64
}

// TrainMLP fits Y ≈ f(X) with ReLU hidden layers and a linear output by
// full-batch gradient descent. X is samples×features, Y is samples×outputs.
// The big products — X·W, δ·Wᵀ, Hᵀ·δ — all go through ops; only the
// element-wise activation and its mask run block-locally.
func TrainMLP(ops Ops, x, y *bmat.BlockMatrix, opt MLPOptions) (*MLPResult, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("ml: TrainMLP: X has %d samples, Y has %d", x.Rows, y.Rows)
	}
	if x.BlockSize != y.BlockSize {
		return nil, fmt.Errorf("ml: TrainMLP: block sizes differ")
	}
	if opt.Epochs <= 0 {
		return nil, fmt.Errorf("ml: TrainMLP: epochs must be positive, got %d", opt.Epochs)
	}
	if opt.LearningRate <= 0 {
		return nil, fmt.Errorf("ml: TrainMLP: learning rate must be positive, got %g", opt.LearningRate)
	}

	// Layer dimensions: features → hidden… → outputs.
	dims := append([]int{x.Cols}, opt.Hidden...)
	dims = append(dims, y.Cols)
	rng := rand.New(rand.NewSource(opt.Seed))
	weights := make([]*bmat.BlockMatrix, len(dims)-1)
	for l := range weights {
		// He-style scaling keeps ReLU activations in range.
		scale := math.Sqrt(2 / float64(dims[l]))
		d := matrix.NewDense(dims[l], dims[l+1])
		for i := range d.Data {
			d.Data[i] = rng.NormFloat64() * scale
		}
		weights[l] = bmat.FromDense(d, x.BlockSize)
	}

	n := float64(x.Rows)
	res := &MLPResult{}
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		// ---- Forward ----
		acts := make([]*bmat.BlockMatrix, len(weights)+1)
		acts[0] = x
		for l, w := range weights {
			z, err := ops.Multiply(acts[l], w)
			if err != nil {
				return nil, fmt.Errorf("ml: TrainMLP epoch %d layer %d forward: %w", epoch, l, err)
			}
			if l < len(weights)-1 {
				z = applyElement(z, relu)
			}
			acts[l+1] = z
		}

		// ---- Loss: MSE over all outputs ----
		diff := bmat.Sub(acts[len(acts)-1], y)
		f := diff.FrobeniusNorm()
		res.Losses = append(res.Losses, f*f/(n*float64(y.Cols)))

		// ---- Backward ----
		// δ_out = 2(ŷ − y)/n
		delta := diff.Scale(2 / n)
		for l := len(weights) - 1; l >= 0; l-- {
			at, err := ops.Transpose(acts[l])
			if err != nil {
				return nil, fmt.Errorf("ml: TrainMLP epoch %d layer %d Aᵀ: %w", epoch, l, err)
			}
			grad, err := ops.Multiply(at, delta)
			if err != nil {
				return nil, fmt.Errorf("ml: TrainMLP epoch %d layer %d grad: %w", epoch, l, err)
			}
			if l > 0 {
				wt, err := ops.Transpose(weights[l])
				if err != nil {
					return nil, fmt.Errorf("ml: TrainMLP epoch %d layer %d Wᵀ: %w", epoch, l, err)
				}
				back, err := ops.Multiply(delta, wt)
				if err != nil {
					return nil, fmt.Errorf("ml: TrainMLP epoch %d layer %d backprop: %w", epoch, l, err)
				}
				// Gate by the ReLU mask of the layer's activation.
				mask := applyElement(acts[l], reluMask)
				delta, err = ops.Hadamard(back, mask)
				if err != nil {
					return nil, fmt.Errorf("ml: TrainMLP epoch %d layer %d mask: %w", epoch, l, err)
				}
			}
			weights[l] = bmat.Sub(weights[l], grad.Scale(opt.LearningRate))
		}
	}
	res.Weights = weights
	return res, nil
}

// PredictMLP runs the trained network forward.
func PredictMLP(ops Ops, x *bmat.BlockMatrix, weights []*bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	act := x
	var err error
	for l, w := range weights {
		act, err = ops.Multiply(act, w)
		if err != nil {
			return nil, fmt.Errorf("ml: PredictMLP layer %d: %w", l, err)
		}
		if l < len(weights)-1 {
			act = applyElement(act, relu)
		}
	}
	return act, nil
}

func relu(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

func reluMask(v float64) float64 {
	if v > 0 {
		return 1
	}
	return 0
}

// applyElement maps f over every element, block-locally.
func applyElement(m *bmat.BlockMatrix, f func(float64) float64) *bmat.BlockMatrix {
	out := bmat.New(m.Rows, m.Cols, m.BlockSize)
	for _, key := range m.Keys() {
		blk := m.Block(key.I, key.J)
		d, ok := blk.(*matrix.Dense)
		if !ok {
			d = blk.Dense()
		} else {
			d = d.Clone()
		}
		nonzero := false
		for i, v := range d.Data {
			d.Data[i] = f(v)
			nonzero = nonzero || d.Data[i] != 0
		}
		if nonzero {
			out.SetBlock(key.I, key.J, d)
		}
	}
	return out
}
