package ml

import (
	"math"
	"math/rand"
	"testing"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// chainGraph builds 0→1→…→n−1 (node n−1 dangling).
func chainGraph(n, bs int) *bmat.BlockMatrix {
	adj := bmat.New(n, n, bs)
	for i := 0; i+1 < n; i++ {
		bi, bj := i/bs, (i+1)/bs
		blk := adj.Block(bi, bj)
		var d *matrix.Dense
		if blk == nil {
			r, c := adj.BlockDims(bi, bj)
			d = matrix.NewDense(r, c)
		} else {
			d = blk.(*matrix.Dense)
		}
		d.Set(i%bs, (i+1)%bs, 1)
		adj.SetBlock(bi, bj, d)
	}
	return adj
}

func TestPageRankSumsToOne(t *testing.T) {
	e := testEngine(t)
	adj := chainGraph(12, 4)
	res, err := PageRank(e, adj, PageRankOptions{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < 12; i++ {
		v := res.Ranks.At(i, 0)
		if v < 0 {
			t.Fatalf("negative rank at %d: %g", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %g, want 1", sum)
	}
}

func TestPageRankCycleUniform(t *testing.T) {
	// On a directed cycle every node must have identical rank 1/n.
	e := testEngine(t)
	n, bs := 9, 3
	adj := chainGraph(n, bs)
	// close the cycle: n−1 → 0
	bi := (n - 1) / bs
	blk := adj.Block(bi, 0)
	var d *matrix.Dense
	if blk == nil {
		r, c := adj.BlockDims(bi, 0)
		d = matrix.NewDense(r, c)
	} else {
		d = blk.(*matrix.Dense)
	}
	d.Set((n-1)%bs, 0, 1)
	adj.SetBlock(bi, 0, d)

	res, err := PageRank(e, adj, PageRankOptions{MaxIterations: 100, Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		if math.Abs(res.Ranks.At(i, 0)-want) > 1e-9 {
			t.Fatalf("cycle rank[%d] = %g, want %g", i, res.Ranks.At(i, 0), want)
		}
	}
}

func TestPageRankHubGetsMost(t *testing.T) {
	// Star pointing into node 0: node 0 must outrank all others.
	e := testEngine(t)
	n, bs := 10, 5
	adj := bmat.New(n, n, bs)
	for bi := 0; bi < adj.IB; bi++ {
		r, c := adj.BlockDims(bi, 0)
		d := matrix.NewDense(r, c)
		for i := 0; i < r; i++ {
			if bi*bs+i != 0 {
				d.Set(i, 0, 1) // i → 0
			}
		}
		adj.SetBlock(bi, 0, d)
	}
	res, err := PageRank(e, adj, PageRankOptions{MaxIterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	hub := res.Ranks.At(0, 0)
	for i := 1; i < n; i++ {
		if res.Ranks.At(i, 0) >= hub {
			t.Fatalf("leaf %d (%g) outranks hub (%g)", i, res.Ranks.At(i, 0), hub)
		}
	}
}

func TestPageRankConverges(t *testing.T) {
	e := testEngine(t)
	rng := rand.New(rand.NewSource(150))
	adj := bmat.RandomSparse(rng, 24, 24, 6, 0.15)
	res, err := PageRank(e, adj, PageRankOptions{MaxIterations: 200, Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta > 1e-10 {
		t.Fatalf("did not converge: delta %g after %d iterations", res.Delta, res.Iterations)
	}
	if res.Iterations >= 200 {
		t.Fatal("hit the iteration cap")
	}
}

func TestPageRankRejectsNonSquare(t *testing.T) {
	e := testEngine(t)
	rng := rand.New(rand.NewSource(151))
	if _, err := PageRank(e, bmat.RandomSparse(rng, 4, 6, 2, 0.5), PageRankOptions{}); err == nil {
		t.Fatal("non-square adjacency accepted")
	}
}

func TestGNMFPlannedMatchesDirect(t *testing.T) {
	v := ratingMatrix(t, 160, 20, 16)
	direct, err := GNMF(testEngine(t), v, GNMFOptions{Rank: 4, Iterations: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	planned, err := GNMFPlanned(testEngine(t), v, GNMFOptions{Rank: 4, Iterations: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !planned.W.ToDense().EqualApprox(direct.W.ToDense(), 1e-9) {
		t.Fatal("planned W diverges from direct")
	}
	if !planned.H.ToDense().EqualApprox(direct.H.ToDense(), 1e-9) {
		t.Fatal("planned H diverges from direct")
	}
}

func TestGNMFPlansShareTransposes(t *testing.T) {
	hPlan, wPlan, err := GNMFPlans()
	if err != nil {
		t.Fatal(err)
	}
	if hPlan.SharedNodes() == 0 {
		t.Fatal("H update plan should share Wᵀ")
	}
	if wPlan.SharedNodes() == 0 {
		t.Fatal("W update plan should share Hᵀ")
	}
}

func TestGNMFPlannedObjectiveDecreases(t *testing.T) {
	v := ratingMatrix(t, 161, 18, 18)
	res, err := GNMFPlanned(testEngine(t), v, GNMFOptions{Rank: 3, Iterations: 5, Seed: 4, TrackObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Objectives); i++ {
		if res.Objectives[i] > res.Objectives[i-1]*(1+1e-9) {
			t.Fatalf("objective increased at %d", i)
		}
	}
}

func TestGNMFPlannedInvalidOptions(t *testing.T) {
	v := ratingMatrix(t, 162, 8, 8)
	if _, err := GNMFPlanned(testEngine(t), v, GNMFOptions{Rank: 0, Iterations: 1}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := GNMFPlanned(testEngine(t), v, GNMFOptions{Rank: 2, Iterations: 0}); err == nil {
		t.Fatal("0 iterations accepted")
	}
}
