package ml

import (
	"fmt"
	"math"
	"math/rand"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// SVDOptions configures the randomized truncated SVD.
type SVDOptions struct {
	// Rank is the number of singular triplets to compute.
	Rank int
	// Oversample pads the sketch width (k + p columns; 5–10 typical).
	Oversample int
	// PowerIterations sharpens the sketch for slowly decaying spectra
	// (1–2 typical).
	PowerIterations int
	// Seed initializes the Gaussian test matrix.
	Seed int64
}

// SVDResult carries the truncated factorization A ≈ U·diag(S)·Vᵀ.
type SVDResult struct {
	// U is rows×rank with orthonormal columns.
	U *bmat.BlockMatrix
	// S holds the singular values, descending.
	S []float64
	// V is cols×rank with orthonormal columns.
	V *bmat.BlockMatrix
}

// SVD computes a randomized truncated singular value decomposition
// (Halko–Martinsson–Tropp) of a distributed matrix — the paper's §1 names
// SVD among the applications a matrix engine must serve. The big products
// (A·Ω, Aᵀ·Q and the power-iteration passes) run distributed through ops;
// the (k+p)-sized range finder, eigensolve and rotations run locally.
func SVD(ops Ops, a *bmat.BlockMatrix, opt SVDOptions) (*SVDResult, error) {
	if opt.Rank <= 0 {
		return nil, fmt.Errorf("ml: SVD: rank must be positive, got %d", opt.Rank)
	}
	if opt.Oversample < 0 {
		return nil, fmt.Errorf("ml: SVD: oversample must be non-negative, got %d", opt.Oversample)
	}
	sketch := opt.Rank + opt.Oversample
	if sketch > a.Cols {
		sketch = a.Cols
	}
	if opt.Rank > sketch {
		return nil, fmt.Errorf("ml: SVD: rank %d exceeds matrix width %d", opt.Rank, a.Cols)
	}

	// Sketch the range: Y = A·Ω with Gaussian Ω.
	rng := rand.New(rand.NewSource(opt.Seed))
	omega := gaussian(rng, a.Cols, sketch, a.BlockSize)
	y, err := ops.Multiply(a, omega)
	if err != nil {
		return nil, fmt.Errorf("ml: SVD: A·Ω: %w", err)
	}
	at, err := ops.Transpose(a)
	if err != nil {
		return nil, fmt.Errorf("ml: SVD: Aᵀ: %w", err)
	}
	// Power iterations: Y ← A·(Aᵀ·Y), re-orthonormalizing each pass.
	for it := 0; it < opt.PowerIterations; it++ {
		q := bmat.FromDense(matrix.GramSchmidtQR(y.ToDense()), a.BlockSize)
		z, err := ops.Multiply(at, q)
		if err != nil {
			return nil, fmt.Errorf("ml: SVD: power iteration %d: %w", it, err)
		}
		y, err = ops.Multiply(a, z)
		if err != nil {
			return nil, fmt.Errorf("ml: SVD: power iteration %d: %w", it, err)
		}
	}

	// Range basis Q (rows×sketch) and the small projection B = Qᵀ·A, taken
	// as Bᵀ = Aᵀ·Q to keep the distributed product tall-thin.
	qd := matrix.GramSchmidtQR(y.ToDense())
	q := bmat.FromDense(qd, a.BlockSize)
	bt, err := ops.Multiply(at, q) // cols×sketch
	if err != nil {
		return nil, fmt.Errorf("ml: SVD: Aᵀ·Q: %w", err)
	}

	// SVD of the small projection B = Qᵀ·A via the eigendecomposition of
	// the sketch×sketch Gram G = B·Bᵀ = (Bᵀ)ᵀ·(Bᵀ).
	btd := bt.ToDense()
	sk := btd.ColsN
	gram := matrix.NewDense(sk, sk)
	matrix.Gemm(gram, btd.Transpose(), btd)
	vals, vecs, err := matrix.JacobiEigen(gram, 0)
	if err != nil {
		return nil, fmt.Errorf("ml: SVD: eigensolve: %w", err)
	}

	k := opt.Rank
	res := &SVDResult{S: make([]float64, k)}
	// Singular values σᵢ = sqrt(λᵢ); U = Q·W; V = Bᵀ·W·Σ⁻¹.
	w := matrix.NewDense(sk, k)
	for j := 0; j < k; j++ {
		lam := vals[j]
		if lam < 0 {
			lam = 0
		}
		res.S[j] = math.Sqrt(lam)
		for i := 0; i < sk; i++ {
			w.Set(i, j, vecs.At(i, j))
		}
	}
	ud := matrix.NewDense(qd.RowsN, k)
	matrix.Gemm(ud, qd, w)
	res.U = bmat.FromDense(ud, a.BlockSize)

	vd := matrix.NewDense(btd.RowsN, k)
	matrix.Gemm(vd, btd, w)
	for j := 0; j < k; j++ {
		if res.S[j] > 1e-12 {
			inv := 1 / res.S[j]
			for i := 0; i < vd.RowsN; i++ {
				vd.Set(i, j, vd.At(i, j)*inv)
			}
		}
	}
	res.V = bmat.FromDense(vd, a.BlockSize)
	return res, nil
}

// gaussian builds a rows×cols block matrix of N(0,1) entries.
func gaussian(rng *rand.Rand, rows, cols, blockSize int) *bmat.BlockMatrix {
	d := matrix.NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return bmat.FromDense(d, blockSize)
}
