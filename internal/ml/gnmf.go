// Package ml implements the machine-learning query of the paper's
// evaluation: Gaussian Non-negative Matrix Factorization (GNMF, Appendix A),
// the collaborative-filtering workload run on MovieLens / Netflix /
// YahooMusic in §6.4. The update rules run entirely on distributed engine
// operators, so every multiplication goes through the system under test.
package ml

import (
	"fmt"
	"math"
	"math/rand"

	"distme/internal/bmat"
)

// Ops is the subset of engine operators GNMF needs; both engine.Engine and
// systems.System satisfy it, so the same query runs on every compared
// system.
type Ops interface {
	Multiply(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error)
	Transpose(a *bmat.BlockMatrix) (*bmat.BlockMatrix, error)
	Hadamard(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error)
	DivElem(a, b *bmat.BlockMatrix, eps float64) (*bmat.BlockMatrix, error)
}

// eps is the denominator guard of the multiplicative updates.
const eps = 1e-9

// GNMFOptions configures a factorization run.
type GNMFOptions struct {
	// Rank is the factor dimension (200 in Figures 8(a–c); swept in 8(d)).
	Rank int
	// Iterations is the update count (the paper runs up to ten).
	Iterations int
	// Seed initializes the random factors.
	Seed int64
	// TrackObjective records ‖V − W·H‖F after every iteration. It costs an
	// extra full multiplication per iteration, so benches leave it off.
	TrackObjective bool
}

// GNMFResult carries the factors and per-iteration observations.
type GNMFResult struct {
	// W is the users×rank factor; H is the rank×items factor.
	W, H *bmat.BlockMatrix
	// Objectives holds ‖V − W·H‖F after each iteration when tracked.
	Objectives []float64
}

// GNMF factorizes V ≈ W×H with the multiplicative updates of Lee & Seung
// (Appendix A, Eq. 7):
//
//	H ← H ∘ (Wᵀ·V) ⊘ (Wᵀ·W·H)
//	W ← W ∘ (V·Hᵀ) ⊘ (W·H·Hᵀ)
//
// The small Gram products (Wᵀ·W, H·Hᵀ) are r×r and multiply cheaply; the
// V-sided products dominate, exactly the workload mix §6.4 measures.
func GNMF(ops Ops, v *bmat.BlockMatrix, opt GNMFOptions) (*GNMFResult, error) {
	if opt.Rank <= 0 {
		return nil, fmt.Errorf("ml: GNMF: rank must be positive, got %d", opt.Rank)
	}
	if opt.Iterations <= 0 {
		return nil, fmt.Errorf("ml: GNMF: iterations must be positive, got %d", opt.Iterations)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	w := bmat.RandomDense(rng, v.Rows, opt.Rank, v.BlockSize)
	h := bmat.RandomDense(rng, opt.Rank, v.Cols, v.BlockSize)
	res := &GNMFResult{}

	for it := 0; it < opt.Iterations; it++ {
		// --- H update ---
		wt, err := ops.Transpose(w)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: Wᵀ: %w", it, err)
		}
		wtv, err := ops.Multiply(wt, v)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: Wᵀ·V: %w", it, err)
		}
		wtw, err := ops.Multiply(wt, w)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: Wᵀ·W: %w", it, err)
		}
		wtwh, err := ops.Multiply(wtw, h)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: Wᵀ·W·H: %w", it, err)
		}
		ratio, err := ops.DivElem(wtv, wtwh, eps)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: H ratio: %w", it, err)
		}
		h, err = ops.Hadamard(h, ratio)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: H update: %w", it, err)
		}

		// --- W update ---
		ht, err := ops.Transpose(h)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: Hᵀ: %w", it, err)
		}
		vht, err := ops.Multiply(v, ht)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: V·Hᵀ: %w", it, err)
		}
		hht, err := ops.Multiply(h, ht)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: H·Hᵀ: %w", it, err)
		}
		whht, err := ops.Multiply(w, hht)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: W·H·Hᵀ: %w", it, err)
		}
		ratio, err = ops.DivElem(vht, whht, eps)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: W ratio: %w", it, err)
		}
		w, err = ops.Hadamard(w, ratio)
		if err != nil {
			return nil, fmt.Errorf("ml: GNMF iteration %d: W update: %w", it, err)
		}

		if opt.TrackObjective {
			wh, err := ops.Multiply(w, h)
			if err != nil {
				return nil, fmt.Errorf("ml: GNMF iteration %d: objective: %w", it, err)
			}
			res.Objectives = append(res.Objectives, bmat.Sub(v, wh).FrobeniusNorm())
		}
	}
	res.W, res.H = w, h
	return res, nil
}

// GNMFObjective computes ‖V − W·H‖F without materializing W·H, using the
// Gram expansion SystemML's optimizer applies to the same pattern:
//
//	‖V − W·H‖² = ‖V‖² − 2·⟨Vᵀ·W, Hᵀ⟩ + ⟨Wᵀ·W, H·Hᵀ⟩
//
// Only r-width products are formed (Vᵀ·W is items×r; the Grams are r×r),
// so the cost is O(nnz(V)·r + (m+n)·r²) instead of the dense m×n of W·H.
// Negative round-off under the square root clamps to zero.
func GNMFObjective(ops Ops, v, w, h *bmat.BlockMatrix) (float64, error) {
	vt, err := ops.Transpose(v)
	if err != nil {
		return 0, fmt.Errorf("ml: GNMFObjective: Vᵀ: %w", err)
	}
	vtw, err := ops.Multiply(vt, w)
	if err != nil {
		return 0, fmt.Errorf("ml: GNMFObjective: Vᵀ·W: %w", err)
	}
	ht, err := ops.Transpose(h)
	if err != nil {
		return 0, fmt.Errorf("ml: GNMFObjective: Hᵀ: %w", err)
	}
	wt, err := ops.Transpose(w)
	if err != nil {
		return 0, fmt.Errorf("ml: GNMFObjective: Wᵀ: %w", err)
	}
	wtw, err := ops.Multiply(wt, w)
	if err != nil {
		return 0, fmt.Errorf("ml: GNMFObjective: Wᵀ·W: %w", err)
	}
	hht, err := ops.Multiply(h, ht)
	if err != nil {
		return 0, fmt.Errorf("ml: GNMFObjective: H·Hᵀ: %w", err)
	}
	vNorm := v.FrobeniusNorm()
	sq := vNorm*vNorm - 2*bmat.Dot(vtw, ht) + bmat.Dot(wtw, hht)
	if sq < 0 {
		sq = 0
	}
	return math.Sqrt(sq), nil
}
