package ml

import (
	"context"
	"fmt"
	"math/rand"

	"distme/internal/bmat"
	"distme/internal/plan"
)

// Handle-resident variants of the iterative queries: instead of routing every
// operator's inputs and output through the driver, the factors live on the
// workers as session handles and each iteration runs as one lazy pipeline —
// the driver ships only the expression and fetches only what it needs (the
// final factors; PageRank's n×1 vectors). The math is the exact operator
// sequence of GNMF / PageRank above, so the results match their
// driver-materialized twins.

// PipelineSession is the handle-based session surface the queries run
// against, generic over the handle type so this package does not depend on
// the network layer. distnet.Session satisfies
// PipelineSession[*distnet.Handle].
type PipelineSession[H any] interface {
	// Put uploads a driver matrix, returning its resident handle.
	Put(ctx context.Context, m *bmat.BlockMatrix) (H, error)
	// Run compiles and executes an expression over bound handles, returning
	// the (still remote) result handle.
	Run(ctx context.Context, x plan.Expr, binds map[string]H) (H, error)
	// Fetch downloads a handle's matrix to the driver.
	Fetch(ctx context.Context, h H) (*bmat.BlockMatrix, error)
	// Free drops a handle's resident blocks.
	Free(ctx context.Context, h H) error
	// Pin protects a handle's blocks against store eviction.
	Pin(ctx context.Context, h H) error
}

// GNMFHExpr is one H update, H ← H ∘ (Wᵀ·V) ⊘ (Wᵀ·W·H), over the bound
// names "v", "w", "h". The shared Wᵀ is computed once (the plan layer
// hash-conses it), exactly as the eager GNMF reuses its wt.
func GNMFHExpr() plan.Expr {
	wt := plan.T(plan.V("w"))
	return plan.EMul(plan.V("h"),
		plan.EDiv(plan.Mul(wt, plan.V("v")),
			plan.Mul(plan.Mul(wt, plan.V("w")), plan.V("h")), eps))
}

// GNMFWExpr is one W update, W ← W ∘ (V·Hᵀ) ⊘ (W·(H·Hᵀ)), over the bound
// names "v", "w", "h".
func GNMFWExpr() plan.Expr {
	ht := plan.T(plan.V("h"))
	return plan.EMul(plan.V("w"),
		plan.EDiv(plan.Mul(plan.V("v"), ht),
			plan.Mul(plan.V("w"), plan.Mul(plan.V("h"), ht)), eps))
}

// GNMFPipeline is a factorization whose V, W and H live on the workers. Each
// Step runs both multiplicative updates as lazy pipelines; nothing but the
// expressions crosses the driver until Factors.
type GNMFPipeline[H any] struct {
	sess    PipelineSession[H]
	v, w, h H
	closed  bool
}

// NewGNMFPipeline uploads V and the seeded random factors (the same
// initialization sequence as GNMF) and pins V — the one operand every
// iteration reads — against eviction.
func NewGNMFPipeline[H any](ctx context.Context, s PipelineSession[H], v *bmat.BlockMatrix, opt GNMFOptions) (*GNMFPipeline[H], error) {
	if opt.Rank <= 0 {
		return nil, fmt.Errorf("ml: GNMFPipeline: rank must be positive, got %d", opt.Rank)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	w0 := bmat.RandomDense(rng, v.Rows, opt.Rank, v.BlockSize)
	h0 := bmat.RandomDense(rng, opt.Rank, v.Cols, v.BlockSize)

	hv, err := s.Put(ctx, v)
	if err != nil {
		return nil, fmt.Errorf("ml: GNMFPipeline: put V: %w", err)
	}
	if err := s.Pin(ctx, hv); err != nil {
		return nil, fmt.Errorf("ml: GNMFPipeline: pin V: %w", err)
	}
	hw, err := s.Put(ctx, w0)
	if err != nil {
		return nil, fmt.Errorf("ml: GNMFPipeline: put W: %w", err)
	}
	hh, err := s.Put(ctx, h0)
	if err != nil {
		return nil, fmt.Errorf("ml: GNMFPipeline: put H: %w", err)
	}
	return &GNMFPipeline[H]{sess: s, v: hv, w: hw, h: hh}, nil
}

// Step runs one full GNMF iteration (H update, then W update against the new
// H) entirely worker-resident.
func (g *GNMFPipeline[H]) Step(ctx context.Context) error {
	if g.closed {
		return fmt.Errorf("ml: GNMFPipeline: closed")
	}
	binds := map[string]H{"v": g.v, "w": g.w, "h": g.h}
	newH, err := g.sess.Run(ctx, GNMFHExpr(), binds)
	if err != nil {
		return fmt.Errorf("ml: GNMFPipeline: H update: %w", err)
	}
	if err := g.sess.Free(ctx, g.h); err != nil {
		return fmt.Errorf("ml: GNMFPipeline: free old H: %w", err)
	}
	g.h = newH
	binds["h"] = newH
	newW, err := g.sess.Run(ctx, GNMFWExpr(), binds)
	if err != nil {
		return fmt.Errorf("ml: GNMFPipeline: W update: %w", err)
	}
	if err := g.sess.Free(ctx, g.w); err != nil {
		return fmt.Errorf("ml: GNMFPipeline: free old W: %w", err)
	}
	g.w = newW
	return nil
}

// Handles exposes the current resident factors (for chaining into further
// expressions).
func (g *GNMFPipeline[H]) Handles() (v, w, h H) { return g.v, g.w, g.h }

// Factors fetches W and H to the driver — the pipeline's only bulk
// driver-bound transfer.
func (g *GNMFPipeline[H]) Factors(ctx context.Context) (*GNMFResult, error) {
	if g.closed {
		return nil, fmt.Errorf("ml: GNMFPipeline: closed")
	}
	w, err := g.sess.Fetch(ctx, g.w)
	if err != nil {
		return nil, fmt.Errorf("ml: GNMFPipeline: fetch W: %w", err)
	}
	h, err := g.sess.Fetch(ctx, g.h)
	if err != nil {
		return nil, fmt.Errorf("ml: GNMFPipeline: fetch H: %w", err)
	}
	return &GNMFResult{W: w, H: h}, nil
}

// Close frees the pipeline's resident handles. Further calls fail.
func (g *GNMFPipeline[H]) Close(ctx context.Context) error {
	if g.closed {
		return nil
	}
	g.closed = true
	var first error
	for _, h := range []H{g.v, g.w, g.h} {
		if err := g.sess.Free(ctx, h); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PageRankHandles is PageRank with the transition matrix resident: Mᵀ (the
// n×n operand) uploads once and stays pinned on the workers; per iteration
// only two n×1 vectors cross the driver — the current ranks up, the spread
// down. The rank arithmetic is pagerankStep, shared with PageRank, so the
// results are byte-identical to the driver-materialized run.
func PageRankHandles[H any](ctx context.Context, s PipelineSession[H], adj *bmat.BlockMatrix, opt PageRankOptions) (*PageRankResult, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("ml: PageRankHandles: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	if opt.Damping <= 0 || opt.Damping >= 1 {
		opt.Damping = 0.85
	}
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 50
	}
	if opt.Tolerance <= 0 {
		opt.Tolerance = 1e-9
	}
	n := adj.Rows

	mt, dangling := transitionTranspose(adj)
	hmt, err := s.Put(ctx, mt)
	if err != nil {
		return nil, fmt.Errorf("ml: PageRankHandles: put Mᵀ: %w", err)
	}
	defer func() { _ = s.Free(ctx, hmt) }()
	if err := s.Pin(ctx, hmt); err != nil {
		return nil, fmt.Errorf("ml: PageRankHandles: pin Mᵀ: %w", err)
	}

	r := bmat.New(n, 1, adj.BlockSize)
	fillColumn(r, 1/float64(n))

	res := &PageRankResult{}
	spreadExpr := plan.Mul(plan.V("mt"), plan.V("r"))
	for it := 0; it < opt.MaxIterations; it++ {
		hr, err := s.Put(ctx, r)
		if err != nil {
			return nil, fmt.Errorf("ml: PageRankHandles iteration %d: put r: %w", it, err)
		}
		hs, err := s.Run(ctx, spreadExpr, map[string]H{"mt": hmt, "r": hr})
		if err != nil {
			_ = s.Free(ctx, hr)
			return nil, fmt.Errorf("ml: PageRankHandles iteration %d: %w", it, err)
		}
		spread, err := s.Fetch(ctx, hs)
		_ = s.Free(ctx, hs)
		_ = s.Free(ctx, hr)
		if err != nil {
			return nil, fmt.Errorf("ml: PageRankHandles iteration %d: fetch: %w", it, err)
		}
		var delta float64
		r, delta = pagerankStep(spread, r, dangling, opt.Damping)
		res.Iterations = it + 1
		res.Delta = delta
		if delta < opt.Tolerance {
			break
		}
	}
	res.Ranks = r
	return res, nil
}
