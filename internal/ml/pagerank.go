package ml

import (
	"fmt"
	"math"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// PageRankOptions configures the power iteration.
type PageRankOptions struct {
	// Damping is the teleport factor (0.85 conventionally).
	Damping float64
	// MaxIterations bounds the power iteration.
	MaxIterations int
	// Tolerance stops early when the L1 change falls below it.
	Tolerance float64
}

// PageRankResult carries the ranks and convergence facts.
type PageRankResult struct {
	// Ranks is the n×1 rank vector, summing to 1.
	Ranks *bmat.BlockMatrix
	// Iterations actually performed.
	Iterations int
	// Delta is the final L1 change.
	Delta float64
}

// PageRank runs the classical power iteration r ← d·Mᵀr + (1−d)/n over a
// (sparse) adjacency matrix through the engine's distributed multiply —
// one of the intro's motivating linear-algebra applications (betweenness /
// centrality computations), exercising the sparse×dense local kernels on a
// tall-thin product shape.
//
// adj is the n×n adjacency matrix (adj[i][j] ≠ 0 for an edge i→j). Rows
// with no outgoing edges distribute uniformly (dangling-node handling).
func PageRank(ops Ops, adj *bmat.BlockMatrix, opt PageRankOptions) (*PageRankResult, error) {
	if adj.Rows != adj.Cols {
		return nil, fmt.Errorf("ml: PageRank: adjacency must be square, got %dx%d", adj.Rows, adj.Cols)
	}
	if opt.Damping <= 0 || opt.Damping >= 1 {
		opt.Damping = 0.85
	}
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 50
	}
	if opt.Tolerance <= 0 {
		opt.Tolerance = 1e-9
	}
	n := adj.Rows

	// Column-stochastic transition matrix Mᵀ built once: M[i][j] = 1/deg(i)
	// for each edge i→j, so (Mᵀ·r)[j] = Σ_i r[i]/deg(i).
	mt, dangling := transitionTranspose(adj)

	// Uniform start.
	r := bmat.New(n, 1, adj.BlockSize)
	fillColumn(r, 1/float64(n))

	res := &PageRankResult{}
	for it := 0; it < opt.MaxIterations; it++ {
		spread, err := ops.Multiply(mt, r)
		if err != nil {
			return nil, fmt.Errorf("ml: PageRank iteration %d: %w", it, err)
		}
		var delta float64
		r, delta = pagerankStep(spread, r, dangling, opt.Damping)
		res.Iterations = it + 1
		res.Delta = delta
		if delta < opt.Tolerance {
			break
		}
	}
	res.Ranks = r
	return res, nil
}

// pagerankStep folds one spread vector (Mᵀ·r) into the next rank vector:
// dangling mass redistributes uniformly, teleport adds (1−d)/n. It returns
// the next vector and the L1 change — the identical arithmetic for the
// driver-materialized and handle-resident iterations, so both variants
// produce byte-identical ranks.
func pagerankStep(spread, r *bmat.BlockMatrix, dangling []bool, damping float64) (*bmat.BlockMatrix, float64) {
	n := r.Rows
	var danglingMass float64
	for i := 0; i < n; i++ {
		if dangling[i] {
			danglingMass += r.At(i, 0)
		}
	}
	base := (1-damping)/float64(n) + damping*danglingMass/float64(n)
	next := bmat.New(n, 1, r.BlockSize)
	var delta float64
	for bi := 0; bi < next.IB; bi++ {
		rows, _ := next.BlockDims(bi, 0)
		blk := matrix.NewDense(rows, 1)
		var nonzero bool
		for i := 0; i < rows; i++ {
			gi := bi*next.BlockSize + i
			var sv float64
			if sb := spread.Block(bi, 0); sb != nil {
				sv = sb.At(i, 0)
			}
			v := base + damping*sv
			blk.Set(i, 0, v)
			nonzero = nonzero || v != 0
			delta += math.Abs(v - r.At(gi, 0))
		}
		if nonzero {
			next.SetBlock(bi, 0, blk)
		}
	}
	return next, delta
}

// transitionTranspose builds Mᵀ (column-stochastic in M's orientation) as a
// block matrix of CSR blocks, plus the dangling-row mask.
func transitionTranspose(adj *bmat.BlockMatrix) (*bmat.BlockMatrix, []bool) {
	n := adj.Rows
	deg := make([]float64, n)
	dangling := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if adj.At(i, j) != 0 {
				deg[i]++
			}
		}
	}
	for i := range deg {
		if deg[i] == 0 {
			dangling[i] = true
		}
	}
	mt := bmat.New(n, n, adj.BlockSize)
	// Build per-block triplets for Mᵀ: entry (j, i) = 1/deg(i) per edge i→j.
	type trip struct {
		r, c int
		v    float64
	}
	buckets := make(map[bmat.BlockKey][]trip)
	bs := adj.BlockSize
	for i := 0; i < n; i++ {
		if deg[i] == 0 {
			continue
		}
		w := 1 / deg[i]
		for j := 0; j < n; j++ {
			if adj.At(i, j) != 0 {
				key := bmat.BlockKey{I: j / bs, J: i / bs}
				buckets[key] = append(buckets[key], trip{r: j % bs, c: i % bs, v: w})
			}
		}
	}
	for key, ts := range buckets {
		rows, cols := mt.BlockDims(key.I, key.J)
		ri := make([]int, len(ts))
		ci := make([]int, len(ts))
		vv := make([]float64, len(ts))
		for x, tr := range ts {
			ri[x], ci[x], vv[x] = tr.r, tr.c, tr.v
		}
		mt.SetBlock(key.I, key.J, matrix.NewCSR(rows, cols, ri, ci, vv))
	}
	return mt, dangling
}

// fillColumn sets every element of an n×1 matrix to v.
func fillColumn(m *bmat.BlockMatrix, v float64) {
	for bi := 0; bi < m.IB; bi++ {
		rows, _ := m.BlockDims(bi, 0)
		blk := matrix.NewDense(rows, 1)
		for i := 0; i < rows; i++ {
			blk.Set(i, 0, v)
		}
		m.SetBlock(bi, 0, blk)
	}
}
