package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanLifecycle(t *testing.T) {
	tr := NewTracer()
	root := tr.Start(0, "multiply", KindDriver)
	if !root.Active() || root.ID() == 0 {
		t.Fatalf("root span inactive: active=%v id=%d", root.Active(), root.ID())
	}
	child := tr.Start(root.ID(), "cuboid", KindDriver)
	child.SetCuboid(1, 2, 3)
	child.SetWorker("w1:7070")
	child.AddBytes(100)
	child.AddBytes(28)
	child.SetAttr("attempt", "1")
	if got := tr.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	child.End()
	child.End() // double-End must be a no-op
	root.End()
	if got := tr.InFlight(); got != 0 {
		t.Fatalf("InFlight after End = %d, want 0", got)
	}
	if got := tr.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}

	snap := tr.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(snap.Spans))
	}
	// Ordered by start time: root first.
	got := snap.Spans[0]
	if got.Name != "multiply" || got.Parent != 0 {
		t.Fatalf("first span = %+v, want root multiply", got)
	}
	c := snap.Spans[1]
	if c.Parent != got.ID {
		t.Fatalf("child parent = %d, want %d", c.Parent, got.ID)
	}
	if p, q, r, ok := c.Cuboid(); !ok || p != 1 || q != 2 || r != 3 {
		t.Fatalf("child cuboid = (%d,%d,%d,%v)", p, q, r, ok)
	}
	if c.Bytes != 128 || c.Worker != "w1:7070" || len(c.Attrs) != 1 {
		t.Fatalf("child = %+v", c)
	}
	if c.Duration() < 0 {
		t.Fatalf("negative duration %v", c.Duration())
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start(0, "x", KindDriver)
	if sp.Active() || sp.ID() != 0 {
		t.Fatalf("nil tracer span active: %v id=%d", sp.Active(), sp.ID())
	}
	sp.SetWorker("w")
	sp.SetCuboid(0, 0, 0)
	sp.AddBytes(1)
	sp.SetAttr("k", "v")
	sp.End()
	if tr.Len() != 0 || tr.InFlight() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer accumulated state")
	}
	if id := tr.AddCompleted(SpanData{Name: "n"}); id != 0 {
		t.Fatalf("nil AddCompleted id = %d", id)
	}
	if !tr.Snapshot().Empty() {
		t.Fatal("nil snapshot not empty")
	}
	if tr.DebugSnapshot(10) != nil {
		t.Fatal("nil DebugSnapshot non-nil")
	}
	tr.Reset()
}

// The acceptance criterion: with tracing disabled the hot path adds zero
// allocations.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(0, "cuboid", KindDriver)
		sp.SetCuboid(1, 2, 3)
		sp.SetWorker("w1:7070")
		sp.AddBytes(4096)
		if sp.Active() {
			sp.SetAttr("never", "reached")
		}
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer hot path allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(0, "cuboid", KindDriver)
		sp.SetCuboid(1, 2, 3)
		sp.AddBytes(4096)
		sp.End()
	}
}

func BenchmarkTracerStartEnd(b *testing.B) {
	tr := NewTracerLimit(1 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(0, "cuboid", KindDriver)
		sp.SetCuboid(1, 2, 3)
		sp.End()
		if i%512 == 0 {
			tr.Reset()
		}
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	root := tr.Start(0, "root", KindDriver)
	var wg sync.WaitGroup
	const G, N = 8, 200
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < N; i++ {
				sp := tr.Start(root.ID(), "work", KindTask)
				sp.AddBytes(1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := tr.Len(); got != G*N+1 {
		t.Fatalf("Len = %d, want %d", got, G*N+1)
	}
	if tr.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0", tr.InFlight())
	}
}

func TestTracerLimitDrops(t *testing.T) {
	tr := NewTracerLimit(2)
	for i := 0; i < 5; i++ {
		tr.Start(0, "s", KindDriver).End()
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSnapshotSinceAndRecent(t *testing.T) {
	tr := NewTracer()
	tr.Start(0, "a", KindDriver).End()
	mark := tr.Len()
	tr.Start(0, "b", KindDriver).End()
	tr.Start(0, "c", KindDriver).End()
	snap := tr.SnapshotSince(mark)
	if len(snap.Spans) != 2 {
		t.Fatalf("SnapshotSince = %d spans, want 2", len(snap.Spans))
	}
	rec := tr.Recent(2)
	if len(rec) != 2 || rec[0].Name != "c" || rec[1].Name != "b" {
		t.Fatalf("Recent = %+v", rec)
	}
	if got := tr.Recent(100); len(got) != 3 {
		t.Fatalf("Recent(100) = %d spans, want 3", len(got))
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	root := tr.Start(0, "engine.multiply", KindDriver)
	cub := tr.Start(root.ID(), "cuboid", KindDriver)
	cub.SetCuboid(0, 1, 0)
	rpc := tr.Start(cub.ID(), "rpc.multiply", KindRPC)
	rpc.SetWorker("127.0.0.1:7070")
	rpc.AddBytes(2048)
	time.Sleep(time.Millisecond)
	rpc.End()
	cub.End()
	tr.AddCompleted(SpanData{
		Parent: root.ID(), Name: "sgemm", Kind: KindDevice,
		Worker: "gpu0/stream1", P: -1, Q: -1, R: -1,
		Start: time.Now().Add(-time.Millisecond), End: time.Now(),
	})
	root.End()

	var buf bytes.Buffer
	if err := tr.Snapshot().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	var complete, meta int
	names := map[string]bool{}
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete++
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("X event without numeric ts: %v", ev)
			}
		case "M":
			meta++
			if args, ok := ev["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
		}
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if meta < 3 { // process_name + at least driver/rpc lanes
		t.Fatalf("metadata events = %d, want >= 3", meta)
	}
	if !names["driver"] || !names["127.0.0.1:7070"] || !names["gpu0/stream1"] {
		t.Fatalf("lane names missing: %v", names)
	}
	// Cuboid coordinate must surface as an arg.
	if !strings.Contains(buf.String(), `"cuboid":"(0,1,0)"`) {
		t.Fatalf("cuboid arg missing from output: %s", buf.String())
	}
}

func TestDebugHandler(t *testing.T) {
	tr := NewTracer()
	tr.Start(0, "warm", KindDriver).End()
	type snap struct {
		Kind  string      `json:"kind"`
		Trace *TraceDebug `json:"trace"`
	}
	h := Handler(func() any {
		return snap{Kind: "test", Trace: tr.DebugSnapshot(5)}
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/distme")
	if err != nil {
		t.Fatalf("GET /debug/distme: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var got snap
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if got.Kind != "test" || got.Trace == nil || got.Trace.Completed != 1 || len(got.Trace.Recent) != 1 {
		t.Fatalf("snapshot = %+v", got)
	}

	for _, path := range []string{"/", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status = %d", path, resp.StatusCode)
		}
	}
}

func TestServe(t *testing.T) {
	s, err := Serve("127.0.0.1:0", func() any { return map[string]string{"kind": "x"} })
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/debug/distme")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	var m map[string]string
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil || m["kind"] != "x" {
		t.Fatalf("decode: %v, %v", err, m)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s.Close() // idempotent
}

func TestKindJSON(t *testing.T) {
	b, err := json.Marshal(struct {
		K Kind `json:"k"`
	}{KindWorker})
	if err != nil || string(b) != `{"k":"worker"}` {
		t.Fatalf("marshal kind: %v %s", err, b)
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("unknown kind string")
	}
}
