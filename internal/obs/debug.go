// Live introspection endpoints. Handler builds a private ServeMux (never
// http.DefaultServeMux, so importing this package does not leak endpoints
// into unrelated servers) serving:
//
//	/debug/distme   JSON snapshot from the provided callback (driver or
//	                worker state: NetStats, membership, cache occupancy,
//	                in-flight cuboids, recent spans)
//	/debug/pprof/*  the standard net/http/pprof profiles
//	/               a plain-text index of the above
//
// Serve binds a listener and runs the handler until Close; the driver uses
// it for Options.DebugAddr and distme-worker for -debug-addr.

package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler returns an http.Handler exposing the debug surface. snapshot is
// called per /debug/distme request and its result rendered as indented
// JSON; it must be safe for concurrent use.
func Handler(snapshot func() any) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/distme", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "distme debug endpoints:")
		fmt.Fprintln(w, "  /debug/distme        JSON state snapshot")
		fmt.Fprintln(w, "  /debug/pprof/        pprof profile index")
	})
	return mux
}

// Server is a running debug HTTP server, as returned by Serve.
type Server struct {
	l   net.Listener
	srv *http.Server

	once sync.Once
	err  error
}

// Serve binds addr (host:port; port 0 picks a free one) and serves the
// debug Handler on it in a background goroutine until Close.
func Serve(addr string, snapshot func() any) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		l: l,
		srv: &http.Server{
			Handler:           Handler(snapshot),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(l) }()
	return s, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.l.Addr().String() }

// Close shuts the server down and releases the listener. Idempotent.
func (s *Server) Close() error {
	s.once.Do(func() { s.err = s.srv.Close() })
	return s.err
}

// TraceDebug is the tracer section of a /debug/distme snapshot.
type TraceDebug struct {
	Completed int        `json:"completed_spans"`
	InFlight  int64      `json:"inflight_spans"`
	Dropped   uint64     `json:"dropped_spans"`
	Recent    []SpanData `json:"recent,omitempty"`
}

// DebugSnapshot summarizes a tracer for the debug endpoint: counters plus
// the n most recent completed spans. Safe on a nil tracer (returns nil).
func (t *Tracer) DebugSnapshot(n int) *TraceDebug {
	if t == nil {
		return nil
	}
	return &TraceDebug{
		Completed: t.Len(),
		InFlight:  t.InFlight(),
		Dropped:   t.Dropped(),
		Recent:    t.Recent(n),
	}
}
