// Package obs is the engine's observability layer: a lock-cheap span tracer
// threaded end-to-end through plan, optimizer choice, per-cuboid dispatch,
// RPC send/recv, worker compute, and aggregation, plus the live debug HTTP
// endpoints that serve snapshots of it.
//
// The design constraint that shapes the API is that tracing must cost nothing
// when it is off. A nil *Tracer is the off state: every method on Tracer and
// on the Span handles it returns is nil-safe and allocation-free, so call
// sites thread the tracer unconditionally and never guard with an if. The
// hot-path pattern is
//
//	sp := tr.Start(parent, "cuboid", obs.KindDriver) // no-op when tr == nil
//	sp.SetCuboid(p, q, r)
//	defer sp.End()
//
// Attribute strings that themselves cost an allocation to build (fmt.Sprintf
// and friends) should be guarded with sp.Active().
//
// Completed spans accumulate in a bounded in-memory buffer; Snapshot copies
// them out as a Trace, which knows how to render itself as Chrome
// trace_event JSON (chrome://tracing, Perfetto).
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one Tracer. IDs start at 1; 0 means
// "no span" and is the parent of root spans.
type SpanID uint64

// Kind classifies a span for display: which lane of the timeline it belongs
// to and how the debug endpoint groups it.
type Kind uint8

const (
	// KindDriver marks driver-side orchestration: the multiply root,
	// optimizer choice, per-cuboid dispatch, aggregation.
	KindDriver Kind = iota
	// KindRPC marks network activity: a remote Multiply attempt and the
	// wire-codec encode/decode windows under it.
	KindRPC
	// KindWorker marks worker-side compute: decoding a request and running
	// the cuboid product.
	KindWorker
	// KindTask marks a local (in-process cluster) cuboid task.
	KindTask
	// KindDevice marks GPU-simulator activity grafted from gpu.TraceEvent:
	// h2d/d2h copies and kernel launches on their virtual streams.
	KindDevice
	// KindBench marks spans emitted by the benchmark harnesses
	// (distme-bench -trace-out).
	KindBench
)

// String returns the lowercase name used in Chrome trace categories and in
// the debug endpoint JSON.
func (k Kind) String() string {
	switch k {
	case KindDriver:
		return "driver"
	case KindRPC:
		return "rpc"
	case KindWorker:
		return "worker"
	case KindTask:
		return "task"
	case KindDevice:
		return "device"
	case KindBench:
		return "bench"
	}
	return "unknown"
}

// MarshalJSON renders the kind as its string name so the debug endpoint's
// JSON is self-describing.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the string names written by MarshalJSON.
func (k *Kind) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"driver"`:
		*k = KindDriver
	case `"rpc"`:
		*k = KindRPC
	case `"worker"`:
		*k = KindWorker
	case `"task"`:
		*k = KindTask
	case `"device"`:
		*k = KindDevice
	case `"bench"`:
		*k = KindBench
	default:
		return fmt.Errorf("obs: unknown span kind %s", b)
	}
	return nil
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanData is the record of one span. P/Q/R are the cuboid coordinate the
// span worked on, or -1 when the span is not cuboid-scoped. Worker is the
// address (or lane label) the work ran on; empty means the driver process.
type SpanData struct {
	ID     SpanID    `json:"id"`
	Parent SpanID    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Kind   Kind      `json:"kind"`
	Worker string    `json:"worker,omitempty"`
	P      int       `json:"p"`
	Q      int       `json:"q"`
	R      int       `json:"r"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Bytes  int64     `json:"bytes,omitempty"`
	Attrs  []Attr    `json:"attrs,omitempty"`

	ended bool
}

// Duration is End-Start, or 0 for a span that has not ended.
func (s SpanData) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Cuboid reports the (p,q,r) coordinate and whether one was set.
func (s SpanData) Cuboid() (p, q, r int, ok bool) {
	return s.P, s.Q, s.R, s.P >= 0
}

// DefaultSpanLimit bounds the completed-span buffer of a Tracer created by
// NewTracer. At ~150 bytes per span this is a few MiB at most; spans past
// the limit are counted in Dropped rather than stored.
const DefaultSpanLimit = 1 << 17

// Tracer collects completed spans. The zero value is not usable; use
// NewTracer. A nil *Tracer is the disabled state: all methods no-op without
// allocating, so it can be threaded unconditionally.
//
// Span start is lock-free (an atomic ID allocation); only span completion
// takes the mutex, briefly, to append the record.
type Tracer struct {
	nextID  atomic.Uint64
	open    atomic.Int64
	dropped atomic.Uint64

	mu    sync.Mutex
	done  []SpanData
	limit int
}

// NewTracer returns a Tracer bounded at DefaultSpanLimit completed spans.
func NewTracer() *Tracer { return NewTracerLimit(DefaultSpanLimit) }

// NewTracerLimit returns a Tracer that stores at most limit completed spans
// (further completions are dropped and counted).
func NewTracerLimit(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Tracer{limit: limit}
}

// Enabled reports whether the tracer is non-nil (tracing on).
func (t *Tracer) Enabled() bool { return t != nil }

// Start begins a span. parent may be 0 for a root span. Safe on a nil
// tracer, in which case the returned Span is inert.
func (t *Tracer) Start(parent SpanID, name string, kind Kind) Span {
	if t == nil {
		return Span{}
	}
	t.open.Add(1)
	return Span{t: t, rec: &SpanData{
		ID:     SpanID(t.nextID.Add(1)),
		Parent: parent,
		Name:   name,
		Kind:   kind,
		P:      -1,
		Q:      -1,
		R:      -1,
		Start:  time.Now(),
	}}
}

// AddCompleted records an already-finished span (used to graft externally
// timed events, e.g. the GPU simulator's virtual-clock trace, into the
// tree). A zero ID is assigned; the possibly-assigned ID is returned.
// Safe on a nil tracer (returns 0).
func (t *Tracer) AddCompleted(s SpanData) SpanID {
	if t == nil {
		return 0
	}
	if s.ID == 0 {
		s.ID = SpanID(t.nextID.Add(1))
	}
	s.ended = true
	t.add(s)
	return s.ID
}

func (t *Tracer) add(s SpanData) {
	t.mu.Lock()
	if len(t.done) >= t.limit {
		t.dropped.Add(1)
	} else {
		t.done = append(t.done, s)
	}
	t.mu.Unlock()
}

// Len returns the number of completed spans currently stored. Use it as a
// mark before a multiply and SnapshotSince(mark) after to extract just that
// multiply's spans. Safe on a nil tracer (returns 0).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := len(t.done)
	t.mu.Unlock()
	return n
}

// InFlight returns the number of started-but-not-ended spans. Safe on nil.
func (t *Tracer) InFlight() int64 {
	if t == nil {
		return 0
	}
	return t.open.Load()
}

// Dropped returns how many completed spans were discarded because the
// buffer was full. Safe on nil.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Snapshot copies out every completed span, ordered by start time.
// Safe on a nil tracer (returns an empty Trace).
func (t *Tracer) Snapshot() Trace { return t.SnapshotSince(0) }

// SnapshotSince copies out completed spans from index mark (a previous
// Len() result) onward, ordered by start time.
func (t *Tracer) SnapshotSince(mark int) Trace {
	if t == nil {
		return Trace{}
	}
	t.mu.Lock()
	if mark < 0 || mark > len(t.done) {
		mark = len(t.done)
	}
	spans := make([]SpanData, len(t.done)-mark)
	copy(spans, t.done[mark:])
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	return Trace{Spans: spans}
}

// Recent returns up to n of the most recently completed spans, newest
// first — the debug endpoint's "what just happened" view. Safe on nil.
func (t *Tracer) Recent(n int) []SpanData {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	if n > len(t.done) {
		n = len(t.done)
	}
	out := make([]SpanData, n)
	for i := 0; i < n; i++ {
		out[i] = t.done[len(t.done)-1-i]
	}
	t.mu.Unlock()
	return out
}

// Reset discards all completed spans and the dropped counter (open-span
// accounting is preserved). Safe on nil.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.done = t.done[:0]
	t.mu.Unlock()
	t.dropped.Store(0)
}

// Span is a live handle to an in-progress span. The zero value (from a nil
// tracer) is inert: every method is a no-op and allocation-free. Spans are
// value types; pass them by value. A span must be ended by exactly one
// goroutine; the setters are not synchronized.
type Span struct {
	t   *Tracer
	rec *SpanData
}

// Active reports whether the span is recording. Use it to guard attribute
// construction that would itself allocate.
func (sp Span) Active() bool { return sp.t != nil }

// ID returns the span's ID, or 0 for an inert span. Children parent to this.
func (sp Span) ID() SpanID {
	if sp.rec == nil {
		return 0
	}
	return sp.rec.ID
}

// SetWorker records the worker address (timeline lane) the span ran on.
func (sp Span) SetWorker(addr string) {
	if sp.rec != nil {
		sp.rec.Worker = addr
	}
}

// SetCuboid records the (p,q,r) cuboid coordinate the span worked on.
func (sp Span) SetCuboid(p, q, r int) {
	if sp.rec != nil {
		sp.rec.P, sp.rec.Q, sp.rec.R = p, q, r
	}
}

// AddBytes adds n to the span's byte counter (payload moved or produced).
func (sp Span) AddBytes(n int64) {
	if sp.rec != nil {
		sp.rec.Bytes += n
	}
}

// SetAttr appends a key/value annotation.
func (sp Span) SetAttr(key, value string) {
	if sp.rec != nil {
		sp.rec.Attrs = append(sp.rec.Attrs, Attr{Key: key, Value: value})
	}
}

// End stamps the span's end time and commits it to the tracer. Ending an
// already-ended or inert span is a no-op.
func (sp Span) End() {
	if sp.t == nil || sp.rec == nil || sp.rec.ended {
		return
	}
	sp.rec.ended = true
	sp.rec.End = time.Now()
	sp.t.open.Add(-1)
	sp.t.add(*sp.rec)
}
