// Chrome trace_event export: a Trace renders itself as the JSON array-of-
// events format understood by chrome://tracing and https://ui.perfetto.dev.
// Each distinct lane (worker address, GPU stream, or span kind) becomes a
// named "thread" row; spans become "X" (complete) events with microsecond
// timestamps relative to the earliest span in the trace.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Trace is an immutable copy of completed spans, as returned by
// Tracer.Snapshot. It is what engine reports carry and what the Chrome
// exporter consumes.
type Trace struct {
	Spans []SpanData `json:"spans"`
}

// Empty reports whether the trace holds no spans.
func (tr Trace) Empty() bool { return len(tr.Spans) == 0 }

// chromeEvent is one entry of the trace_event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// lane returns the timeline row a span is drawn on: the worker address when
// set (one row per remote worker / GPU stream / cuboid lane), else the span
// kind.
func (s SpanData) lane() string {
	if s.Worker != "" {
		return s.Worker
	}
	return s.Kind.String()
}

// WriteChromeTrace writes the trace as Chrome trace_event JSON. Load the
// result in chrome://tracing or Perfetto; rows are lanes (driver, one per
// worker, GPU streams), boxes are spans, and box args carry cuboid
// coordinates, byte counts, and attributes.
func (tr Trace) WriteChromeTrace(w io.Writer) error {
	// Deterministic lane numbering: driver lane first, then the rest sorted.
	laneIDs := make(map[string]int)
	var lanes []string
	for _, s := range tr.Spans {
		l := s.lane()
		if _, ok := laneIDs[l]; !ok {
			laneIDs[l] = 0
			lanes = append(lanes, l)
		}
	}
	sort.Slice(lanes, func(i, j int) bool {
		pi, pj := lanePriority(lanes[i]), lanePriority(lanes[j])
		if pi != pj {
			return pi < pj
		}
		return lanes[i] < lanes[j]
	})
	for i, l := range lanes {
		laneIDs[l] = i + 1
	}

	var origin time.Time
	for _, s := range tr.Spans {
		if origin.IsZero() || s.Start.Before(origin) {
			origin = s.Start
		}
	}

	events := make([]chromeEvent, 0, len(tr.Spans)+len(lanes)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "distme"},
	})
	for _, l := range lanes {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: laneIDs[l],
			Args: map[string]any{"name": l},
		})
	}
	for _, s := range tr.Spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Kind.String(),
			Ph:   "X",
			Ts:   float64(s.Start.Sub(origin)) / float64(time.Microsecond),
			Dur:  float64(s.Duration()) / float64(time.Microsecond),
			Pid:  1,
			Tid:  laneIDs[s.lane()],
		}
		args := map[string]any{"span": uint64(s.ID)}
		if s.Parent != 0 {
			args["parent"] = uint64(s.Parent)
		}
		if s.P >= 0 {
			args["cuboid"] = fmt.Sprintf("(%d,%d,%d)", s.P, s.Q, s.R)
		}
		if s.Bytes != 0 {
			args["bytes"] = s.Bytes
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		ev.Args = args
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// lanePriority orders rows in the viewer: driver orchestration on top, then
// network, workers/tasks, devices, benches.
func lanePriority(lane string) int {
	switch lane {
	case "driver":
		return 0
	case "rpc":
		return 1
	case "worker", "task":
		return 2
	case "device":
		return 4
	case "bench":
		return 5
	}
	return 3
}

// WriteFile writes the Chrome trace JSON to path (0644).
func (tr Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
