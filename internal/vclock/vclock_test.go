package vclock

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSerialResourceFIFO(t *testing.T) {
	var r SerialResource
	s1, e1 := r.Schedule(0, 2)
	if s1 != 0 || e1 != 2 {
		t.Fatalf("first = [%g, %g)", s1, e1)
	}
	// Ready before the resource frees: must wait.
	s2, e2 := r.Schedule(1, 3)
	if s2 != 2 || e2 != 5 {
		t.Fatalf("second = [%g, %g), want [2, 5)", s2, e2)
	}
	// Ready after the resource frees: starts at ready time.
	s3, e3 := r.Schedule(10, 1)
	if s3 != 10 || e3 != 11 {
		t.Fatalf("third = [%g, %g), want [10, 11)", s3, e3)
	}
	if r.FreeAt() != 11 {
		t.Fatalf("FreeAt = %g", r.FreeAt())
	}
}

func TestSerialResourceNeverOverlaps(t *testing.T) {
	f := func(durs []float64) bool {
		var r SerialResource
		var prevEnd Time
		for _, d := range durs {
			d = math.Abs(d)
			if math.IsNaN(d) || math.IsInf(d, 0) || d > 1e6 {
				d = 1
			}
			s, e := r.Schedule(0, d)
			if s < prevEnd {
				return false
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSerialResourceReset(t *testing.T) {
	var r SerialResource
	r.Schedule(0, 5)
	r.Reset()
	if r.FreeAt() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestIntervalSetBusyTimeMergesOverlaps(t *testing.T) {
	var s IntervalSet
	s.Add(0, 2)
	s.Add(1, 3) // overlaps → union [0,3)
	s.Add(5, 6) // disjoint
	if got := s.BusyTime(); got != 4 {
		t.Fatalf("BusyTime = %g, want 4", got)
	}
	if got := s.Makespan(); got != 6 {
		t.Fatalf("Makespan = %g, want 6", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestIntervalSetIgnoresEmptySpans(t *testing.T) {
	var s IntervalSet
	s.Add(2, 2)
	s.Add(3, 1)
	if s.Len() != 0 || s.BusyTime() != 0 {
		t.Fatal("degenerate spans not ignored")
	}
}

func TestIntervalSetContainment(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(2, 3) // fully contained
	if got := s.BusyTime(); got != 10 {
		t.Fatalf("BusyTime = %g, want 10", got)
	}
}

func TestIntervalSetEmpty(t *testing.T) {
	var s IntervalSet
	if s.BusyTime() != 0 || s.Makespan() != 0 {
		t.Fatal("empty set should be zero")
	}
}

func TestIntervalSetReset(t *testing.T) {
	var s IntervalSet
	s.Add(0, 1)
	s.Reset()
	if s.BusyTime() != 0 {
		t.Fatal("Reset left intervals")
	}
}

// Property: BusyTime ≤ Makespan and BusyTime ≤ sum of span lengths.
func TestBusyTimeBoundsProperty(t *testing.T) {
	f := func(starts []float64) bool {
		var s IntervalSet
		var sum float64
		for _, st := range starts {
			st = math.Mod(math.Abs(st), 100)
			if math.IsNaN(st) {
				st = 0
			}
			s.Add(Time(st), Time(st+1))
			sum++
		}
		busy := s.BusyTime()
		return busy <= float64(s.Makespan())+1e-9 && busy <= sum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMax(t *testing.T) {
	if Max(1, 2) != 2 || Max(3, 2) != 3 {
		t.Fatal("Max wrong")
	}
}
