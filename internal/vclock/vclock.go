// Package vclock provides the small virtual-time primitives behind the
// simulated GPU timeline and the paper-scale cost model: serially-owned
// resources (the PCI-E copy engine), interval bookkeeping (kernel busy time
// for the utilization figure), and unit helpers. Virtual time is float64
// seconds; all arithmetic is deterministic.
package vclock

import "sort"

// Time is a point in virtual time, in seconds since the start of a run.
type Time float64

// SerialResource models a device that serves one request at a time in FIFO
// order of readiness — the H2D/D2H copy engine of the simulated GPU, which
// per the paper "cannot overlap" copies across streams.
type SerialResource struct {
	free Time
}

// Schedule books a request that becomes ready at ready and occupies the
// resource for dur. It returns the start and end times of service.
func (r *SerialResource) Schedule(ready Time, dur float64) (start, end Time) {
	start = ready
	if r.free > start {
		start = r.free
	}
	end = start + Time(dur)
	r.free = end
	return start, end
}

// FreeAt reports when the resource next becomes idle.
func (r *SerialResource) FreeAt() Time { return r.free }

// Reset returns the resource to idle at time zero.
func (r *SerialResource) Reset() { r.free = 0 }

// Interval is a half-open busy span [Start, End).
type Interval struct {
	Start, End Time
}

// IntervalSet accumulates busy intervals and reports their union length and
// overall makespan. Used to compute GPU core utilization (Figure 7(g)):
// union of kernel-busy intervals divided by the timeline makespan.
type IntervalSet struct {
	spans []Interval
}

// Add records a busy interval. Zero- or negative-length spans are ignored.
func (s *IntervalSet) Add(start, end Time) {
	if end <= start {
		return
	}
	s.spans = append(s.spans, Interval{start, end})
}

// BusyTime returns the total length of the union of all intervals.
func (s *IntervalSet) BusyTime() float64 {
	if len(s.spans) == 0 {
		return 0
	}
	spans := make([]Interval, len(s.spans))
	copy(spans, s.spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	var total float64
	cur := spans[0]
	for _, sp := range spans[1:] {
		if sp.Start <= cur.End {
			if sp.End > cur.End {
				cur.End = sp.End
			}
			continue
		}
		total += float64(cur.End - cur.Start)
		cur = sp
	}
	total += float64(cur.End - cur.Start)
	return total
}

// Makespan returns the latest End across all intervals (0 when empty).
func (s *IntervalSet) Makespan() Time {
	var m Time
	for _, sp := range s.spans {
		if sp.End > m {
			m = sp.End
		}
	}
	return m
}

// Len returns the number of recorded intervals.
func (s *IntervalSet) Len() int { return len(s.spans) }

// Reset discards all intervals.
func (s *IntervalSet) Reset() { s.spans = nil }

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
