package soak

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"distme/internal/distnet"
)

// Histo is a latency distribution summary in nanoseconds.
type Histo struct {
	Count    int   `json:"count"`
	P50Nanos int64 `json:"p50_ns"`
	P90Nanos int64 `json:"p90_ns"`
	P99Nanos int64 `json:"p99_ns"`
	MaxNanos int64 `json:"max_ns"`
}

func histoOf(ds []time.Duration) Histo {
	if len(ds) == 0 {
		return Histo{}
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(s)))
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i].Nanoseconds()
	}
	return Histo{
		Count:    len(s),
		P50Nanos: at(0.50),
		P90Nanos: at(0.90),
		P99Nanos: at(0.99),
		MaxNanos: s[len(s)-1].Nanoseconds(),
	}
}

func (h Histo) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%s p90=%s p99=%s max=%s",
		h.Count,
		time.Duration(h.P50Nanos),
		time.Duration(h.P90Nanos),
		time.Duration(h.P99Nanos),
		time.Duration(h.MaxNanos))
}

// RunStats is one schedule execution's outcome (measured or baseline).
type RunStats struct {
	// Autoscaled reports whether the self-healing supervisor ran.
	Autoscaled bool `json:"autoscaled"`
	// Jobs is the total submitted; Errors the ones that failed (budgeted —
	// churn makes some failure normal); Mismatches the ones whose result
	// diverged bitwise from the reference (always fatal).
	Jobs       int `json:"jobs"`
	Errors     int `json:"errors"`
	Mismatches int `json:"mismatches"`
	// ErrorSamples holds the first few error/mismatch messages for triage.
	ErrorSamples []string `json:"error_samples,omitempty"`
	// Latency is the all-jobs distribution; PerKind splits it by job kind.
	Latency Histo            `json:"latency"`
	PerKind map[string]Histo `json:"per_kind"`
	// Kills counts injected worker crashes; KillsRecovered the ones the
	// autoscaler repaired within the watch window; Recovery their
	// time-to-restored-capacity distribution.
	Kills          int   `json:"kills"`
	KillsRecovered int   `json:"kills_recovered"`
	Recovery       Histo `json:"recovery"`
	// Autoscaler counters and its applied-decision log.
	ScaleUps       int64                `json:"scale_ups"`
	ScaleDowns     int64                `json:"scale_downs"`
	WorkersRetired int64                `json:"workers_retired"`
	StragglerRPCs  int64                `json:"straggler_rpcs"`
	Events         []distnet.ScaleEvent `json:"events,omitempty"`
	// Leak gauges at teardown: driver-modeled resident bytes and handles
	// still resident in live workers' stores. Both must be zero.
	LeakedResidentBytes int64 `json:"leaked_resident_bytes"`
	LeakedStoreHandles  int   `json:"leaked_store_handles"`
}

// Report is the full soak output, written to BENCH_soak.json.
type Report struct {
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`
	// Main is the measured autoscaled run; Baseline the same schedule with
	// the autoscaler off (kills never repaired).
	Main     RunStats `json:"main"`
	Baseline RunStats `json:"baseline"`
	// P99DegradationX is baseline p99 over measured p99 — what the
	// self-healing loop bought.
	P99DegradationX float64 `json:"p99_degradation_x"`
	SLOP99Nanos     int64   `json:"slo_p99_ns"`
	// Goroutine census at Run start and after teardown settle.
	GoroutinesStart int `json:"goroutines_start"`
	GoroutinesEnd   int `json:"goroutines_end"`
	// Passed is the overall verdict; Failures lists every violated gate.
	Passed   bool     `json:"passed"`
	Failures []string `json:"failures,omitempty"`
}

// check applies the acceptance gates and fills Failures.
func (r *Report) check(p Profile) {
	fail := func(format string, args ...any) {
		r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
	}
	for _, run := range []struct {
		name string
		s    RunStats
	}{{"main", r.Main}, {"baseline", r.Baseline}} {
		if run.s.Mismatches > 0 {
			fail("%s: %d result(s) not bit-identical to reference", run.name, run.s.Mismatches)
		}
		budget := run.s.Jobs / 20
		if budget < 2 {
			budget = 2
		}
		if run.s.Errors > budget {
			fail("%s: %d job errors exceed the %d budget (samples: %v)",
				run.name, run.s.Errors, budget, run.s.ErrorSamples)
		}
		if run.s.LeakedResidentBytes != 0 {
			fail("%s: %d resident bytes leaked after all sessions closed", run.name, run.s.LeakedResidentBytes)
		}
		if run.s.LeakedStoreHandles != 0 {
			fail("%s: %d handles leaked in live worker stores", run.name, run.s.LeakedStoreHandles)
		}
	}
	if r.Main.Latency.P99Nanos > r.SLOP99Nanos {
		fail("main: p99 %s breaches the %s SLO",
			time.Duration(r.Main.Latency.P99Nanos), time.Duration(r.SLOP99Nanos))
	}
	if r.Main.ScaleUps < int64(p.MinScaleUps) {
		fail("main: %d scale-ups, need at least %d", r.Main.ScaleUps, p.MinScaleUps)
	}
	if r.Main.ScaleDowns < int64(p.MinScaleDowns) {
		fail("main: %d scale-downs, need at least %d", r.Main.ScaleDowns, p.MinScaleDowns)
	}
	if r.Main.Kills > 0 && r.Main.KillsRecovered == 0 {
		fail("main: none of %d kills recovered within %s", r.Main.Kills, recoveryTimeout)
	}
	if p.MinP99DegradationX > 0 && r.P99DegradationX < p.MinP99DegradationX {
		fail("baseline p99 degradation %.2fx below the %.2fx floor (the autoscaler should measurably matter)",
			r.P99DegradationX, p.MinP99DegradationX)
	}
	if r.GoroutinesEnd > r.GoroutinesStart+4 {
		fail("goroutine leak: %d at start, %d after teardown settle", r.GoroutinesStart, r.GoroutinesEnd)
	}
}

// WriteJSON writes the report to a file.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Fprint renders the report for a terminal.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "soak %s (seed %d): ", r.Profile, r.Seed)
	if r.Passed {
		fmt.Fprintln(w, "PASS")
	} else {
		fmt.Fprintln(w, "FAIL")
	}
	for _, run := range []struct {
		name string
		s    RunStats
	}{{"main (autoscaled)", r.Main}, {"baseline (static)", r.Baseline}} {
		s := run.s
		fmt.Fprintf(w, "  %-18s jobs=%d errors=%d mismatches=%d\n", run.name, s.Jobs, s.Errors, s.Mismatches)
		fmt.Fprintf(w, "    latency  %s\n", s.Latency)
		fmt.Fprintf(w, "    chaos    kills=%d recovered=%d recovery %s\n", s.Kills, s.KillsRecovered, s.Recovery)
		fmt.Fprintf(w, "    scaling  up=%d down=%d retired=%d stragglerRPCs=%d\n",
			s.ScaleUps, s.ScaleDowns, s.WorkersRetired, s.StragglerRPCs)
	}
	fmt.Fprintf(w, "  p99 degradation without autoscaler: %.2fx (SLO %s)\n",
		r.P99DegradationX, time.Duration(r.SLOP99Nanos))
	fmt.Fprintf(w, "  goroutines %d -> %d, leaked bytes main=%d baseline=%d\n",
		r.GoroutinesStart, r.GoroutinesEnd, r.Main.LeakedResidentBytes, r.Baseline.LeakedResidentBytes)
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  FAIL: %s\n", f)
	}
}
