// Package soak is the long-horizon chaos harness for the self-healing
// cluster: a seeded, deterministic mixed workload (classic cuboid
// multiplies, pull-plane multiplies, batched tiny jobs, GNMF and PageRank
// pipelines) running
// against an autoscaled in-process pool while the harness kills workers and
// throttles links on a schedule. Every job's result is compared bit-for-bit
// against a reference computed on the clean cluster before chaos begins —
// the engine's core guarantee is that failures and elasticity never change
// results — and the run fails on any mismatch, leaked goroutine or handle
// byte, SLO breach, or an autoscaler that never actually scaled.
//
// The same schedule runs twice: once with the autoscaler (the measured
// run), once without it (the baseline). The baseline's kills are never
// repaired, so its p99 shows what the self-healing loop buys; the full
// profile enforces a minimum degradation ratio, the smoke profile records
// it informationally (CI timing is too noisy to gate on).
//
// distme-bench -soak drives Run and writes BENCH_soak.json.
package soak

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/distnet"
	"distme/internal/ml"
	"distme/internal/obs"
	"distme/internal/plan"
)

// Profile is one soak configuration. Smoke and Full return the two stock
// profiles; all timing is wall-clock, so the knobs trade coverage for run
// length.
type Profile struct {
	// Name labels the report ("smoke", "full").
	Name string
	// Seed pins every random choice in the run: workload mix, chaos
	// schedule, retry jitter, chaos-proxy delays. Same seed, same schedule.
	Seed int64
	// InitialWorkers is the pool size at dial time; MinWorkers/MaxWorkers
	// bound the autoscaler.
	InitialWorkers, MinWorkers, MaxWorkers int
	// Cycles alternate a BurstFor phase of Submitters concurrent job
	// streams with an IdleFor quiet phase. Bursts drive scale-ups, idles
	// drive scale-downs; from cycle 1 on, one worker is killed mid-burst.
	Cycles     int
	BurstFor   time.Duration
	IdleFor    time.Duration
	Submitters int
	// JobTimeout bounds one job end to end.
	JobTimeout time.Duration
	// SLOP99 is the measured run's p99 latency objective.
	SLOP99 time.Duration
	// MinScaleUps/MinScaleDowns are the acceptance floor on applied
	// autoscaler decisions — a soak whose chaos never forced the loop to
	// act proves nothing.
	MinScaleUps, MinScaleDowns int
	// MinP99DegradationX, when positive, requires baseline p99 to be at
	// least this multiple of the measured p99 (the "removing the
	// autoscaler must hurt" check). 0 records the ratio without gating.
	MinP99DegradationX float64
}

// Smoke is the CI profile: three burst/idle cycles, ~50s wall including the
// baseline run, degradation recorded but not enforced.
func Smoke() Profile {
	return Profile{
		Name:           "smoke",
		Seed:           42,
		InitialWorkers: 3,
		MinWorkers:     2,
		MaxWorkers:     6,
		Cycles:         3,
		BurstFor:       3 * time.Second,
		IdleFor:        4 * time.Second,
		Submitters:     8,
		JobTimeout:     20 * time.Second,
		SLOP99:         5 * time.Second,
		MinScaleUps:    3,
		MinScaleDowns:  3,
	}
}

// Full is the nightly profile: more cycles, longer phases, and the
// baseline-degradation gate on.
func Full() Profile {
	return Profile{
		Name:               "full",
		Seed:               42,
		InitialWorkers:     3,
		MinWorkers:         2,
		MaxWorkers:         6,
		Cycles:             8,
		BurstFor:           5 * time.Second,
		IdleFor:            6 * time.Second,
		Submitters:         8,
		JobTimeout:         30 * time.Second,
		SLOP99:             5 * time.Second,
		MinScaleUps:        6,
		MinScaleDowns:      6,
		MinP99DegradationX: 1.05,
	}
}

// Chaos-proxy tuning: the proxyNth-th worker grown sits behind a throttled
// relay, turning it into a straggler the health plane must catch. The
// throttle models one bad link in the initial fleet, so it lands on an
// initial worker and the autoscaler's replacements come up clean — in the
// baseline run the kill schedule then funnels ever more traffic through the
// bad link, which is exactly the failure mode self-healing exists to dodge.
const (
	proxyNth            = 2
	proxyAcceptDelayMax = 30 * time.Millisecond
	proxyChunkDelay     = 4 * time.Millisecond
	// workerStoreBytes keeps the handle stores small enough that pipeline
	// jobs exercise eviction pressure during bursts.
	workerStoreBytes = 512 << 10
	// recoveryTimeout caps one kill's recovery watch.
	recoveryTimeout = 10 * time.Second
)

// workload is the fixed, seeded input set. Each job kind reuses the same
// operands; references are computed once on the clean cluster before chaos,
// which the bit-identical guarantee makes valid for every later repeat.
type workload struct {
	mulA, mulB *bmat.BlockMatrix
	mulParams  core.Params
	mulRef     *bmat.BlockMatrix

	batA, batB *bmat.BlockMatrix
	batParams  core.Params
	batRef     *bmat.BlockMatrix

	gnmfV        *bmat.BlockMatrix
	gnmfOpt      ml.GNMFOptions
	gnmfW, gnmfH *bmat.BlockMatrix
	prMT, prR    *bmat.BlockMatrix
	prExpr       plan.Expr
	prRef        *bmat.BlockMatrix
}

func buildWorkload(seed int64) *workload {
	rng := rand.New(rand.NewSource(seed))
	w := &workload{
		mulParams: core.Params{P: 2, Q: 2, R: 2},
		batParams: core.Params{P: 4, Q: 4, R: 1},
		gnmfOpt:   ml.GNMFOptions{Rank: 4, Seed: 7},
		prExpr:    plan.Mul(plan.V("mt"), plan.V("r")),
	}
	w.mulA = bmat.RandomDense(rng, 64, 48, 8)
	w.mulB = bmat.RandomDense(rng, 48, 56, 8)
	w.batA = bmat.RandomDense(rng, 32, 32, 8)
	w.batB = bmat.RandomDense(rng, 32, 32, 8)
	w.gnmfV = bmat.RandomSparse(rng, 48, 40, 8, 0.3)
	w.prMT = bmat.RandomSparse(rng, 80, 80, 8, 0.2)
	w.prR = bmat.RandomDense(rng, 80, 1, 8)
	return w
}

// jobKinds and their mix weights (mul 30%, tiny-batch 25%, pull-mul 15%,
// gnmf 15%, pagerank 15%). pull-mul runs the same multiply as mul through
// the one-sided pull plane and compares against the push-computed
// reference, so the soak also holds the two data planes to bit-identity
// under every kill and throttle in the schedule.
var jobKinds = []struct {
	name   string
	weight int
}{
	{"mul", 30},
	{"tiny-batch", 25},
	{"pull-mul", 15},
	{"gnmf", 15},
	{"pagerank", 15},
}

func pickKind(rng *rand.Rand) string {
	total := 0
	for _, k := range jobKinds {
		total += k.weight
	}
	n := rng.Intn(total)
	for _, k := range jobKinds {
		if n < k.weight {
			return k.name
		}
		n -= k.weight
	}
	return jobKinds[0].name
}

func bitEqual(a, b *bmat.BlockMatrix) bool {
	if a == nil || b == nil {
		return false
	}
	x, y := a.ToDense(), b.ToDense()
	xr, xc := x.Dims()
	yr, yc := y.Dims()
	if xr != yr || xc != yc {
		return false
	}
	for i := range x.Data {
		if math.Float64bits(x.Data[i]) != math.Float64bits(y.Data[i]) {
			return false
		}
	}
	return true
}

// harness is one run's live state: the driver, its pool, the chaos proxies,
// and the workload.
type harness struct {
	p       Profile
	d       *distnet.Driver
	pool    *distnet.InProcPool
	w       *workload
	timeout time.Duration

	pmu     sync.Mutex
	proxies []*chaosProxy
	proxied map[string]bool // advertised addrs behind a chaos proxy
	killed  map[string]bool

	grown atomic.Int64
}

// startHarness provisions the initial pool through the same InProcPool the
// autoscaler grows, so every worker — initial or scaled-up — is a drain and
// kill candidate.
func startHarness(p Profile, autoscale bool, tracer *obs.Tracer) (*harness, error) {
	h := &harness{
		p:       p,
		w:       buildWorkload(p.Seed),
		timeout: p.JobTimeout,
		proxied: map[string]bool{},
		killed:  map[string]bool{},
	}
	h.pool = &distnet.InProcPool{
		Opts: distnet.WorkerOptions{StoreBytes: workerStoreBytes},
	}
	h.pool.Wrap = func(realAddr string) string {
		n := h.grown.Add(1)
		if n != proxyNth {
			return realAddr
		}
		proxy, err := startChaosProxy(realAddr, p.Seed+n, proxyAcceptDelayMax, proxyChunkDelay)
		if err != nil {
			return realAddr
		}
		h.pmu.Lock()
		h.proxies = append(h.proxies, proxy)
		h.proxied[proxy.addr()] = true
		h.pmu.Unlock()
		return proxy.addr()
	}

	addrs := make([]string, 0, p.InitialWorkers)
	for i := 0; i < p.InitialWorkers; i++ {
		addr, err := h.pool.Grow(context.Background())
		if err != nil {
			h.close()
			return nil, err
		}
		addrs = append(addrs, addr)
	}
	d, err := distnet.DialOptions(addrs, distnet.Options{
		HeartbeatInterval: 50 * time.Millisecond,
		PingTimeout:       time.Second,
		CallTimeout:       15 * time.Second,
		SuspectAfter:      1,
		DeadAfter:         2,
		PerWorkerInflight: 2,
		BatchBytes:        4096,
		JitterSeed:        p.Seed,
		Tracer:            tracer,
	})
	if err != nil {
		h.close()
		return nil, err
	}
	h.d = d
	if autoscale {
		err := d.StartAutoscaler(distnet.AutoscalerOptions{
			Pool: h.pool,
			Policy: &distnet.HysteresisPolicy{
				MinWorkers:    p.MinWorkers,
				MaxWorkers:    p.MaxWorkers,
				UpPressure:    0.75,
				UpAfter:       2,
				DownPressure:  0.2,
				DownAfter:     10,
				CooldownTicks: 10,
			},
			Interval:     100 * time.Millisecond,
			DrainTimeout: 2 * time.Second,
			RetireAfter:  2 * time.Second,
		})
		if err != nil {
			h.close()
			return nil, err
		}
	}
	return h, nil
}

func (h *harness) close() {
	if h.d != nil {
		h.d.Close()
	}
	if h.pool != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		h.pool.Close(ctx)
		cancel()
	}
	h.pmu.Lock()
	proxies := h.proxies
	h.proxies = nil
	h.pmu.Unlock()
	for _, p := range proxies {
		p.close()
	}
}

// runJob executes one job of the named kind and verifies its result against
// the precomputed reference. The returned mismatch is a hard failure (the
// bit-identity guarantee broke); an error is a counted, budgeted outcome
// (the cluster was mid-churn).
func (h *harness) runJob(kind string) (mismatch bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	w := h.w
	switch kind {
	case "mul":
		got, err := h.d.Multiply(w.mulA, w.mulB, w.mulParams)
		if err != nil {
			return false, err
		}
		return !bitEqual(got, w.mulRef), nil
	case "tiny-batch":
		got, err := h.d.Multiply(w.batA, w.batB, w.batParams)
		if err != nil {
			return false, err
		}
		return !bitEqual(got, w.batRef), nil
	case "pull-mul":
		got, _, err := h.d.Execute(ctx, w.mulA, w.mulB, distnet.MultiplyOptions{
			Params:   &w.mulParams,
			Transfer: core.TransferPull,
		})
		if err != nil {
			return false, err
		}
		// Same reference as "mul": the pull plane must agree with push
		// bit for bit, chaos or not.
		return !bitEqual(got, w.mulRef), nil
	case "gnmf":
		sess, err := h.d.NewSession(ctx)
		if err != nil {
			return false, err
		}
		defer sess.Close(ctx)
		pipe, err := ml.NewGNMFPipeline[*distnet.Handle](ctx, sess, w.gnmfV, w.gnmfOpt)
		if err != nil {
			return false, err
		}
		defer pipe.Close(ctx)
		if err := pipe.Step(ctx); err != nil {
			return false, err
		}
		res, err := pipe.Factors(ctx)
		if err != nil {
			return false, err
		}
		return !bitEqual(res.W, w.gnmfW) || !bitEqual(res.H, w.gnmfH), nil
	case "pagerank":
		sess, err := h.d.NewSession(ctx)
		if err != nil {
			return false, err
		}
		defer sess.Close(ctx)
		hmt, err := sess.Put(ctx, w.prMT)
		if err != nil {
			return false, err
		}
		if err := sess.Pin(ctx, hmt); err != nil {
			return false, err
		}
		hr, err := sess.Put(ctx, w.prR)
		if err != nil {
			return false, err
		}
		hs, err := sess.Run(ctx, w.prExpr, map[string]*distnet.Handle{"mt": hmt, "r": hr})
		if err != nil {
			return false, err
		}
		got, err := sess.Fetch(ctx, hs)
		if err != nil {
			return false, err
		}
		return !bitEqual(got, w.prRef), nil
	}
	return false, fmt.Errorf("soak: unknown job kind %q", kind)
}

// precomputeRefs runs each kind once on the clean cluster and stores the
// results as the references every later repeat must match bit-for-bit.
func (h *harness) precomputeRefs() error {
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	w := h.w
	var err error
	if w.mulRef, err = h.d.Multiply(w.mulA, w.mulB, w.mulParams); err != nil {
		return fmt.Errorf("soak: mul reference: %w", err)
	}
	if w.batRef, err = h.d.Multiply(w.batA, w.batB, w.batParams); err != nil {
		return fmt.Errorf("soak: tiny-batch reference: %w", err)
	}
	sess, err := h.d.NewSession(ctx)
	if err != nil {
		return err
	}
	defer sess.Close(ctx)
	pipe, err := ml.NewGNMFPipeline[*distnet.Handle](ctx, sess, w.gnmfV, w.gnmfOpt)
	if err != nil {
		return err
	}
	if err := pipe.Step(ctx); err != nil {
		return fmt.Errorf("soak: gnmf reference: %w", err)
	}
	res, err := pipe.Factors(ctx)
	if err != nil {
		return err
	}
	if err := pipe.Close(ctx); err != nil {
		return err
	}
	w.gnmfW, w.gnmfH = res.W, res.H
	hmt, err := sess.Put(ctx, w.prMT)
	if err != nil {
		return err
	}
	hr, err := sess.Put(ctx, w.prR)
	if err != nil {
		return err
	}
	hs, err := sess.Run(ctx, w.prExpr, map[string]*distnet.Handle{"mt": hmt, "r": hr})
	if err != nil {
		return fmt.Errorf("soak: pagerank reference: %w", err)
	}
	if w.prRef, err = sess.Fetch(ctx, hs); err != nil {
		return err
	}
	return nil
}

// pickVictim chooses the kill target: an alive, pool-owned worker,
// preferring unproxied ones so the baseline run keeps its straggler — the
// adversarial choice a real failure domain would make for us.
func (h *harness) pickVictim() string {
	h.pmu.Lock()
	defer h.pmu.Unlock()
	victim := ""
	for _, m := range h.d.Members() {
		if m.State != distnet.StateAlive || m.Draining || h.killed[m.Addr] || !h.pool.Owns(m.Addr) {
			continue
		}
		if !h.proxied[m.Addr] {
			return m.Addr
		}
		victim = m.Addr
	}
	return victim
}

// kill crashes one worker mid-burst and returns the live count just before,
// which recovery watchers use as the restore target. Returns "" when no
// safe victim exists (the pool is already at one live worker).
func (h *harness) kill() (addr string, liveBefore int) {
	liveBefore = h.d.ClusterHealth().LiveWorkers
	if liveBefore <= 1 {
		return "", liveBefore
	}
	addr = h.pickVictim()
	if addr == "" {
		return "", liveBefore
	}
	if !h.pool.Kill(addr) {
		return "", liveBefore
	}
	h.pmu.Lock()
	h.killed[addr] = true
	h.pmu.Unlock()
	return addr, liveBefore
}

// waitRecovery times a kill's repair: first the capacity dip (the detector
// noticing the crash — LiveWorkers still counts the corpse until then),
// then the restore back to the pre-kill count. Returns time-from-kill and
// whether capacity came back within recoveryTimeout.
func (h *harness) waitRecovery(target int) (time.Duration, bool) {
	start := time.Now()
	dipDeadline := start.Add(2 * time.Second)
	for time.Now().Before(dipDeadline) {
		if h.d.ClusterHealth().LiveWorkers < target {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for time.Since(start) < recoveryTimeout {
		if h.d.ClusterHealth().LiveWorkers >= target {
			return time.Since(start), true
		}
		time.Sleep(50 * time.Millisecond)
	}
	return time.Since(start), false
}

// leakedStoreHandles sums resident handles across the pool's live workers.
// Killed workers are excluded: they are crashed processes in a real
// deployment, and their in-process object's store is unreachable garbage.
func (h *harness) leakedStoreHandles() int {
	h.pmu.Lock()
	killed := make(map[string]bool, len(h.killed))
	for a := range h.killed {
		killed[a] = true
	}
	h.pmu.Unlock()
	sum := 0
	for _, addr := range h.pool.Addrs() {
		if killed[addr] {
			continue
		}
		if w := h.pool.Worker(addr); w != nil {
			sum += w.StoreStats().Handles
		}
	}
	return sum
}

// runOnce executes the full burst/idle schedule against one harness and
// collects its RunStats. Chaos (kills) starts at cycle 1 so cycle 0 is a
// clean warmup that seeds the latency distribution.
func runOnce(p Profile, autoscale bool, tracer *obs.Tracer) (*RunStats, *harness, error) {
	h, err := startHarness(p, autoscale, tracer)
	if err != nil {
		return nil, nil, err
	}
	if err := h.precomputeRefs(); err != nil {
		h.close()
		return nil, nil, err
	}

	stats := &RunStats{Autoscaled: autoscale, PerKind: map[string]Histo{}}
	var (
		mu         sync.Mutex
		latencies  []time.Duration
		perKind    = map[string][]time.Duration{}
		recoveries []time.Duration
		watchers   sync.WaitGroup
	)

	for cycle := 0; cycle < p.Cycles; cycle++ {
		var submitters sync.WaitGroup
		burstStart := time.Now()
		for s := 0; s < p.Submitters; s++ {
			submitters.Add(1)
			go func(s int) {
				defer submitters.Done()
				rng := rand.New(rand.NewSource(p.Seed*1000 + int64(cycle)*100 + int64(s)))
				for time.Since(burstStart) < p.BurstFor {
					kind := pickKind(rng)
					t0 := time.Now()
					mismatch, err := h.runJob(kind)
					dur := time.Since(t0)
					mu.Lock()
					stats.Jobs++
					latencies = append(latencies, dur)
					perKind[kind] = append(perKind[kind], dur)
					if err != nil {
						stats.Errors++
						if len(stats.ErrorSamples) < 5 {
							stats.ErrorSamples = append(stats.ErrorSamples, fmt.Sprintf("%s: %v", kind, err))
						}
					} else if mismatch {
						stats.Mismatches++
						if len(stats.ErrorSamples) < 5 {
							stats.ErrorSamples = append(stats.ErrorSamples, kind+": result not bit-identical to reference")
						}
					}
					mu.Unlock()
				}
			}(s)
		}
		// Mid-burst chaos: crash one worker under load. Cycle 0 stays
		// clean so the reference latency distribution has a floor.
		if cycle >= 1 {
			time.Sleep(p.BurstFor / 2)
			if addr, liveBefore := h.kill(); addr != "" {
				mu.Lock()
				stats.Kills++
				mu.Unlock()
				if autoscale {
					watchers.Add(1)
					go func(target int) {
						defer watchers.Done()
						dur, ok := h.waitRecovery(target)
						mu.Lock()
						if ok {
							stats.KillsRecovered++
							recoveries = append(recoveries, dur)
						}
						mu.Unlock()
					}(liveBefore)
				}
			}
		}
		submitters.Wait()
		time.Sleep(p.IdleFor)
	}
	watchers.Wait()

	// Snapshot the decision log before StopAutoscaler drops it.
	stats.Events = h.d.AutoscalerEvents()
	h.d.StopAutoscaler()

	net := h.d.NetStats()
	stats.ScaleUps = net.ScaleUps
	stats.ScaleDowns = net.ScaleDowns
	stats.WorkersRetired = net.WorkersRetired
	stats.StragglerRPCs = net.StragglerRPCs
	stats.LeakedResidentBytes = net.ResidentBytes
	// Session closes racing a kill can leave a worker holding freed
	// handles for a beat; give in-flight frees a moment before counting.
	for i := 0; i < 10; i++ {
		if stats.LeakedStoreHandles = h.leakedStoreHandles(); stats.LeakedStoreHandles == 0 {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}

	stats.Latency = histoOf(latencies)
	for kind, ds := range perKind {
		stats.PerKind[kind] = histoOf(ds)
	}
	stats.Recovery = histoOf(recoveries)
	return stats, h, nil
}

// Run executes the profile: the measured autoscaled run under chaos, then
// the same schedule with no autoscaler as the degradation baseline. The
// report is always returned (so callers can persist it); err is non-nil
// when any acceptance gate failed, with every failure listed in
// Report.Failures.
func Run(p Profile, tracer *obs.Tracer) (*Report, error) {
	report := &Report{
		Profile:     p.Name,
		Seed:        p.Seed,
		SLOP99Nanos: p.SLOP99.Nanoseconds(),
	}
	goroutinesStart := runtime.NumGoroutine()
	report.GoroutinesStart = goroutinesStart

	main, mh, err := runOnce(p, true, tracer)
	if err != nil {
		return report, fmt.Errorf("soak: measured run: %w", err)
	}
	report.Main = *main
	mh.close()

	base, bh, err := runOnce(p, false, nil)
	if err != nil {
		return report, fmt.Errorf("soak: baseline run: %w", err)
	}
	report.Baseline = *base
	bh.close()

	if report.Baseline.Latency.P99Nanos > 0 && report.Main.Latency.P99Nanos > 0 {
		report.P99DegradationX = float64(report.Baseline.Latency.P99Nanos) / float64(report.Main.Latency.P99Nanos)
	}

	// Goroutine settle: both clusters, their autoscalers, watchers, and
	// proxies are down; the count must return to its starting neighborhood.
	deadline := time.Now().Add(5 * time.Second)
	for {
		report.GoroutinesEnd = runtime.NumGoroutine()
		if report.GoroutinesEnd <= goroutinesStart+4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	report.check(p)
	if len(report.Failures) > 0 {
		return report, fmt.Errorf("soak: %d acceptance failure(s): %v", len(report.Failures), report.Failures)
	}
	report.Passed = true
	return report, nil
}
