package soak

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// chaosProxy is the soak's network-misbehavior layer, lifted from the
// distnet chaos test suite into reusable form: a TCP proxy in front of a
// worker that delays accepts and throttles the byte stream, making the
// worker behind it a straggler without touching its arithmetic. The kill
// fault (abrupt listener/conn teardown) lives in distnet.InProcPool.Kill;
// this proxy supplies the slow-worker half of the chaos schedule.
type chaosProxy struct {
	listener net.Listener
	target   string

	// acceptDelayMax delays each accepted connection's first byte by a
	// seeded uniform draw in [0, acceptDelayMax); chunkDelay sleeps between
	// relay chunks in both directions, throttling every RPC on the link.
	acceptDelayMax time.Duration
	chunkDelay     time.Duration

	rmu sync.Mutex
	rng *rand.Rand

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// startChaosProxy listens on a fresh loopback port and relays to target.
func startChaosProxy(target string, seed int64, acceptDelayMax, chunkDelay time.Duration) (*chaosProxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &chaosProxy{
		listener:       l,
		target:         target,
		acceptDelayMax: acceptDelayMax,
		chunkDelay:     chunkDelay,
		rng:            rand.New(rand.NewSource(seed)),
		conns:          map[net.Conn]struct{}{},
	}
	go p.acceptLoop()
	return p, nil
}

func (p *chaosProxy) addr() string { return p.listener.Addr().String() }

func (p *chaosProxy) acceptLoop() {
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			return
		}
		go p.serve(conn)
	}
}

func (p *chaosProxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *chaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *chaosProxy) serve(client net.Conn) {
	if p.acceptDelayMax > 0 {
		p.rmu.Lock()
		d := time.Duration(p.rng.Int63n(int64(p.acceptDelayMax)))
		p.rmu.Unlock()
		time.Sleep(d)
	}
	upstream, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		client.Close()
		return
	}
	if !p.track(client) || !p.track(upstream) {
		client.Close()
		upstream.Close()
		return
	}
	done := make(chan struct{}, 2)
	relay := func(dst, src net.Conn) {
		buf := make([]byte, 16<<10)
		for {
			n, rerr := src.Read(buf)
			if n > 0 {
				if p.chunkDelay > 0 {
					time.Sleep(p.chunkDelay)
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		done <- struct{}{}
	}
	go relay(upstream, client)
	go relay(client, upstream)
	<-done
	client.Close()
	upstream.Close()
	<-done
	p.untrack(client)
	p.untrack(upstream)
}

func (p *chaosProxy) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.conns = map[net.Conn]struct{}{}
	p.mu.Unlock()
	p.listener.Close()
	for _, c := range conns {
		c.Close()
	}
}

// drainTo is a tiny io.Copy stand-in kept to make the relay's intent
// greppable in profiles; unused in the hot path.
var _ = io.Copy
