package codec

import (
	"crypto/sha256"
	"encoding/hex"

	"distme/internal/matrix"
)

// Digest identifies a block by content: SHA-256 over the wire tag and
// payload. Two blocks share a digest exactly when they encode to the same
// bytes, which is what the distnet block cache needs — resolving a digest
// can never substitute different data.
type Digest [sha256.Size]byte

// Short returns an abbreviated hex form for logs and error text.
func (d Digest) Short() string { return hex.EncodeToString(d[:6]) }

// DigestOf computes the content digest of a block using a pooled encode
// buffer.
func DigestOf(b matrix.Block) (Digest, error) { return DigestOfEnc(b, EncodingFP64) }

// DigestOfEnc is DigestOf under an explicit encoding. The digest covers
// the encoded tag and payload, so the same block under two encodings has
// two digests — which is what the cache needs, since the worker stores
// whatever the bytes decoded to.
func DigestOfEnc(b matrix.Block, enc Encoding) (Digest, error) {
	buf := GetBuffer()
	payload, tag, err := AppendWireEnc(buf, b, enc)
	if err != nil {
		PutBuffer(buf)
		return Digest{}, err
	}
	h := sha256.New()
	h.Write([]byte{tag})
	h.Write(payload)
	PutBuffer(payload)
	var d Digest
	h.Sum(d[:0])
	return d, nil
}
