package codec

import (
	"crypto/sha256"
	"encoding/hex"

	"distme/internal/matrix"
)

// Digest identifies a block by content: SHA-256 over the wire tag and
// payload. Two blocks share a digest exactly when they encode to the same
// bytes, which is what the distnet block cache needs — resolving a digest
// can never substitute different data.
type Digest [sha256.Size]byte

// Short returns an abbreviated hex form for logs and error text.
func (d Digest) Short() string { return hex.EncodeToString(d[:6]) }

// DigestOf computes the content digest of a block using a pooled encode
// buffer.
func DigestOf(b matrix.Block) (Digest, error) {
	buf := GetBuffer()
	payload, tag, err := AppendWire(buf, b)
	if err != nil {
		PutBuffer(buf)
		return Digest{}, err
	}
	h := sha256.New()
	h.Write([]byte{tag})
	h.Write(payload)
	PutBuffer(payload)
	var d Digest
	h.Sum(d[:0])
	return d, nil
}
