package codec

import (
	"encoding/binary"
	"fmt"
)

// Placement manifests are the pull data plane's control message: instead of
// shipping operand slices, the driver ships one Manifest per operand naming
// where every block of the requested box lives (owner address) and what its
// bytes are (content digest, when known). Workers resolve the manifest
// against their content-addressed cache, fetch what is missing from the
// listed owners, and fall back to the driver only when a peer cannot serve.
//
// The wire form is uvarint-framed and hardened like every other decoder in
// this package: counts are checked against the bytes actually present
// before any allocation, and every malformed payload surfaces as
// ErrBadFormat — never a panic.

// ManifestEntry places one block of an operand: grid key (block row and
// column in the operand's own block grid), the index of its owner in
// Manifest.Owners, and optionally its content digest for cache dedup.
type ManifestEntry struct {
	KeyI, KeyJ int
	// Owner indexes Manifest.Owners.
	Owner int
	// HasDigest marks Digest as meaningful; blocks below the cacheable
	// threshold travel digestless.
	HasDigest bool
	Digest    Digest
}

// Manifest places every block of one operand slice: the distributed handle
// the blocks live under, the owner address table, and one entry per block.
// Blocks absent from a live handle are structurally-absent sparse blocks
// and contribute zero.
type Manifest struct {
	// Handle is the distributed store id the entries resolve against.
	Handle uint64
	// Owners is the address table entries index into.
	Owners []string
	// Entries place each block, sorted I-then-J by the encoder.
	Entries []ManifestEntry
}

// AppendManifest appends the wire encoding of m to dst: handle uvarint,
// owner count + length-prefixed addresses, entry count, then per entry
// keyI/keyJ/owner uvarints, a digest-present flag byte, and the 32 digest
// bytes when present.
func AppendManifest(dst []byte, m *Manifest) []byte {
	dst = binary.AppendUvarint(dst, m.Handle)
	dst = binary.AppendUvarint(dst, uint64(len(m.Owners)))
	for _, o := range m.Owners {
		dst = binary.AppendUvarint(dst, uint64(len(o)))
		dst = append(dst, o...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Entries)))
	for i := range m.Entries {
		e := &m.Entries[i]
		dst = binary.AppendUvarint(dst, uint64(e.KeyI))
		dst = binary.AppendUvarint(dst, uint64(e.KeyJ))
		dst = binary.AppendUvarint(dst, uint64(e.Owner))
		if e.HasDigest {
			dst = append(dst, 1)
			dst = append(dst, e.Digest[:]...)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// DecodeManifest parses one manifest from the front of data and returns it
// with the unconsumed remainder. Malformed input — truncation, counts
// promising more than the bytes present, owner indices outside the table,
// implausible grid keys — returns ErrBadFormat.
func DecodeManifest(data []byte) (Manifest, []byte, error) {
	var m Manifest
	rd := data
	uv := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated manifest %s", ErrBadFormat, what)
		}
		rd = rd[n:]
		return v, nil
	}
	handle, err := uv("handle")
	if err != nil {
		return m, nil, err
	}
	m.Handle = handle
	owners, err := uv("owner count")
	if err != nil {
		return m, nil, err
	}
	// Every owner costs at least its one length byte, so the count is
	// bounded by the bytes actually present.
	if owners > uint64(len(rd)) {
		return m, nil, fmt.Errorf("%w: manifest owner count %d exceeds payload", ErrBadFormat, owners)
	}
	m.Owners = make([]string, 0, owners)
	for i := uint64(0); i < owners; i++ {
		n, err := uv("owner length")
		if err != nil {
			return m, nil, err
		}
		if n > uint64(len(rd)) {
			return m, nil, fmt.Errorf("%w: manifest owner length %d exceeds payload", ErrBadFormat, n)
		}
		m.Owners = append(m.Owners, string(rd[:n]))
		rd = rd[n:]
	}
	entries, err := uv("entry count")
	if err != nil {
		return m, nil, err
	}
	// An entry is at least three uvarint bytes plus its flag byte.
	if entries > uint64(len(rd))/4 {
		return m, nil, fmt.Errorf("%w: manifest entry count %d exceeds payload", ErrBadFormat, entries)
	}
	m.Entries = make([]ManifestEntry, 0, entries)
	for i := uint64(0); i < entries; i++ {
		var e ManifestEntry
		ki, err := uv("entry key")
		if err != nil {
			return m, nil, err
		}
		kj, err := uv("entry key")
		if err != nil {
			return m, nil, err
		}
		if ki > MaxBlockSide || kj > MaxBlockSide {
			return m, nil, fmt.Errorf("%w: implausible manifest key (%d,%d)", ErrBadFormat, ki, kj)
		}
		owner, err := uv("entry owner")
		if err != nil {
			return m, nil, err
		}
		if owner >= uint64(len(m.Owners)) {
			return m, nil, fmt.Errorf("%w: manifest owner index %d outside table of %d", ErrBadFormat, owner, len(m.Owners))
		}
		if len(rd) < 1 {
			return m, nil, fmt.Errorf("%w: truncated manifest digest flag", ErrBadFormat)
		}
		flag := rd[0]
		rd = rd[1:]
		switch flag {
		case 0:
		case 1:
			if len(rd) < len(e.Digest) {
				return m, nil, fmt.Errorf("%w: truncated manifest digest", ErrBadFormat)
			}
			e.HasDigest = true
			copy(e.Digest[:], rd)
			rd = rd[len(e.Digest):]
		default:
			return m, nil, fmt.Errorf("%w: unknown manifest digest flag %d", ErrBadFormat, flag)
		}
		e.KeyI, e.KeyJ, e.Owner = int(ki), int(kj), int(owner)
		m.Entries = append(m.Entries, e)
	}
	return m, rd, nil
}
