package codec

import (
	"bytes"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"distme/internal/matrix"
)

// goldenManifests returns the fixed fixtures whose wire bytes are pinned in
// testdata/manifest.golden. Digests come from deterministic blocks so the
// fixture is reproducible from source.
func goldenManifests(t *testing.T) []struct {
	name string
	m    Manifest
} {
	t.Helper()
	dg := func(vals ...float64) Digest {
		d, err := DigestOf(matrix.NewDenseData(1, len(vals), vals))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	return []struct {
		name string
		m    Manifest
	}{
		{"empty", Manifest{Handle: 7}},
		{"digestless", Manifest{
			Handle: 1,
			Owners: []string{"10.0.0.1:4100"},
			Entries: []ManifestEntry{
				{KeyI: 0, KeyJ: 0, Owner: 0},
				{KeyI: 0, KeyJ: 1, Owner: 0},
			},
		}},
		{"mixed", Manifest{
			Handle: 1 << 40,
			Owners: []string{"10.0.0.1:4100", "10.0.0.2:4100", "10.0.0.3:4100"},
			Entries: []ManifestEntry{
				{KeyI: 0, KeyJ: 0, Owner: 0, HasDigest: true, Digest: dg(1, 2, 3)},
				{KeyI: 1, KeyJ: 0, Owner: 1},
				{KeyI: 2, KeyJ: 5, Owner: 2, HasDigest: true, Digest: dg(-4.5)},
			},
		}},
	}
}

// TestManifestRoundTrip: encode → decode must reproduce the manifest
// exactly and consume exactly its own bytes, leaving any trailing payload
// untouched.
func TestManifestRoundTrip(t *testing.T) {
	for _, tc := range goldenManifests(t) {
		enc := AppendManifest(nil, &tc.m)
		withTail := append(append([]byte(nil), enc...), 0xAB, 0xCD)
		got, rest, err := DecodeManifest(withTail)
		if err != nil {
			t.Fatalf("%s: DecodeManifest: %v", tc.name, err)
		}
		if !bytes.Equal(rest, []byte{0xAB, 0xCD}) {
			t.Fatalf("%s: decode consumed the wrong byte count, rest=%x", tc.name, rest)
		}
		want := tc.m
		if want.Owners == nil {
			want.Owners = []string{}
		}
		if want.Entries == nil {
			want.Entries = []ManifestEntry{}
		}
		if got.Handle != want.Handle || !reflect.DeepEqual(got.Owners, want.Owners) || !reflect.DeepEqual(got.Entries, want.Entries) {
			t.Fatalf("%s: round trip changed the manifest:\n got %+v\nwant %+v", tc.name, got, want)
		}
		// Re-encode must be byte-identical (no lenient parse smuggling).
		if re := AppendManifest(nil, &got); !bytes.Equal(re, enc) {
			t.Fatalf("%s: re-encode differs from original bytes", tc.name)
		}
	}
}

// TestManifestGolden pins the manifest wire format byte-for-byte. A diff
// here means the pull-plane wire format changed; bump deliberately with
// -update and note the break.
func TestManifestGolden(t *testing.T) {
	var sb bytes.Buffer
	for _, tc := range goldenManifests(t) {
		enc := AppendManifest(nil, &tc.m)
		sb.WriteString(tc.name + " " + hex.EncodeToString(enc) + "\n")
	}
	path := filepath.Join("testdata", "manifest.golden")
	if *updateGolden {
		if err := os.WriteFile(path, sb.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(sb.Bytes(), want) {
		t.Fatalf("manifest wire bytes differ from %s:\n got:\n%s\nwant:\n%s", path, sb.Bytes(), want)
	}
}

// TestManifestHostileInputs: every malformed payload must surface as
// ErrBadFormat — truncations, counts promising more than the payload holds,
// out-of-table owner indices, unknown flags — never a panic or an
// allocation unbounded by the input.
func TestManifestHostileInputs(t *testing.T) {
	valid := AppendManifest(nil, &Manifest{
		Handle: 3,
		Owners: []string{"w1", "w2"},
		Entries: []ManifestEntry{
			{KeyI: 1, KeyJ: 2, Owner: 1, HasDigest: true, Digest: Digest{1, 2, 3}},
		},
	})
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated handle", []byte{0x80}},
		{"owner count exceeds payload", []byte{1, 0xFF, 0xFF, 0x03}},
		{"owner length exceeds payload", []byte{1, 1, 0x20, 'x'}},
		{"entry count exceeds payload", []byte{1, 0, 0xFF, 0xFF, 0x03}},
		{"owner index outside table", nil}, // hand-built below
		{"truncated digest", valid[:len(valid)-1]},
		{"unknown flag", append(append([]byte(nil), valid[:len(valid)-33]...), 7)},
	}
	// Hand-build the owner-index case precisely: one owner, entry owner=5.
	bad := []byte{3 /*handle*/, 1 /*owners*/, 2, 'w', '1', 1 /*entries*/, 0, 0, 5 /*owner idx*/, 0}
	cases[5].data = bad
	for _, tc := range cases {
		m, _, err := DecodeManifest(tc.data)
		if err == nil {
			t.Fatalf("%s: decode accepted %x as %+v", tc.name, tc.data, m)
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("%s: error %v does not wrap ErrBadFormat", tc.name, err)
		}
	}
	// Every truncation of a valid manifest must fail cleanly too.
	for i := 0; i < len(valid); i++ {
		if _, _, err := DecodeManifest(valid[:i]); err != nil && !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrBadFormat", i, err)
		}
	}
}
