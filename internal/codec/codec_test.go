package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"distme/internal/matrix"
)

func randDense(rng *rand.Rand, rows, cols int) *matrix.Dense {
	d := matrix.NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

func randSparseDense(rng *rand.Rand, rows, cols int, density float64) *matrix.Dense {
	d := matrix.NewDense(rows, cols)
	for i := range d.Data {
		if rng.Float64() < density {
			d.Data[i] = rng.NormFloat64()
		}
	}
	return d
}

// testBlocks is a menagerie of shapes: all three representations, empty,
// single-element, ragged, denser and sparser structure (exercising both the
// 32-bit and the delta sparse wire forms).
func testBlocks(t testing.TB) []matrix.Block {
	rng := rand.New(rand.NewSource(7))
	sp := randSparseDense(rng, 64, 48, 0.05)
	dn := randSparseDense(rng, 32, 32, 0.6)
	return []matrix.Block{
		randDense(rng, 16, 16),
		randDense(rng, 1, 1),
		matrix.NewDense(3, 5), // all zeros
		matrix.NewCSRFromDense(sp),
		matrix.NewCSRFromDense(dn),
		matrix.NewCSRFromDense(matrix.NewDense(7, 9)), // empty CSR
		matrix.NewCSCFromDense(sp),
		matrix.NewCSCFromDense(dn),
		matrix.NewCSCFromDense(matrix.NewDense(9, 7)), // empty CSC
		randDense(rng, 2, 37),
	}
}

func blocksEqualExact(t *testing.T, want, got matrix.Block) {
	t.Helper()
	wr, wc := want.Dims()
	gr, gc := got.Dims()
	if wr != gr || wc != gc {
		t.Fatalf("dims %dx%d, want %dx%d", gr, gc, wr, wc)
	}
	wd, gd := want.Dense(), got.Dense()
	for i := range wd.Data {
		if math.Float64bits(wd.Data[i]) != math.Float64bits(gd.Data[i]) {
			t.Fatalf("value %d: %v != %v", i, gd.Data[i], wd.Data[i])
		}
	}
}

// TestWireRoundTrip: every block must decode back bit-identical AND with
// the same concrete representation — the multiply kernels dispatch on the
// concrete type, so a CSC that came back as CSR could change the result
// bits of a distributed multiply.
func TestWireRoundTrip(t *testing.T) {
	for i, b := range testBlocks(t) {
		payload, tag, err := AppendWire(nil, b)
		if err != nil {
			t.Fatalf("block %d: AppendWire: %v", i, err)
		}
		if int64(len(payload)) != EncodedBytes(b) {
			t.Fatalf("block %d: EncodedBytes %d != actual %d", i, EncodedBytes(b), len(payload))
		}
		got, err := Decode(tag, payload)
		if err != nil {
			t.Fatalf("block %d: Decode(tag %d): %v", i, tag, err)
		}
		switch b.(type) {
		case *matrix.Dense:
			if _, ok := got.(*matrix.Dense); !ok {
				t.Fatalf("block %d: Dense came back as %T", i, got)
			}
		case *matrix.CSR:
			if _, ok := got.(*matrix.CSR); !ok {
				t.Fatalf("block %d: CSR came back as %T", i, got)
			}
		case *matrix.CSC:
			if _, ok := got.(*matrix.CSC); !ok {
				t.Fatalf("block %d: CSC came back as %T", i, got)
			}
		}
		blocksEqualExact(t, b, got)
	}
}

// TestPortableRoundTrip: the portable form must decode losslessly too (CSC
// legitimately returns as CSR there — the on-disk format predates CSC).
func TestPortableRoundTrip(t *testing.T) {
	for i, b := range testBlocks(t) {
		payload, tag, err := AppendPortable(nil, b)
		if err != nil {
			t.Fatalf("block %d: AppendPortable: %v", i, err)
		}
		if tag != TagDense && tag != TagCSR {
			t.Fatalf("block %d: portable tag %d outside the on-disk set", i, tag)
		}
		got, err := Decode(tag, payload)
		if err != nil {
			t.Fatalf("block %d: Decode: %v", i, err)
		}
		blocksEqualExact(t, b, got)
	}
}

// TestPortableMatchesLegacyLayout hand-encodes the legacy storage layout
// for a dense and a CSR block and checks AppendPortable reproduces it
// byte-for-byte (the storage golden-file test pins the full-file version of
// this; here the layout itself is the contract).
func TestPortableMatchesLegacyLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := randDense(rng, 3, 4)
	want := make([]byte, 0, 16+8*12)
	want = binary.LittleEndian.AppendUint64(want, 3)
	want = binary.LittleEndian.AppendUint64(want, 4)
	for _, x := range d.Data {
		want = binary.LittleEndian.AppendUint64(want, math.Float64bits(x))
	}
	got, tag, err := AppendPortable(nil, d)
	if err != nil || tag != TagDense || !bytes.Equal(got, want) {
		t.Fatalf("dense portable layout drifted (tag %d, err %v)", tag, err)
	}

	s := matrix.NewCSRFromDense(randSparseDense(rng, 4, 5, 0.3))
	want = want[:0]
	want = binary.LittleEndian.AppendUint64(want, uint64(s.RowsN))
	want = binary.LittleEndian.AppendUint64(want, uint64(s.ColsN))
	want = binary.LittleEndian.AppendUint64(want, uint64(len(s.Val)))
	for _, p := range s.RowPtr {
		want = binary.LittleEndian.AppendUint64(want, uint64(p))
	}
	for _, c := range s.ColIdx {
		want = binary.LittleEndian.AppendUint64(want, uint64(c))
	}
	for _, x := range s.Val {
		want = binary.LittleEndian.AppendUint64(want, math.Float64bits(x))
	}
	got, tag, err = AppendPortable(nil, s)
	if err != nil || tag != TagCSR || !bytes.Equal(got, want) {
		t.Fatalf("CSR portable layout drifted (tag %d, err %v)", tag, err)
	}
}

// TestWirePicksCompactForm: a very sparse wide block should take the delta
// form and beat both the 32-bit and the portable 64-bit encodings.
func TestWirePicksCompactForm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := matrix.NewCSRFromDense(randSparseDense(rng, 128, 128, 0.02))
	payload, tag, err := AppendWire(nil, s)
	if err != nil {
		t.Fatal(err)
	}
	if tag != TagCSRDelta {
		t.Fatalf("2%% dense CSR picked tag %d, want delta", tag)
	}
	portable, _, _ := AppendPortable(nil, s)
	size32 := 12 + 4*(s.RowsN+1) + 4*len(s.Val) + 8*len(s.Val)
	if len(payload) >= size32 || len(payload) >= len(portable) {
		t.Fatalf("delta form (%d bytes) not smaller than 32-bit (%d) and portable (%d)", len(payload), size32, len(portable))
	}

	// Non-monotone column indices are delta-ineligible: the encoder must
	// fall back to the fixed 32-bit form and still round-trip the exact
	// index order.
	odd := &matrix.CSR{
		RowsN: 2, ColsN: 8,
		RowPtr: []int{0, 2, 3},
		ColIdx: []int{5, 1, 3}, // row 0 unsorted
		Val:    []float64{1, 2, 3},
	}
	payload, tag, err = AppendWire(nil, odd)
	if err != nil {
		t.Fatal(err)
	}
	if tag != TagCSR32 {
		t.Fatalf("non-monotone CSR picked tag %d, want CSR32 fallback", tag)
	}
	back, err := Decode(tag, payload)
	if err != nil {
		t.Fatal(err)
	}
	bc := back.(*matrix.CSR)
	for i, c := range odd.ColIdx {
		if bc.ColIdx[i] != c {
			t.Fatalf("index order not preserved: %v != %v", bc.ColIdx, odd.ColIdx)
		}
	}
}

// TestDecodeHostileInput spot-checks the hardening: truncation, implausible
// dimensions, structural lies, all surfacing as ErrBadFormat.
func TestDecodeHostileInput(t *testing.T) {
	huge := binary.LittleEndian.AppendUint64(nil, 1<<40)
	huge = binary.LittleEndian.AppendUint64(huge, 4)
	cases := []struct {
		name    string
		tag     uint8
		payload []byte
	}{
		{"unknown tag", 99, nil},
		{"dense short", TagDense, []byte{1, 2, 3}},
		{"dense huge dims", TagDense, huge},
		{"csr short", TagCSR, make([]byte, 8)},
		{"csr32 short", TagCSR32, make([]byte, 4)},
		{"csc32 short", TagCSC32, make([]byte, 11)},
		{"delta empty", TagCSRDelta, nil},
		{"delta truncated counts", TagCSRDelta, []byte{4, 4, 2}},
		{"delta nnz lie", TagCSCDelta, []byte{2, 2, 200, 1, 0}},
	}
	for _, c := range cases {
		if _, err := Decode(c.tag, c.payload); err == nil {
			t.Errorf("%s: decoded without error", c.name)
		} else if !errorsIsBadFormat(err) {
			t.Errorf("%s: error %v is not ErrBadFormat", c.name, err)
		}
	}

	// Well-framed but structurally hostile: out-of-range column index.
	bad := binary.LittleEndian.AppendUint32(nil, 1) // rows
	bad = binary.LittleEndian.AppendUint32(bad, 2)  // cols
	bad = binary.LittleEndian.AppendUint32(bad, 1)  // nnz
	bad = binary.LittleEndian.AppendUint32(bad, 0)  // rowptr[0]
	bad = binary.LittleEndian.AppendUint32(bad, 1)  // rowptr[1]
	bad = binary.LittleEndian.AppendUint32(bad, 7)  // colidx out of range
	bad = binary.LittleEndian.AppendUint64(bad, math.Float64bits(1.0))
	if _, err := Decode(TagCSR32, bad); err == nil || !errorsIsBadFormat(err) {
		t.Errorf("out-of-range index: got %v, want ErrBadFormat", err)
	}
}

func errorsIsBadFormat(err error) bool {
	for err != nil {
		if err == ErrBadFormat {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestDigestContentAddressed: equal content (even via different buffers)
// hashes equal; different content or different representation hashes
// differently.
func TestDigestContentAddressed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d1 := randDense(rng, 8, 8)
	d2 := matrix.NewDenseData(8, 8, append([]float64(nil), d1.Data...))
	g1, err := DigestOf(d1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := DigestOf(d2)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("identical content produced different digests")
	}
	d2.Data[0] += 1
	g3, _ := DigestOf(d2)
	if g3 == g1 {
		t.Fatal("different content produced the same digest")
	}
	// Same logical values, different representation: must differ, because
	// the kernels dispatch on representation.
	sp := randSparseDense(rng, 8, 8, 0.2)
	gc, _ := DigestOf(matrix.NewCSRFromDense(sp))
	gg, _ := DigestOf(matrix.NewCSCFromDense(sp))
	if gc == gg {
		t.Fatal("CSR and CSC of the same values share a digest")
	}
	if s := g1.Short(); len(s) != 12 {
		t.Fatalf("Short() = %q, want 12 hex chars", s)
	}
}

// TestBufferPool: buffers round-trip through the pool and come back empty.
func TestBufferPool(t *testing.T) {
	buf := GetBuffer()
	if len(buf) != 0 {
		t.Fatalf("GetBuffer returned %d bytes", len(buf))
	}
	buf = append(buf, 1, 2, 3)
	PutBuffer(buf)
	if again := GetBuffer(); len(again) != 0 {
		t.Fatalf("recycled buffer not reset: %d bytes", len(again))
	}
	PutBuffer(nil) // must not panic
}
