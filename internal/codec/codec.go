// Package codec is the shared binary block serializer used by both the
// on-disk checkpoint format (internal/storage) and the RPC wire path
// (internal/distnet). One block encodes to a (tag, payload) pair:
//
//   - the portable tags (TagDense, TagCSR) reproduce the original storage
//     chunk layout byte-for-byte, so checkpoint files written before this
//     package existed still read back, and
//   - the wire tags (TagCSR32, TagCSC32, TagCSRDelta, TagCSCDelta) add
//     compact sparse forms — 32-bit indices when the dimensions fit, and a
//     delta+varint index stream when that is smaller still — chosen per
//     block by encoded size, and
//   - the opt-in encoding tags (TagDenseF32 through TagCSCXor, see
//     encoding.go) trade value bytes for precision (fp32) or encode time
//     (XOR+varint compression), selected per job via Encoding.
//
// Values always travel as raw little-endian float64 bits, converted to and
// from []byte in bulk (one memmove on little-endian hardware) instead of
// element by element, so a decoded block is bit-identical to the encoded
// one. Encode buffers are pooled; decoding of hostile input is hardened the
// same way storage's reader is: dimension plausibility caps, allocation
// bounded by the bytes actually present, and every malformed payload
// surfacing as ErrBadFormat — never a panic.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"unsafe"

	"distme/internal/matrix"
)

// Block format tags. TagDense and TagCSR are the legacy storage chunk tags
// and must keep their values: they are written to disk.
const (
	// TagDense is a dense payload: u64 rows, u64 cols, raw float64 values.
	TagDense uint8 = 0
	// TagCSR is the portable 64-bit CSR payload: u64 rows/cols/nnz, then
	// row pointers, column indices and values, all 64-bit.
	TagCSR uint8 = 1
	// TagCSR32 is CSR with 32-bit dimensions, row pointers and column
	// indices — the common wire form for blocks under 2^24 on a side.
	TagCSR32 uint8 = 2
	// TagCSC32 is the CSC mirror of TagCSR32 (column pointers, row indices).
	TagCSC32 uint8 = 3
	// TagCSRDelta is CSR with varint dimensions, per-row entry counts and
	// delta+varint column indices; chosen when smaller than TagCSR32.
	TagCSRDelta uint8 = 4
	// TagCSCDelta is the CSC mirror of TagCSRDelta.
	TagCSCDelta uint8 = 5
)

// ErrBadFormat reports a corrupt, truncated or implausible block payload.
var ErrBadFormat = errors.New("codec: malformed block")

// MaxBlockSide bounds decoded block dimensions; anything larger is
// corruption and is rejected before the dimensions feed an allocation.
const MaxBlockSide = 1 << 24

// nativeLittleEndian gates the bulk []float64 ↔ []byte reinterpretation:
// the wire format is little-endian, so only little-endian hosts may memmove.
var nativeLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// bufPool recycles encode buffers; see GetBuffer/PutBuffer.
var bufPool = sync.Pool{
	New: func() any {
		buf := make([]byte, 0, 64<<10)
		return &buf
	},
}

// GetBuffer returns a pooled, zero-length byte slice to append an encoding
// into. Return it with PutBuffer once the bytes have been written out.
func GetBuffer() []byte { return (*(bufPool.Get().(*[]byte)))[:0] }

// PutBuffer recycles a buffer obtained from GetBuffer (growing is fine; the
// grown capacity is what makes the pool worthwhile).
func PutBuffer(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	bufPool.Put(&buf)
}

// appendFloats appends the little-endian bits of src: one memmove on
// little-endian hardware, a conversion loop elsewhere.
func appendFloats(dst []byte, src []float64) []byte {
	if len(src) == 0 {
		return dst
	}
	if nativeLittleEndian {
		return append(dst, unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), 8*len(src))...)
	}
	for _, v := range src {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// decodeFloats converts exactly n float64s from payload (len must be 8n).
func decodeFloats(payload []byte, n int) []float64 {
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if nativeLittleEndian {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&out[0])), 8*n), payload)
		return out
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return out
}

// AppendPortable appends the portable (on-disk) encoding of b to dst and
// returns the extended slice and the chunk tag. The bytes are identical to
// the original internal/storage encoder: dense blocks as TagDense, sparse
// blocks — CSC included, converted — as 64-bit TagCSR.
func AppendPortable(dst []byte, b matrix.Block) ([]byte, uint8, error) {
	switch v := b.(type) {
	case *matrix.Dense:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.RowsN))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.ColsN))
		dst = appendFloats(dst, v.Data)
		return dst, TagDense, nil
	case *matrix.CSR:
		return appendCSR64(dst, v), TagCSR, nil
	case *matrix.CSC:
		csr := matrix.NewCSRFromDense(v.Dense())
		return appendCSR64(dst, csr), TagCSR, nil
	default:
		return dst, 0, fmt.Errorf("codec: unsupported block type %T", b)
	}
}

func appendCSR64(dst []byte, v *matrix.CSR) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(v.RowsN))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(v.ColsN))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(v.Val)))
	for _, p := range v.RowPtr {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(p))
	}
	for _, c := range v.ColIdx {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(c))
	}
	return appendFloats(dst, v.Val)
}

// wirePlan decides the wire form of a block and its exact payload size, so
// AppendWire and EncodedBytes always agree.
func wirePlan(b matrix.Block) (tag uint8, size int, err error) {
	switch v := b.(type) {
	case *matrix.Dense:
		return TagDense, 16 + 8*len(v.Data), nil
	case *matrix.CSR:
		return sparsePlan(v.RowsN, v.ColsN, v.RowPtr, v.ColIdx, len(v.Val), TagCSR32, TagCSRDelta, TagCSR)
	case *matrix.CSC:
		return sparsePlan(v.ColsN, v.RowsN, v.ColPtr, v.RowIdx, len(v.Val), TagCSC32, TagCSCDelta, TagCSC32)
	default:
		return 0, 0, fmt.Errorf("codec: unsupported block type %T", b)
	}
}

// sparsePlan sizes the candidate sparse forms for one pointer/index/value
// triple. major is the pointer axis length (rows for CSR, cols for CSC);
// minor bounds the index values. fallback64 is used when the data does not
// fit 32 bits (only reachable for CSR, whose 64-bit form exists).
func sparsePlan(major, minor int, ptr, idx []int, nnz int, tag32, tagDelta, fallback64 uint8) (uint8, int, error) {
	if major > math.MaxUint32-1 || minor > math.MaxUint32 || nnz > math.MaxUint32 || pointersOverflow32(ptr) {
		if fallback64 != TagCSR {
			return 0, 0, fmt.Errorf("codec: CSC block %dx%d too large for the wire", major, minor)
		}
		return TagCSR, 24 + 8*(len(ptr)+nnz+nnz), nil
	}
	size32 := 12 + 4*(major+1) + 4*nnz + 8*nnz
	sizeDelta, ok := deltaSize(major, minor, ptr, idx, nnz)
	if ok && sizeDelta < size32 {
		return tagDelta, sizeDelta, nil
	}
	return tag32, size32, nil
}

func pointersOverflow32(ptr []int) bool {
	for _, p := range ptr {
		if p < 0 || p > math.MaxUint32 {
			return true
		}
	}
	return false
}

// deltaSize sizes the delta+varint form: varint dims and nnz, per-major-axis
// entry counts, first index absolute then gaps, values raw. Eligible only
// when the structure is well-formed (monotone pointers spanning the entries,
// strictly increasing indices within each row/column).
func deltaSize(major, minor int, ptr, idx []int, nnz int) (int, bool) {
	if len(ptr) != major+1 || ptr[0] != 0 || ptr[major] != nnz {
		return 0, false
	}
	n := uvarintLen(uint64(major)) + uvarintLen(uint64(minor)) + uvarintLen(uint64(nnz))
	for i := 0; i < major; i++ {
		cnt := ptr[i+1] - ptr[i]
		if cnt < 0 {
			return 0, false
		}
		n += uvarintLen(uint64(cnt))
		prev := -1
		for k := ptr[i]; k < ptr[i+1]; k++ {
			c := idx[k]
			if c <= prev || c < 0 {
				return 0, false
			}
			if prev < 0 {
				n += uvarintLen(uint64(c))
			} else {
				n += uvarintLen(uint64(c - prev))
			}
			prev = c
		}
	}
	return n + 8*nnz, true
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// AppendWire appends the compact wire encoding of b to dst and returns the
// extended slice and the chosen tag. Unlike AppendPortable, the concrete
// type round-trips exactly — a CSC block decodes back to CSC — because the
// local-multiply kernels dispatch on the representation and the distributed
// product must stay bit-identical to a local one.
func AppendWire(dst []byte, b matrix.Block) ([]byte, uint8, error) {
	return AppendWireEnc(dst, b, EncodingFP64)
}

// EncodedBytes returns the exact wire payload size of b — the bytes
// AppendWire would produce — so communication accounting (Eq. (4)
// comparisons, cache savings) uses the same numbers the socket sees.
// Unsupported block types report 0.
func EncodedBytes(b matrix.Block) int64 {
	_, size, err := wirePlan(b)
	if err != nil {
		return 0
	}
	return int64(size)
}

// Decode parses one (tag, payload) pair back into a block. It accepts every
// tag this package emits and applies the full hostile-input discipline:
// implausible dimensions, size mismatches, non-monotone pointers and
// out-of-range indices all return ErrBadFormat.
func Decode(tag uint8, payload []byte) (matrix.Block, error) {
	switch tag {
	case TagDense:
		return decodeDense(payload)
	case TagCSR:
		return decodeCSR64(payload)
	case TagCSR32, TagCSC32:
		return decodeSparse32(tag, payload)
	case TagCSRDelta, TagCSCDelta:
		return decodeSparseDelta(tag, payload)
	case TagDenseF32:
		return decodeDenseF32(payload)
	case TagCSRF32, TagCSCF32:
		return decodeSparseF32(tag, payload)
	case TagDenseXor:
		return decodeDenseXor(payload)
	case TagCSRXor, TagCSCXor:
		return decodeSparseXor(tag, payload)
	default:
		return nil, fmt.Errorf("%w: unknown tag %d", ErrBadFormat, tag)
	}
}

func decodeDense(payload []byte) (matrix.Block, error) {
	if len(payload) < 16 {
		return nil, fmt.Errorf("%w: short dense payload", ErrBadFormat)
	}
	rows := int(binary.LittleEndian.Uint64(payload[0:]))
	cols := int(binary.LittleEndian.Uint64(payload[8:]))
	if rows < 0 || cols < 0 || rows > MaxBlockSide || cols > MaxBlockSide {
		return nil, fmt.Errorf("%w: implausible dense dimensions %dx%d", ErrBadFormat, rows, cols)
	}
	if len(payload) != 16+8*rows*cols {
		return nil, fmt.Errorf("%w: dense payload size mismatch", ErrBadFormat)
	}
	return matrix.NewDenseData(rows, cols, decodeFloats(payload[16:], rows*cols)), nil
}

func decodeCSR64(payload []byte) (matrix.Block, error) {
	if len(payload) < 24 {
		return nil, fmt.Errorf("%w: short CSR payload", ErrBadFormat)
	}
	rows := int(binary.LittleEndian.Uint64(payload[0:]))
	cols := int(binary.LittleEndian.Uint64(payload[8:]))
	nnz := int(binary.LittleEndian.Uint64(payload[16:]))
	if err := checkSparseDims(rows, cols, nnz); err != nil {
		return nil, err
	}
	if len(payload) != 24+8*(rows+1+nnz+nnz) {
		return nil, fmt.Errorf("%w: CSR payload size mismatch", ErrBadFormat)
	}
	ptr := make([]int, rows+1)
	off := 24
	for i := range ptr {
		ptr[i] = int(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	idx := make([]int, nnz)
	for i := range idx {
		idx[i] = int(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	val := decodeFloats(payload[off:], nnz)
	if err := checkSparseStructure(rows, cols, nnz, ptr, idx); err != nil {
		return nil, err
	}
	return &matrix.CSR{RowsN: rows, ColsN: cols, RowPtr: ptr, ColIdx: idx, Val: val}, nil
}

func decodeSparse32(tag uint8, payload []byte) (matrix.Block, error) {
	if len(payload) < 12 {
		return nil, fmt.Errorf("%w: short sparse32 payload", ErrBadFormat)
	}
	major := int(binary.LittleEndian.Uint32(payload[0:]))
	minor := int(binary.LittleEndian.Uint32(payload[4:]))
	nnz := int(binary.LittleEndian.Uint32(payload[8:]))
	if err := checkSparseDims(major, minor, nnz); err != nil {
		return nil, err
	}
	if len(payload) != 12+4*(major+1)+4*nnz+8*nnz {
		return nil, fmt.Errorf("%w: sparse32 payload size mismatch", ErrBadFormat)
	}
	ptr := make([]int, major+1)
	off := 12
	for i := range ptr {
		ptr[i] = int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	idx := make([]int, nnz)
	for i := range idx {
		idx[i] = int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	val := decodeFloats(payload[off:], nnz)
	if err := checkSparseStructure(major, minor, nnz, ptr, idx); err != nil {
		return nil, err
	}
	if tag == TagCSR32 {
		return &matrix.CSR{RowsN: major, ColsN: minor, RowPtr: ptr, ColIdx: idx, Val: val}, nil
	}
	return &matrix.CSC{RowsN: minor, ColsN: major, ColPtr: ptr, RowIdx: idx, Val: val}, nil
}

func decodeSparseDelta(tag uint8, payload []byte) (matrix.Block, error) {
	major, n1 := binary.Uvarint(payload)
	if n1 <= 0 {
		return nil, fmt.Errorf("%w: truncated delta header", ErrBadFormat)
	}
	minor, n2 := binary.Uvarint(payload[n1:])
	if n2 <= 0 {
		return nil, fmt.Errorf("%w: truncated delta header", ErrBadFormat)
	}
	nnz, n3 := binary.Uvarint(payload[n1+n2:])
	if n3 <= 0 {
		return nil, fmt.Errorf("%w: truncated delta header", ErrBadFormat)
	}
	if major > MaxBlockSide || minor > MaxBlockSide || nnz > uint64(MaxBlockSide)*uint64(MaxBlockSide) {
		return nil, fmt.Errorf("%w: implausible delta dimensions %dx%d nnz=%d", ErrBadFormat, major, minor, nnz)
	}
	rest := payload[n1+n2+n3:]
	// Every major line costs at least one count byte and every entry at
	// least one index byte plus its 8 value bytes, so both allocations are
	// bounded by the bytes actually present — a forged header cannot force
	// an outsized allocation.
	if uint64(len(rest)) < major+9*nnz {
		return nil, fmt.Errorf("%w: delta payload shorter than its own header promises", ErrBadFormat)
	}
	mi, mn, nz := int(major), int(minor), int(nnz)
	if err := checkSparseDims(mi, mn, nz); err != nil {
		return nil, err
	}
	ptr := make([]int, mi+1)
	idx := make([]int, 0, nz)
	off := 0
	for i := 0; i < mi; i++ {
		cnt, n := binary.Uvarint(rest[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated entry count", ErrBadFormat)
		}
		off += n
		if cnt > uint64(nz-len(idx)) {
			return nil, fmt.Errorf("%w: entry counts exceed nnz", ErrBadFormat)
		}
		prev := -1
		for k := uint64(0); k < cnt; k++ {
			gap, n := binary.Uvarint(rest[off:])
			if n <= 0 {
				return nil, fmt.Errorf("%w: truncated index stream", ErrBadFormat)
			}
			off += n
			var c int
			if prev < 0 {
				c = int(gap)
			} else {
				if gap == 0 {
					return nil, fmt.Errorf("%w: zero index gap", ErrBadFormat)
				}
				c = prev + int(gap)
			}
			if c < 0 || c >= mn {
				return nil, fmt.Errorf("%w: index %d outside %d", ErrBadFormat, c, mn)
			}
			idx = append(idx, c)
			prev = c
		}
		ptr[i+1] = len(idx)
	}
	if len(idx) != nz {
		return nil, fmt.Errorf("%w: entry counts do not sum to nnz", ErrBadFormat)
	}
	if len(rest[off:]) != 8*nz {
		return nil, fmt.Errorf("%w: delta payload size mismatch", ErrBadFormat)
	}
	val := decodeFloats(rest[off:], nz)
	if tag == TagCSRDelta {
		return &matrix.CSR{RowsN: mi, ColsN: mn, RowPtr: ptr, ColIdx: idx, Val: val}, nil
	}
	return &matrix.CSC{RowsN: mn, ColsN: mi, ColPtr: ptr, RowIdx: idx, Val: val}, nil
}

func checkSparseDims(major, minor, nnz int) error {
	if major < 0 || minor < 0 || major > MaxBlockSide || minor > MaxBlockSide {
		return fmt.Errorf("%w: implausible sparse dimensions %dx%d", ErrBadFormat, major, minor)
	}
	if nnz < 0 || (major > 0 && minor > 0 && nnz > major*minor) || (major*minor == 0 && nnz != 0) {
		return fmt.Errorf("%w: implausible entry count %d for %dx%d", ErrBadFormat, nnz, major, minor)
	}
	return nil
}

// checkSparseStructure rejects well-framed but hand-crafted payloads whose
// indices would panic later kernel reads.
func checkSparseStructure(major, minor, nnz int, ptr, idx []int) error {
	if ptr[0] != 0 || ptr[major] != nnz {
		return fmt.Errorf("%w: pointers do not span the entries", ErrBadFormat)
	}
	for i := 0; i < major; i++ {
		if ptr[i] > ptr[i+1] {
			return fmt.Errorf("%w: pointers not monotone", ErrBadFormat)
		}
	}
	for _, c := range idx {
		if c < 0 || c >= minor {
			return fmt.Errorf("%w: index %d outside %d", ErrBadFormat, c, minor)
		}
	}
	return nil
}
