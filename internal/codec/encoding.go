// Opt-in wire encodings. The default wire form (EncodingFP64) ships raw
// little-endian float64 values and is bit-exact; two cheaper modes trade
// bytes for either precision or encode time:
//
//   - EncodingFP32 stores values as float32 (tags TagDenseF32, TagCSRF32,
//     TagCSCF32). It is lossy: each value is rounded to the nearest float32
//     on encode and widened back on decode, so round-tripped values carry a
//     relative error of at most 2^-24 (≈6e-8) per element, and values
//     outside float32 range overflow to ±Inf. Callers must opt in
//     explicitly; sparse blocks whose dimensions or entry counts do not fit
//     32 bits fall back to the lossless 64-bit form.
//   - EncodingCompress is lossless: values travel as a varint stream of
//     XOR-ed consecutive float64 bit patterns (the Gorilla trick — repeated
//     or structured values compress hard, white noise does not), with
//     delta+varint indices on sparse blocks (tags TagDenseXor, TagCSRXor,
//     TagCSCXor). Per block, the encoder compares against the raw plan and
//     keeps whichever is smaller, so a compressed send is never larger
//     than the default one.
//
// Both directions of the RPC path accept every tag unconditionally; the
// mode only steers the encoder, so mixed-mode traffic decodes fine.

package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"distme/internal/matrix"
)

// Opt-in encoding tags (continuing the wire tag space of codec.go).
const (
	// TagDenseF32 is a dense payload with float32 values: u64 rows, u64
	// cols, raw float32 values.
	TagDenseF32 uint8 = 6
	// TagCSRF32 is the 32-bit CSR layout of TagCSR32 with float32 values.
	TagCSRF32 uint8 = 7
	// TagCSCF32 is the CSC mirror of TagCSRF32.
	TagCSCF32 uint8 = 8
	// TagDenseXor is a dense payload with XOR+varint-compressed values:
	// u64 rows, u64 cols, then rows·cols uvarints, each the XOR of one
	// value's float64 bits with the previous value's (first value XOR 0).
	TagDenseXor uint8 = 9
	// TagCSRXor is the delta+varint index layout of TagCSRDelta with
	// XOR+varint-compressed values.
	TagCSRXor uint8 = 10
	// TagCSCXor is the CSC mirror of TagCSRXor.
	TagCSCXor uint8 = 11
)

// Encoding selects the wire value encoding for a job's block payloads.
// The zero value is the bit-exact default.
type Encoding uint8

const (
	// EncodingFP64 is the default: raw little-endian float64 values,
	// bit-identical round trip.
	EncodingFP64 Encoding = 0
	// EncodingFP32 halves value bytes by rounding to float32 — lossy,
	// explicit opt-in only (see the package comment for error semantics).
	EncodingFP32 Encoding = 1
	// EncodingCompress XOR+varint-compresses values losslessly, falling
	// back to the raw form per block when compression does not win.
	EncodingCompress Encoding = 2
)

// Valid reports whether e is a known encoding.
func (e Encoding) Valid() bool { return e <= EncodingCompress }

// String names the encoding for options, logs, and bench rows.
func (e Encoding) String() string {
	switch e {
	case EncodingFP64:
		return "fp64"
	case EncodingFP32:
		return "fp32"
	case EncodingCompress:
		return "compress"
	default:
		return fmt.Sprintf("encoding(%d)", uint8(e))
	}
}

// PlanRatio is the nominal repartition-bytes ratio of the encoding
// relative to EncodingFP64, for Eq.(4) pricing before any block has been
// encoded: fp32 halves value bytes (values dominate every form), and the
// compressed mode is credited a conservative 15% — its per-block fallback
// guarantees the true ratio never exceeds 1.
func (e Encoding) PlanRatio() float64 {
	switch e {
	case EncodingFP32:
		return 0.5
	case EncodingCompress:
		return 0.85
	default:
		return 1.0
	}
}

// wirePlanEnc extends wirePlan with the opt-in encodings: it decides the
// tag and exact payload size AppendWireEnc would produce for b under enc.
func wirePlanEnc(b matrix.Block, enc Encoding) (tag uint8, size int, err error) {
	switch enc {
	case EncodingFP32:
		return planF32(b)
	case EncodingCompress:
		return planCompress(b)
	default:
		return wirePlan(b)
	}
}

func planF32(b matrix.Block) (uint8, int, error) {
	switch v := b.(type) {
	case *matrix.Dense:
		return TagDenseF32, 16 + 4*len(v.Data), nil
	case *matrix.CSR:
		if sparseOverflows32(v.RowsN, v.ColsN, v.RowPtr, len(v.Val)) {
			// Indices too large for the 32-bit layout: stay lossless.
			return wirePlan(b)
		}
		return TagCSRF32, 12 + 4*(v.RowsN+1) + 4*len(v.Val) + 4*len(v.Val), nil
	case *matrix.CSC:
		if sparseOverflows32(v.ColsN, v.RowsN, v.ColPtr, len(v.Val)) {
			return wirePlan(b)
		}
		return TagCSCF32, 12 + 4*(v.ColsN+1) + 4*len(v.Val) + 4*len(v.Val), nil
	default:
		return 0, 0, fmt.Errorf("codec: unsupported block type %T", b)
	}
}

func sparseOverflows32(major, minor int, ptr []int, nnz int) bool {
	return major > math.MaxUint32-1 || minor > math.MaxUint32 || nnz > math.MaxUint32 ||
		pointersOverflow32(ptr)
}

func planCompress(b matrix.Block) (uint8, int, error) {
	rawTag, rawSize, err := wirePlan(b)
	if err != nil {
		return 0, 0, err
	}
	switch v := b.(type) {
	case *matrix.Dense:
		if size := 16 + xorFloatsSize(v.Data); size < rawSize {
			return TagDenseXor, size, nil
		}
	case *matrix.CSR:
		if structural, ok := deltaSize(v.RowsN, v.ColsN, v.RowPtr, v.ColIdx, len(v.Val)); ok {
			if size := structural - 8*len(v.Val) + xorFloatsSize(v.Val); size < rawSize {
				return TagCSRXor, size, nil
			}
		}
	case *matrix.CSC:
		if structural, ok := deltaSize(v.ColsN, v.RowsN, v.ColPtr, v.RowIdx, len(v.Val)); ok {
			if size := structural - 8*len(v.Val) + xorFloatsSize(v.Val); size < rawSize {
				return TagCSCXor, size, nil
			}
		}
	}
	return rawTag, rawSize, nil
}

// xorFloatsSize sizes the XOR+varint value stream of vals.
func xorFloatsSize(vals []float64) int {
	n := 0
	var prev uint64
	for _, v := range vals {
		bits := math.Float64bits(v)
		n += uvarintLen(bits ^ prev)
		prev = bits
	}
	return n
}

// appendXorFloats appends vals as uvarints of consecutive-bit XORs.
func appendXorFloats(dst []byte, vals []float64) []byte {
	var prev uint64
	for _, v := range vals {
		bits := math.Float64bits(v)
		dst = binary.AppendUvarint(dst, bits^prev)
		prev = bits
	}
	return dst
}

func appendF32(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(v)))
	}
	return dst
}

// valueBytes reinterprets raw float64 storage as its little-endian wire
// bytes without copying. Callers must only use it on little-endian hosts
// and must not outlive the backing slice.
func valueBytes(vals []float64) []byte {
	if len(vals) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), 8*len(vals))
}

// AppendWireSG is the scatter-gather encoder: it appends the structural
// part of b's encoding under enc to dst and, when the chosen wire form
// ends in raw float64 bytes on a little-endian host, returns the value
// bytes as a zero-copy tail view of the block's own storage instead of
// copying them into dst. The frame writer ships (out, tail) as separate
// writev segments; out followed by tail is byte-identical to
// AppendWireEnc's contiguous payload. A nil tail means everything landed
// in out (non-raw value encodings, big-endian hosts, empty blocks). The
// tail aliases the block until the write completes.
func AppendWireSG(dst []byte, b matrix.Block, enc Encoding) (out []byte, tag uint8, tail []byte, err error) {
	tag, size, err := wirePlanEnc(b, enc)
	if err != nil {
		return dst, 0, nil, err
	}
	if cap(dst)-len(dst) < size {
		grown := make([]byte, len(dst), len(dst)+size)
		copy(grown, dst)
		dst = grown
	}
	var rawVals []float64 // non-nil → raw fp64 tail candidate
	switch tag {
	case TagDense:
		v := b.(*matrix.Dense)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.RowsN))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.ColsN))
		rawVals = v.Data
	case TagCSR:
		v := b.(*matrix.CSR)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.RowsN))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.ColsN))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(len(v.Val)))
		for _, p := range v.RowPtr {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(p))
		}
		for _, c := range v.ColIdx {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(c))
		}
		rawVals = v.Val
	case TagCSR32:
		v := b.(*matrix.CSR)
		dst = appendSparse32Struct(dst, v.RowsN, v.ColsN, v.RowPtr, v.ColIdx, len(v.Val))
		rawVals = v.Val
	case TagCSC32:
		v := b.(*matrix.CSC)
		dst = appendSparse32Struct(dst, v.ColsN, v.RowsN, v.ColPtr, v.RowIdx, len(v.Val))
		rawVals = v.Val
	case TagCSRDelta:
		v := b.(*matrix.CSR)
		dst = appendSparseDeltaStruct(dst, v.RowsN, v.ColsN, v.RowPtr, v.ColIdx, len(v.Val))
		rawVals = v.Val
	case TagCSCDelta:
		v := b.(*matrix.CSC)
		dst = appendSparseDeltaStruct(dst, v.ColsN, v.RowsN, v.ColPtr, v.RowIdx, len(v.Val))
		rawVals = v.Val
	case TagDenseF32:
		v := b.(*matrix.Dense)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.RowsN))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.ColsN))
		dst = appendF32(dst, v.Data)
	case TagCSRF32:
		v := b.(*matrix.CSR)
		dst = appendSparse32Struct(dst, v.RowsN, v.ColsN, v.RowPtr, v.ColIdx, len(v.Val))
		dst = appendF32(dst, v.Val)
	case TagCSCF32:
		v := b.(*matrix.CSC)
		dst = appendSparse32Struct(dst, v.ColsN, v.RowsN, v.ColPtr, v.RowIdx, len(v.Val))
		dst = appendF32(dst, v.Val)
	case TagDenseXor:
		v := b.(*matrix.Dense)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.RowsN))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.ColsN))
		dst = appendXorFloats(dst, v.Data)
	case TagCSRXor:
		v := b.(*matrix.CSR)
		dst = appendSparseDeltaStruct(dst, v.RowsN, v.ColsN, v.RowPtr, v.ColIdx, len(v.Val))
		dst = appendXorFloats(dst, v.Val)
	case TagCSCXor:
		v := b.(*matrix.CSC)
		dst = appendSparseDeltaStruct(dst, v.ColsN, v.RowsN, v.ColPtr, v.RowIdx, len(v.Val))
		dst = appendXorFloats(dst, v.Val)
	}
	if rawVals != nil {
		if nativeLittleEndian && len(rawVals) > 0 {
			return dst, tag, valueBytes(rawVals), nil
		}
		dst = appendFloats(dst, rawVals)
	}
	return dst, tag, nil, nil
}

// appendSparse32Struct is appendSparse32 minus the trailing values.
func appendSparse32Struct(dst []byte, major, minor int, ptr, idx []int, nnz int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(major))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(minor))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(nnz))
	for _, p := range ptr {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(p))
	}
	for _, c := range idx {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(c))
	}
	return dst
}

// appendSparseDeltaStruct is appendSparseDelta minus the trailing values.
func appendSparseDeltaStruct(dst []byte, major, minor int, ptr, idx []int, nnz int) []byte {
	dst = binary.AppendUvarint(dst, uint64(major))
	dst = binary.AppendUvarint(dst, uint64(minor))
	dst = binary.AppendUvarint(dst, uint64(nnz))
	for i := 0; i < major; i++ {
		lo, hi := ptr[i], ptr[i+1]
		dst = binary.AppendUvarint(dst, uint64(hi-lo))
		prev := -1
		for k := lo; k < hi; k++ {
			c := idx[k]
			if prev < 0 {
				dst = binary.AppendUvarint(dst, uint64(c))
			} else {
				dst = binary.AppendUvarint(dst, uint64(c-prev))
			}
			prev = c
		}
	}
	return dst
}

// AppendWireEnc appends the contiguous wire encoding of b under enc —
// AppendWire generalized over the opt-in encodings. EncodingFP64 produces
// exactly AppendWire's bytes.
func AppendWireEnc(dst []byte, b matrix.Block, enc Encoding) ([]byte, uint8, error) {
	out, tag, tail, err := AppendWireSG(dst, b, enc)
	if err != nil {
		return dst, 0, err
	}
	return append(out, tail...), tag, nil
}

// EncodedBytesEnc is EncodedBytes under an explicit encoding: the exact
// payload size AppendWireEnc would produce. Unsupported block types
// report 0.
func EncodedBytesEnc(b matrix.Block, enc Encoding) int64 {
	_, size, err := wirePlanEnc(b, enc)
	if err != nil {
		return 0
	}
	return int64(size)
}

// ---------------------------------------------------------------------------
// Decoders for the opt-in tags (wired into Decode's switch).

func decodeDenseF32(payload []byte) (matrix.Block, error) {
	if len(payload) < 16 {
		return nil, fmt.Errorf("%w: short dense-f32 payload", ErrBadFormat)
	}
	rows := int(binary.LittleEndian.Uint64(payload[0:]))
	cols := int(binary.LittleEndian.Uint64(payload[8:]))
	if rows < 0 || cols < 0 || rows > MaxBlockSide || cols > MaxBlockSide {
		return nil, fmt.Errorf("%w: implausible dense dimensions %dx%d", ErrBadFormat, rows, cols)
	}
	if len(payload) != 16+4*rows*cols {
		return nil, fmt.Errorf("%w: dense-f32 payload size mismatch", ErrBadFormat)
	}
	return matrix.NewDenseData(rows, cols, decodeF32(payload[16:], rows*cols)), nil
}

func decodeF32(payload []byte, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:])))
	}
	return out
}

func decodeSparseF32(tag uint8, payload []byte) (matrix.Block, error) {
	if len(payload) < 12 {
		return nil, fmt.Errorf("%w: short sparse-f32 payload", ErrBadFormat)
	}
	major := int(binary.LittleEndian.Uint32(payload[0:]))
	minor := int(binary.LittleEndian.Uint32(payload[4:]))
	nnz := int(binary.LittleEndian.Uint32(payload[8:]))
	if err := checkSparseDims(major, minor, nnz); err != nil {
		return nil, err
	}
	if len(payload) != 12+4*(major+1)+4*nnz+4*nnz {
		return nil, fmt.Errorf("%w: sparse-f32 payload size mismatch", ErrBadFormat)
	}
	ptr := make([]int, major+1)
	off := 12
	for i := range ptr {
		ptr[i] = int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	idx := make([]int, nnz)
	for i := range idx {
		idx[i] = int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	val := decodeF32(payload[off:], nnz)
	if err := checkSparseStructure(major, minor, nnz, ptr, idx); err != nil {
		return nil, err
	}
	if tag == TagCSRF32 {
		return &matrix.CSR{RowsN: major, ColsN: minor, RowPtr: ptr, ColIdx: idx, Val: val}, nil
	}
	return &matrix.CSC{RowsN: minor, ColsN: major, ColPtr: ptr, RowIdx: idx, Val: val}, nil
}

// decodeXorFloats parses exactly n XOR+varint values; it returns the bytes
// consumed so callers can enforce exact payload consumption.
func decodeXorFloats(payload []byte, n int) ([]float64, int, error) {
	out := make([]float64, n)
	var prev uint64
	off := 0
	for i := range out {
		x, k := binary.Uvarint(payload[off:])
		if k <= 0 {
			return nil, 0, fmt.Errorf("%w: truncated xor value stream", ErrBadFormat)
		}
		off += k
		prev ^= x
		out[i] = math.Float64frombits(prev)
	}
	return out, off, nil
}

func decodeDenseXor(payload []byte) (matrix.Block, error) {
	if len(payload) < 16 {
		return nil, fmt.Errorf("%w: short dense-xor payload", ErrBadFormat)
	}
	rows := int(binary.LittleEndian.Uint64(payload[0:]))
	cols := int(binary.LittleEndian.Uint64(payload[8:]))
	if rows < 0 || cols < 0 || rows > MaxBlockSide || cols > MaxBlockSide {
		return nil, fmt.Errorf("%w: implausible dense dimensions %dx%d", ErrBadFormat, rows, cols)
	}
	n := rows * cols
	rest := payload[16:]
	// Every value costs at least one varint byte, so the allocation is
	// bounded by the bytes actually present.
	if len(rest) < n {
		return nil, fmt.Errorf("%w: dense-xor payload shorter than its header promises", ErrBadFormat)
	}
	vals, used, err := decodeXorFloats(rest, n)
	if err != nil {
		return nil, err
	}
	if used != len(rest) {
		return nil, fmt.Errorf("%w: dense-xor payload size mismatch", ErrBadFormat)
	}
	return matrix.NewDenseData(rows, cols, vals), nil
}

func decodeSparseXor(tag uint8, payload []byte) (matrix.Block, error) {
	major, n1 := binary.Uvarint(payload)
	if n1 <= 0 {
		return nil, fmt.Errorf("%w: truncated xor header", ErrBadFormat)
	}
	minor, n2 := binary.Uvarint(payload[n1:])
	if n2 <= 0 {
		return nil, fmt.Errorf("%w: truncated xor header", ErrBadFormat)
	}
	nnz, n3 := binary.Uvarint(payload[n1+n2:])
	if n3 <= 0 {
		return nil, fmt.Errorf("%w: truncated xor header", ErrBadFormat)
	}
	if major > MaxBlockSide || minor > MaxBlockSide || nnz > uint64(MaxBlockSide)*uint64(MaxBlockSide) {
		return nil, fmt.Errorf("%w: implausible xor dimensions %dx%d nnz=%d", ErrBadFormat, major, minor, nnz)
	}
	rest := payload[n1+n2+n3:]
	// One count byte per major line, one index byte and one value byte per
	// entry at minimum: allocations stay bounded by the input.
	if uint64(len(rest)) < major+2*nnz {
		return nil, fmt.Errorf("%w: xor payload shorter than its own header promises", ErrBadFormat)
	}
	mi, mn, nz := int(major), int(minor), int(nnz)
	if err := checkSparseDims(mi, mn, nz); err != nil {
		return nil, err
	}
	ptr := make([]int, mi+1)
	idx := make([]int, 0, nz)
	off := 0
	for i := 0; i < mi; i++ {
		cnt, n := binary.Uvarint(rest[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: truncated entry count", ErrBadFormat)
		}
		off += n
		if cnt > uint64(nz-len(idx)) {
			return nil, fmt.Errorf("%w: entry counts exceed nnz", ErrBadFormat)
		}
		prev := -1
		for k := uint64(0); k < cnt; k++ {
			gap, n := binary.Uvarint(rest[off:])
			if n <= 0 {
				return nil, fmt.Errorf("%w: truncated index stream", ErrBadFormat)
			}
			off += n
			var c int
			if prev < 0 {
				c = int(gap)
			} else {
				if gap == 0 {
					return nil, fmt.Errorf("%w: zero index gap", ErrBadFormat)
				}
				c = prev + int(gap)
			}
			if c < 0 || c >= mn {
				return nil, fmt.Errorf("%w: index %d outside %d", ErrBadFormat, c, mn)
			}
			idx = append(idx, c)
			prev = c
		}
		ptr[i+1] = len(idx)
	}
	if len(idx) != nz {
		return nil, fmt.Errorf("%w: entry counts do not sum to nnz", ErrBadFormat)
	}
	vals, used, err := decodeXorFloats(rest[off:], nz)
	if err != nil {
		return nil, err
	}
	if used != len(rest[off:]) {
		return nil, fmt.Errorf("%w: xor payload size mismatch", ErrBadFormat)
	}
	if tag == TagCSRXor {
		return &matrix.CSR{RowsN: mi, ColsN: mn, RowPtr: ptr, ColIdx: idx, Val: vals}, nil
	}
	return &matrix.CSC{RowsN: mn, ColsN: mi, ColPtr: ptr, RowIdx: idx, Val: vals}, nil
}
