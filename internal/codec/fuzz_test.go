package codec

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"distme/internal/matrix"
)

// FuzzDecodeBlock drives hostile bytes through every tag the wire accepts.
// The contract mirrors storage's reader: a malformed payload must come back
// as ErrBadFormat — never a panic, never an allocation unbounded by the
// input size — and a payload that does decode must re-encode/decode
// bit-stably (no value smuggling through "lenient" parses).
func FuzzDecodeBlock(f *testing.F) {
	// Seed with valid encodings of each wire form so the fuzzer starts on
	// the happy paths and mutates outward.
	rng := rand.New(rand.NewSource(99))
	seeds := []matrix.Block{
		matrix.NewDense(2, 3),
		matrix.NewCSRFromDense(sparseSeed(rng, 6, 5, 0.3)),
		matrix.NewCSCFromDense(sparseSeed(rng, 5, 6, 0.3)),
		matrix.NewCSRFromDense(sparseSeed(rng, 40, 40, 0.02)), // delta form
		matrix.NewCSCFromDense(sparseSeed(rng, 40, 40, 0.02)),
	}
	for _, b := range seeds {
		payload, tag, err := AppendWire(nil, b)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(tag, payload)
		portable, ptag, err := AppendPortable(nil, b)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(ptag, portable)
		// Golden frames for every opt-in encoding tag (6–11), so the fuzzer
		// reaches the fp32 and xor decoders from their happy paths too.
		for _, enc := range []Encoding{EncodingFP32, EncodingCompress} {
			epayload, etag, err := AppendWireEnc(nil, b, enc)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(etag, epayload)
		}
	}
	f.Add(uint8(200), []byte{0, 1, 2})

	f.Fuzz(func(t *testing.T, tag uint8, payload []byte) {
		blk, err := Decode(tag, payload)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("decode error %v does not wrap ErrBadFormat", err)
			}
			return
		}
		// Accepted input must be internally consistent and re-encodable.
		rows, cols := blk.Dims()
		if rows < 0 || cols < 0 || rows > MaxBlockSide || cols > MaxBlockSide {
			t.Fatalf("accepted implausible dims %dx%d", rows, cols)
		}
		re, retag, err := AppendWire(nil, blk)
		if err != nil {
			t.Fatalf("re-encode of accepted block failed: %v", err)
		}
		back, err := Decode(retag, re)
		if err != nil {
			t.Fatalf("re-decode of accepted block failed: %v", err)
		}
		br, bc := back.Dims()
		if br != rows || bc != cols {
			t.Fatalf("round-trip changed dims %dx%d -> %dx%d", rows, cols, br, bc)
		}
		a, b := blk.Dense(), back.Dense()
		for i := range a.Data {
			if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
				t.Fatalf("round-trip changed value %d", i)
			}
		}
	})
}

// FuzzDecodeEncodings focuses the opt-in encoding tags (fp32 and
// XOR-compressed forms). Beyond FuzzDecodeBlock's contract — malformed
// input is ErrBadFormat, accepted input re-encodes bit-stably — it checks
// the encoding-specific invariants: a compressed re-encode is lossless, and
// fp32 is a projection (a second fp32 round trip changes nothing, because a
// decoded fp32 block holds only float32-representable values).
func FuzzDecodeEncodings(f *testing.F) {
	rng := rand.New(rand.NewSource(1234))
	seeds := []matrix.Block{
		matrix.NewDense(3, 3),
		sparseSeed(rng, 4, 4, 1.0),
		matrix.NewCSRFromDense(sparseSeed(rng, 8, 6, 0.25)),
		matrix.NewCSCFromDense(sparseSeed(rng, 6, 8, 0.25)),
		matrix.NewCSRFromDense(sparseSeed(rng, 40, 40, 0.02)),
		matrix.NewCSCFromDense(sparseSeed(rng, 40, 40, 0.02)),
	}
	for _, b := range seeds {
		for _, enc := range []Encoding{EncodingFP32, EncodingCompress} {
			payload, tag, err := AppendWireEnc(nil, b, enc)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(tag, payload)
		}
	}
	f.Add(TagDenseXor, []byte{1, 1, 0})
	f.Add(TagCSRF32, []byte{0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, tag uint8, payload []byte) {
		// Steer arbitrary tags into the encoding tag range.
		tag = TagDenseF32 + tag%(TagCSCXor-TagDenseF32+1)
		blk, err := Decode(tag, payload)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("decode error %v does not wrap ErrBadFormat", err)
			}
			return
		}
		// Lossless compressed round trip.
		re, retag, err := AppendWireEnc(nil, blk, EncodingCompress)
		if err != nil {
			t.Fatalf("compress re-encode failed: %v", err)
		}
		back, err := Decode(retag, re)
		if err != nil {
			t.Fatalf("compress re-decode failed: %v", err)
		}
		assertSameValues(t, blk, back)
		// fp32 is a projection: one round trip reaches a fixed point.
		p1, t1, err := AppendWireEnc(nil, blk, EncodingFP32)
		if err != nil {
			t.Fatalf("fp32 re-encode failed: %v", err)
		}
		once, err := Decode(t1, p1)
		if err != nil {
			t.Fatalf("fp32 re-decode failed: %v", err)
		}
		p2, t2, err := AppendWireEnc(nil, once, EncodingFP32)
		if err != nil {
			t.Fatalf("fp32 second encode failed: %v", err)
		}
		twice, err := Decode(t2, p2)
		if err != nil {
			t.Fatalf("fp32 second decode failed: %v", err)
		}
		assertSameValues(t, once, twice)
	})
}

// FuzzDecodeManifest drives hostile bytes through the pull-plane manifest
// decoder under the same contract as the block decoders: malformed input is
// ErrBadFormat (never a panic, never an allocation unbounded by the input),
// and an accepted manifest must re-encode to exactly the bytes it consumed.
func FuzzDecodeManifest(f *testing.F) {
	seeds := []Manifest{
		{},
		{Handle: 7, Owners: []string{"127.0.0.1:4100"}, Entries: []ManifestEntry{{KeyI: 0, KeyJ: 1, Owner: 0}}},
		{Handle: 1 << 33, Owners: []string{"a:1", "b:2"}, Entries: []ManifestEntry{
			{KeyI: 3, KeyJ: 4, Owner: 1, HasDigest: true, Digest: Digest{9, 8, 7}},
			{KeyI: 5, KeyJ: 0, Owner: 0},
		}},
	}
	for i := range seeds {
		f.Add(AppendManifest(nil, &seeds[i]))
	}
	f.Add([]byte{0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, rest, err := DecodeManifest(data)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("decode error %v does not wrap ErrBadFormat", err)
			}
			return
		}
		// Accepted input must be internally consistent…
		for _, e := range m.Entries {
			if e.Owner < 0 || e.Owner >= len(m.Owners) {
				t.Fatalf("accepted entry with owner %d outside table of %d", e.Owner, len(m.Owners))
			}
			if e.KeyI < 0 || e.KeyJ < 0 || e.KeyI > MaxBlockSide || e.KeyJ > MaxBlockSide {
				t.Fatalf("accepted implausible key (%d,%d)", e.KeyI, e.KeyJ)
			}
		}
		// …and re-encode/decode bit-stably (a non-canonical uvarint may
		// re-encode shorter, but the manifest itself must survive).
		if len(rest) > len(data) {
			t.Fatalf("decode returned more rest (%d) than input (%d)", len(rest), len(data))
		}
		re := AppendManifest(nil, &m)
		back, rest2, err := DecodeManifest(re)
		if err != nil {
			t.Fatalf("re-decode of accepted manifest failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-decode left %d bytes", len(rest2))
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("round trip changed the manifest:\n got %+v\nwant %+v", back, m)
		}
	})
}

func assertSameValues(t *testing.T, want, got matrix.Block) {
	t.Helper()
	wr, wc := want.Dims()
	gr, gc := got.Dims()
	if wr != gr || wc != gc {
		t.Fatalf("round-trip changed dims %dx%d -> %dx%d", wr, wc, gr, gc)
	}
	a, b := want.Dense(), got.Dense()
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("round-trip changed value %d: %v -> %v", i, a.Data[i], b.Data[i])
		}
	}
}

func sparseSeed(rng *rand.Rand, rows, cols int, density float64) *matrix.Dense {
	d := matrix.NewDense(rows, cols)
	for i := range d.Data {
		if rng.Float64() < density {
			d.Data[i] = rng.NormFloat64()
		}
	}
	return d
}
