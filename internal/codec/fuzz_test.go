package codec

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"distme/internal/matrix"
)

// FuzzDecodeBlock drives hostile bytes through every tag the wire accepts.
// The contract mirrors storage's reader: a malformed payload must come back
// as ErrBadFormat — never a panic, never an allocation unbounded by the
// input size — and a payload that does decode must re-encode/decode
// bit-stably (no value smuggling through "lenient" parses).
func FuzzDecodeBlock(f *testing.F) {
	// Seed with valid encodings of each wire form so the fuzzer starts on
	// the happy paths and mutates outward.
	rng := rand.New(rand.NewSource(99))
	seeds := []matrix.Block{
		matrix.NewDense(2, 3),
		matrix.NewCSRFromDense(sparseSeed(rng, 6, 5, 0.3)),
		matrix.NewCSCFromDense(sparseSeed(rng, 5, 6, 0.3)),
		matrix.NewCSRFromDense(sparseSeed(rng, 40, 40, 0.02)), // delta form
		matrix.NewCSCFromDense(sparseSeed(rng, 40, 40, 0.02)),
	}
	for _, b := range seeds {
		payload, tag, err := AppendWire(nil, b)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(tag, payload)
		portable, ptag, err := AppendPortable(nil, b)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(ptag, portable)
	}
	f.Add(uint8(200), []byte{0, 1, 2})

	f.Fuzz(func(t *testing.T, tag uint8, payload []byte) {
		blk, err := Decode(tag, payload)
		if err != nil {
			if !errors.Is(err, ErrBadFormat) {
				t.Fatalf("decode error %v does not wrap ErrBadFormat", err)
			}
			return
		}
		// Accepted input must be internally consistent and re-encodable.
		rows, cols := blk.Dims()
		if rows < 0 || cols < 0 || rows > MaxBlockSide || cols > MaxBlockSide {
			t.Fatalf("accepted implausible dims %dx%d", rows, cols)
		}
		re, retag, err := AppendWire(nil, blk)
		if err != nil {
			t.Fatalf("re-encode of accepted block failed: %v", err)
		}
		back, err := Decode(retag, re)
		if err != nil {
			t.Fatalf("re-decode of accepted block failed: %v", err)
		}
		br, bc := back.Dims()
		if br != rows || bc != cols {
			t.Fatalf("round-trip changed dims %dx%d -> %dx%d", rows, cols, br, bc)
		}
		a, b := blk.Dense(), back.Dense()
		for i := range a.Data {
			if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
				t.Fatalf("round-trip changed value %d", i)
			}
		}
	})
}

func sparseSeed(rng *rand.Rand, rows, cols int, density float64) *matrix.Dense {
	d := matrix.NewDense(rows, cols)
	for i := range d.Data {
		if rng.Float64() < density {
			d.Data[i] = rng.NormFloat64()
		}
	}
	return d
}
