package codec

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distme/internal/matrix"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func allEncodings() []Encoding {
	return []Encoding{EncodingFP64, EncodingFP32, EncodingCompress}
}

// TestEncodingRoundTrip: every (block, encoding) pair must decode back with
// the promised fidelity — bit-exact for fp64 and compress, float32-rounded
// for fp32 — and AppendWireSG's (out, tail) split must concatenate to
// exactly AppendWireEnc's contiguous payload, whose length EncodedBytesEnc
// predicted.
func TestEncodingRoundTrip(t *testing.T) {
	for _, enc := range allEncodings() {
		for i, b := range testBlocks(t) {
			payload, tag, err := AppendWireEnc(nil, b, enc)
			if err != nil {
				t.Fatalf("%v block %d: AppendWireEnc: %v", enc, i, err)
			}
			if int64(len(payload)) != EncodedBytesEnc(b, enc) {
				t.Fatalf("%v block %d: EncodedBytesEnc %d != actual %d", enc, i, EncodedBytesEnc(b, enc), len(payload))
			}
			prefix := []byte("prefix")
			out, sgTag, tail, err := AppendWireSG(prefix, b, enc)
			if err != nil {
				t.Fatalf("%v block %d: AppendWireSG: %v", enc, i, err)
			}
			if sgTag != tag {
				t.Fatalf("%v block %d: SG tag %d != contiguous tag %d", enc, i, sgTag, tag)
			}
			if !bytes.HasPrefix(out, []byte("prefix")) {
				t.Fatalf("%v block %d: SG encoder clobbered the dst prefix", enc, i)
			}
			joined := append(append([]byte{}, out[len("prefix"):]...), tail...)
			if !bytes.Equal(joined, payload) {
				t.Fatalf("%v block %d: SG segments differ from contiguous payload", enc, i)
			}
			got, err := Decode(tag, payload)
			if err != nil {
				t.Fatalf("%v block %d: Decode(tag %d): %v", enc, i, tag, err)
			}
			if enc == EncodingFP32 {
				blocksEqualF32(t, b, got)
			} else {
				blocksEqualExact(t, b, got)
			}
		}
	}
}

// blocksEqualF32 asserts got equals want after float32 rounding: each value
// must be exactly float64(float32(want)) — the documented fp32 loss, a
// relative error of at most 2^-24 for in-range values.
func blocksEqualF32(t *testing.T, want, got matrix.Block) {
	t.Helper()
	wr, wc := want.Dims()
	gr, gc := got.Dims()
	if wr != gr || wc != gc {
		t.Fatalf("dims %dx%d, want %dx%d", gr, gc, wr, wc)
	}
	wd, gd := want.Dense(), got.Dense()
	for i := range wd.Data {
		exp := float64(float32(wd.Data[i]))
		if math.Float64bits(exp) != math.Float64bits(gd.Data[i]) {
			t.Fatalf("value %d: got %v, want float32-rounded %v", i, gd.Data[i], exp)
		}
		if wd.Data[i] != 0 {
			rel := math.Abs((gd.Data[i] - wd.Data[i]) / wd.Data[i])
			if !math.IsInf(gd.Data[i], 0) && rel > math.Exp2(-24)*1.0000001 {
				t.Fatalf("value %d: relative error %g exceeds 2^-24", i, rel)
			}
		}
	}
}

// TestEncodingFP32Semantics pins the documented error behavior: values
// outside float32 range overflow to ±Inf, and sparse blocks whose shape
// overflows the 32-bit layout fall back to the lossless wire form.
func TestEncodingFP32Semantics(t *testing.T) {
	huge := matrix.NewDenseData(1, 3, []float64{1e308, -1e308, 1.5})
	payload, tag, err := AppendWireEnc(nil, huge, EncodingFP32)
	if err != nil {
		t.Fatalf("AppendWireEnc: %v", err)
	}
	if tag != TagDenseF32 {
		t.Fatalf("tag %d, want TagDenseF32", tag)
	}
	got, err := Decode(tag, payload)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	d := got.Dense()
	if !math.IsInf(d.Data[0], 1) || !math.IsInf(d.Data[1], -1) {
		t.Fatalf("out-of-range values %v, want ±Inf", d.Data[:2])
	}
	if d.Data[2] != 1.5 {
		t.Fatalf("in-range value %v, want 1.5", d.Data[2])
	}
}

// TestEncodingCompressNeverLarger: the compressed plan must never exceed
// the raw plan (per-block fallback), and a genuinely structured block must
// actually pick a compressed tag and come back bit-identical.
func TestEncodingCompressNeverLarger(t *testing.T) {
	for i, b := range testBlocks(t) {
		raw := EncodedBytes(b)
		comp := EncodedBytesEnc(b, EncodingCompress)
		if comp > raw {
			t.Fatalf("block %d: compressed plan %d > raw %d", i, comp, raw)
		}
	}
	rep := matrix.NewDense(32, 32)
	for i := range rep.Data {
		rep.Data[i] = 2.5
	}
	payload, tag, err := AppendWireEnc(nil, rep, EncodingCompress)
	if err != nil {
		t.Fatalf("AppendWireEnc: %v", err)
	}
	if tag != TagDenseXor {
		t.Fatalf("structured block kept tag %d, want TagDenseXor", tag)
	}
	if int64(len(payload)) >= EncodedBytes(rep) {
		t.Fatalf("compressed payload %d not smaller than raw %d", len(payload), EncodedBytes(rep))
	}
	got, err := Decode(tag, payload)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	blocksEqualExact(t, rep, got)
}

// TestEncodingHostileInputs drives malformed payloads through every new
// tag; each must come back as ErrBadFormat, never a panic.
func TestEncodingHostileInputs(t *testing.T) {
	u64 := func(v uint64) []byte {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		return b[:]
	}
	u32 := func(v uint32) []byte {
		var b [4]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		return b[:]
	}
	cat := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	cases := []struct {
		name    string
		tag     uint8
		payload []byte
	}{
		{"dense-f32 short", TagDenseF32, []byte{1, 2, 3}},
		{"dense-f32 size mismatch", TagDenseF32, cat(u64(2), u64(2), u32(0))},
		{"dense-f32 huge dims", TagDenseF32, cat(u64(1<<40), u64(1), u32(0))},
		{"csr-f32 short", TagCSRF32, []byte{1}},
		{"csr-f32 size mismatch", TagCSRF32, cat(u32(2), u32(2), u32(9))},
		{"csc-f32 bad structure", TagCSCF32, cat(u32(1), u32(1), u32(1), u32(1), u32(0), u32(0), u32(0))},
		{"dense-xor short", TagDenseXor, []byte{0}},
		{"dense-xor truncated values", TagDenseXor, cat(u64(2), u64(2), []byte{1, 2})},
		{"dense-xor trailing junk", TagDenseXor, cat(u64(1), u64(1), []byte{0, 0, 0})},
		{"csr-xor truncated header", TagCSRXor, []byte{5}},
		{"csr-xor counts exceed nnz", TagCSRXor, cat([]byte{2, 3, 1}, []byte{2, 0, 1, 0, 0, 0})},
		{"csc-xor zero gap", TagCSCXor, cat([]byte{1, 4, 2}, []byte{2, 1, 0, 0, 0})},
		{"csr-xor index outside", TagCSRXor, cat([]byte{1, 2, 1}, []byte{1, 7, 0})},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.tag, tc.payload); !errorsIsBadFormat(err) {
			t.Errorf("%s: error %v does not wrap ErrBadFormat", tc.name, err)
		}
	}
}

// TestDigestOfEncDistinct: the digest covers the encoded bytes, so a block
// whose encodings differ must have distinct digests per encoding — the
// worker cache stores what the bytes decoded to, and a shared digest would
// let an fp32 body satisfy an fp64 reference.
func TestDigestOfEncDistinct(t *testing.T) {
	b := matrix.NewDense(8, 8)
	for i := range b.Data {
		b.Data[i] = 1.0 / 3.0 // not float32-representable, and compressible
	}
	d64, err := DigestOfEnc(b, EncodingFP64)
	if err != nil {
		t.Fatal(err)
	}
	d32, err := DigestOfEnc(b, EncodingFP32)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := DigestOfEnc(b, EncodingCompress)
	if err != nil {
		t.Fatal(err)
	}
	if d64 == d32 || d64 == dc || d32 == dc {
		t.Fatalf("digests collide across encodings: %s %s %s", d64.Short(), d32.Short(), dc.Short())
	}
	legacy, err := DigestOf(b)
	if err != nil {
		t.Fatal(err)
	}
	if legacy != d64 {
		t.Fatalf("DigestOf diverged from DigestOfEnc(fp64)")
	}
}

// goldenEncodingBlocks are hand-built deterministic blocks whose values are
// all float32-exact, so every encoding's bytes are identical on any
// platform — the fixtures the golden file pins.
func goldenEncodingBlocks() []struct {
	name string
	b    matrix.Block
} {
	dense := matrix.NewDenseData(3, 4, []float64{
		0, 1, -1, 0.5,
		2, 1024.25, -3.75, 8,
		0.125, -0.0625, 6, 7,
	})
	rep := matrix.NewDenseData(2, 6, []float64{
		5, 5, 5, 5, 2.5, 2.5,
		2.5, 2.5, -0.5, -0.5, -0.5, -0.5,
	})
	spd := matrix.NewDense(6, 8)
	spd.Data[1] = 3.5
	spd.Data[12] = -2.25
	spd.Data[13] = -2.25
	spd.Data[30] = 64
	spd.Data[47] = 0.75
	return []struct {
		name string
		b    matrix.Block
	}{
		{"dense", dense},
		{"dense-repeating", rep},
		{"csr", matrix.NewCSRFromDense(spd)},
		{"csc", matrix.NewCSCFromDense(spd)},
	}
}

// TestEncodingGolden pins the exact wire bytes of every encoding against
// testdata/encodings.golden; run with -update to regenerate after a
// deliberate format change. A diff here means old peers can no longer
// decode new frames.
func TestEncodingGolden(t *testing.T) {
	path := filepath.Join("testdata", "encodings.golden")
	var sb strings.Builder
	for _, tc := range goldenEncodingBlocks() {
		for _, enc := range allEncodings() {
			payload, tag, err := AppendWireEnc(nil, tc.b, enc)
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, enc, err)
			}
			fmt.Fprintf(&sb, "%s %s %d %s\n", tc.name, enc, tag, hex.EncodeToString(payload))
		}
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if string(want) != sb.String() {
		t.Fatalf("wire bytes diverged from %s — a format change breaks decode compatibility; "+
			"if deliberate, regenerate with -update.\ngot:\n%s\nwant:\n%s", path, sb.String(), want)
	}
}

// TestEncodingGoldenDecodes proves every pinned frame still decodes to the
// fixture it was built from, under the encoding's documented fidelity.
func TestEncodingGoldenDecodes(t *testing.T) {
	for _, tc := range goldenEncodingBlocks() {
		for _, enc := range allEncodings() {
			payload, tag, err := AppendWireEnc(nil, tc.b, enc)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(tag, payload)
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, enc, err)
			}
			// All golden values are float32-exact, so even fp32 must be
			// bit-identical here.
			blocksEqualExact(t, tc.b, got)
		}
	}
}
