package workload

import (
	"fmt"
	"math/rand"

	"distme/internal/bmat"
)

// ServeJob is one multiply job drawn from a serving-plane mix: a labeled
// operand pair from one of the §6.1 shape families.
type ServeJob struct {
	Kind string
	A, B *bmat.BlockMatrix
}

// ServeMix is a pre-generated pool of mixed-shape jobs for open-loop load
// generation: operands are built once up front so a high offered rate
// measures the serving plane, not the random-matrix generator. Draws by
// index are deterministic and safe from many goroutines.
type ServeMix struct {
	jobs []ServeJob
}

// ServeShape is one family instance in a mix.
type ServeShape struct {
	Family Family
	N      int
	Fixed  int
}

// NewServeMix builds the default mixed-shape pool: every §6.1 family at
// small and medium scale, variants instances per shape with distinct
// seeded contents. blockSize <= 0 defaults to 8.
func NewServeMix(seed int64, blockSize, variants int) *ServeMix {
	return NewServeMixShapes(seed, blockSize, variants, []ServeShape{
		{General, 32, 0},
		{General, 64, 0},
		{CommonLargeDim, 96, 16},
		{CommonLargeDim, 192, 16},
		{TwoLargeDims, 64, 16},
		{TwoLargeDims, 96, 16},
	})
}

// NewServeMixShapes builds a pool over caller-chosen shapes, variants
// instances per shape with distinct seeded contents. blockSize <= 0
// defaults to 8.
func NewServeMixShapes(seed int64, blockSize, variants int, shapes []ServeShape) *ServeMix {
	if blockSize <= 0 {
		blockSize = 8
	}
	if variants < 1 {
		variants = 1
	}
	rng := rand.New(rand.NewSource(seed))
	m := &ServeMix{}
	for _, sh := range shapes {
		for v := 0; v < variants; v++ {
			a, b := SyntheticPair(rng, sh.Family, sh.N, sh.Fixed, blockSize, 1.0)
			i, k, j := sh.Family.Dims(sh.N, sh.Fixed)
			m.jobs = append(m.jobs, ServeJob{
				Kind: fmt.Sprintf("%dx%dx%d", i, k, j),
				A:    a,
				B:    b,
			})
		}
	}
	return m
}

// Len is the pool size.
func (m *ServeMix) Len() int { return len(m.jobs) }

// Job returns the i-th draw, cycling through the pool. Consecutive indices
// interleave shapes so any submission window is mixed.
func (m *ServeMix) Job(i int) ServeJob {
	if i < 0 {
		i = -i
	}
	// A stride coprime with the pool length scatters neighboring indices
	// across shape families.
	return m.jobs[(i*7+i/len(m.jobs))%len(m.jobs)]
}
