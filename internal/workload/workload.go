// Package workload generates the evaluation inputs of §6.1: the three
// synthetic dataset families (two general matrices, two matrices with a
// common large dimension, two matrices with two large dimensions) and
// synthetic stand-ins for the real rating datasets of Table 3 with the
// paper's exact row/column/non-zero statistics, scalable for laptop runs.
package workload

import (
	"fmt"
	"math/rand"

	"distme/internal/bmat"
)

// Family identifies a synthetic dataset family from §6.1.
type Family int

const (
	// General is "two general matrices": I = K = J = N.
	General Family = iota
	// CommonLargeDim is "two matrices with a common large dimension":
	// K = N with fixed small I = J.
	CommonLargeDim
	// TwoLargeDims is "two matrices with two large dimensions":
	// I = J = N with fixed small K.
	TwoLargeDims
)

// String names the family as the figures caption it.
func (f Family) String() string {
	switch f {
	case General:
		return "two general matrices"
	case CommonLargeDim:
		return "two matrices with a common large dimension"
	case TwoLargeDims:
		return "two matrices with two large dimensions"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// Dims returns the multiplication dimensions I×K×J (element counts) of a
// family instance: A is I×K, B is K×J. Fixed is the family's small side
// (10K or 1K at paper scale; scaled down for measured runs).
func (f Family) Dims(n, fixed int) (i, k, j int) {
	switch f {
	case General:
		return n, n, n
	case CommonLargeDim:
		return fixed, n, fixed
	case TwoLargeDims:
		return n, fixed, n
	default:
		panic(fmt.Sprintf("workload: unknown family %d", int(f)))
	}
}

// SyntheticPair generates the two input matrices of a family instance with
// uniformly distributed non-zeros at the given sparsity (1.0 = dense, as the
// paper's generator).
func SyntheticPair(rng *rand.Rand, f Family, n, fixed, blockSize int, sparsity float64) (a, b *bmat.BlockMatrix) {
	i, k, j := f.Dims(n, fixed)
	if sparsity >= 1 {
		return bmat.RandomDense(rng, i, k, blockSize), bmat.RandomDense(rng, k, j, blockSize)
	}
	return bmat.RandomSparse(rng, i, k, blockSize, sparsity), bmat.RandomSparse(rng, k, j, blockSize, sparsity)
}

// Dataset describes a real rating dataset by its Table 3 statistics.
type Dataset struct {
	Name    string
	Ratings int64
	Users   int64
	Items   int64
}

// The three real datasets of Table 3.
var (
	MovieLens  = Dataset{Name: "MovieLens", Ratings: 27_753_444, Users: 283_228, Items: 58_098}
	Netflix    = Dataset{Name: "Netflix", Ratings: 100_480_507, Users: 480_189, Items: 17_770}
	YahooMusic = Dataset{Name: "YahooMusic", Ratings: 717_872_016, Users: 1_823_179, Items: 136_736}
)

// Datasets lists Table 3 in the paper's order.
func Datasets() []Dataset { return []Dataset{MovieLens, Netflix, YahooMusic} }

// Density returns ratings / (users × items).
func (d Dataset) Density() float64 {
	return float64(d.Ratings) / (float64(d.Users) * float64(d.Items))
}

// Scaled returns a dataset with dimensions multiplied by scale and the
// density preserved, for laptop-scale measured runs. Dimensions are floored
// at 1.
func (d Dataset) Scaled(scale float64) Dataset {
	users := int64(float64(d.Users) * scale)
	items := int64(float64(d.Items) * scale)
	if users < 1 {
		users = 1
	}
	if items < 1 {
		items = 1
	}
	ratings := int64(d.Density() * float64(users) * float64(items))
	return Dataset{
		Name:    fmt.Sprintf("%s(x%g)", d.Name, scale),
		Ratings: ratings,
		Users:   users,
		Items:   items,
	}
}

// RatingMatrix generates the users×items sparse rating matrix V with the
// dataset's density — the synthetic stand-in for the proprietary rating
// data, preserving the only properties GNMF's cost depends on: dimensions
// and sparsity.
func (d Dataset) RatingMatrix(rng *rand.Rand, blockSize int) *bmat.BlockMatrix {
	return bmat.RandomSparse(rng, int(d.Users), int(d.Items), blockSize, d.Density())
}

// String renders the Table 3 row.
func (d Dataset) String() string {
	return fmt.Sprintf("%s{ratings=%d users=%d items=%d}", d.Name, d.Ratings, d.Users, d.Items)
}
