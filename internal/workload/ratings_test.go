package workload

import (
	"strings"
	"testing"
)

func TestLoadRatingsTabSeparated(t *testing.T) {
	// The MovieLens u.data layout: user \t item \t rating \t timestamp.
	data := "1\t10\t5\t881250949\n" +
		"1\t20\t3\t881250950\n" +
		"2\t10\t4\t881250951\n" +
		"3\t30\t1\t881250952\n"
	v, err := LoadRatings(strings.NewReader(data), 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Rows != 3 || v.Cols != 3 {
		t.Fatalf("V is %dx%d, want 3x3 (compacted ids)", v.Rows, v.Cols)
	}
	if v.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", v.NNZ())
	}
	// First-seen compaction: user "1"→0, item "10"→0.
	if v.At(0, 0) != 5 {
		t.Fatalf("V[0,0] = %g, want 5", v.At(0, 0))
	}
	if v.At(1, 0) != 4 { // user "2"→1, item "10"→0
		t.Fatalf("V[1,0] = %g, want 4", v.At(1, 0))
	}
	if !v.IsSparse() {
		t.Fatal("ratings should load as sparse blocks")
	}
}

func TestLoadRatingsCommaAndComments(t *testing.T) {
	data := "# MovieLens-style comments\n" +
		"% MatrixMarket-style too\n" +
		"\n" +
		"7,9,2.5\n" +
		"8,9,4.0\n"
	v, err := LoadRatings(strings.NewReader(data), 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", v.NNZ())
	}
	if v.At(0, 0) != 2.5 {
		t.Fatalf("V[0,0] = %g", v.At(0, 0))
	}
}

func TestLoadRatingsReRateKeepsLast(t *testing.T) {
	data := "1 5 2\n1 5 4\n"
	v, err := LoadRatings(strings.NewReader(data), 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.NNZ() != 1 {
		t.Fatalf("nnz = %d, want 1 after re-rate", v.NNZ())
	}
	if v.At(0, 0) != 4 {
		t.Fatalf("re-rate kept %g, want 4", v.At(0, 0))
	}
}

func TestLoadRatingsErrors(t *testing.T) {
	if _, err := LoadRatings(strings.NewReader("1 2\n"), 2); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := LoadRatings(strings.NewReader("1 2 x\n"), 2); err == nil {
		t.Fatal("bad rating accepted")
	}
	if _, err := LoadRatings(strings.NewReader(""), 2); err == nil {
		t.Fatal("empty file accepted")
	}
	if _, err := LoadRatings(strings.NewReader("1 2 3\n"), 0); err == nil {
		t.Fatal("zero block size accepted")
	}
}
