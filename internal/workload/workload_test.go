package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestFamilyDims(t *testing.T) {
	if i, k, j := General.Dims(100, 10); i != 100 || k != 100 || j != 100 {
		t.Fatalf("General dims = %d,%d,%d", i, k, j)
	}
	if i, k, j := CommonLargeDim.Dims(100, 10); i != 10 || k != 100 || j != 10 {
		t.Fatalf("CommonLargeDim dims = %d,%d,%d", i, k, j)
	}
	if i, k, j := TwoLargeDims.Dims(100, 10); i != 100 || k != 10 || j != 100 {
		t.Fatalf("TwoLargeDims dims = %d,%d,%d", i, k, j)
	}
}

func TestFamilyString(t *testing.T) {
	for _, f := range []Family{General, CommonLargeDim, TwoLargeDims} {
		if f.String() == "" {
			t.Fatal("family name empty")
		}
	}
	if Family(99).String() == "" {
		t.Fatal("unknown family should render")
	}
}

func TestSyntheticPairShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	a, b := SyntheticPair(rng, CommonLargeDim, 24, 8, 4, 1.0)
	if a.Rows != 8 || a.Cols != 24 {
		t.Fatalf("A is %dx%d, want 8x24", a.Rows, a.Cols)
	}
	if b.Rows != 24 || b.Cols != 8 {
		t.Fatalf("B is %dx%d, want 24x8", b.Rows, b.Cols)
	}
	if a.IsSparse() {
		t.Fatal("sparsity 1.0 should generate dense blocks")
	}
	as, _ := SyntheticPair(rng, General, 20, 0, 4, 0.1)
	if !as.IsSparse() {
		t.Fatal("sparsity 0.1 should generate sparse blocks")
	}
}

func TestTable3Statistics(t *testing.T) {
	// The exact Table 3 rows.
	cases := []struct {
		d                     Dataset
		ratings, users, items int64
	}{
		{MovieLens, 27_753_444, 283_228, 58_098},
		{Netflix, 100_480_507, 480_189, 17_770},
		{YahooMusic, 717_872_016, 1_823_179, 136_736},
	}
	for _, c := range cases {
		if c.d.Ratings != c.ratings || c.d.Users != c.users || c.d.Items != c.items {
			t.Errorf("%s stats = %+v", c.d.Name, c.d)
		}
	}
	if len(Datasets()) != 3 {
		t.Fatal("Datasets() should list the three Table 3 datasets")
	}
}

func TestDensity(t *testing.T) {
	d := Dataset{Name: "x", Ratings: 50, Users: 10, Items: 10}
	if d.Density() != 0.5 {
		t.Fatalf("density = %g", d.Density())
	}
	// Netflix density ≈ 1.18%.
	if nd := Netflix.Density(); nd < 0.011 || nd > 0.013 {
		t.Fatalf("Netflix density = %g, want ≈0.0118", nd)
	}
}

func TestScaledPreservesDensity(t *testing.T) {
	s := Netflix.Scaled(0.01)
	if math.Abs(s.Density()-Netflix.Density()) > Netflix.Density()*0.05 {
		t.Fatalf("scaled density %g drifted from %g", s.Density(), Netflix.Density())
	}
	if s.Users != int64(float64(Netflix.Users)*0.01) {
		t.Fatalf("scaled users = %d", s.Users)
	}
}

func TestScaledFloorsAtOne(t *testing.T) {
	s := Dataset{Name: "t", Ratings: 10, Users: 5, Items: 5}.Scaled(0.0001)
	if s.Users < 1 || s.Items < 1 {
		t.Fatal("scaling must floor dimensions at 1")
	}
}

func TestRatingMatrixMatchesProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	d := Netflix.Scaled(0.002) // ≈960×35
	v := d.RatingMatrix(rng, 16)
	if int64(v.Rows) != d.Users || int64(v.Cols) != d.Items {
		t.Fatalf("rating matrix %dx%d, profile %dx%d", v.Rows, v.Cols, d.Users, d.Items)
	}
	got := v.Sparsity()
	want := d.Density()
	if got < want*0.5 || got > want*1.5 {
		t.Fatalf("rating sparsity %g, want ≈%g", got, want)
	}
	if !v.IsSparse() {
		t.Fatal("rating matrix should be sparse")
	}
}

func TestDatasetString(t *testing.T) {
	if MovieLens.String() == "" {
		t.Fatal("dataset should render")
	}
}
