package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// LoadRatings parses a ratings file in the whitespace/comma-separated
// "user item rating [timestamp...]" layout used by the MovieLens and
// Netflix-prize exports and builds the users×items sparse rating matrix V.
// User and item IDs may be arbitrary positive integers; they are compacted
// to dense 0-based indices in first-seen order. Lines that are empty or
// start with '#' or '%' are skipped. Duplicate (user, item) pairs keep the
// last rating, matching how the competition datasets resolve re-rates.
func LoadRatings(r io.Reader, blockSize int) (*bmat.BlockMatrix, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("workload: LoadRatings: block size must be positive, got %d", blockSize)
	}
	type entry struct {
		user, item int
		rating     float64
	}
	var entries []entry
	userIdx := make(map[string]int)
	itemIdx := make(map[string]int)
	last := make(map[[2]int]int) // (user, item) → entries index, for re-rates

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ',' || r == ';'
		})
		if len(fields) < 3 {
			return nil, fmt.Errorf("workload: LoadRatings: line %d: want ≥3 fields, got %d", lineNo, len(fields))
		}
		rating, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: LoadRatings: line %d: bad rating %q: %v", lineNo, fields[2], err)
		}
		u, ok := userIdx[fields[0]]
		if !ok {
			u = len(userIdx)
			userIdx[fields[0]] = u
		}
		it, ok := itemIdx[fields[1]]
		if !ok {
			it = len(itemIdx)
			itemIdx[fields[1]] = it
		}
		key := [2]int{u, it}
		if prev, ok := last[key]; ok {
			entries[prev].rating = rating
			continue
		}
		last[key] = len(entries)
		entries = append(entries, entry{user: u, item: it, rating: rating})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: LoadRatings: %w", err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("workload: LoadRatings: no ratings found")
	}

	v := bmat.New(len(userIdx), len(itemIdx), blockSize)
	// Bucket triplets per block, then build CSR blocks.
	type trip struct {
		r, c int
		v    float64
	}
	buckets := make(map[bmat.BlockKey][]trip)
	for _, e := range entries {
		key := bmat.BlockKey{I: e.user / blockSize, J: e.item / blockSize}
		buckets[key] = append(buckets[key], trip{r: e.user % blockSize, c: e.item % blockSize, v: e.rating})
	}
	for key, ts := range buckets {
		rows, cols := v.BlockDims(key.I, key.J)
		ri := make([]int, len(ts))
		ci := make([]int, len(ts))
		vv := make([]float64, len(ts))
		for x, tr := range ts {
			ri[x], ci[x], vv[x] = tr.r, tr.c, tr.v
		}
		v.SetBlock(key.I, key.J, matrix.NewCSR(rows, cols, ri, ci, vv))
	}
	return v, nil
}
