package distnet

import (
	"context"
	"fmt"
	"net"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// WorkerPool providers: InProcPool serves workers inside the test process
// (with hooks for proxy interposition and abrupt kills, which is what the
// soak harness drives), ExecPool spawns real distme-worker processes.

// InProcPool provisions in-process workers on loopback listeners.
type InProcPool struct {
	// Opts tunes every worker this pool serves.
	Opts WorkerOptions
	// Wrap, when set, maps a worker's real listen address to the address
	// advertised to the driver — the soak harness interposes its chaos
	// proxy here. Shrink/Owns/Kill accept the advertised address.
	Wrap func(realAddr string) string

	mu      sync.Mutex
	workers map[string]*inprocEntry // keyed by advertised address
}

type inprocEntry struct {
	w        *Worker
	listener net.Listener
	realAddr string
}

// Grow starts one worker on a fresh loopback port.
func (p *InProcPool) Grow(_ context.Context) (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	w, err := ServeOptions(l, p.Opts)
	if err != nil {
		l.Close()
		return "", err
	}
	real := l.Addr().String()
	adv := real
	if p.Wrap != nil {
		adv = p.Wrap(real)
	}
	p.mu.Lock()
	if p.workers == nil {
		p.workers = map[string]*inprocEntry{}
	}
	p.workers[adv] = &inprocEntry{w: w, listener: l, realAddr: real}
	p.mu.Unlock()
	return adv, nil
}

// Shrink gracefully shuts the worker at addr down (drain bounded by ctx).
func (p *InProcPool) Shrink(ctx context.Context, addr string) error {
	p.mu.Lock()
	e := p.workers[addr]
	delete(p.workers, addr)
	p.mu.Unlock()
	if e == nil {
		return fmt.Errorf("distnet: pool does not own %s", addr)
	}
	return e.w.Shutdown(ctx)
}

// Owns reports whether addr was provisioned by this pool.
func (p *InProcPool) Owns(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.workers[addr]
	return ok
}

// Kill tears the worker at addr down abruptly — listener and every open
// connection close with no drain, as a crash would. The entry stays owned
// so leak checks can still inspect the worker; a later Shrink reaps it.
func (p *InProcPool) Kill(addr string) bool {
	p.mu.Lock()
	e := p.workers[addr]
	p.mu.Unlock()
	if e == nil {
		return false
	}
	e.w.abort()
	return true
}

// Worker returns the pool's worker at addr (nil if not owned) so tests and
// the soak harness can assert on its store after a run.
func (p *InProcPool) Worker(addr string) *Worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e := p.workers[addr]; e != nil {
		return e.w
	}
	return nil
}

// Addrs lists the advertised addresses this pool currently owns.
func (p *InProcPool) Addrs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.workers))
	for a := range p.workers {
		out = append(out, a)
	}
	return out
}

// Close shuts every owned worker down (graceful, bounded by ctx each).
func (p *InProcPool) Close(ctx context.Context) {
	p.mu.Lock()
	workers := p.workers
	p.workers = nil
	p.mu.Unlock()
	for _, e := range workers {
		_ = e.w.Shutdown(ctx)
	}
}

// abort is the crash-shaped teardown behind InProcPool.Kill: close the
// listener and every connection now, with no draining state — in-flight
// RPCs fail at the socket exactly as if the process died.
func (w *Worker) abort() {
	w.mu.Lock()
	l := w.listener
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.conns = map[net.Conn]struct{}{}
	w.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	w.closePeers()
}

// ExecPool provisions workers by spawning distme-worker processes.
type ExecPool struct {
	// Binary is the distme-worker executable path (required).
	Binary string
	// Args are extra flags appended after -addr (e.g. -cache-bytes).
	Args []string
	// StartTimeout bounds waiting for a spawned worker to answer its port
	// (default 10s).
	StartTimeout time.Duration

	mu    sync.Mutex
	procs map[string]*exec.Cmd
}

// Grow picks a free loopback port, spawns the worker binary on it, and
// waits until the port answers.
func (p *ExecPool) Grow(ctx context.Context) (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()

	args := append([]string{"-addr", addr}, p.Args...)
	cmd := exec.Command(p.Binary, args...)
	if err := cmd.Start(); err != nil {
		return "", fmt.Errorf("distnet: spawn %s: %w", p.Binary, err)
	}
	timeout := p.StartTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for {
		if err := ctx.Err(); err != nil || time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			go cmd.Wait()
			if err == nil {
				err = fmt.Errorf("distnet: worker %s did not come up within %v", addr, timeout)
			}
			return "", err
		}
		conn, derr := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if derr == nil {
			conn.Close()
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	p.mu.Lock()
	if p.procs == nil {
		p.procs = map[string]*exec.Cmd{}
	}
	p.procs[addr] = cmd
	p.mu.Unlock()
	return addr, nil
}

// Shrink sends the worker SIGTERM (distme-worker drains gracefully on it)
// and waits for exit, bounded by ctx; on timeout the process is killed.
func (p *ExecPool) Shrink(ctx context.Context, addr string) error {
	p.mu.Lock()
	cmd := p.procs[addr]
	delete(p.procs, addr)
	p.mu.Unlock()
	if cmd == nil {
		return fmt.Errorf("distnet: pool does not own %s", addr)
	}
	_ = cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		_ = cmd.Process.Kill()
		<-done
		return ctx.Err()
	}
}

// Owns reports whether addr was spawned by this pool.
func (p *ExecPool) Owns(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.procs[addr]
	return ok
}
