// Package distnet is the over-the-wire execution path: a driver that runs
// CuboidMM's local-multiplication step on remote worker processes over TCP
// (net/rpc with a custom binary codec), really serializing blocks onto
// sockets. The in-process cluster substrate simulates Spark's accounting;
// this package complements it with genuinely distributed execution — same
// cuboid plans, same results, measured wire bytes — so the repartition/
// aggregation costs the paper reasons about correspond to observable
// network traffic.
package distnet

import (
	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/matrix"
)

// BlockRec is one keyed block on the wire.
type BlockRec struct {
	Key   bmat.BlockKey
	Block matrix.Block

	// digest, when set by the driver, is the content address of Block; the
	// client codec uses it to replace repeat sends to the same worker with
	// a 32-byte reference (nil means "always ship inline").
	digest *codec.Digest
}

// MultiplyArgs ships one cuboid to a worker: the voxel box plus the A- and
// B-side blocks it needs. Indices are global block coordinates so the reply
// keys line up with the driver's output grid.
type MultiplyArgs struct {
	ILo, IHi, JLo, JHi, KLo, KHi int
	ABlocks                      []BlockRec // A_{i,k} for the box
	BBlocks                      []BlockRec // B_{k,j} for the box

	// cacheEpoch scopes this cuboid's digest references to one driver job;
	// the worker's block cache retires older epochs when a new one arrives.
	cacheEpoch uint64

	// traceSpan is the driver-side span the worker parents its compute span
	// to (0 when tracing is off); cuboidP/Q/R are the cuboid's grid
	// coordinate, carried so worker-side spans are labeled like driver-side
	// ones. Both travel on the wire via the custom codec but are invisible
	// to the arithmetic, so traced and untraced runs are byte-identical.
	traceSpan                 uint64
	cuboidP, cuboidQ, cuboidR int
}

// MultiplyReply returns the cuboid's partial C blocks.
type MultiplyReply struct {
	CBlocks []BlockRec
}

// PingArgs and PingReply implement the liveness probe.
type PingArgs struct{}

// PingReply reports the worker's identity.
type PingReply struct {
	Hostname string
}

// serviceName is the registered net/rpc service.
const serviceName = "DistME"

// ServiceName is the registered net/rpc service name, exported so tests and
// tools can stand up protocol-compatible stand-in workers.
const ServiceName = serviceName
