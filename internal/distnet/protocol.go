// Package distnet is the over-the-wire execution path: a driver that runs
// CuboidMM's local-multiplication step on remote worker processes over TCP
// (net/rpc with a custom binary codec), really serializing blocks onto
// sockets. The in-process cluster substrate simulates Spark's accounting;
// this package complements it with genuinely distributed execution — same
// cuboid plans, same results, measured wire bytes — so the repartition/
// aggregation costs the paper reasons about correspond to observable
// network traffic.
package distnet

import (
	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/matrix"
)

// BlockRec is one keyed block on the wire.
type BlockRec struct {
	Key   bmat.BlockKey
	Block matrix.Block

	// digest, when set by the driver, is the content address of Block; the
	// client codec uses it to replace repeat sends to the same worker with
	// a 32-byte reference (nil means "always ship inline").
	digest *codec.Digest
}

// MultiplyArgs ships one cuboid to a worker: the voxel box plus the A- and
// B-side blocks it needs. Indices are global block coordinates so the reply
// keys line up with the driver's output grid.
type MultiplyArgs struct {
	ILo, IHi, JLo, JHi, KLo, KHi int
	ABlocks                      []BlockRec // A_{i,k} for the box
	BBlocks                      []BlockRec // B_{k,j} for the box

	// cacheEpoch scopes this cuboid's digest references to one driver job;
	// the worker's block cache retires older epochs when a new one arrives.
	cacheEpoch uint64

	// traceSpan is the driver-side span the worker parents its compute span
	// to (0 when tracing is off); cuboidP/Q/R are the cuboid's grid
	// coordinate, carried so worker-side spans are labeled like driver-side
	// ones. Both travel on the wire via the custom codec but are invisible
	// to the arithmetic, so traced and untraced runs are byte-identical.
	traceSpan                 uint64
	cuboidP, cuboidQ, cuboidR int

	// encoding steers the driver codec's encoder for this cuboid's block
	// payloads (Options.Encoding). It never travels on the wire: the worker
	// decodes whatever tags arrive, so mixed-encoding traffic is fine.
	encoding codec.Encoding

	// decodeErr is set worker-side by the lenient batch decode when this
	// item's blocks could not be resolved (unknown digest); the worker
	// reports it in the item's reply slot instead of computing.
	decodeErr string

	// meter, when set, receives per-job traffic attribution for this
	// cuboid (WithJobMeter). Driver-side only; never on the wire.
	meter *JobMeter

	// pull switches this cuboid to the one-sided data plane: ABlocks and
	// BBlocks stay off the wire, and the worker resolves the placement
	// manifests instead — cache dedup first, then coalesced fetches from
	// the peer owners (entries whose owner equals pullSelf, the assigned
	// worker's own address, read the local store). A failed resolution is
	// a transient error the driver answers by re-pushing inline — the
	// driver stays the last-resort data source.
	pull                 bool
	aManifest, bManifest *codec.Manifest
	pullSelf             string

	// pullInline marks a pull cuboid whose retained ABlocks/BBlocks are a
	// complete inline copy of both operand slices (both handles kept their
	// Put source driver-side). Only such cuboids may downgrade to an inline
	// push retry or run the local fallback — a partial inline set would
	// silently compute against missing blocks. Driver-side only.
	pullInline bool
}

// MultiplyReply returns the cuboid's partial C blocks.
type MultiplyReply struct {
	CBlocks []BlockRec

	// Pull-resolution accounting, folded into the driver's NetStats:
	// manifest entries satisfied by the content-addressed cache, peer
	// fetches issued, and peer bytes moved. Zero on push replies.
	pullHits, pullFetches, pullPeerBytes int64
}

// MultiplyBatchArgs ships many small cuboids in one RPC. The driver
// coalesces cuboids whose encoded payloads fall under Options.BatchBytes so
// a many-tiny-cuboids plan pays one round trip per group instead of one per
// cuboid. Items decode leniently on the worker: an unknown digest marks
// only its own item failed (BatchItem.Err) rather than refusing the frame.
type MultiplyBatchArgs struct {
	Items []MultiplyArgs

	// traceSpan parents the codec's wire.send/wire.recv spans for the batch
	// call; driver-side only, never on the wire (items carry their own).
	traceSpan uint64
}

// BatchItem is one cuboid's slot in a batch reply: either its partial C
// blocks or the application-level error that item alone hit.
type BatchItem struct {
	Err     string
	CBlocks []BlockRec
}

// MultiplyBatchReply mirrors MultiplyBatchArgs item-for-item, so the driver
// can commit the successes and retry exactly the failures.
type MultiplyBatchReply struct {
	Items []BatchItem
}

// PingArgs and PingReply implement the liveness probe.
type PingArgs struct{}

// PingReply reports the worker's identity plus a load snapshot the driver's
// health plane folds into the per-worker score: RPCs currently executing,
// and the handle store's occupancy/eviction pressure.
type PingReply struct {
	Hostname string

	// InFlight is the number of RPCs the worker is executing right now.
	InFlight int64
	// StoreBytes/StoreHandles are the handle store's current occupancy;
	// StoreEvictions is its lifetime eviction count (monotonic, so the
	// driver can window deltas).
	StoreBytes     int64
	StoreHandles   int64
	StoreEvictions int64
}

// serviceName is the registered net/rpc service.
const serviceName = "DistME"

// ServiceName is the registered net/rpc service name, exported so tests and
// tools can stand up protocol-compatible stand-in workers.
const ServiceName = serviceName
