// Package distnet is the over-the-wire execution path: a driver that runs
// CuboidMM's local-multiplication step on remote worker processes over TCP
// (net/rpc + gob), really serializing blocks onto sockets. The in-process
// cluster substrate simulates Spark's accounting; this package complements
// it with genuinely distributed execution — same cuboid plans, same
// results, measured wire bytes — so the repartition/aggregation costs the
// paper reasons about correspond to observable network traffic.
package distnet

import (
	"encoding/gob"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

func init() {
	// The RPC payloads carry matrix.Block interface values; gob needs the
	// concrete types registered once.
	gob.Register(&matrix.Dense{})
	gob.Register(&matrix.CSR{})
	gob.Register(&matrix.CSC{})
}

// BlockRec is one keyed block on the wire.
type BlockRec struct {
	Key   bmat.BlockKey
	Block matrix.Block
}

// MultiplyArgs ships one cuboid to a worker: the voxel box plus the A- and
// B-side blocks it needs. Indices are global block coordinates so the reply
// keys line up with the driver's output grid.
type MultiplyArgs struct {
	ILo, IHi, JLo, JHi, KLo, KHi int
	ABlocks                      []BlockRec // A_{i,k} for the box
	BBlocks                      []BlockRec // B_{k,j} for the box
}

// MultiplyReply returns the cuboid's partial C blocks.
type MultiplyReply struct {
	CBlocks []BlockRec
}

// PingArgs and PingReply implement the liveness probe.
type PingArgs struct{}

// PingReply reports the worker's identity.
type PingReply struct {
	Hostname string
}

// serviceName is the registered net/rpc service.
const serviceName = "DistME"

// ServiceName is the registered net/rpc service name, exported so tests and
// tools can stand up protocol-compatible stand-in workers.
const ServiceName = serviceName
