package distnet

import (
	"net/rpc"
	"sync"
	"time"
)

// The heartbeat failure detector: a background sweep that Pings every
// member on a fixed interval, drives the Alive → Suspect → Dead state
// machine on missed beats, and redials Dead members so recovered workers
// rejoin on their own — MapReduce's "the master pings every worker
// periodically" (Dean & Ghemawat 2004) adapted to a dialing driver.

// rpcCall performs one RPC on a raw client with a deadline. On timeout the
// pending call is abandoned (net/rpc cannot cancel it); the caller must
// treat the connection as wedged and close it before reusing the member.
func rpcCall(client *rpc.Client, method string, args, reply any, timeout time.Duration) error {
	call := client.Go(serviceName+"."+method, args, reply, make(chan *rpc.Call, 1))
	if timeout <= 0 {
		<-call.Done
		return call.Error
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-call.Done:
		return call.Error
	case <-timer.C:
		return ErrDeadlineExceeded
	}
}

// runDetector is the detector goroutine body; it exits when the driver
// closes.
func (d *Driver) runDetector() {
	defer close(d.detectorDone)
	ticker := time.NewTicker(d.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stopDetector:
			return
		case <-ticker.C:
			d.sweep()
		}
	}
}

// sweep probes every member once, concurrently, so one slow worker cannot
// delay the others' verdicts.
func (d *Driver) sweep() {
	d.mu.Lock()
	members := append([]*member(nil), d.members...)
	d.mu.Unlock()
	var wg sync.WaitGroup
	for _, m := range members {
		state, client := m.snapshot()
		switch {
		case state == StateRemoved:
			continue
		case client == nil:
			// Dead (or never-connected): attempt a reconnect so a worker
			// that came back rejoins the live set.
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				_ = d.connect(m, true)
			}(m)
		default:
			wg.Add(1)
			go func(m *member, client *rpc.Client) {
				defer wg.Done()
				d.probe(m, client)
			}(m, client)
		}
	}
	wg.Wait()
}

// probe sends one heartbeat and applies the state machine.
func (d *Driver) probe(m *member, client *rpc.Client) {
	d.rec.AddHeartbeat()
	start := time.Now()
	var pong PingReply
	err := rpcCall(client, "Ping", &PingArgs{}, &pong, d.opts.PingTimeout)
	if err == nil {
		rtt := time.Since(start)
		m.markAlive(rtt)
		m.noteLoad(&pong)
		d.rec.ObserveHeartbeatRTT(rtt)
		return
	}
	// A draining worker refuses the probe with its sentinel; flag it so the
	// scheduler stops offering it work while the missed-beat thresholds
	// retire it from the live set.
	if isDrainingError(err) {
		m.draining.Store(true)
	}
	d.rec.AddHeartbeatMiss()
	if dead, detached := m.noteMissed(d.opts.SuspectAfter, d.opts.DeadAfter); dead {
		if detached != nil {
			detached.Close()
		}
		d.rec.AddWorkerDeclaredDead()
	}
}
