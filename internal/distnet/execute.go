package distnet

import (
	"context"
	"fmt"

	"distme/internal/bmat"
	"distme/internal/core"
)

// MultiplyOptions configures one Execute call. The zero value asks the
// optimizer to choose the partitioning with a 1 GiB per-worker budget.
type MultiplyOptions struct {
	// Params, when non-nil, fixes the (P,Q,R) cuboid partitioning
	// explicitly; nil lets the optimizer choose from WorkerMemBytes, the
	// live worker count, and the wire encoding's Eq.(4) byte ratios.
	Params *core.Params
	// WorkerMemBytes is the per-worker memory budget handed to the
	// optimizer when Params is nil (0 takes 1 GiB).
	WorkerMemBytes int64
	// CheckpointDir, when non-empty, persists each completed cuboid's
	// partial-C reply under this directory; re-running the same job there
	// after a driver crash re-ships only the unfinished cuboids.
	CheckpointDir string
}

// Execute is the driver's consolidated multiply entry point: C = A×B across
// the live workers, context-first, with partitioning, optimizer budget, and
// checkpointing all in one options struct. It subsumes the former Multiply
// (MultiplyOptions.Params), MultiplyAuto (MultiplyOptions.WorkerMemBytes),
// and ResumeMultiply (MultiplyOptions.CheckpointDir), which remain as thin
// deprecated wrappers. The returned params are the partitioning actually
// run. Cancelling ctx abandons unscheduled cuboids and returns its error.
func (d *Driver) Execute(ctx context.Context, a, b *bmat.BlockMatrix, opts MultiplyOptions) (*bmat.BlockMatrix, core.Params, error) {
	var params core.Params
	if opts.Params != nil {
		params = *opts.Params
	} else {
		slots := d.Workers()
		if slots < 1 {
			slots = 1
		}
		mem := opts.WorkerMemBytes
		if mem <= 0 {
			mem = 1 << 30
		}
		wc := core.WireCost{InputRatio: d.opts.Encoding.PlanRatio(), AggRatio: 1}
		p, err := core.OptimizeWire(core.ShapeOf(a, b), mem, slots, wc)
		if err != nil {
			return nil, core.Params{}, err
		}
		params = p
	}
	var ckpt *checkpointer
	if opts.CheckpointDir != "" {
		ckpt = &checkpointer{dir: opts.CheckpointDir}
	}
	c, err := d.multiply(ctx, a, b, params, ckpt)
	return c, params, err
}

// Multiply runs C = A×B with an explicit (P,Q,R)-cuboid partitioning.
//
// Deprecated: Use Execute with MultiplyOptions.Params.
func (d *Driver) Multiply(a, b *bmat.BlockMatrix, params core.Params) (*bmat.BlockMatrix, error) {
	c, _, err := d.Execute(context.Background(), a, b, MultiplyOptions{Params: &params})
	return c, err
}

// MultiplyAuto optimizes (P,Q,R) for the given per-worker memory budget,
// then multiplies.
//
// Deprecated: Use Execute with MultiplyOptions.WorkerMemBytes.
func (d *Driver) MultiplyAuto(a, b *bmat.BlockMatrix, workerMemBytes int64) (*bmat.BlockMatrix, core.Params, error) {
	return d.Execute(context.Background(), a, b, MultiplyOptions{WorkerMemBytes: workerMemBytes})
}

// ResumeMultiply is Multiply with per-cuboid checkpointing rooted at dir.
//
// Deprecated: Use Execute with MultiplyOptions.CheckpointDir.
func (d *Driver) ResumeMultiply(dir string, a, b *bmat.BlockMatrix, params core.Params) (*bmat.BlockMatrix, error) {
	if dir == "" {
		return nil, fmt.Errorf("distnet: ResumeMultiply: empty checkpoint dir")
	}
	c, _, err := d.Execute(context.Background(), a, b, MultiplyOptions{Params: &params, CheckpointDir: dir})
	return c, err
}
