package distnet

import (
	"context"
	"fmt"

	"distme/internal/bmat"
	"distme/internal/core"
)

// MultiplyOptions configures one Execute call. The zero value asks the
// optimizer to choose the partitioning with a 1 GiB per-worker budget.
type MultiplyOptions struct {
	// Params, when non-nil, fixes the (P,Q,R) cuboid partitioning
	// explicitly; nil lets the optimizer choose from WorkerMemBytes, the
	// live worker count, and the wire encoding's Eq.(4) byte ratios.
	Params *core.Params
	// WorkerMemBytes is the per-worker memory budget handed to the
	// optimizer when Params is nil (0 takes 1 GiB).
	WorkerMemBytes int64
	// CheckpointDir, when non-empty, persists each completed cuboid's
	// partial-C reply under this directory; re-running the same job there
	// after a driver crash re-ships only the unfinished cuboids.
	CheckpointDir string
	// Transfer selects the operand data plane. TransferPush is the classic
	// mode: the driver ships every cuboid slice. TransferPull seeds each
	// operand once into a block-store session and ships only placement
	// manifests; workers fetch the replicated slices from the owning peers,
	// so the driver moves |A|+|B| instead of Q·|A|+P·|B|. TransferAuto (the
	// zero value) prices both with Eq.(4) when the optimizer chooses the
	// partitioning, and keeps push for explicit Params — the established
	// behavior. Pull requires CheckpointDir to be empty (cuboid checkpoints
	// ride the push path) and is ignored when only one worker is live.
	// Results are bit-identical across modes.
	Transfer core.Transfer
}

// Execute is the driver's consolidated multiply entry point: C = A×B across
// the live workers, context-first, with partitioning, optimizer budget, and
// checkpointing all in one options struct. It subsumes the former Multiply
// (MultiplyOptions.Params), MultiplyAuto (MultiplyOptions.WorkerMemBytes),
// and ResumeMultiply (MultiplyOptions.CheckpointDir), which remain as thin
// deprecated wrappers. The returned params are the partitioning actually
// run. Cancelling ctx abandons unscheduled cuboids and returns its error.
func (d *Driver) Execute(ctx context.Context, a, b *bmat.BlockMatrix, opts MultiplyOptions) (*bmat.BlockMatrix, core.Params, error) {
	if !opts.Transfer.Valid() {
		return nil, core.Params{}, fmt.Errorf("distnet: unknown transfer mode %d", opts.Transfer)
	}
	mode := opts.Transfer
	if opts.CheckpointDir != "" {
		if mode == core.TransferPull {
			return nil, core.Params{}, fmt.Errorf("distnet: pull transfer does not checkpoint")
		}
		mode = core.TransferPush
	}
	var params core.Params
	if opts.Params != nil {
		params = *opts.Params
		if mode == core.TransferAuto {
			// Explicit partitioning keeps the established push plane unless
			// pull was asked for by name.
			mode = core.TransferPush
		}
	} else {
		slots := d.Workers()
		if slots < 1 {
			slots = 1
		}
		mem := opts.WorkerMemBytes
		if mem <= 0 {
			mem = 1 << 30
		}
		wc := core.WireCost{InputRatio: d.opts.Encoding.PlanRatio(), AggRatio: 1}
		pc := core.PullCost{Workers: slots} // cold operands: the seed is paid
		var err error
		switch mode {
		case core.TransferPush:
			params, err = core.OptimizeWire(core.ShapeOf(a, b), mem, slots, wc)
		case core.TransferPull:
			params, err = core.OptimizePull(core.ShapeOf(a, b), mem, slots, wc, pc)
		default:
			params, mode, err = core.OptimizeTransfer(core.ShapeOf(a, b), mem, slots, wc, pc)
		}
		if err != nil {
			return nil, core.Params{}, err
		}
	}
	if mode == core.TransferPull && d.Workers() > 1 {
		c, err := d.executePull(ctx, a, b, params)
		return c, params, err
	}
	var ckpt *checkpointer
	if opts.CheckpointDir != "" {
		ckpt = &checkpointer{dir: opts.CheckpointDir}
	}
	c, err := d.multiply(ctx, a, b, params, ckpt)
	return c, params, err
}

// executePull runs one cold-operand pull multiply: seed each operand once
// into a throwaway block-store session (the driver's one-copy |A|+|B|
// contribution), then manifest-multiply over the resident handles, then
// retire the session. Failures inside fall back per cuboid — a worker that
// cannot resolve its manifest is re-pushed inline by runJob.
func (d *Driver) executePull(ctx context.Context, a, b *bmat.BlockMatrix, params core.Params) (*bmat.BlockMatrix, error) {
	s, err := d.NewSession(ctx)
	if err != nil {
		return nil, err
	}
	defer func() { _ = s.Close(ctx) }()
	ha, err := s.Put(ctx, a)
	if err != nil {
		return nil, err
	}
	hb, err := s.Put(ctx, b)
	if err != nil {
		return nil, err
	}
	c, _, err := s.Multiply(ctx, ha, hb, MultiplyOptions{Params: &params, Transfer: core.TransferPull})
	return c, err
}

// Multiply runs C = A×B with an explicit (P,Q,R)-cuboid partitioning.
//
// Deprecated: Use [Driver.Execute] with MultiplyOptions.Params for one-shot
// operands, or [Session.Multiply] when the operands are resident handles.
func (d *Driver) Multiply(a, b *bmat.BlockMatrix, params core.Params) (*bmat.BlockMatrix, error) {
	c, _, err := d.Execute(context.Background(), a, b, MultiplyOptions{Params: &params})
	return c, err
}

// MultiplyAuto optimizes (P,Q,R) for the given per-worker memory budget,
// then multiplies.
//
// Deprecated: Use [Driver.Execute] with MultiplyOptions.WorkerMemBytes for
// one-shot operands, or [Session.Multiply] when the operands are resident
// handles.
func (d *Driver) MultiplyAuto(a, b *bmat.BlockMatrix, workerMemBytes int64) (*bmat.BlockMatrix, core.Params, error) {
	return d.Execute(context.Background(), a, b, MultiplyOptions{WorkerMemBytes: workerMemBytes})
}

// ResumeMultiply is Multiply with per-cuboid checkpointing rooted at dir.
//
// Deprecated: Use [Driver.Execute] with MultiplyOptions.CheckpointDir.
func (d *Driver) ResumeMultiply(dir string, a, b *bmat.BlockMatrix, params core.Params) (*bmat.BlockMatrix, error) {
	if dir == "" {
		return nil, fmt.Errorf("distnet: ResumeMultiply: empty checkpoint dir")
	}
	c, _, err := d.Execute(context.Background(), a, b, MultiplyOptions{Params: &params, CheckpointDir: dir})
	return c, err
}
