package distnet

import (
	"bufio"
	"bytes"
	"math/rand"
	"net/rpc"
	"sync"
	"testing"
	"testing/iotest"

	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/core"
	"distme/internal/matrix"
)

// ---------------------------------------------------------------------------
// Opt-in block encodings over a real socket

// TestEncodingCompressBitIdentical: the compressed encoding is lossless, so
// a compressed run must produce the float64-bit-identical product of the
// default fp64 run — it only changes bytes on the wire.
func TestEncodingCompressBitIdentical(t *testing.T) {
	a, b := cacheTestMatrices(8101)
	params := core.Params{P: 2, Q: 2, R: 2}

	plainAddr, _ := startCacheWorker(t, 0)
	plain, err := DialOptions([]string{plainAddr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	want, err := plain.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}

	encAddr, _ := startCacheWorker(t, 0)
	opts := fastOpts()
	opts.Encoding = codec.EncodingCompress
	enc, err := DialOptions([]string{encAddr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Close()
	got, err := enc.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)
	if stats := enc.NetStats(); stats.EncodedBlocks == 0 {
		t.Fatalf("no encoded blocks counted: %+v", stats)
	}
}

// TestEncodingFP32OverTheWire: fp32 projects only the input payloads — the
// workers then compute in fp64 and return bit-exact partials — so the
// product equals the local product of the fp32-projected inputs to the
// usual local-vs-remote tolerance, and the wire saved real bytes.
func TestEncodingFP32OverTheWire(t *testing.T) {
	a, b := cacheTestMatrices(8102)
	params := core.Params{P: 2, Q: 2, R: 2}

	addr, _ := startCacheWorker(t, 0)
	opts := fastOpts()
	opts.Encoding = codec.EncodingFP32
	d, err := DialOptions([]string{addr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err := d.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}

	proj := func(m *bmat.BlockMatrix) *matrix.Dense {
		d := m.ToDense()
		for i := range d.Data {
			d.Data[i] = float64(float32(d.Data[i]))
		}
		return d
	}
	want := matrix.Mul(proj(a), proj(b)).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("fp32 product differs from fp64 compute on fp32-projected inputs")
	}
	stats := d.NetStats()
	if stats.EncodedBlocks == 0 || stats.EncodedBytesSaved == 0 {
		t.Fatalf("fp32 saved nothing: %+v", stats)
	}
}

// TestEncodingInvalidRejected: an unknown encoding is a dial-time error,
// not a silent fallback to lossy or lossless behavior the caller did not
// pick.
func TestEncodingInvalidRejected(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	opts := fastOpts()
	opts.Encoding = codec.Encoding(99)
	if _, err := DialOptions(addrs, opts); err == nil {
		t.Fatal("unknown encoding accepted")
	}
}

// ---------------------------------------------------------------------------
// Batched small-multiply fast path

// TestBatchedSmallMultiplies: with BatchBytes set above every cuboid's
// payload, the whole plan rides MultiplyBatch RPCs and the product is
// bit-identical to the unbatched run.
func TestBatchedSmallMultiplies(t *testing.T) {
	a, b := cacheTestMatrices(8103)
	params := core.Params{P: 2, Q: 2, R: 2} // 8 small cuboids

	plainAddr, _ := startCacheWorker(t, 0)
	plain, err := DialOptions([]string{plainAddr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	want, err := plain.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}

	addr, w := startCacheWorker(t, 0)
	opts := fastOpts()
	opts.BatchBytes = 1 << 20
	opts.MaxBatchItems = 3 // force several groups out of the 8 cuboids
	d, err := DialOptions([]string{addr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err := d.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)

	stats := d.NetStats()
	if stats.BatchRPCs != 3 {
		t.Errorf("BatchRPCs = %d, want 3 (8 items / cap 3)", stats.BatchRPCs)
	}
	if stats.BatchItems != 8 {
		t.Errorf("BatchItems = %d, want 8", stats.BatchItems)
	}
	if stats.BatchItemErrors != 0 {
		t.Errorf("BatchItemErrors = %d, want 0", stats.BatchItemErrors)
	}
	if w.Multiplies() != 8 {
		t.Errorf("worker served %d cuboids, want 8", w.Multiplies())
	}
}

// TestBatchItemErrorsRetryIndividually: a worker with its cache disabled
// answers every digest reference with an unknown-digest item error. The
// failures must stay per-item — counted, forgotten, and retried inline —
// and the product must still be correct.
func TestBatchItemErrorsRetryIndividually(t *testing.T) {
	a, b := cacheTestMatrices(8104)
	params := core.Params{P: 2, Q: 2, R: 2}

	addr, _ := startCacheWorker(t, -1) // cache disabled: references always miss
	opts := fastOpts()
	opts.BatchBytes = 1 << 20
	d, err := DialOptions([]string{addr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// First run ships every block inline (commit-at-send) and succeeds.
	if _, err := d.Multiply(a, b, params); err != nil {
		t.Fatal(err)
	}
	// Second run sends references the worker cannot resolve; items fail
	// individually and the per-item fallback recovers each one.
	got, err := d.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("product wrong after per-item retries")
	}
	stats := d.NetStats()
	if stats.BatchItemErrors == 0 {
		t.Fatalf("cache-miss items not counted: %+v", stats)
	}
	if stats.CacheRefMisses == 0 {
		t.Fatalf("unknown-digest misses not counted: %+v", stats)
	}
}

// ---------------------------------------------------------------------------
// Fragmented reads (satellite: robustness against dribbling sockets)

// bufConn is an in-memory io.ReadWriteCloser the codecs can write frames
// into.
type bufConn struct{ bytes.Buffer }

func (b *bufConn) Close() error { return nil }

// encodeRequestFrame serializes one Multiply request exactly as the driver
// does — including a payload large enough to take the scatter-gather
// (writev) path — and returns the raw frame bytes.
func encodeRequestFrame(t *testing.T) ([]byte, *MultiplyArgs) {
	t.Helper()
	rng := rand.New(rand.NewSource(8105))
	aBlk := matrix.NewDense(32, 32) // 8 KiB of values: above minZeroCopyTail
	bBlk := matrix.NewDense(32, 32)
	for i := range aBlk.Data {
		aBlk.Data[i] = rng.NormFloat64()
		bBlk.Data[i] = rng.NormFloat64()
	}
	args := &MultiplyArgs{
		IHi: 1, JHi: 1, KHi: 1,
		ABlocks: []BlockRec{{Key: bmat.BlockKey{I: 0, J: 0}, Block: aBlk}},
		BBlocks: []BlockRec{{Key: bmat.BlockKey{I: 0, J: 0}, Block: bBlk}},
	}
	conn := &bufConn{}
	cc := newClientCodec(conn, nil, nil, nil)
	if err := cc.WriteRequest(&rpc.Request{Seq: 7, ServiceMethod: serviceName + ".Multiply"}, args); err != nil {
		t.Fatal(err)
	}
	return conn.Bytes(), args
}

// TestFragmentedFrameReads drives a whole request frame through a
// one-byte-at-a-time reader: the decode must be identical to the contiguous
// read, and truncation at every single byte offset must fail cleanly.
func TestFragmentedFrameReads(t *testing.T) {
	full, args := encodeRequestFrame(t)

	whole, err := readFrame(bufio.NewReader(bytes.NewReader(full)))
	if err != nil {
		t.Fatal(err)
	}
	defer codec.PutBuffer(whole)
	dribbled, err := readFrame(bufio.NewReaderSize(iotest.OneByteReader(bytes.NewReader(full)), 16))
	if err != nil {
		t.Fatalf("one-byte-at-a-time read failed: %v", err)
	}
	defer codec.PutBuffer(dribbled)
	if !bytes.Equal(whole, dribbled) {
		t.Fatal("fragmented read produced different frame bytes")
	}

	// The frame decodes to the request we encoded.
	rd := wireReader{buf: dribbled}
	seq, err := rd.uvarint()
	if err != nil {
		t.Fatal(err)
	}
	method, err := rd.str()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || method != serviceName+".Multiply" {
		t.Fatalf("header (%d, %q)", seq, method)
	}
	body := dribbled[rd.off:]
	brd := wireReader{buf: body}
	var dec MultiplyArgs
	if err := decodeMultiplyArgs(&brd, &dec, newBlockCache(-1, 0), false); err != nil {
		t.Fatal(err)
	}
	if brd.off != len(body) {
		t.Fatalf("decode left %d trailing bytes", len(body)-brd.off)
	}
	if dec.IHi != 1 || len(dec.ABlocks) != 1 || len(dec.BBlocks) != 1 {
		t.Fatalf("decoded args %+v", dec)
	}
	assertBlockBits(t, args.ABlocks[0].Block, dec.ABlocks[0].Block)
	assertBlockBits(t, args.BBlocks[0].Block, dec.BBlocks[0].Block)

	// Truncating the stream at any offset is a clean error, never a panic
	// or a bogus success.
	for cut := 0; cut < len(full); cut++ {
		buf, err := readFrame(bufio.NewReaderSize(iotest.OneByteReader(bytes.NewReader(full[:cut])), 16))
		if err == nil {
			codec.PutBuffer(buf)
			t.Fatalf("truncation at %d/%d bytes read a frame", cut, len(full))
		}
	}
	// And truncating the decoded body at any offset fails the typed parse.
	for cut := 0; cut < len(body); cut++ {
		var a MultiplyArgs
		trd := wireReader{buf: body[:cut]}
		if err := decodeMultiplyArgs(&trd, &a, newBlockCache(-1, 0), false); err == nil {
			t.Fatalf("body truncated at %d/%d bytes decoded", cut, len(body))
		}
	}
}

func assertBlockBits(t *testing.T, want, got matrix.Block) {
	t.Helper()
	w, g := want.Dense(), got.Dense()
	wr, wc := w.Dims()
	gr, gc := g.Dims()
	if wr != gr || wc != gc {
		t.Fatalf("dims %dx%d != %dx%d", gr, gc, wr, wc)
	}
	for i := range w.Data {
		if w.Data[i] != g.Data[i] {
			t.Fatalf("value %d differs: %v != %v", i, g.Data[i], w.Data[i])
		}
	}
}

// ---------------------------------------------------------------------------
// sendTracker under concurrency (satellite: race coverage)

// TestSendTrackerConcurrentEpochs hammers seen/forget from many goroutines
// across epoch bumps — run under -race this pins the tracker's locking —
// then checks the sequential semantics still hold.
func TestSendTrackerConcurrentEpochs(t *testing.T) {
	tr := &sendTracker{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(8106 + g)))
			var dg codec.Digest
			for i := 0; i < 3000; i++ {
				rng.Read(dg[:8]) // small space: plenty of cross-goroutine hits
				tr.seen(uint64(i/200), dg)
				if i%311 == 0 {
					tr.forget()
				}
			}
		}(g)
	}
	wg.Wait()

	var dg codec.Digest
	dg[0] = 0xAB
	tr.forget()
	base := tr.epoch + 1
	if tr.seen(base, dg) {
		t.Fatal("fresh digest reported as already sent")
	}
	if !tr.seen(base, dg) {
		t.Fatal("repeat digest not deduplicated")
	}
	// Dedup persists across epochs inside the lifecycle window — that is
	// what lets concurrent jobs share tracker state...
	if !tr.seen(base+1, dg) {
		t.Fatal("epoch bump inside the window dropped the sent set")
	}
	// ...and ages out beyond it, mirroring the worker cache's expiry. The
	// repeat at base+1 refreshed the entry to the then-newest epoch, so
	// jumping a full window past that must expire it.
	var other codec.Digest
	other[0] = 0xCD
	if tr.seen(base+1+DefaultCacheEpochWindow+1, other) {
		t.Fatal("fresh digest reported as already sent after window jump")
	}
	if tr.seen(base+1+DefaultCacheEpochWindow+1, dg) {
		t.Fatal("entry outside the epoch window was not aged out")
	}
	tr.forget()
	if tr.seen(base+1+DefaultCacheEpochWindow+1, dg) {
		t.Fatal("forget did not clear the sent set")
	}
}
