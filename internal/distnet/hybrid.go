package distnet

import (
	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/engine"
	"distme/internal/ml"
)

// Hybrid runs multiplications on remote workers and everything else
// (transpose, element-wise) on a local engine — the driver/executor split
// of a real deployment, where only the heavy products leave the driver.
// It satisfies ml.Ops, so the whole GNMF query (or PageRank) can run with
// its multiplications crossing real sockets.
type Hybrid struct {
	// Driver executes multiplications remotely.
	Driver *Driver
	// Engine executes the remaining operators locally.
	Engine *engine.Engine
	// WorkerMemBytes is the per-worker budget handed to the optimizer.
	WorkerMemBytes int64
}

// NewHybrid wires a driver and a local engine together.
func NewHybrid(d *Driver, e *engine.Engine, workerMemBytes int64) *Hybrid {
	if workerMemBytes <= 0 {
		workerMemBytes = 1 << 30
	}
	return &Hybrid{Driver: d, Engine: e, WorkerMemBytes: workerMemBytes}
}

// Multiply optimizes (P,Q,R) for the worker pool and multiplies remotely.
func (h *Hybrid) Multiply(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	params, err := core.Optimize(core.ShapeOf(a, b), h.WorkerMemBytes, h.Driver.Workers())
	if err != nil {
		return nil, err
	}
	return h.Driver.Multiply(a, b, params)
}

// Transpose runs locally.
func (h *Hybrid) Transpose(a *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return h.Engine.Transpose(a)
}

// Hadamard runs locally.
func (h *Hybrid) Hadamard(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return h.Engine.Hadamard(a, b)
}

// DivElem runs locally.
func (h *Hybrid) DivElem(a, b *bmat.BlockMatrix, eps float64) (*bmat.BlockMatrix, error) {
	return h.Engine.DivElem(a, b, eps)
}

var _ ml.Ops = (*Hybrid)(nil)

// Add runs locally.
func (h *Hybrid) Add(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return h.Engine.Add(a, b)
}

// Sub runs locally.
func (h *Hybrid) Sub(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return h.Engine.Sub(a, b)
}

// Scale runs locally.
func (h *Hybrid) Scale(s float64, a *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return h.Engine.Scale(s, a)
}
