package distnet

import (
	"context"
	"errors"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/engine"
	"distme/internal/ml"
)

// Hybrid runs multiplications on remote workers and everything else
// (transpose, element-wise) on a local engine — the driver/executor split
// of a real deployment, where only the heavy products leave the driver.
// It satisfies ml.Ops, so the whole GNMF query (or PageRank) can run with
// its multiplications crossing real sockets. When the worker pool dies out
// from under it, Multiply degrades to the local engine instead of failing.
type Hybrid struct {
	// Driver executes multiplications remotely.
	Driver *Driver
	// Engine executes the remaining operators locally.
	Engine *engine.Engine
	// WorkerMemBytes is the per-worker budget handed to the optimizer.
	WorkerMemBytes int64
	// DisableLocalFallback propagates remote failures (ErrWorkerDead,
	// ErrNoWorkers, ErrDeadlineExceeded) instead of degrading to the local
	// engine.
	DisableLocalFallback bool

	// slots pins the optimizer's slot count to the membership at
	// construction time: mid-query churn then changes scheduling but never
	// the (P,Q,R) plan, which keeps iterative queries (GNMF) byte-identical
	// under any failure schedule.
	slots int
}

// NewHybrid wires a driver and a local engine together.
func NewHybrid(d *Driver, e *engine.Engine, workerMemBytes int64) *Hybrid {
	if workerMemBytes <= 0 {
		workerMemBytes = 1 << 30
	}
	slots := d.Workers()
	if slots < 1 {
		slots = 1
	}
	return &Hybrid{Driver: d, Engine: e, WorkerMemBytes: workerMemBytes, slots: slots}
}

// Multiply optimizes (P,Q,R) for the worker pool and multiplies remotely.
// If the pool has drained (every worker dead or removed), the product is
// computed on the local engine instead — the last rung of graceful
// degradation below the driver's own per-cuboid local fallback.
func (h *Hybrid) Multiply(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	params, err := core.Optimize(core.ShapeOf(a, b), h.WorkerMemBytes, h.slots)
	if err != nil {
		return nil, err
	}
	c, _, err := h.Driver.Execute(context.Background(), a, b, MultiplyOptions{Params: &params})
	if err != nil && !h.DisableLocalFallback &&
		(errors.Is(err, ErrWorkerDead) || errors.Is(err, ErrNoWorkers) ||
			errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrDriverClosed)) {
		return h.Engine.Multiply(a, b)
	}
	return c, err
}

// Transpose runs locally.
func (h *Hybrid) Transpose(a *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return h.Engine.Transpose(a)
}

// Hadamard runs locally.
func (h *Hybrid) Hadamard(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return h.Engine.Hadamard(a, b)
}

// DivElem runs locally.
func (h *Hybrid) DivElem(a, b *bmat.BlockMatrix, eps float64) (*bmat.BlockMatrix, error) {
	return h.Engine.DivElem(a, b, eps)
}

var _ ml.Ops = (*Hybrid)(nil)

// Add runs locally.
func (h *Hybrid) Add(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return h.Engine.Add(a, b)
}

// Sub runs locally.
func (h *Hybrid) Sub(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return h.Engine.Sub(a, b)
}

// Scale runs locally.
func (h *Hybrid) Scale(s float64, a *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return h.Engine.Scale(s, a)
}
