package distnet

import (
	"fmt"
	"os"
	"path/filepath"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/storage"
)

// Per-cuboid checkpointing: each completed cuboid's partial-C reply is
// persisted through internal/storage (chunked, CRC-checked) under its
// cuboid index, so a driver that crashes and restarts re-ships and
// recomputes only the unfinished cuboids. A manifest binds the directory to
// one job geometry; a corrupt or truncated checkpoint file (the crash may
// have interrupted a write) fails storage's checksums and is simply
// recomputed.

// checkpointManifest is the directory's job fingerprint.
const checkpointManifest = "manifest"

type checkpointer struct {
	dir string
}

func (c *checkpointer) manifestLine(a, b *bmat.BlockMatrix, params core.Params, jobs int) string {
	return fmt.Sprintf("DMECKPT1 a=%dx%d b=%dx%d bs=%d p=%d q=%d r=%d jobs=%d\n",
		a.Rows, a.Cols, b.Rows, b.Cols, a.BlockSize, params.P, params.Q, params.R, jobs)
}

// ensureManifest creates the checkpoint directory and manifest on first
// use, and on resume verifies the directory belongs to this job.
func (c *checkpointer) ensureManifest(a, b *bmat.BlockMatrix, params core.Params, jobs int) error {
	want := c.manifestLine(a, b, params, jobs)
	path := filepath.Join(c.dir, checkpointManifest)
	if data, err := os.ReadFile(path); err == nil {
		if string(data) != want {
			return fmt.Errorf("distnet: checkpoint dir %s holds a different job (%q)", c.dir, string(data))
		}
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("distnet: checkpoint dir: %w", err)
	}
	if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
		return fmt.Errorf("distnet: checkpoint manifest: %w", err)
	}
	return nil
}

func (c *checkpointer) path(idx int) string {
	return filepath.Join(c.dir, fmt.Sprintf("cuboid-%05d.dmeb", idx))
}

// load returns cuboid idx's checkpointed reply, or ok=false when it is
// absent, corrupt, or from a different geometry — any of which means the
// cuboid is recomputed. Damaged files are removed so the fresh result can
// take their place.
func (c *checkpointer) load(idx, cRows, cCols, blockSize int) (*MultiplyReply, bool) {
	path := c.path(idx)
	m, err := storage.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			os.Remove(path)
		}
		return nil, false
	}
	if m.Rows != cRows || m.Cols != cCols || m.BlockSize != blockSize {
		os.Remove(path)
		return nil, false
	}
	reply := &MultiplyReply{}
	for _, k := range m.Keys() {
		reply.CBlocks = append(reply.CBlocks, BlockRec{Key: k, Block: m.Block(k.I, k.J)})
	}
	return reply, true
}

// store persists cuboid idx's reply. The write goes to a temp file first
// and renames into place, so a crash mid-write leaves either nothing or a
// file storage's checksums will reject — never a silently-wrong
// checkpoint. Checkpoint I/O failures are deliberately non-fatal: the
// multiply's correctness never depends on the checkpoint.
func (c *checkpointer) store(idx int, reply *MultiplyReply, cRows, cCols, blockSize int) {
	m := bmat.New(cRows, cCols, blockSize)
	for _, rec := range reply.CBlocks {
		dense, ok := rec.Block.(*matrix.Dense)
		if !ok {
			dense = rec.Block.Dense()
		}
		m.SetBlock(rec.Key.I, rec.Key.J, dense)
	}
	tmp := c.path(idx) + ".tmp"
	if err := storage.WriteFile(tmp, m); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, c.path(idx)); err != nil {
		os.Remove(tmp)
	}
}
