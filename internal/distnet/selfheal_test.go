package distnet

import (
	"context"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"distme/internal/bmat"
	"distme/internal/core"
)

// The self-healing suite: health scores, hysteresis decisions, worker
// pools, the bounded drain window, dead-member retirement, the supervisor
// end to end, and the workerstore's concurrency under churn (run under
// -race via make test-race).

func mkHealth(pressure float64, workers ...WorkerHealth) ClusterHealth {
	h := ClusterHealth{Workers: workers, Pressure: pressure}
	for _, w := range workers {
		if w.Score > 0 && !w.Draining {
			h.LiveWorkers++
		}
	}
	return h
}

func TestHysteresisPolicyScalesUpOnSustainedPressure(t *testing.T) {
	p := &HysteresisPolicy{MinWorkers: 1, MaxWorkers: 4, UpAfter: 3, CooldownTicks: 2}
	busy := mkHealth(2.0,
		WorkerHealth{Addr: "a", Score: 1},
		WorkerHealth{Addr: "b", Score: 1})
	for i := 0; i < 2; i++ {
		if dec := p.Decide(busy); dec.Action != ScaleHold {
			t.Fatalf("tick %d: %v before UpAfter sustained", i, dec.Action)
		}
	}
	if dec := p.Decide(busy); dec.Action != ScaleUp {
		t.Fatalf("sustained pressure: got %v", dec.Action)
	}
	// Cooldown holds even under pressure, then the count restarts.
	for i := 0; i < 2; i++ {
		if dec := p.Decide(busy); dec.Action != ScaleHold || dec.Reason != "cooldown" {
			t.Fatalf("cooldown tick %d: %+v", i, dec)
		}
	}
}

func TestHysteresisPolicyScalesDownIdleAndRespectsMin(t *testing.T) {
	p := &HysteresisPolicy{MinWorkers: 1, MaxWorkers: 4, DownAfter: 2, CooldownTicks: 1}
	idle := mkHealth(0,
		WorkerHealth{Addr: "a", Score: 1},
		WorkerHealth{Addr: "b", Score: 0.6})
	p.Decide(idle)
	dec := p.Decide(idle)
	if dec.Action != ScaleDown || dec.Addr != "b" {
		t.Fatalf("want down of lowest-scoring b, got %+v", dec)
	}
	// At the floor, idleness never drains the last worker.
	solo := mkHealth(0, WorkerHealth{Addr: "a", Score: 1})
	p2 := &HysteresisPolicy{MinWorkers: 1, DownAfter: 1}
	for i := 0; i < 5; i++ {
		if dec := p2.Decide(solo); dec.Action != ScaleHold {
			t.Fatalf("scaled below MinWorkers: %+v", dec)
		}
	}
}

func TestHysteresisPolicyDrainsFlappingWorker(t *testing.T) {
	p := &HysteresisPolicy{MinWorkers: 1, UnhealthyAfter: 2, CooldownTicks: 1}
	flappy := mkHealth(0.5,
		WorkerHealth{Addr: "good", Score: 1},
		WorkerHealth{Addr: "bad", Score: 0.9, Flapping: true})
	p.Decide(flappy)
	dec := p.Decide(flappy)
	if dec.Action != ScaleDown || dec.Addr != "bad" {
		t.Fatalf("want unhealthy drain of bad, got %+v", dec)
	}
}

func TestHysteresisPolicyDeterministic(t *testing.T) {
	seq := []ClusterHealth{
		mkHealth(2.0, WorkerHealth{Addr: "a", Score: 1}),
		mkHealth(2.0, WorkerHealth{Addr: "a", Score: 1}),
		mkHealth(0, WorkerHealth{Addr: "a", Score: 1}, WorkerHealth{Addr: "b", Score: 1}),
		mkHealth(0, WorkerHealth{Addr: "a", Score: 1}, WorkerHealth{Addr: "b", Score: 1}),
		mkHealth(0.5, WorkerHealth{Addr: "a", Score: 0.2}, WorkerHealth{Addr: "b", Score: 1}),
	}
	run := func() []ScaleAction {
		p := &HysteresisPolicy{UpAfter: 2, DownAfter: 2, UnhealthyAfter: 1, CooldownTicks: 1}
		var out []ScaleAction
		for _, h := range seq {
			out = append(out, p.Decide(h).Action)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d: %v vs %v — policy not deterministic", i, a[i], b[i])
		}
	}
}

func TestInProcPoolGrowShrinkKill(t *testing.T) {
	pool := &InProcPool{}
	ctx := context.Background()
	defer pool.Close(ctx)

	addr, err := pool.Grow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pool.Owns(addr) || pool.Worker(addr) == nil {
		t.Fatalf("pool does not own its grown worker %s", addr)
	}
	if pool.Owns("127.0.0.1:1") {
		t.Fatal("pool claims a worker it never grew")
	}
	// The grown worker answers real RPCs.
	d, err := DialOptions([]string{addr}, Options{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	a := bmat.RandomDense(rng, 16, 16, 8)
	if _, err := d.Multiply(a, a, core.Params{P: 1, Q: 1, R: 1}); err != nil {
		t.Fatal(err)
	}
	d.Close()

	victim, err := pool.Grow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !pool.Kill(victim) {
		t.Fatal("Kill refused an owned worker")
	}
	if !pool.Owns(victim) {
		t.Fatal("killed worker should stay owned for post-mortem inspection")
	}
	if _, err := net.DialTimeout("tcp", victim, 200*time.Millisecond); err == nil {
		t.Fatal("killed worker still accepting connections")
	}
	if err := pool.Shrink(ctx, addr); err != nil {
		t.Fatal(err)
	}
	if pool.Owns(addr) {
		t.Fatal("shrunk worker still owned")
	}
	if err := pool.Shrink(ctx, addr); err == nil {
		t.Fatal("double Shrink should fail")
	}
}

func TestDrainWindowAdmitsReadsUntilDeadline(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Serve(l)
	if err != nil {
		t.Fatal(err)
	}
	defer w.abort()

	w.mu.Lock()
	w.draining = true
	w.drainUntil = time.Now().Add(80 * time.Millisecond)
	w.mu.Unlock()

	if w.beginRPC() {
		t.Fatal("beginRPC admitted work on a draining worker")
	}
	if !w.beginReadRPC() {
		t.Fatal("beginReadRPC refused inside the drain window — bands could not migrate off")
	}
	w.endRPC()
	time.Sleep(120 * time.Millisecond)
	if w.beginReadRPC() {
		t.Fatal("beginReadRPC admitted past the drain deadline")
	}
}

func TestRetireDeadFlipsLongDeadMembers(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	d, err := DialOptions(addrs, Options{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	d.mu.Lock()
	m := d.members[0]
	d.mu.Unlock()
	m.mu.Lock()
	m.state = StateDead
	m.deadSince = time.Now().Add(-time.Minute)
	m.mu.Unlock()

	retired := d.retireDead(30 * time.Second)
	if len(retired) != 1 || retired[0] != m.addr {
		t.Fatalf("retireDead = %v, want [%s]", retired, m.addr)
	}
	m.mu.Lock()
	state := m.state
	m.mu.Unlock()
	if state != StateRemoved {
		t.Fatalf("retired member state = %v, want removed", state)
	}
	if got := d.NetStats().WorkersRetired; got != 1 {
		t.Fatalf("WorkersRetired = %d", got)
	}
	// Fresh deaths are not retired.
	if again := d.retireDead(30 * time.Second); len(again) != 0 {
		t.Fatalf("second retireDead = %v", again)
	}
}

func TestJitterSeedPinsBackoffSchedule(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	draw := func(seed int64) []int64 {
		d, err := DialOptions(addrs, Options{DisableHeartbeat: true, JitterSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		out := make([]int64, 8)
		for i := range out {
			out[i] = d.jrand.Int63n(1 << 20)
		}
		return out
	}
	a, b := draw(99), draw(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %d vs %d — jitter not pinned by seed", i, a[i], b[i])
		}
	}
}

// TestAutoscalerEndToEnd drives the whole loop against a real pool: load
// forces a scale-up, idleness a scale-down, and the decision log plus
// counters record both.
func TestAutoscalerEndToEnd(t *testing.T) {
	pool := &InProcPool{}
	ctx := context.Background()
	defer pool.Close(ctx)
	seedAddr, err := pool.Grow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DialOptions([]string{seedAddr}, Options{
		HeartbeatInterval: 50 * time.Millisecond,
		PerWorkerInflight: 1,
		JitterSeed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	err = d.StartAutoscaler(AutoscalerOptions{
		Pool: pool,
		Policy: &HysteresisPolicy{
			MinWorkers:    1,
			MaxWorkers:    3,
			UpAfter:       2,
			DownPressure:  0.2,
			DownAfter:     4,
			CooldownTicks: 3,
		},
		Interval:     20 * time.Millisecond,
		DrainTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StartAutoscaler(AutoscalerOptions{Pool: pool}); err == nil {
		t.Fatal("second StartAutoscaler should fail while one runs")
	}

	// Load phase: concurrent multiplies against a 1-slot worker queue up.
	rng := rand.New(rand.NewSource(5))
	a := bmat.RandomDense(rng, 32, 32, 8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := d.Multiply(a, a, core.Params{P: 2, Q: 2, R: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.NetStats().ScaleUps == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if d.NetStats().ScaleUps == 0 {
		t.Fatal("no scale-up under sustained queue pressure")
	}

	// Idle phase: the pool drains back toward MinWorkers.
	for d.NetStats().ScaleDowns == 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if d.NetStats().ScaleDowns == 0 {
		t.Fatal("no scale-down under sustained idleness")
	}
	events := d.AutoscalerEvents()
	var up, down bool
	for _, ev := range events {
		up = up || ev.Action == "up"
		down = down || ev.Action == "down"
	}
	if !up || !down {
		t.Fatalf("decision log missing up/down: %+v", events)
	}
	// The supervisor never drains the statically-dialed... seed worker is
	// pool-owned here, but a non-owned member must be refused.
	d.StopAutoscaler()
	d.StopAutoscaler() // idempotent
}

func TestClusterHealthSnapshotsLoadAndPressure(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	d, err := DialOptions(addrs, Options{
		HeartbeatInterval: 20 * time.Millisecond,
		PerWorkerInflight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h := d.ClusterHealth()
		if h.LiveWorkers == 2 && h.MeanScore == 1 {
			if len(h.Workers) != 2 {
				t.Fatalf("workers = %d", len(h.Workers))
			}
			if h.Pressure != 0 {
				t.Fatalf("idle pressure = %v", h.Pressure)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("cluster never scored healthy: %+v", d.ClusterHealth())
}

// TestWorkerStoreConcurrentFreeFetchEviction hammers the shared worker
// stores from many sessions at once (Session itself is single-goroutine by
// contract, so each goroutine owns one) while a tiny store bound forces
// evictions — workerstore.go's locking must hold up under -race when Put,
// Fetch, Free, and the eviction scan interleave across sessions.
func TestWorkerStoreConcurrentFreeFetchEviction(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		// A bound small enough that concurrent puts evict each other.
		if _, err := ServeOptions(l, WorkerOptions{StoreBytes: 24 << 10}); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
	}
	d, err := DialOptions(addrs, Options{DisableHeartbeat: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()

	rng := rand.New(rand.NewSource(11))
	m := bmat.RandomDense(rng, 24, 24, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess, err := d.NewSession(ctx)
			if err != nil {
				t.Errorf("session: %v", err)
				return
			}
			defer sess.Close(ctx)
			for i := 0; i < 12; i++ {
				h, err := sess.Put(ctx, m)
				if err != nil {
					t.Errorf("put: %v", err)
					return
				}
				// Fetches race other sessions' puts evicting this handle's
				// blocks and frees releasing them mid-scan; rebuild-from-
				// lineage makes evicted fetches succeed bit-identical.
				if g%2 == 0 {
					if got, err := sess.Fetch(ctx, h); err == nil {
						if !got.ToDense().EqualApprox(m.ToDense(), 0) {
							t.Error("fetched bytes differ")
							return
						}
					} else if !strings.Contains(err.Error(), "freed") {
						t.Errorf("fetch: %v", err)
						return
					}
				}
				_ = sess.Free(ctx, h)
			}
		}(g)
	}
	wg.Wait()
}

// TestNoGoroutineLeakAfterSessionClose asserts the whole stack — sessions,
// driver, autoscaled pool — returns the process to its starting goroutine
// neighborhood after Close.
func TestNoGoroutineLeakAfterSessionClose(t *testing.T) {
	before := runtime.NumGoroutine()

	pool := &InProcPool{}
	ctx := context.Background()
	addr, err := pool.Grow(ctx)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DialOptions([]string{addr}, Options{
		HeartbeatInterval: 20 * time.Millisecond,
		JitterSeed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StartAutoscaler(AutoscalerOptions{Pool: pool, Interval: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	sess, err := d.NewSession(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	m := bmat.RandomDense(rng, 16, 16, 8)
	h, err := sess.Put(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Fetch(ctx, h); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if n := d.NetStats().ResidentBytes; n != 0 {
		t.Fatalf("ResidentBytes = %d after Session.Close", n)
	}
	d.Close() // stops the autoscaler too
	pool.Close(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
}
