package distnet

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"distme/internal/bmat"
	"distme/internal/matrix"
	"distme/internal/obs"
)

// The worker half of the distributed block store: handle bands live in
// w.store, pipeline operators run here against them, and operand bands this
// worker lacks are fetched worker→worker — the driver never sees
// intermediate payloads.

// errPeerFetchPrefix marks exec failures caused by a worker→worker fetch;
// the driver treats them as recoverable (the peer may be dead) and rebuilds
// from lineage on a fresh placement.
const errPeerFetchPrefix = "distnet: peer fetch"

const (
	peerDialTimeout = 5 * time.Second
	peerCallTimeout = 60 * time.Second
)

// getStore returns the worker's handle store, creating an unbounded-default
// one for workers constructed directly (tests, stand-ins) rather than via
// ServeOptions.
func (w *Worker) getStore() *handleStore {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.store == nil {
		w.store = newHandleStore(0)
	}
	return w.store
}

// StoreStats snapshots the worker's handle-store counters.
func (w *Worker) StoreStats() StoreStats { return w.getStore().stats() }

// peerClient returns (dialing on demand) the RPC client for a peer worker.
func (w *Worker) peerClient(addr string) (*rpc.Client, error) {
	w.peersMu.Lock()
	defer w.peersMu.Unlock()
	if c, ok := w.peers[addr]; ok {
		return c, nil
	}
	conn, err := net.DialTimeout("tcp", addr, peerDialTimeout)
	if err != nil {
		return nil, err
	}
	c := rpc.NewClientWithCodec(newClientCodec(conn, nil, nil, nil))
	if w.peers == nil {
		w.peers = map[string]*rpc.Client{}
	}
	w.peers[addr] = c
	return c, nil
}

// dropPeer discards a peer client after a failed call so the next exec
// redials instead of reusing a wedged connection.
func (w *Worker) dropPeer(addr string, c *rpc.Client) {
	w.peersMu.Lock()
	if cur, ok := w.peers[addr]; ok && cur == c {
		delete(w.peers, addr)
	}
	w.peersMu.Unlock()
	c.Close()
}

func (w *Worker) closePeers() {
	w.peersMu.Lock()
	peers := w.peers
	w.peers = nil
	w.peersMu.Unlock()
	for _, c := range peers {
		c.Close()
	}
}

// peerGet fetches blocks of one handle band from a peer worker, recording a
// peer.fetch span under parent (0 when untraced) and the per-link traffic.
func (w *Worker) peerGet(parent obs.SpanID, addr string, args *GetArgs) ([]BlockRec, error) {
	sp := w.tracer.Start(parent, "peer.fetch", obs.KindWorker)
	if sp.Active() {
		sp.SetAttr("peer", addr)
	}
	defer sp.End()
	client, err := w.peerClient(addr)
	if err != nil {
		if sp.Active() {
			sp.SetAttr("error", err.Error())
		}
		return nil, fmt.Errorf("%s %s: %w", errPeerFetchPrefix, addr, err)
	}
	var reply GetReply
	if err := rpcCall(client, "GetBlocks", args, &reply, peerCallTimeout); err != nil {
		w.dropPeer(addr, client)
		if sp.Active() {
			sp.SetAttr("error", err.Error())
		}
		return nil, fmt.Errorf("%s %s: %w", errPeerFetchPrefix, addr, err)
	}
	var bytes int64
	for _, r := range reply.Blocks {
		if r.Block != nil {
			bytes += r.Block.SizeBytes()
		}
	}
	if sp.Active() {
		sp.SetAttr("bytes", fmt.Sprintf("%d", bytes))
	}
	w.getStore().addPeerFetch(addr, bytes)
	return reply.Blocks, nil
}

// PutBlocks installs one handle's band in the store.
func (w *Worker) PutBlocks(args *PutArgs, reply *PutReply) error {
	if !w.beginRPC() {
		return errors.New(errWorkerDrainingMsg)
	}
	defer w.endRPC()
	sp := w.tracer.Start(obs.SpanID(args.traceSpan), "worker.put", obs.KindWorker)
	blocks := make(map[bmat.BlockKey]matrix.Block, len(args.Blocks))
	for _, r := range args.Blocks {
		blocks[r.Key] = r.Block
	}
	reply.Bytes = w.getStore().set(args.Handle, args.Epoch, args.Pin, blocks, true)
	if sp.Active() {
		sp.SetAttr("handle", fmt.Sprintf("%d", args.Handle))
		sp.SetAttr("blocks", fmt.Sprintf("%d", len(blocks)))
	}
	sp.End()
	return nil
}

// GetBlocks reads a handle's resident blocks, optionally filtered to a
// block-coordinate box. A missing handle answers with the unknown-handle
// error, which the driver resolves by lineage rebuild. Reads stay admitted
// during a shutdown's drain window (beginReadRPC) so peers can copy bands
// off a draining worker before it goes away.
func (w *Worker) GetBlocks(args *GetArgs, reply *GetReply) error {
	if !w.beginReadRPC() {
		return errors.New(errWorkerDrainingMsg)
	}
	defer w.endRPC()
	blocks, ok := w.getStore().get(args.Handle)
	if !ok {
		return errors.New(errUnknownHandleMsg)
	}
	// Deterministic order keeps replies byte-stable for equal stores.
	keys := make([]bmat.BlockKey, 0, len(blocks))
	for k := range blocks {
		if !args.All && (k.I < args.ILo || k.I >= args.IHi || k.J < args.JLo || k.J >= args.JHi) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].I != keys[j].I {
			return keys[i].I < keys[j].I
		}
		return keys[i].J < keys[j].J
	})
	reply.Blocks = make([]BlockRec, 0, len(keys))
	for _, k := range keys {
		reply.Blocks = append(reply.Blocks, BlockRec{Key: k, Block: blocks[k]})
	}
	return nil
}

// FreeHandles drops handles (or a whole session epoch) from the store.
func (w *Worker) FreeHandles(args *FreeArgs, reply *FreeReply) error {
	if !w.beginRPC() {
		return errors.New(errWorkerDrainingMsg)
	}
	defer w.endRPC()
	st := w.getStore()
	if args.AllEpoch {
		reply.Freed = st.freeEpoch(args.Epoch)
	} else {
		reply.Freed = st.free(args.Handles)
	}
	return nil
}

// PinHandle adjusts a resident band's pin count.
func (w *Worker) PinHandle(args *PinArgs, _ *PinReply) error {
	if !w.beginRPC() {
		return errors.New(errWorkerDrainingMsg)
	}
	defer w.endRPC()
	if !w.getStore().pin(args.Handle, args.Unpin) {
		return errors.New(errUnknownHandleMsg)
	}
	return nil
}

// ExecOp runs one pipeline operator over resident handles, installing the
// output band in the store. Arithmetic is deterministic and placement-
// independent: multiplication accumulates k-ascending per output block (the
// same order as computeCuboid), element-wise ops mirror the engine's
// nil-block zip semantics exactly — so resident, materialized, and rebuilt
// executions are byte-identical.
func (w *Worker) ExecOp(args *ExecArgs, reply *ExecReply) error {
	if !w.beginRPC() {
		return errors.New(errWorkerDrainingMsg)
	}
	defer w.endRPC()
	sp := w.tracer.Start(obs.SpanID(args.traceSpan), "worker.exec", obs.KindWorker)
	if sp.Active() {
		sp.SetAttr("op", fmt.Sprintf("%d", args.Op))
		sp.SetAttr("out", fmt.Sprintf("%d", args.Out))
	}
	out, peerBytes, err := w.execOp(args)
	if err != nil {
		if sp.Active() {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
		return err
	}
	reply.Bytes = w.getStore().set(args.Out, args.Epoch, false, out, false)
	reply.Blocks = len(out)
	reply.PeerBytes = peerBytes
	if sp.Active() {
		sp.SetAttr("blocks", fmt.Sprintf("%d", len(out)))
	}
	sp.End()
	return nil
}

// localBand reads one operand band from the local store.
func (w *Worker) localBand(id uint64) (map[bmat.BlockKey]matrix.Block, error) {
	blocks, ok := w.getStore().get(id)
	if !ok {
		return nil, errors.New(errUnknownHandleMsg)
	}
	return blocks, nil
}

// gatherAll assembles a whole handle from its parts: local bands read the
// store, remote bands fetch worker→worker.
func (w *Worker) gatherAll(parent obs.SpanID, id uint64, parts []PartLoc, self string) (map[bmat.BlockKey]matrix.Block, error) {
	all := map[bmat.BlockKey]matrix.Block{}
	for _, p := range parts {
		if p.Addr == self {
			local, err := w.localBand(id)
			if err != nil {
				return nil, err
			}
			for k, b := range local {
				all[k] = b
			}
			continue
		}
		recs, err := w.peerGet(parent, p.Addr, &GetArgs{Handle: id, All: true})
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			all[r.Key] = r.Block
		}
	}
	return all, nil
}

// execOp dispatches one pipeline operator, additionally reporting the
// worker→worker payload bytes the operator moved (pull mode only; eager
// gathers report zero and are accounted in the store's aggregate instead).
func (w *Worker) execOp(args *ExecArgs) (map[bmat.BlockKey]matrix.Block, int64, error) {
	switch args.Op {
	case execMul:
		return w.execMul(args)
	case execTranspose:
		return w.execTranspose(args)
	case execScale:
		a, err := w.localBand(args.A)
		if err != nil {
			return nil, 0, err
		}
		out := make(map[bmat.BlockKey]matrix.Block, len(a))
		for k, blk := range a {
			out[k] = matrix.Scale(args.Scalar, blk)
		}
		return out, 0, nil
	case execAdd, execSub, execHadamard, execDivElem:
		out, err := w.execZip(args)
		return out, 0, err
	default:
		return nil, 0, fmt.Errorf("distnet: unknown pipeline op %d", args.Op)
	}
}

// execMul computes this worker's C band: C rows are co-partitioned with A
// rows, so the A band is local while B is assembled whole (the (W−1)/W
// worker→worker movement Eq.(4)'s pipeline extension prices).
func (w *Worker) execMul(args *ExecArgs) (map[bmat.BlockKey]matrix.Block, int64, error) {
	aBlocks, err := w.localBand(args.A)
	if err != nil {
		return nil, 0, err
	}
	if args.Pull {
		return w.execMulPull(args, aBlocks)
	}
	bBlocks, err := w.gatherAll(obs.SpanID(args.traceSpan), args.B, args.BParts, args.Self)
	if err != nil {
		return nil, 0, err
	}
	// Sorted j and ascending k keep the accumulation order identical to
	// computeCuboid's regardless of which worker runs the band.
	ksByJ := map[int][]int{}
	for k := range bBlocks {
		ksByJ[k.J] = append(ksByJ[k.J], k.I)
	}
	js := make([]int, 0, len(ksByJ))
	for j, ks := range ksByJ {
		sort.Ints(ks)
		js = append(js, j)
	}
	sort.Ints(js)
	out := map[bmat.BlockKey]matrix.Block{}
	for i := args.OutLo; i < args.OutHi; i++ {
		for _, j := range js {
			var acc *matrix.Dense
			for _, k := range ksByJ[j] {
				ab := aBlocks[bmat.BlockKey{I: i, J: k}]
				bb := bBlocks[bmat.BlockKey{I: k, J: j}]
				if ab == nil || bb == nil {
					continue
				}
				acc = matrix.MulAdd(acc, ab, bb)
			}
			if acc != nil {
				out[bmat.BlockKey{I: i, J: j}] = acc
			}
		}
	}
	return out, 0, nil
}

// execMulPull streams the B operand band by band instead of gathering it
// whole: while one band multiplies, the next prefetches (one ahead). Bands
// are disjoint ascending-k row ranges, so the per-(i,j) accumulation order —
// and therefore every fp64 bit — matches the gathered path exactly.
func (w *Worker) execMulPull(args *ExecArgs, aBlocks map[bmat.BlockKey]matrix.Block) (map[bmat.BlockKey]matrix.Block, int64, error) {
	parent := obs.SpanID(args.traceSpan)
	parts := append([]PartLoc(nil), args.BParts...)
	sort.Slice(parts, func(i, j int) bool { return parts[i].Lo < parts[j].Lo })
	type bandResult struct {
		blocks map[bmat.BlockKey]matrix.Block
		bytes  int64
		err    error
	}
	fetch := func(p PartLoc) chan bandResult {
		ch := make(chan bandResult, 1)
		go func() {
			if p.Addr == args.Self {
				local, err := w.localBand(args.B)
				ch <- bandResult{blocks: local, err: err}
				return
			}
			recs, err := w.peerGet(parent, p.Addr, &GetArgs{Handle: args.B, All: true})
			if err != nil {
				ch <- bandResult{err: err}
				return
			}
			blocks := make(map[bmat.BlockKey]matrix.Block, len(recs))
			var bytes int64
			for _, r := range recs {
				blocks[r.Key] = r.Block
				if r.Block != nil {
					bytes += r.Block.SizeBytes()
				}
			}
			ch <- bandResult{blocks: blocks, bytes: bytes}
		}()
		return ch
	}
	var peerBytes int64
	acc := map[bmat.BlockKey]*matrix.Dense{}
	var next chan bandResult
	if len(parts) > 0 {
		next = fetch(parts[0])
	}
	for pi := range parts {
		cur := <-next
		if pi+1 < len(parts) {
			next = fetch(parts[pi+1])
		}
		if cur.err != nil {
			return nil, 0, cur.err
		}
		peerBytes += cur.bytes
		// Within a band: sorted j, ascending k — band order is ascending k
		// ranges, so the concatenation is the gathered path's global order.
		ksByJ := map[int][]int{}
		for k := range cur.blocks {
			ksByJ[k.J] = append(ksByJ[k.J], k.I)
		}
		js := make([]int, 0, len(ksByJ))
		for j, ks := range ksByJ {
			sort.Ints(ks)
			js = append(js, j)
		}
		sort.Ints(js)
		for i := args.OutLo; i < args.OutHi; i++ {
			for _, j := range js {
				a := acc[bmat.BlockKey{I: i, J: j}]
				for _, k := range ksByJ[j] {
					ab := aBlocks[bmat.BlockKey{I: i, J: k}]
					bb := cur.blocks[bmat.BlockKey{I: k, J: j}]
					if ab == nil || bb == nil {
						continue
					}
					a = matrix.MulAdd(a, ab, bb)
				}
				if a != nil {
					acc[bmat.BlockKey{I: i, J: j}] = a
				}
			}
		}
	}
	out := make(map[bmat.BlockKey]matrix.Block, len(acc))
	for k, a := range acc {
		out[k] = a
	}
	return out, peerBytes, nil
}

// execTranspose builds the output band rows [OutLo, OutHi) — the operand's
// column slice — fetching exactly that slice from each peer band. In pull
// mode the peer slices fetch concurrently (emit order is irrelevant: keys
// are distinct and each block transposes independently).
func (w *Worker) execTranspose(args *ExecArgs) (map[bmat.BlockKey]matrix.Block, int64, error) {
	parent := obs.SpanID(args.traceSpan)
	out := map[bmat.BlockKey]matrix.Block{}
	emit := func(k bmat.BlockKey, blk matrix.Block) {
		if k.J < args.OutLo || k.J >= args.OutHi || blk == nil {
			return
		}
		out[bmat.BlockKey{I: k.J, J: k.I}] = matrix.Transpose(blk)
	}
	sliceArgs := func(p PartLoc) *GetArgs {
		return &GetArgs{
			Handle: args.A,
			ILo:    p.Lo, IHi: p.Hi,
			JLo: args.OutLo, JHi: args.OutHi,
		}
	}
	var fetched map[int][]BlockRec
	if args.Pull {
		fetched = make(map[int][]BlockRec, len(args.AParts))
		errs := make([]error, len(args.AParts))
		sem := make(chan struct{}, pullFetchConcurrency)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for pi, p := range args.AParts {
			if p.Addr == args.Self {
				continue
			}
			wg.Add(1)
			go func(pi int, p PartLoc) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				recs, err := w.peerGet(parent, p.Addr, sliceArgs(p))
				mu.Lock()
				fetched[pi], errs[pi] = recs, err
				mu.Unlock()
			}(pi, p)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, 0, err
			}
		}
	}
	var peerBytes int64
	for pi, p := range args.AParts {
		if p.Addr == args.Self {
			local, err := w.localBand(args.A)
			if err != nil {
				return nil, 0, err
			}
			for k, b := range local {
				emit(k, b)
			}
			continue
		}
		recs, ok := fetched[pi]
		if !ok {
			var err error
			recs, err = w.peerGet(parent, p.Addr, sliceArgs(p))
			if err != nil {
				return nil, 0, err
			}
		}
		for _, r := range recs {
			if args.Pull && r.Block != nil {
				peerBytes += r.Block.SizeBytes()
			}
			emit(r.Key, r.Block)
		}
	}
	return out, peerBytes, nil
}

// execZip runs one element-wise operator over the union of the local A and B
// band keys, mirroring the engine zip's nil-block semantics exactly.
func (w *Worker) execZip(args *ExecArgs) (map[bmat.BlockKey]matrix.Block, error) {
	a, err := w.localBand(args.A)
	if err != nil {
		return nil, err
	}
	b, err := w.localBand(args.B)
	if err != nil {
		return nil, err
	}
	keys := map[bmat.BlockKey]struct{}{}
	for k := range a {
		keys[k] = struct{}{}
	}
	for k := range b {
		keys[k] = struct{}{}
	}
	out := map[bmat.BlockKey]matrix.Block{}
	for k := range keys {
		var res matrix.Block
		x, y := a[k], b[k]
		switch args.Op {
		case execAdd:
			switch {
			case x == nil:
				res = y.Dense()
			case y == nil:
				res = x.Dense()
			default:
				res = matrix.Add(x, y)
			}
		case execSub:
			switch {
			case x == nil:
				res = matrix.Scale(-1, y)
			case y == nil:
				res = x.Dense()
			default:
				res = matrix.Sub(x, y)
			}
		case execHadamard:
			if x != nil && y != nil {
				res = matrix.Hadamard(x, y)
			}
		case execDivElem:
			if x != nil {
				if y == nil {
					r, c := x.Dims()
					y = matrix.NewDense(r, c)
				}
				res = matrix.DivElem(x, y, args.Scalar)
			}
		}
		if res != nil {
			out[k] = res
		}
	}
	return out, nil
}
