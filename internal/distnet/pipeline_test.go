package distnet

import (
	"context"
	"math/rand"
	"net"
	"strings"
	"testing"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/ml"
	"distme/internal/plan"
)

// The session's handle surface is exactly what the ml layer's generic
// pipelines run against.
var _ ml.PipelineSession[*Handle] = (*Session)(nil)

// gnmfStepExpr is a dense multi-operator pipeline exercising every wire
// operator: H ← H ∘ (Wᵀ·V) ⊘ (Wᵀ·W·H), plus scale/add/sub around it.
func pipelineTestExpr() plan.Expr {
	wt := plan.T(plan.V("w"))
	upd := plan.EMul(plan.V("h"),
		plan.EDiv(plan.Mul(wt, plan.V("v")),
			plan.Mul(plan.Mul(wt, plan.V("w")), plan.V("h")), 1e-9))
	return plan.Plus(plan.Times(0.5, upd), plan.Minus(upd, plan.Times(0.25, plan.V("h"))))
}

func pipelineTestInputs(seed int64) map[string]*bmat.BlockMatrix {
	rng := rand.New(rand.NewSource(seed))
	return map[string]*bmat.BlockMatrix{
		"v": bmat.RandomSparse(rng, 24, 20, 4, 0.3),
		"w": bmat.RandomDense(rng, 24, 6, 4),
		"h": bmat.RandomDense(rng, 6, 20, 4),
	}
}

func newSession(t *testing.T, d *Driver) *Session {
	t.Helper()
	s, err := d.NewSession(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(context.Background()) })
	return s
}

func putAll(t *testing.T, s *Session, ms map[string]*bmat.BlockMatrix) map[string]*Handle {
	t.Helper()
	binds := make(map[string]*Handle, len(ms))
	for name, m := range ms {
		h, err := s.Put(context.Background(), m)
		if err != nil {
			t.Fatalf("put %q: %v", name, err)
		}
		binds[name] = h
	}
	return binds
}

func TestSessionPutFetchRoundTrip(t *testing.T) {
	addrs, _ := startWorkers(t, 3)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := newSession(t, d)
	ctx := context.Background()

	rng := rand.New(rand.NewSource(7))
	m := bmat.RandomSparse(rng, 30, 22, 4, 0.4)
	h, err := s.Put(ctx, m)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 30 || h.Cols() != 22 || h.BlockSize() != 4 {
		t.Fatalf("handle dims %dx%d/%d", h.Rows(), h.Cols(), h.BlockSize())
	}
	got, err := s.Fetch(ctx, h)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, m)

	if err := s.Free(ctx, h); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fetch(ctx, h); err == nil {
		t.Fatal("fetch after free succeeded")
	} else if !strings.Contains(err.Error(), "freed") {
		t.Fatalf("fetch after free: %v", err)
	}
}

// TestPipelineRunMatchesMaterialized is the core equivalence bar: the
// resident pipeline and the driver-materialized baseline must produce
// bit-identical results, since they run the same worker arithmetic under the
// same placement — only the traffic pattern differs.
func TestPipelineRunMatchesMaterialized(t *testing.T) {
	addrs, _ := startWorkers(t, 3)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	expr := pipelineTestExpr()
	inputs := pipelineTestInputs(21)

	s := newSession(t, d)
	binds := putAll(t, s, inputs)
	out, err := s.Run(ctx, expr, binds)
	if err != nil {
		t.Fatal(err)
	}
	resident, err := s.Fetch(ctx, out)
	if err != nil {
		t.Fatal(err)
	}

	materialized, err := s.RunMaterialized(ctx, expr, inputs)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, resident, materialized)

	// And both must agree with a plain local reference evaluation.
	ref := localPlanEval(t, expr, inputs)
	g, w := resident.ToDense(), ref.ToDense()
	if !g.EqualApprox(w, 1e-9) {
		t.Fatal("pipeline result differs from local reference")
	}
}

// localPlanEval computes the expression on the local engine as a reference.
func localPlanEval(t *testing.T, x plan.Expr, inputs map[string]*bmat.BlockMatrix) *bmat.BlockMatrix {
	t.Helper()
	eng := localEngine(t)
	defer eng.Close()
	out, _, err := eng.Run(context.Background(), x, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPipelineIntermediatesStayResident runs the multi-op expression and
// asserts the driver moved only the inputs up and the final result down —
// no intermediate crossed the wire to the driver.
func TestPipelineIntermediatesStayResident(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	inputs := pipelineTestInputs(22)

	s := newSession(t, d)
	binds := putAll(t, s, inputs)
	sentBefore, recvBefore := d.WireBytes()
	out, err := s.Run(ctx, pipelineTestExpr(), binds)
	if err != nil {
		t.Fatal(err)
	}
	sentMid, recvMid := d.WireBytes()
	res, err := s.Fetch(ctx, out)
	if err != nil {
		t.Fatal(err)
	}
	sentAfter, recvAfter := d.WireBytes()

	// Executing the pipeline ships expressions (tiny), not matrices: the
	// driver's sent bytes during Run must be far below one operand.
	opBytes := int64(inputs["v"].Rows) * int64(inputs["v"].Cols) * 8
	if runSent := sentMid - sentBefore; runSent > opBytes {
		t.Fatalf("Run sent %d driver bytes, more than an operand (%d)", runSent, opBytes)
	}
	if runRecv := recvMid - recvBefore; runRecv > opBytes {
		t.Fatalf("Run received %d driver bytes, more than an operand (%d)", runRecv, opBytes)
	}
	// The fetch moves roughly one result matrix.
	if fetchRecv := recvAfter - recvMid; fetchRecv == 0 {
		t.Fatal("fetch moved no bytes")
	}
	_ = sentAfter
	_ = res

	// Pricing must agree that residency avoids driver traffic.
	mat, resid, err := s.Price(pipelineTestExpr(), binds)
	if err != nil {
		t.Fatal(err)
	}
	if mat <= resid {
		t.Fatalf("Price: materialized %d not above resident %d", mat, resid)
	}
	if n := d.NetStats().DriverBytesAvoided; n == 0 {
		t.Fatal("driver-bytes-avoided counter did not move")
	}
}

// TestPipelineWorkerKillRecovers kills a worker holding resident (and
// pinned) bands mid-pipeline: the session must rebuild the lost bands from
// lineage on the survivors and the final result must stay bit-identical.
func TestPipelineWorkerKillRecovers(t *testing.T) {
	ctx := context.Background()
	expr := pipelineTestExpr()
	inputs := pipelineTestInputs(23)

	// Failure-free reference.
	cleanAddrs, _ := startWorkers(t, 2)
	cd, err := Dial(cleanAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()
	cs := newSession(t, cd)
	cleanOut, err := cs.Run(ctx, expr, putAll(t, cs, inputs))
	if err != nil {
		t.Fatal(err)
	}
	want, err := cs.Fetch(ctx, cleanOut)
	if err != nil {
		t.Fatal(err)
	}

	addrs, workers := startWorkers(t, 2)
	opts := fastOpts()
	opts.DisableHeartbeat = true // death is detected by the failed call itself
	d, err := DialOptions(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := newSession(t, d)
	binds := putAll(t, s, inputs)
	if err := s.Pin(ctx, binds["v"]); err != nil {
		t.Fatal(err)
	}

	killWorker(workers[0])

	out, err := s.Run(ctx, expr, binds)
	if err != nil {
		t.Fatalf("pipeline did not survive worker kill: %v", err)
	}
	got, err := s.Fetch(ctx, out)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)
	if s.Recoveries() == 0 {
		t.Fatal("no recovery recorded despite worker kill")
	}

	// Lifecycle: freeing everything leaves no resident bytes on the
	// survivor — no leak.
	for _, h := range binds {
		if h.Pinned() {
			if err := s.Unpin(ctx, h); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Free(ctx, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Free(ctx, out); err != nil {
		t.Fatal(err)
	}
	if st := workers[1].StoreStats(); st.Handles != 0 || st.Bytes != 0 {
		t.Fatalf("survivor still holds %d handles / %d bytes after Free", st.Handles, st.Bytes)
	}
}

// TestPipelineEvictionRecompute bounds the store so intermediates are
// evicted, then keeps using a handle: the driver must transparently rebuild
// it from lineage.
func TestPipelineEvictionRecompute(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		if _, err := ServeOptions(l, WorkerOptions{StoreBytes: 6 << 10}); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
	}
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	s := newSession(t, d)

	rng := rand.New(rand.NewSource(31))
	m1 := bmat.RandomDense(rng, 16, 16, 4)
	h1, err := s.Put(ctx, m1)
	if err != nil {
		t.Fatal(err)
	}
	// Flood the store so h1's bands are evicted.
	var flood []*Handle
	for i := 0; i < 8; i++ {
		h, err := s.Put(ctx, bmat.RandomDense(rng, 16, 16, 4))
		if err != nil {
			t.Fatal(err)
		}
		flood = append(flood, h)
	}
	got, err := s.Fetch(ctx, h1)
	if err != nil {
		t.Fatalf("fetch after eviction: %v", err)
	}
	bitIdentical(t, got, m1)
	for _, h := range flood {
		_ = s.Free(ctx, h)
	}
}

// TestDeprecatedDriverWrappers pins the back-compat contract: the old
// Multiply/MultiplyAuto entry points must be byte-identical to Execute.
func TestDeprecatedDriverWrappers(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(41))
	a := bmat.RandomDense(rng, 24, 16, 4)
	b := bmat.RandomDense(rng, 16, 20, 4)
	params := core.Params{P: 2, Q: 2, R: 2}

	want, _, err := d.Execute(context.Background(), a, b, MultiplyOptions{Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)

	wantAuto, _, err := d.Execute(context.Background(), a, b, MultiplyOptions{WorkerMemBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	gotAuto, _, err := d.MultiplyAuto(a, b, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, gotAuto, wantAuto)

	ref := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !want.ToDense().EqualApprox(ref, 1e-9) {
		t.Fatal("Execute result differs from local reference")
	}
}

// TestGNMFPipelineMatchesMaterialized runs the handle-resident GNMF and the
// eager handle-free baseline over the same seed and compares factors
// bitwise, then checks the session's price estimate favored residency.
func TestGNMFPipelineMatchesMaterialized(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	rng := rand.New(rand.NewSource(51))
	v := bmat.RandomSparse(rng, 24, 20, 4, 0.25)
	gopts := ml.GNMFOptions{Rank: 4, Seed: 11, Iterations: 2}

	s := newSession(t, d)
	g, err := ml.NewGNMFPipeline[*Handle](ctx, s, v, gopts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < gopts.Iterations; i++ {
		if err := g.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	got, err := g.Factors(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Materialized twin: the same update expressions through RunMaterialized.
	s2 := newSession(t, d)
	rng2 := rand.New(rand.NewSource(gopts.Seed))
	w := bmat.RandomDense(rng2, v.Rows, gopts.Rank, v.BlockSize)
	h := bmat.RandomDense(rng2, gopts.Rank, v.Cols, v.BlockSize)
	for i := 0; i < gopts.Iterations; i++ {
		binds := map[string]*bmat.BlockMatrix{"v": v, "w": w, "h": h}
		nh, err := s2.RunMaterialized(ctx, ml.GNMFHExpr(), binds)
		if err != nil {
			t.Fatal(err)
		}
		binds["h"] = nh
		nw, err := s2.RunMaterialized(ctx, ml.GNMFWExpr(), binds)
		if err != nil {
			t.Fatal(err)
		}
		w, h = nw, nh
	}
	bitIdentical(t, got.W, w)
	bitIdentical(t, got.H, h)
}

// TestPageRankHandlesMatchesDriver compares PageRankHandles against the
// classic driver-side PageRank over a Hybrid: ranks must agree bitwise.
func TestPageRankHandlesMatchesDriver(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()

	rng := rand.New(rand.NewSource(61))
	n := 24
	adj := bmat.New(n, n, 4)
	dense := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.15 {
				dense.Set(i, j, 1)
			}
		}
	}
	for bi := 0; bi < adj.IB; bi++ {
		for bj := 0; bj < adj.JB; bj++ {
			rows, cols := adj.BlockDims(bi, bj)
			blk := matrix.NewDense(rows, cols)
			var nz bool
			for i := 0; i < rows; i++ {
				for j := 0; j < cols; j++ {
					v := dense.At(bi*4+i, bj*4+j)
					blk.Set(i, j, v)
					nz = nz || v != 0
				}
			}
			if nz {
				adj.SetBlock(bi, bj, blk)
			}
		}
	}
	popt := ml.PageRankOptions{Damping: 0.85, MaxIterations: 8, Tolerance: 1e-12}

	want, err := ml.PageRank(localEngine(t), adj, popt)
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t, d)
	got, err := ml.PageRankHandles[*Handle](ctx, s, adj, popt)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("iterations %d != %d", got.Iterations, want.Iterations)
	}
	// The spread multiply runs on different substrates (local cuboid vs
	// worker band exec), so the bar here is numerical agreement; the
	// bit-exact bar is covered by the materialized-twin tests above.
	if !got.Ranks.ToDense().EqualApprox(want.Ranks.ToDense(), 1e-12) {
		t.Fatal("handle-resident ranks differ from driver-side ranks")
	}
}
