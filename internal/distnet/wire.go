package distnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"time"

	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/matrix"
	"distme/internal/metrics"
	"distme/internal/obs"
)

// The custom net/rpc codec pair that replaces gob on the driver↔worker
// sockets. One message is one length-prefixed frame assembled scatter-gather
// style: header and structural bytes accumulate in a pooled arena while
// large block-value payloads stay in the blocks' own storage and are shipped
// as extra net.Buffers segments — no per-block copy into a contiguous
// buffer. Block payloads use internal/codec's binary forms (bulk float
// conversion, compact sparse layouts, opt-in fp32/compressed encodings)
// instead of gob's per-element reflection. The framing is parsed entirely
// from the buffered frame, so a body that fails to decode never
// desynchronizes the stream — net/rpc turns it into an error response and
// keeps serving, which is exactly what the block cache's unknown-digest
// recovery relies on.

// errUnknownDigestMsg is the application-level error a worker answers with
// when a digest reference misses its cache (restart, eviction, or epoch
// change). The driver treats it as transient: it forgets what it believed
// this worker had and resends the blocks inline on the retry.
const errUnknownDigestMsg = "distnet: unknown block digest"

// errWireMsg prefixes malformed-frame errors.
var errWire = errors.New("distnet: malformed wire frame")

// Block transport flags inside MultiplyArgs.
const (
	blockInline      = 0 // tag + payload, not cached
	blockInlineCache = 1 // digest + tag + payload; worker caches it
	blockRef         = 2 // digest only; worker resolves from cache
)

// minCacheableBytes keeps tiny blocks out of the digest machinery — a
// 32-byte digest plus tracking buys nothing under this size.
const minCacheableBytes = 256

// minZeroCopyTail is the smallest value payload worth a separate writev
// segment; below it the extra Write call costs more than the copy it saves,
// so small tails are folded into the arena.
const minZeroCopyTail = 4096

// maxWireFrame bounds one frame; anything larger is a corrupt length.
const maxWireFrame = int64(1) << 38

// frameWriter assembles one length-prefixed frame as a pooled arena of
// header and structural bytes plus zero-copy cuts into block value storage.
// flush ships the segments with net.Buffers, patching the 4-byte length
// prefix first; a frame with no cuts goes out with the same single Write
// the copying path used, so byte streams are identical either way.
type frameWriter struct {
	arena []byte // pooled; begins with the 4-byte length placeholder
	cuts  []frameCut
}

// frameCut splices a zero-copy segment into the frame: arena bytes up to
// arenaEnd precede ext.
type frameCut struct {
	arenaEnd int
	ext      []byte
}

func beginFrame() frameWriter {
	return frameWriter{arena: append(codec.GetBuffer(), 0, 0, 0, 0)}
}

func (w *frameWriter) release() { codec.PutBuffer(w.arena) }

func (w *frameWriter) uvarint(v uint64) { w.arena = binary.AppendUvarint(w.arena, v) }

func (w *frameWriter) str(s string) { w.arena = appendString(w.arena, s) }

func (w *frameWriter) bytes(p []byte) { w.arena = append(w.arena, p...) }

func (w *frameWriter) byte1(b byte) { w.arena = append(w.arena, b) }

// size is the frame length the prefix will carry: every byte after the
// 4-byte placeholder, including the zero-copy segments.
func (w *frameWriter) size() int64 {
	n := int64(len(w.arena) - 4)
	for _, c := range w.cuts {
		n += int64(len(c.ext))
	}
	return n
}

// appendInlineBlock emits tag, u32 payload length, payload — keeping large
// raw-value tails as zero-copy cuts instead of copying them into the arena.
func (w *frameWriter) appendInlineBlock(b matrix.Block, enc codec.Encoding) error {
	tagPos := len(w.arena)
	w.arena = append(w.arena, 0, 0, 0, 0, 0) // tag + length placeholder
	out, tag, tail, err := codec.AppendWireSG(w.arena, b, enc)
	if err != nil {
		w.arena = w.arena[:tagPos]
		return err
	}
	w.arena = out
	if len(tail) > 0 && len(tail) < minZeroCopyTail {
		w.arena = append(w.arena, tail...)
		tail = nil
	}
	w.arena[tagPos] = tag
	binary.LittleEndian.PutUint32(w.arena[tagPos+1:], uint32(len(w.arena)-tagPos-5+len(tail)))
	if len(tail) > 0 {
		w.cuts = append(w.cuts, frameCut{arenaEnd: len(w.arena), ext: tail})
	}
	return nil
}

// flush patches the length prefix and writes the frame. Zero-copy segments
// alias block storage, so the blocks must stay live until flush returns —
// both codecs hold their bodies across the write, which guarantees that.
func (w *frameWriter) flush(conn io.Writer) error {
	binary.LittleEndian.PutUint32(w.arena[:4], uint32(w.size()))
	if len(w.cuts) == 0 {
		_, err := conn.Write(w.arena)
		return err
	}
	bufs := make(net.Buffers, 0, 2*len(w.cuts)+1)
	prev := 0
	for _, c := range w.cuts {
		if c.arenaEnd > prev {
			bufs = append(bufs, w.arena[prev:c.arenaEnd])
		}
		bufs = append(bufs, c.ext)
		prev = c.arenaEnd
	}
	if prev < len(w.arena) {
		bufs = append(bufs, w.arena[prev:])
	}
	_, err := bufs.WriteTo(conn)
	return err
}

// readFrame reads one length-prefixed frame into a pooled buffer, growing
// it only as bytes actually arrive (1 MiB steps) so a forged length cannot
// force an outsized allocation. The caller owns the returned buffer and
// must release it with codec.PutBuffer.
func readFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := int64(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxWireFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes", errWire, n)
	}
	const step = 1 << 20
	buf := codec.GetBuffer()
	for int64(len(buf)) < n {
		chunk := n - int64(len(buf))
		if chunk > step {
			chunk = step
		}
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(br, buf[start:]); err != nil {
			codec.PutBuffer(buf)
			return nil, err
		}
	}
	return buf, nil
}

// wireReader is a bounds-checked cursor over one frame.
type wireReader struct {
	buf []byte
	off int
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", errWire)
	}
	r.off += n
	return v, nil
}

func (r *wireReader) take(n int) ([]byte, error) {
	if n < 0 || len(r.buf)-r.off < n {
		return nil, fmt.Errorf("%w: truncated field (%d bytes wanted, %d left)", errWire, n, len(r.buf)-r.off)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wireReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *wireReader) u32() (int, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(b)), nil
}

func (r *wireReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// sendTracker remembers which block digests a member has already received
// recently, so the driver can replace repeats with references. Marking
// happens at encode time ("commit at send"): requests on one connection are
// written and read in order, so a later request's reference can only be
// decoded after the earlier inline copy was. Entries age out when their
// last-sent epoch falls more than the worker cache's lifecycle window
// behind the newest epoch seen — mirroring blockCache's expiry, so the
// driver stops assuming residency around the time the worker drops it.
// Concurrent jobs carry distinct epochs; tracking per digest (not per
// epoch) lets them share dedup state. The tracker is deliberately NOT
// cleared on reconnect — a restarted worker answers the first stale
// reference with the unknown-digest error, runJob calls forget(), and the
// retry ships the blocks inline. A too-optimistic guess always degrades to
// that same clean resend path.
type sendTracker struct {
	mu    sync.Mutex
	epoch uint64 // newest epoch observed
	sent  map[codec.Digest]uint64
}

// seen reports whether dg was already sent within the lifecycle window,
// marking it sent at this epoch otherwise.
func (t *sendTracker) seen(epoch uint64, dg codec.Digest) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sent == nil {
		t.sent = map[codec.Digest]uint64{}
	}
	if epoch > t.epoch {
		t.epoch = epoch
		if t.epoch > DefaultCacheEpochWindow {
			floor := t.epoch - DefaultCacheEpochWindow
			for d, e := range t.sent {
				if e < floor {
					delete(t.sent, d)
				}
			}
		}
	}
	if _, ok := t.sent[dg]; ok {
		t.sent[dg] = t.epoch // refresh: worker-side hit refreshes too
		return true
	}
	t.sent[dg] = epoch
	return false
}

// forget drops everything the driver believed this worker had (after an
// unknown-digest refusal or any other evidence the cache is gone).
func (t *sendTracker) forget() {
	t.mu.Lock()
	t.sent = nil
	t.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Client codec (driver side)

type clientCodec struct {
	conn    io.ReadWriteCloser
	br      *bufio.Reader
	rec     *metrics.Recorder
	tracker *sendTracker
	tracer  *obs.Tracer

	// pending maps in-flight request seq numbers to their trace parent so
	// the response decode can emit a wire.recv span under the same RPC
	// attempt. Touched only when tracing is on.
	pmu        sync.Mutex
	pending    map[uint64]obs.SpanID
	respParent obs.SpanID // parent of the response being decoded (read loop only)

	resp []byte // pooled frame of the in-progress response
	body []byte // its body remainder
}

// newClientCodec builds the driver-side codec. rec (optional) receives
// encode/decode timing and cache accounting; tracker (optional) enables
// digest references for blocks that carry digests; tracer (optional) emits
// wire.send/wire.recv spans under each traced Multiply attempt.
func newClientCodec(conn io.ReadWriteCloser, rec *metrics.Recorder, tracker *sendTracker, tracer *obs.Tracer) rpc.ClientCodec {
	return &clientCodec{conn: conn, br: bufio.NewReader(conn), rec: rec, tracker: tracker, tracer: tracer}
}

func (c *clientCodec) WriteRequest(r *rpc.Request, body any) error {
	start := time.Now()
	w := beginFrame()
	defer w.release()
	w.uvarint(r.Seq)
	w.str(r.ServiceMethod)
	var err error
	parent := obs.SpanID(0)
	tp, tq, tr := -1, -1, -1
	switch v := body.(type) {
	case *MultiplyArgs:
		err = c.appendMultiplyArgs(&w, v)
		parent = obs.SpanID(v.traceSpan)
		tp, tq, tr = v.cuboidP, v.cuboidQ, v.cuboidR
	case *MultiplyBatchArgs:
		err = c.appendMultiplyBatchArgs(&w, v)
		parent = obs.SpanID(v.traceSpan)
	case *PutArgs:
		err = appendPutArgs(&w, v)
		parent = obs.SpanID(v.traceSpan)
	case *GetArgs:
		err = appendGetArgs(&w, v)
		parent = obs.SpanID(v.traceSpan)
	case *FreeArgs:
		err = appendFreeArgs(&w, v)
	case *PinArgs:
		err = appendPinArgs(&w, v)
	case *ExecArgs:
		err = appendExecArgs(&w, v)
		parent = obs.SpanID(v.traceSpan)
	case *PingArgs:
		// no body
	default:
		err = fmt.Errorf("distnet: unsupported request body %T", body)
	}
	if err != nil {
		return err
	}
	n := w.size()
	if c.rec != nil {
		c.rec.AddWireEncode(n, time.Since(start))
	}
	if c.tracer.Enabled() && parent != 0 {
		c.pmu.Lock()
		if c.pending == nil {
			c.pending = map[uint64]obs.SpanID{}
		}
		c.pending[r.Seq] = parent
		c.pmu.Unlock()
		c.tracer.AddCompleted(obs.SpanData{
			Parent: parent, Name: "wire.send", Kind: obs.KindRPC,
			P: tp, Q: tq, R: tr,
			Start: start, End: time.Now(), Bytes: n,
		})
	}
	return w.flush(c.conn)
}

func (c *clientCodec) appendMultiplyArgs(w *frameWriter, a *MultiplyArgs) error {
	for _, v := range [6]int{a.ILo, a.IHi, a.JLo, a.JHi, a.KLo, a.KHi} {
		w.uvarint(uint64(v))
	}
	w.uvarint(a.cacheEpoch)
	w.uvarint(a.traceSpan)
	for _, v := range [3]int{a.cuboidP, a.cuboidQ, a.cuboidR} {
		w.uvarint(uint64(v))
	}
	if a.pull {
		// Pull mode ships the placement manifests instead of the operand
		// blocks — the assigned worker resolves them against its cache, its
		// peers, and (for entries it owns itself) its local store.
		w.byte1(1)
		w.str(a.pullSelf)
		w.arena = codec.AppendManifest(w.arena, a.aManifest)
		w.arena = codec.AppendManifest(w.arena, a.bManifest)
		return nil
	}
	w.byte1(0)
	if err := c.appendBlockRecs(w, a.ABlocks, a.cacheEpoch, a.encoding); err != nil {
		return err
	}
	return c.appendBlockRecs(w, a.BBlocks, a.cacheEpoch, a.encoding)
}

func (c *clientCodec) appendMultiplyBatchArgs(w *frameWriter, a *MultiplyBatchArgs) error {
	w.uvarint(uint64(len(a.Items)))
	for i := range a.Items {
		if err := c.appendMultiplyArgs(w, &a.Items[i]); err != nil {
			return err
		}
	}
	return nil
}

func (c *clientCodec) appendBlockRecs(w *frameWriter, recs []BlockRec, epoch uint64, enc codec.Encoding) error {
	w.uvarint(uint64(len(recs)))
	for i := range recs {
		rec := &recs[i]
		w.uvarint(uint64(rec.Key.I))
		w.uvarint(uint64(rec.Key.J))
		if rec.digest != nil && c.tracker != nil {
			if c.tracker.seen(epoch, *rec.digest) {
				w.byte1(blockRef)
				w.bytes(rec.digest[:])
				if c.rec != nil {
					saved := codec.EncodedBytesEnc(rec.Block, enc) - int64(len(rec.digest))
					if saved < 0 {
						saved = 0
					}
					c.rec.AddCacheRefSent(saved)
				}
				continue
			}
			w.byte1(blockInlineCache)
			w.bytes(rec.digest[:])
		} else {
			w.byte1(blockInline)
		}
		if err := w.appendInlineBlock(rec.Block, enc); err != nil {
			return err
		}
		if enc != codec.EncodingFP64 && c.rec != nil {
			saved := codec.EncodedBytes(rec.Block) - codec.EncodedBytesEnc(rec.Block, enc)
			if saved < 0 {
				saved = 0
			}
			c.rec.AddEncodedBlock(saved)
		}
	}
	return nil
}

func (c *clientCodec) ReadResponseHeader(r *rpc.Response) error {
	frame, err := readFrame(c.br)
	if err != nil {
		return err
	}
	rd := wireReader{buf: frame}
	seq, err1 := rd.uvarint()
	method, err2 := rd.str()
	errStr, err3 := rd.str()
	if err1 != nil || err2 != nil || err3 != nil {
		codec.PutBuffer(frame)
		return fmt.Errorf("%w: response header", errWire)
	}
	r.Seq, r.ServiceMethod, r.Error = seq, method, errStr
	c.resp, c.body = frame, frame[rd.off:]
	c.respParent = 0
	if c.tracer.Enabled() {
		c.pmu.Lock()
		if parent, ok := c.pending[seq]; ok {
			c.respParent = parent
			delete(c.pending, seq)
		}
		c.pmu.Unlock()
	}
	return nil
}

func (c *clientCodec) ReadResponseBody(body any) error {
	defer func() {
		codec.PutBuffer(c.resp)
		c.resp, c.body = nil, nil
	}()
	if body == nil {
		return nil
	}
	start := time.Now()
	n := int64(len(c.body))
	rd := wireReader{buf: c.body}
	var err error
	switch v := body.(type) {
	case *MultiplyReply:
		err = decodeMultiplyReply(&rd, v)
	case *MultiplyBatchReply:
		err = decodeMultiplyBatchReply(&rd, v)
	case *PutReply:
		var b uint64
		if b, err = rd.uvarint(); err == nil {
			v.Bytes = int64(b)
		}
	case *GetReply:
		v.Blocks, err = decodePlainBlocks(&rd)
	case *FreeReply:
		var f uint64
		if f, err = rd.uvarint(); err == nil {
			v.Freed = int(f)
		}
	case *PinReply:
		// no body
	case *ExecReply:
		err = decodeExecReply(&rd, v)
	case *PingReply:
		if v.Hostname, err = rd.str(); err == nil {
			var u uint64
			if u, err = rd.uvarint(); err == nil {
				v.InFlight = int64(u)
			}
			if err == nil {
				if u, err = rd.uvarint(); err == nil {
					v.StoreBytes = int64(u)
				}
			}
			if err == nil {
				if u, err = rd.uvarint(); err == nil {
					v.StoreHandles = int64(u)
				}
			}
			if err == nil {
				if u, err = rd.uvarint(); err == nil {
					v.StoreEvictions = int64(u)
				}
			}
		}
	default:
		err = fmt.Errorf("distnet: unsupported response body %T", body)
	}
	if err == nil && c.rec != nil {
		c.rec.AddWireDecode(n, time.Since(start))
	}
	if err == nil && c.respParent != 0 {
		c.tracer.AddCompleted(obs.SpanData{
			Parent: c.respParent, Name: "wire.recv", Kind: obs.KindRPC,
			P: -1, Q: -1, R: -1,
			Start: start, End: time.Now(), Bytes: n,
		})
	}
	return err
}

func (c *clientCodec) Close() error { return c.conn.Close() }

// ---------------------------------------------------------------------------
// Server codec (worker side)

type serverCodec struct {
	conn   io.ReadWriteCloser
	br     *bufio.Reader
	cache  *blockCache
	tracer *obs.Tracer

	req  []byte // pooled frame of the in-progress request
	body []byte
	wmu  sync.Mutex // WriteResponse may race Close on shutdown paths
}

// NewServerCodec returns the wire-format server codec for one connection,
// with its own block cache — enough for protocol-compatible stand-in
// workers built on rpc.NewServer (tests, tools). Production workers share
// one cache across connections via Serve.
func NewServerCodec(conn io.ReadWriteCloser) rpc.ServerCodec {
	return newServerCodec(conn, newBlockCache(0, 0), nil)
}

func newServerCodec(conn io.ReadWriteCloser, cache *blockCache, tracer *obs.Tracer) rpc.ServerCodec {
	return &serverCodec{conn: conn, br: bufio.NewReader(conn), cache: cache, tracer: tracer}
}

func (s *serverCodec) ReadRequestHeader(r *rpc.Request) error {
	frame, err := readFrame(s.br)
	if err != nil {
		return err
	}
	rd := wireReader{buf: frame}
	seq, err1 := rd.uvarint()
	method, err2 := rd.str()
	if err1 != nil || err2 != nil {
		codec.PutBuffer(frame)
		return fmt.Errorf("%w: request header", errWire)
	}
	r.Seq, r.ServiceMethod = seq, method
	s.req, s.body = frame, frame[rd.off:]
	return nil
}

// ReadRequestBody decodes the typed body from the already-buffered frame.
// Returning an error here is safe: the frame was fully consumed, so net/rpc
// sends the error string back as this call's response and keeps reading —
// the unknown-digest refusal takes exactly that path. Batch bodies decode
// leniently instead: an unknown digest marks only its item failed, so one
// cold cache entry cannot poison the neighbors.
func (s *serverCodec) ReadRequestBody(body any) error {
	defer func() {
		codec.PutBuffer(s.req)
		s.req, s.body = nil, nil
	}()
	if body == nil {
		return nil
	}
	rd := wireReader{buf: s.body}
	switch v := body.(type) {
	case *MultiplyArgs:
		start := time.Now()
		err := decodeMultiplyArgs(&rd, v, s.cache, false)
		if err == nil && s.tracer.Enabled() && v.traceSpan != 0 {
			s.tracer.AddCompleted(obs.SpanData{
				Parent: obs.SpanID(v.traceSpan), Name: "wire.decode", Kind: obs.KindWorker,
				P: v.cuboidP, Q: v.cuboidQ, R: v.cuboidR,
				Start: start, End: time.Now(), Bytes: int64(len(s.body)),
			})
		}
		return err
	case *MultiplyBatchArgs:
		return decodeMultiplyBatchArgs(&rd, v, s.cache)
	case *PutArgs:
		return decodePutArgs(&rd, v)
	case *GetArgs:
		return decodeGetArgs(&rd, v)
	case *FreeArgs:
		return decodeFreeArgs(&rd, v)
	case *PinArgs:
		return decodePinArgs(&rd, v)
	case *ExecArgs:
		return decodeExecArgs(&rd, v)
	case *PingArgs:
		return nil
	default:
		return fmt.Errorf("distnet: unsupported request body %T", body)
	}
}

func (s *serverCodec) WriteResponse(r *rpc.Response, body any) error {
	w := beginFrame()
	defer w.release()
	w.uvarint(r.Seq)
	w.str(r.ServiceMethod)
	w.str(r.Error)
	if r.Error == "" {
		var err error
		switch v := body.(type) {
		case *MultiplyReply:
			err = appendMultiplyReply(&w, v)
		case *MultiplyBatchReply:
			err = appendMultiplyBatchReply(&w, v)
		case *PutReply:
			w.uvarint(uint64(v.Bytes))
		case *GetReply:
			err = appendPlainBlocks(&w, v.Blocks)
		case *FreeReply:
			w.uvarint(uint64(v.Freed))
		case *PinReply:
			// no body
		case *ExecReply:
			appendExecReply(&w, v)
		case *PingReply:
			w.str(v.Hostname)
			w.uvarint(uint64(v.InFlight))
			w.uvarint(uint64(v.StoreBytes))
			w.uvarint(uint64(v.StoreHandles))
			w.uvarint(uint64(v.StoreEvictions))
		default:
			err = fmt.Errorf("distnet: unsupported response body %T", body)
		}
		if err != nil {
			return err
		}
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return w.flush(s.conn)
}

func (s *serverCodec) Close() error { return s.conn.Close() }

// ---------------------------------------------------------------------------
// Typed body layouts (shared by both directions)

// decodeMultiplyArgs parses one cuboid body. In lenient mode an
// unknown-digest reference does not abort the parse: the record keeps a nil
// block, a.decodeErr records the refusal, and the cursor moves on — batch
// framing stays intact around a failed item. Structural corruption is a
// hard error in both modes.
func decodeMultiplyArgs(rd *wireReader, a *MultiplyArgs, cache *blockCache, lenient bool) error {
	for _, p := range [6]*int{&a.ILo, &a.IHi, &a.JLo, &a.JHi, &a.KLo, &a.KHi} {
		v, err := rd.uvarint()
		if err != nil {
			return err
		}
		*p = int(v)
	}
	epoch, err := rd.uvarint()
	if err != nil {
		return err
	}
	a.cacheEpoch = epoch
	if a.traceSpan, err = rd.uvarint(); err != nil {
		return err
	}
	for _, p := range [3]*int{&a.cuboidP, &a.cuboidQ, &a.cuboidR} {
		v, err := rd.uvarint()
		if err != nil {
			return err
		}
		*p = int(v)
	}
	mode, err := rd.u8()
	if err != nil {
		return err
	}
	switch mode {
	case 1:
		// Pull body: self address plus the two placement manifests. A
		// malformed manifest is structural corruption — a hard error in both
		// modes, same as a torn block payload.
		a.pull = true
		if a.pullSelf, err = rd.str(); err != nil {
			return err
		}
		if a.aManifest, err = decodeWireManifest(rd); err != nil {
			return err
		}
		a.bManifest, err = decodeWireManifest(rd)
		return err
	case 0:
		// push body: inline/ref operand blocks follow
	default:
		return fmt.Errorf("%w: unknown multiply transfer mode %d", errWire, mode)
	}
	var miss string
	if a.ABlocks, miss, err = decodeBlockRecs(rd, cache, epoch, lenient); err != nil {
		return err
	}
	if miss != "" {
		a.decodeErr = miss
	}
	if a.BBlocks, miss, err = decodeBlockRecs(rd, cache, epoch, lenient); err != nil {
		return err
	}
	if miss != "" {
		a.decodeErr = miss
	}
	return nil
}

func decodeMultiplyBatchArgs(rd *wireReader, a *MultiplyBatchArgs, cache *blockCache) error {
	n, err := rd.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(len(rd.buf)-rd.off) {
		return fmt.Errorf("%w: %d batch items in %d bytes", errWire, n, len(rd.buf)-rd.off)
	}
	a.Items = make([]MultiplyArgs, n)
	for i := range a.Items {
		if err := decodeMultiplyArgs(rd, &a.Items[i], cache, true); err != nil {
			return err
		}
	}
	return nil
}

func decodeBlockRecs(rd *wireReader, cache *blockCache, epoch uint64, lenient bool) ([]BlockRec, string, error) {
	n, err := rd.uvarint()
	if err != nil {
		return nil, "", err
	}
	// Each record needs at least key + flag bytes; a count beyond the
	// remaining frame is a forgery, rejected before the allocation.
	if n > uint64(len(rd.buf)-rd.off) {
		return nil, "", fmt.Errorf("%w: %d block records in %d bytes", errWire, n, len(rd.buf)-rd.off)
	}
	miss := ""
	recs := make([]BlockRec, 0, n)
	for i := uint64(0); i < n; i++ {
		ki, err1 := rd.uvarint()
		kj, err2 := rd.uvarint()
		flag, err3 := rd.u8()
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, "", fmt.Errorf("%w: block record header", errWire)
		}
		rec := BlockRec{Key: bmat.BlockKey{I: int(ki), J: int(kj)}}
		switch flag {
		case blockRef:
			raw, err := rd.take(len(codec.Digest{}))
			if err != nil {
				return nil, "", err
			}
			var dg codec.Digest
			copy(dg[:], raw)
			blk, ok := cache.lookup(epoch, dg)
			if !ok {
				if !lenient {
					return nil, "", errors.New(errUnknownDigestMsg)
				}
				miss = errUnknownDigestMsg
			} else {
				rec.Block = blk
			}
		case blockInline, blockInlineCache:
			var dg codec.Digest
			if flag == blockInlineCache {
				raw, err := rd.take(len(dg))
				if err != nil {
					return nil, "", err
				}
				copy(dg[:], raw)
			}
			blk, weight, err := decodeInlineBlock(rd)
			if err != nil {
				return nil, "", err
			}
			if flag == blockInlineCache {
				cache.insert(epoch, dg, blk, weight)
			}
			rec.Block = blk
		default:
			return nil, "", fmt.Errorf("%w: unknown block flag %d", errWire, flag)
		}
		recs = append(recs, rec)
	}
	return recs, miss, nil
}

func decodeInlineBlock(rd *wireReader) (matrix.Block, int64, error) {
	tag, err := rd.u8()
	if err != nil {
		return nil, 0, err
	}
	n, err := rd.u32()
	if err != nil {
		return nil, 0, err
	}
	payload, err := rd.take(n)
	if err != nil {
		return nil, 0, err
	}
	blk, err := codec.Decode(tag, payload)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", errWire, err)
	}
	return blk, int64(n), nil
}

// decodeWireManifest bridges codec.DecodeManifest into the frame cursor,
// advancing it past exactly the bytes the manifest consumed.
func decodeWireManifest(rd *wireReader) (*codec.Manifest, error) {
	m, rest, err := codec.DecodeManifest(rd.buf[rd.off:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errWire, err)
	}
	rd.off = len(rd.buf) - len(rest)
	return &m, nil
}

func appendMultiplyReply(w *frameWriter, r *MultiplyReply) error {
	// Pull-resolution counters travel ahead of the C blocks (all zero on
	// push replies, so push traffic costs three bytes).
	w.uvarint(uint64(r.pullHits))
	w.uvarint(uint64(r.pullFetches))
	w.uvarint(uint64(r.pullPeerBytes))
	w.uvarint(uint64(len(r.CBlocks)))
	for i := range r.CBlocks {
		rec := &r.CBlocks[i]
		w.uvarint(uint64(rec.Key.I))
		w.uvarint(uint64(rec.Key.J))
		// C partials always travel as the bit-exact default encoding,
		// whatever encoding the inputs used.
		if err := w.appendInlineBlock(rec.Block, codec.EncodingFP64); err != nil {
			return err
		}
	}
	return nil
}

func decodeMultiplyReply(rd *wireReader, r *MultiplyReply) error {
	hits, err1 := rd.uvarint()
	fetches, err2 := rd.uvarint()
	peerBytes, err3 := rd.uvarint()
	if err1 != nil || err2 != nil || err3 != nil {
		return fmt.Errorf("%w: pull counters", errWire)
	}
	r.pullHits, r.pullFetches, r.pullPeerBytes = int64(hits), int64(fetches), int64(peerBytes)
	n, err := rd.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(len(rd.buf)-rd.off) {
		return fmt.Errorf("%w: %d C blocks in %d bytes", errWire, n, len(rd.buf)-rd.off)
	}
	r.CBlocks = make([]BlockRec, 0, n)
	for i := uint64(0); i < n; i++ {
		ki, err1 := rd.uvarint()
		kj, err2 := rd.uvarint()
		if err1 != nil || err2 != nil {
			return fmt.Errorf("%w: C block header", errWire)
		}
		blk, _, err := decodeInlineBlock(rd)
		if err != nil {
			return err
		}
		r.CBlocks = append(r.CBlocks, BlockRec{Key: bmat.BlockKey{I: int(ki), J: int(kj)}, Block: blk})
	}
	return nil
}

func appendMultiplyBatchReply(w *frameWriter, r *MultiplyBatchReply) error {
	w.uvarint(uint64(len(r.Items)))
	for i := range r.Items {
		it := &r.Items[i]
		w.str(it.Err)
		if it.Err != "" {
			continue
		}
		rep := MultiplyReply{CBlocks: it.CBlocks}
		if err := appendMultiplyReply(w, &rep); err != nil {
			return err
		}
	}
	return nil
}

func decodeMultiplyBatchReply(rd *wireReader, r *MultiplyBatchReply) error {
	n, err := rd.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(len(rd.buf)-rd.off) {
		return fmt.Errorf("%w: %d batch replies in %d bytes", errWire, n, len(rd.buf)-rd.off)
	}
	r.Items = make([]BatchItem, n)
	for i := range r.Items {
		e, err := rd.str()
		if err != nil {
			return err
		}
		r.Items[i].Err = e
		if e != "" {
			continue
		}
		var rep MultiplyReply
		if err := decodeMultiplyReply(rd, &rep); err != nil {
			return err
		}
		r.Items[i].CBlocks = rep.CBlocks
	}
	return nil
}
