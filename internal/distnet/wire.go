package distnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/rpc"
	"sync"
	"time"

	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/matrix"
	"distme/internal/metrics"
	"distme/internal/obs"
)

// The custom net/rpc codec pair that replaces gob on the driver↔worker
// sockets. One message is one length-prefixed frame built in a pooled
// buffer and written with a single conn.Write; block payloads inside the
// frame use internal/codec's binary forms (bulk float conversion, compact
// sparse layouts) instead of gob's per-element reflection. The framing is
// parsed entirely from the buffered frame, so a body that fails to decode
// never desynchronizes the stream — net/rpc turns it into an error response
// and keeps serving, which is exactly what the block cache's unknown-digest
// recovery relies on.

// errUnknownDigestMsg is the application-level error a worker answers with
// when a digest reference misses its cache (restart, eviction, or epoch
// change). The driver treats it as transient: it forgets what it believed
// this worker had and resends the blocks inline on the retry.
const errUnknownDigestMsg = "distnet: unknown block digest"

// errWireMsg prefixes malformed-frame errors.
var errWire = errors.New("distnet: malformed wire frame")

// Block transport flags inside MultiplyArgs.
const (
	blockInline      = 0 // tag + payload, not cached
	blockInlineCache = 1 // digest + tag + payload; worker caches it
	blockRef         = 2 // digest only; worker resolves from cache
)

// minCacheableBytes keeps tiny blocks out of the digest machinery — a
// 32-byte digest plus tracking buys nothing under this size.
const minCacheableBytes = 256

// maxWireFrame bounds one frame; anything larger is a corrupt length.
const maxWireFrame = int64(1) << 38

// writeFrameBuf finalizes a frame built in buf (whose first 4 bytes were
// reserved) and writes it with one conn.Write.
func writeFrameBuf(w io.Writer, buf []byte) error {
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_, err := w.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame into a pooled buffer, growing
// it only as bytes actually arrive (1 MiB steps) so a forged length cannot
// force an outsized allocation. The caller owns the returned buffer and
// must release it with codec.PutBuffer.
func readFrame(br *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := int64(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxWireFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes", errWire, n)
	}
	const step = 1 << 20
	buf := codec.GetBuffer()
	for int64(len(buf)) < n {
		chunk := n - int64(len(buf))
		if chunk > step {
			chunk = step
		}
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(br, buf[start:]); err != nil {
			codec.PutBuffer(buf)
			return nil, err
		}
	}
	return buf, nil
}

// wireReader is a bounds-checked cursor over one frame.
type wireReader struct {
	buf []byte
	off int
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", errWire)
	}
	r.off += n
	return v, nil
}

func (r *wireReader) take(n int) ([]byte, error) {
	if n < 0 || len(r.buf)-r.off < n {
		return nil, fmt.Errorf("%w: truncated field (%d bytes wanted, %d left)", errWire, n, len(r.buf)-r.off)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *wireReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *wireReader) u32() (int, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint32(b)), nil
}

func (r *wireReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// sendTracker remembers which block digests a member has already received
// in the current job epoch, so the driver can replace repeats with
// references. Marking happens at encode time ("commit at send"): requests
// on one connection are written and read in order, so a later request's
// reference can only be decoded after the earlier inline copy was. The
// tracker is deliberately NOT cleared on reconnect — a restarted worker
// answers the first stale reference with the unknown-digest error, runJob
// calls forget(), and the retry ships the blocks inline.
type sendTracker struct {
	mu    sync.Mutex
	epoch uint64
	sent  map[codec.Digest]struct{}
}

// seen reports whether dg was already sent this epoch, marking it sent
// otherwise. An epoch change resets the set.
func (t *sendTracker) seen(epoch uint64, dg codec.Digest) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.epoch != epoch || t.sent == nil {
		t.epoch = epoch
		t.sent = map[codec.Digest]struct{}{}
	}
	if _, ok := t.sent[dg]; ok {
		return true
	}
	t.sent[dg] = struct{}{}
	return false
}

// forget drops everything the driver believed this worker had (after an
// unknown-digest refusal or any other evidence the cache is gone).
func (t *sendTracker) forget() {
	t.mu.Lock()
	t.sent = nil
	t.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Client codec (driver side)

type clientCodec struct {
	conn    io.ReadWriteCloser
	br      *bufio.Reader
	rec     *metrics.Recorder
	tracker *sendTracker
	tracer  *obs.Tracer

	// pending maps in-flight request seq numbers to their trace parent so
	// the response decode can emit a wire.recv span under the same RPC
	// attempt. Touched only when tracing is on.
	pmu        sync.Mutex
	pending    map[uint64]obs.SpanID
	respParent obs.SpanID // parent of the response being decoded (read loop only)

	resp []byte // pooled frame of the in-progress response
	body []byte // its body remainder
}

// newClientCodec builds the driver-side codec. rec (optional) receives
// encode/decode timing and cache accounting; tracker (optional) enables
// digest references for blocks that carry digests; tracer (optional) emits
// wire.send/wire.recv spans under each traced Multiply attempt.
func newClientCodec(conn io.ReadWriteCloser, rec *metrics.Recorder, tracker *sendTracker, tracer *obs.Tracer) rpc.ClientCodec {
	return &clientCodec{conn: conn, br: bufio.NewReader(conn), rec: rec, tracker: tracker, tracer: tracer}
}

func (c *clientCodec) WriteRequest(r *rpc.Request, body any) error {
	start := time.Now()
	buf := codec.GetBuffer()
	defer func() { codec.PutBuffer(buf) }()
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = appendString(buf, r.ServiceMethod)
	var err error
	switch v := body.(type) {
	case *MultiplyArgs:
		buf, err = c.appendMultiplyArgs(buf, v)
	case *PingArgs:
		// no body
	default:
		err = fmt.Errorf("distnet: unsupported request body %T", body)
	}
	if err != nil {
		return err
	}
	if c.rec != nil {
		c.rec.AddWireEncode(int64(len(buf)-4), time.Since(start))
	}
	if c.tracer.Enabled() {
		if a, ok := body.(*MultiplyArgs); ok && a.traceSpan != 0 {
			parent := obs.SpanID(a.traceSpan)
			c.pmu.Lock()
			if c.pending == nil {
				c.pending = map[uint64]obs.SpanID{}
			}
			c.pending[r.Seq] = parent
			c.pmu.Unlock()
			c.tracer.AddCompleted(obs.SpanData{
				Parent: parent, Name: "wire.send", Kind: obs.KindRPC,
				P: a.cuboidP, Q: a.cuboidQ, R: a.cuboidR,
				Start: start, End: time.Now(), Bytes: int64(len(buf) - 4),
			})
		}
	}
	return writeFrameBuf(c.conn, buf)
}

func (c *clientCodec) appendMultiplyArgs(buf []byte, a *MultiplyArgs) ([]byte, error) {
	for _, v := range [6]int{a.ILo, a.IHi, a.JLo, a.JHi, a.KLo, a.KHi} {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	buf = binary.AppendUvarint(buf, a.cacheEpoch)
	buf = binary.AppendUvarint(buf, a.traceSpan)
	for _, v := range [3]int{a.cuboidP, a.cuboidQ, a.cuboidR} {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	var err error
	if buf, err = c.appendBlockRecs(buf, a.ABlocks, a.cacheEpoch); err != nil {
		return nil, err
	}
	return c.appendBlockRecs(buf, a.BBlocks, a.cacheEpoch)
}

func (c *clientCodec) appendBlockRecs(buf []byte, recs []BlockRec, epoch uint64) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for i := range recs {
		rec := &recs[i]
		buf = binary.AppendUvarint(buf, uint64(rec.Key.I))
		buf = binary.AppendUvarint(buf, uint64(rec.Key.J))
		if rec.digest != nil && c.tracker != nil {
			if c.tracker.seen(epoch, *rec.digest) {
				buf = append(buf, blockRef)
				buf = append(buf, rec.digest[:]...)
				if c.rec != nil {
					saved := codec.EncodedBytes(rec.Block) - int64(len(rec.digest))
					if saved < 0 {
						saved = 0
					}
					c.rec.AddCacheRefSent(saved)
				}
				continue
			}
			buf = append(buf, blockInlineCache)
			buf = append(buf, rec.digest[:]...)
		} else {
			buf = append(buf, blockInline)
		}
		var err error
		if buf, err = appendInlineBlock(buf, rec.Block); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// appendInlineBlock emits tag, u32 payload length, payload.
func appendInlineBlock(buf []byte, b matrix.Block) ([]byte, error) {
	tagPos := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0) // tag + length placeholder
	var tag uint8
	var err error
	buf, tag, err = codec.AppendWire(buf, b)
	if err != nil {
		return nil, err
	}
	buf[tagPos] = tag
	binary.LittleEndian.PutUint32(buf[tagPos+1:], uint32(len(buf)-tagPos-5))
	return buf, nil
}

func (c *clientCodec) ReadResponseHeader(r *rpc.Response) error {
	frame, err := readFrame(c.br)
	if err != nil {
		return err
	}
	rd := wireReader{buf: frame}
	seq, err1 := rd.uvarint()
	method, err2 := rd.str()
	errStr, err3 := rd.str()
	if err1 != nil || err2 != nil || err3 != nil {
		codec.PutBuffer(frame)
		return fmt.Errorf("%w: response header", errWire)
	}
	r.Seq, r.ServiceMethod, r.Error = seq, method, errStr
	c.resp, c.body = frame, frame[rd.off:]
	c.respParent = 0
	if c.tracer.Enabled() {
		c.pmu.Lock()
		if parent, ok := c.pending[seq]; ok {
			c.respParent = parent
			delete(c.pending, seq)
		}
		c.pmu.Unlock()
	}
	return nil
}

func (c *clientCodec) ReadResponseBody(body any) error {
	defer func() {
		codec.PutBuffer(c.resp)
		c.resp, c.body = nil, nil
	}()
	if body == nil {
		return nil
	}
	start := time.Now()
	n := int64(len(c.body))
	rd := wireReader{buf: c.body}
	var err error
	switch v := body.(type) {
	case *MultiplyReply:
		err = decodeMultiplyReply(&rd, v)
	case *PingReply:
		v.Hostname, err = rd.str()
	default:
		err = fmt.Errorf("distnet: unsupported response body %T", body)
	}
	if err == nil && c.rec != nil {
		c.rec.AddWireDecode(n, time.Since(start))
	}
	if err == nil && c.respParent != 0 {
		c.tracer.AddCompleted(obs.SpanData{
			Parent: c.respParent, Name: "wire.recv", Kind: obs.KindRPC,
			P: -1, Q: -1, R: -1,
			Start: start, End: time.Now(), Bytes: n,
		})
	}
	return err
}

func (c *clientCodec) Close() error { return c.conn.Close() }

// ---------------------------------------------------------------------------
// Server codec (worker side)

type serverCodec struct {
	conn   io.ReadWriteCloser
	br     *bufio.Reader
	cache  *blockCache
	tracer *obs.Tracer

	req  []byte // pooled frame of the in-progress request
	body []byte
	wmu  sync.Mutex // WriteResponse may race Close on shutdown paths
}

// NewServerCodec returns the wire-format server codec for one connection,
// with its own block cache — enough for protocol-compatible stand-in
// workers built on rpc.NewServer (tests, tools). Production workers share
// one cache across connections via Serve.
func NewServerCodec(conn io.ReadWriteCloser) rpc.ServerCodec {
	return newServerCodec(conn, newBlockCache(0), nil)
}

func newServerCodec(conn io.ReadWriteCloser, cache *blockCache, tracer *obs.Tracer) rpc.ServerCodec {
	return &serverCodec{conn: conn, br: bufio.NewReader(conn), cache: cache, tracer: tracer}
}

func (s *serverCodec) ReadRequestHeader(r *rpc.Request) error {
	frame, err := readFrame(s.br)
	if err != nil {
		return err
	}
	rd := wireReader{buf: frame}
	seq, err1 := rd.uvarint()
	method, err2 := rd.str()
	if err1 != nil || err2 != nil {
		codec.PutBuffer(frame)
		return fmt.Errorf("%w: request header", errWire)
	}
	r.Seq, r.ServiceMethod = seq, method
	s.req, s.body = frame, frame[rd.off:]
	return nil
}

// ReadRequestBody decodes the typed body from the already-buffered frame.
// Returning an error here is safe: the frame was fully consumed, so net/rpc
// sends the error string back as this call's response and keeps reading —
// the unknown-digest refusal takes exactly that path.
func (s *serverCodec) ReadRequestBody(body any) error {
	defer func() {
		codec.PutBuffer(s.req)
		s.req, s.body = nil, nil
	}()
	if body == nil {
		return nil
	}
	rd := wireReader{buf: s.body}
	switch v := body.(type) {
	case *MultiplyArgs:
		start := time.Now()
		err := decodeMultiplyArgs(&rd, v, s.cache)
		if err == nil && s.tracer.Enabled() && v.traceSpan != 0 {
			s.tracer.AddCompleted(obs.SpanData{
				Parent: obs.SpanID(v.traceSpan), Name: "wire.decode", Kind: obs.KindWorker,
				P: v.cuboidP, Q: v.cuboidQ, R: v.cuboidR,
				Start: start, End: time.Now(), Bytes: int64(len(s.body)),
			})
		}
		return err
	case *PingArgs:
		return nil
	default:
		return fmt.Errorf("distnet: unsupported request body %T", body)
	}
}

func (s *serverCodec) WriteResponse(r *rpc.Response, body any) error {
	buf := codec.GetBuffer()
	defer func() { codec.PutBuffer(buf) }()
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = appendString(buf, r.ServiceMethod)
	buf = appendString(buf, r.Error)
	if r.Error == "" {
		var err error
		switch v := body.(type) {
		case *MultiplyReply:
			buf, err = appendMultiplyReply(buf, v)
		case *PingReply:
			buf = appendString(buf, v.Hostname)
		default:
			err = fmt.Errorf("distnet: unsupported response body %T", body)
		}
		if err != nil {
			return err
		}
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return writeFrameBuf(s.conn, buf)
}

func (s *serverCodec) Close() error { return s.conn.Close() }

// ---------------------------------------------------------------------------
// Typed body layouts (shared by both directions)

func decodeMultiplyArgs(rd *wireReader, a *MultiplyArgs, cache *blockCache) error {
	for _, p := range [6]*int{&a.ILo, &a.IHi, &a.JLo, &a.JHi, &a.KLo, &a.KHi} {
		v, err := rd.uvarint()
		if err != nil {
			return err
		}
		*p = int(v)
	}
	epoch, err := rd.uvarint()
	if err != nil {
		return err
	}
	a.cacheEpoch = epoch
	if a.traceSpan, err = rd.uvarint(); err != nil {
		return err
	}
	for _, p := range [3]*int{&a.cuboidP, &a.cuboidQ, &a.cuboidR} {
		v, err := rd.uvarint()
		if err != nil {
			return err
		}
		*p = int(v)
	}
	if a.ABlocks, err = decodeBlockRecs(rd, cache, epoch); err != nil {
		return err
	}
	a.BBlocks, err = decodeBlockRecs(rd, cache, epoch)
	return err
}

func decodeBlockRecs(rd *wireReader, cache *blockCache, epoch uint64) ([]BlockRec, error) {
	n, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	// Each record needs at least key + flag bytes; a count beyond the
	// remaining frame is a forgery, rejected before the allocation.
	if n > uint64(len(rd.buf)-rd.off) {
		return nil, fmt.Errorf("%w: %d block records in %d bytes", errWire, n, len(rd.buf)-rd.off)
	}
	recs := make([]BlockRec, 0, n)
	for i := uint64(0); i < n; i++ {
		ki, err1 := rd.uvarint()
		kj, err2 := rd.uvarint()
		flag, err3 := rd.u8()
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%w: block record header", errWire)
		}
		rec := BlockRec{Key: bmat.BlockKey{I: int(ki), J: int(kj)}}
		switch flag {
		case blockRef:
			raw, err := rd.take(len(codec.Digest{}))
			if err != nil {
				return nil, err
			}
			var dg codec.Digest
			copy(dg[:], raw)
			blk, ok := cache.lookup(epoch, dg)
			if !ok {
				return nil, errors.New(errUnknownDigestMsg)
			}
			rec.Block = blk
		case blockInline, blockInlineCache:
			var dg codec.Digest
			if flag == blockInlineCache {
				raw, err := rd.take(len(dg))
				if err != nil {
					return nil, err
				}
				copy(dg[:], raw)
			}
			blk, weight, err := decodeInlineBlock(rd)
			if err != nil {
				return nil, err
			}
			if flag == blockInlineCache {
				cache.insert(epoch, dg, blk, weight)
			}
			rec.Block = blk
		default:
			return nil, fmt.Errorf("%w: unknown block flag %d", errWire, flag)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

func decodeInlineBlock(rd *wireReader) (matrix.Block, int64, error) {
	tag, err := rd.u8()
	if err != nil {
		return nil, 0, err
	}
	n, err := rd.u32()
	if err != nil {
		return nil, 0, err
	}
	payload, err := rd.take(n)
	if err != nil {
		return nil, 0, err
	}
	blk, err := codec.Decode(tag, payload)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", errWire, err)
	}
	return blk, int64(n), nil
}

func appendMultiplyReply(buf []byte, r *MultiplyReply) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(r.CBlocks)))
	var err error
	for i := range r.CBlocks {
		rec := &r.CBlocks[i]
		buf = binary.AppendUvarint(buf, uint64(rec.Key.I))
		buf = binary.AppendUvarint(buf, uint64(rec.Key.J))
		if buf, err = appendInlineBlock(buf, rec.Block); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func decodeMultiplyReply(rd *wireReader, r *MultiplyReply) error {
	n, err := rd.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(len(rd.buf)-rd.off) {
		return fmt.Errorf("%w: %d C blocks in %d bytes", errWire, n, len(rd.buf)-rd.off)
	}
	r.CBlocks = make([]BlockRec, 0, n)
	for i := uint64(0); i < n; i++ {
		ki, err1 := rd.uvarint()
		kj, err2 := rd.uvarint()
		if err1 != nil || err2 != nil {
			return fmt.Errorf("%w: C block header", errWire)
		}
		blk, _, err := decodeInlineBlock(rd)
		if err != nil {
			return err
		}
		r.CBlocks = append(r.CBlocks, BlockRec{Key: bmat.BlockKey{I: int(ki), J: int(kj)}, Block: blk})
	}
	return nil
}
