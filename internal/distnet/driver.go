package distnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/metrics"
	"distme/internal/obs"
	"distme/internal/shuffle"
)

// Driver executes cuboid plans across remote workers. It owns a dynamic
// membership table (one entry per worker, with a heartbeat failure detector
// driving Alive/Suspect/Dead states), assigns cuboids to live members with
// per-RPC deadlines and capped-exponential-backoff retries, reconnects dead
// members, and — when the pool drains to zero — computes the remaining
// cuboids locally with the exact arithmetic the workers use, so the output
// is byte-identical no matter what the network did. Every byte that crosses
// a socket is counted.
type Driver struct {
	opts   Options
	wire   *wireCounter
	rec    *metrics.Recorder
	tracer *obs.Tracer
	dbg    *obs.Server

	// epoch numbers multiply jobs; digest references on the wire are scoped
	// to one epoch so worker caches never serve a previous job's blocks.
	// Block-store sessions draw their epochs from the same counter.
	epoch atomic.Uint64

	// handleID numbers block-store handles, globally across sessions; a
	// lineage rebuild assigns fresh ids so stale bands on a worker that
	// missed the recovery wipe are unreachable rather than wrong.
	handleID atomic.Uint64

	// inflight counts cuboids dispatched but not yet aggregated, surfaced
	// by the debug endpoint.
	inflight atomic.Int64

	// activeJobs counts multiply jobs currently inside the driver —
	// the serving plane's concurrency gauge.
	activeJobs atomic.Int64

	// serveDebug, when registered via SetServeDebug, contributes the
	// serving plane's block to DebugSnapshot.
	serveMu    sync.Mutex
	serveDebug func() any

	mu      sync.Mutex
	members []*member
	rr      int // round-robin scheduling cursor
	closed  bool

	// jmu guards jrand, the retry-backoff jitter source (full jitter —
	// uniform in (0, backoff] — so synchronized retries cannot stampede a
	// recovering worker; Options.JitterSeed pins it for deterministic tests).
	jmu   sync.Mutex
	jrand *rand.Rand

	// ewmaRPC is a rolling mean of successful cuboid RPC durations; an RPC
	// slower than stragglerMultiple times the mean (after warmup) counts as
	// a straggler on its member — the health plane's slowness signal.
	ewmaMu  sync.Mutex
	ewmaRPC time.Duration
	ewmaN   int64

	// health is the windowed-score state behind ClusterHealth (health.go);
	// scaler is the running autoscaler supervisor, if any (autoscaler.go).
	health   healthState
	scalerMu sync.Mutex
	scaler   *scalerRun

	stopDetector chan struct{}
	detectorDone chan struct{}
}

// stragglerMultiple and stragglerMinSamples tune straggler detection: after
// stragglerMinSamples successful RPCs, one slower than stragglerMultiple
// times the rolling mean is counted against its worker.
const (
	stragglerMultiple   = 3
	stragglerMinSamples = 8
)

// Options tunes the driver's elasticity machinery. The zero value gives
// production defaults; tests shrink the intervals.
type Options struct {
	// HeartbeatInterval is the failure detector's probe period
	// (default 200ms).
	HeartbeatInterval time.Duration
	// PingTimeout bounds one heartbeat (and the dial-time ping); default 2s.
	PingTimeout time.Duration
	// CallTimeout bounds one Multiply RPC; default 60s. A call past its
	// deadline abandons the connection (net/rpc cannot cancel a call) and
	// the cuboid reassigns.
	CallTimeout time.Duration
	// SuspectAfter is the missed-beat count that demotes Alive → Suspect
	// (default 1); DeadAfter the count that demotes to Dead (default 3).
	SuspectAfter int
	DeadAfter    int
	// JobAttempts is how many scheduling attempts one cuboid gets across
	// the membership before local fallback (default 6).
	JobAttempts int
	// PerWorkerInflight bounds concurrent Multiply RPCs per worker
	// (default 4); excess cuboids queue driver-side, where a newly added
	// worker can claim them.
	PerWorkerInflight int
	// RetryBackoff is the initial inter-attempt backoff (default 2ms),
	// doubled per attempt and capped at MaxBackoff (default 250ms). The
	// actual sleep is full-jittered: uniform in (0, backoff], so retries
	// from many concurrent cuboids spread out instead of stampeding a
	// recovering worker in lockstep.
	RetryBackoff time.Duration
	MaxBackoff   time.Duration
	// JitterSeed pins the backoff jitter source for deterministic tests;
	// 0 seeds from the clock. Jitter affects only retry timing, never
	// results: outputs stay byte-identical under any seed.
	JitterSeed int64
	// DisableHeartbeat turns the failure detector off (deterministic
	// tests); dead members are then reconnected only on demand.
	DisableHeartbeat bool
	// DisableLocalFallback makes a fully-drained pool an error
	// (ErrWorkerDead / ErrNoWorkers) instead of computing locally.
	DisableLocalFallback bool
	// DisableBlockCache ships every block inline on every send instead of
	// replacing repeats with content-digest references — the pre-cache wire
	// behavior, kept for measurement baselines and bisection.
	DisableBlockCache bool
	// Encoding selects the wire encoding for input block payloads (the A
	// and B blocks shipped to workers): codec.EncodingFP64 (the default,
	// bit-exact), codec.EncodingFP32 (halves value bytes; LOSSY — inputs
	// round to float32 on the wire, so opt in only when ~7 significant
	// digits suffice), or codec.EncodingCompress (lossless XOR+varint).
	// Replies always return bit-exact fp64 partials whatever the inputs
	// used. MultiplyAuto prices the encoding's byte ratio into Eq.(4), so
	// a cheaper encoding can change the chosen partitioning.
	Encoding codec.Encoding
	// Transfer selects the data plane for pipeline operator band exchange
	// (Session.Run): TransferPush gathers peer bands eagerly up front,
	// TransferPull streams them on demand (prefetch overlapped with compute,
	// bounded-concurrency transpose fetches), and TransferAuto (the zero
	// value) prices both per pipeline — pull is chosen exactly when its
	// Eq.(4) extension, the peer term at full fan-out, is strictly cheaper.
	// Results are bit-identical across modes.
	Transfer core.Transfer
	// BatchBytes, when positive, coalesces cuboids whose encoded block
	// payloads are under this size into MultiplyBatch RPCs — one round trip
	// per group instead of one per cuboid on many-tiny-cuboids plans. Items
	// fail independently; a failed item is retried on its own. 0 disables
	// batching.
	BatchBytes int64
	// MaxBatchItems caps cuboids per MultiplyBatch call (default 32).
	MaxBatchItems int
	// Recorder receives membership, reconnect, and heartbeat counters; a
	// private recorder is used when nil (see Driver.NetStats).
	Recorder *metrics.Recorder
	// Tracer, when set, records spans for every multiply: one root per
	// Multiply call, one span per dispatched cuboid, one per RPC attempt
	// (with wire send/recv children), and an aggregation span. The trace
	// span ID also travels to workers so their compute spans parent into
	// the same tree when driver and worker share a tracer (in-process
	// tests) or are merged offline. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// DebugAddr, when non-empty, serves the live introspection endpoints
	// (/debug/distme JSON snapshot, net/http/pprof) on that address for the
	// driver's lifetime. Port 0 picks a free port; see Driver.DebugAddr.
	DebugAddr string
}

func (o Options) withDefaults() Options {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 200 * time.Millisecond
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 60 * time.Second
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 1
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 3
	}
	if o.JobAttempts <= 0 {
		o.JobAttempts = 6
	}
	if o.PerWorkerInflight <= 0 {
		o.PerWorkerInflight = 4
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 250 * time.Millisecond
	}
	if o.MaxBatchItems <= 0 {
		o.MaxBatchItems = 32
	}
	return o
}

// wireCounter meters real socket traffic in both directions.
type wireCounter struct {
	sent, received atomic.Int64
}

// countingConn wraps a net.Conn with the driver's byte meters.
type countingConn struct {
	net.Conn
	wire *wireCounter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.wire.received.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.wire.sent.Add(int64(n))
	return n, err
}

// Dial connects to the workers with default options. Every address must
// answer a Ping before the driver is returned.
func Dial(addrs []string) (*Driver, error) {
	return DialOptions(addrs, Options{})
}

// DialOptions connects to the workers with explicit elasticity options.
func DialOptions(addrs []string, opts Options) (*Driver, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distnet: no worker addresses")
	}
	if !opts.Encoding.Valid() {
		return nil, fmt.Errorf("distnet: unknown wire encoding %d", opts.Encoding)
	}
	if !opts.Transfer.Valid() {
		return nil, fmt.Errorf("distnet: unknown transfer mode %d", opts.Transfer)
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	d := &Driver{
		opts:   opts.withDefaults(),
		wire:   &wireCounter{},
		rec:    opts.Recorder,
		tracer: opts.Tracer,
		jrand:  rand.New(rand.NewSource(seed)),
	}
	if d.rec == nil {
		d.rec = &metrics.Recorder{}
	}
	for _, addr := range addrs {
		m := d.newMember(addr)
		if err := d.connect(m, false); err != nil {
			d.Close()
			return nil, fmt.Errorf("distnet: dial %s: %w", addr, err)
		}
		d.members = append(d.members, m)
	}
	if opts.DebugAddr != "" {
		srv, err := obs.Serve(opts.DebugAddr, func() any { return d.DebugSnapshot() })
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("distnet: debug listener %s: %w", opts.DebugAddr, err)
		}
		d.dbg = srv
	}
	if !d.opts.DisableHeartbeat {
		d.stopDetector = make(chan struct{})
		d.detectorDone = make(chan struct{})
		go d.runDetector()
	}
	return d, nil
}

// Close shuts the autoscaler supervisor (if running), the detector, and
// every client connection. It is idempotent.
func (d *Driver) Close() {
	d.StopAutoscaler()
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	members := append([]*member(nil), d.members...)
	stop, done := d.stopDetector, d.detectorDone
	d.mu.Unlock()
	if d.dbg != nil {
		d.dbg.Close()
	}
	if stop != nil {
		close(stop)
		<-done
	}
	for _, m := range members {
		m.mu.Lock()
		client := m.client
		m.client = nil
		if m.state != StateRemoved {
			m.state = StateDead
		}
		m.mu.Unlock()
		if client != nil {
			client.Close()
		}
	}
}

// WireBytes reports the real bytes sent and received over the sockets since
// Dial.
func (d *Driver) WireBytes() (sent, received int64) {
	return d.wire.sent.Load(), d.wire.received.Load()
}

// NetStats returns the driver's membership, reconnect, and heartbeat
// counters.
func (d *Driver) NetStats() metrics.NetStats { return d.rec.Net() }

// Tracer returns the tracer the driver records spans into (nil when
// tracing is off).
func (d *Driver) Tracer() *obs.Tracer { return d.tracer }

// DebugAddr returns the bound address of the driver's debug endpoint, or ""
// when Options.DebugAddr was empty.
func (d *Driver) DebugAddr() string {
	if d.dbg == nil {
		return ""
	}
	return d.dbg.Addr()
}

// ActiveJobs reports how many multiply jobs are currently executing inside
// the driver — the concurrency gauge the serving plane's admission
// controller reads alongside ClusterHealth.
func (d *Driver) ActiveJobs() int64 { return d.activeJobs.Load() }

// PerWorkerInflight reports the per-worker concurrent-RPC bound the driver
// schedules under (Options.PerWorkerInflight after defaults) — one factor of
// the serving plane's cuboid-wave capacity estimate.
func (d *Driver) PerWorkerInflight() int { return d.opts.PerWorkerInflight }

// SetServeDebug registers a provider whose value is embedded as the "serve"
// block of the driver's /debug/distme snapshot — the serving plane installs
// its queue/tenant snapshot here so one endpoint shows the whole stack.
// A nil provider removes the block.
func (d *Driver) SetServeDebug(fn func() any) {
	d.serveMu.Lock()
	d.serveDebug = fn
	d.serveMu.Unlock()
}

// call performs one RPC on a member under the deadline, applying the
// failure state machine: transport errors and timeouts declare the member
// dead (its connection is unusable either way) so the scheduler excludes it
// until a reconnect succeeds. Application-level errors (rpc.ServerError)
// pass through untouched — the worker is alive, the request was bad.
func (d *Driver) call(m *member, method string, args, reply any, timeout time.Duration) error {
	_, client := m.snapshot()
	if client == nil {
		return fmt.Errorf("%w: %s is not connected", ErrWorkerDead, m.addr)
	}
	err := rpcCall(client, method, args, reply, timeout)
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		d.rec.AddDeadlineTimeout()
		m.timeouts.Add(1)
		d.declareDead(m, client)
		return fmt.Errorf("%w (%w): %s.%s on %s after %v",
			ErrDeadlineExceeded, context.DeadlineExceeded, serviceName, method, m.addr, timeout)
	}
	var se rpc.ServerError
	if errors.As(err, &se) {
		if se.Error() == errWorkerDrainingMsg {
			// The worker is shutting down gracefully; stop offering it work
			// (acquireMember skips draining members) until a probe succeeds.
			m.draining.Store(true)
		}
		return err
	}
	d.declareDead(m, client)
	return fmt.Errorf("%w: %s: %v", ErrWorkerDead, m.addr, err)
}

// runJob schedules one cuboid: pick a live member, call under the deadline,
// and on failure retry with capped exponential backoff against the next
// live member (reconnecting dead ones when the pool looks empty). When
// every attempt fails — or no worker is left — the cuboid is computed
// locally with the workers' exact arithmetic, unless fallback is disabled.
//
// parent is the cuboid's span: each RPC attempt (and the local fallback)
// records a child under it, so retries and reassignments are visible as
// sibling attempts on the timeline.
func (d *Driver) runJob(ctx context.Context, args *MultiplyArgs, parent obs.Span) (*MultiplyReply, error) {
	if args.pull {
		d.rec.AddPullJob()
	}
	backoff := d.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < d.opts.JobAttempts; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m, anyLive := d.acquireMember()
		if m == nil {
			if anyLive {
				// Every live member's in-flight window is full: wait for a
				// slot (or a new member) without burning a retry attempt.
				time.Sleep(200 * time.Microsecond)
				continue
			}
			if d.reconnectAny() {
				continue
			}
			// Keep the real failure when a call already failed; the drained
			// pool is only the reason we stopped retrying.
			if lastErr == nil {
				lastErr = ErrNoWorkers
			}
			break
		}
		asp := d.tracer.Start(parent.ID(), "rpc.multiply", obs.KindRPC)
		if asp.Active() {
			asp.SetWorker(m.addr)
			asp.SetCuboid(args.cuboidP, args.cuboidQ, args.cuboidR)
		}
		args.traceSpan = uint64(asp.ID())
		if args.pull {
			// The assigned worker must know which manifest owner is itself;
			// ownership is decided at dispatch, not plan time.
			args.pullSelf = m.addr
		}
		var reply MultiplyReply
		callStart := time.Now()
		err := d.call(m, "Multiply", args, &reply, d.opts.CallTimeout)
		m.release()
		if err != nil && asp.Active() {
			asp.SetAttr("error", err.Error())
		}
		if err == nil {
			if d.noteRPCDuration(m, time.Since(callStart)) && asp.Active() {
				asp.SetAttr("straggler", "true")
			}
			if args.pull {
				d.rec.AddPullReply(reply.pullHits, reply.pullFetches, reply.pullPeerBytes)
			}
			asp.End()
			return &reply, nil
		}
		asp.End()
		m.retries.Add(1)
		lastErr = err
		var se rpc.ServerError
		if errors.As(err, &se) {
			if se.Error() == errUnknownDigestMsg {
				// The worker no longer holds blocks we sent as references
				// (restart, eviction, or epoch turnover). Forget what we
				// believed it had; the retry ships everything inline.
				d.rec.AddCacheRefMiss()
				m.tracker.forget()
			} else if strings.Contains(se.Error(), errPullPrefix) {
				// Pull resolution failed on the worker — a peer died
				// mid-fetch, or a manifest entry points at an evicted band.
				// The driver is the pull plane's last resort: when it holds
				// the operand blocks, the retry downgrades to push and ships
				// them inline.
				d.rec.AddPullFallback()
				if args.pull && args.pullInline {
					args.pull = false
				}
			} else if !isTransientServerError(se) {
				// The worker computed and rejected the request: retrying the
				// same malformed cuboid elsewhere cannot help.
				return nil, fmt.Errorf("distnet: worker %s rejected cuboid: %w", m.addr, err)
			}
		}
		attempt++
		if attempt < d.opts.JobAttempts {
			d.rec.AddCuboidRetry()
			args.meter.noteRetry()
			d.jitterSleep(backoff)
			backoff *= 2
			if backoff > d.opts.MaxBackoff {
				backoff = d.opts.MaxBackoff
			}
		}
	}
	// Local fallback needs the operand blocks driver-side; a pull cuboid
	// whose blocks the driver never fully held cannot be computed locally.
	if !d.opts.DisableLocalFallback && (!args.pull || args.pullInline) {
		d.rec.AddLocalFallback()
		args.meter.noteLocalFallback()
		lsp := d.tracer.Start(parent.ID(), "local-fallback", obs.KindDriver)
		if lsp.Active() {
			lsp.SetCuboid(args.cuboidP, args.cuboidQ, args.cuboidR)
			if lastErr != nil {
				lsp.SetAttr("cause", lastErr.Error())
			}
		}
		var reply MultiplyReply
		if err := computeCuboid(args, &reply); err != nil {
			lsp.End()
			return nil, err
		}
		lsp.End()
		return &reply, nil
	}
	return nil, fmt.Errorf("distnet: cuboid failed after %d attempts: %w", d.opts.JobAttempts, lastErr)
}

// jobPayloadBytes is the encoded size of a cuboid request's block payloads
// under its wire encoding — the quantity Options.BatchBytes thresholds.
func jobPayloadBytes(args *MultiplyArgs) int64 {
	var n int64
	for _, list := range [2][]BlockRec{args.ABlocks, args.BBlocks} {
		for i := range list {
			n += codec.EncodedBytesEnc(list[i].Block, args.encoding)
		}
	}
	return n
}

// runBatch ships one group of small cuboids as a single MultiplyBatch RPC,
// retrying the whole batch across members the way runJob retries one
// cuboid. Per-item failures in an otherwise-successful reply — and any
// batch that exhausts its attempts — fall back to individual runJob
// dispatch, which carries its own retries and local fallback, so batching
// can change performance but never outcomes.
func (d *Driver) runBatch(ctx context.Context, jobs []*MultiplyArgs, group []int, root obs.Span, commit func(int, *MultiplyReply), errs []error) {
	bsp := d.tracer.Start(root.ID(), "rpc.multiply_batch", obs.KindRPC)
	if bsp.Active() {
		bsp.SetAttr("items", fmt.Sprintf("%d", len(group)))
	}
	defer bsp.End()
	batch := &MultiplyBatchArgs{Items: make([]MultiplyArgs, len(group)), traceSpan: uint64(bsp.ID())}
	for i, idx := range group {
		batch.Items[i] = *jobs[idx]
		batch.Items[i].traceSpan = uint64(bsp.ID())
	}
	backoff := d.opts.RetryBackoff
	for attempt := 0; attempt < d.opts.JobAttempts; {
		if ctx.Err() != nil {
			break
		}
		m, anyLive := d.acquireMember()
		if m == nil {
			if anyLive {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			if d.reconnectAny() {
				continue
			}
			break
		}
		if bsp.Active() {
			bsp.SetWorker(m.addr)
		}
		var reply MultiplyBatchReply
		callStart := time.Now()
		err := d.call(m, "MultiplyBatch", batch, &reply, d.opts.CallTimeout)
		m.release()
		if err == nil && len(reply.Items) != len(group) {
			err = fmt.Errorf("distnet: batch reply carried %d items for %d cuboids", len(reply.Items), len(group))
		}
		if err == nil {
			if d.noteRPCDuration(m, time.Since(callStart)) && bsp.Active() {
				bsp.SetAttr("straggler", "true")
			}
			d.rec.AddBatchRPC(len(group))
			var failed []int
			sawMiss := false
			for i, idx := range group {
				it := &reply.Items[i]
				if it.Err == "" {
					commit(idx, &MultiplyReply{CBlocks: it.CBlocks})
					continue
				}
				d.rec.AddBatchItemError()
				if it.Err == errUnknownDigestMsg {
					d.rec.AddCacheRefMiss()
					sawMiss = true
				}
				failed = append(failed, idx)
			}
			if sawMiss {
				// The worker no longer holds blocks this batch referenced;
				// the individual retries ship them inline.
				m.tracker.forget()
			}
			if bsp.Active() && len(failed) > 0 {
				bsp.SetAttr("item-errors", fmt.Sprintf("%d", len(failed)))
			}
			d.runBatchFallback(ctx, jobs, failed, root, commit, errs)
			return
		}
		if bsp.Active() {
			bsp.SetAttr("error", err.Error())
		}
		m.retries.Add(1)
		var se rpc.ServerError
		if errors.As(err, &se) && !isTransientServerError(se) {
			// The worker rejected the batch frame outright; individual
			// dispatch will reproduce (and pinpoint) the failure.
			break
		}
		attempt++
		if attempt < d.opts.JobAttempts {
			d.rec.AddCuboidRetry()
			jobs[group[0]].meter.noteRetry()
			d.jitterSleep(backoff)
			backoff *= 2
			if backoff > d.opts.MaxBackoff {
				backoff = d.opts.MaxBackoff
			}
		}
	}
	d.runBatchFallback(ctx, jobs, group, root, commit, errs)
}

// runBatchFallback dispatches each listed cuboid on its own, with runJob's
// full retry and local-fallback machinery. Commits are first-writer-wins by
// construction: a cuboid reaches here only if its batch slot did not commit.
func (d *Driver) runBatchFallback(ctx context.Context, jobs []*MultiplyArgs, idxs []int, root obs.Span, commit func(int, *MultiplyReply), errs []error) {
	for _, idx := range idxs {
		args := jobs[idx]
		csp := d.tracer.Start(root.ID(), "cuboid", obs.KindDriver)
		csp.SetCuboid(args.cuboidP, args.cuboidQ, args.cuboidR)
		reply, err := d.runJob(ctx, args, csp)
		if err != nil {
			if csp.Active() {
				csp.SetAttr("error", err.Error())
			}
			errs[idx] = err
			csp.End()
			continue
		}
		csp.End()
		commit(idx, reply)
	}
}

// isTransientServerError recognizes application-level errors that still
// warrant reassignment — a draining worker answers RPCs but refuses work,
// a cache miss on a digest reference just means the blocks must be resent
// inline, and a failed pull resolution (dead peer, evicted band) is cured by
// downgrading the retry to push.
func isTransientServerError(se rpc.ServerError) bool {
	return se.Error() == errWorkerDrainingMsg || se.Error() == errUnknownDigestMsg ||
		strings.Contains(se.Error(), errPullPrefix)
}

// isDrainingError reports whether err is the draining worker's refusal
// (matching over the wire, where sentinels arrive as rpc.ServerError text).
func isDrainingError(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se) && se.Error() == errWorkerDrainingMsg
}

// jitterSleep sleeps a full-jittered backoff: uniform in (0, b]. Full
// jitter (rather than equal or decorrelated) maximizes spread, which is
// what breaks up retry stampedes when many cuboids fail at once.
func (d *Driver) jitterSleep(b time.Duration) {
	if b <= 0 {
		return
	}
	d.jmu.Lock()
	n := d.jrand.Int63n(int64(b)) + 1
	d.jmu.Unlock()
	time.Sleep(time.Duration(n))
}

// noteRPCDuration folds one successful cuboid RPC into the rolling mean and
// reports (and counts) whether it was a straggler.
func (d *Driver) noteRPCDuration(m *member, dur time.Duration) bool {
	d.ewmaMu.Lock()
	n, mean := d.ewmaN, d.ewmaRPC
	d.ewmaN++
	if n == 0 {
		d.ewmaRPC = dur
	} else {
		d.ewmaRPC = (d.ewmaRPC*7 + dur) / 8
	}
	d.ewmaMu.Unlock()
	if n >= stragglerMinSamples && mean > 0 && dur > mean*stragglerMultiple {
		m.stragglers.Add(1)
		d.rec.AddStragglerRPC()
		return true
	}
	return false
}

// multiply runs C = A×B with an explicit (P,Q,R)-cuboid partitioning, each
// cuboid computed by a remote worker. The driver performs the repartition
// (shipping each cuboid's blocks over its worker's socket) and the
// aggregation (summing the partial C blocks that come back). Aggregation
// order is fixed by cuboid index, and reassigned or locally-recomputed
// cuboids use the workers' exact arithmetic, so the product is
// byte-identical to a failure-free run under any failure schedule.
func (d *Driver) multiply(ctx context.Context, a, b *bmat.BlockMatrix, params core.Params, ckpt *checkpointer) (*bmat.BlockMatrix, error) {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, ErrDriverClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if a.Cols != b.Rows || a.BlockSize != b.BlockSize {
		return nil, fmt.Errorf("distnet: operands not conformable")
	}
	s := core.ShapeOf(a, b)
	if params.P < 1 || params.P > s.I || params.Q < 1 || params.Q > s.J || params.R < 1 || params.R > s.K {
		return nil, fmt.Errorf("distnet: params %v outside grid %dx%dx%d", params, s.I, s.J, s.K)
	}

	d.activeJobs.Add(1)
	defer d.activeJobs.Add(-1)
	meter := jobMeterFrom(ctx)

	root := d.tracer.Start(0, "distnet.multiply", obs.KindDriver)
	if root.Active() {
		root.SetAttr("params", fmt.Sprintf("%v", params))
		root.SetAttr("grid", fmt.Sprintf("%dx%dx%d blocks", s.I, s.J, s.K))
	}
	defer root.End()

	var jobs []*MultiplyArgs
	for p := 0; p < params.P; p++ {
		ilo, ihi := shuffle.GridSpan(p, s.I, params.P)
		for q := 0; q < params.Q; q++ {
			jlo, jhi := shuffle.GridSpan(q, s.J, params.Q)
			for r := 0; r < params.R; r++ {
				klo, khi := shuffle.GridSpan(r, s.K, params.R)
				if ihi <= ilo || jhi <= jlo || khi <= klo {
					continue
				}
				args := &MultiplyArgs{
					ILo: ilo, IHi: ihi, JLo: jlo, JHi: jhi, KLo: klo, KHi: khi,
					cuboidP: p, cuboidQ: q, cuboidR: r,
					encoding: d.opts.Encoding,
					meter:    meter,
				}
				for i := ilo; i < ihi; i++ {
					for k := klo; k < khi; k++ {
						if blk := a.Block(i, k); blk != nil {
							args.ABlocks = append(args.ABlocks, BlockRec{Key: bmat.BlockKey{I: i, J: k}, Block: blk})
						}
					}
				}
				for k := klo; k < khi; k++ {
					for j := jlo; j < jhi; j++ {
						if blk := b.Block(k, j); blk != nil {
							args.BBlocks = append(args.BBlocks, BlockRec{Key: bmat.BlockKey{I: k, J: j}, Block: blk})
						}
					}
				}
				jobs = append(jobs, args)
			}
		}
	}

	if !d.opts.DisableBlockCache {
		d.assignDigests(jobs)
	}

	if ckpt != nil {
		if err := ckpt.ensureManifest(a, b, params, len(jobs)); err != nil {
			return nil, err
		}
	}

	replies := make([]*MultiplyReply, len(jobs))
	errs := make([]error, len(jobs))
	var restored int
	var wg sync.WaitGroup
	commit := func(idx int, reply *MultiplyReply) {
		replies[idx] = reply
		meter.noteCommit(reply)
		if ckpt != nil {
			ckpt.store(idx, reply, a.Rows, b.Cols, a.BlockSize)
		}
	}
	var small []int // cuboids under BatchBytes, coalesced into batch RPCs
	for idx, args := range jobs {
		if ckpt != nil {
			if reply, ok := ckpt.load(idx, a.Rows, b.Cols, a.BlockSize); ok {
				replies[idx] = reply
				restored++
				continue
			}
		}
		meter.noteDispatch(jobPayloadBytes(args))
		if d.opts.BatchBytes > 0 && !args.pull && jobPayloadBytes(args) < d.opts.BatchBytes {
			small = append(small, idx)
			continue
		}
		wg.Add(1)
		d.inflight.Add(1)
		go func(idx int, args *MultiplyArgs) {
			defer wg.Done()
			defer d.inflight.Add(-1)
			csp := d.tracer.Start(root.ID(), "cuboid", obs.KindDriver)
			csp.SetCuboid(args.cuboidP, args.cuboidQ, args.cuboidR)
			defer csp.End()
			reply, err := d.runJob(ctx, args, csp)
			if err != nil {
				if csp.Active() {
					csp.SetAttr("error", err.Error())
				}
				errs[idx] = err
				return
			}
			commit(idx, reply)
		}(idx, args)
	}
	for start := 0; start < len(small); start += d.opts.MaxBatchItems {
		end := start + d.opts.MaxBatchItems
		if end > len(small) {
			end = len(small)
		}
		group := small[start:end]
		wg.Add(1)
		d.inflight.Add(int64(len(group)))
		go func(group []int) {
			defer wg.Done()
			defer d.inflight.Add(-int64(len(group)))
			d.runBatch(ctx, jobs, group, root, commit, errs)
		}(group)
	}
	wg.Wait()
	if restored > 0 && root.Active() {
		root.SetAttr("checkpoint-restored", fmt.Sprintf("%d", restored))
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("distnet: multiply: %w", err)
		}
	}

	agg := d.tracer.Start(root.ID(), "aggregate", obs.KindDriver)
	out := bmat.New(a.Rows, b.Cols, a.BlockSize)
	for _, reply := range replies {
		for _, rec := range reply.CBlocks {
			dense, ok := rec.Block.(*matrix.Dense)
			if !ok {
				dense = rec.Block.Dense()
			}
			if existing := out.Block(rec.Key.I, rec.Key.J); existing != nil {
				matrix.AddInto(existing.(*matrix.Dense), dense)
			} else {
				out.SetBlock(rec.Key.I, rec.Key.J, dense)
			}
		}
	}
	agg.End()
	return out, nil
}

// assignDigests stamps a fresh job epoch on every cuboid and computes each
// unique block's content digest once (the same block pointer appears in Q
// or P cuboids — the replication Eq. (4) counts — so the map collapses the
// hashing to one SHA-256 per distinct block). Blocks below the cacheable
// threshold keep a nil digest and always ship inline.
func (d *Driver) assignDigests(jobs []*MultiplyArgs) {
	epoch := d.epoch.Add(1)
	digests := map[matrix.Block]*codec.Digest{}
	digestOf := func(b matrix.Block) *codec.Digest {
		if dg, ok := digests[b]; ok {
			return dg
		}
		var dg *codec.Digest
		if codec.EncodedBytesEnc(b, d.opts.Encoding) >= minCacheableBytes {
			// The digest covers the encoded bytes, so it is taken under the
			// job's encoding — the worker caches what the bytes decoded to.
			if v, err := codec.DigestOfEnc(b, d.opts.Encoding); err == nil {
				dg = &v
			}
		}
		digests[b] = dg
		return dg
	}
	for _, args := range jobs {
		args.cacheEpoch = epoch
		for _, list := range [2][]BlockRec{args.ABlocks, args.BBlocks} {
			for i := range list {
				list[i].digest = digestOf(list[i].Block)
			}
		}
	}
}
