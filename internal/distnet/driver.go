package distnet

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/shuffle"
)

// Driver executes cuboid plans across remote workers. It owns one RPC
// client per worker; cuboids are assigned round-robin and run concurrently,
// and every byte that crosses a socket is counted — the measured-for-real
// counterpart of the cluster substrate's accounting.
type Driver struct {
	clients []*rpc.Client
	addrs   []string
	wire    *wireCounter
}

// wireCounter meters real socket traffic in both directions.
type wireCounter struct {
	sent, received atomic.Int64
}

// countingConn wraps a net.Conn with the driver's byte meters.
type countingConn struct {
	net.Conn
	wire *wireCounter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.wire.received.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.wire.sent.Add(int64(n))
	return n, err
}

// Dial connects to the workers. Every address must answer a Ping before the
// driver is returned.
func Dial(addrs []string) (*Driver, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("distnet: no worker addresses")
	}
	d := &Driver{addrs: addrs, wire: &wireCounter{}}
	for _, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("distnet: dial %s: %w", addr, err)
		}
		client := rpc.NewClient(&countingConn{Conn: conn, wire: d.wire})
		var pong PingReply
		if err := client.Call(serviceName+".Ping", &PingArgs{}, &pong); err != nil {
			client.Close()
			d.Close()
			return nil, fmt.Errorf("distnet: ping %s: %w", addr, err)
		}
		d.clients = append(d.clients, client)
	}
	return d, nil
}

// Close shuts every client connection.
func (d *Driver) Close() {
	for _, c := range d.clients {
		if c != nil {
			c.Close()
		}
	}
	d.clients = nil
}

// Workers returns the connected worker count.
func (d *Driver) Workers() int { return len(d.clients) }

// WireBytes reports the real bytes sent and received over the sockets since
// Dial.
func (d *Driver) WireBytes() (sent, received int64) {
	return d.wire.sent.Load(), d.wire.received.Load()
}

// Multiply runs C = A×B with an explicit (P,Q,R)-cuboid partitioning, each
// cuboid computed by a remote worker. The driver performs the repartition
// (shipping each cuboid's blocks over its worker's socket) and the
// aggregation (summing the partial C blocks that come back).
func (d *Driver) Multiply(a, b *bmat.BlockMatrix, params core.Params) (*bmat.BlockMatrix, error) {
	if len(d.clients) == 0 {
		return nil, fmt.Errorf("distnet: driver closed")
	}
	if a.Cols != b.Rows || a.BlockSize != b.BlockSize {
		return nil, fmt.Errorf("distnet: operands not conformable")
	}
	s := core.ShapeOf(a, b)
	if params.P < 1 || params.P > s.I || params.Q < 1 || params.Q > s.J || params.R < 1 || params.R > s.K {
		return nil, fmt.Errorf("distnet: params %v outside grid %dx%dx%d", params, s.I, s.J, s.K)
	}

	type job struct {
		args  *MultiplyArgs
		first int // preferred worker; failover walks the ring from here
	}
	var jobs []job
	next := 0
	for p := 0; p < params.P; p++ {
		ilo, ihi := shuffle.GridSpan(p, s.I, params.P)
		for q := 0; q < params.Q; q++ {
			jlo, jhi := shuffle.GridSpan(q, s.J, params.Q)
			for r := 0; r < params.R; r++ {
				klo, khi := shuffle.GridSpan(r, s.K, params.R)
				if ihi <= ilo || jhi <= jlo || khi <= klo {
					continue
				}
				args := &MultiplyArgs{ILo: ilo, IHi: ihi, JLo: jlo, JHi: jhi, KLo: klo, KHi: khi}
				for i := ilo; i < ihi; i++ {
					for k := klo; k < khi; k++ {
						if blk := a.Block(i, k); blk != nil {
							args.ABlocks = append(args.ABlocks, BlockRec{Key: bmat.BlockKey{I: i, J: k}, Block: blk})
						}
					}
				}
				for k := klo; k < khi; k++ {
					for j := jlo; j < jhi; j++ {
						if blk := b.Block(k, j); blk != nil {
							args.BBlocks = append(args.BBlocks, BlockRec{Key: bmat.BlockKey{I: k, J: j}, Block: blk})
						}
					}
				}
				jobs = append(jobs, job{args: args, first: next % len(d.clients)})
				next++
			}
		}
	}

	replies := make([]*MultiplyReply, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for idx, jb := range jobs {
		wg.Add(1)
		go func(idx int, jb job) {
			defer wg.Done()
			// Failover: a dead worker's cuboids reassign around the ring —
			// the driver-side analog of Spark re-running lost tasks.
			var lastErr error
			for attempt := 0; attempt < len(d.clients); attempt++ {
				client := d.clients[(jb.first+attempt)%len(d.clients)]
				var reply MultiplyReply
				if err := client.Call(serviceName+".Multiply", jb.args, &reply); err != nil {
					lastErr = err
					continue
				}
				replies[idx] = &reply
				return
			}
			errs[idx] = lastErr
		}(idx, jb)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("distnet: all workers failed a cuboid: %w", err)
		}
	}

	out := bmat.New(a.Rows, b.Cols, a.BlockSize)
	for _, reply := range replies {
		for _, rec := range reply.CBlocks {
			dense, ok := rec.Block.(*matrix.Dense)
			if !ok {
				dense = rec.Block.Dense()
			}
			if existing := out.Block(rec.Key.I, rec.Key.J); existing != nil {
				matrix.AddInto(existing.(*matrix.Dense), dense)
			} else {
				out.SetBlock(rec.Key.I, rec.Key.J, dense)
			}
		}
	}
	return out, nil
}

// MultiplyAuto optimizes (P,Q,R) for the given per-worker memory budget —
// one cuboid per worker round at minimum — then multiplies.
func (d *Driver) MultiplyAuto(a, b *bmat.BlockMatrix, workerMemBytes int64) (*bmat.BlockMatrix, core.Params, error) {
	params, err := core.Optimize(core.ShapeOf(a, b), workerMemBytes, len(d.clients))
	if err != nil {
		return nil, core.Params{}, err
	}
	c, err := d.Multiply(a, b, params)
	return c, params, err
}
