package distnet

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// The autoscaler: a policy that turns ClusterHealth snapshots into scale
// decisions, and a supervisor goroutine on the driver that applies them
// through a WorkerPool — pool.Grow → AddWorker on the way up, graceful
// pool.Shrink (drain) → RemoveWorker on the way down. Pinned session
// handles survive scale-downs via the existing two-tier recovery: draining
// members leave liveMembers, so the next session operation re-snapshots
// onto the remaining placement.

// ScaleAction is what the policy asked for on one tick.
type ScaleAction int

const (
	// ScaleHold: no change this tick.
	ScaleHold ScaleAction = iota
	// ScaleUp: grow the pool by one worker.
	ScaleUp
	// ScaleDown: drain the named worker out of rotation.
	ScaleDown
)

// String names the action for events and logs.
func (a ScaleAction) String() string {
	switch a {
	case ScaleHold:
		return "hold"
	case ScaleUp:
		return "up"
	case ScaleDown:
		return "down"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// ScaleDecision is one policy verdict. Addr names the drain victim for
// ScaleDown (ignored for the other actions); Reason is a short operator-
// facing explanation recorded in the decision log.
type ScaleDecision struct {
	Action ScaleAction
	Addr   string
	Reason string
}

// Autoscaler decides scaling from a health snapshot. Decide runs on the
// supervisor goroutine once per tick; implementations may keep state (the
// default hysteresis policy counts sustained observations) and need not be
// concurrency-safe.
type Autoscaler interface {
	Decide(h ClusterHealth) ScaleDecision
}

// HysteresisPolicy is the default Autoscaler: scale up on sustained queue
// pressure or straggling, drain on sustained idleness or a flapping /
// persistently unhealthy worker, with cooldowns between decisions so one
// burst cannot thrash the pool. Thresholds are in ticks of the supervisor
// interval, which keeps the policy deterministic under a seeded soak.
type HysteresisPolicy struct {
	// MinWorkers/MaxWorkers bound the live pool (defaults 1 and 8).
	MinWorkers int
	MaxWorkers int
	// UpPressure is the queue pressure (ClusterHealth.Pressure) that, held
	// for UpAfter consecutive ticks, triggers a scale-up (defaults 0.75
	// and 3). A tick with windowed stragglers also counts as up-pressure:
	// slow workers and deep queues both mean the pool is short.
	UpPressure float64
	UpAfter    int
	// DownPressure held for DownAfter consecutive ticks triggers a drain
	// of the lowest-scoring worker (defaults 0.15 and 8).
	DownPressure float64
	DownAfter    int
	// UnhealthyScore is the health score below which a worker, flapping or
	// failing for UnhealthyAfter consecutive ticks, is drained out of
	// rotation even under load (defaults 0.3 and 4).
	UnhealthyScore float64
	UnhealthyAfter int
	// CooldownTicks holds all decisions for this many ticks after any
	// non-hold decision (default 8), letting the last action take effect
	// before the next is considered.
	CooldownTicks int

	upTicks, downTicks, cooldown int
	unhealthy                    map[string]int
}

func (p *HysteresisPolicy) defaults() {
	if p.MinWorkers <= 0 {
		p.MinWorkers = 1
	}
	if p.MaxWorkers <= 0 {
		p.MaxWorkers = 8
	}
	if p.UpPressure <= 0 {
		p.UpPressure = 0.75
	}
	if p.UpAfter <= 0 {
		p.UpAfter = 3
	}
	if p.DownPressure <= 0 {
		p.DownPressure = 0.15
	}
	if p.DownAfter <= 0 {
		p.DownAfter = 8
	}
	if p.UnhealthyScore <= 0 {
		p.UnhealthyScore = 0.3
	}
	if p.UnhealthyAfter <= 0 {
		p.UnhealthyAfter = 4
	}
	if p.CooldownTicks <= 0 {
		p.CooldownTicks = 8
	}
}

// Decide implements Autoscaler with hysteresis on every edge.
func (p *HysteresisPolicy) Decide(h ClusterHealth) ScaleDecision {
	p.defaults()
	if p.cooldown > 0 {
		p.cooldown--
		return ScaleDecision{Action: ScaleHold, Reason: "cooldown"}
	}

	var stragglers int64
	for _, w := range h.Workers {
		stragglers += w.Stragglers
	}

	// Unhealthy drain first: a flapping or failing worker hurts even a
	// loaded cluster (its retries are why the queue is deep).
	if p.unhealthy == nil {
		p.unhealthy = map[string]int{}
	}
	seen := map[string]bool{}
	victim, victimTicks := "", 0
	for _, w := range h.Workers {
		if w.Score == 0 || w.Draining {
			continue // dead and draining workers are not drain candidates
		}
		seen[w.Addr] = true
		if w.Score <= p.UnhealthyScore || w.Flapping {
			p.unhealthy[w.Addr]++
		} else {
			delete(p.unhealthy, w.Addr)
		}
		if t := p.unhealthy[w.Addr]; t >= p.UnhealthyAfter && t > victimTicks {
			victim, victimTicks = w.Addr, t
		}
	}
	for addr := range p.unhealthy {
		if !seen[addr] {
			delete(p.unhealthy, addr)
		}
	}
	if victim != "" && h.LiveWorkers > p.MinWorkers {
		p.unhealthy = map[string]int{}
		p.upTicks, p.downTicks = 0, 0
		p.cooldown = p.CooldownTicks
		return ScaleDecision{Action: ScaleDown, Addr: victim, Reason: "unhealthy: flapping or low score"}
	}

	if h.Pressure >= p.UpPressure || stragglers > 0 {
		p.upTicks++
		p.downTicks = 0
	} else if h.Pressure <= p.DownPressure {
		p.downTicks++
		p.upTicks = 0
	} else {
		p.upTicks, p.downTicks = 0, 0
	}

	if p.upTicks >= p.UpAfter && h.LiveWorkers < p.MaxWorkers {
		p.upTicks = 0
		p.cooldown = p.CooldownTicks
		reason := fmt.Sprintf("sustained pressure %.2f", h.Pressure)
		if stragglers > 0 {
			reason = fmt.Sprintf("stragglers (%d in window), pressure %.2f", stragglers, h.Pressure)
		}
		return ScaleDecision{Action: ScaleUp, Reason: reason}
	}
	if p.downTicks >= p.DownAfter && h.LiveWorkers > p.MinWorkers {
		// Drain the lowest-scoring live worker; ties break to table order.
		best, bestScore := "", 2.0
		for _, w := range h.Workers {
			if w.Score > 0 && !w.Draining && w.Score < bestScore {
				best, bestScore = w.Addr, w.Score
			}
		}
		if best != "" {
			p.downTicks = 0
			p.cooldown = p.CooldownTicks
			return ScaleDecision{Action: ScaleDown, Addr: best,
				Reason: fmt.Sprintf("sustained idleness, pressure %.2f", h.Pressure)}
		}
	}
	return ScaleDecision{Action: ScaleHold}
}

// WorkerPool provisions and retires worker processes for the autoscaler.
// Grow starts one worker and returns its dialable address; Shrink
// gracefully stops the worker at addr (drain bounded by ctx); Owns reports
// whether addr was provisioned by this pool — the supervisor never drains
// workers it does not own, so statically-dialed members are safe from
// scale-downs.
type WorkerPool interface {
	Grow(ctx context.Context) (addr string, err error)
	Shrink(ctx context.Context, addr string) error
	Owns(addr string) bool
}

// ScaleEvent is one applied (or failed) autoscaler decision, kept in the
// driver's bounded decision log for the debug endpoint.
type ScaleEvent struct {
	Time   time.Time `json:"time"`
	Action string    `json:"action"`
	Addr   string    `json:"addr,omitempty"`
	Reason string    `json:"reason,omitempty"`
	Err    string    `json:"err,omitempty"`
}

// scaleEventCap bounds the decision log.
const scaleEventCap = 64

// AutoscalerOptions tunes the supervisor loop.
type AutoscalerOptions struct {
	// Pool provisions workers. Required.
	Pool WorkerPool
	// Policy decides; nil takes a default HysteresisPolicy.
	Policy Autoscaler
	// Interval is the tick period (default 250ms).
	Interval time.Duration
	// DrainTimeout bounds a scale-down's graceful drain (default 5s).
	DrainTimeout time.Duration
	// RetireAfter is how long a member may stay Dead before housekeeping
	// flips it to Removed so the detector stops redialing it (default 30s;
	// negative disables retirement).
	RetireAfter time.Duration
	// OnEvent, when set, observes every non-hold decision after it was
	// applied (test and soak hook; called on the supervisor goroutine).
	OnEvent func(ScaleEvent)
}

func (o AutoscalerOptions) withDefaults() AutoscalerOptions {
	if o.Policy == nil {
		o.Policy = &HysteresisPolicy{}
	}
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	if o.RetireAfter == 0 {
		o.RetireAfter = 30 * time.Second
	}
	return o
}

// scalerRun is one running supervisor.
type scalerRun struct {
	d    *Driver
	opts AutoscalerOptions
	stop chan struct{}
	done chan struct{}

	mu     sync.Mutex
	events []ScaleEvent
}

// StartAutoscaler starts the self-healing supervisor: every Interval it
// snapshots ClusterHealth, asks the policy for a decision, and applies it
// through the pool. At most one supervisor runs per driver.
func (d *Driver) StartAutoscaler(opts AutoscalerOptions) error {
	if opts.Pool == nil {
		return fmt.Errorf("distnet: autoscaler needs a WorkerPool")
	}
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return ErrDriverClosed
	}
	d.scalerMu.Lock()
	defer d.scalerMu.Unlock()
	if d.scaler != nil {
		return fmt.Errorf("distnet: autoscaler already running")
	}
	r := &scalerRun{
		d:    d,
		opts: opts.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	d.scaler = r
	go r.run()
	return nil
}

// StopAutoscaler stops the supervisor and waits for it to exit. It is a
// no-op when none is running; Close calls it.
func (d *Driver) StopAutoscaler() {
	d.scalerMu.Lock()
	r := d.scaler
	d.scaler = nil
	d.scalerMu.Unlock()
	if r != nil {
		close(r.stop)
		<-r.done
	}
}

// AutoscalerEvents returns the decision log (oldest first, bounded to the
// last scaleEventCap non-hold decisions). Empty when no supervisor ran.
func (d *Driver) AutoscalerEvents() []ScaleEvent {
	d.scalerMu.Lock()
	r := d.scaler
	d.scalerMu.Unlock()
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]ScaleEvent(nil), r.events...)
}

func (r *scalerRun) record(ev ScaleEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	if len(r.events) > scaleEventCap {
		r.events = r.events[len(r.events)-scaleEventCap:]
	}
	r.mu.Unlock()
	if r.opts.OnEvent != nil {
		r.opts.OnEvent(ev)
	}
}

func (r *scalerRun) run() {
	defer close(r.done)
	ticker := time.NewTicker(r.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.tick()
		}
	}
}

func (r *scalerRun) tick() {
	d := r.d
	if r.opts.RetireAfter >= 0 {
		for _, addr := range d.retireDead(r.opts.RetireAfter) {
			r.record(ScaleEvent{Time: time.Now(), Action: "retire", Addr: addr,
				Reason: fmt.Sprintf("dead longer than %v", r.opts.RetireAfter)})
		}
	}
	dec := r.opts.Policy.Decide(d.ClusterHealth())
	switch dec.Action {
	case ScaleUp:
		ctx, cancel := context.WithTimeout(context.Background(), r.opts.DrainTimeout)
		addr, err := r.opts.Pool.Grow(ctx)
		cancel()
		if err == nil {
			err = d.AddWorker(addr)
		}
		ev := ScaleEvent{Time: time.Now(), Action: "up", Addr: addr, Reason: dec.Reason}
		if err != nil {
			ev.Err = err.Error()
		} else {
			d.rec.AddScaleUp()
		}
		r.record(ev)
	case ScaleDown:
		ev := ScaleEvent{Time: time.Now(), Action: "down", Addr: dec.Addr, Reason: dec.Reason}
		if !r.opts.Pool.Owns(dec.Addr) {
			ev.Err = "not pool-owned; refusing to drain"
			r.record(ev)
			return
		}
		// Drain first (the worker starts refusing work, in-flight RPCs
		// finish, peers may still GetBlocks during the drain window), then
		// remove the member so the detector stops redialing a gone worker.
		ctx, cancel := context.WithTimeout(context.Background(), r.opts.DrainTimeout)
		err := r.opts.Pool.Shrink(ctx, dec.Addr)
		cancel()
		if rmErr := d.RemoveWorker(dec.Addr); err == nil {
			err = rmErr
		}
		if err != nil {
			ev.Err = err.Error()
		}
		d.rec.AddScaleDown()
		r.record(ev)
	}
}
