package distnet

// The distributed block store's wire messages. A session co-partitions every
// matrix by block rows across its worker snapshot; each worker holds one
// band per handle. Blocks travel inline as bit-exact fp64 — resident data is
// the determinism anchor, so the opt-in lossy encodings never apply here.

// PutArgs ships one handle's block-row band to its owning worker.
type PutArgs struct {
	Handle uint64
	// Epoch scopes the handle to one driver session; FreeArgs with AllEpoch
	// retires the whole session at once.
	Epoch uint64
	// Pin starts the band pinned (excluded from store eviction).
	Pin    bool
	Blocks []BlockRec

	traceSpan uint64
}

// PutReply reports the band's resident payload bytes.
type PutReply struct {
	Bytes int64
}

// GetArgs reads a handle's resident blocks — issued by the driver for
// Fetch and worker→worker for operand bands a pipeline operator lacks.
type GetArgs struct {
	Handle uint64
	// All requests every block of the band; otherwise only blocks with
	// ILo ≤ I < IHi and JLo ≤ J < JHi are returned.
	All                bool
	ILo, IHi, JLo, JHi int

	traceSpan uint64
}

// GetReply carries the requested blocks (inline fp64).
type GetReply struct {
	Blocks []BlockRec
}

// FreeArgs drops handles from a worker's store. AllEpoch frees every handle
// of Epoch (session close, or the wipe before a lineage rebuild); otherwise
// exactly the listed Handles are freed. Free overrides pins.
type FreeArgs struct {
	Handles  []uint64
	Epoch    uint64
	AllEpoch bool
}

// FreeReply reports how many resident handles were actually dropped.
type FreeReply struct {
	Freed int
}

// PinArgs adjusts a handle's pin count: Unpin false pins (+1), true unpins
// (−1). Pinned bands never evict.
type PinArgs struct {
	Handle uint64
	Unpin  bool
}

// PinReply acknowledges the pin change.
type PinReply struct{}

// Pipeline operator codes carried in ExecArgs.Op.
const (
	execMul = uint8(iota + 1)
	execTranspose
	execAdd
	execSub
	execHadamard
	execDivElem
	execScale
)

// PartLoc locates one worker's band of a handle: the block rows
// [Lo, Hi) resident at Addr.
type PartLoc struct {
	Addr   string
	Lo, Hi int
}

// ExecArgs runs one pipeline operator worker-side over resident handles,
// producing the output band OutLo ≤ I < OutHi under handle Out. Operand
// bands this worker lacks are fetched worker→worker from AParts/BParts
// (entries whose Addr equals Self read the local store instead).
type ExecArgs struct {
	Op     uint8
	Out    uint64
	Epoch  uint64
	A, B   uint64 // operand handles (B unused by unary ops)
	Scalar float64
	// OutLo/OutHi is the output block-row band this worker owns.
	OutLo, OutHi int
	AParts       []PartLoc
	BParts       []PartLoc
	Self         string

	// Pull streams the peer operand bands instead of gathering them all
	// up front: fetches overlap compute with one-ahead prefetch, in band
	// order, so results stay bit-identical to the eager gather.
	Pull bool

	traceSpan uint64
}

// ExecReply reports the output band installed in the store.
type ExecReply struct {
	Bytes  int64
	Blocks int
	// PeerBytes is the worker→worker traffic this operator's band moved,
	// folded into the driver's pull counters.
	PeerBytes int64
}
