package distnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"distme/internal/bmat"
	"distme/internal/matrix"
	"distme/internal/obs"
)

// errWorkerDrainingMsg is the application-level refusal a draining worker
// answers with; the driver treats it as transient and reassigns the cuboid.
const errWorkerDrainingMsg = "distnet: worker draining"

// ErrWorkerDraining matches the refusal a draining worker answers every RPC
// with (read-only GetBlocks is admitted a little longer — see Shutdown). The
// driver retries such calls on other members, so callers normally never see
// it; it surfaces only from direct RPCs against a worker mid-shutdown.
var ErrWorkerDraining = errors.New(errWorkerDrainingMsg)

// defaultDrainWindow bounds the read-only drain window when Shutdown's ctx
// carries no deadline: peers may still GetBlocks resident bands off a
// draining worker for this long, after which every RPC refuses and pinned
// bands are re-snapshotted elsewhere by session recovery.
const defaultDrainWindow = 10 * time.Second

// Worker serves cuboid multiplications over net/rpc. One worker process
// plays the role of one cluster node's executor. A served worker (via
// Serve/ListenAndServe) owns its listener and connections and supports
// graceful shutdown: stop accepting, drain in-flight RPCs, close.
type Worker struct {
	mu         sync.Mutex
	multiplies int
	draining   bool
	drainUntil time.Time // read-only drain window end; zero = no window
	listener   net.Listener
	conns      map[net.Conn]struct{}

	// cache is the content-addressed block store shared by every
	// connection this worker serves; nil disables caching (references
	// then miss and the driver resends inline).
	cache *blockCache

	// store holds handle bands for the distributed block store (created
	// lazily via getStore for directly constructed workers); peers caches
	// worker→worker RPC clients for operand-band fetches.
	store   *handleStore
	peersMu sync.Mutex
	peers   map[string]*rpc.Client

	// tracer records worker-side compute spans (nil = off); inflightN
	// mirrors the inflight WaitGroup as a readable counter for the debug
	// endpoint.
	tracer    *obs.Tracer
	inflightN atomic.Int64

	// Pull-plane gauges: manifest entries the cache satisfied, coalesced
	// peer fetches issued (and their payload), and failed resolutions (the
	// driver then re-pushes inline). Snapshotted by PullStats.
	pullHits      atomic.Int64
	pullFetches   atomic.Int64
	pullPeerBytes atomic.Int64
	pullErrors    atomic.Int64

	inflight     sync.WaitGroup
	shutdownOnce sync.Once
	down         chan struct{} // closed when Shutdown completes
}

// CacheStats snapshots the worker's block-cache counters (insertions,
// digest hits/misses, evictions, current residency).
func (w *Worker) CacheStats() CacheStats { return w.cache.stats() }

// beginRPC admits one RPC into the in-flight set; it fails once draining.
// The admission check and WaitGroup.Add happen under the lock so Shutdown's
// Wait cannot race a late Add.
func (w *Worker) beginRPC() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining {
		return false
	}
	w.inflight.Add(1)
	w.inflightN.Add(1)
	return true
}

func (w *Worker) endRPC() {
	w.inflightN.Add(-1)
	w.inflight.Done()
}

// beginReadRPC admits a read-only RPC (GetBlocks). Unlike beginRPC it stays
// open during the drain window — a draining worker's resident bands must be
// fetchable by peers and sessions until the drain deadline, or every pinned
// band would need a driver re-snapshot on any graceful scale-down. Past the
// deadline it refuses like everything else.
func (w *Worker) beginReadRPC() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining && (w.drainUntil.IsZero() || !time.Now().Before(w.drainUntil)) {
		return false
	}
	w.inflight.Add(1)
	w.inflightN.Add(1)
	return true
}

// computeCuboid is the cuboid arithmetic itself: for every (i, j) in the
// box, the sum over the box's k range of A_{i,k}·B_{k,j} — the same
// arithmetic as core.CPUMultiplier. It is shared verbatim by the remote
// worker and the driver's local fallback, so a cuboid computes
// bit-identically wherever it lands.
func computeCuboid(args *MultiplyArgs, reply *MultiplyReply) error {
	if args.IHi < args.ILo || args.JHi < args.JLo || args.KHi < args.KLo {
		return fmt.Errorf("distnet: malformed cuboid box")
	}
	aBlocks := make(map[bmat.BlockKey]matrix.Block, len(args.ABlocks))
	for _, r := range args.ABlocks {
		aBlocks[r.Key] = r.Block
	}
	bBlocks := make(map[bmat.BlockKey]matrix.Block, len(args.BBlocks))
	for _, r := range args.BBlocks {
		bBlocks[r.Key] = r.Block
	}
	for i := args.ILo; i < args.IHi; i++ {
		for j := args.JLo; j < args.JHi; j++ {
			var acc *matrix.Dense
			for k := args.KLo; k < args.KHi; k++ {
				ab := aBlocks[bmat.BlockKey{I: i, J: k}]
				bb := bBlocks[bmat.BlockKey{I: k, J: j}]
				if ab == nil || bb == nil {
					continue
				}
				acc = matrix.MulAdd(acc, ab, bb)
			}
			if acc != nil {
				reply.CBlocks = append(reply.CBlocks, BlockRec{
					Key:   bmat.BlockKey{I: i, J: j},
					Block: acc,
				})
			}
		}
	}
	return nil
}

// Multiply computes the partial C blocks of one cuboid, against blocks
// that arrived over the wire.
func (w *Worker) Multiply(args *MultiplyArgs, reply *MultiplyReply) error {
	if !w.beginRPC() {
		return errors.New(errWorkerDrainingMsg)
	}
	defer w.endRPC()
	if args.pull {
		if err := w.preparePull(args, reply); err != nil {
			return err
		}
	}
	sp := w.tracer.Start(obs.SpanID(args.traceSpan), "worker.compute", obs.KindWorker)
	if sp.Active() {
		sp.SetCuboid(args.cuboidP, args.cuboidQ, args.cuboidR)
		sp.SetAttr("a-blocks", fmt.Sprintf("%d", len(args.ABlocks)))
		sp.SetAttr("b-blocks", fmt.Sprintf("%d", len(args.BBlocks)))
	}
	if err := computeCuboid(args, reply); err != nil {
		if sp.Active() {
			sp.SetAttr("error", err.Error())
		}
		sp.End()
		return err
	}
	if sp.Active() {
		sp.SetAttr("c-blocks", fmt.Sprintf("%d", len(reply.CBlocks)))
	}
	sp.End()
	w.mu.Lock()
	w.multiplies++
	w.mu.Unlock()
	return nil
}

// MultiplyBatch computes many small cuboids in one RPC. Items fail
// independently: a per-item error — an unknown-digest decode miss or a
// malformed box — lands in that item's reply slot while the rest of the
// batch computes normally, so the driver retries exactly the failures.
func (w *Worker) MultiplyBatch(args *MultiplyBatchArgs, reply *MultiplyBatchReply) error {
	if !w.beginRPC() {
		return errors.New(errWorkerDrainingMsg)
	}
	defer w.endRPC()
	reply.Items = make([]BatchItem, len(args.Items))
	served := 0
	for i := range args.Items {
		item := &args.Items[i]
		if item.decodeErr != "" {
			reply.Items[i].Err = item.decodeErr
			continue
		}
		if item.pull {
			// Pull items resolve independently, like they fail: a dead peer
			// marks only this item, and the driver re-pushes it inline.
			var rep MultiplyReply
			if err := w.preparePull(item, &rep); err != nil {
				reply.Items[i].Err = err.Error()
				continue
			}
		}
		sp := w.tracer.Start(obs.SpanID(item.traceSpan), "worker.compute", obs.KindWorker)
		if sp.Active() {
			sp.SetCuboid(item.cuboidP, item.cuboidQ, item.cuboidR)
			sp.SetAttr("a-blocks", fmt.Sprintf("%d", len(item.ABlocks)))
			sp.SetAttr("b-blocks", fmt.Sprintf("%d", len(item.BBlocks)))
		}
		var rep MultiplyReply
		if err := computeCuboid(item, &rep); err != nil {
			if sp.Active() {
				sp.SetAttr("error", err.Error())
			}
			reply.Items[i].Err = err.Error()
		} else {
			if sp.Active() {
				sp.SetAttr("c-blocks", fmt.Sprintf("%d", len(rep.CBlocks)))
			}
			reply.Items[i].CBlocks = rep.CBlocks
			served++
		}
		sp.End()
	}
	w.mu.Lock()
	w.multiplies += served
	w.mu.Unlock()
	return nil
}

// Ping answers the liveness probe. A draining worker refuses it, so the
// driver's failure detector retires the worker before its sockets vanish.
func (w *Worker) Ping(_ *PingArgs, reply *PingReply) error {
	if !w.beginRPC() {
		return errors.New(errWorkerDrainingMsg)
	}
	defer w.endRPC()
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	reply.Hostname = host
	// The pong ferries a load snapshot back so the driver's health plane
	// sees store pressure without extra RPCs. Subtract this Ping itself
	// from the in-flight count.
	reply.InFlight = w.inflightN.Load() - 1
	st := w.getStore().stats()
	reply.StoreBytes = st.Bytes
	reply.StoreHandles = int64(st.Handles)
	reply.StoreEvictions = st.Evictions
	return nil
}

// Multiplies reports how many cuboids this worker has served.
func (w *Worker) Multiplies() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.multiplies
}

// trackConn registers an accepted connection; it refuses (and closes) the
// connection once draining.
func (w *Worker) trackConn(conn net.Conn) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining {
		conn.Close()
		return false
	}
	w.conns[conn] = struct{}{}
	return true
}

func (w *Worker) untrackConn(conn net.Conn) {
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
}

// Shutdown gracefully stops a served worker: the listener closes (no new
// connections), in-flight RPCs drain (bounded by ctx), then every open
// connection closes. During the drain window — ctx's deadline, or
// defaultDrainWindow when ctx has none — read-only GetBlocks peer fetches
// are still admitted so resident bands can migrate off this worker; past
// the deadline those refuse too and pinned bands are re-snapshotted
// elsewhere by session recovery. It is idempotent and returns ctx.Err()
// when the drain deadline expired before in-flight work finished
// (connections are closed regardless, so the worker is down either way).
func (w *Worker) Shutdown(ctx context.Context) error {
	var err error
	w.shutdownOnce.Do(func() {
		w.mu.Lock()
		w.draining = true
		if dl, ok := ctx.Deadline(); ok {
			w.drainUntil = dl
		} else {
			w.drainUntil = time.Now().Add(defaultDrainWindow)
		}
		l := w.listener
		w.mu.Unlock()
		if l != nil {
			l.Close()
		}
		drained := make(chan struct{})
		go func() {
			w.inflight.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-ctx.Done():
			err = ctx.Err()
		}
		w.mu.Lock()
		conns := make([]net.Conn, 0, len(w.conns))
		for c := range w.conns {
			conns = append(conns, c)
		}
		w.conns = map[net.Conn]struct{}{}
		w.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		w.closePeers()
		if w.down != nil {
			close(w.down)
		}
	})
	return err
}

// Wait blocks until Shutdown completes. Only valid on a served worker.
func (w *Worker) Wait() {
	if w.down != nil {
		<-w.down
	}
}

// WorkerOptions tunes a served worker. The zero value gives defaults.
type WorkerOptions struct {
	// CacheBytes bounds the content-addressed block cache: 0 takes
	// DefaultCacheBytes, negative disables caching (every digest reference
	// then misses and the driver falls back to inline sends).
	CacheBytes int64
	// CacheEpochWindow bounds how many job epochs an unreferenced cached
	// block survives: 0 takes DefaultCacheEpochWindow. Smaller windows
	// tighten residency across job churn; larger windows keep warm operands
	// resident for longer under concurrent serving traffic.
	CacheEpochWindow int
	// StoreBytes bounds the handle store's unpinned residency: 0 takes
	// DefaultStoreBytes, negative means unbounded. Evicted handles are
	// rebuilt from lineage by the driver on next use.
	StoreBytes int64
	// Tracer, when set, records a worker.compute span per served cuboid
	// (parented to the driver's RPC-attempt span via the wire) plus
	// wire.decode spans for request parsing. Nil disables tracing.
	Tracer *obs.Tracer
}

// Serve registers a Worker on the listener and serves connections until the
// listener closes or Shutdown is called. It returns the worker so callers
// can inspect it and shut it down.
func Serve(l net.Listener) (*Worker, error) {
	return ServeOptions(l, WorkerOptions{})
}

// ServeOptions is Serve with explicit tuning.
func ServeOptions(l net.Listener, opts WorkerOptions) (*Worker, error) {
	w := &Worker{
		listener: l,
		conns:    map[net.Conn]struct{}{},
		cache:    newBlockCache(opts.CacheBytes, opts.CacheEpochWindow),
		store:    newHandleStore(opts.StoreBytes),
		tracer:   opts.Tracer,
		down:     make(chan struct{}),
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName(serviceName, w); err != nil {
		return nil, fmt.Errorf("distnet: register: %w", err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			if !w.trackConn(conn) {
				continue
			}
			go func(conn net.Conn) {
				// Every connection shares the worker's cache, so a block
				// one driver connection inlined resolves for another.
				srv.ServeCodec(newServerCodec(conn, w.cache, w.tracer))
				w.untrackConn(conn)
				conn.Close()
			}(conn)
		}
	}()
	return w, nil
}

// ListenAndServe binds addr and serves a worker until it is shut down (the
// distme-worker command's body).
func ListenAndServe(addr string) error {
	return ListenAndServeOptions(addr, WorkerOptions{})
}

// ListenAndServeOptions is ListenAndServe with explicit tuning.
func ListenAndServeOptions(addr string, opts WorkerOptions) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	w, err := ServeOptions(l, opts)
	if err != nil {
		l.Close()
		return err
	}
	w.Wait()
	return nil
}
