package distnet

import (
	"fmt"
	"net"
	"net/rpc"
	"os"
	"sync"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// Worker serves cuboid multiplications over net/rpc. One worker process
// plays the role of one cluster node's executor.
type Worker struct {
	mu         sync.Mutex
	multiplies int
}

// Multiply computes the partial C blocks of one cuboid: for every (i, j) in
// the box, the sum over the box's k range of A_{i,k}·B_{k,j} — the same
// arithmetic as core.CPUMultiplier, against blocks that arrived over the
// wire.
func (w *Worker) Multiply(args *MultiplyArgs, reply *MultiplyReply) error {
	if args.IHi < args.ILo || args.JHi < args.JLo || args.KHi < args.KLo {
		return fmt.Errorf("distnet: malformed cuboid box")
	}
	aBlocks := make(map[bmat.BlockKey]matrix.Block, len(args.ABlocks))
	for _, r := range args.ABlocks {
		aBlocks[r.Key] = r.Block
	}
	bBlocks := make(map[bmat.BlockKey]matrix.Block, len(args.BBlocks))
	for _, r := range args.BBlocks {
		bBlocks[r.Key] = r.Block
	}
	for i := args.ILo; i < args.IHi; i++ {
		for j := args.JLo; j < args.JHi; j++ {
			var acc *matrix.Dense
			for k := args.KLo; k < args.KHi; k++ {
				ab := aBlocks[bmat.BlockKey{I: i, J: k}]
				bb := bBlocks[bmat.BlockKey{I: k, J: j}]
				if ab == nil || bb == nil {
					continue
				}
				acc = matrix.MulAdd(acc, ab, bb)
			}
			if acc != nil {
				reply.CBlocks = append(reply.CBlocks, BlockRec{
					Key:   bmat.BlockKey{I: i, J: j},
					Block: acc,
				})
			}
		}
	}
	w.mu.Lock()
	w.multiplies++
	w.mu.Unlock()
	return nil
}

// Ping answers the liveness probe.
func (w *Worker) Ping(_ *PingArgs, reply *PingReply) error {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	reply.Hostname = host
	return nil
}

// Multiplies reports how many cuboids this worker has served.
func (w *Worker) Multiplies() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.multiplies
}

// Serve registers a Worker on the listener and serves connections until the
// listener closes. It returns the worker so tests can inspect it.
func Serve(l net.Listener) (*Worker, error) {
	w := &Worker{}
	srv := rpc.NewServer()
	if err := srv.RegisterName(serviceName, w); err != nil {
		return nil, fmt.Errorf("distnet: register: %w", err)
	}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			go srv.ServeConn(conn)
		}
	}()
	return w, nil
}

// ListenAndServe binds addr and serves a worker forever (the distme-worker
// command's body).
func ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if _, err := Serve(l); err != nil {
		return err
	}
	select {} // Serve's accept loop owns the listener; block forever.
}
