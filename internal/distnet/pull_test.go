package distnet

import (
	"context"
	"math/rand"
	"net"
	"testing"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/plan"
)

// The one-sided pull data plane's correctness bar is the chaos suite's:
// bit-identical to the push path under any fault schedule, with the driver
// out of the data path on the happy path.

func pullTestOperands(seed int64) (*bmat.BlockMatrix, *bmat.BlockMatrix) {
	rng := rand.New(rand.NewSource(seed))
	a := bmat.RandomDense(rng, 32, 24, 4)
	b := bmat.RandomSparse(rng, 24, 28, 4, 0.5)
	return a, b
}

// TestSessionMultiplyPullMatchesPush holds the two transfer modes — and the
// local reference — to bitwise agreement, and checks pull actually left the
// driver out of the operand path: driver-sent bytes during the pull multiply
// must be far below the operands it did not ship.
func TestSessionMultiplyPullMatchesPush(t *testing.T) {
	addrs, workers := startWorkers(t, 4)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	a, b := pullTestOperands(101)
	params := core.Params{P: 2, Q: 2, R: 1}

	s := newSession(t, d)
	ha, err := s.Put(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := s.Put(ctx, b)
	if err != nil {
		t.Fatal(err)
	}

	sentBefore, _ := d.WireBytes()
	got, gotParams, err := s.Multiply(ctx, ha, hb, MultiplyOptions{Params: &params, Transfer: core.TransferPull})
	if err != nil {
		t.Fatal(err)
	}
	sentAfter, _ := d.WireBytes()
	if gotParams != params {
		t.Fatalf("params %v != %v", gotParams, params)
	}

	want, _, err := s.Multiply(ctx, ha, hb, MultiplyOptions{Params: &params, Transfer: core.TransferPush})
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)
	ref := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(ref, 1e-9) {
		t.Fatal("pull product differs from local reference")
	}

	// The pull run ships manifests down and partials up — no operand slice.
	// Q·|A| would have crossed the driver link in push mode.
	opBytes := a.StoredBytes() + b.StoredBytes()
	if pullSent := sentAfter - sentBefore; pullSent > opBytes/2 {
		t.Fatalf("pull multiply sent %d driver bytes, operands are %d", pullSent, opBytes)
	}

	ns := d.NetStats()
	if ns.PullJobs == 0 {
		t.Fatal("no pull jobs recorded")
	}
	if ns.PullPeerBytes == 0 {
		t.Fatal("no pull peer bytes recorded — workers did not fetch from peers")
	}
	if ns.PullFallbacks != 0 {
		t.Fatalf("failure-free pull run recorded %d fallbacks", ns.PullFallbacks)
	}

	// Per-link accounting must sum to the aggregates on every worker.
	for i, w := range workers {
		st := w.StoreStats()
		var fetches, bytes int64
		for _, l := range st.PeerLinks {
			fetches += l.Fetches
			bytes += l.Bytes
		}
		if fetches != st.PeerFetches || bytes != st.PeerFetchBytes {
			t.Fatalf("worker %d per-link sums %d/%d != aggregates %d/%d",
				i, fetches, bytes, st.PeerFetches, st.PeerFetchBytes)
		}
	}
}

// TestSessionMultiplyPullDedup runs the same pull multiply twice in one
// session: the second run's manifests must resolve from the workers'
// content-addressed caches instead of re-fetching.
func TestSessionMultiplyPullDedup(t *testing.T) {
	addrs, _ := startWorkers(t, 3)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	// Blocks must clear minCacheableBytes (256) to enter the digest
	// machinery: 8×8 fp64 is 512 bytes, 4×4 would be 128 and skip it.
	rng := rand.New(rand.NewSource(102))
	a := bmat.RandomDense(rng, 32, 24, 8)
	b := bmat.RandomDense(rng, 24, 32, 8)
	params := core.Params{P: 3, Q: 1, R: 1}

	s := newSession(t, d)
	ha, err := s.Put(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := s.Put(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	opts := MultiplyOptions{Params: &params, Transfer: core.TransferPull}
	first, _, err := s.Multiply(ctx, ha, hb, opts)
	if err != nil {
		t.Fatal(err)
	}
	hitsAfterFirst := d.NetStats().PullCacheHits
	second, _, err := s.Multiply(ctx, ha, hb, opts)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, second, first)
	if hits := d.NetStats().PullCacheHits; hits <= hitsAfterFirst {
		t.Fatalf("second pull multiply added no cache hits (%d -> %d)", hitsAfterFirst, hits)
	}
}

// TestPullPeerKilledFallsBack kills one band owner, then pull-multiplies:
// workers that cannot reach the dead peer report the failed resolution, the
// driver downgrades those cuboids to inline push, and the product stays
// bit-identical to a failure-free run.
func TestPullPeerKilledFallsBack(t *testing.T) {
	ctx := context.Background()
	a, b := pullTestOperands(103)
	params := core.Params{P: 2, Q: 2, R: 1}

	// Failure-free reference.
	cleanAddrs, _ := startWorkers(t, 3)
	cd, err := Dial(cleanAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()
	cs := newSession(t, cd)
	cha, err := cs.Put(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	chb, err := cs.Put(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cs.Multiply(ctx, cha, chb, MultiplyOptions{Params: &params, Transfer: core.TransferPull})
	if err != nil {
		t.Fatal(err)
	}

	addrs, workers := startWorkers(t, 3)
	opts := fastOpts()
	opts.DisableHeartbeat = true // death surfaces through the calls themselves
	d, err := DialOptions(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := newSession(t, d)
	ha, err := s.Put(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := s.Put(ctx, b)
	if err != nil {
		t.Fatal(err)
	}

	killWorker(workers[0])

	got, _, err := s.Multiply(ctx, ha, hb, MultiplyOptions{Params: &params, Transfer: core.TransferPull})
	if err != nil {
		t.Fatalf("pull multiply did not survive peer kill: %v", err)
	}
	bitIdentical(t, got, want)
	if d.NetStats().PullFallbacks == 0 {
		t.Fatal("no pull fallback recorded despite a dead band owner")
	}
}

// TestPullEvictedHandleRebuilds pull-multiplies a pipeline-produced handle
// (no driver-side source, so no inline downgrade exists) whose bands were
// evicted: the session must rebuild it from lineage and the product must
// stay bit-identical.
func TestPullEvictedHandleRebuilds(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		if _, err := ServeOptions(l, WorkerOptions{StoreBytes: 6 << 10}); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
	}
	d, err := DialOptions(addrs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	s := newSession(t, d)

	rng := rand.New(rand.NewSource(104))
	am := bmat.RandomDense(rng, 16, 16, 4)
	bm := bmat.RandomDense(rng, 16, 12, 4)
	ha, err := s.Put(ctx, am)
	if err != nil {
		t.Fatal(err)
	}
	// A derived handle: 2·A has lineage but no driver-side blocks, so a
	// failed manifest resolution cannot downgrade to an inline push.
	h2, err := s.Run(ctx, plan.Times(2, plan.V("a")), map[string]*Handle{"a": ha})
	if err != nil {
		t.Fatal(err)
	}
	// Flood the bounded stores so h2's bands (and ha's) are evicted...
	var flood []*Handle
	for i := 0; i < 8; i++ {
		h, err := s.Put(ctx, bmat.RandomDense(rng, 16, 16, 4))
		if err != nil {
			t.Fatal(err)
		}
		flood = append(flood, h)
	}
	// ...while B, put last, stays resident.
	hb, err := s.Put(ctx, bm)
	if err != nil {
		t.Fatal(err)
	}

	params := core.Params{P: 2, Q: 1, R: 1}
	got, _, err := s.Multiply(ctx, h2, hb, MultiplyOptions{Params: &params, Transfer: core.TransferPull})
	if err != nil {
		t.Fatalf("pull multiply over evicted handle: %v", err)
	}
	ref := matrix.Mul(matrix.Scale(2, am.ToDense()), bm.ToDense()).Dense()
	if !got.ToDense().EqualApprox(ref, 1e-9) {
		t.Fatal("rebuilt pull product differs from reference")
	}
	if s.Recoveries() == 0 {
		t.Fatal("no lineage recovery recorded despite evicted manifests")
	}
	for _, h := range flood {
		_ = s.Free(ctx, h)
	}
}

// TestPullAddWorkerMidJob adds a fresh worker while pull cuboids are being
// scheduled: the newcomer holds none of the operand bands, so every cuboid
// it claims resolves purely from peers — and the product stays bit-identical.
func TestPullAddWorkerMidJob(t *testing.T) {
	ctx := context.Background()
	a, b := pullTestOperands(105)
	params := core.Params{P: 4, Q: 1, R: 1}

	addrs, _ := startWorkers(t, 2)
	freshAddrs, _ := startWorkers(t, 1)
	d, err := DialOptions(addrs, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := newSession(t, d)
	ha, err := s.Put(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := s.Put(ctx, b)
	if err != nil {
		t.Fatal(err)
	}

	want, _, err := s.Multiply(ctx, ha, hb, MultiplyOptions{Params: &params, Transfer: core.TransferPull})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- d.AddWorker(freshAddrs[0]) }()
	got, _, err := s.Multiply(ctx, ha, hb, MultiplyOptions{Params: &params, Transfer: core.TransferPull})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)

	// With the newcomer settled in the pool, a third run may assign cuboids
	// to it; it owns nothing, so resolution is all-peer — still identical.
	again, _, err := s.Multiply(ctx, ha, hb, MultiplyOptions{Params: &params, Transfer: core.TransferPull})
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, again, want)
}

// TestSessionMultiplyAutoPicksPull checks the Eq.(4) arbitration end to end:
// with warm operands the seed term drops and pull's fan-out-divided peer
// term undercuts push, so TransferAuto must run pull — visible in the
// counters — and still agree with an explicit push run bit for bit.
func TestSessionMultiplyAutoPicksPull(t *testing.T) {
	addrs, _ := startWorkers(t, 4)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	a, b := pullTestOperands(106)

	s := newSession(t, d)
	ha, err := s.Put(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := s.Put(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	got, params, err := s.Multiply(ctx, ha, hb, MultiplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.NetStats().PullJobs == 0 {
		t.Fatal("auto transfer with warm operands did not pick pull")
	}
	want, _, err := s.Multiply(ctx, ha, hb, MultiplyOptions{Params: &params, Transfer: core.TransferPush})
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)
}

// TestExecuteTransferPull covers the cold-operand Execute path: the driver
// seeds each operand once into a throwaway session and manifest-multiplies,
// with the result bit-identical to classic push.
func TestExecuteTransferPull(t *testing.T) {
	addrs, _ := startWorkers(t, 4)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	a, b := pullTestOperands(107)

	want, params, err := d.Execute(ctx, a, b, MultiplyOptions{Transfer: core.TransferPush})
	if err != nil {
		t.Fatal(err)
	}
	got, gotParams, err := d.Execute(ctx, a, b, MultiplyOptions{Params: &params, Transfer: core.TransferPull})
	if err != nil {
		t.Fatal(err)
	}
	if gotParams != params {
		t.Fatalf("params %v != %v", gotParams, params)
	}
	bitIdentical(t, got, want)

	// The optimizer path (no explicit params) with auto transfer must also
	// agree with the reference arithmetic whatever mode it picks.
	auto, _, err := d.Execute(ctx, a, b, MultiplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !auto.ToDense().EqualApprox(ref, 1e-9) {
		t.Fatal("auto Execute differs from local reference")
	}
}

// TestPipelinePullMatchesPush runs the multi-operator pipeline under both
// Options.Transfer planes: streamed pull execution must be bit-identical to
// the eager gather, and must account its worker→worker traffic.
func TestPipelinePullMatchesPush(t *testing.T) {
	ctx := context.Background()
	expr := pipelineTestExpr()
	inputs := pipelineTestInputs(108)

	run := func(transfer core.Transfer) (*bmat.BlockMatrix, *Driver) {
		addrs, _ := startWorkers(t, 3)
		opts := Options{Transfer: transfer}
		d, err := DialOptions(addrs, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		s := newSession(t, d)
		out, err := s.Run(ctx, expr, putAll(t, s, inputs))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Fetch(ctx, out)
		if err != nil {
			t.Fatal(err)
		}
		return res, d
	}

	pushRes, _ := run(core.TransferPush)
	pullRes, pullD := run(core.TransferPull)
	bitIdentical(t, pullRes, pushRes)
	ns := pullD.NetStats()
	if ns.PullJobs == 0 {
		t.Fatal("pull pipeline recorded no pull jobs")
	}
	if ns.PullPeerBytes == 0 {
		t.Fatal("pull pipeline recorded no peer bytes")
	}
}
