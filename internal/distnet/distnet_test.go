package distnet

import (
	"math/rand"
	"net"
	"testing"
	"testing/quick"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/engine"
	"distme/internal/matrix"
	"distme/internal/ml"
	"distme/internal/plan"
)

// startWorkers brings up n workers on loopback and returns their addresses
// plus the worker handles; listeners close with the test.
func startWorkers(t *testing.T, n int) ([]string, []*Worker) {
	t.Helper()
	var addrs []string
	var workers []*Worker
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		w, err := Serve(l)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
		workers = append(workers, w)
	}
	return addrs, workers
}

func TestRemoteMultiplyMatchesLocal(t *testing.T) {
	addrs, workers := startWorkers(t, 3)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Workers() != 3 {
		t.Fatalf("Workers = %d", d.Workers())
	}

	rng := rand.New(rand.NewSource(170))
	a := bmat.RandomDense(rng, 24, 32, 8)
	b := bmat.RandomDense(rng, 32, 16, 8)
	got, err := d.Multiply(a, b, core.Params{P: 3, Q: 2, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("remote product differs from local reference")
	}

	// All three workers should have served cuboids (12 jobs round-robin).
	for i, w := range workers {
		if w.Multiplies() == 0 {
			t.Errorf("worker %d served nothing", i)
		}
	}
}

func TestRemoteMultiplySparse(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(171))
	a := bmat.RandomSparse(rng, 20, 20, 5, 0.2)
	b := bmat.RandomDense(rng, 20, 20, 5)
	got, err := d.Multiply(a, b, core.Params{P: 2, Q: 2, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("sparse blocks corrupted over the wire")
	}
}

func TestRemoteMultiplyProperty(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bs := 2 + rng.Intn(3)
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := bmat.RandomDense(rng, m, k, bs)
		b := bmat.RandomDense(rng, k, n, bs)
		s := core.ShapeOf(a, b)
		p := core.Params{P: 1 + rng.Intn(s.I), Q: 1 + rng.Intn(s.J), R: 1 + rng.Intn(s.K)}
		got, err := d.Multiply(a, b, p)
		if err != nil {
			return false
		}
		return got.ToDense().EqualApprox(matrix.Mul(a.ToDense(), b.ToDense()).Dense(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWireBytesReflectTraffic(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(172))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	sent0, recv0 := d.WireBytes()
	if _, err := d.Multiply(a, b, core.Params{P: 2, Q: 2, R: 2}); err != nil {
		t.Fatal(err)
	}
	sent, recv := d.WireBytes()
	// Repartition really crossed the socket: at least the input payloads
	// (each block replicated per Q/P) must have been sent.
	minSent := 2*a.StoredBytes() + 2*b.StoredBytes()
	if sent-sent0 < minSent {
		t.Fatalf("sent %d bytes, expected at least %d (Q·|A|+P·|B|)", sent-sent0, minSent)
	}
	// Aggregation came back: at least R·|C| of partials.
	minRecv := 2 * int64(a.Rows) * int64(b.Cols) * 8
	if recv-recv0 < minRecv {
		t.Fatalf("received %d bytes, expected at least %d (R·|C|)", recv-recv0, minRecv)
	}
}

func TestMultiplyAutoRemote(t *testing.T) {
	addrs, _ := startWorkers(t, 4)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(173))
	a := bmat.RandomDense(rng, 32, 32, 8)
	b := bmat.RandomDense(rng, 32, 32, 8)
	got, params, err := d.MultiplyAuto(a, b, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if params.Tasks() < 4 {
		t.Fatalf("auto params %v underuse 4 workers", params)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("auto remote multiply wrong")
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Fatal("empty address list accepted")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}); err == nil {
		t.Fatal("dead address accepted")
	}
}

func TestDriverRejectsBadInputs(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(174))
	a := bmat.RandomDense(rng, 8, 8, 4)
	bad := bmat.RandomDense(rng, 6, 8, 4)
	if _, err := d.Multiply(a, bad, core.Params{P: 1, Q: 1, R: 1}); err == nil {
		t.Fatal("nonconformable accepted")
	}
	if _, err := d.Multiply(a, a, core.Params{P: 9, Q: 1, R: 1}); err == nil {
		t.Fatal("out-of-grid params accepted")
	}
}

func TestClosedDriverFails(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	rng := rand.New(rand.NewSource(175))
	a := bmat.RandomDense(rng, 4, 4, 2)
	if _, err := d.Multiply(a, a, core.Params{P: 1, Q: 1, R: 1}); err == nil {
		t.Fatal("closed driver accepted work")
	}
}

func TestWorkerPing(t *testing.T) {
	w := &Worker{}
	var reply PingReply
	if err := w.Ping(&PingArgs{}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Hostname == "" {
		t.Fatal("empty hostname")
	}
}

func TestWorkerMalformedBox(t *testing.T) {
	w := &Worker{}
	var reply MultiplyReply
	if err := w.Multiply(&MultiplyArgs{ILo: 2, IHi: 1}, &reply); err == nil {
		t.Fatal("malformed box accepted")
	}
}

func TestGNMFOverTheWire(t *testing.T) {
	addrs, workers := startWorkers(t, 2)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	eng, err := engine.New(engine.Config{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	hybrid := NewHybrid(d, eng, 1<<30)

	rng := rand.New(rand.NewSource(176))
	v := bmat.RandomSparse(rng, 24, 20, 4, 0.2)
	remote, err := ml.GNMF(hybrid, v, ml.GNMFOptions{Rank: 4, Iterations: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// The same query all-local must agree bit-for-bit: the wire transports
	// exact float64 payloads.
	local, err := ml.GNMF(eng, v, ml.GNMFOptions{Rank: 4, Iterations: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !remote.W.ToDense().EqualApprox(local.W.ToDense(), 1e-12) {
		t.Fatal("remote GNMF W diverges from local")
	}
	if !remote.H.ToDense().EqualApprox(local.H.ToDense(), 1e-12) {
		t.Fatal("remote GNMF H diverges from local")
	}
	served := 0
	for _, w := range workers {
		served += w.Multiplies()
	}
	if served == 0 {
		t.Fatal("no multiplications crossed the wire")
	}
}

func BenchmarkRemoteMultiply(b *testing.B) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	if _, err := Serve(l); err != nil {
		b.Fatal(err)
	}
	d, err := Dial([]string{l.Addr().String()})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(1))
	a := bmat.RandomDense(rng, 256, 256, 32)
	m2 := bmat.RandomDense(rng, 256, 256, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Multiply(a, m2, core.Params{P: 2, Q: 2, R: 2}); err != nil {
			b.Fatal(err)
		}
	}
	sent, recv := d.WireBytes()
	b.ReportMetric(float64(sent+recv)/float64(b.N), "wire-B/op")
}

func TestDriverFailsOverDeadWorker(t *testing.T) {
	// Worker 0 dies after the ping handshake; its cuboids must reassign to
	// worker 1 and the product must still be correct.
	deadL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Serve(deadL); err != nil {
		t.Fatal(err)
	}
	liveAddrs, liveWorkers := startWorkers(t, 1)

	d, err := Dial([]string{deadL.Addr().String(), liveAddrs[0]})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Kill worker 0: close its listener AND its accepted connection dies
	// with the test process's half — closing the listener stops new conns;
	// to break the live RPC connection, close the client from our side is
	// not possible, so shut the whole listener and rely on the worker's
	// accept loop exiting, then close the TCP conn via the driver's socket
	// being reset when the remote process would die. In-process we emulate
	// the crash by closing the listener and the server-side conns it owns.
	deadL.Close()
	// The rpc connection itself is still alive in-process (both halves are
	// ours), so sever it explicitly through the client: the first Call on a
	// closed client errors, which is exactly the failover trigger.
	d.members[0].mu.Lock()
	deadClient := d.members[0].client
	d.members[0].mu.Unlock()
	deadClient.Close()

	rng := rand.New(rand.NewSource(177))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	got, err := d.Multiply(a, b, core.Params{P: 2, Q: 2, R: 2})
	if err != nil {
		t.Fatalf("failover did not recover: %v", err)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("failover product wrong")
	}
	if liveWorkers[0].Multiplies() != 8 {
		t.Fatalf("live worker served %d cuboids, want all 8", liveWorkers[0].Multiplies())
	}
}

func TestPlanEvalOverTheWire(t *testing.T) {
	// A compiled plan evaluated on the Hybrid: its multiplications cross
	// real sockets, everything else runs locally.
	addrs, _ := startWorkers(t, 2)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	eng, err := engine.New(engine.Config{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	hybrid := NewHybrid(d, eng, 1<<30)

	rng := rand.New(rand.NewSource(178))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	prog, err := plan.Compile(plan.Mul(plan.T(plan.V("A")), plan.V("B")))
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Eval(hybrid, map[string]*bmat.BlockMatrix{"A": a, "B": b})
	if err != nil {
		t.Fatal(err)
	}
	at, err := eng.Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.Multiply(at, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().EqualApprox(want.ToDense(), 1e-12) {
		t.Fatal("plan over the wire diverged")
	}
	sent, _ := d.WireBytes()
	if sent == 0 {
		t.Fatal("no bytes crossed the wire")
	}
}
