package distnet

import (
	"fmt"
	"sort"
	"sync"

	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/matrix"
	"distme/internal/obs"
)

// The worker half of the one-sided pull data plane. A pull-mode cuboid
// arrives with placement manifests instead of operand payloads; the worker
// resolves each manifest against, in order: its content-addressed block
// cache (dedup — the driver hashed every slice it placed), its own handle
// store (entries it is the owner of), and its peer workers (one coalesced
// bounding-box GetBlocks per (handle, owner), bounded-concurrency). The
// driver stays the last-resort data source: any resolution failure is
// reported under errPullPrefix, which the driver answers by re-pushing the
// cuboid's blocks inline.

// errPullPrefix marks pull-resolution failures. The text wraps the
// underlying error, so unknown-handle and peer-fetch sentinels stay
// matchable by session recovery.
const errPullPrefix = "distnet: pull fetch"

// pullFetchConcurrency bounds concurrent peer fetches during one manifest
// resolution.
const pullFetchConcurrency = 4

// pullStats is one manifest resolution's accounting.
type pullStats struct {
	hits, fetches, peerBytes int64
}

func (a *pullStats) add(b pullStats) {
	a.hits += b.hits
	a.fetches += b.fetches
	a.peerBytes += b.peerBytes
}

// resolvePull materializes one manifest's blocks. Entries absent from a
// successfully-read owner band are structurally absent (sparse zero blocks)
// and are skipped — computeCuboid treats missing keys as zero, exactly like
// the push path skipping nil blocks.
func (w *Worker) resolvePull(parent obs.SpanID, epoch uint64, self string, m *codec.Manifest) ([]BlockRec, pullStats, error) {
	var st pullStats
	if m == nil || len(m.Entries) == 0 {
		return nil, st, nil
	}
	recs := make([]BlockRec, 0, len(m.Entries))
	// Pass 1: cache dedup. A digest hit returns the exact bytes the driver
	// hashed, so no fetch (and no bandwidth) is needed.
	unresolved := make(map[int][]int) // owner index → entry indices
	resolved := make(map[int]matrix.Block, len(m.Entries))
	for ei, e := range m.Entries {
		if e.HasDigest {
			if blk, ok := w.cache.lookup(epoch, e.Digest); ok {
				resolved[ei] = blk
				st.hits++
				continue
			}
		}
		unresolved[e.Owner] = append(unresolved[e.Owner], ei)
	}
	// Pass 2: owner bands. The local band reads the store; each remote owner
	// gets ONE coalesced bounding-box fetch, remote owners in parallel under
	// the concurrency bound.
	owners := make([]int, 0, len(unresolved))
	for o := range unresolved {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	type ownerResult struct {
		blocks map[bmat.BlockKey]matrix.Block
		stats  pullStats
		err    error
	}
	results := make(map[int]*ownerResult, len(owners))
	sem := make(chan struct{}, pullFetchConcurrency)
	var wg sync.WaitGroup
	for _, o := range owners {
		res := &ownerResult{}
		results[o] = res
		addr := m.Owners[o]
		entries := unresolved[o]
		if addr == self {
			// Local band: the store read; no wire traffic.
			local, err := w.localBand(m.Handle)
			if err != nil {
				res.err = err
				continue
			}
			res.blocks = local
			continue
		}
		wg.Add(1)
		go func(addr string, entries []int, res *ownerResult) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			args := &GetArgs{Handle: m.Handle, traceSpan: uint64(parent)}
			args.ILo, args.IHi, args.JLo, args.JHi = entryBox(m.Entries, entries)
			fetched, err := w.peerGet(parent, addr, args)
			if err != nil {
				res.err = err
				return
			}
			res.stats.fetches++
			res.blocks = make(map[bmat.BlockKey]matrix.Block, len(fetched))
			for _, r := range fetched {
				res.blocks[r.Key] = r.Block
				if r.Block != nil {
					res.stats.peerBytes += r.Block.SizeBytes()
				}
			}
		}(addr, entries, res)
	}
	wg.Wait()
	for _, o := range owners {
		res := results[o]
		if res.err != nil {
			return nil, st, fmt.Errorf("%s: %w", errPullPrefix, res.err)
		}
		st.add(res.stats)
		for _, ei := range unresolved[o] {
			e := m.Entries[ei]
			blk, ok := res.blocks[bmat.BlockKey{I: e.KeyI, J: e.KeyJ}]
			if !ok || blk == nil {
				continue // structurally absent: a sparse zero block
			}
			resolved[ei] = blk
			// Fetched slices enter the content-addressed cache so the next
			// cuboid needing this digest dedups instead of re-fetching.
			if e.HasDigest {
				if weight := blk.SizeBytes(); weight >= minCacheableBytes {
					w.cache.insert(epoch, e.Digest, blk, weight)
				}
			}
		}
	}
	for ei, e := range m.Entries {
		if blk, ok := resolved[ei]; ok {
			recs = append(recs, BlockRec{Key: bmat.BlockKey{I: e.KeyI, J: e.KeyJ}, Block: blk})
		}
	}
	return recs, st, nil
}

// entryBox is the block-coordinate bounding box of the listed manifest
// entries — the coalesced fetch window for one owner.
func entryBox(entries []codec.ManifestEntry, idxs []int) (ilo, ihi, jlo, jhi int) {
	first := true
	for _, ei := range idxs {
		e := entries[ei]
		if first {
			ilo, ihi, jlo, jhi = e.KeyI, e.KeyI+1, e.KeyJ, e.KeyJ+1
			first = false
			continue
		}
		if e.KeyI < ilo {
			ilo = e.KeyI
		}
		if e.KeyI+1 > ihi {
			ihi = e.KeyI + 1
		}
		if e.KeyJ < jlo {
			jlo = e.KeyJ
		}
		if e.KeyJ+1 > jhi {
			jhi = e.KeyJ + 1
		}
	}
	return
}

// preparePull resolves a pull-mode cuboid's manifests into ABlocks/BBlocks,
// recording the wire.pull span and folding the resolution counters into the
// reply and the worker's gauges.
func (w *Worker) preparePull(args *MultiplyArgs, reply *MultiplyReply) error {
	sp := w.tracer.Start(obs.SpanID(args.traceSpan), "wire.pull", obs.KindWorker)
	if sp.Active() {
		sp.SetCuboid(args.cuboidP, args.cuboidQ, args.cuboidR)
	}
	defer sp.End()
	var st pullStats
	aRecs, sa, err := w.resolvePull(sp.ID(), args.cacheEpoch, args.pullSelf, args.aManifest)
	if err == nil {
		st.add(sa)
		var sb pullStats
		var bRecs []BlockRec
		bRecs, sb, err = w.resolvePull(sp.ID(), args.cacheEpoch, args.pullSelf, args.bManifest)
		if err == nil {
			st.add(sb)
			args.ABlocks, args.BBlocks = aRecs, bRecs
		}
	}
	if err != nil {
		if sp.Active() {
			sp.SetAttr("error", err.Error())
		}
		w.pullErrors.Add(1)
		return err
	}
	if sp.Active() {
		sp.SetAttr("hits", fmt.Sprintf("%d", st.hits))
		sp.SetAttr("fetches", fmt.Sprintf("%d", st.fetches))
		sp.SetAttr("peer-bytes", fmt.Sprintf("%d", st.peerBytes))
	}
	reply.pullHits, reply.pullFetches, reply.pullPeerBytes = st.hits, st.fetches, st.peerBytes
	w.pullHits.Add(st.hits)
	w.pullFetches.Add(st.fetches)
	w.pullPeerBytes.Add(st.peerBytes)
	return nil
}

// WorkerPullStats snapshots the worker's pull-plane gauges for the debug
// endpoint.
type WorkerPullStats struct {
	// Hits counts manifest entries the content-addressed cache satisfied;
	// PeerFetches/PeerBytes count the coalesced fetches issued and the
	// payload they moved; Errors counts resolutions that failed (the driver
	// then re-pushed inline).
	Hits        int64 `json:"hits"`
	PeerFetches int64 `json:"peer_fetches"`
	PeerBytes   int64 `json:"peer_bytes"`
	Errors      int64 `json:"errors"`
}

// PullStats snapshots the worker's pull-resolution counters.
func (w *Worker) PullStats() WorkerPullStats {
	return WorkerPullStats{
		Hits:        w.pullHits.Load(),
		PeerFetches: w.pullFetches.Load(),
		PeerBytes:   w.pullPeerBytes.Load(),
		Errors:      w.pullErrors.Load(),
	}
}
