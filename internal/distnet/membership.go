package distnet

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"
)

// Typed failure sentinels of the real-network layer. They surface at the
// package root (distme.ErrWorkerDead, distme.ErrDeadlineExceeded) and match
// via errors.Is through the driver, hybrid, and ml layers.
var (
	// ErrWorkerDead reports an RPC that failed because the worker's
	// connection is broken (or was never re-established). The failure
	// detector and the per-call transport errors both produce it.
	ErrWorkerDead = errors.New("distnet: worker dead")

	// ErrDeadlineExceeded reports an RPC that outlived its per-call
	// deadline. Errors carrying it also match context.DeadlineExceeded.
	ErrDeadlineExceeded = errors.New("distnet: rpc deadline exceeded")

	// ErrNoWorkers reports a driver whose live membership drained to zero
	// (and local fallback was disabled).
	ErrNoWorkers = errors.New("distnet: no live workers")

	// ErrDriverClosed reports an operation on a driver after Close.
	ErrDriverClosed = errors.New("distnet: driver closed")
)

// MemberState is the failure detector's verdict on one worker.
type MemberState int32

const (
	// StateAlive: the last heartbeat (or RPC) succeeded.
	StateAlive MemberState = iota
	// StateSuspect: heartbeats started missing but the member has not yet
	// crossed the dead threshold; it is scheduled only when no Alive member
	// is available.
	StateSuspect
	// StateDead: the connection is closed or past the missed-beat
	// threshold. Dead members receive no work; the detector keeps trying to
	// reconnect them so a recovered worker rejoins automatically.
	StateDead
	// StateRemoved: explicitly evicted via RemoveWorker; never redialed.
	StateRemoved
)

// String names the state for reports and logs.
func (s MemberState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateRemoved:
		return "removed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// member is one worker in the driver's membership table. The table entry is
// permanent for the driver's lifetime (so counters and states are
// inspectable); only the client connection inside it comes and goes.
type member struct {
	addr string
	// slots bounds in-flight Multiply RPCs on this worker. Jobs that find
	// every live member's window full wait for a slot instead of piling
	// onto one worker's pipe — which is also what lets a worker added
	// mid-multiply pick up queued cuboids immediately.
	slots chan struct{}

	// tracker remembers which block digests this worker has received in
	// the current job epoch (the driver side of the content-addressed
	// block cache). It survives reconnects on purpose: a restarted worker
	// refuses stale references with the unknown-digest error and the
	// tracker is forgotten then.
	tracker sendTracker

	// Health-plane signals. Atomics so ClusterHealth and the autoscaler
	// read them without taking the member lock on the RPC hot path. The
	// lifetime counters are monotonic; the health plane windows them by
	// keeping base snapshots (see health.go).
	draining     atomic.Bool  // last refusal was the draining sentinel
	suspectTrans atomic.Int64 // lifetime Alive/Suspect transitions
	retries      atomic.Int64 // lifetime failed cuboid attempts retried off this member
	timeouts     atomic.Int64 // lifetime per-call deadline expiries
	stragglers   atomic.Int64 // lifetime successful-but-slow cuboid RPCs

	// Load snapshot ferried back on the most recent pong.
	loadInFlight       atomic.Int64
	loadStoreBytes     atomic.Int64
	loadStoreHandles   atomic.Int64
	loadStoreEvictions atomic.Int64

	mu        sync.Mutex
	client    *rpc.Client // nil while disconnected
	state     MemberState
	missed    int // consecutive failed heartbeats
	dialing   bool
	lastRTT   time.Duration
	deadSince time.Time // when the member last crossed into Dead; zero while live
}

// newMember creates a disconnected membership entry with the driver's
// per-worker in-flight window.
func (d *Driver) newMember(addr string) *member {
	slots := make(chan struct{}, d.opts.PerWorkerInflight)
	for i := 0; i < d.opts.PerWorkerInflight; i++ {
		slots <- struct{}{}
	}
	return &member{addr: addr, state: StateDead, slots: slots}
}

// MemberInfo is a read-only snapshot of one membership entry.
type MemberInfo struct {
	Addr    string
	State   MemberState
	LastRTT time.Duration
	// Missed is the member's consecutive failed-heartbeat count at snapshot
	// time (what stands between it and the Suspect/Dead thresholds).
	Missed int
	// Draining reports that the worker's last refusal was the draining
	// sentinel: it is shutting down gracefully and receives no new work.
	Draining bool
}

// noteLoad folds a pong's load snapshot into the member's health signals.
func (m *member) noteLoad(pong *PingReply) {
	m.loadInFlight.Store(pong.InFlight)
	m.loadStoreBytes.Store(pong.StoreBytes)
	m.loadStoreHandles.Store(pong.StoreHandles)
	m.loadStoreEvictions.Store(pong.StoreEvictions)
}

// snapshot returns the state and client under the member's lock.
func (m *member) snapshot() (MemberState, *rpc.Client) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state, m.client
}

// markAlive records a successful probe (heartbeat or reconnect).
func (m *member) markAlive(rtt time.Duration) {
	m.mu.Lock()
	if m.state != StateRemoved {
		m.state = StateAlive
		m.missed = 0
		m.lastRTT = rtt
		m.deadSince = time.Time{}
	}
	m.mu.Unlock()
	m.draining.Store(false)
}

// noteMissed records a failed heartbeat and applies the Suspect/Dead
// thresholds. When the member crosses the dead threshold its client is
// detached and returned so the caller can close it outside the lock.
func (m *member) noteMissed(suspectAfter, deadAfter int) (declaredDead bool, detached *rpc.Client) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == StateRemoved || m.state == StateDead {
		return false, nil
	}
	m.missed++
	if m.missed >= deadAfter {
		m.state = StateDead
		m.deadSince = time.Now()
		detached = m.client
		m.client = nil
		return true, detached
	}
	if m.missed >= suspectAfter && m.state != StateSuspect {
		m.state = StateSuspect
		m.suspectTrans.Add(1)
	}
	return false, nil
}

// Members returns a snapshot of the full membership table, including dead
// and removed entries, for introspection and reports.
func (d *Driver) Members() []MemberInfo {
	d.mu.Lock()
	members := append([]*member(nil), d.members...)
	d.mu.Unlock()
	out := make([]MemberInfo, 0, len(members))
	for _, m := range members {
		m.mu.Lock()
		out = append(out, MemberInfo{Addr: m.addr, State: m.state, LastRTT: m.lastRTT, Missed: m.missed, Draining: m.draining.Load()})
		m.mu.Unlock()
	}
	return out
}

// Workers returns the count of schedulable workers: members whose
// connection is up (Alive or Suspect). Dead and removed members — and the
// closed clients they once held — are excluded, so the count is safe to
// hand to the (P,Q,R) optimizer.
func (d *Driver) Workers() int {
	d.mu.Lock()
	members := append([]*member(nil), d.members...)
	d.mu.Unlock()
	n := 0
	for _, m := range members {
		state, client := m.snapshot()
		if client != nil && (state == StateAlive || state == StateSuspect) {
			n++
		}
	}
	return n
}

// AddWorker dials addr, verifies it with a Ping, and adds it to the live
// membership. It is safe mid-multiply: in-flight jobs pick it up on their
// next scheduling attempt — the dynamic-executor-allocation move the paper
// inherits from Spark (§5).
func (d *Driver) AddWorker(addr string) error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrDriverClosed
	}
	for _, m := range d.members {
		m.mu.Lock()
		dup := m.addr == addr && m.state != StateRemoved
		m.mu.Unlock()
		if dup {
			d.mu.Unlock()
			return fmt.Errorf("distnet: worker %s already a member", addr)
		}
	}
	d.mu.Unlock()

	m := d.newMember(addr)
	if err := d.connect(m, false); err != nil {
		return fmt.Errorf("distnet: add worker %s: %w", addr, err)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		_, client := m.snapshot()
		if client != nil {
			client.Close()
		}
		return ErrDriverClosed
	}
	d.members = append(d.members, m)
	d.mu.Unlock()
	d.rec.AddWorkerJoined()
	return nil
}

// RemoveWorker evicts addr from the membership and closes its connection.
// It is safe mid-multiply: the member's in-flight cuboids fail their call
// and reassign to live members. Removed members are never redialed.
func (d *Driver) RemoveWorker(addr string) error {
	d.mu.Lock()
	var target *member
	for _, m := range d.members {
		m.mu.Lock()
		match := m.addr == addr && m.state != StateRemoved
		m.mu.Unlock()
		if match {
			target = m
			break
		}
	}
	d.mu.Unlock()
	if target == nil {
		return fmt.Errorf("distnet: worker %s is not a member", addr)
	}
	target.mu.Lock()
	target.state = StateRemoved
	client := target.client
	target.client = nil
	target.mu.Unlock()
	if client != nil {
		client.Close()
	}
	d.rec.AddWorkerLeft()
	return nil
}

// connect (re)dials a member and verifies it with a Ping. reconnect marks
// whether this is a recovery of a previously-connected member (counted
// separately from first joins). Concurrent connects to the same member
// collapse into one.
func (d *Driver) connect(m *member, reconnect bool) error {
	m.mu.Lock()
	if m.state == StateRemoved {
		m.mu.Unlock()
		return fmt.Errorf("distnet: worker %s was removed", m.addr)
	}
	if m.client != nil {
		m.mu.Unlock()
		return nil
	}
	if m.dialing {
		m.mu.Unlock()
		return fmt.Errorf("distnet: worker %s: dial already in progress", m.addr)
	}
	m.dialing = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.dialing = false
		m.mu.Unlock()
	}()

	conn, err := net.DialTimeout("tcp", m.addr, d.opts.PingTimeout)
	if err != nil {
		return fmt.Errorf("%w: dial %s: %v", ErrWorkerDead, m.addr, err)
	}
	var tracker *sendTracker
	if !d.opts.DisableBlockCache {
		tracker = &m.tracker
	}
	client := rpc.NewClientWithCodec(newClientCodec(&countingConn{Conn: conn, wire: d.wire}, d.rec, tracker, d.tracer))
	start := time.Now()
	var pong PingReply
	if err := rpcCall(client, "Ping", &PingArgs{}, &pong, d.opts.PingTimeout); err != nil {
		client.Close()
		return fmt.Errorf("%w: ping %s: %v", ErrWorkerDead, m.addr, err)
	}
	rtt := time.Since(start)

	m.mu.Lock()
	if m.state == StateRemoved || m.client != nil {
		m.mu.Unlock()
		client.Close()
		return nil
	}
	m.client = client
	m.state = StateAlive
	m.missed = 0
	m.lastRTT = rtt
	m.deadSince = time.Time{}
	m.mu.Unlock()
	m.draining.Store(false)
	m.noteLoad(&pong)
	if reconnect {
		d.rec.AddReconnect()
	}
	return nil
}

// acquireMember returns the next schedulable member with a free in-flight
// slot, round-robin — Alive members first, Suspect ones only when no Alive
// member took the job. anyLive distinguishes "every live member is busy"
// (wait and retry) from "the pool has drained" (reconnect or fall back).
// The caller must release the member's slot after the call.
func (d *Driver) acquireMember() (picked *member, anyLive bool) {
	d.mu.Lock()
	members := append([]*member(nil), d.members...)
	start := d.rr
	d.rr++
	d.mu.Unlock()
	n := len(members)
	for _, want := range []MemberState{StateAlive, StateSuspect} {
		for i := 0; i < n; i++ {
			m := members[(start+i)%n]
			state, client := m.snapshot()
			if client == nil || state != want {
				continue
			}
			// A draining worker refuses new work; scheduling onto it only
			// burns a retry attempt. The detector marks it dead shortly
			// (Ping refuses too), so skip it rather than wait on its slots.
			if m.draining.Load() {
				continue
			}
			anyLive = true
			select {
			case <-m.slots:
				return m, true
			default:
			}
		}
	}
	return nil, anyLive
}

func (m *member) release() { m.slots <- struct{}{} }

// reconnectAny tries to resurrect one dead member right now (rather than
// waiting for the detector's next sweep). It reports whether any member
// came back.
func (d *Driver) reconnectAny() bool {
	d.mu.Lock()
	members := append([]*member(nil), d.members...)
	d.mu.Unlock()
	for _, m := range members {
		state, client := m.snapshot()
		if state != StateDead || client != nil {
			continue
		}
		if err := d.connect(m, true); err == nil {
			return true
		}
	}
	return false
}

// retireDead flips members that have stayed Dead for longer than olderThan
// into StateRemoved so the detector stops redialing them, and returns their
// addresses. The autoscaler's housekeeping calls this to reap workers that
// were killed (not drained) and never came back; a worker that recovers
// before the threshold rejoins normally via the detector's redial.
func (d *Driver) retireDead(olderThan time.Duration) []string {
	d.mu.Lock()
	members := append([]*member(nil), d.members...)
	d.mu.Unlock()
	var retired []string
	now := time.Now()
	for _, m := range members {
		m.mu.Lock()
		if m.state == StateDead && !m.deadSince.IsZero() && now.Sub(m.deadSince) >= olderThan {
			m.state = StateRemoved
			retired = append(retired, m.addr)
		}
		m.mu.Unlock()
	}
	for range retired {
		d.rec.AddWorkerRetired()
		d.rec.AddWorkerLeft()
	}
	return retired
}

// declareDead detaches and closes a member's client after a transport
// failure. Only the exact client the failed call used is detached, so a
// reconnect that raced in is not torn down.
func (d *Driver) declareDead(m *member, failed *rpc.Client) {
	m.mu.Lock()
	detached := false
	if m.client == failed && failed != nil {
		m.client = nil
		if m.state != StateRemoved {
			m.state = StateDead
			m.deadSince = time.Now()
		}
		detached = true
	}
	m.mu.Unlock()
	if failed != nil {
		failed.Close()
	}
	if detached {
		d.rec.AddWorkerDeclaredDead()
	}
}
