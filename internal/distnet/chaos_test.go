package distnet

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"net/rpc"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/engine"
	"distme/internal/matrix"
	"distme/internal/ml"
)

// ---------------------------------------------------------------------------
// Chaos TCP proxy: a seeded fault injector between driver and worker that
// delays accepts, severs connections after a random byte budget, and resets
// live streams — without touching either endpoint's code.

type chaosConfig struct {
	// AcceptDelayMax delays each accepted connection by a uniform draw in
	// [0, AcceptDelayMax).
	AcceptDelayMax time.Duration
	// DropRate is the per-connection probability of severing the stream
	// after a byte budget drawn uniformly from [1, DropBytesMax].
	DropRate     float64
	DropBytesMax int64
	// CleanConns exempts the first N connections (lets the initial dial
	// handshake through so the test exercises mid-job failures).
	CleanConns int
}

type chaosProxy struct {
	l      net.Listener
	target string
	cfg    chaosConfig

	mu    sync.Mutex
	rng   *rand.Rand
	conns int
}

func startChaosProxy(t *testing.T, target string, seed int64, cfg chaosConfig) *chaosProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{l: l, target: target, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			p.mu.Lock()
			p.conns++
			clean := p.conns <= cfg.CleanConns
			delay := time.Duration(0)
			if !clean && cfg.AcceptDelayMax > 0 {
				delay = time.Duration(p.rng.Int63n(int64(cfg.AcceptDelayMax)))
			}
			budget := int64(math.MaxInt64)
			if !clean && cfg.DropRate > 0 && p.rng.Float64() < cfg.DropRate {
				budget = 1 + p.rng.Int63n(cfg.DropBytesMax)
			}
			p.mu.Unlock()
			go p.handle(conn, delay, budget)
		}
	}()
	return p
}

func (p *chaosProxy) Addr() string { return p.l.Addr().String() }

func (p *chaosProxy) handle(conn net.Conn, delay time.Duration, budget int64) {
	if delay > 0 {
		time.Sleep(delay)
	}
	back, err := net.Dial("tcp", p.target)
	if err != nil {
		conn.Close()
		return
	}
	var remaining atomic.Int64
	remaining.Store(budget)
	sever := func() { conn.Close(); back.Close() }
	pipe := func(dst, src net.Conn) {
		buf := make([]byte, 4096)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				if remaining.Add(-int64(n)) < 0 {
					sever() // mid-stream cut: the reply (or request) dies here
					return
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					sever()
					return
				}
			}
			if err != nil {
				sever()
				return
			}
		}
	}
	go pipe(back, conn)
	go pipe(conn, back)
}

// ---------------------------------------------------------------------------
// Helpers.

// fastOpts are deterministic-latency elastic options for tests: tight
// deadlines, quick detector, cheap backoff.
func fastOpts() Options {
	return Options{
		HeartbeatInterval: 20 * time.Millisecond,
		PingTimeout:       500 * time.Millisecond,
		CallTimeout:       2 * time.Second,
		SuspectAfter:      1,
		DeadAfter:         2,
		JobAttempts:       8,
		RetryBackoff:      time.Millisecond,
		MaxBackoff:        20 * time.Millisecond,
	}
}

// bitIdentical compares two block matrices float64-bit for float64-bit —
// the chaos suite's correctness bar is exact equality with the
// failure-free run, not an epsilon.
func bitIdentical(t *testing.T, got, want *bmat.BlockMatrix) {
	t.Helper()
	g, w := got.ToDense(), want.ToDense()
	gr, gc := g.Dims()
	wr, wc := w.Dims()
	if gr != wr || gc != wc {
		t.Fatalf("shape %dx%d != %dx%d", gr, gc, wr, wc)
	}
	for i := range g.Data {
		if math.Float64bits(g.Data[i]) != math.Float64bits(w.Data[i]) {
			t.Fatalf("element %d differs bitwise: %v != %v", i, g.Data[i], w.Data[i])
		}
	}
}

// killWorker simulates a worker crash: stop accepting and cut every open
// connection immediately (no drain).
func killWorker(w *Worker) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w.Shutdown(ctx)
}

func localEngine(t *testing.T) *engine.Engine {
	t.Helper()
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	eng, err := engine.New(engine.Config{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// ---------------------------------------------------------------------------
// Chaos suite.

// TestChaosMultiplyByteIdentical runs the same multiply over clean sockets
// and through chaos proxies injecting accept delays and mid-stream
// connection cuts; the products must agree bit for bit.
func TestChaosMultiplyByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	a := bmat.RandomDense(rng, 32, 32, 4)
	b := bmat.RandomDense(rng, 32, 32, 4)
	params := core.Params{P: 4, Q: 2, R: 2}

	addrs, _ := startWorkers(t, 3)
	baseline, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer baseline.Close()
	want, err := baseline.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}

	var proxied []string
	for i, addr := range addrs {
		p := startChaosProxy(t, addr, int64(400+i), chaosConfig{
			AcceptDelayMax: 15 * time.Millisecond,
			DropRate:       0.6,
			DropBytesMax:   48 << 10,
			CleanConns:     1,
		})
		proxied = append(proxied, p.Addr())
	}
	d, err := DialOptions(proxied, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for round := 0; round < 3; round++ {
		got, err := d.Multiply(a, b, params)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		bitIdentical(t, got, want)
	}
}

// TestChaosGNMFByteIdentical runs GNMF through the Hybrid with its
// multiplications crossing chaos proxies and compares W and H bitwise
// against the failure-free hybrid run.
func TestChaosGNMFByteIdentical(t *testing.T) {
	addrs, _ := startWorkers(t, 2)
	rng := rand.New(rand.NewSource(301))
	v := bmat.RandomSparse(rng, 24, 20, 4, 0.2)
	gopts := ml.GNMFOptions{Rank: 4, Iterations: 2, Seed: 11}

	clean, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	want, err := ml.GNMF(NewHybrid(clean, localEngine(t), 1<<30), v, gopts)
	if err != nil {
		t.Fatal(err)
	}

	var proxied []string
	for i, addr := range addrs {
		p := startChaosProxy(t, addr, int64(500+i), chaosConfig{
			AcceptDelayMax: 10 * time.Millisecond,
			DropRate:       0.5,
			DropBytesMax:   32 << 10,
			CleanConns:     1,
		})
		proxied = append(proxied, p.Addr())
	}
	d, err := DialOptions(proxied, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err := ml.GNMF(NewHybrid(d, localEngine(t), 1<<30), v, gopts)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got.W, want.W)
	bitIdentical(t, got.H, want.H)
}

// TestWorkerKillBetweenCuboids kills one of two workers between multiplies;
// every cuboid must reassign to the survivor and the product stay
// bit-identical.
func TestWorkerKillBetweenCuboids(t *testing.T) {
	addrs, workers := startWorkers(t, 2)
	opts := fastOpts()
	opts.DisableHeartbeat = true // deterministic: death detected by the failed call itself
	d, err := DialOptions(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(302))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	params := core.Params{P: 2, Q: 2, R: 2}
	want, err := d.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}

	killWorker(workers[0])
	before := workers[1].Multiplies()
	got, err := d.Multiply(a, b, params)
	if err != nil {
		t.Fatalf("multiply after kill: %v", err)
	}
	bitIdentical(t, got, want)
	if served := workers[1].Multiplies() - before; served != 8 {
		t.Fatalf("survivor served %d cuboids, want all 8", served)
	}
	if d.Workers() != 1 {
		t.Fatalf("Workers() = %d after kill, want 1", d.Workers())
	}
	if dead := d.NetStats().WorkersDeclaredDead; dead == 0 {
		t.Fatal("kill did not surface on WorkersDeclaredDead")
	}
}

// slowWorker wraps a real worker and serializes its multiplications with a
// delay, so a mid-job membership change happens while cuboids are still
// queued driver-side.
type slowWorker struct {
	inner Worker
	delay time.Duration
	mu    sync.Mutex
}

func (s *slowWorker) Multiply(args *MultiplyArgs, reply *MultiplyReply) error {
	s.mu.Lock()
	time.Sleep(s.delay)
	s.mu.Unlock()
	return s.inner.Multiply(args, reply)
}

func (s *slowWorker) Ping(args *PingArgs, reply *PingReply) error {
	return s.inner.Ping(args, reply)
}

func startSlowWorker(t *testing.T, delay time.Duration) (string, *slowWorker) {
	t.Helper()
	sw := &slowWorker{delay: delay}
	srv := rpc.NewServer()
	if err := srv.RegisterName(serviceName, sw); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeCodec(NewServerCodec(conn))
		}
	}()
	return l.Addr().String(), sw
}

// TestAddWorkerMidMultiply adds a fresh worker while a multiply is in
// flight on a deliberately slow one; the newcomer must serve at least one
// queued cuboid, and the product must match the reference bitwise.
func TestAddWorkerMidMultiply(t *testing.T) {
	slowAddr, _ := startSlowWorker(t, 15*time.Millisecond)
	opts := fastOpts()
	opts.DisableHeartbeat = true
	opts.PerWorkerInflight = 2
	d, err := DialOptions([]string{slowAddr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(303))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	params := core.Params{P: 4, Q: 4, R: 1} // 16 queued cuboids

	type result struct {
		c   *bmat.BlockMatrix
		err error
	}
	done := make(chan result, 1)
	go func() {
		c, err := d.Multiply(a, b, params)
		done <- result{c, err}
	}()

	time.Sleep(30 * time.Millisecond)
	fastAddrs, fastWorkers := startWorkers(t, 1)
	if err := d.AddWorker(fastAddrs[0]); err != nil {
		t.Fatal(err)
	}

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !res.c.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("product wrong after mid-job join")
	}
	if fastWorkers[0].Multiplies() == 0 {
		t.Fatal("worker added mid-multiply served no cuboids")
	}
	if d.NetStats().WorkersJoined != 1 {
		t.Fatalf("WorkersJoined = %d, want 1", d.NetStats().WorkersJoined)
	}
}

// TestAllWorkersKilledDegradesToLocal kills the entire pool; Multiply must
// degrade to driver-local compute with a bit-identical product, and the
// Hybrid's GNMF must keep working on top of the dead driver.
func TestAllWorkersKilledDegradesToLocal(t *testing.T) {
	addrs, workers := startWorkers(t, 2)
	opts := fastOpts()
	opts.DisableHeartbeat = true
	opts.JobAttempts = 2
	d, err := DialOptions(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(304))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	params := core.Params{P: 2, Q: 2, R: 2}
	want, err := d.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range workers {
		killWorker(w)
	}
	got, err := d.Multiply(a, b, params)
	if err != nil {
		t.Fatalf("multiply with drained pool: %v", err)
	}
	bitIdentical(t, got, want)
	if d.NetStats().LocalFallbacks == 0 {
		t.Fatal("drained pool did not surface on LocalFallbacks")
	}
	if d.Workers() != 0 {
		t.Fatalf("Workers() = %d with all dead, want 0", d.Workers())
	}

	// GNMF via the Hybrid on the dead driver: every multiplication degrades
	// to compute (driver-local or engine-local) and the query still runs.
	eng := localEngine(t)
	v := bmat.RandomSparse(rng, 24, 20, 4, 0.2)
	gopts := ml.GNMFOptions{Rank: 4, Iterations: 2, Seed: 11}
	gotG, err := ml.GNMF(NewHybrid(d, eng, 1<<30), v, gopts)
	if err != nil {
		t.Fatalf("GNMF on drained pool: %v", err)
	}
	wantG, err := ml.GNMF(eng, v, gopts)
	if err != nil {
		t.Fatal(err)
	}
	if !gotG.W.ToDense().EqualApprox(wantG.W.ToDense(), 1e-12) {
		t.Fatal("degraded GNMF W diverges from local")
	}
}

// TestDetectorMarksDeadAndReconnects watches the failure detector retire a
// killed worker and — after a replacement worker reappears on the same
// address — bring it back into the live set.
func TestDetectorMarksDeadAndReconnects(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Serve(l)
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()

	opts := fastOpts()
	opts.HeartbeatInterval = 10 * time.Millisecond
	opts.PingTimeout = 200 * time.Millisecond
	d, err := DialOptions([]string{addr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	killWorker(w)
	deadline := time.Now().Add(2 * time.Second)
	for d.Workers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("detector never declared the killed worker dead")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A replacement worker binds the same address; the detector's redial
	// loop must re-admit it without any driver call.
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	if _, err := Serve(l2); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l2.Close() })
	deadline = time.Now().Add(2 * time.Second)
	for d.Workers() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("detector never reconnected the recovered worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if stats := d.NetStats(); stats.Reconnects == 0 {
		t.Fatalf("reconnect not counted: %+v", stats)
	}
	// The next successful probe records a heartbeat and its RTT.
	deadline = time.Now().Add(2 * time.Second)
	for {
		stats := d.NetStats()
		if stats.HeartbeatsSent > 0 && stats.HeartbeatRTTCount > 0 && stats.HeartbeatRTTMax > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat RTTs not recorded: %+v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestResumeMultiply simulates a driver crash/restart: a first checkpointed
// run completes some cuboids, a second driver resumes from the directory
// and must recompute only what is missing or damaged.
func TestResumeMultiply(t *testing.T) {
	addrs, workers := startWorkers(t, 2)
	opts := fastOpts()
	opts.DisableHeartbeat = true
	dir := t.TempDir()

	rng := rand.New(rand.NewSource(305))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	params := core.Params{P: 2, Q: 2, R: 2} // 8 cuboids

	d1, err := DialOptions(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d1.ResumeMultiply(dir, a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	d1.Close() // the "crash": driver gone, checkpoints on disk
	served := workers[0].Multiplies() + workers[1].Multiplies()
	if served != 8 {
		t.Fatalf("first run served %d cuboids, want 8", served)
	}

	// Restarted driver, same dir: everything is checkpointed, so no cuboid
	// is re-shipped.
	d2, err := DialOptions(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.ResumeMultiply(dir, a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)
	if now := workers[0].Multiplies() + workers[1].Multiplies(); now != served {
		t.Fatalf("full resume recomputed %d cuboids, want 0", now-served)
	}

	// Damage the checkpoint set: delete one cuboid, corrupt another — as a
	// crash mid-write would. Resume must recompute exactly those two.
	if err := os.Remove(filepath.Join(dir, "cuboid-00003.dmeb")); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(dir, "cuboid-00005.dmeb")
	data, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = d2.ResumeMultiply(dir, a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)
	if now := workers[0].Multiplies() + workers[1].Multiplies(); now != served+2 {
		t.Fatalf("partial resume recomputed %d cuboids, want exactly 2", now-served)
	}

	// A different job must refuse the directory rather than mix outputs.
	if _, err := d2.ResumeMultiply(dir, a, b, core.Params{P: 1, Q: 1, R: 1}); err == nil {
		t.Fatal("checkpoint dir accepted a different job")
	}
}

// TestDeadlineExceeded drives a Multiply into a worker that never answers
// within the deadline; with fallback disabled the typed sentinel must
// surface, matching both the package and context sentinels.
func TestDeadlineExceeded(t *testing.T) {
	slowAddr, _ := startSlowWorker(t, 300*time.Millisecond)
	opts := fastOpts()
	opts.DisableHeartbeat = true
	opts.DisableLocalFallback = true
	opts.CallTimeout = 30 * time.Millisecond
	opts.JobAttempts = 2
	d, err := DialOptions([]string{slowAddr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rng := rand.New(rand.NewSource(306))
	a := bmat.RandomDense(rng, 8, 8, 4)
	_, err = d.Multiply(a, a, core.Params{P: 1, Q: 1, R: 1})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error should match context.DeadlineExceeded, got %v", err)
	}
	if d.NetStats().DeadlineTimeouts == 0 {
		t.Fatal("timeout not counted")
	}
}

// TestWorkerGracefulShutdown exercises the drain path: Shutdown completes
// in-flight RPCs, refuses new ones, is idempotent, and unblocks Wait.
func TestWorkerGracefulShutdown(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w, err := Serve(l)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := rpc.NewClientWithCodec(newClientCodec(conn, nil, nil, nil))
	defer client.Close()
	var pong PingReply
	if err := client.Call(serviceName+".Ping", &PingArgs{}, &pong); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := w.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown errored: %v", err)
	}
	if err := w.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown not idempotent: %v", err)
	}
	w.Wait() // must not block after shutdown

	// The listener is closed and the connection severed.
	if _, err := net.DialTimeout("tcp", l.Addr().String(), 100*time.Millisecond); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
	if err := client.Call(serviceName+".Ping", &PingArgs{}, &pong); err == nil {
		t.Fatal("severed connection still answers")
	}
}

// TestDriverLifecycle pins the satellite fixes: Close is idempotent,
// Workers excludes dead members, RemoveWorker evicts, and a removed
// worker's cuboids land on the survivors.
func TestDriverLifecycle(t *testing.T) {
	addrs, workers := startWorkers(t, 3)
	opts := fastOpts()
	opts.DisableHeartbeat = true
	d, err := DialOptions(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", d.Workers())
	}
	if err := d.RemoveWorker(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if d.Workers() != 2 {
		t.Fatalf("Workers = %d after remove, want 2", d.Workers())
	}
	if err := d.RemoveWorker(addrs[0]); err == nil {
		t.Fatal("double remove accepted")
	}
	if err := d.RemoveWorker("127.0.0.1:9"); err == nil {
		t.Fatal("unknown remove accepted")
	}

	rng := rand.New(rand.NewSource(307))
	a := bmat.RandomDense(rng, 16, 16, 4)
	before := workers[0].Multiplies()
	c, err := d.Multiply(a, a, core.Params{P: 2, Q: 2, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a.ToDense(), a.ToDense()).Dense()
	if !c.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("product wrong after removal")
	}
	if workers[0].Multiplies() != before {
		t.Fatal("removed worker still received cuboids")
	}
	stats := d.NetStats()
	if stats.WorkersLeft != 1 {
		t.Fatalf("WorkersLeft = %d, want 1", stats.WorkersLeft)
	}

	d.Close()
	d.Close() // idempotent
	if _, err := d.Multiply(a, a, core.Params{P: 1, Q: 1, R: 1}); !errors.Is(err, ErrDriverClosed) {
		t.Fatalf("closed driver: want ErrDriverClosed, got %v", err)
	}
	if err := d.AddWorker(addrs[0]); !errors.Is(err, ErrDriverClosed) {
		t.Fatalf("AddWorker on closed driver: want ErrDriverClosed, got %v", err)
	}
}
