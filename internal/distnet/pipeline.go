package distnet

import (
	"context"
	"fmt"
	"sync"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/obs"
	"distme/internal/plan"
)

// Lazy pipeline execution over handles: a plan.Expr compiles into a DAG, the
// optimizer prices the whole pipeline (Eq.(4) extended to cumulative wire
// cost) before anything runs, and then every operator executes worker-side
// against resident bands — intermediates flow worker→worker, the driver sees
// only the final Fetch.

// Run compiles and executes a matrix expression over resident handles,
// returning the (still remote) result handle. Inputs are the session handles
// bound by name; intermediates are freed as soon as their last consumer has
// run. The caller owns the returned handle (Fetch it, feed it to the next
// Run, Pin it against eviction, or Free it).
func (s *Session) Run(ctx context.Context, x plan.Expr, binds map[string]*Handle) (*Handle, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	for name, h := range binds {
		if err := s.checkHandle(h); err != nil {
			return nil, fmt.Errorf("distnet: bind %q: %w", name, err)
		}
	}
	p, err := plan.Compile(x)
	if err != nil {
		return nil, err
	}
	root := s.d.tracer.Start(0, "pipeline.run", obs.KindDriver)
	if root.Active() {
		root.SetAttr("expr", x.String())
		root.SetAttr("nodes", fmt.Sprintf("%d", p.NumNodes()))
	}
	defer root.End()

	if err := s.price(p, binds, root); err != nil {
		return nil, err
	}

	apply := func(n plan.NodeInfo, a, b *Handle) (*Handle, error) {
		h, err := s.newExecHandle(n, a, b)
		if err != nil {
			return nil, err
		}
		err = s.withRecovery(ctx, h, func(ctx context.Context) error {
			return s.execParts(ctx, h)
		})
		if err != nil {
			return nil, err
		}
		s.handles[h.id] = h
		return h, nil
	}
	release := func(h *Handle) {
		if h != nil && !h.freed {
			_ = s.Free(ctx, h)
		}
	}
	return plan.EvalWith(p, binds, apply, release)
}

// pipeShape is the dims value the pricing pre-pass walks the plan with.
type pipeShape struct {
	rows, cols, blockSize int
}

func (d pipeShape) denseBytes() int64 { return int64(d.rows) * int64(d.cols) * 8 }

// pipeOps walks the compiled plan once over shapes only — validating
// conformability before any RPC — and renders it as the cost model's
// operator sequence plus the final fetch payload.
func (s *Session) pipeOps(p *plan.Program, binds map[string]*Handle) ([]core.PipeOp, int64, error) {
	shapes := make(map[string]pipeShape, len(binds))
	for name, h := range binds {
		shapes[name] = pipeShape{rows: h.rows, cols: h.cols, blockSize: h.blockSize}
	}
	var ops []core.PipeOp
	out, err := plan.EvalWith(p, shapes, func(n plan.NodeInfo, a, b pipeShape) (pipeShape, error) {
		o, err := outputShape(n, a, b)
		if err != nil {
			return pipeShape{}, err
		}
		op := core.PipeOp{ABytes: a.denseBytes(), OutBytes: o.denseBytes()}
		switch n.Kind {
		case plan.OpMul:
			op.Kind = core.PipeMul
			op.BBytes = b.denseBytes()
		case plan.OpTranspose:
			op.Kind = core.PipeTranspose
		default:
			op.Kind = core.PipeElementwise
			if !n.Unary() {
				op.BBytes = b.denseBytes()
			}
		}
		ops = append(ops, op)
		return o, nil
	}, nil)
	if err != nil {
		return nil, 0, err
	}
	return ops, out.denseBytes(), nil
}

// price runs the whole-pipeline optimizer pass before execution: the
// cumulative wire bytes a materialize-every-op execution would move through
// the driver versus what the resident execution moves worker→worker. The
// difference feeds the driver-bytes-avoided counter and the optimize span.
func (s *Session) price(p *plan.Program, binds map[string]*Handle, parent obs.Span) error {
	ops, fetchBytes, err := s.pipeOps(p, binds)
	if err != nil {
		return err
	}
	mat, res := core.PipelineCost(ops, len(s.workers), fetchBytes)
	pullRes := core.PipelinePullCost(ops, len(s.workers), fetchBytes)
	switch s.d.opts.Transfer {
	case core.TransferPush:
		s.pullExec = false
	case core.TransferPull:
		s.pullExec = true
	default:
		// Auto: pull exactly when its fan-out-divided peer term is strictly
		// cheaper than the eager resident estimate.
		s.pullExec = pullRes < res
	}
	sp := s.d.tracer.Start(parent.ID(), "pipeline.optimize", obs.KindDriver)
	if sp.Active() {
		sp.SetAttr("ops", fmt.Sprintf("%d", len(ops)))
		sp.SetAttr("materialized-bytes", fmt.Sprintf("%d", mat))
		sp.SetAttr("resident-bytes", fmt.Sprintf("%d", res))
		sp.SetAttr("pull-bytes", fmt.Sprintf("%d", pullRes))
		if s.pullExec {
			sp.SetAttr("transfer", "pull")
		} else {
			sp.SetAttr("transfer", "push")
		}
	}
	sp.End()
	if mat > res {
		s.d.rec.AddDriverBytesAvoided(mat - res)
	}
	return nil
}

// Price reports the optimizer's whole-pipeline wire estimate for an
// expression over the given bindings: the driver-routed bytes of
// materialize-every-op execution versus the worker→worker bytes of resident
// execution (including the final driver fetch).
func (s *Session) Price(x plan.Expr, binds map[string]*Handle) (materialized, resident int64, err error) {
	if err := s.check(); err != nil {
		return 0, 0, err
	}
	for name, h := range binds {
		if err := s.checkHandle(h); err != nil {
			return 0, 0, fmt.Errorf("distnet: bind %q: %w", name, err)
		}
	}
	p, err := plan.Compile(x)
	if err != nil {
		return 0, 0, err
	}
	ops, fetchBytes, err := s.pipeOps(p, binds)
	if err != nil {
		return 0, 0, err
	}
	mat, res := core.PipelineCost(ops, len(s.workers), fetchBytes)
	return mat, res, nil
}

// outputShape validates one operator's operand shapes and returns its output
// shape — the same conformability rules the engine enforces, applied before
// any network traffic.
func outputShape(n plan.NodeInfo, a, b pipeShape) (pipeShape, error) {
	switch n.Kind {
	case plan.OpMul:
		if a.cols != b.rows || a.blockSize != b.blockSize {
			return pipeShape{}, fmt.Errorf("distnet: operands not conformable (%dx%d × %dx%d)", a.rows, a.cols, b.rows, b.cols)
		}
		return pipeShape{rows: a.rows, cols: b.cols, blockSize: a.blockSize}, nil
	case plan.OpTranspose:
		return pipeShape{rows: a.cols, cols: a.rows, blockSize: a.blockSize}, nil
	case plan.OpScale:
		return a, nil
	case plan.OpAdd, plan.OpSub, plan.OpHadamard, plan.OpDivElem:
		if a.rows != b.rows || a.cols != b.cols || a.blockSize != b.blockSize {
			return pipeShape{}, fmt.Errorf("distnet: element-wise operands differ (%dx%d vs %dx%d)", a.rows, a.cols, b.rows, b.cols)
		}
		return a, nil
	default:
		return pipeShape{}, fmt.Errorf("distnet: unsupported pipeline operator %v", n.Kind)
	}
}

// execOpCode maps a plan operator to its wire code.
func execOpCode(k plan.OpKind) (uint8, bool) {
	switch k {
	case plan.OpMul:
		return execMul, true
	case plan.OpTranspose:
		return execTranspose, true
	case plan.OpAdd:
		return execAdd, true
	case plan.OpSub:
		return execSub, true
	case plan.OpHadamard:
		return execHadamard, true
	case plan.OpDivElem:
		return execDivElem, true
	case plan.OpScale:
		return execScale, true
	default:
		return 0, false
	}
}

// newExecHandle allocates the handle for one operator's output, carrying the
// operator and operands as lineage.
func (s *Session) newExecHandle(n plan.NodeInfo, a, b *Handle) (*Handle, error) {
	code, ok := execOpCode(n.Kind)
	if !ok {
		return nil, fmt.Errorf("distnet: unsupported pipeline operator %v", n.Kind)
	}
	sa := pipeShape{rows: a.rows, cols: a.cols, blockSize: a.blockSize}
	var sb pipeShape
	if b != nil {
		sb = pipeShape{rows: b.rows, cols: b.cols, blockSize: b.blockSize}
	}
	o, err := outputShape(n, sa, sb)
	if err != nil {
		return nil, err
	}
	h := &Handle{
		s: s, id: s.d.handleID.Add(1),
		rows: o.rows, cols: o.cols, blockSize: o.blockSize,
		ib: ceilDivInt(o.rows, o.blockSize),
		op: code, la: a, lb: b, scalar: n.Scalar,
	}
	if n.Unary() {
		h.lb = nil
	}
	return h, nil
}

func ceilDivInt(a, b int) int { return (a + b - 1) / b }

// execParts fans one operator out to the placement: each worker computes its
// output band against resident operands, fetching what it lacks from peers.
// Bands run concurrently; arithmetic order inside a band is fixed, so the
// result is byte-identical regardless of scheduling.
func (s *Session) execParts(ctx context.Context, h *Handle) error {
	sp := s.d.tracer.Start(0, "pipeline.exec", obs.KindDriver)
	if sp.Active() {
		sp.SetAttr("op", fmt.Sprintf("%d", h.op))
		sp.SetAttr("handle", fmt.Sprintf("%d", h.id))
	}
	defer sp.End()
	ps := s.parts(h.ib)
	aParts := s.partLocs(h.la)
	var bParts []PartLoc
	var bID uint64
	if h.lb != nil {
		bParts = s.partLocs(h.lb)
		bID = h.lb.id
	}
	if s.pullExec {
		s.d.rec.AddPullJob()
	}
	errs := make([]error, len(ps))
	bytes := make([]int64, len(ps))
	peer := make([]int64, len(ps))
	var wg sync.WaitGroup
	for i, p := range ps {
		wg.Add(1)
		go func(i int, p part) {
			defer wg.Done()
			args := &ExecArgs{
				Op: h.op, Out: h.id, Epoch: s.epoch,
				A: h.la.id, B: bID, Scalar: h.scalar,
				OutLo: p.lo, OutHi: p.hi,
				AParts: aParts, BParts: bParts,
				Self:      p.m.addr,
				Pull:      s.pullExec,
				traceSpan: uint64(sp.ID()),
			}
			var reply ExecReply
			if err := s.callMember(ctx, p.m, "ExecOp", args, &reply); err != nil {
				errs[i] = err
				return
			}
			bytes[i] = reply.Bytes
			peer[i] = reply.PeerBytes
		}(i, p)
	}
	wg.Wait()
	var total, peerTotal int64
	for i := range errs {
		if errs[i] != nil {
			return errs[i]
		}
		total += bytes[i]
		peerTotal += peer[i]
	}
	if peerTotal > 0 {
		s.d.rec.AddPullReply(0, 0, peerTotal)
	}
	if h.bytes != 0 {
		s.d.rec.AddResidentBytes(-h.bytes)
	}
	h.bytes = total
	s.d.rec.AddPipelineOp(total)
	return nil
}

// RunMaterialized executes the same compiled plan with every operator's
// inputs uploaded from the driver and its output fetched straight back — the
// worker→driver→worker baseline the resident pipeline exists to beat. The
// worker-side arithmetic and band placement are identical, so the result is
// byte-identical to Run's; only the traffic pattern differs. It exists for
// measurement (distme-bench -pipeline) and equivalence tests.
func (s *Session) RunMaterialized(ctx context.Context, x plan.Expr, binds map[string]*bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	p, err := plan.Compile(x)
	if err != nil {
		return nil, err
	}
	apply := func(n plan.NodeInfo, a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
		ha, err := s.Put(ctx, a)
		if err != nil {
			return nil, err
		}
		defer func() { _ = s.Free(ctx, ha) }()
		var hb *Handle
		if !n.Unary() {
			if hb, err = s.Put(ctx, b); err != nil {
				return nil, err
			}
			defer func() { _ = s.Free(ctx, hb) }()
		}
		h, err := s.newExecHandle(n, ha, hb)
		if err != nil {
			return nil, err
		}
		err = s.withRecovery(ctx, h, func(ctx context.Context) error { return s.execParts(ctx, h) })
		if err != nil {
			return nil, err
		}
		s.handles[h.id] = h
		out, err := s.Fetch(ctx, h)
		_ = s.Free(ctx, h)
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	return plan.EvalWith(p, binds, apply, nil)
}
