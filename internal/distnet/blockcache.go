package distnet

import (
	"container/list"
	"sync"

	"distme/internal/codec"
	"distme/internal/matrix"
)

// DefaultCacheBytes is the worker block cache's default capacity.
const DefaultCacheBytes int64 = 256 << 20

// DefaultCacheEpochWindow is how many job epochs a cached block survives
// without being referenced. One multiply bumps the driver's epoch once, so
// under a serial workload the window behaves like "keep blocks for the last
// N jobs"; under a concurrent serving workload it is what lets many
// in-flight jobs share one content-addressed cache instead of purging each
// other on every epoch bump.
const DefaultCacheEpochWindow = 32

// CacheStats is a snapshot of one worker's block-cache counters.
type CacheStats struct {
	// Insertions counts blocks added to the cache (first inline arrival).
	Insertions int64 `json:"insertions"`
	// Hits counts digest references resolved from the cache; Misses counts
	// references that failed (aged out, evicted, or never received) and
	// were answered with the unknown-digest error so the driver resends.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries displaced by the byte-capacity bound.
	Evictions int64 `json:"evictions"`
	// Bytes and Entries describe the current residency.
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
}

// blockCache is the worker-side content-addressed block store: a bounded
// LRU keyed by block digest. Correctness is carried entirely by the content
// addressing — a digest hit can only ever return the exact bytes the driver
// hashed — so the job epoch is purely a lifecycle bound. Each entry
// remembers the newest epoch that touched it, and entries whose epoch falls
// more than epochWindow behind the newest epoch seen are purged. That keeps
// residency bounded across job churn (the original single-epoch guarantee,
// relaxed to a window) while letting concurrent jobs — which each carry a
// distinct epoch — share warm blocks instead of purging each other.
type blockCache struct {
	mu          sync.Mutex
	capBytes    int64
	bytes       int64
	epoch       uint64 // newest epoch observed
	epochWindow uint64
	ll          *list.List // front = most recently used
	byDigest    map[codec.Digest]*list.Element

	insertions, hits, misses, evictions int64
}

type cacheEntry struct {
	dig    codec.Digest
	blk    matrix.Block
	weight int64
	epoch  uint64 // newest epoch that inserted or referenced this entry
}

// newBlockCache sizes a cache; capBytes 0 takes the default, negative
// disables caching entirely (returns nil; lookups then miss and inserts
// drop, which the wire protocol's resend path already tolerates).
// epochWindow 0 takes DefaultCacheEpochWindow.
func newBlockCache(capBytes int64, epochWindow int) *blockCache {
	if capBytes == 0 {
		capBytes = DefaultCacheBytes
	}
	if capBytes < 0 {
		return nil
	}
	if epochWindow <= 0 {
		epochWindow = DefaultCacheEpochWindow
	}
	return &blockCache{
		capBytes:    capBytes,
		epochWindow: uint64(epochWindow),
		ll:          list.New(),
		byDigest:    map[codec.Digest]*list.Element{},
	}
}

// insert stores a decoded block under its digest for the given epoch. An
// insert from a newer epoch first ages out entries that have fallen outside
// the epoch window; a duplicate insert refreshes the entry's epoch so hot
// blocks shared by many jobs stay resident.
func (c *blockCache) insert(epoch uint64, dg codec.Digest, blk matrix.Block, weight int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch > c.epoch {
		c.epoch = epoch
		c.expireLocked()
	}
	if el, ok := c.byDigest[dg]; ok {
		e := el.Value.(*cacheEntry)
		if epoch > e.epoch {
			e.epoch = epoch
		}
		c.ll.MoveToFront(el)
		return
	}
	if weight > c.capBytes {
		return // larger than the whole cache: not worth displacing everything
	}
	c.byDigest[dg] = c.ll.PushFront(&cacheEntry{dig: dg, blk: blk, weight: weight, epoch: epoch})
	c.bytes += weight
	c.insertions++
	for c.bytes > c.capBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.byDigest, e.dig)
		c.bytes -= e.weight
		c.evictions++
	}
}

// lookup resolves a digest reference. The digest alone carries correctness,
// so a hit is valid regardless of which epoch inserted the entry; the hit
// refreshes the entry's epoch, keeping blocks shared across concurrent jobs
// inside the lifecycle window.
func (c *blockCache) lookup(epoch uint64, dg codec.Digest) (matrix.Block, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch > c.epoch {
		c.epoch = epoch
		c.expireLocked()
	}
	el, ok := c.byDigest[dg]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if epoch > e.epoch {
		e.epoch = epoch
	}
	c.ll.MoveToFront(el)
	c.hits++
	return e.blk, true
}

// expireLocked drops entries whose last-touch epoch has fallen outside the
// window. Concurrent jobs interleave epochs, so LRU position does not
// strictly order last-touch epochs and the scan walks the whole list; it
// only runs when the newest-epoch watermark advances (once per job), and
// residency is already byte-bounded, so the walk stays cheap.
func (c *blockCache) expireLocked() {
	if c.epoch <= c.epochWindow {
		return
	}
	floor := c.epoch - c.epochWindow
	for el := c.ll.Back(); el != nil; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if e.epoch < floor {
			c.ll.Remove(el)
			delete(c.byDigest, e.dig)
			c.bytes -= e.weight
			c.evictions++
		}
		el = prev
	}
}

// stats snapshots the counters.
func (c *blockCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Insertions: c.insertions,
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Bytes:      c.bytes,
		Entries:    c.ll.Len(),
	}
}
