package distnet

import (
	"container/list"
	"sync"

	"distme/internal/codec"
	"distme/internal/matrix"
)

// DefaultCacheBytes is the worker block cache's default capacity.
const DefaultCacheBytes int64 = 256 << 20

// CacheStats is a snapshot of one worker's block-cache counters.
type CacheStats struct {
	// Insertions counts blocks added to the cache (first inline arrival).
	Insertions int64 `json:"insertions"`
	// Hits counts digest references resolved from the cache; Misses counts
	// references that failed (wrong epoch, evicted, or never received) and
	// were answered with the unknown-digest error so the driver resends.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries displaced by the byte-capacity bound.
	Evictions int64 `json:"evictions"`
	// Bytes and Entries describe the current residency.
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
}

// blockCache is the worker-side content-addressed block store: a bounded
// LRU keyed by block digest, scoped to the driver's current job epoch.
// Correctness is carried entirely by the content addressing — a digest hit
// can only ever return the exact bytes the driver hashed — so the epoch is
// purely a lifecycle bound: when a new job's first block arrives, the
// previous job's entries are purged, which is what keeps RemoveWorker/
// AddWorker churn from leaking cache entries across jobs.
type blockCache struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64
	epoch    uint64
	ll       *list.List // front = most recently used
	byDigest map[codec.Digest]*list.Element

	insertions, hits, misses, evictions int64
}

type cacheEntry struct {
	dig    codec.Digest
	blk    matrix.Block
	weight int64
}

// newBlockCache sizes a cache; capBytes 0 takes the default, negative
// disables caching entirely (returns nil; lookups then miss and inserts
// drop, which the wire protocol's resend path already tolerates).
func newBlockCache(capBytes int64) *blockCache {
	if capBytes == 0 {
		capBytes = DefaultCacheBytes
	}
	if capBytes < 0 {
		return nil
	}
	return &blockCache{
		capBytes: capBytes,
		ll:       list.New(),
		byDigest: map[codec.Digest]*list.Element{},
	}
}

// insert stores a decoded block under its digest for the given epoch. An
// insert from a newer epoch retires every older entry first; an insert from
// an older epoch (a straggler job racing a newer one) is not cached at all
// — its references will miss and the driver falls back to inline sends.
func (c *blockCache) insert(epoch uint64, dg codec.Digest, blk matrix.Block, weight int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch < c.epoch {
		return
	}
	if epoch > c.epoch {
		c.purgeLocked()
		c.epoch = epoch
	}
	if _, ok := c.byDigest[dg]; ok {
		return
	}
	if weight > c.capBytes {
		return // larger than the whole cache: not worth displacing everything
	}
	c.byDigest[dg] = c.ll.PushFront(&cacheEntry{dig: dg, blk: blk, weight: weight})
	c.bytes += weight
	c.insertions++
	for c.bytes > c.capBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.byDigest, e.dig)
		c.bytes -= e.weight
		c.evictions++
	}
}

// lookup resolves a digest reference for the given epoch.
func (c *blockCache) lookup(epoch uint64, dg codec.Digest) (matrix.Block, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		c.misses++
		return nil, false
	}
	el, ok := c.byDigest[dg]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).blk, true
}

func (c *blockCache) purgeLocked() {
	c.ll.Init()
	c.byDigest = map[codec.Digest]*list.Element{}
	c.bytes = 0
}

// stats snapshots the counters.
func (c *blockCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Insertions: c.insertions,
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
		Bytes:      c.bytes,
		Entries:    c.ll.Len(),
	}
}
