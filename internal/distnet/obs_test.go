package distnet

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"testing"
	"time"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/obs"
)

// startTracedWorkers is startWorkers with a shared tracer, so worker-side
// compute spans land in the same tree as the driver's.
func startTracedWorkers(t *testing.T, n int, tr *obs.Tracer) []string {
	t.Helper()
	var addrs []string
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		if _, err := ServeOptions(l, WorkerOptions{Tracer: tr}); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr().String())
	}
	return addrs
}

// spanIndex maps span IDs to spans and groups spans by name.
func spanIndex(spans []obs.SpanData) (byID map[obs.SpanID]obs.SpanData, byName map[string][]obs.SpanData) {
	byID = make(map[obs.SpanID]obs.SpanData, len(spans))
	byName = make(map[string][]obs.SpanData)
	for _, s := range spans {
		byID[s.ID] = s
		byName[s.Name] = append(byName[s.Name], s)
	}
	return byID, byName
}

// checkNoOrphans fails if any span references a parent that is neither 0 nor
// present in the snapshot.
func checkNoOrphans(t *testing.T, spans []obs.SpanData) {
	t.Helper()
	byID, _ := spanIndex(spans)
	for _, s := range spans {
		if s.Parent == 0 {
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Errorf("span %d (%s) references missing parent %d", s.ID, s.Name, s.Parent)
		}
	}
}

// checkOneSpanPerCuboid verifies the dispatch invariant: the spans named
// `name` carry each expected cuboid coordinate exactly once.
func checkOneSpanPerCuboid(t *testing.T, spans []obs.SpanData, name string, params core.Params) {
	t.Helper()
	_, byName := spanIndex(spans)
	got := map[[3]int]int{}
	for _, s := range byName[name] {
		p, q, r, ok := s.Cuboid()
		if !ok {
			t.Errorf("%s span %d has no cuboid coordinate", name, s.ID)
			continue
		}
		got[[3]int{p, q, r}]++
	}
	for p := 0; p < params.P; p++ {
		for q := 0; q < params.Q; q++ {
			for r := 0; r < params.R; r++ {
				if n := got[[3]int{p, q, r}]; n != 1 {
					t.Errorf("cuboid (%d,%d,%d): %d %q spans, want exactly 1", p, q, r, n, name)
				}
			}
		}
	}
	if len(got) != params.Tasks() {
		t.Errorf("%d distinct cuboids traced, want %d", len(got), params.Tasks())
	}
}

// TestTracedMultiplySpanTree checks the failure-free span tree of one remote
// multiply: a root, one cuboid span per dispatched cuboid, RPC attempts with
// wire children, worker compute spans parented across the wire, and no
// orphan parents — while the product stays byte-identical to an untraced run.
func TestTracedMultiplySpanTree(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	a := bmat.RandomDense(rng, 32, 32, 4)
	b := bmat.RandomDense(rng, 32, 32, 4)
	params := core.Params{P: 4, Q: 2, R: 2}

	// Untraced reference.
	refAddrs, _ := startWorkers(t, 2)
	ref, err := Dial(refAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, err := ref.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer()
	addrs := startTracedWorkers(t, 2, tr)
	opts := fastOpts()
	opts.Tracer = tr
	d, err := DialOptions(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	got, err := d.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)

	spans := tr.Snapshot().Spans
	byID, byName := spanIndex(spans)
	checkNoOrphans(t, spans)
	checkOneSpanPerCuboid(t, spans, "cuboid", params)

	if len(byName["distnet.multiply"]) != 1 {
		t.Fatalf("%d root spans, want 1", len(byName["distnet.multiply"]))
	}
	root := byName["distnet.multiply"][0]
	for _, c := range byName["cuboid"] {
		if c.Parent != root.ID {
			t.Errorf("cuboid span %d not parented to root", c.ID)
		}
	}
	// Every successful cuboid has an RPC attempt under it, and (sharing the
	// tracer) a worker compute span parented to that attempt.
	if len(byName["rpc.multiply"]) < params.Tasks() {
		t.Errorf("%d rpc.multiply spans, want >= %d", len(byName["rpc.multiply"]), params.Tasks())
	}
	if len(byName["worker.compute"]) != params.Tasks() {
		t.Errorf("%d worker.compute spans, want %d", len(byName["worker.compute"]), params.Tasks())
	}
	for _, w := range byName["worker.compute"] {
		parent, ok := byID[w.Parent]
		if !ok || parent.Name != "rpc.multiply" {
			t.Errorf("worker.compute span %d not parented to an rpc.multiply attempt", w.ID)
		}
	}
	// Wire spans carry payload bytes.
	for _, s := range byName["wire.send"] {
		if s.Bytes <= 0 {
			t.Errorf("wire.send span %d carries no bytes", s.ID)
		}
	}
	if len(byName["wire.send"]) == 0 || len(byName["wire.recv"]) == 0 {
		t.Error("no wire send/recv spans recorded")
	}
	if len(byName["aggregate"]) != 1 {
		t.Errorf("%d aggregate spans, want 1", len(byName["aggregate"]))
	}
}

// TestTraceSpanTreeUnderChaos reruns the chaos multiply with tracing on:
// retries and reassignments may multiply the RPC-attempt spans, but each
// dispatched cuboid must still close exactly one cuboid span, the tree must
// stay orphan-free, and the product must stay byte-identical to the
// failure-free untraced run.
func TestTraceSpanTreeUnderChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	a := bmat.RandomDense(rng, 32, 32, 4)
	b := bmat.RandomDense(rng, 32, 32, 4)
	params := core.Params{P: 4, Q: 2, R: 2}

	refAddrs, _ := startWorkers(t, 3)
	ref, err := Dial(refAddrs)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, err := ref.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTracer()
	addrs := startTracedWorkers(t, 3, tr)
	var proxied []string
	for i, addr := range addrs {
		p := startChaosProxy(t, addr, int64(520+i), chaosConfig{
			AcceptDelayMax: 10 * time.Millisecond,
			DropRate:       0.5,
			DropBytesMax:   48 << 10,
			CleanConns:     1,
		})
		proxied = append(proxied, p.Addr())
	}
	opts := fastOpts()
	opts.Tracer = tr
	d, err := DialOptions(proxied, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for round := 0; round < 3; round++ {
		mark := tr.Len()
		got, err := d.Multiply(a, b, params)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		bitIdentical(t, got, want)

		spans := tr.SnapshotSince(mark).Spans
		checkOneSpanPerCuboid(t, spans, "cuboid", params)
		// Under chaos a worker can still be computing an abandoned attempt
		// when the driver finishes, so worker-side spans from this round may
		// land after the snapshot; restrict the orphan check to driver-side
		// spans, whose parents always precede them in the buffer.
		var driverSide []obs.SpanData
		for _, s := range spans {
			if s.Name != "worker.compute" && s.Name != "wire.decode" {
				driverSide = append(driverSide, s)
			}
		}
		checkNoOrphans(t, driverSide)
	}
	if tr.Dropped() != 0 {
		t.Errorf("tracer dropped %d spans", tr.Dropped())
	}
}

// TestDriverDebugEndpointMidMultiply polls /debug/distme while a multiply is
// in flight on a deliberately slow worker and checks the snapshot decodes
// into the documented schema.
func TestDriverDebugEndpointMidMultiply(t *testing.T) {
	slowAddr, _ := startSlowWorker(t, 10*time.Millisecond)
	opts := fastOpts()
	opts.DisableHeartbeat = true
	opts.Tracer = obs.NewTracer()
	opts.DebugAddr = "127.0.0.1:0"
	d, err := DialOptions([]string{slowAddr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.DebugAddr() == "" {
		t.Fatal("DebugAddr empty despite Options.DebugAddr")
	}

	rng := rand.New(rand.NewSource(502))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	done := make(chan error, 1)
	go func() {
		_, err := d.Multiply(a, b, core.Params{P: 4, Q: 4, R: 1})
		done <- err
	}()

	time.Sleep(20 * time.Millisecond) // well inside the 16×10ms serialized job
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/distme", d.DebugAddr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap DriverDebug
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("mid-multiply snapshot is not valid JSON: %v\n%s", err, body)
	}
	if snap.Kind != "driver" {
		t.Errorf("kind = %q, want driver", snap.Kind)
	}
	if len(snap.Members) != 1 {
		t.Errorf("%d members, want 1", len(snap.Members))
	}
	if snap.InFlightCuboids <= 0 {
		t.Errorf("inflight_cuboids = %d mid-multiply, want > 0", snap.InFlightCuboids)
	}
	if snap.Trace == nil {
		t.Error("trace summary absent despite tracer")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWorkerServeDebug checks the worker-side debug endpoint's schema.
func TestWorkerServeDebug(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	w, err := ServeOptions(l, WorkerOptions{Tracer: obs.NewTracer()})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := w.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	d, err := Dial([]string{l.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rng := rand.New(rand.NewSource(503))
	a := bmat.RandomDense(rng, 8, 8, 4)
	got, err := d.Multiply(a, a, core.Params{P: 2, Q: 2, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a.ToDense(), a.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("product wrong")
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/distme", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var snap WorkerDebug
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("worker snapshot is not valid JSON: %v\n%s", err, body)
	}
	if snap.Kind != "worker" {
		t.Errorf("kind = %q, want worker", snap.Kind)
	}
	if snap.Multiplies != 4 {
		t.Errorf("multiplies = %d, want 4", snap.Multiplies)
	}
	if snap.Addr == "" {
		t.Error("worker addr missing from snapshot")
	}
	if snap.Trace == nil || snap.Trace.Completed == 0 {
		t.Error("worker trace summary empty despite served cuboids")
	}
}

// TestUntracedRunsRecordNothing pins the off state: a driver and workers
// without tracers must complete a multiply with no tracer anywhere to
// record into (compile-time nil threading), and MultiplyArgs must leave
// traceSpan zero so the wire carries the tracing-off sentinel.
func TestUntracedRunsRecordNothing(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	d, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Tracer() != nil {
		t.Fatal("untraced driver has a tracer")
	}
	if d.DebugAddr() != "" {
		t.Fatal("untraced driver serves a debug endpoint")
	}
	rng := rand.New(rand.NewSource(504))
	a := bmat.RandomDense(rng, 8, 8, 4)
	if _, err := d.Multiply(a, a, core.Params{P: 2, Q: 1, R: 1}); err != nil {
		t.Fatal(err)
	}
}
