package distnet

import (
	"context"
	"errors"
	"fmt"
	"net/rpc"
	"sort"
	"strings"

	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/obs"
	"distme/internal/shuffle"
)

// The driver half of the distributed block store. A Session snapshots a
// worker placement and an epoch; Handles name matrices whose blocks stay
// resident on those workers across pipeline operators, so intermediates move
// worker→worker and only Fetch results cross back to the driver. Losing a
// worker mid-pipeline is recoverable: every handle carries its lineage (the
// Put source or the operator and operand handles that produced it), and the
// session rebuilds resident state on a fresh placement.

// sessionAttempts bounds how many recovery rounds one session operation gets
// before it reports the underlying failure.
const sessionAttempts = 4

// Session is one epoch of the distributed block store: a placement snapshot
// (the live workers at NewSession or the last recovery) plus the handles
// resident on it. Sessions are NOT safe for concurrent use — pipelines are
// sequenced by the driver program, like a database session.
type Session struct {
	d       *Driver
	epoch   uint64
	workers []*member // ordered placement; bands assign by position

	handles    map[uint64]*Handle // live (unfreed) handles
	closed     bool
	recoveries int

	// pullExec is the last pipeline pricing's transfer verdict: operators
	// stream peer bands on demand instead of gathering eagerly. Mode never
	// affects results, so recovery replays under whatever value is current.
	pullExec bool
}

// Handle names a matrix resident in a session's workers, co-partitioned by
// block rows. The driver holds only this stub — the blocks stay remote until
// Fetch. A handle also carries its lineage so eviction or worker loss can be
// answered by recomputation.
type Handle struct {
	s          *Session
	id         uint64
	rows, cols int
	blockSize  int
	ib         int // block-row count, the partitioned axis

	freed  bool
	pinned bool
	bytes  int64 // resident payload at last build, for the gauge

	// Lineage: exactly one of src (Put) or op+la[+lb] (pipeline operator).
	src    *bmat.BlockMatrix
	op     uint8
	la, lb *Handle
	scalar float64

	// dig memoizes the src blocks' content digests for pull-mode manifests
	// (nil values mark blocks that ship without one). Valid because src is
	// immutable while the handle lives.
	dig map[bmat.BlockKey]*codec.Digest
}

// Rows returns the handle's element row count.
func (h *Handle) Rows() int { return h.rows }

// Cols returns the handle's element column count.
func (h *Handle) Cols() int { return h.cols }

// BlockSize returns the handle's block side length.
func (h *Handle) BlockSize() int { return h.blockSize }

// Pinned reports whether the handle's bands are pinned against eviction.
func (h *Handle) Pinned() bool { return h.pinned }

// liveMembers snapshots the schedulable members (connected, Alive or
// Suspect, not draining) in table order. Draining members are excluded so a
// session recovery re-snapshots pinned bands onto workers that will still
// exist when the drain window closes.
func (d *Driver) liveMembers() []*member {
	d.mu.Lock()
	members := append([]*member(nil), d.members...)
	d.mu.Unlock()
	var out []*member
	for _, m := range members {
		state, client := m.snapshot()
		if client != nil && (state == StateAlive || state == StateSuspect) && !m.draining.Load() {
			out = append(out, m)
		}
	}
	return out
}

// NewSession opens a distributed-block-store session on the current live
// membership. The returned session pins a placement snapshot; workers that
// die later are handled by lineage recovery, and workers added later join
// the placement at the next recovery.
func (d *Driver) NewSession(ctx context.Context) (*Session, error) {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, ErrDriverClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := d.liveMembers()
	if len(workers) == 0 {
		d.reconnectAny()
		if workers = d.liveMembers(); len(workers) == 0 {
			return nil, ErrNoWorkers
		}
	}
	return &Session{
		d:       d,
		epoch:   d.epoch.Add(1),
		workers: workers,
		handles: map[uint64]*Handle{},
	}, nil
}

// Workers returns the session's current placement width.
func (s *Session) Workers() int { return len(s.workers) }

// Recoveries returns how many lineage recoveries this session has run.
func (s *Session) Recoveries() int { return s.recoveries }

// part is one worker's slice of a handle: block rows [lo, hi).
type part struct {
	m      *member
	lo, hi int
}

// parts splits ib block rows across the placement, in order. Empty parts are
// kept: a Put still creates the (empty) store entry there, so existence
// checks stay definite.
func (s *Session) parts(ib int) []part {
	w := len(s.workers)
	ps := make([]part, 0, w)
	for t := 0; t < w; t++ {
		lo, hi := shuffle.GridSpan(t, ib, w)
		ps = append(ps, part{m: s.workers[t], lo: lo, hi: hi})
	}
	return ps
}

// partLocs renders a handle's placement for ExecArgs.
func (s *Session) partLocs(h *Handle) []PartLoc {
	ps := s.parts(h.ib)
	locs := make([]PartLoc, len(ps))
	for i, p := range ps {
		locs[i] = PartLoc{Addr: p.m.addr, Lo: p.lo, Hi: p.hi}
	}
	return locs
}

// callMember performs one store RPC on a member under its in-flight window
// and the driver's call deadline.
func (s *Session) callMember(ctx context.Context, m *member, method string, args, reply any) error {
	select {
	case <-m.slots:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer m.release()
	return s.d.call(m, method, args, reply, s.d.opts.CallTimeout)
}

// recoverableHandleErr recognizes failures lineage recovery can answer: dead
// or drained workers, missed deadlines, evicted or never-received handles,
// and worker→worker fetches that hit a dead peer.
func recoverableHandleErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrWorkerDead) || errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrNoWorkers) {
		return true
	}
	var se rpc.ServerError
	if errors.As(err, &se) {
		msg := se.Error()
		return msg == errUnknownHandleMsg || msg == errWorkerDrainingMsg ||
			strings.Contains(msg, errUnknownHandleMsg) || strings.Contains(msg, errPeerFetchPrefix) ||
			strings.Contains(msg, errPullPrefix)
	}
	return false
}

// evictionErr recognizes the specific recoverable failure that does not mean
// a worker died: the handle's bands are simply gone from a live worker's
// store (evicted, or never landed). Those are answered by rebuilding only
// the missing lineage, not by wiping and re-pushing the whole session —
// which, against a store smaller than the session's working set, would just
// re-trigger the eviction.
func evictionErr(err error) bool {
	var se rpc.ServerError
	if !errors.As(err, &se) {
		return false
	}
	msg := se.Error()
	return msg == errUnknownHandleMsg || strings.Contains(msg, errUnknownHandleMsg)
}

// sameSnapshot reports whether the driver's live membership still matches
// the session's placement — the discriminator between eviction (rebuild one
// handle) and churn (rebuild the session on a new placement).
func (s *Session) sameSnapshot() bool {
	live := s.d.liveMembers()
	if len(live) != len(s.workers) {
		return false
	}
	for i := range live {
		if live[i] != s.workers[i] {
			return false
		}
	}
	return true
}

// withRecovery runs fn, and on a recoverable failure rebuilds lost state
// from lineage and retries — the elasticity story of PR 2's Multiply,
// lifted to resident state. target, when non-nil, is the handle fn reads;
// an eviction on an unchanged placement rebuilds just its lineage chain
// (first retry only), anything else re-snapshots the placement and rebuilds
// every live handle.
func (s *Session) withRecovery(ctx context.Context, target *Handle, fn func(context.Context) error) error {
	var lastErr error
	for attempt := 0; attempt < sessionAttempts; attempt++ {
		if attempt > 0 {
			var err error
			if attempt == 1 && target != nil && evictionErr(lastErr) && s.sameSnapshot() {
				err = s.rebuildTargeted(ctx, target)
			} else {
				err = s.recover(ctx)
			}
			if err != nil {
				if !recoverableHandleErr(err) {
					return err
				}
				lastErr = err
				continue
			}
		}
		err := fn(ctx)
		if err == nil {
			return nil
		}
		if !recoverableHandleErr(err) || ctx.Err() != nil {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("distnet: pipeline failed after %d recovery attempts: %w", sessionAttempts, lastErr)
}

// rebuildTargeted recomputes one handle's lineage chain on the unchanged
// placement — the eviction path. The target lands last, so it is the
// store's most-recent entry when the caller retries.
func (s *Session) rebuildTargeted(ctx context.Context, target *Handle) error {
	s.recoveries++
	s.d.rec.AddPipelineRecovery()
	sp := s.d.tracer.Start(0, "pipeline.recover", obs.KindDriver)
	if sp.Active() {
		sp.SetAttr("targeted", "true")
		sp.SetAttr("handle", fmt.Sprintf("%d", target.id))
	}
	defer sp.End()

	rebuilt := map[*Handle]bool{}
	if err := s.rebuild(ctx, target, rebuilt); err != nil {
		return err
	}
	for h := range rebuilt {
		if h.freed {
			s.freeParts(ctx, h)
		}
	}
	// Lineage handles got fresh ids; re-key the live registry.
	reg := make(map[uint64]*Handle, len(s.handles))
	for _, h := range s.handles {
		reg[h.id] = h
	}
	s.handles = reg
	return nil
}

// recover re-snapshots the live placement, wipes the session epoch on it
// (stale bands from the old placement), and rebuilds every live handle from
// lineage under fresh ids. Fresh ids make bands on a worker that was dead
// during the wipe — and so still holds old ones — unreachable rather than
// wrong; its LRU retires them.
func (s *Session) recover(ctx context.Context) error {
	s.recoveries++
	s.d.rec.AddPipelineRecovery()
	sp := s.d.tracer.Start(0, "pipeline.recover", obs.KindDriver)
	defer sp.End()

	workers := s.d.liveMembers()
	if len(workers) == 0 {
		s.d.reconnectAny()
		if workers = s.d.liveMembers(); len(workers) == 0 {
			return ErrNoWorkers
		}
	}
	s.workers = workers
	if sp.Active() {
		sp.SetAttr("workers", fmt.Sprintf("%d", len(workers)))
	}
	for _, m := range workers {
		var reply FreeReply
		// Best effort: a worker that dies here fails the rebuild below and
		// the next recovery round drops it from the snapshot.
		_ = s.callMember(ctx, m, "FreeHandles", &FreeArgs{Epoch: s.epoch, AllEpoch: true}, &reply)
	}

	rebuilt := map[*Handle]bool{}
	ids := make([]uint64, 0, len(s.handles))
	for id := range s.handles {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	live := make([]*Handle, 0, len(ids))
	for _, id := range ids {
		live = append(live, s.handles[id])
	}
	for _, h := range live {
		if err := s.rebuild(ctx, h, rebuilt); err != nil {
			return err
		}
	}
	// Freed ancestors rebuilt transiently for their consumers are re-freed.
	for h := range rebuilt {
		if h.freed {
			s.freeParts(ctx, h)
		}
	}
	// Re-register live handles under their fresh ids.
	s.handles = map[uint64]*Handle{}
	for _, h := range live {
		s.handles[h.id] = h
	}
	return nil
}

// rebuild recomputes one handle's resident bands (ancestors first, memoized)
// on the current placement under a fresh id.
func (s *Session) rebuild(ctx context.Context, h *Handle, done map[*Handle]bool) error {
	if done[h] {
		return nil
	}
	if h.la != nil {
		if err := s.rebuild(ctx, h.la, done); err != nil {
			return err
		}
	}
	if h.lb != nil {
		if err := s.rebuild(ctx, h.lb, done); err != nil {
			return err
		}
	}
	h.id = s.d.handleID.Add(1)
	var err error
	if h.src != nil {
		err = s.push(ctx, h)
	} else {
		err = s.execParts(ctx, h)
	}
	if err != nil {
		return err
	}
	if h.pinned {
		if err := s.pinParts(ctx, h, false); err != nil {
			return err
		}
	}
	done[h] = true
	return nil
}

// Put uploads a matrix into the session, one block-row band per worker, and
// returns its handle. The source matrix is retained driver-side as the
// handle's lineage (recovery re-uploads it); callers must not mutate it
// while the handle lives.
func (s *Session) Put(ctx context.Context, m *bmat.BlockMatrix) (*Handle, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("distnet: put of nil matrix")
	}
	h := &Handle{
		s: s, id: s.d.handleID.Add(1),
		rows: m.Rows, cols: m.Cols, blockSize: m.BlockSize, ib: m.IB,
		src: m,
	}
	if err := s.withRecovery(ctx, h, func(ctx context.Context) error { return s.push(ctx, h) }); err != nil {
		return nil, err
	}
	s.handles[h.id] = h
	return h, nil
}

// push ships h's source matrix to the current placement.
func (s *Session) push(ctx context.Context, h *Handle) error {
	sp := s.d.tracer.Start(0, "pipeline.put", obs.KindDriver)
	if sp.Active() {
		sp.SetAttr("handle", fmt.Sprintf("%d", h.id))
	}
	defer sp.End()
	var bytes int64
	for _, p := range s.parts(h.ib) {
		args := &PutArgs{Handle: h.id, Epoch: s.epoch, Pin: h.pinned, traceSpan: uint64(sp.ID())}
		for i := p.lo; i < p.hi; i++ {
			for j := 0; j < h.src.JB; j++ {
				if blk := h.src.Block(i, j); blk != nil {
					args.Blocks = append(args.Blocks, BlockRec{Key: bmat.BlockKey{I: i, J: j}, Block: blk})
				}
			}
		}
		var reply PutReply
		if err := s.callMember(ctx, p.m, "PutBlocks", args, &reply); err != nil {
			return err
		}
		for i := range args.Blocks {
			bytes += args.Blocks[i].Block.SizeBytes()
		}
	}
	if h.bytes != 0 {
		s.d.rec.AddResidentBytes(-h.bytes)
	}
	h.bytes = bytes
	s.d.rec.AddPipelinePut(bytes)
	return nil
}

// Fetch materializes a handle back on the driver — the only point where a
// pipeline's data crosses driver-ward.
func (s *Session) Fetch(ctx context.Context, h *Handle) (*bmat.BlockMatrix, error) {
	if err := s.checkHandle(h); err != nil {
		return nil, err
	}
	var out *bmat.BlockMatrix
	err := s.withRecovery(ctx, h, func(ctx context.Context) error {
		out = bmat.New(h.rows, h.cols, h.blockSize)
		var bytes int64
		for _, p := range s.parts(h.ib) {
			var reply GetReply
			if err := s.callMember(ctx, p.m, "GetBlocks", &GetArgs{Handle: h.id, All: true}, &reply); err != nil {
				return err
			}
			for _, r := range reply.Blocks {
				out.SetBlock(r.Key.I, r.Key.J, r.Block)
				if r.Block != nil {
					bytes += r.Block.SizeBytes()
				}
			}
		}
		s.d.rec.AddPipelineFetch(bytes)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Free drops a handle's resident bands (best effort — a dead worker's band
// is gone anyway) and unregisters it. Freeing overrides pins.
func (s *Session) Free(ctx context.Context, h *Handle) error {
	if err := s.checkHandle(h); err != nil {
		return err
	}
	s.freeParts(ctx, h)
	h.freed = true
	delete(s.handles, h.id)
	return nil
}

func (s *Session) freeParts(ctx context.Context, h *Handle) {
	for _, p := range s.parts(h.ib) {
		var reply FreeReply
		_ = s.callMember(ctx, p.m, "FreeHandles", &FreeArgs{Handles: []uint64{h.id}}, &reply)
	}
	if h.bytes != 0 {
		s.d.rec.AddResidentBytes(-h.bytes)
		h.bytes = 0
	}
}

// Pin excludes a handle's bands from worker-store eviction (a promise the
// stores honor even past their byte bound); Unpin releases it.
func (s *Session) Pin(ctx context.Context, h *Handle) error {
	if err := s.checkHandle(h); err != nil {
		return err
	}
	if h.pinned {
		return nil
	}
	if err := s.withRecovery(ctx, h, func(ctx context.Context) error { return s.pinParts(ctx, h, false) }); err != nil {
		return err
	}
	h.pinned = true
	return nil
}

// Unpin releases a Pin, returning the handle's bands to LRU eviction.
func (s *Session) Unpin(ctx context.Context, h *Handle) error {
	if err := s.checkHandle(h); err != nil {
		return err
	}
	if !h.pinned {
		return nil
	}
	h.pinned = false
	return s.withRecovery(ctx, h, func(ctx context.Context) error { return s.pinParts(ctx, h, true) })
}

func (s *Session) pinParts(ctx context.Context, h *Handle, unpin bool) error {
	for _, p := range s.parts(h.ib) {
		var reply PinReply
		if err := s.callMember(ctx, p.m, "PinHandle", &PinArgs{Handle: h.id, Unpin: unpin}, &reply); err != nil {
			return err
		}
	}
	return nil
}

// Close retires the whole session epoch on its workers (best effort) and
// invalidates every handle.
func (s *Session) Close(ctx context.Context) error {
	if s.closed {
		return nil
	}
	s.closed = true
	for _, m := range s.workers {
		var reply FreeReply
		_ = s.callMember(ctx, m, "FreeHandles", &FreeArgs{Epoch: s.epoch, AllEpoch: true}, &reply)
	}
	var resident int64
	for _, h := range s.handles {
		resident += h.bytes
		h.freed = true
	}
	if resident != 0 {
		s.d.rec.AddResidentBytes(-resident)
	}
	s.handles = map[uint64]*Handle{}
	return nil
}

func (s *Session) check() error {
	if s.closed {
		return fmt.Errorf("distnet: session closed")
	}
	s.d.mu.Lock()
	closed := s.d.closed
	s.d.mu.Unlock()
	if closed {
		return ErrDriverClosed
	}
	return nil
}

func (s *Session) checkHandle(h *Handle) error {
	if err := s.check(); err != nil {
		return err
	}
	if h == nil || h.s != s {
		return fmt.Errorf("distnet: handle belongs to a different session")
	}
	if h.freed {
		return fmt.Errorf("distnet: handle %d already freed", h.id)
	}
	return nil
}
