package distnet

import (
	"container/list"
	"sort"
	"sync"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// DefaultStoreBytes is the worker handle store's default capacity.
const DefaultStoreBytes int64 = 512 << 20

// errUnknownHandleMsg is the transient refusal for a handle the store does
// not hold (evicted, freed, or never received — e.g. after a worker
// restart). The driver answers it by rebuilding the handle from lineage.
const errUnknownHandleMsg = "distnet: unknown handle"

// StoreStats is a snapshot of one worker's handle-store counters.
type StoreStats struct {
	// Handles and Blocks describe current residency; Bytes is their payload.
	Handles int   `json:"handles"`
	Blocks  int   `json:"blocks"`
	Bytes   int64 `json:"bytes"`
	// Pinned counts handles excluded from eviction.
	Pinned int `json:"pinned"`
	// Puts counts PutBlocks uploads; Execs counts pipeline operators run.
	Puts  int64 `json:"puts"`
	Execs int64 `json:"execs"`
	// Evictions counts unpinned handles displaced by the byte bound (each
	// later read triggers a driver-side lineage rebuild).
	Evictions int64 `json:"evictions"`
	// PeerFetches counts worker→worker GetBlocks calls this worker issued;
	// PeerFetchBytes is the payload they carried.
	PeerFetches    int64 `json:"peer_fetches"`
	PeerFetchBytes int64 `json:"peer_fetch_bytes"`
	// PeerLinks breaks the aggregate peer-fetch counters down per remote
	// address, sorted by address; the per-link sums equal the aggregates.
	PeerLinks []PeerLinkStats `json:"peer_links,omitempty"`
}

// PeerLinkStats is one worker→worker link's fetch traffic, as seen by the
// fetching side.
type PeerLinkStats struct {
	Addr    string `json:"addr"`
	Fetches int64  `json:"fetches"`
	Bytes   int64  `json:"bytes"`
}

// storeEntry is one handle's resident band: the block-row slice of a matrix
// this worker owns under the session's co-partitioning.
type storeEntry struct {
	id     uint64
	epoch  uint64
	blocks map[bmat.BlockKey]matrix.Block
	bytes  int64
	pins   int
	el     *list.Element // in the LRU only while unpinned
}

// handleStore is the worker half of the distributed block store: handle id →
// resident band, epoch-scoped to one driver session, ref-counted by pins,
// and evictable — a bounded LRU over the unpinned handles. Losing an entry
// is safe: reads of a missing handle return errUnknownHandleMsg and the
// driver recomputes the band from lineage.
type handleStore struct {
	mu       sync.Mutex
	capBytes int64 // ≤ 0 = unbounded
	bytes    int64
	ll       *list.List // front = most recently used, unpinned entries only
	byID     map[uint64]*storeEntry

	puts, execs, evictions, peerFetches, peerFetchBytes int64
	peerLinks                                           map[string]*peerLink
}

// peerLink accumulates one remote address's fetch traffic.
type peerLink struct {
	fetches, bytes int64
}

// newHandleStore sizes a store; capBytes 0 takes the default, negative means
// unbounded (tests exercising eviction pass small positive caps).
func newHandleStore(capBytes int64) *handleStore {
	if capBytes == 0 {
		capBytes = DefaultStoreBytes
	}
	return &handleStore{
		capBytes: capBytes,
		ll:       list.New(),
		byID:     map[uint64]*storeEntry{},
	}
}

func blocksWeight(blocks map[bmat.BlockKey]matrix.Block) int64 {
	var n int64
	for _, b := range blocks {
		if b != nil {
			n += b.SizeBytes()
		}
	}
	return n
}

// set installs (or replaces) a handle's band. An empty band still creates
// the entry, so existence checks distinguish "empty matrix slice" from
// "never received". pin > 0 starts the handle pinned.
func (s *handleStore) set(id, epoch uint64, pin bool, blocks map[bmat.BlockKey]matrix.Block, isPut bool) int64 {
	if blocks == nil {
		blocks = map[bmat.BlockKey]matrix.Block{}
	}
	w := blocksWeight(blocks)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.byID[id]; ok {
		s.removeLocked(old)
	}
	e := &storeEntry{id: id, epoch: epoch, blocks: blocks, bytes: w}
	if pin {
		e.pins = 1
	} else {
		e.el = s.ll.PushFront(e)
	}
	s.byID[id] = e
	s.bytes += w
	if isPut {
		s.puts++
	} else {
		s.execs++
	}
	s.evictLocked()
	return w
}

// get returns a handle's band (the live map — callers must not mutate it)
// and touches the LRU.
func (s *handleStore) get(id uint64) (map[bmat.BlockKey]matrix.Block, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	if e.el != nil {
		s.ll.MoveToFront(e.el)
	}
	return e.blocks, true
}

// pin adjusts a handle's pin count; pinned handles leave the LRU and cannot
// be evicted. Unpinning to zero re-enters the LRU as most recently used.
func (s *handleStore) pin(id uint64, unpin bool) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return false
	}
	if unpin {
		if e.pins > 0 {
			e.pins--
		}
		if e.pins == 0 && e.el == nil {
			e.el = s.ll.PushFront(e)
		}
	} else {
		e.pins++
		if e.el != nil {
			s.ll.Remove(e.el)
			e.el = nil
		}
	}
	s.evictLocked()
	return true
}

// free drops the given handles (pinned or not — Free overrides pins).
func (s *handleStore) free(ids []uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, id := range ids {
		if e, ok := s.byID[id]; ok {
			s.removeLocked(e)
			n++
		}
	}
	return n
}

// freeEpoch drops every handle of one session epoch (session Close, or the
// recovery wipe before a lineage rebuild).
func (s *handleStore) freeEpoch(epoch uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.byID {
		if e.epoch == epoch {
			s.removeLocked(e)
			n++
		}
	}
	return n
}

func (s *handleStore) removeLocked(e *storeEntry) {
	if e.el != nil {
		s.ll.Remove(e.el)
		e.el = nil
	}
	delete(s.byID, e.id)
	s.bytes -= e.bytes
}

// evictLocked displaces least-recently-used unpinned handles past the byte
// cap. Pinned bands never appear in the LRU, so a fully pinned store may
// exceed the cap — pins are a promise the driver made.
func (s *handleStore) evictLocked() {
	if s.capBytes <= 0 {
		return
	}
	for s.bytes > s.capBytes {
		back := s.ll.Back()
		if back == nil {
			return
		}
		s.removeLocked(back.Value.(*storeEntry))
		s.evictions++
	}
}

// addPeerFetch records one worker→worker fetch of bytes payload from addr,
// both in the aggregate counters and on the per-link row.
func (s *handleStore) addPeerFetch(addr string, bytes int64) {
	s.mu.Lock()
	s.peerFetches++
	s.peerFetchBytes += bytes
	if s.peerLinks == nil {
		s.peerLinks = map[string]*peerLink{}
	}
	l, ok := s.peerLinks[addr]
	if !ok {
		l = &peerLink{}
		s.peerLinks[addr] = l
	}
	l.fetches++
	l.bytes += bytes
	s.mu.Unlock()
}

// stats snapshots the counters.
func (s *handleStore) stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Handles:        len(s.byID),
		Bytes:          s.bytes,
		Puts:           s.puts,
		Execs:          s.execs,
		Evictions:      s.evictions,
		PeerFetches:    s.peerFetches,
		PeerFetchBytes: s.peerFetchBytes,
	}
	for _, e := range s.byID {
		st.Blocks += len(e.blocks)
		if e.pins > 0 {
			st.Pinned++
		}
	}
	if len(s.peerLinks) > 0 {
		st.PeerLinks = make([]PeerLinkStats, 0, len(s.peerLinks))
		for addr, l := range s.peerLinks {
			st.PeerLinks = append(st.PeerLinks, PeerLinkStats{Addr: addr, Fetches: l.fetches, Bytes: l.bytes})
		}
		sort.Slice(st.PeerLinks, func(i, j int) bool { return st.PeerLinks[i].Addr < st.PeerLinks[j].Addr })
	}
	return st
}
