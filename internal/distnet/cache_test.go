package distnet

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/obs"
)

// Block-cache churn suite: the content-addressed cache must only ever save
// bytes — never change results — across worker restarts, evictions, and
// membership churn. Blocks here are 8×8 dense (528 wire bytes), safely
// above minCacheableBytes so the digest machinery is actually engaged.

// cacheTestMatrices returns operands whose every block clears the
// cacheable threshold: a 4×4 grid of 8×8 dense blocks on each side, with
// P=Q=R=2 every A and B block ships to the single worker exactly twice.
func cacheTestMatrices(seed int64) (a, b *bmat.BlockMatrix) {
	rng := rand.New(rand.NewSource(seed))
	a = bmat.RandomDense(rng, 32, 32, 8)
	b = bmat.RandomDense(rng, 32, 32, 8)
	return a, b
}

// startCacheWorker serves one worker with explicit cache tuning.
func startCacheWorker(t *testing.T, cacheBytes int64) (string, *Worker) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	w, err := ServeOptions(l, WorkerOptions{CacheBytes: cacheBytes})
	if err != nil {
		t.Fatal(err)
	}
	return l.Addr().String(), w
}

// TestBlockCacheDedupReducesWireBytes runs the same multiply cold (cache
// disabled) and warm (cache on) against fresh workers; the warm run must
// send strictly fewer bytes and produce the bit-identical product.
func TestBlockCacheDedupReducesWireBytes(t *testing.T) {
	a, b := cacheTestMatrices(7001)
	params := core.Params{P: 2, Q: 2, R: 2}

	coldAddr, _ := startCacheWorker(t, 0)
	coldOpts := fastOpts()
	coldOpts.DisableBlockCache = true
	cold, err := DialOptions([]string{coldAddr}, coldOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	coldC, err := cold.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	coldSent, _ := cold.WireBytes()

	warmAddr, warmWorker := startCacheWorker(t, 0)
	warm, err := DialOptions([]string{warmAddr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	warmC, err := warm.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	warmSent, _ := warm.WireBytes()

	bitIdentical(t, warmC, coldC)
	if warmSent >= coldSent {
		t.Fatalf("dedup saved nothing: warm sent %d bytes, cold sent %d", warmSent, coldSent)
	}
	stats := warm.NetStats()
	if stats.CacheRefsSent == 0 || stats.CacheBytesSaved == 0 {
		t.Fatalf("no cache references recorded: %+v", stats)
	}
	if stats.CacheRefMisses != 0 {
		t.Fatalf("references missed on a healthy worker: %+v", stats)
	}
	ws := warmWorker.CacheStats()
	if ws.Insertions == 0 || ws.Hits == 0 {
		t.Fatalf("worker cache never engaged: %+v", ws)
	}
}

// TestWorkerRestartMidJobMissesCleanly re-runs a cuboid whose blocks the
// driver believes the worker already holds, after the worker restarted with
// an empty cache. The stale digest references must miss cleanly — the
// worker answers unknown-digest, the driver forgets and resends inline —
// and the cuboid's partial product must come back identical.
func TestWorkerRestartMidJobMissesCleanly(t *testing.T) {
	a, b := cacheTestMatrices(7002)
	addr, w := startCacheWorker(t, 0)

	opts := fastOpts()
	opts.HeartbeatInterval = 10 * time.Millisecond
	opts.PerWorkerInflight = 1
	d, err := DialOptions([]string{addr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// One cuboid covering the whole grid; assignDigests stamps the epoch
	// and digests exactly as multiply() would.
	args := &MultiplyArgs{ILo: 0, IHi: 4, JLo: 0, JHi: 4, KLo: 0, KHi: 4}
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			args.ABlocks = append(args.ABlocks, BlockRec{Key: bmat.BlockKey{I: i, J: k}, Block: a.Block(i, k)})
		}
	}
	for k := 0; k < 4; k++ {
		for j := 0; j < 4; j++ {
			args.BBlocks = append(args.BBlocks, BlockRec{Key: bmat.BlockKey{I: k, J: j}, Block: b.Block(k, j)})
		}
	}
	d.assignDigests([]*MultiplyArgs{args})

	reply1, err := d.runJob(context.Background(), args, obs.Span{})
	if err != nil {
		t.Fatal(err)
	}
	if d.NetStats().CacheRefMisses != 0 {
		t.Fatalf("first send should be all inline: %+v", d.NetStats())
	}

	// Crash the worker and bring up a replacement (empty cache) on the same
	// address; wait for the detector to readmit it.
	killWorker(w)
	deadline := time.Now().Add(2 * time.Second)
	for d.Workers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("killed worker never declared dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { l2.Close() })
	w2, err := Serve(l2)
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for d.Workers() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("replacement worker never readmitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Same job, same epoch: the tracker still claims every block was sent,
	// so this send is all references — and they must all miss cleanly.
	reply2, err := d.runJob(context.Background(), args, obs.Span{})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.NetStats().CacheRefMisses; got == 0 {
		t.Fatalf("stale references did not miss: %+v", d.NetStats())
	}
	if ws := w2.CacheStats(); ws.Misses == 0 || ws.Insertions == 0 {
		t.Fatalf("replacement worker cache counters: %+v", ws)
	}
	if len(reply1.CBlocks) != len(reply2.CBlocks) {
		t.Fatalf("reply sizes differ: %d vs %d", len(reply1.CBlocks), len(reply2.CBlocks))
	}
	for i := range reply1.CBlocks {
		d1 := reply1.CBlocks[i].Block.Dense()
		d2 := reply2.CBlocks[i].Block.Dense()
		if !d1.EqualApprox(d2, 0) {
			t.Fatalf("partial product %d differs after restart resend", i)
		}
	}
}

// TestMembershipChurnDoesNotLeakCacheEntries hammers RemoveWorker/AddWorker
// between multiplies against one long-lived worker process: every job runs
// in a fresh epoch, so the worker's cache residency must stay bounded by
// the epoch window's worth of distinct blocks instead of accumulating
// without bound across jobs. The window is pinned small (2 epochs) so a
// handful of rounds is enough to cross it and observe expiry.
func TestMembershipChurnDoesNotLeakCacheEntries(t *testing.T) {
	const epochWindow = 2
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	w, err := ServeOptions(l, WorkerOptions{CacheEpochWindow: epochWindow})
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	d, err := DialOptions([]string{addr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// 16 distinct A blocks + 16 distinct B blocks per job. Entries from the
	// last epochWindow+1 epochs may be resident at once (the newest epoch
	// plus the window behind it); anything older must have expired.
	const distinctPerJob = 32
	const maxResident = distinctPerJob * (epochWindow + 1)
	params := core.Params{P: 2, Q: 2, R: 2}
	for round := 0; round < epochWindow+3; round++ {
		a, b := cacheTestMatrices(int64(7100 + round))
		got, err := d.Multiply(a, b, params)
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
		if !got.ToDense().EqualApprox(want, 1e-9) {
			t.Fatalf("round %d product wrong", round)
		}
		stats := w.CacheStats()
		if stats.Entries > maxResident {
			t.Fatalf("round %d: cache leaked across epochs: %d entries resident, want <= %d (stats %+v)",
				round, stats.Entries, maxResident, stats)
		}
		// Churn the membership between jobs; the worker process (and its
		// cache) stays up, but the driver gets a fresh member + tracker.
		if err := d.RemoveWorker(addr); err != nil {
			t.Fatal(err)
		}
		if err := d.AddWorker(addr); err != nil {
			t.Fatal(err)
		}
	}
	stats := w.CacheStats()
	if stats.Evictions == 0 {
		t.Fatalf("no entry ever aged out of the epoch window: %+v", stats)
	}
	if stats.Insertions < 2*distinctPerJob {
		t.Fatalf("later jobs should have re-inserted their blocks: %+v", stats)
	}
}

// TestCacheEvictionChurnConverges squeezes the worker cache far below one
// job's working set so inserts continually evict; any reference that lands
// on an evicted block must be resent inline, and the product must still be
// bit-identical to the cold run.
func TestCacheEvictionChurnConverges(t *testing.T) {
	a, b := cacheTestMatrices(7003)
	params := core.Params{P: 2, Q: 2, R: 2}

	coldAddr, _ := startCacheWorker(t, 0)
	coldOpts := fastOpts()
	coldOpts.DisableBlockCache = true
	cold, err := DialOptions([]string{coldAddr}, coldOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	want, err := cold.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}

	// ~2 KiB holds only 3 of the 32 blocks a job ships.
	addr, w := startCacheWorker(t, 2048)
	d, err := DialOptions([]string{addr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err := d.Multiply(a, b, params)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, got, want)
	if ws := w.CacheStats(); ws.Evictions == 0 {
		t.Fatalf("tiny cache never evicted: %+v", ws)
	}
}

// TestCacheDisabledWorkerAlwaysRecovers points a caching driver at a worker
// whose cache is disabled outright: every digest reference must miss, every
// miss must recover via the inline resend, and the answer must be right.
func TestCacheDisabledWorkerAlwaysRecovers(t *testing.T) {
	a, b := cacheTestMatrices(7004)
	addr, w := startCacheWorker(t, -1)
	d, err := DialOptions([]string{addr}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	got, err := d.Multiply(a, b, core.Params{P: 2, Q: 2, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("product wrong against cache-disabled worker")
	}
	if d.NetStats().CacheRefMisses == 0 {
		t.Fatalf("driver never observed a miss: %+v", d.NetStats())
	}
	if ws := w.CacheStats(); ws != (CacheStats{}) {
		t.Fatalf("disabled cache should report zero stats: %+v", ws)
	}
}
