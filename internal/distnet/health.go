package distnet

import (
	"sync"
	"time"
)

// The health signal plane: one windowed score per worker, derived from
// signals the driver already collects — heartbeat RTTs and missed beats,
// Suspect transitions, per-cuboid retry/timeout counts, straggler RPCs, and
// the store occupancy/eviction pressure the pongs ferry back. The score
// feeds the autoscaler (autoscaler.go) and the /debug/distme endpoint.

// healthWindow is the score window: lifetime counters are differenced
// against a base snapshot at most this old, so a worker that misbehaved ten
// minutes ago but has been clean since scores healthy again.
const healthWindow = time.Second

// Score weights. A fresh Alive worker scores 1.0; signals subtract; the
// result clamps to [0, 1]. Dead and removed workers score 0 outright.
const (
	healthPenaltySuspect  = 0.4  // currently in Suspect state
	healthPenaltyMissed   = 0.15 // per consecutive missed heartbeat
	healthPenaltyDraining = 0.5  // refused work with the draining sentinel
	healthPenaltyEvent    = 0.1  // per windowed retry/timeout/straggler
	healthPenaltyEventCap = 0.5  // cap on the windowed-event subtraction
	// healthFlapTransitions is the windowed Alive/Suspect transition count
	// at which a worker counts as flapping.
	healthFlapTransitions = 2
)

// WorkerHealth is one member's health snapshot. Counter fields are windowed
// deltas (events within the last healthWindow-ish interval), not lifetimes.
type WorkerHealth struct {
	Addr     string `json:"addr"`
	State    string `json:"state"`
	Draining bool   `json:"draining"`
	// Score is the composite health in [0, 1]: 1 = healthy, 0 = dead.
	Score   float64       `json:"score"`
	LastRTT time.Duration `json:"last_rtt_ns"`
	// Load snapshot from the worker's last pong.
	InFlight     int64 `json:"in_flight"`
	StoreBytes   int64 `json:"store_bytes"`
	StoreHandles int64 `json:"store_handles"`
	// Windowed event counts.
	Retries            int64 `json:"retries"`
	Timeouts           int64 `json:"timeouts"`
	Stragglers         int64 `json:"stragglers"`
	SuspectTransitions int64 `json:"suspect_transitions"`
	StoreEvictions     int64 `json:"store_evictions"`
	// Flapping marks a worker bouncing between Alive and Suspect within the
	// window — the autoscaler's drain-don't-trust signal.
	Flapping bool `json:"flapping"`
}

// ClusterHealth is the driver's aggregate health snapshot.
type ClusterHealth struct {
	Workers []WorkerHealth `json:"workers"`
	// LiveWorkers counts schedulable members (connected Alive/Suspect, not
	// draining); QueueDepth is cuboids dispatched but not yet aggregated
	// (including ones waiting for an in-flight slot).
	LiveWorkers int   `json:"live_workers"`
	QueueDepth  int64 `json:"queue_depth"`
	// Pressure is QueueDepth over the pool's in-flight capacity
	// (LiveWorkers × PerWorkerInflight): <1 means slots are free, >1 means
	// cuboids are queueing. 0 when no workers are live.
	Pressure float64 `json:"pressure"`
	// MeanScore averages the live workers' scores; MeanRPC is the rolling
	// mean of successful cuboid RPC durations (the straggler baseline).
	MeanScore float64       `json:"mean_score"`
	MeanRPC   time.Duration `json:"mean_rpc_ns"`
}

// healthBase is one member's lifetime-counter snapshot, the subtrahend of
// the windowed deltas.
type healthBase struct {
	at                                             time.Time
	retries, timeouts, stragglers, suspects, evict int64
}

// healthState holds the per-member bases. Bases roll forward only when
// older than healthWindow, so ClusterHealth is effectively pure: the
// autoscaler and the debug endpoint can both call it without consuming
// each other's deltas.
type healthState struct {
	mu    sync.Mutex
	bases map[*member]healthBase
}

// ClusterHealth snapshots per-worker health scores and cluster pressure.
// Safe to call concurrently and mid-multiply.
func (d *Driver) ClusterHealth() ClusterHealth {
	d.mu.Lock()
	members := append([]*member(nil), d.members...)
	d.mu.Unlock()
	d.ewmaMu.Lock()
	meanRPC := d.ewmaRPC
	d.ewmaMu.Unlock()

	h := ClusterHealth{QueueDepth: d.inflight.Load(), MeanRPC: meanRPC}
	now := time.Now()
	d.health.mu.Lock()
	defer d.health.mu.Unlock()
	if d.health.bases == nil {
		d.health.bases = map[*member]healthBase{}
	}
	// Drop bases of members no longer in the table (retired + reaped).
	if len(d.health.bases) > 2*len(members) {
		present := map[*member]bool{}
		for _, m := range members {
			present[m] = true
		}
		for m := range d.health.bases {
			if !present[m] {
				delete(d.health.bases, m)
			}
		}
	}

	var scoreSum float64
	for _, m := range members {
		m.mu.Lock()
		state, missed, rtt := m.state, m.missed, m.lastRTT
		connected := m.client != nil
		m.mu.Unlock()

		cur := healthBase{
			at:         now,
			retries:    m.retries.Load(),
			timeouts:   m.timeouts.Load(),
			stragglers: m.stragglers.Load(),
			suspects:   m.suspectTrans.Load(),
			evict:      m.loadStoreEvictions.Load(),
		}
		base, ok := d.health.bases[m]
		if !ok {
			// First sighting: no history, so the window starts empty.
			base = cur
			d.health.bases[m] = base
		} else if now.Sub(base.at) > healthWindow {
			d.health.bases[m] = cur
		}

		wh := WorkerHealth{
			Addr:               m.addr,
			State:              state.String(),
			Draining:           m.draining.Load(),
			LastRTT:            rtt,
			InFlight:           m.loadInFlight.Load(),
			StoreBytes:         m.loadStoreBytes.Load(),
			StoreHandles:       m.loadStoreHandles.Load(),
			Retries:            cur.retries - base.retries,
			Timeouts:           cur.timeouts - base.timeouts,
			Stragglers:         cur.stragglers - base.stragglers,
			SuspectTransitions: cur.suspects - base.suspects,
			StoreEvictions:     cur.evict - base.evict,
		}
		wh.Flapping = wh.SuspectTransitions >= healthFlapTransitions

		switch {
		case state == StateDead, state == StateRemoved, !connected:
			wh.Score = 0
		default:
			score := 1.0
			if state == StateSuspect {
				score -= healthPenaltySuspect
			}
			score -= healthPenaltyMissed * float64(missed)
			if wh.Draining {
				score -= healthPenaltyDraining
			}
			events := float64(wh.Retries + wh.Timeouts + wh.Stragglers)
			if p := healthPenaltyEvent * events; p > healthPenaltyEventCap {
				score -= healthPenaltyEventCap
			} else {
				score -= p
			}
			if score < 0 {
				score = 0
			}
			wh.Score = score
			if !wh.Draining {
				h.LiveWorkers++
				scoreSum += score
			}
		}
		h.Workers = append(h.Workers, wh)
	}
	if h.LiveWorkers > 0 {
		h.MeanScore = scoreSum / float64(h.LiveWorkers)
		h.Pressure = float64(h.QueueDepth) / float64(h.LiveWorkers*d.opts.PerWorkerInflight)
	}
	return h
}
