package distnet

import (
	"context"
	"fmt"
	"sync"

	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/obs"
	"distme/internal/shuffle"
)

// Session.Multiply: the classic cuboid multiply over warm operands — handles
// already resident on the workers. In pull mode the driver ships only a
// placement manifest per cuboid (digests + owner addresses per slice) and
// the assigned worker demand-fetches the slices from their owners, so no
// operand byte crosses the driver link. Push mode materializes the operands
// driver-side and runs the established push multiply.

// Multiply runs C = A×B over two resident handles and returns the product
// driver-side along with the partitioning actually run. opts.Transfer picks
// the data plane: TransferPull ships manifests and lets workers fetch
// operand slices from the owning peers; TransferPush materializes the
// operands driver-side and pushes cuboids classically; TransferAuto prices
// both with Eq.(4) (pull's peer term at fan-out, seed dropped since the
// operands are resident) and takes the cheaper. Results are bit-identical
// across modes and under any fault schedule — a failed pull resolution
// downgrades that cuboid to an inline push retry.
func (s *Session) Multiply(ctx context.Context, a, b *Handle, opts MultiplyOptions) (*bmat.BlockMatrix, core.Params, error) {
	if err := s.checkHandle(a); err != nil {
		return nil, core.Params{}, err
	}
	if err := s.checkHandle(b); err != nil {
		return nil, core.Params{}, err
	}
	if !opts.Transfer.Valid() {
		return nil, core.Params{}, fmt.Errorf("distnet: unknown transfer mode %d", opts.Transfer)
	}
	if opts.CheckpointDir != "" {
		return nil, core.Params{}, fmt.Errorf("distnet: Session.Multiply does not checkpoint; use Driver.Execute")
	}
	if a.cols != b.rows || a.blockSize != b.blockSize {
		return nil, core.Params{}, fmt.Errorf("distnet: operands not conformable")
	}

	shape := s.handleShape(a, b)
	wc := core.WireCost{InputRatio: s.d.opts.Encoding.PlanRatio(), AggRatio: 1}
	pc := core.PullCost{Workers: len(s.workers), SeedResident: true}
	mode := opts.Transfer
	var params core.Params
	if opts.Params != nil {
		params = *opts.Params
		if mode == core.TransferAuto {
			// Fixed partitioning: Eq.(4) prices both planes at these params.
			if shape.CostBytesPull(params, wc, pc) < shape.CostBytesWire(params, wc) {
				mode = core.TransferPull
			} else {
				mode = core.TransferPush
			}
		}
	} else {
		mem := opts.WorkerMemBytes
		if mem <= 0 {
			mem = 1 << 30
		}
		slots := len(s.workers)
		var err error
		switch mode {
		case core.TransferPush:
			params, err = core.OptimizeWire(shape, mem, slots, wc)
		case core.TransferPull:
			params, err = core.OptimizePull(shape, mem, slots, wc, pc)
		default:
			params, mode, err = core.OptimizeTransfer(shape, mem, slots, wc, pc)
		}
		if err != nil {
			return nil, core.Params{}, err
		}
	}
	if params.P < 1 || params.P > shape.I || params.Q < 1 || params.Q > shape.J || params.R < 1 || params.R > shape.K {
		return nil, core.Params{}, fmt.Errorf("distnet: params %v outside grid %dx%dx%d", params, shape.I, shape.J, shape.K)
	}

	if mode == core.TransferPush {
		am, err := s.materialize(ctx, a)
		if err != nil {
			return nil, core.Params{}, err
		}
		bm, err := s.materialize(ctx, b)
		if err != nil {
			return nil, core.Params{}, err
		}
		c, err := s.d.multiply(ctx, am, bm, params, nil)
		return c, params, err
	}

	var out *bmat.BlockMatrix
	err := s.withRecovery(ctx, a, func(ctx context.Context) error {
		var err error
		out, err = s.pullMultiply(ctx, a, b, params)
		return err
	})
	if err != nil {
		return nil, core.Params{}, err
	}
	return out, params, nil
}

// handleShape renders two resident handles as the optimizer's Shape, using
// each handle's resident payload as its stored size.
func (s *Session) handleShape(a, b *Handle) core.Shape {
	return core.Shape{
		I:      a.ib,
		J:      ceilDivInt(b.cols, b.blockSize),
		K:      ceilDivInt(a.cols, a.blockSize),
		ABytes: a.bytes,
		BBytes: b.bytes,
		CBytes: int64(a.rows) * int64(b.cols) * 8,
	}
}

// materialize returns a driver-side copy of the handle: the retained Put
// source when present, else a Fetch.
func (s *Session) materialize(ctx context.Context, h *Handle) (*bmat.BlockMatrix, error) {
	if h.src != nil {
		return h.src, nil
	}
	return s.Fetch(ctx, h)
}

// ownerTable renders a handle's placement as a manifest owner list plus a
// block-row → owner-index lookup.
func (s *Session) ownerTable(h *Handle) ([]string, func(int) int) {
	ps := s.parts(h.ib)
	addrs := make([]string, len(ps))
	for i, p := range ps {
		addrs[i] = p.m.addr
	}
	return addrs, func(row int) int {
		for i, p := range ps {
			if row >= p.lo && row < p.hi {
				return i
			}
		}
		return 0
	}
}

// digestAt returns the content digest of the Put-source block at (i, j),
// memoized on the handle. Nil for absent blocks, blocks under the cacheable
// threshold, and handles without a retained source (pipeline outputs) —
// their manifest entries carry no digest and skip cache dedup.
func (h *Handle) digestAt(i, j int) *codec.Digest {
	if h.src == nil {
		return nil
	}
	key := bmat.BlockKey{I: i, J: j}
	if dg, ok := h.dig[key]; ok {
		return dg
	}
	var dg *codec.Digest
	if blk := h.src.Block(i, j); blk != nil && codec.EncodedBytes(blk) >= minCacheableBytes {
		// Manifest digests hash the bit-exact fp64 encoding regardless of
		// Options.Encoding: pull fetches move exact blocks (GetBlocks is
		// always fp64), so a lossy job encoding must not unify a fetched
		// exact block with a rounded pushed one.
		if v, err := codec.DigestOf(blk); err == nil {
			dg = &v
		}
	}
	if h.dig == nil {
		h.dig = map[bmat.BlockKey]*codec.Digest{}
	}
	h.dig[key] = dg
	return dg
}

// pullMultiply builds one manifest-mode cuboid job per voxel and dispatches
// them through the driver's scheduler — runJob's retry, downgrade-to-push,
// and local-fallback machinery all apply. Aggregation order is fixed by
// cuboid index, exactly like the push multiply.
func (s *Session) pullMultiply(ctx context.Context, a, b *Handle, params core.Params) (*bmat.BlockMatrix, error) {
	d := s.d
	gi := a.ib
	gj := ceilDivInt(b.cols, b.blockSize)
	gk := ceilDivInt(a.cols, a.blockSize)

	root := d.tracer.Start(0, "distnet.multiply", obs.KindDriver)
	if root.Active() {
		root.SetAttr("params", fmt.Sprintf("%v", params))
		root.SetAttr("grid", fmt.Sprintf("%dx%dx%d blocks", gi, gj, gk))
		root.SetAttr("transfer", "pull")
	}
	defer root.End()

	aOwners, aOwnerOf := s.ownerTable(a)
	bOwners, bOwnerOf := s.ownerTable(b)

	var jobs []*MultiplyArgs
	for p := 0; p < params.P; p++ {
		ilo, ihi := shuffle.GridSpan(p, gi, params.P)
		for q := 0; q < params.Q; q++ {
			jlo, jhi := shuffle.GridSpan(q, gj, params.Q)
			for r := 0; r < params.R; r++ {
				klo, khi := shuffle.GridSpan(r, gk, params.R)
				if ihi <= ilo || jhi <= jlo || khi <= klo {
					continue
				}
				args := &MultiplyArgs{
					ILo: ilo, IHi: ihi, JLo: jlo, JHi: jhi, KLo: klo, KHi: khi,
					cuboidP: p, cuboidQ: q, cuboidR: r,
					encoding:   d.opts.Encoding,
					pull:       true,
					pullInline: a.src != nil && b.src != nil,
					cacheEpoch: s.epoch,
					aManifest:  &codec.Manifest{Handle: a.id, Owners: aOwners},
					bManifest:  &codec.Manifest{Handle: b.id, Owners: bOwners},
				}
				for i := ilo; i < ihi; i++ {
					for k := klo; k < khi; k++ {
						var blk matrix.Block
						if a.src != nil {
							if blk = a.src.Block(i, k); blk == nil {
								continue // known absent: stays off the manifest
							}
						}
						e := codec.ManifestEntry{KeyI: i, KeyJ: k, Owner: aOwnerOf(i)}
						if dg := a.digestAt(i, k); dg != nil {
							e.HasDigest, e.Digest = true, *dg
						}
						args.aManifest.Entries = append(args.aManifest.Entries, e)
						if blk != nil {
							// Retained driver-side for the downgrade-to-push
							// retry and local fallback; pull frames skip it.
							args.ABlocks = append(args.ABlocks, BlockRec{Key: bmat.BlockKey{I: i, J: k}, Block: blk})
						}
					}
				}
				for k := klo; k < khi; k++ {
					for j := jlo; j < jhi; j++ {
						var blk matrix.Block
						if b.src != nil {
							if blk = b.src.Block(k, j); blk == nil {
								continue
							}
						}
						e := codec.ManifestEntry{KeyI: k, KeyJ: j, Owner: bOwnerOf(k)}
						if dg := b.digestAt(k, j); dg != nil {
							e.HasDigest, e.Digest = true, *dg
						}
						args.bManifest.Entries = append(args.bManifest.Entries, e)
						if blk != nil {
							args.BBlocks = append(args.BBlocks, BlockRec{Key: bmat.BlockKey{I: k, J: j}, Block: blk})
						}
					}
				}
				jobs = append(jobs, args)
			}
		}
	}

	replies := make([]*MultiplyReply, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for idx, args := range jobs {
		wg.Add(1)
		d.inflight.Add(1)
		go func(idx int, args *MultiplyArgs) {
			defer wg.Done()
			defer d.inflight.Add(-1)
			csp := d.tracer.Start(root.ID(), "cuboid", obs.KindDriver)
			csp.SetCuboid(args.cuboidP, args.cuboidQ, args.cuboidR)
			defer csp.End()
			reply, err := d.runJob(ctx, args, csp)
			if err != nil {
				if csp.Active() {
					csp.SetAttr("error", err.Error())
				}
				errs[idx] = err
				return
			}
			replies[idx] = reply
		}(idx, args)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("distnet: multiply: %w", err)
		}
	}

	agg := d.tracer.Start(root.ID(), "aggregate", obs.KindDriver)
	out := bmat.New(a.rows, b.cols, a.blockSize)
	for _, reply := range replies {
		for _, rec := range reply.CBlocks {
			dense, ok := rec.Block.(*matrix.Dense)
			if !ok {
				dense = rec.Block.Dense()
			}
			if existing := out.Block(rec.Key.I, rec.Key.J); existing != nil {
				matrix.AddInto(existing.(*matrix.Dense), dense)
			} else {
				out.SetBlock(rec.Key.I, rec.Key.J, dense)
			}
		}
	}
	agg.End()
	return out, nil
}
