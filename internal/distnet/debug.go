package distnet

import (
	"time"

	"distme/internal/metrics"
	"distme/internal/obs"
)

// The /debug/distme JSON schemas. Driver and worker serve the same shape of
// envelope — {"kind": "driver"|"worker", ...} — so an operator (or a script)
// can poll both sides of a job with one decoder. docs/OBSERVABILITY.md
// documents every field.

// debugRecentSpans bounds the recent-span list in one snapshot.
const debugRecentSpans = 32

// MemberDebug is one membership-table row in a driver snapshot.
type MemberDebug struct {
	Addr string `json:"addr"`
	// State is the failure detector's verdict: alive, suspect, dead, or
	// removed.
	State string `json:"state"`
	// LastRTTMicros is the last successful probe's round-trip time.
	LastRTTMicros int64 `json:"last_rtt_micros"`
	// MissedHeartbeats is the consecutive failed-probe count.
	MissedHeartbeats int `json:"missed_heartbeats"`
}

// DriverDebug is the driver's /debug/distme snapshot.
type DriverDebug struct {
	Kind string    `json:"kind"` // always "driver"
	Time time.Time `json:"time"`
	// JobEpoch is the current multiply-job epoch (the lifecycle watermark
	// for block-cache digest references on the wire).
	JobEpoch uint64 `json:"job_epoch"`
	// ActiveJobs counts multiply jobs currently inside the driver;
	// InFlightCuboids counts cuboids dispatched but not yet aggregated.
	ActiveJobs      int64 `json:"active_jobs"`
	InFlightCuboids int64 `json:"inflight_cuboids"`
	// WireSentBytes / WireReceivedBytes are real socket traffic since Dial.
	WireSentBytes     int64 `json:"wire_sent_bytes"`
	WireReceivedBytes int64 `json:"wire_received_bytes"`
	// Members is the full membership table, including dead/removed entries.
	Members []MemberDebug `json:"members"`
	// Health is the health plane's snapshot: per-worker windowed scores,
	// queue depth, and cluster pressure.
	Health ClusterHealth `json:"health"`
	// Autoscaler is the decision log of the running supervisor (absent when
	// none is running).
	Autoscaler []ScaleEvent `json:"autoscaler,omitempty"`
	// Net is the driver's elasticity and wire-codec counter block.
	Net metrics.NetStats `json:"net"`
	// Serve is the serving plane's snapshot (queues, tenants, admission
	// counters), present when a server registered via SetServeDebug.
	Serve any `json:"serve,omitempty"`
	// Trace summarizes the tracer (absent when tracing is off).
	Trace *obs.TraceDebug `json:"trace,omitempty"`
}

// DebugSnapshot captures the driver's current state for the debug endpoint.
// It is safe to call concurrently with multiplies.
func (d *Driver) DebugSnapshot() DriverDebug {
	sent, received := d.WireBytes()
	d.serveMu.Lock()
	serveFn := d.serveDebug
	d.serveMu.Unlock()
	var serve any
	if serveFn != nil {
		serve = serveFn()
	}
	members := d.Members()
	rows := make([]MemberDebug, len(members))
	for i, m := range members {
		rows[i] = MemberDebug{
			Addr:             m.Addr,
			State:            m.State.String(),
			LastRTTMicros:    m.LastRTT.Microseconds(),
			MissedHeartbeats: m.Missed,
		}
	}
	return DriverDebug{
		Kind:              "driver",
		Time:              time.Now(),
		JobEpoch:          d.epoch.Load(),
		ActiveJobs:        d.activeJobs.Load(),
		InFlightCuboids:   d.inflight.Load(),
		WireSentBytes:     sent,
		WireReceivedBytes: received,
		Members:           rows,
		Health:            d.ClusterHealth(),
		Autoscaler:        d.AutoscalerEvents(),
		Net:               d.NetStats(),
		Serve:             serve,
		Trace:             d.tracer.DebugSnapshot(debugRecentSpans),
	}
}

// WorkerDebug is the worker's /debug/distme snapshot.
type WorkerDebug struct {
	Kind string    `json:"kind"` // always "worker"
	Time time.Time `json:"time"`
	// Addr is the worker's listen address ("" for unserved test workers).
	Addr string `json:"addr,omitempty"`
	// Draining reports graceful shutdown in progress (new work refused).
	Draining bool `json:"draining"`
	// Multiplies is the count of cuboids served since start; InFlightRPCs
	// the RPCs currently executing.
	Multiplies   int   `json:"multiplies"`
	InFlightRPCs int64 `json:"inflight_rpcs"`
	// Cache is the content-addressed block cache's occupancy and counters.
	Cache CacheStats `json:"cache"`
	// Store is the distributed block store's resident-handle occupancy and
	// counters (puts, execs, evictions, worker→worker fetches).
	Store StoreStats `json:"store"`
	// Pull is the one-sided pull plane's resolution counters: cache dedup
	// hits, coalesced peer fetches and their payload, failed resolutions.
	Pull WorkerPullStats `json:"pull"`
	// Trace summarizes the tracer (absent when tracing is off).
	Trace *obs.TraceDebug `json:"trace,omitempty"`
}

// DebugSnapshot captures the worker's current state for the debug endpoint.
// It is safe to call concurrently with served RPCs.
func (w *Worker) DebugSnapshot() WorkerDebug {
	w.mu.Lock()
	draining := w.draining
	multiplies := w.multiplies
	var addr string
	if w.listener != nil {
		addr = w.listener.Addr().String()
	}
	w.mu.Unlock()
	return WorkerDebug{
		Kind:         "worker",
		Time:         time.Now(),
		Addr:         addr,
		Draining:     draining,
		Multiplies:   multiplies,
		InFlightRPCs: w.inflightN.Load(),
		Cache:        w.CacheStats(),
		Store:        w.StoreStats(),
		Pull:         w.PullStats(),
		Trace:        w.tracer.DebugSnapshot(debugRecentSpans),
	}
}

// ServeDebug starts the worker's introspection endpoint on addr (port 0
// picks a free port). The caller closes the returned server; Shutdown does
// not.
func (w *Worker) ServeDebug(addr string) (*obs.Server, error) {
	return obs.Serve(addr, func() any { return w.DebugSnapshot() })
}
