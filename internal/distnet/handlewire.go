package distnet

import (
	"encoding/binary"
	"fmt"
	"math"

	"distme/internal/bmat"
	"distme/internal/codec"
)

// Wire layouts for the distributed block store's messages. Handle traffic
// never uses digest references or lossy encodings: resident bands are the
// determinism anchor, so every block ships inline as bit-exact fp64.

func appendPlainBlocks(w *frameWriter, recs []BlockRec) error {
	w.uvarint(uint64(len(recs)))
	for i := range recs {
		rec := &recs[i]
		w.uvarint(uint64(rec.Key.I))
		w.uvarint(uint64(rec.Key.J))
		if err := w.appendInlineBlock(rec.Block, codec.EncodingFP64); err != nil {
			return err
		}
	}
	return nil
}

func decodePlainBlocks(rd *wireReader) ([]BlockRec, error) {
	n, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(rd.buf)-rd.off) {
		return nil, fmt.Errorf("%w: %d handle blocks in %d bytes", errWire, n, len(rd.buf)-rd.off)
	}
	recs := make([]BlockRec, 0, n)
	for i := uint64(0); i < n; i++ {
		ki, err1 := rd.uvarint()
		kj, err2 := rd.uvarint()
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: handle block header", errWire)
		}
		blk, _, err := decodeInlineBlock(rd)
		if err != nil {
			return nil, err
		}
		recs = append(recs, BlockRec{Key: bmat.BlockKey{I: int(ki), J: int(kj)}, Block: blk})
	}
	return recs, nil
}

func appendPutArgs(w *frameWriter, a *PutArgs) error {
	w.uvarint(a.Handle)
	w.uvarint(a.Epoch)
	if a.Pin {
		w.byte1(1)
	} else {
		w.byte1(0)
	}
	w.uvarint(a.traceSpan)
	return appendPlainBlocks(w, a.Blocks)
}

func decodePutArgs(rd *wireReader, a *PutArgs) error {
	var err error
	if a.Handle, err = rd.uvarint(); err != nil {
		return err
	}
	if a.Epoch, err = rd.uvarint(); err != nil {
		return err
	}
	pin, err := rd.u8()
	if err != nil {
		return err
	}
	a.Pin = pin != 0
	if a.traceSpan, err = rd.uvarint(); err != nil {
		return err
	}
	a.Blocks, err = decodePlainBlocks(rd)
	return err
}

func appendGetArgs(w *frameWriter, a *GetArgs) error {
	w.uvarint(a.Handle)
	if a.All {
		w.byte1(1)
	} else {
		w.byte1(0)
	}
	for _, v := range [4]int{a.ILo, a.IHi, a.JLo, a.JHi} {
		w.uvarint(uint64(v))
	}
	w.uvarint(a.traceSpan)
	return nil
}

func decodeGetArgs(rd *wireReader, a *GetArgs) error {
	var err error
	if a.Handle, err = rd.uvarint(); err != nil {
		return err
	}
	all, err := rd.u8()
	if err != nil {
		return err
	}
	a.All = all != 0
	for _, p := range [4]*int{&a.ILo, &a.IHi, &a.JLo, &a.JHi} {
		v, err := rd.uvarint()
		if err != nil {
			return err
		}
		*p = int(v)
	}
	a.traceSpan, err = rd.uvarint()
	return err
}

func appendFreeArgs(w *frameWriter, a *FreeArgs) error {
	w.uvarint(uint64(len(a.Handles)))
	for _, h := range a.Handles {
		w.uvarint(h)
	}
	w.uvarint(a.Epoch)
	if a.AllEpoch {
		w.byte1(1)
	} else {
		w.byte1(0)
	}
	return nil
}

func decodeFreeArgs(rd *wireReader, a *FreeArgs) error {
	n, err := rd.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(len(rd.buf)-rd.off) {
		return fmt.Errorf("%w: %d handle ids in %d bytes", errWire, n, len(rd.buf)-rd.off)
	}
	a.Handles = make([]uint64, n)
	for i := range a.Handles {
		if a.Handles[i], err = rd.uvarint(); err != nil {
			return err
		}
	}
	if a.Epoch, err = rd.uvarint(); err != nil {
		return err
	}
	all, err := rd.u8()
	if err != nil {
		return err
	}
	a.AllEpoch = all != 0
	return nil
}

func appendPinArgs(w *frameWriter, a *PinArgs) error {
	w.uvarint(a.Handle)
	if a.Unpin {
		w.byte1(1)
	} else {
		w.byte1(0)
	}
	return nil
}

func decodePinArgs(rd *wireReader, a *PinArgs) error {
	var err error
	if a.Handle, err = rd.uvarint(); err != nil {
		return err
	}
	unpin, err := rd.u8()
	if err != nil {
		return err
	}
	a.Unpin = unpin != 0
	return nil
}

func appendPartLocs(w *frameWriter, parts []PartLoc) {
	w.uvarint(uint64(len(parts)))
	for _, p := range parts {
		w.str(p.Addr)
		w.uvarint(uint64(p.Lo))
		w.uvarint(uint64(p.Hi))
	}
}

func decodePartLocs(rd *wireReader) ([]PartLoc, error) {
	n, err := rd.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(rd.buf)-rd.off) {
		return nil, fmt.Errorf("%w: %d part locations in %d bytes", errWire, n, len(rd.buf)-rd.off)
	}
	parts := make([]PartLoc, n)
	for i := range parts {
		if parts[i].Addr, err = rd.str(); err != nil {
			return nil, err
		}
		lo, err1 := rd.uvarint()
		hi, err2 := rd.uvarint()
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("%w: part location bounds", errWire)
		}
		parts[i].Lo, parts[i].Hi = int(lo), int(hi)
	}
	return parts, nil
}

func appendExecArgs(w *frameWriter, a *ExecArgs) error {
	w.byte1(a.Op)
	w.uvarint(a.Out)
	w.uvarint(a.Epoch)
	w.uvarint(a.A)
	w.uvarint(a.B)
	var scalar [8]byte
	binary.LittleEndian.PutUint64(scalar[:], math.Float64bits(a.Scalar))
	w.bytes(scalar[:])
	w.uvarint(uint64(a.OutLo))
	w.uvarint(uint64(a.OutHi))
	appendPartLocs(w, a.AParts)
	appendPartLocs(w, a.BParts)
	w.str(a.Self)
	w.uvarint(a.traceSpan)
	if a.Pull {
		w.byte1(1)
	} else {
		w.byte1(0)
	}
	return nil
}

func decodeExecArgs(rd *wireReader, a *ExecArgs) error {
	var err error
	if a.Op, err = rd.u8(); err != nil {
		return err
	}
	if a.Out, err = rd.uvarint(); err != nil {
		return err
	}
	if a.Epoch, err = rd.uvarint(); err != nil {
		return err
	}
	if a.A, err = rd.uvarint(); err != nil {
		return err
	}
	if a.B, err = rd.uvarint(); err != nil {
		return err
	}
	raw, err := rd.take(8)
	if err != nil {
		return err
	}
	a.Scalar = math.Float64frombits(binary.LittleEndian.Uint64(raw))
	lo, err1 := rd.uvarint()
	hi, err2 := rd.uvarint()
	if err1 != nil || err2 != nil {
		return fmt.Errorf("%w: exec band bounds", errWire)
	}
	a.OutLo, a.OutHi = int(lo), int(hi)
	if a.AParts, err = decodePartLocs(rd); err != nil {
		return err
	}
	if a.BParts, err = decodePartLocs(rd); err != nil {
		return err
	}
	if a.Self, err = rd.str(); err != nil {
		return err
	}
	if a.traceSpan, err = rd.uvarint(); err != nil {
		return err
	}
	pull, err := rd.u8()
	if err != nil {
		return err
	}
	a.Pull = pull != 0
	return nil
}

func appendExecReply(w *frameWriter, r *ExecReply) {
	w.uvarint(uint64(r.Bytes))
	w.uvarint(uint64(r.Blocks))
	w.uvarint(uint64(r.PeerBytes))
}

func decodeExecReply(rd *wireReader, r *ExecReply) error {
	b, err1 := rd.uvarint()
	n, err2 := rd.uvarint()
	pb, err3 := rd.uvarint()
	if err1 != nil || err2 != nil || err3 != nil {
		return fmt.Errorf("%w: exec reply", errWire)
	}
	r.Bytes, r.Blocks, r.PeerBytes = int64(b), int(n), int64(pb)
	return nil
}
