package distnet

import (
	"context"
	"sync/atomic"

	"distme/internal/codec"
)

// JobMeter attributes one logical job's traffic and elasticity events to its
// owner. The serving plane attaches a meter to the context it passes into
// Execute (or Session.Multiply); everything the multiply dispatches — every
// cuboid payload, reply, retry, and fallback — is then charged to that meter
// as well as to the driver's global NetStats, giving per-tenant byte and
// compute accounting without a recorder per job.
//
// Request/reply bytes are encoded block-payload bytes (the Eq.(4) quantity),
// not raw socket frames: digest references and batch framing change what
// crosses the socket, but the payload measure is stable across cache state,
// which is what quota enforcement wants.
type JobMeter struct {
	cuboids, requestBytes, replyBytes, retries, localFallbacks atomic.Int64
}

// JobMeterStats is a point-in-time snapshot of a JobMeter.
type JobMeterStats struct {
	// Cuboids counts committed cuboid results.
	Cuboids int64 `json:"cuboids"`
	// RequestBytes / ReplyBytes are encoded block-payload bytes dispatched
	// and received for this job.
	RequestBytes int64 `json:"request_bytes"`
	ReplyBytes   int64 `json:"reply_bytes"`
	// Retries counts cuboid scheduling retries; LocalFallbacks counts
	// cuboids the driver computed itself after the pool failed them.
	Retries        int64 `json:"retries"`
	LocalFallbacks int64 `json:"local_fallbacks"`
}

// Stats snapshots the meter.
func (m *JobMeter) Stats() JobMeterStats {
	if m == nil {
		return JobMeterStats{}
	}
	return JobMeterStats{
		Cuboids:        m.cuboids.Load(),
		RequestBytes:   m.requestBytes.Load(),
		ReplyBytes:     m.replyBytes.Load(),
		Retries:        m.retries.Load(),
		LocalFallbacks: m.localFallbacks.Load(),
	}
}

type jobMeterKey struct{}

// WithJobMeter returns a context whose multiplies charge their cuboid
// traffic to m. Passing nil m returns ctx unchanged.
func WithJobMeter(ctx context.Context, m *JobMeter) context.Context {
	if m == nil {
		return ctx
	}
	return context.WithValue(ctx, jobMeterKey{}, m)
}

// jobMeterFrom extracts the meter attached by WithJobMeter, or nil.
func jobMeterFrom(ctx context.Context) *JobMeter {
	m, _ := ctx.Value(jobMeterKey{}).(*JobMeter)
	return m
}

// noteDispatch charges one cuboid request's payload.
func (m *JobMeter) noteDispatch(bytes int64) {
	if m != nil {
		m.requestBytes.Add(bytes)
	}
}

// noteCommit charges one committed reply.
func (m *JobMeter) noteCommit(reply *MultiplyReply) {
	if m == nil {
		return
	}
	var n int64
	for i := range reply.CBlocks {
		n += codec.EncodedBytes(reply.CBlocks[i].Block)
	}
	m.replyBytes.Add(n)
	m.cuboids.Add(1)
}

func (m *JobMeter) noteRetry() {
	if m != nil {
		m.retries.Add(1)
	}
}

func (m *JobMeter) noteLocalFallback() {
	if m != nil {
		m.localFallbacks.Add(1)
	}
}
