package costmodel

import (
	"testing"

	"distme/internal/core"
)

// paperModel is the Spark-system model at testbed constants.
func paperModel() Model { return NewPaperModel() }

func generalW(n int64) Workload {
	return Workload{M: n, K: n, N: n, BlockSize: 1000}
}

func commonDimW(n int64) Workload {
	return Workload{M: 10000, K: n, N: 10000, BlockSize: 1000}
}

func twoLargeW(n int64) Workload {
	return Workload{M: n, K: 1000, N: n, BlockSize: 1000}
}

func TestWorkloadShape(t *testing.T) {
	w := Workload{M: 70000, K: 70000, N: 70000, BlockSize: 1000}
	s := w.Shape()
	if s.I != 70 || s.J != 70 || s.K != 70 {
		t.Fatalf("grid = %d,%d,%d, want 70³", s.I, s.J, s.K)
	}
	if s.ABytes != 70000*70000*8 {
		t.Fatalf("ABytes = %d", s.ABytes)
	}
}

func TestWorkloadShapeSparse(t *testing.T) {
	w := Workload{M: 1000, K: 1000, N: 1000, BlockSize: 100, SparsityA: 0.01}
	s := w.Shape()
	if s.ABytes != 1000*1000/100*16 {
		t.Fatalf("sparse ABytes = %d, want 16 B/nnz", s.ABytes)
	}
	if s.BBytes != 1000*1000*8 {
		t.Fatalf("dense BBytes = %d", s.BBytes)
	}
}

func TestWorkloadFlops(t *testing.T) {
	dense := Workload{M: 10, K: 10, N: 10}
	if dense.Flops() != 2000 {
		t.Fatalf("dense flops = %g", dense.Flops())
	}
	// Half-dense data stays in dense blocks → full GEMM work.
	half := Workload{M: 10, K: 10, N: 10, SparsityA: 0.5}
	if half.Flops() != 2000 {
		t.Fatalf("half-dense flops = %g", half.Flops())
	}
	// Truly sparse A runs csrmm: work scales with nnz.
	sparse := Workload{M: 10, K: 10, N: 10, SparsityA: 0.01}
	if sparse.Flops() != 20 {
		t.Fatalf("sparse flops = %g", sparse.Flops())
	}
}

// TestFig6aVerdicts locks the Figure 6(a) pattern: BMM out-of-memories past
// N = 80K (|B| outgrows node RAM), CPMM and CuboidMM run everywhere, RMM is
// always the slowest of the runnable methods, CuboidMM always the fastest.
func TestFig6aVerdicts(t *testing.T) {
	m := paperModel()
	for _, n := range []int64{70000, 80000} {
		if v := m.EstimateBMM(generalW(n), true).Verdict; v != VerdictOK {
			t.Errorf("BMM at %d: %v, want ok", n, v)
		}
	}
	for _, n := range []int64{90000, 100000} {
		if v := m.EstimateBMM(generalW(n), true).Verdict; v != VerdictOOM {
			t.Errorf("BMM at %d: %v, want O.O.M.", n, v)
		}
	}
	for _, n := range []int64{70000, 80000, 90000, 100000} {
		w := generalW(n)
		cpmm := m.EstimateCPMM(w, true)
		cub := m.EstimateAuto(w, true)
		rmm := m.EstimateRMM(w, 0, true)
		if cpmm.Verdict != VerdictOK {
			t.Errorf("CPMM at %d: %v", n, cpmm.Verdict)
		}
		if cub.Verdict != VerdictOK {
			t.Errorf("CuboidMM at %d: %v", n, cub.Verdict)
		}
		if rmm.Verdict == VerdictOOM {
			t.Errorf("RMM must never O.O.M. (it streams voxels), got O.O.M. at %d", n)
		}
		if cub.TotalSec() >= cpmm.TotalSec() {
			t.Errorf("at %d CuboidMM (%.0fs) should beat CPMM (%.0fs)", n, cub.TotalSec(), cpmm.TotalSec())
		}
		if rmm.Verdict == VerdictOK && rmm.TotalSec() <= cpmm.TotalSec() {
			t.Errorf("at %d RMM (%.0fs) should trail CPMM (%.0fs)", n, rmm.TotalSec(), cpmm.TotalSec())
		}
		if cub.CommunicationBytes() >= cpmm.CommunicationBytes() {
			t.Errorf("at %d CuboidMM comm should be lowest", n)
		}
	}
}

// TestFig6bVerdicts locks Figure 6(b): BMM dies past N = 500K, the
// optimizer flattens to (1,1,R) — CPMM-like but with far fewer aggregations
// — and CuboidMM wins everywhere.
func TestFig6bVerdicts(t *testing.T) {
	m := paperModel()
	if v := m.EstimateBMM(commonDimW(500000), true).Verdict; v != VerdictOK {
		t.Errorf("BMM at 500K: %v, want ok", v)
	}
	for _, n := range []int64{1000000, 5000000} {
		if v := m.EstimateBMM(commonDimW(n), true).Verdict; v != VerdictOOM {
			t.Errorf("BMM at %d: %v, want O.O.M.", n, v)
		}
	}
	for _, n := range []int64{100000, 500000, 1000000, 5000000} {
		w := commonDimW(n)
		cub := m.EstimateAuto(w, true)
		cpmm := m.EstimateCPMM(w, true)
		if cub.Verdict != VerdictOK || cpmm.Verdict != VerdictOK {
			t.Fatalf("at %d: cub=%v cpmm=%v", n, cub.Verdict, cpmm.Verdict)
		}
		if n >= 500000 && (cub.Params.P != 1 || cub.Params.Q != 1) {
			t.Errorf("at %d optimizer should flatten to (1,1,R): %v", n, cub.Params)
		}
		if cub.Params.R >= w.Shape().K {
			t.Errorf("at %d R (%d) should be far below K (%d)", n, cub.Params.R, w.Shape().K)
		}
		if cub.TotalSec() >= cpmm.TotalSec() {
			t.Errorf("at %d CuboidMM should beat CPMM", n)
		}
		if cub.CommunicationBytes() >= cpmm.CommunicationBytes() {
			t.Errorf("at %d CuboidMM comm should undercut CPMM", n)
		}
	}
}

// TestFig6cVerdicts locks Figure 6(c): CPMM out-of-memories from 500K
// (input slices outgrow θt), BMM from 750K (its C tile materializes), and
// only CuboidMM survives 750K among the memory-bound methods, with R = 1.
func TestFig6cVerdicts(t *testing.T) {
	m := paperModel()
	if v := m.EstimateCPMM(twoLargeW(250000), true).Verdict; v == VerdictOOM {
		t.Error("CPMM at 250K should not O.O.M.")
	}
	for _, n := range []int64{500000, 750000} {
		if v := m.EstimateCPMM(twoLargeW(n), true).Verdict; v != VerdictOOM {
			t.Errorf("CPMM at %d: %v, want O.O.M.", n, v)
		}
	}
	if v := m.EstimateBMM(twoLargeW(500000), true).Verdict; v != VerdictOK {
		t.Errorf("BMM at 500K: %v, want ok", v)
	}
	if v := m.EstimateBMM(twoLargeW(750000), true).Verdict; v != VerdictOOM {
		t.Errorf("BMM at 750K: %v, want O.O.M.", v)
	}
	for _, n := range []int64{100000, 250000, 500000, 750000} {
		cub := m.EstimateAuto(twoLargeW(n), true)
		if cub.Verdict != VerdictOK {
			t.Errorf("CuboidMM at %d: %v", n, cub.Verdict)
		}
		if cub.Params.R != 1 {
			t.Errorf("at %d optimizer should pick R=1: %v", n, cub.Params)
		}
	}
}

// TestTable4Parameters reproduces the two Table 4 rows our decimal-GB
// budgets pin down exactly: 500K and 750K of the N×1K×N family.
func TestTable4Parameters(t *testing.T) {
	m := paperModel()
	cases := map[int64]core.Params{
		500000: {P: 17, Q: 24, R: 1},
		750000: {P: 26, Q: 35, R: 1},
	}
	for n, want := range cases {
		got := m.EstimateAuto(twoLargeW(n), false).Params
		s := twoLargeW(n).Shape()
		// Exact tie-breaking differs from the paper's unspecified search
		// order, so assert the strong structural facts instead: R = 1, the
		// memory budget holds, and our choice is no worse than the paper's
		// published parameters under the paper's own objective Eq.(4).
		if got.R != 1 {
			t.Errorf("N=%d: params %v, want R=1 like paper's %v", n, got, want)
		}
		if s.MemBytes(got) > float64(m.Cfg.TaskMemBytes) {
			t.Errorf("N=%d: params %v violate θt", n, got)
		}
		if s.CostBytes(got) > s.CostBytes(want) {
			t.Errorf("N=%d: our %v costs %g, worse than paper's %v at %g",
				n, got, s.CostBytes(got), want, s.CostBytes(want))
		}
	}
}

// TestTable5Pattern locks §6.5: ScaLAPACK wins the small general case, loses
// the common-large-dimension cases, and both HPC systems O.O.M. on the
// output-heavy 500K case that DistME(C) finishes.
func TestTable5Pattern(t *testing.T) {
	spark := paperModel()
	mpi := NewMPIModel()

	small := Workload{M: 10000, K: 10000, N: 10000, BlockSize: 1000}
	scal := mpi.EstimateSUMMA(small, 9, 10, "ScaLAPACK")
	distme := spark.EstimateAuto(small, false)
	if scal.Verdict != VerdictOK || distme.Verdict != VerdictOK {
		t.Fatalf("small case failed: %v / %v", scal.Verdict, distme.Verdict)
	}
	if scal.TotalSec() >= distme.TotalSec() {
		t.Errorf("small case: ScaLAPACK (%.0fs) should beat DistME (%.0fs) on overhead",
			scal.TotalSec(), distme.TotalSec())
	}

	big := Workload{M: 5000, K: 1000000, N: 5000, BlockSize: 1000}
	scal2 := mpi.EstimateSUMMA(big, 9, 10, "ScaLAPACK")
	distme2 := spark.EstimateAuto(big, false)
	if distme2.TotalSec() >= scal2.TotalSec() {
		t.Errorf("common-dim case: DistME (%.0fs) should beat ScaLAPACK (%.0fs)",
			distme2.TotalSec(), scal2.TotalSec())
	}
	// The paper reports ≈3×; require at least 2×.
	if distme2.TotalSec()*2 > scal2.TotalSec() {
		t.Errorf("common-dim speedup below 2x: %.0fs vs %.0fs", distme2.TotalSec(), scal2.TotalSec())
	}

	heavy := Workload{M: 500000, K: 1000, N: 500000, BlockSize: 1000}
	if v := mpi.EstimateSUMMA(heavy, 9, 10, "ScaLAPACK").Verdict; v != VerdictOOM {
		t.Errorf("ScaLAPACK on 500K×1K×500K: %v, want O.O.M.", v)
	}
	if v := mpi.EstimateSciDB(heavy, 9, 10).Verdict; v != VerdictOOM {
		t.Errorf("SciDB on 500K×1K×500K: %v, want O.O.M.", v)
	}
	if v := spark.EstimateAuto(heavy, false).Verdict; v != VerdictOK {
		t.Errorf("DistME on 500K×1K×500K: %v, want ok", v)
	}
}

// TestGPUSpeedsUpLocalStep verifies the (C) vs (G) relationship of Figure 7:
// same communication, faster local multiplication.
func TestGPUSpeedsUpLocalStep(t *testing.T) {
	m := paperModel()
	w := generalW(40000)
	cpu := m.EstimateAuto(w, false)
	gpuE := m.EstimateAuto(w, true)
	if cpu.Verdict != VerdictOK || gpuE.Verdict != VerdictOK {
		t.Fatal("40K case should run")
	}
	if gpuE.LocalSec >= cpu.LocalSec {
		t.Errorf("GPU local (%.0fs) should beat CPU local (%.0fs)", gpuE.LocalSec, cpu.LocalSec)
	}
	if gpuE.CommunicationBytes() != cpu.CommunicationBytes() {
		t.Error("GPU must not change network traffic")
	}
	if gpuE.PCIEBytes == 0 {
		t.Error("GPU path should report PCI-E traffic")
	}
}

// TestRMMGPUBlockLevelPenalty verifies that RMM's degraded block-level GPU
// path moves more PCI-E data per useful flop than the cuboid streaming path.
func TestRMMGPUBlockLevelPenalty(t *testing.T) {
	m := paperModel()
	w := generalW(40000)
	rmm := m.EstimateRMM(w, 0, true)
	cub := m.EstimateAuto(w, true)
	if rmm.Verdict != VerdictOK || cub.Verdict != VerdictOK {
		t.Skip("case not runnable")
	}
	if rmm.PCIEBytes <= cub.PCIEBytes {
		t.Errorf("RMM PCI-E (%d) should exceed CuboidMM's (%d)", rmm.PCIEBytes, cub.PCIEBytes)
	}
}

// TestEDCOnTwoLargeDimsAtScale reproduces Figure 7(c)'s E.D.C.: RMM's K·|C|
// aggregation on N×1K×1M exceeds the 36 TB disk for N ≥ 1.5M.
func TestEDCOnTwoLargeDimsAtScale(t *testing.T) {
	m := paperModel()
	m.Timeout = 0 // §6.3 runs had no 4000 s cap (Fig 7(c)'s axis is minutes)
	ok := Workload{M: 1000000, K: 1000, N: 1000000, BlockSize: 1000}
	if v := m.EstimateRMM(ok, 0, false).Verdict; v != VerdictOK {
		t.Errorf("RMM at 1M×1K×1M: %v, want ok", v)
	}
	for _, n := range []int64{1500000, 2000000} {
		w := Workload{M: n, K: 1000, N: 1000000, BlockSize: 1000}
		if v := m.EstimateRMM(w, 0, false).Verdict; v != VerdictEDC {
			t.Errorf("RMM at %d×1K×1M: %v, want E.D.C.", n, v)
		}
	}
}

func TestEstimateHelpers(t *testing.T) {
	e := Estimate{RepartitionSec: 1, LocalSec: 2, AggregationSec: 1, OverheadSec: 1}
	if e.TotalSec() != 5 {
		t.Fatalf("TotalSec = %g", e.TotalSec())
	}
	r, l, a := e.StepRatios()
	if r != 0.25 || l != 0.5 || a != 0.25 {
		t.Fatalf("ratios = %g %g %g", r, l, a)
	}
	if (Estimate{}).StepRatios(); false {
		t.Fatal("unreachable")
	}
	if (Estimate{Label: "x", Verdict: VerdictOOM}).String() != "x: O.O.M." {
		t.Fatal("failed estimate should render verdict")
	}
	okEst := Estimate{Label: "y", Verdict: VerdictOK, LocalSec: 1}
	if okEst.String() == "" {
		t.Fatal("estimate should render")
	}
}

func TestMultiGPUScalesLocalOnly(t *testing.T) {
	w := generalW(40000)
	m1 := paperModel()
	m4 := paperModel()
	m4.Cfg.GPUsPerNode = 4
	e1 := m1.EstimateAuto(w, true)
	e4 := m4.EstimateAuto(w, true)
	if e1.Verdict != VerdictOK || e4.Verdict != VerdictOK {
		t.Fatal("40K case should run")
	}
	if e4.LocalSec >= e1.LocalSec {
		t.Fatalf("4 GPUs local %.0fs not below 1 GPU %.0fs", e4.LocalSec, e1.LocalSec)
	}
	if e4.RepartitionSec != e1.RepartitionSec || e4.AggregationSec != e1.AggregationSec {
		t.Fatal("device count must not change network time")
	}
}

func TestMPIModelCheaperOverheads(t *testing.T) {
	spark := NewPaperModel()
	mpi := NewMPIModel()
	if mpi.JobOverhead >= spark.JobOverhead {
		t.Fatal("MPI job overhead should undercut Spark's")
	}
	if mpi.SerializationFactor != 1.0 {
		t.Fatal("MPI model should not pay serialization framing")
	}
}

func TestEstimateSUMMAGridClamp(t *testing.T) {
	m := NewMPIModel()
	// A 2-block-wide matrix cannot host a 10-wide grid; the estimate must
	// clamp rather than divide by zero.
	w := Workload{M: 2000, K: 2000, N: 2000, BlockSize: 1000}
	est := m.EstimateSUMMA(w, 9, 10, "ScaLAPACK")
	if est.Verdict != VerdictOK {
		t.Fatalf("clamped SUMMA failed: %v", est.Verdict)
	}
	if est.Params.P > 2 || est.Params.Q > 2 {
		t.Fatalf("grid not clamped: %v", est.Params)
	}
}

func TestEstimateCPMMZeroAggWhenKOne(t *testing.T) {
	m := paperModel()
	w := Workload{M: 5000, K: 1000, N: 5000, BlockSize: 1000} // K = 1 block
	est := m.EstimateCPMM(w, false)
	if est.AggregationBytes != 0 {
		t.Fatalf("K=1 CPMM should have no aggregation, got %d", est.AggregationBytes)
	}
}
