// Package costmodel is the analytic execution plane for paper-scale
// experiments: the measured plane (internal/core on internal/cluster) runs
// real blocks at laptop scale, while this model evaluates the same plans —
// same shapes, same optimizer, same Table 2 formulas — at the paper's full
// matrix sizes against the paper's hardware constants (10 Gbps Ethernet,
// 6 GB θt, 1 GB θg, GTX 1080 Ti throughput). The bench harness uses it to
// regenerate the rows of Figures 6–8 and Table 5 and to reproduce the
// O.O.M. / E.D.C. / T.O. verdicts.
package costmodel

import (
	"fmt"
	"time"

	"distme/internal/cluster"
	"distme/internal/codec"
	"distme/internal/core"
)

// Workload describes one paper-scale multiplication C = A×B in element
// coordinates: A is M×K elements, B is K×N.
type Workload struct {
	M, K, N   int64
	BlockSize int64
	// SparsityA and SparsityB are the fractions of non-zeros (1 = dense).
	SparsityA, SparsityB float64
}

// bytesOf estimates the stored payload of an m×n matrix at the given
// sparsity: dense 8 B/element, CSR ≈ 16 B/non-zero below half density.
func bytesOf(m, n int64, sparsity float64) int64 {
	dense := m * n * 8
	if sparsity >= 0.5 || sparsity <= 0 {
		if sparsity > 0 && sparsity < 1 {
			// The paper stores half-dense synthetic data in dense blocks;
			// only genuinely sparse data uses CSR.
			return dense
		}
		return dense
	}
	return int64(float64(m*n)*sparsity) * 16
}

// Shape maps the workload onto the block-grid shape the optimizer consumes.
func (w Workload) Shape() core.Shape {
	b := w.BlockSize
	if b <= 0 {
		b = 1000
	}
	spA, spB := w.SparsityA, w.SparsityB
	if spA == 0 {
		spA = 1
	}
	if spB == 0 {
		spB = 1
	}
	return core.Shape{
		I:      int((w.M + b - 1) / b),
		J:      int((w.N + b - 1) / b),
		K:      int((w.K + b - 1) / b),
		ABytes: bytesOf(w.M, w.K, spA),
		BBytes: bytesOf(w.K, w.N, spB),
		CBytes: w.M * w.N * 8,
	}
}

// Flops is the arithmetic the kernels actually perform. Dense-stored
// operands run cublasDgemm/dgemm, which does the full 2·M·K·N regardless of
// zero content; a CSR-stored A runs csrmm with 2·nnz(A)·N. Storage follows
// bytesOf's rule: sparsity < 0.5 is stored sparse.
func (w Workload) Flops() float64 {
	full := 2 * float64(w.M) * float64(w.K) * float64(w.N)
	spA, spB := w.SparsityA, w.SparsityB
	if spA > 0 && spA < 0.5 {
		full *= spA
	}
	if spB > 0 && spB < 0.5 {
		full *= spB
	}
	return full
}

// Model evaluates plans against a hardware envelope.
type Model struct {
	Cfg cluster.Config
	// JobOverhead is the fixed per-job cost (driver startup, stage
	// scheduling); ~15 s for Spark-based systems, ~2 s for MPI.
	JobOverhead float64
	// TaskOverhead is the per-task scheduling cost (~50 ms in Spark).
	TaskOverhead float64
	// SerializationFactor inflates shuffle bytes for serialization framing
	// (Figure 9(b) notes measured traffic slightly exceeds Cost()); the
	// ext-wire experiment measures ≈13% over real TCP, validating the 1.15
	// default.
	SerializationFactor float64
	// WireEncoding deflates repartition bytes for an opt-in block encoding
	// (fp32 or compressed input payloads). Aggregation traffic is NOT
	// scaled: the wire always returns C partials as bit-exact fp64. The
	// zero value (EncodingFP64) leaves the model unchanged; the ratio is
	// the encoding's nominal PlanRatio, the same number OptimizeWire
	// prices into Eq.(4).
	WireEncoding codec.Encoding
	// NetEfficiency derates the aggregate network bandwidth (protocol
	// overhead, skew); 0.5 by default.
	NetEfficiency float64
	// CPUEfficiency derates peak CPU flops for real GEMM (~0.7).
	CPUEfficiency float64
	// GPUEfficiency derates peak GPU flops (~0.7).
	GPUEfficiency float64
	// Timeout is the experiment's T.O. threshold (4000 s in §6.2).
	Timeout time.Duration
}

// NewPaperModel returns the model tuned to the paper's testbed for
// Spark-based systems.
func NewPaperModel() Model {
	return Model{
		Cfg:                 cluster.PaperConfig(),
		JobOverhead:         15,
		TaskOverhead:        0.05,
		SerializationFactor: 1.15,
		NetEfficiency:       0.5,
		CPUEfficiency:       0.7,
		GPUEfficiency:       0.7,
		Timeout:             4000 * time.Second,
	}
}

// NewMPIModel returns the model for ScaLAPACK/SciDB: no JVM, tiny job and
// task overheads, but the same wires.
func NewMPIModel() Model {
	m := NewPaperModel()
	m.JobOverhead = 2
	m.TaskOverhead = 0.001
	m.SerializationFactor = 1.0
	return m
}

// Verdict is the outcome of a modeled run.
type Verdict string

// The outcomes the paper's figures annotate.
const (
	VerdictOK  Verdict = "ok"
	VerdictOOM Verdict = "O.O.M."
	VerdictEDC Verdict = "E.D.C."
	VerdictTO  Verdict = "T.O."
)

// Estimate is one modeled execution.
type Estimate struct {
	Label            string
	Params           core.Params
	Tasks            int
	RepartitionBytes int64
	AggregationBytes int64
	PCIEBytes        int64
	RepartitionSec   float64
	LocalSec         float64
	AggregationSec   float64
	OverheadSec      float64
	MemPerTaskBytes  int64
	Verdict          Verdict
}

// TotalSec is the modeled elapsed time.
func (e Estimate) TotalSec() float64 {
	return e.RepartitionSec + e.LocalSec + e.AggregationSec + e.OverheadSec
}

// CommunicationBytes is the modeled shuffle volume.
func (e Estimate) CommunicationBytes() int64 { return e.RepartitionBytes + e.AggregationBytes }

// StepRatios returns the repartition/local/aggregation time split of the
// modeled run (Figure 7(e)).
func (e Estimate) StepRatios() (rep, local, agg float64) {
	total := e.RepartitionSec + e.LocalSec + e.AggregationSec
	if total == 0 {
		return 0, 0, 0
	}
	return e.RepartitionSec / total, e.LocalSec / total, e.AggregationSec / total
}

// String renders the estimate compactly.
func (e Estimate) String() string {
	if e.Verdict != VerdictOK {
		return fmt.Sprintf("%s: %s", e.Label, e.Verdict)
	}
	return fmt.Sprintf("%s: %.0fs comm=%.0fMB", e.Label, e.TotalSec(), float64(e.CommunicationBytes())/1e6)
}

// netAggregate is the cluster-wide effective shuffle bandwidth in bytes/s.
func (m Model) netAggregate() float64 {
	eff := m.NetEfficiency
	if eff <= 0 {
		eff = 0.5
	}
	return float64(m.Cfg.Nodes) * m.Cfg.NetworkBandwidth * eff
}

// EstimateCuboid models CuboidMM (or a classical corner) with explicit
// parameters.
func (m Model) EstimateCuboid(w Workload, p core.Params, useGPU bool) Estimate {
	s := w.Shape()
	est := Estimate{Label: fmt.Sprintf("CuboidMM%v", p), Params: p, Tasks: p.Tasks()}

	repart := m.WireEncoding.PlanRatio() * (float64(p.Q)*float64(s.ABytes) + float64(p.P)*float64(s.BBytes))
	var agg float64
	if p.R > 1 {
		agg = float64(p.R) * float64(s.CBytes)
	}
	est.RepartitionBytes = int64(repart)
	est.AggregationBytes = int64(agg)

	// Physical per-task memory — this is what actually out-of-memories, and
	// it differs from the worst-case Eq.(3) the optimizer conservatively
	// uses, in the two ways the paper's own results exhibit:
	//
	//   1. a fully broadcast operand (its partition count is 1 on both of
	//      its axes) is node-resident and shared by the node's Tc tasks, so
	//      it is checked against node RAM — that is why BMM survives
	//      |B| > θt and dies only past node memory (Fig. 6(a): N > 80K);
	//   2. the C accumulator is resident only when a task covers more than
	//      one k block (it must accumulate); with R = K each partial block
	//      streams straight to the shuffle — that is why CPMM survives
	//      |C| ≫ θt on general matrices but dies when a single input slice
	//      (|A|/K) outgrows θt (Fig. 6(c): N ≥ 500K).
	taskMem := 0.0
	var nodeMem float64
	broadcastB := p.Q == 1 && p.R == 1 && p.P > 1
	broadcastA := p.P == 1 && p.R == 1 && p.Q > 1
	if broadcastA {
		nodeMem += float64(s.ABytes)
	} else {
		taskMem += float64(s.ABytes) / float64(p.P*p.R)
	}
	if broadcastB {
		nodeMem += float64(s.BBytes)
	} else {
		taskMem += float64(s.BBytes) / float64(p.R*p.Q)
	}
	blockBytes := float64(w.BlockSize*w.BlockSize) * 8
	kExtent := (s.K + p.R - 1) / p.R
	switch {
	case kExtent > 1:
		// The task accumulates C' over its k range: resident.
		taskMem += float64(s.CBytes) / float64(p.P*p.Q)
	case p.R == 1 && p.P*p.Q > 1:
		// Final tiles (no aggregation): the local multiply materializes its
		// whole C tile before writing it out — the BMM behavior.
		taskMem += float64(s.CBytes) / float64(p.P*p.Q)
	default:
		// Single-k outer products stream block by block into the shuffle —
		// the CPMM behavior that survives |C| ≫ θt.
		taskMem += blockBytes
	}
	est.MemPerTaskBytes = int64(taskMem)

	// Verdicts first: a failed run has no meaningful time. The node check
	// charges the broadcast once per node plus the working sets of the
	// tasks actually co-resident there (T may be far below the slot count,
	// e.g. BMM's T = I).
	perNode := (p.Tasks() + m.Cfg.Nodes - 1) / m.Cfg.Nodes
	if perNode > m.Cfg.TasksPerNode {
		perNode = m.Cfg.TasksPerNode
	}
	if est.MemPerTaskBytes > m.Cfg.TaskMemBytes ||
		(m.Cfg.NodeMemBytes > 0 && int64(nodeMem+taskMem*float64(perNode)) > m.Cfg.NodeMemBytes) {
		est.Verdict = VerdictOOM
		return est
	}
	spill := (repart + agg) * m.SerializationFactor
	if m.Cfg.DiskCapacityBytes > 0 && spill > float64(m.Cfg.DiskCapacityBytes) {
		est.Verdict = VerdictEDC
		return est
	}

	est.RepartitionSec = repart * m.SerializationFactor / m.netAggregate()
	est.AggregationSec = agg * m.SerializationFactor / m.netAggregate()
	est.LocalSec, est.PCIEBytes = m.localTime(w, s, p, useGPU)
	est.OverheadSec = m.JobOverhead + float64(est.Tasks)*m.TaskOverhead/float64(m.Cfg.Slots())
	if m.Timeout > 0 && est.TotalSec() > m.Timeout.Seconds() {
		est.Verdict = VerdictTO
		return est
	}
	est.Verdict = VerdictOK
	return est
}

// localTime models the local multiplication step, work-conserving: with T
// tasks on S slots the effective parallelism is min(T, S) — fewer tasks
// than slots underutilizes the cluster (the paper's §6.3 observation that
// SystemML's CPMM ran only 40 of 90 possible concurrent tasks), while more
// tasks than slots pipeline through with negligible quantization in Spark's
// fine-grained scheduler. On the GPU path, kernels overlap PCI-E streaming
// so a task takes the max of the two, and the bus traffic follows Eq.(6)
// via the subcuboid optimizer on the average cuboid.
func (m Model) localTime(w Workload, s core.Shape, p core.Params, useGPU bool) (sec float64, pcieBytes int64) {
	tasks := p.Tasks()
	slots := m.Cfg.Slots()
	par := tasks
	if par > slots {
		par = slots
	}
	flopsPerTask := w.Flops() / float64(tasks)

	if !useGPU {
		slotFlops := m.Cfg.CPUFlops / float64(m.Cfg.TasksPerNode) * m.CPUEfficiency
		return w.Flops() / (float64(par) * slotFlops), 0
	}

	// GPU path: subcuboid plan for the average cuboid.
	cs := core.CuboidShape{
		IB:     (s.I + p.P - 1) / p.P,
		JB:     (s.J + p.Q - 1) / p.Q,
		KB:     (s.K + p.R - 1) / p.R,
		ABytes: s.ABytes / int64(p.P*p.R),
		BBytes: s.BBytes / int64(p.R*p.Q),
		CBytes: s.CBytes / int64(p.P*p.Q),
	}
	sub, err := core.OptimizeSub(cs, m.Cfg.GPUMemPerTaskBytes*int64(m.Cfg.GPUs()))
	if err != nil {
		// Degenerate: stream at voxel granularity.
		sub = core.SubParams{P2: cs.IB, Q2: cs.JB, R2: cs.KB}
	}
	perTaskPCIE := cs.CostBytes(sub) + float64(cs.CBytes) // H2D per Eq.(6) + D2H of C
	pcieBytes = int64(perTaskPCIE) * int64(tasks)

	g := float64(m.Cfg.GPUs())
	gpuSlotFlops := g * m.Cfg.GPUFlops / float64(m.Cfg.TasksPerNode) * m.GPUEfficiency
	pcieSlotBW := g * m.Cfg.PCIEBandwidth / float64(m.Cfg.TasksPerNode)
	kernel := flopsPerTask / gpuSlotFlops
	bus := perTaskPCIE / pcieSlotBW
	taskTime := kernel
	if bus > taskTime {
		taskTime = bus
	}
	return taskTime * float64(tasks) / float64(par), pcieBytes
}

// EstimateAuto optimizes (P,Q,R) with the cluster budgets and models the
// result — the DistME path.
func (m Model) EstimateAuto(w Workload, useGPU bool) Estimate {
	s := w.Shape()
	wc := core.WireCost{InputRatio: m.WireEncoding.PlanRatio(), AggRatio: 1}
	p, err := core.OptimizeWire(s, m.Cfg.TaskMemBytes, m.Cfg.Slots(), wc)
	if err != nil {
		return Estimate{Label: "CuboidMM(auto)", Verdict: VerdictOOM}
	}
	est := m.EstimateCuboid(w, p, useGPU)
	est.Label = fmt.Sprintf("CuboidMM%v", p)
	return est
}

// EstimateRMM models RMM with T tasks (0 → I·J): full replication, voxel
// hashing, K·|C| aggregation, and — on the GPU — the degraded block-level
// path with no C residency.
func (m Model) EstimateRMM(w Workload, tasks int, useGPU bool) Estimate {
	s := w.Shape()
	if tasks <= 0 {
		tasks = s.I * s.J
	}
	est := Estimate{Label: "RMM", Tasks: tasks}
	repart := float64(s.J)*float64(s.ABytes) + float64(s.I)*float64(s.BBytes)
	agg := float64(s.K) * float64(s.CBytes)
	est.RepartitionBytes = int64(repart)
	est.AggregationBytes = int64(agg)
	// An RMM task streams its voxels from the shuffle one at a time — the
	// resident set is a single voxel (one A block, one B block, one C
	// block), which is exactly why RMM "can process large-scale matrix
	// multiplication without out of memory error" (§1) at any size.
	blockBytes := float64(w.BlockSize*w.BlockSize) * 8
	est.MemPerTaskBytes = int64(3 * blockBytes)
	if est.MemPerTaskBytes > m.Cfg.TaskMemBytes {
		est.Verdict = VerdictOOM
		return est
	}
	if m.Cfg.DiskCapacityBytes > 0 && (repart+agg)*m.SerializationFactor > float64(m.Cfg.DiskCapacityBytes) {
		est.Verdict = VerdictEDC
		return est
	}
	est.RepartitionSec = repart * m.SerializationFactor / m.netAggregate()
	est.AggregationSec = agg * m.SerializationFactor / m.netAggregate()

	slots := m.Cfg.Slots()
	par := tasks
	if par > slots {
		par = slots
	}
	if useGPU {
		// Block-level GPU: every voxel pays its own copies in and out.
		voxels := float64(s.I) * float64(s.J) * float64(s.K)
		perVoxelPCIE := float64(s.ABytes)/(float64(s.I)*float64(s.K)) +
			float64(s.BBytes)/(float64(s.K)*float64(s.J)) +
			float64(s.CBytes)/(float64(s.I)*float64(s.J))
		est.PCIEBytes = int64(perVoxelPCIE * voxels)
		g := float64(m.Cfg.GPUs())
		gpuSlotFlops := g * m.Cfg.GPUFlops / float64(m.Cfg.TasksPerNode) * m.GPUEfficiency
		pcieSlotBW := g * m.Cfg.PCIEBandwidth / float64(m.Cfg.TasksPerNode)
		// No overlap in the block-level path: copies then kernel.
		total := w.Flops()/gpuSlotFlops + perVoxelPCIE*voxels/pcieSlotBW
		est.LocalSec = total / float64(par)
	} else {
		slotFlops := m.Cfg.CPUFlops / float64(m.Cfg.TasksPerNode) * m.CPUEfficiency
		est.LocalSec = w.Flops() / (float64(par) * slotFlops)
	}
	est.OverheadSec = m.JobOverhead + float64(tasks)*m.TaskOverhead/float64(slots)
	if m.Timeout > 0 && est.TotalSec() > m.Timeout.Seconds() {
		est.Verdict = VerdictTO
		return est
	}
	est.Verdict = VerdictOK
	return est
}

// EstimateBMM models Broadcast MM: (I,1,1).
func (m Model) EstimateBMM(w Workload, useGPU bool) Estimate {
	s := w.Shape()
	est := m.EstimateCuboid(w, s.BMMParams(), useGPU)
	est.Label = "BMM"
	return est
}

// EstimateCPMM models Cross-Product MM: (1,1,K).
func (m Model) EstimateCPMM(w Workload, useGPU bool) Estimate {
	s := w.Shape()
	est := m.EstimateCuboid(w, s.CPMMParams(), useGPU)
	est.Label = "CPMM"
	return est
}

// EstimateSUMMA models ScaLAPACK's PDGEMM on a gridP×gridQ process grid:
// Q·|A| + P·|B| panel broadcasts, no aggregation, single-array local
// memory (|A|+|B|+|C|)/(P·Q) — the §6.5 behavior.
func (m Model) EstimateSUMMA(w Workload, gridP, gridQ int, label string) Estimate {
	s := w.Shape()
	if gridP > s.I {
		gridP = s.I
	}
	if gridQ > s.J {
		gridQ = s.J
	}
	est := Estimate{Label: label, Tasks: gridP * gridQ, Params: core.Params{P: gridP, Q: gridQ, R: 1}}
	repart := float64(gridQ)*float64(s.ABytes) + float64(gridP)*float64(s.BBytes)
	est.RepartitionBytes = int64(repart)
	est.MemPerTaskBytes = (s.ABytes + s.BBytes + s.CBytes) / int64(gridP*gridQ)
	if est.MemPerTaskBytes > m.Cfg.TaskMemBytes {
		est.Verdict = VerdictOOM
		return est
	}
	est.RepartitionSec = repart * m.SerializationFactor / m.netAggregate()
	slots := m.Cfg.Slots()
	waves := (est.Tasks + slots - 1) / slots
	slotFlops := m.Cfg.CPUFlops / float64(m.Cfg.TasksPerNode) * m.CPUEfficiency
	est.LocalSec = float64(waves) * w.Flops() / float64(est.Tasks) / slotFlops
	est.OverheadSec = m.JobOverhead + float64(est.Tasks)*m.TaskOverhead/float64(slots)
	if m.Timeout > 0 && est.TotalSec() > m.Timeout.Seconds() {
		est.Verdict = VerdictTO
		return est
	}
	est.Verdict = VerdictOK
	return est
}

// EstimateSciDB models SciDB's operator: an extra |A|+|B| repartition into
// ScaLAPACK layout, then SUMMA.
func (m Model) EstimateSciDB(w Workload, gridP, gridQ int) Estimate {
	est := m.EstimateSUMMA(w, gridP, gridQ, "SciDB")
	if est.Verdict != VerdictOK {
		return est
	}
	s := w.Shape()
	pre := float64(s.ABytes + s.BBytes)
	est.RepartitionBytes += int64(pre)
	est.RepartitionSec += pre * m.SerializationFactor / m.netAggregate()
	// Array-store staging adds a constant factor.
	est.OverheadSec += m.JobOverhead
	return est
}
