package costmodel

import "distme/internal/core"

// PipelineEstimate prices a lazy multi-op pipeline under the model's wires:
// the Eq.(4)-cumulative driver bytes of materialize-every-op execution
// versus the worker→worker bytes of handle-resident execution, and the
// seconds each spends on the network (compute is identical — the same
// kernels run either way, so only the movement differs).
type PipelineEstimate struct {
	MaterializedBytes int64
	ResidentBytes     int64
	MaterializedSec   float64
	ResidentSec       float64
}

// Ratio is the modeled driver-byte reduction (materialized / resident);
// 0 when resident execution moves nothing.
func (e PipelineEstimate) Ratio() float64 {
	if e.ResidentBytes == 0 {
		return 0
	}
	return float64(e.MaterializedBytes) / float64(e.ResidentBytes)
}

// EstimatePipeline evaluates core.PipelineCost for a pipeline of ops run on
// workers nodes with finalFetchBytes crossing back to the driver, converting
// both byte totals to seconds at the model's effective shuffle bandwidth.
func (m Model) EstimatePipeline(ops []core.PipeOp, workers int, finalFetchBytes int64) PipelineEstimate {
	mat, res := core.PipelineCost(ops, workers, finalFetchBytes)
	bw := m.netAggregate()
	return PipelineEstimate{
		MaterializedBytes: mat,
		ResidentBytes:     res,
		MaterializedSec:   float64(mat) * m.SerializationFactor / bw,
		ResidentSec:       float64(res) * m.SerializationFactor / bw,
	}
}
