package costmodel

import (
	"math"
	"testing"

	"distme/internal/codec"
	"distme/internal/core"
)

// TestWireEncodingScalesRepartition pins the asymmetry of the opt-in wire
// encodings in the analytic model: repartition (input) traffic deflates by
// the encoding's plan ratio while aggregation traffic does not move,
// because the wire always returns C partials as bit-exact fp64.
func TestWireEncodingScalesRepartition(t *testing.T) {
	w := generalW(20_000)
	p := core.Params{P: 2, Q: 2, R: 2} // R > 1 so aggregation is non-zero
	base := paperModel()
	bEst := base.EstimateCuboid(w, p, false)
	if bEst.Verdict != VerdictOK {
		t.Fatalf("baseline verdict %v, want ok", bEst.Verdict)
	}
	if bEst.AggregationSec <= 0 {
		t.Fatalf("fixture must aggregate (R=%d), got AggregationSec=0", p.R)
	}
	for _, tc := range []struct {
		enc   codec.Encoding
		ratio float64
	}{
		{codec.EncodingFP32, 0.5},
		{codec.EncodingCompress, 0.85},
	} {
		if got := tc.enc.PlanRatio(); got != tc.ratio {
			t.Fatalf("%v plan ratio %v, want %v (test out of sync)", tc.enc, got, tc.ratio)
		}
		m := paperModel()
		m.WireEncoding = tc.enc
		e := m.EstimateCuboid(w, p, false)
		if e.Verdict != VerdictOK {
			t.Fatalf("%v verdict %v, want ok", tc.enc, e.Verdict)
		}
		wantRep := bEst.RepartitionSec * tc.ratio
		if math.Abs(e.RepartitionSec-wantRep) > 1e-9*wantRep {
			t.Errorf("%v RepartitionSec %v, want %v (ratio %v of %v)",
				tc.enc, e.RepartitionSec, wantRep, tc.ratio, bEst.RepartitionSec)
		}
		if e.AggregationSec != bEst.AggregationSec {
			t.Errorf("%v scaled aggregation %v -> %v; replies are always fp64",
				tc.enc, bEst.AggregationSec, e.AggregationSec)
		}
		if e.LocalSec != bEst.LocalSec {
			t.Errorf("%v changed LocalSec %v -> %v", tc.enc, bEst.LocalSec, e.LocalSec)
		}
		wantBytes := int64(float64(bEst.RepartitionBytes) * tc.ratio)
		if diff := e.RepartitionBytes - wantBytes; diff < -1 || diff > 1 {
			t.Errorf("%v RepartitionBytes %d, want ~%d", tc.enc, e.RepartitionBytes, wantBytes)
		}
	}
}

// TestWireEncodingEstimateAuto: the auto planner re-optimizes under the
// encoding's pricing, so its plan can never model slower than the default
// plan re-priced under the same encoding.
func TestWireEncodingEstimateAuto(t *testing.T) {
	w := generalW(20_000)
	def := paperModel()
	defAuto := def.EstimateAuto(w, false)
	if defAuto.Verdict != VerdictOK {
		t.Fatalf("default auto verdict %v, want ok", defAuto.Verdict)
	}
	m := paperModel()
	m.WireEncoding = codec.EncodingFP32
	encAuto := m.EstimateAuto(w, false)
	if encAuto.Verdict != VerdictOK {
		t.Fatalf("fp32 auto verdict %v, want ok", encAuto.Verdict)
	}
	// Default plan re-priced under fp32 must not beat the fp32-optimized plan.
	repriced := m.EstimateCuboid(w, defAuto.Params, false)
	if encAuto.TotalSec() > repriced.TotalSec()+1e-9 {
		t.Fatalf("fp32 auto plan %v (%.3fs) slower than repriced default plan %v (%.3fs)",
			encAuto.Params, encAuto.TotalSec(), defAuto.Params, repriced.TotalSec())
	}
	if encAuto.RepartitionSec >= defAuto.RepartitionSec {
		t.Errorf("fp32 auto repartition %.3fs not below default %.3fs",
			encAuto.RepartitionSec, defAuto.RepartitionSec)
	}
}
