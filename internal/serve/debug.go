package serve

import (
	"sort"
	"time"

	"distme/internal/metrics"
)

// TenantDebug is one tenant's row in the serving plane's debug block.
type TenantDebug struct {
	Name   string `json:"name"`
	Weight int    `json:"weight"`
	// Queued and Running are the tenant's live job counts; VTime its
	// fair-share virtual clock.
	Queued  int     `json:"queued"`
	Running int     `json:"running"`
	VTime   float64 `json:"vtime"`
	// ChargedBytes / ChargedFlops are the planned costs currently held
	// against the tenant's quotas (queued + running jobs).
	ChargedBytes int64 `json:"charged_bytes"`
	ChargedFlops int64 `json:"charged_flops"`
	// Stats is the tenant's cumulative counter block.
	Stats metrics.TenantStats `json:"stats"`
}

// Debug is the serving plane's /debug/distme block (embedded under "serve"
// in the driver snapshot via SetServeDebug).
type Debug struct {
	Time time.Time `json:"time"`
	// Queued / Running are global job counts; WaveBytes the running jobs'
	// summed cuboid-wave estimate against CapacityBytes.
	Queued        int     `json:"queued"`
	Running       int     `json:"running"`
	WaveBytes     float64 `json:"wave_bytes"`
	CapacityBytes float64 `json:"capacity_bytes"`
	// MaxConcurrent is the current dispatch-parallelism bound; AvgRun the
	// EWMA job run time feeding retry-after estimates.
	MaxConcurrent int           `json:"max_concurrent"`
	AvgRun        time.Duration `json:"avg_run"`
	Closed        bool          `json:"closed"`
	Tenants       []TenantDebug `json:"tenants"`
}

// DebugSnapshot captures the server's live scheduling state. Safe to call
// concurrently with submits and dispatches.
func (s *Server) DebugSnapshot() Debug {
	stats := map[string]metrics.TenantStats{}
	for _, t := range s.rec.Tenants() {
		stats[t.Tenant] = t
	}
	s.mu.Lock()
	d := Debug{
		Time:          time.Now(),
		Queued:        s.queued,
		Running:       s.runningN,
		WaveBytes:     s.waveBytes,
		CapacityBytes: s.capacityLocked(),
		MaxConcurrent: s.maxConcurrentLocked(),
		AvgRun:        time.Duration(s.avgRunNano),
		Closed:        s.closed,
	}
	for name, t := range s.tenants {
		d.Tenants = append(d.Tenants, TenantDebug{
			Name:         name,
			Weight:       t.cfg.Weight,
			Queued:       len(t.queue),
			Running:      t.running,
			VTime:        t.vtime,
			ChargedBytes: t.chargedBytes,
			ChargedFlops: t.chargedFlops,
			Stats:        stats[name],
		})
	}
	s.mu.Unlock()
	sort.Slice(d.Tenants, func(i, j int) bool { return d.Tenants[i].Name < d.Tenants[j].Name })
	return d
}
