package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"distme/internal/bmat"
	"distme/internal/storage"
)

// The wire API: net/rpc over gob for the control frames, with operand and
// result matrices carried as internal/storage's chunked checksummed binary
// format inside []byte fields. Typed rejections cross the socket as
// rpc.ServerError text; Client maps them back to the package sentinels (and
// re-parses QueueFullError's retry-after hint), so callers branch with
// errors.Is on either side of the wire.

// wireServiceName is the registered net/rpc service.
const wireServiceName = "DistMEServe"

// maxResultWait bounds one server-side Result wait so a single RPC never
// parks forever; clients poll in maxResultWait windows.
const maxResultWait = 2 * time.Second

// RPC is the exported net/rpc receiver wrapping a Server.
type RPC struct{ s *Server }

// WireSubmitArgs is Submit over the wire; A and B are storage-encoded.
type WireSubmitArgs struct {
	Tenant   string
	Priority int
	A, B     []byte
}

// WireSubmitReply returns the job ID.
type WireSubmitReply struct{ ID uint64 }

// Submit decodes the operands and admits the job.
func (r *RPC) Submit(args *WireSubmitArgs, reply *WireSubmitReply) error {
	a, err := storage.Read(bytes.NewReader(args.A))
	if err != nil {
		return fmt.Errorf("%w: operand A: %v", ErrUnschedulable, err)
	}
	b, err := storage.Read(bytes.NewReader(args.B))
	if err != nil {
		return fmt.Errorf("%w: operand B: %v", ErrUnschedulable, err)
	}
	id, err := r.s.Submit(SubmitRequest{Tenant: args.Tenant, Priority: args.Priority, A: a, B: b})
	if err != nil {
		return err
	}
	reply.ID = uint64(id)
	return nil
}

// WireStatusArgs names a job.
type WireStatusArgs struct{ ID uint64 }

// WireStatusReply carries its snapshot.
type WireStatusReply struct{ Status JobStatus }

// Status snapshots a job.
func (r *RPC) Status(args *WireStatusArgs, reply *WireStatusReply) error {
	st, err := r.s.Status(JobID(args.ID))
	if err != nil {
		return err
	}
	reply.Status = st
	return nil
}

// WireResultArgs asks for a job's result, waiting server-side up to
// WaitMillis (clamped to a bound) for it to finish.
type WireResultArgs struct {
	ID         uint64
	WaitMillis int64
}

// WireResultReply reports Done=false when the wait expired first; when
// Done, C holds the storage-encoded product for successful jobs and Status
// carries the terminal state (failures arrive as RPC errors instead).
type WireResultReply struct {
	Done   bool
	Status JobStatus
	C      []byte
}

// Result waits (bounded) for the job and returns its product.
func (r *RPC) Result(args *WireResultArgs, reply *WireResultReply) error {
	wait := time.Duration(args.WaitMillis) * time.Millisecond
	if wait <= 0 || wait > maxResultWait {
		wait = maxResultWait
	}
	ctx, cancel := context.WithTimeout(context.Background(), wait)
	defer cancel()
	c, st, err := r.s.Result(ctx, JobID(args.ID))
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			// Not finished inside the window: report progress, not an error.
			if st, serr := r.s.Status(JobID(args.ID)); serr == nil {
				reply.Status = st
			}
			return nil
		}
		return err
	}
	reply.Done = true
	reply.Status = st
	if c != nil {
		var buf bytes.Buffer
		if err := storage.Write(&buf, c); err != nil {
			return fmt.Errorf("serve: encode result: %w", err)
		}
		reply.C = buf.Bytes()
	}
	return nil
}

// WireCancelArgs names a job; WireCancelReply is empty.
type WireCancelArgs struct{ ID uint64 }
type WireCancelReply struct{}

// Cancel stops a job.
func (r *RPC) Cancel(args *WireCancelArgs, reply *WireCancelReply) error {
	return r.s.Cancel(JobID(args.ID))
}

// Listener serves the wire API on a net.Listener until closed.
type Listener struct {
	l    net.Listener
	mu   sync.Mutex
	conn map[net.Conn]struct{}
	done chan struct{}
}

// ServeListener exposes the server's wire API on l. The returned Listener's
// Close stops accepting and drops open connections; the Server itself stays
// up.
func ServeListener(s *Server, l net.Listener) (*Listener, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName(wireServiceName, &RPC{s: s}); err != nil {
		return nil, fmt.Errorf("serve: register: %w", err)
	}
	sl := &Listener{l: l, conn: map[net.Conn]struct{}{}, done: make(chan struct{})}
	go func() {
		defer close(sl.done)
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			sl.mu.Lock()
			sl.conn[conn] = struct{}{}
			sl.mu.Unlock()
			go func(conn net.Conn) {
				srv.ServeConn(conn)
				sl.mu.Lock()
				delete(sl.conn, conn)
				sl.mu.Unlock()
				conn.Close()
			}(conn)
		}
	}()
	return sl, nil
}

// Addr is the listener's bound address.
func (sl *Listener) Addr() string { return sl.l.Addr().String() }

// Close stops accepting and closes open connections.
func (sl *Listener) Close() {
	sl.l.Close()
	<-sl.done
	sl.mu.Lock()
	for c := range sl.conn {
		c.Close()
	}
	sl.conn = map[net.Conn]struct{}{}
	sl.mu.Unlock()
}

// Client is the caller side of the wire API.
type Client struct{ c *rpc.Client }

// Dial connects to a serving endpoint.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return &Client{c: c}, nil
}

// Close drops the connection.
func (c *Client) Close() error { return c.c.Close() }

// Submit ships both operands and returns the admitted job's ID. Rejections
// come back as the package's typed errors (errors.Is works across the wire).
func (c *Client) Submit(tenant string, priority int, a, b *bmat.BlockMatrix) (JobID, error) {
	var bufA, bufB bytes.Buffer
	if err := storage.Write(&bufA, a); err != nil {
		return 0, fmt.Errorf("serve: encode A: %w", err)
	}
	if err := storage.Write(&bufB, b); err != nil {
		return 0, fmt.Errorf("serve: encode B: %w", err)
	}
	args := &WireSubmitArgs{Tenant: tenant, Priority: priority, A: bufA.Bytes(), B: bufB.Bytes()}
	var reply WireSubmitReply
	if err := c.c.Call(wireServiceName+".Submit", args, &reply); err != nil {
		return 0, mapWireError(err)
	}
	return JobID(reply.ID), nil
}

// Status snapshots a job.
func (c *Client) Status(id JobID) (JobStatus, error) {
	var reply WireStatusReply
	if err := c.c.Call(wireServiceName+".Status", &WireStatusArgs{ID: uint64(id)}, &reply); err != nil {
		return JobStatus{}, mapWireError(err)
	}
	return reply.Status, nil
}

// Result blocks until the job finishes (or ctx ends), polling bounded
// server-side waits, and decodes the product.
func (c *Client) Result(ctx context.Context, id JobID) (*bmat.BlockMatrix, JobStatus, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, JobStatus{}, err
		}
		var reply WireResultReply
		err := c.c.Call(wireServiceName+".Result",
			&WireResultArgs{ID: uint64(id), WaitMillis: maxResultWait.Milliseconds()}, &reply)
		if err != nil {
			return nil, reply.Status, mapWireError(err)
		}
		if !reply.Done {
			continue
		}
		if len(reply.C) == 0 {
			return nil, reply.Status, nil
		}
		m, err := storage.Read(bytes.NewReader(reply.C))
		if err != nil {
			return nil, reply.Status, fmt.Errorf("serve: decode result: %w", err)
		}
		return m, reply.Status, nil
	}
}

// Cancel stops a job.
func (c *Client) Cancel(id JobID) error {
	var reply WireCancelReply
	if err := c.c.Call(wireServiceName+".Cancel", &WireCancelArgs{ID: uint64(id)}, &reply); err != nil {
		return mapWireError(err)
	}
	return nil
}

// mapWireError re-types rpc.ServerError text back into the package
// sentinels, re-parsing QueueFullError's retry-after hint, so wire callers
// branch exactly like in-process ones.
func mapWireError(err error) error {
	var se rpc.ServerError
	if !errors.As(err, &se) {
		return err
	}
	msg := se.Error()
	switch {
	case strings.HasPrefix(msg, ErrQueueFull.Error()):
		qf := &QueueFullError{RetryAfter: 5 * time.Millisecond}
		if i := strings.Index(msg, `tenant "`); i >= 0 {
			rest := msg[i+len(`tenant "`):]
			if j := strings.IndexByte(rest, '"'); j >= 0 {
				qf.Tenant = rest[:j]
			}
		}
		if i := strings.Index(msg, "retry after "); i >= 0 {
			rest := strings.TrimSuffix(msg[i+len("retry after "):], ")")
			if d, perr := time.ParseDuration(rest); perr == nil {
				qf.RetryAfter = d
			}
		}
		return qf
	case strings.HasPrefix(msg, ErrQuotaExceeded.Error()):
		return fmt.Errorf("%w%s", ErrQuotaExceeded, strings.TrimPrefix(msg, ErrQuotaExceeded.Error()))
	case strings.HasPrefix(msg, ErrUnschedulable.Error()):
		return fmt.Errorf("%w%s", ErrUnschedulable, strings.TrimPrefix(msg, ErrUnschedulable.Error()))
	case strings.HasPrefix(msg, ErrUnknownTenant.Error()):
		return fmt.Errorf("%w%s", ErrUnknownTenant, strings.TrimPrefix(msg, ErrUnknownTenant.Error()))
	case strings.HasPrefix(msg, ErrUnknownJob.Error()):
		return fmt.Errorf("%w%s", ErrUnknownJob, strings.TrimPrefix(msg, ErrUnknownJob.Error()))
	case strings.HasPrefix(msg, ErrServerClosed.Error()):
		return ErrServerClosed
	}
	return err
}
