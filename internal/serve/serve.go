// Package serve is the multi-tenant serving plane: a long-running server
// embedding a distnet.Driver that accepts many concurrent multiply jobs,
// admits them against the cluster's cuboid-wave capacity, schedules them
// weighted-fair across tenants, and pushes backpressure to callers when
// queues fill.
//
// The admission controller is DistME's cost model turned into a gate. Every
// submitted job is priced by the Eq.(4) optimizer under the per-worker
// budget θt; the resulting (P,Q,R) bounds one task's working set
// (Eq.(3)), and the job's cuboid wave — the tasks the cluster can have in
// flight at once — is estimated as
//
//	wave(job) = MemBytes(P,Q,R) × min(P·Q·R, LiveWorkers × PerWorkerInflight)
//
// A job dispatches only while the sum of running waves stays under the
// cluster capacity LiveWorkers × θt × PerWorkerInflight (scaled by
// Config.CapacityFraction); one job alone always dispatches, because the
// optimizer already bounded its per-task memory by θt. Live worker counts
// come from the driver's health plane (ClusterHealth), so capacity tracks
// membership churn and autoscaling.
//
// Scheduling across tenants is weighted fair queuing by virtual time: each
// dispatch advances its tenant's clock by plannedBytes/weight, and the
// scheduler always serves the farthest-behind tenant whose head job fits.
// Within a tenant, higher Priority runs first, FIFO within a priority.
package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/distnet"
	"distme/internal/metrics"
	"distme/internal/obs"
)

// Sentinel errors callers branch on. Over the wire they arrive as
// rpc.ServerError text; Client maps them back to these values.
var (
	// ErrQueueFull is backpressure: the tenant's queue (or the global
	// bound) is at depth. The concrete error is a *QueueFullError carrying
	// a retry-after hint; errors.Is(err, ErrQueueFull) matches it.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrQuotaExceeded rejects a job whose planned cost would push the
	// tenant past its in-flight byte or compute quota.
	ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")
	// ErrUnschedulable rejects a job no (P,Q,R) can fit under θt.
	ErrUnschedulable = errors.New("serve: job cannot fit the cluster")
	// ErrUnknownTenant rejects a submit naming no configured tenant.
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrUnknownJob reports a job ID the server does not hold.
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrServerClosed reports submits after Close began.
	ErrServerClosed = errors.New("serve: server closed")
)

// QueueFullError is the concrete backpressure error: try again after
// RetryAfter (an EWMA-based drain estimate, never zero).
type QueueFullError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("serve: queue full for tenant %q (retry after %s)", e.Tenant, e.RetryAfter)
}

// Is matches ErrQueueFull so callers can branch without the concrete type.
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// Tenant configures one tenant's share and limits. The zero value of every
// field takes a default; quotas left zero are unlimited.
type Tenant struct {
	// Name identifies the tenant in submits, stats, and the debug block.
	Name string
	// Weight is the tenant's fair-share weight (default 1): a weight-2
	// tenant's virtual clock advances half as fast per byte, so it is
	// served twice the planned bytes of a weight-1 tenant under contention.
	Weight int
	// MaxQueued bounds this tenant's queued (not yet running) jobs;
	// 0 defers to Config.MaxQueuedJobs.
	MaxQueued int
	// MaxInflightBytes caps the summed planned Eq.(4) bytes of the
	// tenant's queued+running jobs; a submit that would exceed it is
	// rejected with ErrQuotaExceeded. 0 is unlimited.
	MaxInflightBytes int64
	// MaxInflightFlops caps the summed 2·m·k·n multiply-add estimate the
	// same way. 0 is unlimited.
	MaxInflightFlops int64
}

// Config tunes the server. The zero value serves a single tenant named
// "default" with production defaults.
type Config struct {
	// Tenants is the tenant table. Empty configures one tenant "default";
	// a submit with an empty tenant name maps to it.
	Tenants []Tenant
	// WorkerMemBytes is θt, the per-worker memory budget handed to the
	// Eq.(4) optimizer and multiplied into cluster capacity (default 1 GiB).
	WorkerMemBytes int64
	// CapacityFraction scales the admission capacity
	// LiveWorkers × θt × PerWorkerInflight (default 0.9), keeping headroom
	// for aggregation buffers and skew.
	CapacityFraction float64
	// MaxQueuedJobs bounds total queued jobs across tenants (default 1024);
	// it is also the per-tenant default for Tenant.MaxQueued.
	MaxQueuedJobs int
	// MaxConcurrentJobs bounds jobs dispatched into the driver at once;
	// 0 sizes it dynamically as 2 × LiveWorkers × PerWorkerInflight
	// (minimum 4) so concurrency tracks the pool.
	MaxConcurrentJobs int
	// Tracer, when set, records serve.accept, serve.queue.wait, and
	// serve.job.run spans per job. Nil disables tracing.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.WorkerMemBytes <= 0 {
		c.WorkerMemBytes = 1 << 30
	}
	if c.CapacityFraction <= 0 || c.CapacityFraction > 1 {
		c.CapacityFraction = 0.9
	}
	if c.MaxQueuedJobs <= 0 {
		c.MaxQueuedJobs = 1024
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []Tenant{{Name: "default"}}
	}
	return c
}

// JobID names one submitted job for Status/Result/Cancel.
type JobID uint64

// JobState is a job's lifecycle position.
type JobState int

const (
	StateQueued JobState = iota
	StateRunning
	StateDone
	StateFailed
	StateCancelled
)

func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	}
	return "unknown"
}

// terminal reports whether the state is final.
func (s JobState) terminal() bool { return s >= StateDone }

// SubmitRequest is one multiply job: C = A×B for a named tenant.
type SubmitRequest struct {
	// Tenant names the submitting tenant ("" maps to "default" when the
	// server was configured without a tenant table).
	Tenant string
	// Priority orders jobs within the tenant's queue: higher runs first,
	// FIFO among equals. It does not affect cross-tenant fair share.
	Priority int
	// A and B are the operands.
	A, B *bmat.BlockMatrix
}

// JobStatus is a point-in-time snapshot of one job.
type JobStatus struct {
	ID       JobID    `json:"id"`
	Tenant   string   `json:"tenant"`
	State    JobState `json:"state"`
	Priority int      `json:"priority"`
	// Params is the Eq.(4)-optimal partitioning admission priced the job
	// at (and the one it runs with).
	Params core.Params `json:"params"`
	// PlannedBytes is the job's Eq.(4) communication estimate — the
	// quantity quotas and fair share are accounted in. PlannedFlops is the
	// 2·m·k·n multiply-add estimate.
	PlannedBytes int64 `json:"planned_bytes"`
	PlannedFlops int64 `json:"planned_flops"`
	// Err carries the failure message for StateFailed ("" otherwise).
	Err string `json:"err,omitempty"`
	// Wait is time spent queued; Run is dispatch-to-finish (0 until then).
	Wait time.Duration `json:"wait"`
	Run  time.Duration `json:"run"`
	// Meter is the driver's per-job traffic attribution so far.
	Meter distnet.JobMeterStats `json:"meter"`
}

// job is the server-side record.
type job struct {
	id       JobID
	tenant   *tenantState
	priority int
	seq      uint64 // FIFO tiebreak within a priority
	a, b     *bmat.BlockMatrix

	params     core.Params
	waveBytes  float64
	planBytes  int64
	planFlops  int64
	state      JobState
	err        error
	result     *bmat.BlockMatrix
	meter      *distnet.JobMeter
	submitted  time.Time
	started    time.Time
	finished   time.Time
	done       chan struct{}
	runCtx     context.Context    // set at dispatch
	cancel     context.CancelFunc // set at dispatch
	cancelAsk  bool
	acceptSpan obs.SpanID
	waitSpan   obs.Span
	heapIdx    int
}

// jobHeap orders one tenant's queue: higher priority first, then submit
// order.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx, h[j].heapIdx = i, j
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	j.heapIdx = -1
	return j
}

// tenantState is one tenant's live scheduling state.
type tenantState struct {
	cfg   Tenant
	queue jobHeap
	// vtime is the WFQ virtual clock: advanced by plannedBytes/weight per
	// dispatch. New/idle tenants are lifted to the global minimum on their
	// first queue entry so an idle tenant cannot bank service.
	vtime float64
	// chargedBytes/chargedFlops sum planned costs of queued+running jobs —
	// the quantities quotas bound. Released at terminal states.
	chargedBytes int64
	chargedFlops int64
	running      int
}

// Server is the serving plane. Create with New, stop with Close.
type Server struct {
	d   *distnet.Driver
	cfg Config
	rec *metrics.ServeRecorder
	tr  *obs.Tracer

	mu         sync.Mutex
	tenants    map[string]*tenantState
	jobs       map[JobID]*job
	nextID     JobID
	nextSeq    uint64
	queued     int
	runningN   int
	waveBytes  float64 // sum of running jobs' wave estimates
	avgRunNano float64 // EWMA of completed job run time, for retry-after
	closed     bool

	wake     chan struct{}
	stop     chan struct{}
	loop     sync.WaitGroup // scheduler goroutine
	inflight sync.WaitGroup // running job goroutines
}

// New builds a Server over an existing driver (which the caller still owns
// and closes). The server registers its debug snapshot with the driver, so
// /debug/distme grows a "serve" block for its lifetime.
func New(d *distnet.Driver, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		d:       d,
		cfg:     cfg,
		rec:     &metrics.ServeRecorder{},
		tr:      cfg.Tracer,
		tenants: map[string]*tenantState{},
		jobs:    map[JobID]*job{},
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	for _, t := range cfg.Tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("serve: tenant with empty name")
		}
		if _, dup := s.tenants[t.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant %q", t.Name)
		}
		if t.Weight <= 0 {
			t.Weight = 1
		}
		if t.MaxQueued <= 0 {
			t.MaxQueued = cfg.MaxQueuedJobs
		}
		s.tenants[t.Name] = &tenantState{cfg: t}
	}
	d.SetServeDebug(func() any { return s.DebugSnapshot() })
	s.loop.Add(1)
	go s.schedule()
	return s, nil
}

// Tenants snapshots the per-tenant serving counters.
func (s *Server) Tenants() []metrics.TenantStats { return s.rec.Tenants() }

// signal nudges the scheduler without blocking.
func (s *Server) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Submit prices, admits, and enqueues one job, returning its ID. Rejections
// are immediate and typed: ErrUnknownTenant, ErrUnschedulable (no (P,Q,R)
// fits θt), ErrQuotaExceeded, or a *QueueFullError (ErrQueueFull).
func (s *Server) Submit(req SubmitRequest) (JobID, error) {
	name := req.Tenant
	if name == "" {
		name = "default"
	}
	asp := s.tr.Start(0, "serve.accept", obs.KindDriver)
	if asp.Active() {
		asp.SetAttr("tenant", name)
	}
	id, err := s.submit(name, req, asp.ID())
	if asp.Active() {
		if err != nil {
			asp.SetAttr("decision", "reject")
			asp.SetAttr("error", err.Error())
		} else {
			asp.SetAttr("decision", "admit")
			asp.SetAttr("job", fmt.Sprintf("%d", id))
		}
	}
	asp.End()
	if err == nil {
		s.signal()
	}
	return id, err
}

func (s *Server) submit(name string, req SubmitRequest, acceptSpan obs.SpanID) (JobID, error) {
	if req.A == nil || req.B == nil {
		return 0, fmt.Errorf("%w: nil operand", ErrUnschedulable)
	}
	if req.A.Cols != req.B.Rows || req.A.BlockSize != req.B.BlockSize {
		return 0, fmt.Errorf("%w: operands not conformable", ErrUnschedulable)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrServerClosed
	}
	t, ok := s.tenants[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	s.rec.OnSubmitted(name)

	// Price the job: Eq.(4)-optimal (P,Q,R) under θt for the current pool.
	shape := core.ShapeOf(req.A, req.B)
	slots := s.d.Workers()
	if slots < 1 {
		slots = 1
	}
	wc := core.WireCost{InputRatio: 1, AggRatio: 1}
	params, err := core.OptimizeWire(shape, s.cfg.WorkerMemBytes, slots, wc)
	if err != nil {
		s.rec.OnRejected(name, metrics.RejectInfeasible)
		return 0, fmt.Errorf("%w: %v", ErrUnschedulable, err)
	}
	planBytes := int64(shape.CostBytesWire(params, wc))
	planFlops := 2 * int64(req.A.Rows) * int64(req.A.Cols) * int64(req.B.Cols)

	// Quotas: the tenant's in-flight planned cost may not exceed its caps.
	if t.cfg.MaxInflightBytes > 0 && t.chargedBytes+planBytes > t.cfg.MaxInflightBytes {
		s.rec.OnRejected(name, metrics.RejectQuota)
		return 0, fmt.Errorf("%w: %q planned bytes %d + %d over cap %d",
			ErrQuotaExceeded, name, t.chargedBytes, planBytes, t.cfg.MaxInflightBytes)
	}
	if t.cfg.MaxInflightFlops > 0 && t.chargedFlops+planFlops > t.cfg.MaxInflightFlops {
		s.rec.OnRejected(name, metrics.RejectQuota)
		return 0, fmt.Errorf("%w: %q planned flops %d + %d over cap %d",
			ErrQuotaExceeded, name, t.chargedFlops, planFlops, t.cfg.MaxInflightFlops)
	}

	// Backpressure: bounded queue depth, per tenant and globally.
	if len(t.queue) >= t.cfg.MaxQueued || s.queued >= s.cfg.MaxQueuedJobs {
		s.rec.OnRejected(name, metrics.RejectQueueFull)
		return 0, &QueueFullError{Tenant: name, RetryAfter: s.retryAfterLocked()}
	}

	s.nextID++
	s.nextSeq++
	j := &job{
		id:         s.nextID,
		tenant:     t,
		priority:   req.Priority,
		seq:        s.nextSeq,
		a:          req.A,
		b:          req.B,
		params:     params,
		waveBytes:  s.waveOfLocked(shape, params),
		planBytes:  planBytes,
		planFlops:  planFlops,
		meter:      &distnet.JobMeter{},
		submitted:  time.Now(),
		done:       make(chan struct{}),
		acceptSpan: acceptSpan,
	}
	j.waitSpan = s.tr.Start(acceptSpan, "serve.queue.wait", obs.KindDriver)
	if j.waitSpan.Active() {
		j.waitSpan.SetAttr("tenant", name)
	}
	if len(t.queue) == 0 && t.running == 0 {
		// Lift an idle tenant's clock to the current minimum among busy
		// tenants so it cannot bank arbitrarily old virtual time.
		if min, ok := s.minBusyVtimeLocked(); ok && t.vtime < min {
			t.vtime = min
		}
	}
	heap.Push(&t.queue, j)
	t.chargedBytes += planBytes
	t.chargedFlops += planFlops
	s.queued++
	s.jobs[j.id] = j
	s.rec.OnAdmitted(name, planBytes, planFlops)
	return j.id, nil
}

// waveOfLocked estimates the job's cuboid-wave memory: one task's Eq.(3)
// working set times the tasks the pool can run at once.
func (s *Server) waveOfLocked(shape core.Shape, params core.Params) float64 {
	slots := s.d.Workers() * s.d.PerWorkerInflight()
	if slots < 1 {
		slots = 1
	}
	tasks := params.Tasks()
	if tasks > slots {
		tasks = slots
	}
	return shape.MemBytes(params) * float64(tasks)
}

// capacityLocked is the cluster's admission capacity in bytes.
func (s *Server) capacityLocked() float64 {
	live := s.d.Workers()
	if live < 1 {
		live = 1
	}
	return float64(live) * float64(s.cfg.WorkerMemBytes) * float64(s.d.PerWorkerInflight()) * s.cfg.CapacityFraction
}

// maxConcurrentLocked is the dispatch-parallelism bound.
func (s *Server) maxConcurrentLocked() int {
	if s.cfg.MaxConcurrentJobs > 0 {
		return s.cfg.MaxConcurrentJobs
	}
	n := 2 * s.d.Workers() * s.d.PerWorkerInflight()
	if n < 4 {
		n = 4
	}
	return n
}

// retryAfterLocked estimates when queue space should free: the EWMA job
// run time scaled by how many queued jobs stand in line per dispatch slot.
func (s *Server) retryAfterLocked() time.Duration {
	avg := time.Duration(s.avgRunNano)
	if avg <= 0 {
		avg = 5 * time.Millisecond
	}
	slots := s.maxConcurrentLocked()
	waves := s.queued/slots + 1
	ra := avg * time.Duration(waves)
	if ra < time.Millisecond {
		ra = time.Millisecond
	}
	return ra
}

// minBusyVtimeLocked is the minimum virtual time among tenants with queued
// or running work.
func (s *Server) minBusyVtimeLocked() (float64, bool) {
	min, ok := 0.0, false
	for _, t := range s.tenants {
		if len(t.queue) == 0 && t.running == 0 {
			continue
		}
		if !ok || t.vtime < min {
			min, ok = t.vtime, true
		}
	}
	return min, ok
}

// schedule is the dispatcher loop: drain dispatchable jobs on every wake
// (submits, completions) and on a heartbeat tick that tracks membership
// changes.
func (s *Server) schedule() {
	defer s.loop.Done()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake:
		case <-tick.C:
		}
		for {
			j := s.pickOne()
			if j == nil {
				break
			}
			s.inflight.Add(1)
			go s.run(j)
		}
	}
}

// pickOne pops the next dispatchable job under admission control, marks it
// running, and charges its wave — or returns nil when nothing can dispatch.
func (s *Server) pickOne() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.runningN >= s.maxConcurrentLocked() {
		return nil
	}
	capacity := s.capacityLocked()
	// Serve the farthest-behind tenant whose head job fits the remaining
	// wave capacity. A tenant whose head does not fit is skipped — its
	// virtual clock does not advance, so it is served first once capacity
	// frees. With nothing running, the best candidate dispatches
	// unconditionally: the optimizer bounded its tasks by θt, and holding
	// the cluster idle for a job that "never fits" would be a deadlock.
	var pick, fallback *tenantState
	for _, t := range s.tenants {
		if len(t.queue) == 0 {
			continue
		}
		if fallback == nil || t.vtime < fallback.vtime {
			fallback = t
		}
		if s.waveBytes+t.queue[0].waveBytes > capacity {
			continue
		}
		if pick == nil || t.vtime < pick.vtime {
			pick = t
		}
	}
	if pick == nil {
		if s.runningN > 0 || fallback == nil {
			return nil
		}
		pick = fallback
	}
	j := heap.Pop(&pick.queue).(*job)
	pick.vtime += float64(j.planBytes) / float64(pick.cfg.Weight)
	pick.running++
	s.queued--
	s.runningN++
	s.waveBytes += j.waveBytes
	j.state = StateRunning
	j.started = time.Now()
	if j.waitSpan.Active() {
		j.waitSpan.SetAttr("wait", j.started.Sub(j.submitted).String())
	}
	j.waitSpan.End()
	ctx, cancel := context.WithCancel(context.Background())
	j.runCtx, j.cancel = ctx, cancel
	if j.cancelAsk {
		cancel()
	}
	return j
}

// run executes one dispatched job in the driver and settles it.
func (s *Server) run(j *job) {
	defer s.inflight.Done()
	rsp := s.tr.Start(j.acceptSpan, "serve.job.run", obs.KindDriver)
	if rsp.Active() {
		rsp.SetAttr("tenant", j.tenant.cfg.Name)
		rsp.SetAttr("params", j.params.String())
	}
	ctx := distnet.WithJobMeter(j.runCtx, j.meter)
	c, _, err := s.d.Execute(ctx, j.a, j.b, distnet.MultiplyOptions{Params: &j.params})
	if rsp.Active() && err != nil {
		rsp.SetAttr("error", err.Error())
	}
	rsp.End()
	j.cancel() // release the context's resources; settle records the outcome
	s.settle(j, c, err)
}

// settle finalizes one job: record outcome, release charges, wake the
// scheduler.
func (s *Server) settle(j *job, c *bmat.BlockMatrix, err error) {
	now := time.Now()
	s.mu.Lock()
	j.finished = now
	t := j.tenant
	t.chargedBytes -= j.planBytes
	t.chargedFlops -= j.planFlops
	t.running--
	s.runningN--
	s.waveBytes -= j.waveBytes
	run := now.Sub(j.started)
	switch {
	case err == nil:
		j.state = StateDone
		j.result = c
		if s.avgRunNano == 0 {
			s.avgRunNano = float64(run.Nanoseconds())
		} else {
			s.avgRunNano = 0.875*s.avgRunNano + 0.125*float64(run.Nanoseconds())
		}
		m := j.meter.Stats()
		s.rec.OnCompleted(t.cfg.Name, j.started.Sub(j.submitted), run,
			m.RequestBytes, m.ReplyBytes, m.Retries, m.LocalFallbacks)
	case j.cancelAsk && errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = err
		s.rec.OnCancelled(t.cfg.Name)
	default:
		j.state = StateFailed
		j.err = err
		s.rec.OnFailed(t.cfg.Name)
	}
	close(j.done)
	s.mu.Unlock()
	s.signal()
}

// Status snapshots one job.
func (s *Server) Status(id JobID) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return s.statusLocked(j), nil
}

func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:           j.id,
		Tenant:       j.tenant.cfg.Name,
		State:        j.state,
		Priority:     j.priority,
		Params:       j.params,
		PlannedBytes: j.planBytes,
		PlannedFlops: j.planFlops,
		Meter:        j.meter.Stats(),
	}
	if j.err != nil {
		st.Err = j.err.Error()
	}
	switch {
	case j.state == StateQueued:
		st.Wait = time.Since(j.submitted)
	case j.started.IsZero():
		// Cancelled while queued: wait ran from submit to finish.
		st.Wait = j.finished.Sub(j.submitted)
	default:
		st.Wait = j.started.Sub(j.submitted)
		if j.state == StateRunning {
			st.Run = time.Since(j.started)
		} else {
			st.Run = j.finished.Sub(j.started)
		}
	}
	return st
}

// Result blocks until the job reaches a terminal state (or ctx ends) and
// returns its product. Failed jobs return their error; cancelled jobs
// return context.Canceled wrapped in the job error.
func (s *Server) Result(ctx context.Context, id JobID) (*bmat.BlockMatrix, JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, JobStatus{}, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	select {
	case <-ctx.Done():
		return nil, JobStatus{}, ctx.Err()
	case <-j.done:
	}
	s.mu.Lock()
	st := s.statusLocked(j)
	c, err := j.result, j.err
	s.mu.Unlock()
	return c, st, err
}

// Cancel stops a job: a queued job is removed immediately, a running job
// has its context cancelled (the driver abandons unscheduled cuboids).
// Cancelling a terminal job is a no-op.
func (s *Server) Cancel(id JobID) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	switch j.state {
	case StateQueued:
		heap.Remove(&j.tenant.queue, j.heapIdx)
		t := j.tenant
		t.chargedBytes -= j.planBytes
		t.chargedFlops -= j.planFlops
		s.queued--
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = time.Now()
		j.cancelAsk = true
		if j.waitSpan.Active() {
			j.waitSpan.SetAttr("cancelled", "true")
		}
		j.waitSpan.End()
		close(j.done)
		s.rec.OnCancelled(t.cfg.Name)
		s.mu.Unlock()
		s.signal()
		return nil
	case StateRunning:
		j.cancelAsk = true
		cancel := j.cancel
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		s.mu.Unlock()
		return nil
	}
}

// Forget drops a terminal job's record (and its result) from the server;
// long-lived callers use it to bound memory. Non-terminal jobs are kept.
func (s *Server) Forget(id JobID) {
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok && j.state.terminal() {
		delete(s.jobs, id)
	}
	s.mu.Unlock()
}

// Close stops the server: new submits fail with ErrServerClosed, queued
// jobs are cancelled, and Close blocks until running jobs settle. The
// underlying driver stays open (the caller owns it).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var drop []*job
	for _, t := range s.tenants {
		for len(t.queue) > 0 {
			j := heap.Pop(&t.queue).(*job)
			t.chargedBytes -= j.planBytes
			t.chargedFlops -= j.planFlops
			s.queued--
			j.state = StateCancelled
			j.err = ErrServerClosed
			j.finished = time.Now()
			drop = append(drop, j)
		}
	}
	s.mu.Unlock()
	for _, j := range drop {
		j.waitSpan.End()
		close(j.done)
		s.rec.OnCancelled(j.tenant.cfg.Name)
	}
	close(s.stop)
	s.loop.Wait()
	s.inflight.Wait()
	s.d.SetServeDebug(nil)
}
