package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"distme/internal/bmat"
	"distme/internal/distnet"
	"distme/internal/matrix"
)

// The serve-plane failure-edge suite (run under -race in CI): quota
// exhaustion mid-job, cancel-while-queued, worker churn under a queued
// backlog with bit-identical results, and ErrQueueFull backpressure under
// an open-loop burst.

// testCluster is an in-process worker pool plus a driver tuned for fast
// failure detection.
type testCluster struct {
	d    *distnet.Driver
	pool *distnet.InProcPool
}

func startCluster(t *testing.T, workers int) *testCluster {
	t.Helper()
	pool := &distnet.InProcPool{}
	addrs := make([]string, 0, workers)
	for i := 0; i < workers; i++ {
		addr, err := pool.Grow(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	d, err := distnet.DialOptions(addrs, distnet.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		PingTimeout:       time.Second,
		CallTimeout:       10 * time.Second,
		SuspectAfter:      1,
		DeadAfter:         2,
		JitterSeed:        1,
	})
	if err != nil {
		pool.Close(context.Background())
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Close()
		pool.Close(context.Background())
	})
	return &testCluster{d: d, pool: pool}
}

func testMatrices(seed int64, n int) (a, b *bmat.BlockMatrix) {
	rng := rand.New(rand.NewSource(seed))
	a = bmat.RandomDense(rng, n, n, 8)
	b = bmat.RandomDense(rng, n, n, 8)
	return a, b
}

// bitIdentical fails unless both products carry the exact same bits.
func bitIdentical(t *testing.T, got, want *bmat.BlockMatrix) {
	t.Helper()
	g, w := got.ToDense(), want.ToDense()
	if len(g.Data) != len(w.Data) {
		t.Fatalf("result sizes differ: %d vs %d", len(g.Data), len(w.Data))
	}
	for i := range g.Data {
		if math.Float64bits(g.Data[i]) != math.Float64bits(w.Data[i]) {
			t.Fatalf("results differ at %d: %v vs %v", i, g.Data[i], w.Data[i])
		}
	}
}

// TestConcurrentJobsMatchLocal floods the server with concurrent jobs and
// checks every product against the local reference arithmetic.
func TestConcurrentJobsMatchLocal(t *testing.T) {
	c := startCluster(t, 3)
	s, err := New(c.d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const jobs = 24
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, b := testMatrices(int64(9000+i), 32)
			id, err := s.Submit(SubmitRequest{A: a, B: b})
			if err != nil {
				errs[i] = err
				return
			}
			got, st, err := s.Result(context.Background(), id)
			if err != nil {
				errs[i] = err
				return
			}
			if st.State != StateDone {
				t.Errorf("job %d state %v", i, st.State)
				return
			}
			want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
			g := got.ToDense()
			for k := range want.Data {
				if math.Abs(g.Data[k]-want.Data[k]) > 1e-9 {
					t.Errorf("job %d wrong at %d", i, k)
					return
				}
			}
			if st.Meter.Cuboids == 0 || st.Meter.RequestBytes == 0 {
				t.Errorf("job %d meter empty: %+v", i, st.Meter)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	stats := s.Tenants()
	if len(stats) != 1 || stats[0].Completed != jobs {
		t.Fatalf("tenant stats: %+v", stats)
	}
	if stats[0].MeasuredRequestBytes == 0 || stats[0].PlannedBytes == 0 {
		t.Fatalf("byte accounting empty: %+v", stats[0])
	}
}

// TestQuotaExhaustionMidJob pins a tenant's byte quota at roughly one job:
// while the first job is in flight its planned bytes stay charged, so a
// second submit must be rejected with ErrQuotaExceeded — and admitted again
// once the first completes and releases its charge.
func TestQuotaExhaustionMidJob(t *testing.T) {
	c := startCluster(t, 2)
	a, b := testMatrices(9100, 32)

	// Price one job to size the quota at it (with slack under 2 jobs).
	probe, err := New(c.d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	id, err := probe.Submit(SubmitRequest{A: a, B: b})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := probe.Result(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	probe.Close()
	quota := st.PlannedBytes + st.PlannedBytes/2

	s, err := New(c.d, Config{
		Tenants: []Tenant{{Name: "metered", MaxInflightBytes: quota}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id1, err := s.Submit(SubmitRequest{Tenant: "metered", A: a, B: b})
	if err != nil {
		t.Fatal(err)
	}
	// The first job is queued or running: its charge is held, so this
	// submit exceeds the quota.
	if _, err := s.Submit(SubmitRequest{Tenant: "metered", A: a, B: b}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("expected ErrQuotaExceeded mid-job, got %v", err)
	}
	if _, _, err := s.Result(context.Background(), id1); err != nil {
		t.Fatal(err)
	}
	// Charge released: the same job now fits.
	id3, err := s.Submit(SubmitRequest{Tenant: "metered", A: a, B: b})
	if err != nil {
		t.Fatalf("quota not released after completion: %v", err)
	}
	if _, _, err := s.Result(context.Background(), id3); err != nil {
		t.Fatal(err)
	}
	stats := s.Tenants()
	if stats[0].RejectedQuota != 1 || stats[0].Completed != 2 {
		t.Fatalf("tenant stats: %+v", stats[0])
	}
}

// TestCancelWhileQueued parks jobs behind a single dispatch slot, cancels
// one while it is still queued, and checks it settles as cancelled with its
// quota charge released and without ever running.
func TestCancelWhileQueued(t *testing.T) {
	c := startCluster(t, 1)
	s, err := New(c.d, Config{MaxConcurrentJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a, b := testMatrices(9200, 48)
	var ids []JobID
	for i := 0; i < 4; i++ {
		id, err := s.Submit(SubmitRequest{A: a, B: b})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// The last job is certainly still queued behind the single slot.
	victim := ids[len(ids)-1]
	if err := s.Cancel(victim); err != nil {
		t.Fatal(err)
	}
	_, st, err := s.Result(context.Background(), victim)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled job returned %v", err)
	}
	if st.State != StateCancelled {
		t.Fatalf("state %v after cancel-while-queued", st.State)
	}
	if st.Run != 0 {
		t.Fatalf("cancelled-while-queued job reports run time %v", st.Run)
	}
	// Cancel is idempotent, including on terminal jobs.
	if err := s.Cancel(victim); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[:len(ids)-1] {
		if _, st, err := s.Result(context.Background(), id); err != nil || st.State != StateDone {
			t.Fatalf("surviving job %d: state %v err %v", id, st.State, err)
		}
	}
	stats := s.Tenants()
	if stats[0].Cancelled != 1 || stats[0].Completed != 3 {
		t.Fatalf("tenant stats: %+v", stats[0])
	}
	// Every charge was released.
	dbg := s.DebugSnapshot()
	if dbg.Tenants[0].ChargedBytes != 0 || dbg.Queued != 0 || dbg.Running != 0 {
		t.Fatalf("charges not released: %+v", dbg)
	}
}

// TestWorkerChurnDuringBacklog builds a queued backlog, then kills a worker
// and grows a replacement while the backlog drains. Every job must finish
// and every product must be bit-identical to its serial pre-churn run.
func TestWorkerChurnDuringBacklog(t *testing.T) {
	c := startCluster(t, 3)

	const jobs = 12
	type cse struct {
		a, b *bmat.BlockMatrix
		want *bmat.BlockMatrix
	}
	cases := make([]cse, jobs)
	// Serial references on the same cluster, before any churn.
	ref, err := New(c.d, Config{MaxConcurrentJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cases {
		a, b := testMatrices(int64(9300+i), 32)
		id, err := ref.Submit(SubmitRequest{A: a, B: b})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ref.Result(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = cse{a: a, b: b, want: want}
	}
	ref.Close()

	s, err := New(c.d, Config{MaxConcurrentJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ids := make([]JobID, jobs)
	for i := range cases {
		id, err := s.Submit(SubmitRequest{A: cases[i].a, B: cases[i].b})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Churn while the backlog drains: kill one worker, grow a replacement.
	addrs := c.pool.Addrs()
	if !c.pool.Kill(addrs[0]) {
		t.Fatal("kill failed")
	}
	if addr, err := c.pool.Grow(context.Background()); err != nil {
		t.Fatal(err)
	} else if err := c.d.AddWorker(addr); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		got, st, err := s.Result(context.Background(), id)
		if err != nil {
			t.Fatalf("job %d under churn: %v", i, err)
		}
		if st.State != StateDone {
			t.Fatalf("job %d state %v", i, st.State)
		}
		bitIdentical(t, got, cases[i].want)
	}
}

// TestQueueFullBackpressureUnderBurst fires an open-loop burst far past the
// queue bound: the overflow must come back as typed ErrQueueFull (with a
// retry-after hint), never deadlock, and every admitted job must finish.
func TestQueueFullBackpressureUnderBurst(t *testing.T) {
	c := startCluster(t, 1)
	s, err := New(c.d, Config{MaxQueuedJobs: 4, MaxConcurrentJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a, b := testMatrices(9400, 32)
	const burst = 60
	var mu sync.Mutex
	var admitted []JobID
	var rejected int
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < burst/6; i++ {
				id, err := s.Submit(SubmitRequest{A: a, B: b})
				mu.Lock()
				if err == nil {
					admitted = append(admitted, id)
				} else {
					var qf *QueueFullError
					if !errors.As(err, &qf) || !errors.Is(err, ErrQueueFull) {
						t.Errorf("burst rejection wrong type: %v", err)
					} else if qf.RetryAfter <= 0 {
						t.Errorf("retry-after not set: %+v", qf)
					}
					rejected++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if rejected == 0 {
		t.Fatalf("burst of %d into a queue of 4 produced no rejections", burst)
	}
	deadline, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range admitted {
		if _, st, err := s.Result(deadline, id); err != nil || st.State != StateDone {
			t.Fatalf("admitted job %d: state %v err %v", id, st.State, err)
		}
	}
	stats := s.Tenants()
	if stats[0].RejectedQueueFull != int64(rejected) {
		t.Fatalf("rejection accounting: want %d, stats %+v", rejected, stats[0])
	}
}

// TestWireAPIRoundTrip exercises submit/status/result/cancel and typed
// error mapping over a real socket.
func TestWireAPIRoundTrip(t *testing.T) {
	c := startCluster(t, 2)
	s, err := New(c.d, Config{
		Tenants:           []Tenant{{Name: "alpha"}, {Name: "tiny", MaxQueued: 1}},
		MaxConcurrentJobs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sl, err := ServeListener(s, l)
	if err != nil {
		t.Fatal(err)
	}
	defer sl.Close()
	cl, err := Dial(sl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	a, b := testMatrices(9500, 32)
	id, err := cl.Submit("alpha", 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := cl.Result(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Tenant != "alpha" {
		t.Fatalf("wire status %+v", st)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	g := got.ToDense()
	for k := range want.Data {
		if math.Abs(g.Data[k]-want.Data[k]) > 1e-9 {
			t.Fatalf("wire product wrong at %d", k)
		}
	}
	if _, err := cl.Status(id); err != nil {
		t.Fatal(err)
	}

	// Typed rejections cross the wire.
	if _, err := cl.Submit("nobody", 0, a, b); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant over wire: %v", err)
	}
	if _, err := cl.Status(99999); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job over wire: %v", err)
	}
	// Fill tiny's queue (depth 1) while a slow blocker holds the single
	// dispatch slot, then one more tiny submit must bounce as a
	// QueueFullError with its hint intact. The blocker goes in directly
	// (no wire-encode delay) and is big enough to outlast the fast wire
	// submits below.
	ab, bb := testMatrices(9501, 576)
	if _, err := s.Submit(SubmitRequest{Tenant: "alpha", A: ab, B: bb}); err != nil {
		t.Fatal(err)
	}
	for s.DebugSnapshot().Running == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := cl.Submit("tiny", 0, a, b); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Submit("tiny", 0, a, b)
	var qf *QueueFullError
	if !errors.As(err, &qf) || qf.Tenant != "tiny" || qf.RetryAfter <= 0 {
		t.Fatalf("queue-full over wire: %v\nserver: %+v", err, s.DebugSnapshot())
	}

	// Cancel over the wire: park a job behind the backlog and cancel it.
	vid, err := cl.Submit("alpha", -1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Cancel(vid); err != nil {
		t.Fatal(err)
	}
	vst, err := cl.Status(vid)
	if err != nil {
		t.Fatal(err)
	}
	if vst.State != StateCancelled && vst.State != StateRunning && vst.State != StateDone {
		t.Fatalf("cancelled job state %v", vst.State)
	}
}

// TestFairShareServesLighterTenant runs a heavy tenant flooding the queue
// against a light tenant trickling jobs: WFQ must keep serving the light
// tenant (its jobs cannot all be starved behind the flood).
func TestFairShareServesLighterTenant(t *testing.T) {
	c := startCluster(t, 2)
	s, err := New(c.d, Config{
		Tenants:           []Tenant{{Name: "heavy"}, {Name: "light"}},
		MaxConcurrentJobs: 1,
		MaxQueuedJobs:     256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a, b := testMatrices(9600, 32)
	for i := 0; i < 40; i++ {
		if _, err := s.Submit(SubmitRequest{Tenant: "heavy", A: a, B: b}); err != nil {
			t.Fatal(err)
		}
	}
	id, err := s.Submit(SubmitRequest{Tenant: "light", A: a, B: b})
	if err != nil {
		t.Fatal(err)
	}
	// The light job must finish long before the whole heavy backlog could
	// drain serially.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	start := time.Now()
	if _, st, err := s.Result(ctx, id); err != nil || st.State != StateDone {
		t.Fatalf("light job starved: state %v err %v", st.State, err)
	}
	elapsed := time.Since(start)
	dbg := s.DebugSnapshot()
	var heavyDone int64
	for _, tn := range dbg.Tenants {
		if tn.Name == "heavy" {
			heavyDone = tn.Stats.Completed
		}
	}
	if heavyDone > 20 {
		t.Fatalf("light tenant waited behind %d heavy jobs (%v): fair share broken", heavyDone, elapsed)
	}
}
