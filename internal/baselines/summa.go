// Package baselines implements the non-Spark comparison systems of §6.5 and
// §7: SUMMA (the distributed multiplication algorithm inside ScaLAPACK's
// PDGEMM), a SciDB-style wrapper that repartitions inputs before delegating
// to SUMMA, and CRMM (Marlin's logical-block variant of RMM). All run on the
// same cluster substrate with the same accounting, so Table 5's comparison
// is apples to apples.
package baselines

import (
	"fmt"
	"time"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/metrics"
	"distme/internal/shuffle"
)

// MultiplySUMMA runs the Scalable Universal Matrix Multiplication Algorithm
// (van de Geijn & Watts 1997) on a gridP×gridQ process grid: C is tiled over
// the grid and stays in place; for each k-panel, A's panel is broadcast
// along grid rows (Q copies) and B's along grid columns (P copies). In the
// paper's terms this is a (P,Q,R)-partitioning with R = 1 and the panel
// stream replacing the k-axis split (§7), with one crucial difference that
// Table 5 exposes: each process holds its entire local A, B and C as single
// arrays, so per-process memory is (|A|+|B|+|C|)/(P·Q) regardless of K —
// which out-of-memories on output-heavy shapes where DistME's cuboids
// survive.
func MultiplySUMMA(a, b *bmat.BlockMatrix, gridP, gridQ int, env core.Env) (*bmat.BlockMatrix, error) {
	if a.Cols != b.Rows || a.BlockSize != b.BlockSize {
		return nil, fmt.Errorf("baselines: SUMMA: operands not conformable")
	}
	if gridP <= 0 || gridQ <= 0 {
		return nil, fmt.Errorf("baselines: SUMMA: grid %dx%d must be positive", gridP, gridQ)
	}
	if gridP > a.IB {
		gridP = a.IB
	}
	if gridQ > b.JB {
		gridQ = b.JB
	}
	rec := env.Cluster.Recorder()
	if env.Recorder != nil {
		rec = env.Recorder
	}

	// ---- Repartition: panel broadcasts ---------------------------------
	// Each A block travels to the Q processes of its grid row, each B block
	// to the P processes of its grid column: Q·|A| + P·|B|.
	start := time.Now()
	repart := int64(gridQ)*a.StoredBytes() + int64(gridP)*b.StoredBytes()
	rec.AddBytes(metrics.StepRepartition, repart)
	if err := env.Cluster.ChargeSpill(repart); err != nil {
		return nil, err
	}
	rec.AddDuration(metrics.StepRepartition, time.Since(start))

	// ---- Local multiplication: one task per process --------------------
	// The whole local C array lives in process memory for the whole run —
	// ScaLAPACK's single-array locals (§6.5).
	start = time.Now()
	out := bmat.New(a.Rows, b.Cols, a.BlockSize)
	type tile struct{ ilo, ihi, jlo, jhi int }
	tiles := make([]tile, 0, gridP*gridQ)
	results := make([]map[bmat.BlockKey]*matrix.Dense, gridP*gridQ)
	var tasks []cluster.Task
	for p := 0; p < gridP; p++ {
		ilo, ihi := shuffle.GridSpan(p, a.IB, gridP)
		for q := 0; q < gridQ; q++ {
			jlo, jhi := shuffle.GridSpan(q, b.JB, gridQ)
			idx := len(tiles)
			tl := tile{ilo, ihi, jlo, jhi}
			tiles = append(tiles, tl)
			// Single-array memory: full local shares of A, B and C.
			mem := a.StoredBytes()/int64(gridP) + b.StoredBytes()/int64(gridQ) +
				tileDenseBytes(a, b, tl.ilo, tl.ihi, tl.jlo, tl.jhi)
			tasks = append(tasks, cluster.Task{
				Name:        fmt.Sprintf("summa(%d,%d)", p, q),
				MemEstimate: mem,
				Fn: func() error {
					res := make(map[bmat.BlockKey]*matrix.Dense)
					for i := tl.ilo; i < tl.ihi; i++ {
						for j := tl.jlo; j < tl.jhi; j++ {
							var acc *matrix.Dense
							for k := 0; k < a.JB; k++ {
								ab := a.Block(i, k)
								bb := b.Block(k, j)
								if ab == nil || bb == nil {
									continue
								}
								acc = matrix.MulAdd(acc, ab, bb)
							}
							if acc != nil {
								res[bmat.BlockKey{I: i, J: j}] = acc
							}
						}
					}
					results[idx] = res
					return nil
				},
			})
		}
	}
	if err := env.Cluster.Run(tasks); err != nil {
		return nil, err
	}
	rec.AddDuration(metrics.StepLocalMultiply, time.Since(start))

	// ---- No aggregation: C tiles are final -----------------------------
	for _, res := range results {
		for k, blk := range res {
			out.SetBlock(k.I, k.J, blk)
		}
	}
	return out, nil
}

func tileDenseBytes(a, b *bmat.BlockMatrix, ilo, ihi, jlo, jhi int) int64 {
	var n int64
	for i := ilo; i < ihi; i++ {
		r, _ := a.BlockDims(i, 0)
		for j := jlo; j < jhi; j++ {
			_, c := b.BlockDims(0, j)
			n += int64(r) * int64(c) * 8
		}
	}
	return n
}

// MultiplySciDB models SciDB's linear-algebra operator, which wraps
// ScaLAPACK: the inputs must first be repartitioned from the array store
// into ScaLAPACK's layout (an extra |A| + |B| shuffle, §7), then SUMMA runs.
func MultiplySciDB(a, b *bmat.BlockMatrix, gridP, gridQ int, env core.Env) (*bmat.BlockMatrix, error) {
	rec := env.Cluster.Recorder()
	if env.Recorder != nil {
		rec = env.Recorder
	}
	pre := a.StoredBytes() + b.StoredBytes()
	rec.AddBytes(metrics.StepRepartition, pre)
	if err := env.Cluster.ChargeSpill(pre); err != nil {
		return nil, err
	}
	return MultiplySUMMA(a, b, gridP, gridQ, env)
}

// MultiplyCRMM runs Marlin's CRMM: physical blocks are first shuffled into
// larger cube-shaped logical blocks (side g on every axis), then RMM runs on
// the logical grid. The cube constraint is the method's limitation the paper
// notes (§7): cuboids can flatten along the cheap axes, cubes cannot. The
// regrouping shuffle itself costs |A| + |B|.
func MultiplyCRMM(a, b *bmat.BlockMatrix, env core.Env) (*bmat.BlockMatrix, error) {
	if a.Cols != b.Rows || a.BlockSize != b.BlockSize {
		return nil, fmt.Errorf("baselines: CRMM: operands not conformable")
	}
	s := core.ShapeOf(a, b)
	θ := env.Cluster.Config().TaskMemBytes

	// Pick the largest cube side g (in physical blocks) whose logical-voxel
	// working set fits θt. Logical grid: ceil(I/g) × ceil(J/g) × ceil(K/g).
	g := 0
	maxG := maxInt(s.I, maxInt(s.J, s.K))
	for cand := 1; cand <= maxG; cand++ {
		p := core.Params{P: ceilDiv(s.I, cand), Q: ceilDiv(s.J, cand), R: ceilDiv(s.K, cand)}
		if s.MemBytes(p) <= float64(θ) {
			g = cand
		} else {
			break
		}
	}
	if g == 0 {
		return nil, fmt.Errorf("%w: CRMM logical blocks cannot fit θt=%d", core.ErrInfeasible, θ)
	}
	params := core.Params{P: ceilDiv(s.I, g), Q: ceilDiv(s.J, g), R: ceilDiv(s.K, g)}

	// Regrouping shuffle: every physical block moves once.
	rec := env.Cluster.Recorder()
	if env.Recorder != nil {
		rec = env.Recorder
	}
	regroup := a.StoredBytes() + b.StoredBytes()
	rec.AddBytes(metrics.StepRepartition, regroup)
	if err := env.Cluster.ChargeSpill(regroup); err != nil {
		return nil, err
	}
	return core.MultiplyCuboid(a, b, params, env)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
