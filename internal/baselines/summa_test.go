package baselines

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/metrics"
)

func testEnv(t *testing.T, taskMem int64) core.Env {
	t.Helper()
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = taskMem
	cfg.DiskCapacityBytes = 0
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return core.Env{Cluster: c}
}

func TestSUMMAMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	a := bmat.RandomDense(rng, 18, 12, 3)
	b := bmat.RandomDense(rng, 12, 24, 3)
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	for _, grid := range [][2]int{{1, 1}, {2, 2}, {3, 4}, {6, 8}} {
		got, err := MultiplySUMMA(a, b, grid[0], grid[1], testEnv(t, 1<<30))
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		if !got.ToDense().EqualApprox(want, 1e-9) {
			t.Fatalf("grid %v: wrong product", grid)
		}
	}
}

func TestSUMMAProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bs := 2 + rng.Intn(3)
		m, k, n := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := bmat.RandomDense(rng, m, k, bs)
		b := bmat.RandomDense(rng, k, n, bs)
		gp, gq := 1+rng.Intn(4), 1+rng.Intn(4)
		got, err := MultiplySUMMA(a, b, gp, gq, testEnv(t, 1<<30))
		if err != nil {
			return false
		}
		want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
		return got.ToDense().EqualApprox(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSUMMACommunicationAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	a := bmat.RandomDense(rng, 12, 12, 3)
	b := bmat.RandomDense(rng, 12, 12, 3)
	env := testEnv(t, 1<<30)
	if _, err := MultiplySUMMA(a, b, 2, 3, env); err != nil {
		t.Fatal(err)
	}
	rec := env.Cluster.Recorder()
	want := int64(3)*a.StoredBytes() + int64(2)*b.StoredBytes()
	if got := rec.Bytes(metrics.StepRepartition); got != want {
		t.Fatalf("SUMMA repartition = %d, want Q·|A|+P·|B| = %d", got, want)
	}
	if rec.Bytes(metrics.StepAggregation) != 0 {
		t.Fatal("SUMMA must have no aggregation shuffle (C stays in place)")
	}
}

// TestSUMMAOOMOnOutputHeavyShape reproduces Table 5's bottom row: the
// single-array local C kills ScaLAPACK on N×1K×N while CuboidMM survives.
func TestSUMMAOOMOnOutputHeavyShape(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	a := bmat.RandomDense(rng, 64, 2, 2)
	b := bmat.RandomDense(rng, 2, 64, 2)
	// |C| = 64·64·8 = 32 KiB over 4 processes → 8 KiB each; budget 6 KiB.
	env := testEnv(t, 6<<10)
	_, err := MultiplySUMMA(a, b, 2, 2, env)
	if !errors.Is(err, cluster.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}

	// CuboidMM on the same budget survives by raising P·Q.
	env2 := testEnv(t, 6<<10)
	got, params, err := core.MultiplyAuto(a, b, env2)
	if err != nil {
		t.Fatalf("CuboidMM failed where it should survive: %v", err)
	}
	if params.R != 1 {
		t.Fatalf("optimizer picked %v; expected R=1 for two large dimensions", params)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("CuboidMM product wrong")
	}
}

func TestSUMMAGridClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	a := bmat.RandomDense(rng, 4, 4, 2) // 2×2 blocks
	b := bmat.RandomDense(rng, 4, 4, 2)
	// Grid larger than the block grid must clamp, not break.
	got, err := MultiplySUMMA(a, b, 10, 10, testEnv(t, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("clamped grid wrong product")
	}
}

func TestSUMMAInvalidInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	a := bmat.RandomDense(rng, 4, 4, 2)
	b := bmat.RandomDense(rng, 6, 4, 2)
	if _, err := MultiplySUMMA(a, b, 2, 2, testEnv(t, 1<<30)); err == nil {
		t.Fatal("nonconformable inputs accepted")
	}
	c := bmat.RandomDense(rng, 4, 4, 2)
	if _, err := MultiplySUMMA(a, c, 0, 2, testEnv(t, 1<<30)); err == nil {
		t.Fatal("zero grid accepted")
	}
}

func TestSciDBAddsRepartitionCost(t *testing.T) {
	rng := rand.New(rand.NewSource(135))
	a := bmat.RandomDense(rng, 12, 12, 3)
	b := bmat.RandomDense(rng, 12, 12, 3)

	envS := testEnv(t, 1<<30)
	if _, err := MultiplySUMMA(a, b, 2, 2, envS); err != nil {
		t.Fatal(err)
	}
	envD := testEnv(t, 1<<30)
	got, err := MultiplySciDB(a, b, 2, 2, envD)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("SciDB product wrong")
	}
	extra := envD.Cluster.Recorder().Bytes(metrics.StepRepartition) -
		envS.Cluster.Recorder().Bytes(metrics.StepRepartition)
	if extra != a.StoredBytes()+b.StoredBytes() {
		t.Fatalf("SciDB pre-repartition = %d, want |A|+|B| = %d", extra, a.StoredBytes()+b.StoredBytes())
	}
}

func TestCRMMMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(136))
	a := bmat.RandomDense(rng, 16, 12, 2)
	b := bmat.RandomDense(rng, 12, 20, 2)
	got, err := MultiplyCRMM(a, b, testEnv(t, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("CRMM product wrong")
	}
}

// TestCRMMCubesCostMoreThanCuboids verifies §7's point about Marlin: cube
// logical blocks cannot reach the cuboid optimum on skewed shapes.
func TestCRMMCubesCostMoreThanCuboids(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	// Common large dimension: cuboids flatten to (1,1,R); cubes cannot.
	a := bmat.RandomDense(rng, 6, 60, 3)
	b := bmat.RandomDense(rng, 60, 6, 3)
	smallEnv := func() core.Env {
		cfg := cluster.LaptopConfig()
		cfg.Nodes, cfg.TasksPerNode, cfg.LocalWorkers = 2, 2, 4
		cfg.TaskMemBytes = 8 << 10
		cfg.DiskCapacityBytes = 0
		c, err := cluster.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return core.Env{Cluster: c}
	}

	envCube := smallEnv()
	if _, err := MultiplyCRMM(a, b, envCube); err != nil {
		t.Fatal(err)
	}
	crmm := envCube.Cluster.Recorder().CommunicationBytes()

	envCuboid := smallEnv()
	if _, _, err := core.MultiplyAuto(a, b, envCuboid); err != nil {
		t.Fatal(err)
	}
	cuboid := envCuboid.Cluster.Recorder().CommunicationBytes()
	if cuboid >= crmm {
		t.Fatalf("CuboidMM (%d) should beat CRMM (%d) on a skewed shape", cuboid, crmm)
	}
}

func TestCRMMInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(138))
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	_, err := MultiplyCRMM(a, b, testEnv(t, 16))
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}
