package engine

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/plan"
)

// Back-compat suite: every deprecated entry point must produce results
// byte-identical to the consolidated Run — the wrappers are thin delegations,
// and these tests keep them that way.

func bitSame(t *testing.T, got, want *bmat.BlockMatrix) {
	t.Helper()
	g, w := got.ToDense(), want.ToDense()
	gr, gc := g.Dims()
	wr, wc := w.Dims()
	if gr != wr || gc != wc {
		t.Fatalf("shape %dx%d != %dx%d", gr, gc, wr, wc)
	}
	for i := range g.Data {
		if math.Float64bits(g.Data[i]) != math.Float64bits(w.Data[i]) {
			t.Fatalf("element %d differs bitwise: %v != %v", i, g.Data[i], w.Data[i])
		}
	}
}

func TestDeprecatedMultiplyMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	a := bmat.RandomDense(rng, 20, 24, 4)
	b := bmat.RandomSparse(rng, 24, 16, 4, 0.5)
	old, err := newTestEngine(t, testConfig()).Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := newTestEngine(t, testConfig()).Run(context.Background(),
		plan.Mul(plan.V("a"), plan.V("b")),
		map[string]*bmat.BlockMatrix{"a": a, "b": b})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("Run returned nil report")
	}
	bitSame(t, got, old)
}

func TestDeprecatedMultiplyOptMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	a := bmat.RandomDense(rng, 18, 12, 3)
	b := bmat.RandomDense(rng, 12, 18, 3)
	for _, m := range []Method{MethodAuto, MethodBMM, MethodCPMM, MethodRMM} {
		old, oldRep, err := newTestEngine(t, testConfig()).MultiplyOpt(a, b, MulOptions{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		got, rep, err := newTestEngine(t, testConfig()).Run(context.Background(),
			plan.Mul(plan.V("a"), plan.V("b")),
			map[string]*bmat.BlockMatrix{"a": a, "b": b},
			WithMethod(m))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		bitSame(t, got, old)
		if rep.Method != oldRep.Method {
			t.Fatalf("%v: report method %v != %v", m, rep.Method, oldRep.Method)
		}
	}
}

func TestDeprecatedMultiplyCtxMatchesRunWithParams(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	params := core.Params{P: 2, Q: 2, R: 2}
	old, oldRep, err := newTestEngine(t, testConfig()).MultiplyCtx(context.Background(), a, b,
		MulOptions{Method: MethodCuboid, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := newTestEngine(t, testConfig()).Run(context.Background(),
		plan.Mul(plan.V("a"), plan.V("b")),
		map[string]*bmat.BlockMatrix{"a": a, "b": b},
		WithParams(params))
	if err != nil {
		t.Fatal(err)
	}
	bitSame(t, got, old)
	if rep.Params != oldRep.Params {
		t.Fatalf("report params %+v != %+v", rep.Params, oldRep.Params)
	}
}

// TestRunMatchesComposedDeprecatedOps: a multi-operator expression through
// Run equals the same pipeline hand-composed from the deprecated per-op
// calls — same worker arithmetic, same order, byte-identical.
func TestRunMatchesComposedDeprecatedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	v := bmat.RandomDense(rng, 12, 10, 4)
	w := bmat.RandomDense(rng, 12, 4, 4)
	h := bmat.RandomDense(rng, 4, 10, 4)
	const eps = 1e-9

	// Hand-composed H update with the deprecated API.
	e1 := newTestEngine(t, testConfig())
	wt, err := e1.Transpose(w)
	if err != nil {
		t.Fatal(err)
	}
	num, err := e1.Multiply(wt, v)
	if err != nil {
		t.Fatal(err)
	}
	wtw, err := e1.Multiply(wt, w)
	if err != nil {
		t.Fatal(err)
	}
	den, err := e1.Multiply(wtw, h)
	if err != nil {
		t.Fatal(err)
	}
	quot, err := e1.DivElem(num, den, eps)
	if err != nil {
		t.Fatal(err)
	}
	old, err := e1.Hadamard(h, quot)
	if err != nil {
		t.Fatal(err)
	}

	// The same update as one expression through Run.
	wtE := plan.T(plan.V("w"))
	update := plan.EMul(plan.V("h"),
		plan.EDiv(plan.Mul(wtE, plan.V("v")),
			plan.Mul(plan.Mul(wtE, plan.V("w")), plan.V("h")), eps))
	got, rep, err := newTestEngine(t, testConfig()).Run(context.Background(), update,
		map[string]*bmat.BlockMatrix{"v": v, "w": w, "h": h})
	if err != nil {
		t.Fatal(err)
	}
	bitSame(t, got, old)
	if rep.Elapsed <= 0 {
		t.Fatal("report elapsed not populated")
	}
}

// TestDeprecatedOpWrappersMatchCtx: the ctx-less element-wise wrappers are
// byte-identical to their context-first primaries.
func TestDeprecatedOpWrappersMatchCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(154))
	a := bmat.RandomDense(rng, 10, 12, 4)
	b := bmat.RandomDense(rng, 10, 12, 4)
	e := newTestEngine(t, testConfig())
	ctx := context.Background()

	type pair struct {
		name string
		old  func() (*bmat.BlockMatrix, error)
		new  func() (*bmat.BlockMatrix, error)
	}
	for _, p := range []pair{
		{"Add", func() (*bmat.BlockMatrix, error) { return e.Add(a, b) },
			func() (*bmat.BlockMatrix, error) { return e.AddCtx(ctx, a, b) }},
		{"Sub", func() (*bmat.BlockMatrix, error) { return e.Sub(a, b) },
			func() (*bmat.BlockMatrix, error) { return e.SubCtx(ctx, a, b) }},
		{"Hadamard", func() (*bmat.BlockMatrix, error) { return e.Hadamard(a, b) },
			func() (*bmat.BlockMatrix, error) { return e.HadamardCtx(ctx, a, b) }},
		{"DivElem", func() (*bmat.BlockMatrix, error) { return e.DivElem(a, b, 1e-9) },
			func() (*bmat.BlockMatrix, error) { return e.DivElemCtx(ctx, a, b, 1e-9) }},
		{"Scale", func() (*bmat.BlockMatrix, error) { return e.Scale(2.5, a) },
			func() (*bmat.BlockMatrix, error) { return e.ScaleCtx(ctx, 2.5, a) }},
		{"Transpose", func() (*bmat.BlockMatrix, error) { return e.Transpose(a) },
			func() (*bmat.BlockMatrix, error) { return e.TransposeCtx(ctx, a) }},
	} {
		old, err := p.old()
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		got, err := p.new()
		if err != nil {
			t.Fatalf("%sCtx: %v", p.name, err)
		}
		bitSame(t, got, old)
	}
}

func TestRunErrors(t *testing.T) {
	e := newTestEngine(t, testConfig())
	if _, _, err := e.Run(context.Background(), nil, nil); err == nil {
		t.Fatal("nil expression accepted")
	}
	_, _, err := e.Run(context.Background(), plan.Mul(plan.V("a"), plan.V("b")), nil)
	if err == nil {
		t.Fatal("missing bindings accepted")
	}
	rng := rand.New(rand.NewSource(155))
	a := bmat.RandomDense(rng, 4, 4, 2)
	// Multi-op expression with one input missing must error, not panic.
	_, _, err = e.Run(context.Background(), plan.Plus(plan.V("a"), plan.V("missing")),
		map[string]*bmat.BlockMatrix{"a": a})
	if err == nil {
		t.Fatal("missing binding in multi-op expression accepted")
	}
}

// TestRunCancelledContext: a cancelled context aborts a multi-op pipeline.
func TestRunCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(156))
	a := bmat.RandomDense(rng, 8, 8, 2)
	e := newTestEngine(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.Run(ctx, plan.Plus(plan.V("a"), plan.V("a")),
		map[string]*bmat.BlockMatrix{"a": a})
	if err == nil {
		t.Fatal("cancelled context accepted")
	}
}
