package engine

import (
	"fmt"
	"strings"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/metrics"
)

// Explanation describes what a multiplication WOULD do, without running it:
// the strategy, the chosen parameters, and the Table 2 predictions for
// communication and per-task memory — the engine's EXPLAIN.
type Explanation struct {
	// Method is the strategy that would run.
	Method Method
	// Params is the (P,Q,R) partitioning (zero for RMM).
	Params core.Params
	// Tasks is the task count of the local multiplication step.
	Tasks int
	// RepartitionBytes and AggregationBytes are the Eq.(4) predictions.
	RepartitionBytes, AggregationBytes int64
	// MemPerTaskBytes is the Eq.(3) prediction.
	MemPerTaskBytes int64
	// TaskMemBytes is the budget θt it is checked against.
	TaskMemBytes int64
	// Subcuboid carries the GPU plan for the average cuboid when the
	// engine would use the device; zero otherwise.
	Subcuboid core.SubParams
	// GPUIterations is the subcuboids one task would stream.
	GPUIterations int
}

// Explain computes the plan for A×B under the given options without
// executing anything.
func (e *Engine) Explain(a, b *bmat.BlockMatrix, opts MulOptions) (*Explanation, error) {
	s := core.ShapeOf(a, b)
	method := opts.Method
	var params core.Params
	switch method {
	case MethodAuto:
		p, err := core.Optimize(s, e.cfg.Cluster.TaskMemBytes, e.cfg.Cluster.Slots())
		if err != nil {
			return nil, err
		}
		params = p
	case MethodBMM:
		params = s.BMMParams()
	case MethodCPMM:
		params = s.CPMMParams()
	case MethodCuboid:
		params = opts.Params
	case MethodRMM:
		tasks := opts.RMMTasks
		if tasks == 0 {
			tasks = s.I * s.J
		}
		return &Explanation{
			Method:           MethodRMM,
			Tasks:            tasks,
			RepartitionBytes: int64(s.J)*s.ABytes + int64(s.I)*s.BBytes,
			AggregationBytes: int64(s.K) * s.CBytes,
			MemPerTaskBytes:  0, // voxel-streamed
			TaskMemBytes:     e.cfg.Cluster.TaskMemBytes,
		}, nil
	default:
		return nil, fmt.Errorf("engine: Explain: %w: %d", ErrUnknownMethod, int(method))
	}

	ex := &Explanation{
		Method:           method,
		Params:           params,
		Tasks:            params.Tasks(),
		RepartitionBytes: int64(float64(params.Q)*float64(s.ABytes) + float64(params.P)*float64(s.BBytes)),
		MemPerTaskBytes:  int64(s.MemBytes(params)),
		TaskMemBytes:     e.cfg.Cluster.TaskMemBytes,
	}
	if params.R > 1 {
		ex.AggregationBytes = int64(params.R) * s.CBytes
	}

	useGPU := e.cfg.UseGPU
	if opts.UseGPU != nil {
		useGPU = *opts.UseGPU
	}
	if useGPU {
		cs := core.CuboidShape{
			IB:     (s.I + params.P - 1) / params.P,
			JB:     (s.J + params.Q - 1) / params.Q,
			KB:     (s.K + params.R - 1) / params.R,
			ABytes: s.ABytes / int64(params.P*params.R),
			BBytes: s.BBytes / int64(params.R*params.Q),
			CBytes: s.CBytes / int64(params.P*params.Q),
		}
		if sub, err := core.OptimizeSub(cs, e.device.Spec().MemPerTaskBytes); err == nil {
			ex.Subcuboid = sub
			ex.GPUIterations = sub.Subcuboids()
		}
	}
	return ex, nil
}

// String renders the explanation like a query plan.
func (x *Explanation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "multiply via %v", x.Method)
	if x.Params != (core.Params{}) {
		fmt.Fprintf(&sb, " %v", x.Params)
	}
	fmt.Fprintf(&sb, "\n  tasks:        %d\n", x.Tasks)
	fmt.Fprintf(&sb, "  repartition:  %s (Q·|A| + P·|B|)\n", metrics.FormatBytes(x.RepartitionBytes))
	fmt.Fprintf(&sb, "  aggregation:  %s (R·|C|)\n", metrics.FormatBytes(x.AggregationBytes))
	fmt.Fprintf(&sb, "  mem/task:     %s of θt=%s\n",
		metrics.FormatBytes(x.MemPerTaskBytes), metrics.FormatBytes(x.TaskMemBytes))
	if x.GPUIterations > 0 {
		fmt.Fprintf(&sb, "  gpu plan:     %v subcuboids, %d iterations/task\n", x.Subcuboid, x.GPUIterations)
	}
	return sb.String()
}
