package engine

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/obs"
)

// traceIndex groups a trace's spans by name and indexes them by ID.
func traceIndex(tr *obs.Trace) (byID map[obs.SpanID]obs.SpanData, byName map[string][]obs.SpanData) {
	byID = make(map[obs.SpanID]obs.SpanData)
	byName = make(map[string][]obs.SpanData)
	for _, s := range tr.Spans {
		byID[s.ID] = s
		byName[s.Name] = append(byName[s.Name], s)
	}
	return byID, byName
}

// TestEngineTraceSpanTree checks a traced local multiply's span tree: one
// engine root, an optimizer span, the three CuboidMM phases, one task span
// per cuboid, and no orphan parents — and that the trace renders as valid
// Chrome trace_event JSON.
func TestEngineTraceSpanTree(t *testing.T) {
	cfg := testConfig()
	cfg.Tracer = obs.NewTracer()
	e := newTestEngine(t, cfg)

	rng := rand.New(rand.NewSource(90))
	a := bmat.RandomDense(rng, 24, 24, 4)
	b := bmat.RandomDense(rng, 24, 24, 4)
	params := core.Params{P: 2, Q: 2, R: 2}
	_, report, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodCuboid, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if report.Trace == nil {
		t.Fatal("Report.Trace nil despite configured tracer")
	}
	byID, byName := traceIndex(report.Trace)

	if len(byName["engine.multiply"]) != 1 {
		t.Fatalf("%d engine.multiply roots, want 1", len(byName["engine.multiply"]))
	}
	for _, phase := range []string{"repartition", "local-multiply", "aggregate"} {
		if len(byName[phase]) != 1 {
			t.Errorf("%d %q spans, want 1", len(byName[phase]), phase)
		}
	}
	if n := len(byName["task.multiply"]); n != params.Tasks() {
		t.Errorf("%d task.multiply spans, want %d", n, params.Tasks())
	}
	seen := map[[3]int]bool{}
	for _, s := range byName["task.multiply"] {
		p, q, r, ok := s.Cuboid()
		if !ok {
			t.Errorf("task span %d has no cuboid coordinate", s.ID)
			continue
		}
		if seen[[3]int{p, q, r}] {
			t.Errorf("cuboid (%d,%d,%d) committed twice", p, q, r)
		}
		seen[[3]int{p, q, r}] = true
	}
	for _, s := range report.Trace.Spans {
		if s.Parent == 0 {
			continue
		}
		if _, ok := byID[s.Parent]; !ok {
			t.Errorf("span %d (%s) references missing parent %d", s.ID, s.Name, s.Parent)
		}
	}

	var buf bytes.Buffer
	if err := report.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("Chrome trace is not a JSON array: %v", err)
	}
	if len(events) < len(report.Trace.Spans) {
		t.Errorf("%d trace events for %d spans", len(events), len(report.Trace.Spans))
	}
}

// TestEngineTraceAutoHasOptimizeSpan checks MethodAuto records the optimizer
// choice with its resulting parameters.
func TestEngineTraceAutoHasOptimizeSpan(t *testing.T) {
	cfg := testConfig()
	cfg.Tracer = obs.NewTracer()
	e := newTestEngine(t, cfg)
	rng := rand.New(rand.NewSource(91))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	_, report, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodAuto})
	if err != nil {
		t.Fatal(err)
	}
	_, byName := traceIndex(report.Trace)
	if len(byName["optimize"]) == 0 {
		t.Fatal("no optimize span under MethodAuto")
	}
	found := false
	for _, at := range byName["optimize"][0].Attrs {
		if at.Key == "params" {
			found = true
		}
	}
	if !found {
		t.Error("optimize span missing params attr")
	}
}

// TestEngineTraceGPUGraft checks a GPU multiply grafts device-timeline spans
// (kernel launches and copies on their stream lanes) under the root.
func TestEngineTraceGPUGraft(t *testing.T) {
	cfg := testConfig()
	cfg.UseGPU = true
	cfg.Tracer = obs.NewTracer()
	e := newTestEngine(t, cfg)
	rng := rand.New(rand.NewSource(92))
	a := bmat.RandomDense(rng, 24, 24, 4)
	b := bmat.RandomDense(rng, 24, 24, 4)
	_, report, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodCuboid, Params: core.Params{P: 2, Q: 2, R: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var kernels, copies int
	for _, s := range report.Trace.Spans {
		if s.Kind != obs.KindDevice {
			continue
		}
		if !strings.HasPrefix(s.Worker, "gpu t") {
			t.Errorf("device span %d has lane %q", s.ID, s.Worker)
		}
		if s.End.Before(s.Start) {
			t.Errorf("device span %d ends before it starts", s.ID)
		}
		switch {
		case strings.HasPrefix(s.Name, "kernel"):
			kernels++
		case strings.HasPrefix(s.Name, "h2d"), strings.HasPrefix(s.Name, "d2h"):
			copies++
			if s.Bytes <= 0 {
				t.Errorf("copy span %q carries no bytes", s.Name)
			}
		}
	}
	if kernels == 0 || copies == 0 {
		t.Fatalf("GPU graft recorded %d kernels, %d copies; want both > 0", kernels, copies)
	}
}

// TestEngineTraceUnderFaults runs a traced multiply under crash, straggler
// and fetch-failure injection with speculation on: the output must stay
// byte-identical to an untraced failure-free run, and each cuboid must still
// commit exactly one task span.
func TestEngineTraceUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	a := bmat.RandomDense(rng, 24, 20, 4)
	b := bmat.RandomDense(rng, 20, 16, 4)
	params := core.Params{P: 2, Q: 2, R: 2}

	base := newTestEngine(t, chaosConfig(cluster.Faults{}))
	want, _, err := base.MultiplyOpt(a, b, MulOptions{Method: MethodCuboid, Params: params})
	if err != nil {
		t.Fatal(err)
	}

	cfg := chaosConfig(cluster.Faults{
		Seed: 17, CrashRate: 0.3,
		StragglerRate: 0.3, StragglerDelay: 2 * time.Millisecond,
		FetchFailRate: 0.3,
	})
	cfg.Tracer = obs.NewTracer()
	e := newTestEngine(t, cfg)
	got, report, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodCuboid, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, got), fingerprint(t, want)) {
		t.Fatal("traced faulted output differs from untraced failure-free bytes")
	}
	if report.Elastic.FaultsInjected == 0 {
		t.Fatal("no faults injected; test exercises nothing")
	}

	_, byName := traceIndex(report.Trace)
	commits := map[[3]int]int{}
	for _, s := range byName["task.multiply"] {
		p, q, r, _ := s.Cuboid()
		commits[[3]int{p, q, r}]++
	}
	for p := 0; p < params.P; p++ {
		for q := 0; q < params.Q; q++ {
			for r := 0; r < params.R; r++ {
				if n := commits[[3]int{p, q, r}]; n != 1 {
					t.Errorf("cuboid (%d,%d,%d): %d committed task spans under speculation, want 1", p, q, r, n)
				}
			}
		}
	}
	if report.Elastic.RecomputedPartials > 0 && len(byName["task.recompute"]) == 0 {
		t.Error("lineage recomputations happened but produced no task.recompute spans")
	}
}

// TestEngineNoTracerNoTrace pins the off state: no tracer, nil Report.Trace.
func TestEngineNoTracerNoTrace(t *testing.T) {
	e := newTestEngine(t, testConfig())
	rng := rand.New(rand.NewSource(94))
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	_, report, err := e.MultiplyOpt(a, b, MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Trace != nil {
		t.Fatal("Report.Trace non-nil without a tracer")
	}
}

// TestEngineTraceRMM checks the RMM path records its three phases and task
// spans too.
func TestEngineTraceRMM(t *testing.T) {
	cfg := testConfig()
	cfg.Tracer = obs.NewTracer()
	e := newTestEngine(t, cfg)
	rng := rand.New(rand.NewSource(95))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	_, report, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodRMM})
	if err != nil {
		t.Fatal(err)
	}
	_, byName := traceIndex(report.Trace)
	for _, phase := range []string{"repartition", "local-multiply", "aggregate"} {
		if len(byName[phase]) != 1 {
			t.Errorf("%d %q spans under RMM, want 1", len(byName[phase]), phase)
		}
	}
	if len(byName["task.multiply"]) == 0 {
		t.Error("no RMM task spans")
	}
}
