// Package engine implements the DistME engine of the paper's §5: block
// matrices as the distributed data representation, operator execution
// (multiply, transpose, element-wise) on the cluster substrate, strategy
// selection among BMM / CPMM / RMM / CuboidMM, seamless CPU/GPU local
// multiplication, and the matrix-dependency layout tracking that iterative
// queries like GNMF exploit.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/gpu"
	"distme/internal/metrics"
	"distme/internal/obs"
)

// ErrEngineClosed reports a call on an engine after Close.
var ErrEngineClosed = errors.New("engine: engine is closed")

// ErrUnknownMethod reports a MulOptions.Method outside the defined set.
var ErrUnknownMethod = errors.New("engine: unknown multiplication method")

// Method selects the distributed multiplication strategy.
type Method int

const (
	// MethodAuto runs the Eq.(2) optimizer and CuboidMM — DistME's default.
	MethodAuto Method = iota
	// MethodBMM forces Broadcast Matrix Multiplication.
	MethodBMM
	// MethodCPMM forces Cross-Product Matrix Multiplication.
	MethodCPMM
	// MethodRMM forces Replication-based Matrix Multiplication.
	MethodRMM
	// MethodCuboid forces CuboidMM with explicitly given parameters.
	MethodCuboid
)

// String names the method as the paper does.
func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "CuboidMM(auto)"
	case MethodBMM:
		return "BMM"
	case MethodCPMM:
		return "CPMM"
	case MethodRMM:
		return "RMM"
	case MethodCuboid:
		return "CuboidMM"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Config describes an engine instance.
type Config struct {
	// Cluster is the hardware envelope tasks run against.
	Cluster cluster.Config
	// UseGPU enables the §4 GPU acceleration for local multiplication.
	UseGPU bool
	// GPUSpec overrides the device model; the zero value derives a spec
	// from the cluster config (θg, PCI-E and GPU flops split across Tc).
	GPUSpec gpu.Spec
	// TrackLayouts enables matrix-dependency reuse: operands already
	// partitioned as the chosen method requires skip their base
	// repartition copy (the DMac optimization, which DistME's GNMF plan
	// shares).
	TrackLayouts bool
	// DefaultMethod is used by Multiply; MethodAuto unless set.
	DefaultMethod Method
	// RMMTasks overrides RMM's task count (0 → I·J, the paper's setting).
	RMMTasks int
	// BalanceBySparsity schedules cuboids longest-estimated-work-first,
	// the §8 load-balancing extension for skewed sparse inputs.
	BalanceBySparsity bool
	// Tracer, when set, records an end-to-end span tree for every
	// multiplication — the multiply root, optimizer choice, repartition,
	// one task span per cuboid, aggregation, and (with the GPU enabled)
	// the device's stream timeline grafted in. Each Report then carries
	// that multiplication's spans in Report.Trace. Nil disables tracing
	// with zero overhead.
	Tracer *obs.Tracer
}

// Engine is a DistME instance bound to a (simulated) cluster.
//
// Ownership: the engine owns its cluster, GPU device and layout table. A
// caller that is done with an engine should Close it; a caller that is done
// with a particular matrix (but not the engine) should ReleaseLayout the
// matrix so the layout table does not pin it for the engine's lifetime.
// The table is additionally bounded at maxTrackedLayouts entries — beyond
// that the oldest tags are evicted (losing only a repartition-reuse
// opportunity, never correctness).
type Engine struct {
	cfg     Config
	cluster *cluster.Cluster
	device  *gpu.Device

	mu          sync.Mutex
	closed      bool
	layouts     map[*bmat.BlockMatrix]layoutTag
	layoutOrder []*bmat.BlockMatrix // insertion order, for bounded eviction

	// deviceTraceArmed marks that the engine itself enabled the device's
	// event trace for span grafting, so it may reset it per multiply
	// without clobbering a caller-enabled trace (see trace.go).
	deviceTraceArmed bool
}

// maxTrackedLayouts bounds the layout table. Iterative workloads (GNMF)
// track a handful of long-lived factors; anything past this bound is churn
// from single-use intermediates and safe to forget.
const maxTrackedLayouts = 4096

// layoutTag records how a matrix is currently partitioned across tasks.
type layoutTag struct {
	kind string // "row", "col", or "grid"
	p, r int    // grid extents when kind == "grid"
}

// New creates an engine. The GPU device is instantiated even when UseGPU is
// false so callers can toggle per-multiply.
func New(cfg Config) (*Engine, error) {
	cl, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	spec := cfg.GPUSpec
	if spec == (gpu.Spec{}) {
		// Each task's MPS slice of the node's devices: with G devices and
		// Tc tasks, a task sees G/Tc of the aggregate memory, bus and cores
		// (the multi-GPU extension; G = 1 reproduces the paper's testbed).
		g := float64(cfg.Cluster.GPUs())
		spec = gpu.Spec{
			MemPerTaskBytes: cfg.Cluster.GPUMemPerTaskBytes * int64(cfg.Cluster.GPUs()),
			PCIEBandwidth:   g * cfg.Cluster.PCIEBandwidth / float64(cfg.Cluster.TasksPerNode),
			Flops:           g * cfg.Cluster.GPUFlops / float64(cfg.Cluster.TasksPerNode),
			MaxStreams:      32,
		}
	}
	return &Engine{
		cfg:     cfg,
		cluster: cl,
		device:  gpu.NewDevice(spec),
		layouts: make(map[*bmat.BlockMatrix]layoutTag),
	}, nil
}

// Cluster exposes the underlying cluster (budgets, recorder).
func (e *Engine) Cluster() *cluster.Cluster { return e.cluster }

// Device exposes the simulated GPU (stats, utilization).
func (e *Engine) Device() *gpu.Device { return e.device }

// Recorder exposes the cumulative metrics recorder.
func (e *Engine) Recorder() *metrics.Recorder { return e.cluster.Recorder() }

// MulOptions tunes one multiplication.
type MulOptions struct {
	// Method selects the strategy; MethodAuto by default.
	Method Method
	// Params is required with MethodCuboid and ignored otherwise.
	Params core.Params
	// RMMTasks overrides the engine's RMM task count for this call.
	RMMTasks int
	// UseGPU overrides the engine default when non-nil.
	UseGPU *bool
}

// Report describes what one multiplication did.
type Report struct {
	// Method is the strategy that ran.
	Method Method
	// Params is the (P,Q,R) used (zero for RMM, which is voxel-hashed).
	Params core.Params
	// Elapsed is the wall-clock duration of the whole multiplication.
	Elapsed time.Duration
	// Comm is the traffic of this multiplication only.
	Comm metrics.Snapshot
	// GPU holds device stats accumulated during this multiplication.
	GPU gpu.Stats
	// Elastic counts the fault-tolerance work of this multiplication only:
	// task retries, speculative copies launched/won, shuffle-fetch retries
	// and lineage recomputations.
	Elastic metrics.ElasticStats
	// Trace holds this multiplication's completed spans (nil unless the
	// engine was configured with a Tracer). Trace.WriteChromeTrace renders
	// it for chrome://tracing / Perfetto.
	Trace *obs.Trace
}

// Multiply computes A×B with the engine's default method.
//
// Deprecated: Use [Engine.Run] with a plan.Mul expression.
func (e *Engine) Multiply(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	c, _, err := e.MultiplyOpt(a, b, MulOptions{Method: e.cfg.DefaultMethod})
	return c, err
}

// MultiplyOpt computes A×B with explicit options and returns the execution
// report alongside the product.
//
// Deprecated: Use [Engine.Run] with WithMulOptions.
func (e *Engine) MultiplyOpt(a, b *bmat.BlockMatrix, opts MulOptions) (*bmat.BlockMatrix, *Report, error) {
	return e.MultiplyCtx(context.Background(), a, b, opts)
}

// MultiplyCtx is MultiplyOpt under a context: cancelling ctx aborts the
// multiplication promptly — including mid-backoff between task retry
// attempts — and returns an error matching errors.Is(err, ErrCancelled)
// that wraps ctx.Err(). A nil ctx behaves like context.Background().
//
// Deprecated: Use [Engine.Run] with WithMulOptions.
func (e *Engine) MultiplyCtx(ctx context.Context, a, b *bmat.BlockMatrix, opts MulOptions) (*bmat.BlockMatrix, *Report, error) {
	return e.mulTraced(ctx, a, b, opts)
}

// mulTraced runs one multiplication under its own engine.multiply root span
// and extracts exactly that multiplication's spans into the report. It is
// the single-multiply fast path shared by Run and the deprecated Multiply
// family.
func (e *Engine) mulTraced(ctx context.Context, a, b *bmat.BlockMatrix, opts MulOptions) (*bmat.BlockMatrix, *Report, error) {
	tr := e.cfg.Tracer
	if tr == nil {
		return e.multiplyCtx(ctx, a, b, opts, obs.Span{})
	}
	// Mark the completed-span buffer so the report extracts exactly this
	// multiplication's spans, even on a shared long-lived tracer.
	mark := tr.Len()
	root := tr.Start(0, "engine.multiply", obs.KindDriver)
	c, report, err := e.multiplyCtx(ctx, a, b, opts, root)
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.End()
	if report != nil {
		snap := tr.SnapshotSince(mark)
		report.Trace = &snap
	}
	return c, report, err
}

// multiplyCtx is the body of MultiplyCtx; root is the multiplication's root
// span (inert when tracing is off).
func (e *Engine) multiplyCtx(ctx context.Context, a, b *bmat.BlockMatrix, opts MulOptions, root obs.Span) (*bmat.BlockMatrix, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := e.checkOpen(); err != nil {
		return nil, nil, err
	}
	useGPU := e.cfg.UseGPU
	if opts.UseGPU != nil {
		useGPU = *opts.UseGPU
	}
	rec := e.Recorder()
	before := rec.Snapshot()
	gpuBefore := e.device.Stats()
	start := time.Now()

	env := core.Env{
		Cluster:           e.cluster,
		Recorder:          rec,
		BalanceBySparsity: e.cfg.BalanceBySparsity,
		Tracer:            e.cfg.Tracer,
		TraceParent:       root.ID(),
	}
	if useGPU {
		env.Multiplier = &gpu.Multiplier{Device: e.device, Recorder: rec}
		env.VoxelMultiplier = &gpu.BlockLevel{Device: e.device, Recorder: rec}
	}
	// With the GPU on, capture the device's virtual-clock event trace so the
	// stream timeline can be grafted under this multiplication's spans.
	graftGPU := root.Active() && useGPU
	if graftGPU {
		e.armDeviceTrace()
	}

	method := opts.Method
	s := core.ShapeOf(a, b)
	var params core.Params
	var err error
	switch method {
	case MethodAuto:
		osp := e.cfg.Tracer.Start(root.ID(), "optimize", obs.KindDriver)
		params, err = core.Optimize(s, e.cfg.Cluster.TaskMemBytes, e.cfg.Cluster.Slots())
		finishOptimizeSpan(osp, params, err)
		if err != nil {
			return nil, nil, err
		}
	case MethodBMM:
		params = s.BMMParams()
	case MethodCPMM:
		params = s.CPMMParams()
	case MethodCuboid:
		params = opts.Params
	case MethodRMM:
		// handled below; params stay zero
	default:
		return nil, nil, fmt.Errorf("%w: %d", ErrUnknownMethod, int(method))
	}

	var c *bmat.BlockMatrix
	if method == MethodRMM {
		tasks := opts.RMMTasks
		if tasks == 0 {
			tasks = e.cfg.RMMTasks
		}
		c, err = core.MultiplyRMMCtx(ctx, a, b, tasks, env)
	} else {
		if e.cfg.TrackLayouts {
			env.AColocated, env.BColocated = e.colocation(a, b, params)
		}
		c, err = core.MultiplyCuboidCtx(ctx, a, b, params, env)
		// Eq.(3) sizes cuboids by averages; ragged grids and sparsity skew
		// can make one cuboid exceed θt anyway. Under MethodAuto the engine
		// stays elastic: re-optimize with a finer minimum partitioning and
		// retry until the actual cuboids fit or no partitioning exists.
		// Injected O.O.M. faults never reach here — the cluster retries
		// those per attempt; only a genuine θt violation refines params.
		if method == MethodAuto {
			for retry := 0; err != nil && errors.Is(err, cluster.ErrOutOfMemory) && retry < 8; retry++ {
				if cerr := ctx.Err(); cerr != nil {
					return nil, nil, fmt.Errorf("%w: %w", cluster.ErrCancelled, cerr)
				}
				minTasks := params.Tasks() * 2
				osp := e.cfg.Tracer.Start(root.ID(), "optimize", obs.KindDriver)
				osp.SetAttr("refine", "true")
				params, err = core.Optimize(s, e.cfg.Cluster.TaskMemBytes, minTasks)
				finishOptimizeSpan(osp, params, err)
				if err != nil {
					break
				}
				if e.cfg.TrackLayouts {
					env.AColocated, env.BColocated = e.colocation(a, b, params)
				}
				c, err = core.MultiplyCuboidCtx(ctx, a, b, params, env)
			}
		}
	}
	if err != nil {
		return nil, nil, err
	}

	if graftGPU {
		e.graftDeviceTrace(root.ID(), start, time.Now())
	}
	if root.Active() {
		root.SetAttr("method", method.String())
		root.SetAttr("params", fmt.Sprintf("(%d,%d,%d)", params.P, params.Q, params.R))
	}

	if e.cfg.TrackLayouts {
		e.recordLayouts(a, b, c, method, params)
	}

	comm := rec.Snapshot().Sub(before)
	report := &Report{
		Method:  method,
		Params:  params,
		Elapsed: time.Since(start),
		Comm:    comm,
		GPU:     subStats(e.device.Stats(), gpuBefore),
		Elastic: comm.Elastic,
	}
	return c, report, nil
}

// finishOptimizeSpan annotates one optimizer-choice span with its outcome.
func finishOptimizeSpan(osp obs.Span, params core.Params, err error) {
	if osp.Active() {
		if err != nil {
			osp.SetAttr("error", err.Error())
		} else {
			osp.SetAttr("params", fmt.Sprintf("(%d,%d,%d)", params.P, params.Q, params.R))
		}
	}
	osp.End()
}

// checkOpen fails calls on a closed engine.
func (e *Engine) checkOpen() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	return nil
}

// Close releases the engine's resources: the layout table is dropped (so
// tracked matrices become collectable) and further operations fail with
// ErrEngineClosed. Close is idempotent. Matrices produced by the engine
// remain valid — they are plain block matrices with no reference back to
// the engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	e.layouts = nil
	e.layoutOrder = nil
	return nil
}

// ReleaseLayout forgets a matrix's tracked layout. Call it when a matrix
// goes out of use but the engine lives on; otherwise the layout table would
// pin the matrix until Close. Releasing a matrix that was never tracked is
// a no-op. The only cost of releasing early is that a future multiply
// involving the matrix repeats its base repartition copy.
func (e *Engine) ReleaseLayout(m *bmat.BlockMatrix) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.layouts, m)
}

func subStats(a, b gpu.Stats) gpu.Stats {
	return gpu.Stats{
		H2DBytes:     a.H2DBytes - b.H2DBytes,
		D2HBytes:     a.D2HBytes - b.D2HBytes,
		KernelBusy:   a.KernelBusy - b.KernelBusy,
		Makespan:     a.Makespan - b.Makespan,
		Kernels:      a.Kernels - b.Kernels,
		Iterations:   a.Iterations - b.Iterations,
		MemHighWater: a.MemHighWater, // high-water is monotone; keep latest
	}
}

// requiredLayouts returns the layouts a cuboid multiplication imposes on its
// operands: A is grid-partitioned (P,R) over (i,k), B is (R,Q) over (k,j).
// The classical corner cases degenerate to row/column partitioning.
func requiredLayouts(params core.Params) (la, lb layoutTag) {
	la = layoutTag{kind: "grid", p: params.P, r: params.R}
	lb = layoutTag{kind: "grid", p: params.R, r: params.Q}
	if params.Q == 1 && params.R == 1 {
		la = layoutTag{kind: "row", p: params.P}
	}
	if params.P == 1 && params.Q == 1 {
		la = layoutTag{kind: "col", p: params.R}
		lb = layoutTag{kind: "row", p: params.R}
	}
	return la, lb
}

// colocation reports whether each operand already sits in the layout the
// parameters require.
func (e *Engine) colocation(a, b *bmat.BlockMatrix, params core.Params) (bool, bool) {
	la, lb := requiredLayouts(params)
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.layouts[a] == la, e.layouts[b] == lb
}

// recordLayouts notes where the operands and output live after a multiply:
// the operands were just repartitioned to the method's layouts; the
// aggregated output is written row-partitioned, the engine's convention.
func (e *Engine) recordLayouts(a, b, c *bmat.BlockMatrix, method Method, params core.Params) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	if method == MethodRMM {
		// Hash-scattered; no reusable layout.
		delete(e.layouts, a)
		delete(e.layouts, b)
	} else {
		la, lb := requiredLayouts(params)
		e.setLayoutLocked(a, la)
		e.setLayoutLocked(b, lb)
	}
	e.setLayoutLocked(c, layoutTag{kind: "row", p: e.cfg.Cluster.Slots()})
}

// setLayoutLocked inserts a layout tag, evicting the oldest tags once the
// table passes maxTrackedLayouts. layoutOrder may hold stale pointers
// (released or already-evicted matrices); they are skipped during eviction
// and the slice is compacted when it grows past twice the live table.
func (e *Engine) setLayoutLocked(m *bmat.BlockMatrix, tag layoutTag) {
	if _, tracked := e.layouts[m]; !tracked {
		e.layoutOrder = append(e.layoutOrder, m)
	}
	e.layouts[m] = tag
	for len(e.layouts) > maxTrackedLayouts && len(e.layoutOrder) > 0 {
		oldest := e.layoutOrder[0]
		e.layoutOrder = e.layoutOrder[1:]
		delete(e.layouts, oldest)
	}
	if len(e.layoutOrder) > 2*maxTrackedLayouts {
		live := e.layoutOrder[:0]
		for _, m := range e.layoutOrder {
			if _, ok := e.layouts[m]; ok {
				live = append(live, m)
			}
		}
		e.layoutOrder = live
	}
}

// SetLayout declares a matrix's current partitioning, as a data source
// (storage loader) would after writing it with a known partitioner.
func (e *Engine) SetLayout(m *bmat.BlockMatrix, kind string, p, r int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.setLayoutLocked(m, layoutTag{kind: kind, p: p, r: r})
}
