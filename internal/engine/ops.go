package engine

import (
	"context"
	"fmt"
	"sync"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/matrix"
)

// The non-multiply operators, context-first. Cancelling ctx aborts the
// cluster run between task attempts with an error wrapping both
// cluster.ErrCancelled and ctx.Err(). The ctx-less names remain as thin
// deprecated wrappers (they also satisfy plan.Evaluator and ml.Ops).

// TransposeCtx computes Aᵀ as a distributed map + re-key over blocks (the
// paper implements this as an RDD transformation). Layout tracking follows:
// a row-partitioned matrix becomes column-partitioned and vice versa.
func (e *Engine) TransposeCtx(ctx context.Context, a *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	out := bmat.New(a.Cols, a.Rows, a.BlockSize)
	var mu sync.Mutex
	err := e.blockTasks(ctx, "transpose", a, func(k bmat.BlockKey, blk matrix.Block) error {
		tr := matrix.Transpose(blk)
		mu.Lock()
		out.SetBlock(k.J, k.I, tr)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if e.cfg.TrackLayouts {
		e.mu.Lock()
		if l, ok := e.layouts[a]; ok {
			switch l.kind {
			case "row":
				e.layouts[out] = layoutTag{kind: "col", p: l.p}
			case "col":
				e.layouts[out] = layoutTag{kind: "row", p: l.p}
			}
		}
		e.mu.Unlock()
	}
	return out, nil
}

// AddCtx computes A+B block-parallel.
func (e *Engine) AddCtx(ctx context.Context, a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return e.zip(ctx, "add", a, b, func(x, y matrix.Block) matrix.Block {
		switch {
		case x == nil:
			return y.Dense()
		case y == nil:
			return x.Dense()
		default:
			return matrix.Add(x, y)
		}
	})
}

// SubCtx computes A−B block-parallel.
func (e *Engine) SubCtx(ctx context.Context, a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return e.zip(ctx, "sub", a, b, func(x, y matrix.Block) matrix.Block {
		switch {
		case x == nil:
			return matrix.Scale(-1, y)
		case y == nil:
			return x.Dense()
		default:
			return matrix.Sub(x, y)
		}
	})
}

// HadamardCtx computes the element-wise product A∘B block-parallel.
func (e *Engine) HadamardCtx(ctx context.Context, a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return e.zip(ctx, "hadamard", a, b, func(x, y matrix.Block) matrix.Block {
		if x == nil || y == nil {
			return nil
		}
		return matrix.Hadamard(x, y)
	})
}

// DivElemCtx computes A⊘B element-wise with an epsilon guard,
// block-parallel. Block positions present in A but missing in B divide by
// the guard.
func (e *Engine) DivElemCtx(ctx context.Context, a, b *bmat.BlockMatrix, eps float64) (*bmat.BlockMatrix, error) {
	return e.zip(ctx, "divelem", a, b, func(x, y matrix.Block) matrix.Block {
		if x == nil {
			return nil
		}
		if y == nil {
			r, c := x.Dims()
			y = matrix.NewDense(r, c)
		}
		return matrix.DivElem(x, y, eps)
	})
}

// ScaleCtx computes s·A block-parallel.
func (e *Engine) ScaleCtx(ctx context.Context, s float64, a *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	out := bmat.New(a.Rows, a.Cols, a.BlockSize)
	var mu sync.Mutex
	err := e.blockTasks(ctx, "scale", a, func(k bmat.BlockKey, blk matrix.Block) error {
		sc := matrix.Scale(s, blk)
		mu.Lock()
		out.SetBlock(k.I, k.J, sc)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Transpose computes Aᵀ.
//
// Deprecated: Use [Engine.TransposeCtx], or fold the op into one
// [Engine.Run] expression.
func (e *Engine) Transpose(a *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return e.TransposeCtx(context.Background(), a)
}

// Add computes A+B.
//
// Deprecated: Use [Engine.AddCtx], or fold the op into one [Engine.Run]
// expression.
func (e *Engine) Add(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return e.AddCtx(context.Background(), a, b)
}

// Sub computes A−B.
//
// Deprecated: Use [Engine.SubCtx], or fold the op into one [Engine.Run]
// expression.
func (e *Engine) Sub(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return e.SubCtx(context.Background(), a, b)
}

// Hadamard computes A∘B.
//
// Deprecated: Use [Engine.HadamardCtx], or fold the op into one
// [Engine.Run] expression.
func (e *Engine) Hadamard(a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return e.HadamardCtx(context.Background(), a, b)
}

// DivElem computes A⊘B with an epsilon guard.
//
// Deprecated: Use [Engine.DivElemCtx], or fold the op into one
// [Engine.Run] expression.
func (e *Engine) DivElem(a, b *bmat.BlockMatrix, eps float64) (*bmat.BlockMatrix, error) {
	return e.DivElemCtx(context.Background(), a, b, eps)
}

// Scale computes s·A.
//
// Deprecated: Use [Engine.ScaleCtx], or fold the op into one [Engine.Run]
// expression.
func (e *Engine) Scale(s float64, a *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
	return e.ScaleCtx(context.Background(), s, a)
}

// blockTasks fans one function out over a matrix's stored blocks as cluster
// tasks, one task per block group, bounded by cluster slots.
func (e *Engine) blockTasks(ctx context.Context, name string, a *bmat.BlockMatrix, f func(bmat.BlockKey, matrix.Block) error) error {
	if err := e.checkOpen(); err != nil {
		return err
	}
	keys := a.Keys()
	slots := e.cfg.Cluster.Slots()
	groups := make([][]bmat.BlockKey, slots)
	for i, k := range keys {
		groups[i%slots] = append(groups[i%slots], k)
	}
	var tasks []cluster.Task
	for g, ks := range groups {
		if len(ks) == 0 {
			continue
		}
		ks := ks
		var mem int64
		for _, k := range ks {
			mem += a.Block(k.I, k.J).SizeBytes()
		}
		tasks = append(tasks, cluster.Task{
			Name:        fmt.Sprintf("%s(%d)", name, g),
			MemEstimate: mem,
			Fn: func() error {
				for _, k := range ks {
					if err := f(k, a.Block(k.I, k.J)); err != nil {
						return err
					}
				}
				return nil
			},
		})
	}
	return e.cluster.RunCtx(ctx, tasks)
}

// zip fans a two-operand block function over the union of block positions.
func (e *Engine) zip(ctx context.Context, name string, a, b *bmat.BlockMatrix, f func(x, y matrix.Block) matrix.Block) (*bmat.BlockMatrix, error) {
	if err := e.checkOpen(); err != nil {
		return nil, err
	}
	if a.Rows != b.Rows || a.Cols != b.Cols || a.BlockSize != b.BlockSize {
		return nil, fmt.Errorf("engine: %s: %w: %dx%d/b=%d vs %dx%d/b=%d",
			name, core.ErrShapeMismatch, a.Rows, a.Cols, a.BlockSize, b.Rows, b.Cols, b.BlockSize)
	}
	seen := make(map[bmat.BlockKey]bool)
	var keys []bmat.BlockKey
	for _, k := range a.Keys() {
		seen[k] = true
		keys = append(keys, k)
	}
	for _, k := range b.Keys() {
		if !seen[k] {
			keys = append(keys, k)
		}
	}

	out := bmat.New(a.Rows, a.Cols, a.BlockSize)
	slots := e.cfg.Cluster.Slots()
	groups := make([][]bmat.BlockKey, slots)
	for i, k := range keys {
		groups[i%slots] = append(groups[i%slots], k)
	}
	var mu sync.Mutex
	var tasks []cluster.Task
	for g, ks := range groups {
		if len(ks) == 0 {
			continue
		}
		ks := ks
		var mem int64
		for _, k := range ks {
			if x := a.Block(k.I, k.J); x != nil {
				mem += x.SizeBytes()
			}
			if y := b.Block(k.I, k.J); y != nil {
				mem += y.SizeBytes()
			}
		}
		tasks = append(tasks, cluster.Task{
			Name:        fmt.Sprintf("%s(%d)", name, g),
			MemEstimate: mem,
			Fn: func() error {
				for _, k := range ks {
					res := f(a.Block(k.I, k.J), b.Block(k.I, k.J))
					if res == nil {
						continue
					}
					mu.Lock()
					out.SetBlock(k.I, k.J, res)
					mu.Unlock()
				}
				return nil
			},
		})
	}
	if err := e.cluster.RunCtx(ctx, tasks); err != nil {
		return nil, err
	}
	return out, nil
}
