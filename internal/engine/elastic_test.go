package engine

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/metrics"
	"distme/internal/storage"
)

func chaosConfig(f cluster.Faults) Config {
	cfg := testConfig()
	cfg.Cluster.TaskRetries = 4
	cfg.Cluster.RetryBackoff = 100 * time.Microsecond
	cfg.Cluster.Speculation = true
	cfg.Cluster.Faults = f
	return cfg
}

func fingerprint(t *testing.T, m *bmat.BlockMatrix) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := storage.Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMultiplyCtxCancelsDuringRetries cancels a multiply whose only path
// forward is waiting out 50ms retry backoffs; it must return within one
// backoff step with an error matching ErrCancelled and ctx.Err().
func TestMultiplyCtxCancelsDuringRetries(t *testing.T) {
	cfg := testConfig()
	cfg.Cluster.TaskRetries = 100
	cfg.Cluster.RetryBackoff = 50 * time.Millisecond
	cfg.Cluster.RetryBackoffCap = 50 * time.Millisecond
	cfg.Cluster.Faults = cluster.Faults{Seed: 1, CrashRate: 1, MaxFaultsPerTask: 100}
	e := newTestEngine(t, cfg)

	rng := rand.New(rand.NewSource(80))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	start := time.Now()
	_, _, err := e.MultiplyCtx(ctx, a, b, MulOptions{Method: MethodCuboid, Params: core.Params{P: 2, Q: 2, R: 2}})
	elapsed := time.Since(start)
	if !errors.Is(err, cluster.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap ctx.Err(), got %v", err)
	}
	if elapsed > 20*time.Millisecond+cfg.Cluster.RetryBackoff {
		t.Fatalf("cancel took %v; must abort within one backoff step of the cancel", elapsed)
	}
}

func TestMultiplyCtxPreCancelled(t *testing.T) {
	e := newTestEngine(t, testConfig())
	rng := rand.New(rand.NewSource(81))
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.MultiplyCtx(ctx, a, b, MulOptions{})
	if !errors.Is(err, cluster.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
}

func TestMultiplyCtxNilContext(t *testing.T) {
	e := newTestEngine(t, testConfig())
	rng := rand.New(rand.NewSource(82))
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	if _, _, err := e.MultiplyCtx(nil, a, b, MulOptions{}); err != nil {
		t.Fatalf("nil ctx should behave like Background, got %v", err)
	}
}

// TestAllMethodsBitIdenticalUnderFaults is the engine-level acceptance
// check: every method, CPU and GPU, produces byte-identical output under
// mixed injected faults.
func TestAllMethodsBitIdenticalUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := bmat.RandomDense(rng, 24, 20, 4)
	b := bmat.RandomDense(rng, 20, 16, 4)
	faults := cluster.Faults{
		Seed: 13, CrashRate: 0.2, OOMRate: 0.1,
		StragglerRate: 0.2, StragglerDelay: 2 * time.Millisecond,
		FetchFailRate: 0.2,
	}
	methods := []MulOptions{
		{Method: MethodAuto},
		{Method: MethodBMM},
		{Method: MethodCPMM},
		{Method: MethodRMM},
		{Method: MethodCuboid, Params: core.Params{P: 2, Q: 2, R: 2}},
	}
	for _, useGPU := range []bool{false, true} {
		for _, opts := range methods {
			base := newTestEngine(t, chaosConfig(cluster.Faults{}))
			base.cfg.UseGPU = useGPU
			want, _, err := base.MultiplyOpt(a, b, opts)
			if err != nil {
				t.Fatalf("%v gpu=%v failure-free: %v", opts.Method, useGPU, err)
			}

			chaos := newTestEngine(t, chaosConfig(faults))
			chaos.cfg.UseGPU = useGPU
			got, report, err := chaos.MultiplyOpt(a, b, opts)
			if err != nil {
				t.Fatalf("%v gpu=%v under faults: %v", opts.Method, useGPU, err)
			}
			if !bytes.Equal(fingerprint(t, got), fingerprint(t, want)) {
				t.Fatalf("%v gpu=%v: faulted output differs from failure-free bytes", opts.Method, useGPU)
			}
			if report.Elastic.FaultsInjected == 0 {
				t.Fatalf("%v gpu=%v: report should count injected faults", opts.Method, useGPU)
			}
		}
	}
}

// TestReportElasticCounters checks Report.Elastic reflects only the work of
// its own multiplication.
func TestReportElasticCounters(t *testing.T) {
	e := newTestEngine(t, chaosConfig(cluster.Faults{Seed: 3, CrashRate: 0.5}))
	rng := rand.New(rand.NewSource(84))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	_, r1, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodCuboid, Params: core.Params{P: 2, Q: 2, R: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elastic.TaskRetries == 0 {
		t.Fatal("crash rate 0.5 should have caused retries")
	}
	// A second multiply with injection disabled on a fresh engine must
	// report zero elastic work of its own.
	quiet := newTestEngine(t, chaosConfig(cluster.Faults{}))
	_, r2, err := quiet.MultiplyOpt(a, b, MulOptions{Method: MethodCuboid, Params: core.Params{P: 2, Q: 2, R: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Elastic != (metrics.ElasticStats{}) {
		t.Fatalf("failure-free multiply reported elastic work: %+v", r2.Elastic)
	}
}

// TestEngineCloseSemantics: Close is idempotent, fails further calls with
// ErrEngineClosed, and ReleaseLayout stays safe before and after.
func TestEngineCloseSemantics(t *testing.T) {
	e := newTestEngine(t, testConfig())
	rng := rand.New(rand.NewSource(85))
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	if _, err := e.Multiply(a, b); err != nil {
		t.Fatal(err)
	}
	e.ReleaseLayout(a) // untracked or tracked, both fine
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	if _, err := e.Multiply(a, b); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed, got %v", err)
	}
	if _, _, err := e.MultiplyCtx(context.Background(), a, b, MulOptions{}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed from MultiplyCtx, got %v", err)
	}
	if _, err := e.Add(a, b); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed from Add, got %v", err)
	}
	if _, err := e.Transpose(a); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("want ErrEngineClosed from Transpose, got %v", err)
	}
	e.ReleaseLayout(a) // no-op after Close
	e.SetLayout(a, "row", 1, 0)
}

// TestLayoutTableBounded drives more matrices through layout tracking than
// the table bound and checks it never exceeds the cap.
func TestLayoutTableBounded(t *testing.T) {
	cfg := testConfig()
	cfg.TrackLayouts = true
	e := newTestEngine(t, cfg)
	for i := 0; i < maxTrackedLayouts+100; i++ {
		m := bmat.New(8, 8, 4)
		e.SetLayout(m, "row", 1, 0)
	}
	e.mu.Lock()
	n := len(e.layouts)
	e.mu.Unlock()
	if n > maxTrackedLayouts {
		t.Fatalf("layout table grew to %d, cap is %d", n, maxTrackedLayouts)
	}
}

// TestReleaseLayoutForgetsColocation: after release, the next multiply must
// not treat the operand as colocated.
func TestReleaseLayoutForgetsColocation(t *testing.T) {
	cfg := testConfig()
	cfg.TrackLayouts = true
	e := newTestEngine(t, cfg)
	rng := rand.New(rand.NewSource(86))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	opts := MulOptions{Method: MethodCuboid, Params: core.Params{P: 2, Q: 1, R: 2}}
	if _, _, err := e.MultiplyOpt(a, b, opts); err != nil {
		t.Fatal(err)
	}
	ca, cb := e.colocation(a, b, opts.Params)
	if !ca || !cb {
		t.Fatal("operands should be colocated after a tracked multiply")
	}
	e.ReleaseLayout(a)
	ca, _ = e.colocation(a, b, opts.Params)
	if ca {
		t.Fatal("released matrix must not report colocation")
	}
}

func TestUnknownMethodSentinel(t *testing.T) {
	e := newTestEngine(t, testConfig())
	rng := rand.New(rand.NewSource(87))
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	_, _, err := e.MultiplyOpt(a, b, MulOptions{Method: Method(99)})
	if !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

func TestZipShapeMismatchSentinel(t *testing.T) {
	e := newTestEngine(t, testConfig())
	rng := rand.New(rand.NewSource(88))
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 12, 8, 4)
	if _, err := e.Add(a, b); !errors.Is(err, core.ErrShapeMismatch) {
		t.Fatalf("want ErrShapeMismatch, got %v", err)
	}
}
