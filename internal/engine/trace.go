package engine

import (
	"fmt"
	"time"

	"distme/internal/obs"
)

// GPU-trace grafting: the simulated device records its stream timeline —
// H2D copies, kernel launches, D2H copies, the rows of the paper's
// Figure 5(b) — on a virtual clock. A traced multiplication grafts those
// events into its span tree as KindDevice spans by affine-scaling the
// virtual window onto the multiplication's wall-clock window, so the
// Chrome trace shows kernels and copies overlapping (or not) inside the
// cuboid that launched them. Virtual timestamps are preserved verbatim in
// span attributes.

// engineGPUTraceLimit bounds the per-multiply device event capture. At
// 3 events per subcuboid iteration this covers tens of thousands of
// iterations; past it the timeline is truncated, never wrong.
const engineGPUTraceLimit = 1 << 15

// armDeviceTrace enables (or, when the engine armed it before, resets) the
// device's event trace for one traced multiplication. A trace the caller
// enabled directly is left untouched — the engine then grafts whatever the
// caller's capture holds rather than clobbering it.
func (e *Engine) armDeviceTrace() {
	e.mu.Lock()
	armed := e.deviceTraceArmed
	e.mu.Unlock()
	if !armed && e.device.TraceLimit() != 0 {
		return // caller owns the device trace
	}
	e.device.EnableTrace(engineGPUTraceLimit)
	e.mu.Lock()
	e.deviceTraceArmed = true
	e.mu.Unlock()
}

// graftDeviceTrace converts the device's recorded events into completed
// spans parented to parent, mapping the virtual window [vmin, vmax] onto
// the wall window [wallStart, wallEnd].
func (e *Engine) graftDeviceTrace(parent obs.SpanID, wallStart, wallEnd time.Time) {
	tr := e.cfg.Tracer
	events := e.device.Trace()
	if tr == nil || len(events) == 0 {
		return
	}
	vmin, vmax := events[0].Start, events[0].End
	for _, ev := range events {
		if ev.Start < vmin {
			vmin = ev.Start
		}
		if ev.End > vmax {
			vmax = ev.End
		}
	}
	window := wallEnd.Sub(wallStart)
	vspan := float64(vmax - vmin)
	at := func(v float64) time.Time {
		if vspan <= 0 {
			return wallStart
		}
		return wallStart.Add(time.Duration(float64(window) * (v - float64(vmin)) / vspan))
	}
	for _, ev := range events {
		lane := fmt.Sprintf("gpu t%d copy", ev.Task)
		if ev.Stream >= 0 {
			lane = fmt.Sprintf("gpu t%d str %d", ev.Task, ev.Stream)
		}
		sd := obs.SpanData{
			Parent: parent,
			Name:   ev.Kind + " " + ev.Label,
			Kind:   obs.KindDevice,
			Worker: lane,
			P:      -1, Q: -1, R: -1,
			Start: at(float64(ev.Start)),
			End:   at(float64(ev.End)),
			Bytes: ev.Bytes,
			Attrs: []obs.Attr{
				{Key: "virtual-start-us", Value: fmt.Sprintf("%.1f", 1e6*float64(ev.Start))},
				{Key: "virtual-end-us", Value: fmt.Sprintf("%.1f", 1e6*float64(ev.End))},
			},
		}
		if ev.Flops > 0 {
			sd.Attrs = append(sd.Attrs, obs.Attr{Key: "flops", Value: fmt.Sprintf("%.0f", ev.Flops)})
		}
		tr.AddCompleted(sd)
	}
}
