package engine

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/matrix"
	"distme/internal/metrics"
)

func testConfig() Config {
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	return Config{Cluster: cfg}
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineMultiplyAuto(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	e := newTestEngine(t, testConfig())
	a := bmat.RandomDense(rng, 20, 24, 4)
	b := bmat.RandomDense(rng, 24, 16, 4)
	got, err := e.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("auto multiply wrong")
	}
}

func TestEngineEveryMethodAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := bmat.RandomSparse(rng, 18, 12, 3, 0.4)
	b := bmat.RandomDense(rng, 12, 18, 3)
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	for _, m := range []Method{MethodAuto, MethodBMM, MethodCPMM, MethodRMM} {
		e := newTestEngine(t, testConfig())
		got, rep, err := e.MultiplyOpt(a, b, MulOptions{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !got.ToDense().EqualApprox(want, 1e-9) {
			t.Fatalf("%v: wrong product", m)
		}
		if rep.Method != m {
			t.Fatalf("report method %v, want %v", rep.Method, m)
		}
	}
	// Explicit cuboid params.
	e := newTestEngine(t, testConfig())
	got, rep, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodCuboid, Params: core.Params{P: 2, Q: 3, R: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("cuboid params: wrong product")
	}
	if rep.Params != (core.Params{P: 2, Q: 3, R: 2}) {
		t.Fatalf("report params %v", rep.Params)
	}
}

func TestEngineGPUMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)

	cpuCfg := testConfig()
	ec := newTestEngine(t, cpuCfg)
	wantC, _, err := ec.MultiplyOpt(a, b, MulOptions{Method: MethodCPMM})
	if err != nil {
		t.Fatal(err)
	}

	gpuCfg := testConfig()
	gpuCfg.UseGPU = true
	eg := newTestEngine(t, gpuCfg)
	gotG, rep, err := eg.MultiplyOpt(a, b, MulOptions{Method: MethodCPMM})
	if err != nil {
		t.Fatal(err)
	}
	if !gotG.ToDense().EqualApprox(wantC.ToDense(), 1e-9) {
		t.Fatal("GPU product differs from CPU")
	}
	if rep.GPU.Kernels == 0 {
		t.Fatal("GPU path ran no kernels")
	}
	if rep.Comm.PCIEBytes == 0 {
		t.Fatal("GPU path recorded no PCI-E traffic")
	}
	if rep.GPU.Utilization() <= 0 {
		t.Fatal("GPU utilization missing")
	}
}

func TestEnginePerCallGPUOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	e := newTestEngine(t, testConfig()) // GPU off by default
	on := true
	_, rep, err := e.MultiplyOpt(a, b, MulOptions{UseGPU: &on})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GPU.Kernels == 0 {
		t.Fatal("per-call GPU override ignored")
	}
}

func TestEngineReportCommDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := bmat.RandomDense(rng, 12, 12, 3)
	b := bmat.RandomDense(rng, 12, 12, 3)
	e := newTestEngine(t, testConfig())
	_, rep1, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodCPMM})
	if err != nil {
		t.Fatal(err)
	}
	_, rep2, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodCPMM})
	if err != nil {
		t.Fatal(err)
	}
	// The per-op deltas must match each other, not accumulate.
	if rep1.Comm.CommunicationBytes() != rep2.Comm.CommunicationBytes() {
		t.Fatalf("per-op comm deltas differ: %d vs %d",
			rep1.Comm.CommunicationBytes(), rep2.Comm.CommunicationBytes())
	}
	s := core.ShapeOf(a, b)
	if got := float64(rep1.Comm.CommunicationBytes()); got != s.CostBytes(s.CPMMParams()) {
		t.Fatalf("per-op delta %g, want Eq.(4) %g", got, s.CostBytes(s.CPMMParams()))
	}
}

func TestLayoutTrackingSavesRepartition(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	cfg := testConfig()
	cfg.TrackLayouts = true
	e := newTestEngine(t, cfg)
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)

	_, rep1, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodCPMM})
	if err != nil {
		t.Fatal(err)
	}
	// Second identical multiply: A is now column-partitioned, B
	// row-partitioned — both base copies are free.
	_, rep2, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodCPMM})
	if err != nil {
		t.Fatal(err)
	}
	saved := a.StoredBytes() + b.StoredBytes()
	if got := rep1.Comm.RepartitionBytes - rep2.Comm.RepartitionBytes; got != saved {
		t.Fatalf("layout reuse saved %d, want %d", got, saved)
	}
}

func TestLayoutTrackingOffNoSaving(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	e := newTestEngine(t, testConfig()) // TrackLayouts false
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	_, rep1, _ := e.MultiplyOpt(a, b, MulOptions{Method: MethodCPMM})
	_, rep2, _ := e.MultiplyOpt(a, b, MulOptions{Method: MethodCPMM})
	if rep1.Comm.RepartitionBytes != rep2.Comm.RepartitionBytes {
		t.Fatal("layout saving applied with tracking disabled")
	}
}

func TestTransposeDistributed(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	e := newTestEngine(t, testConfig())
	a := bmat.RandomSparse(rng, 14, 10, 3, 0.3)
	tr, err := e.Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.ToDense().Equal(a.ToDense().Transpose()) {
		t.Fatal("distributed transpose wrong")
	}
}

func TestTransposeFlipsTrackedLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	cfg := testConfig()
	cfg.TrackLayouts = true
	e := newTestEngine(t, cfg)
	a := bmat.RandomDense(rng, 8, 8, 4)
	e.SetLayout(a, "row", 2, 0)
	tr, err := e.Transpose(a)
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	l := e.layouts[tr]
	e.mu.Unlock()
	if l.kind != "col" {
		t.Fatalf("transpose layout = %q, want col", l.kind)
	}
}

func TestElementWiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	e := newTestEngine(t, testConfig())
	a := bmat.RandomDense(rng, 10, 10, 3)
	b := bmat.RandomDense(rng, 10, 10, 3)

	sum, err := e.Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.ToDense().EqualApprox(matrix.Add(a.ToDense(), b.ToDense()), 1e-12) {
		t.Fatal("Add wrong")
	}
	diff, err := e.Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.ToDense().EqualApprox(matrix.Sub(a.ToDense(), b.ToDense()), 1e-12) {
		t.Fatal("Sub wrong")
	}
	had, err := e.Hadamard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !had.ToDense().EqualApprox(matrix.Hadamard(a.ToDense(), b.ToDense()), 1e-12) {
		t.Fatal("Hadamard wrong")
	}
	div, err := e.DivElem(a, b, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !div.ToDense().EqualApprox(matrix.DivElem(a.ToDense(), b.ToDense(), 1e-12), 1e-12) {
		t.Fatal("DivElem wrong")
	}
	sc, err := e.Scale(2, a)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.ToDense().EqualApprox(matrix.Scale(2, a.ToDense()), 1e-12) {
		t.Fatal("Scale wrong")
	}
}

func TestZipShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	e := newTestEngine(t, testConfig())
	a := bmat.RandomDense(rng, 4, 4, 2)
	b := bmat.RandomDense(rng, 4, 6, 2)
	if _, err := e.Add(a, b); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestEngineRecorderAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	e := newTestEngine(t, testConfig())
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	if _, _, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodCPMM}); err != nil {
		t.Fatal(err)
	}
	if e.Recorder().Bytes(metrics.StepRepartition) == 0 {
		t.Fatal("engine recorder did not accumulate")
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		MethodAuto:   "CuboidMM(auto)",
		MethodBMM:    "BMM",
		MethodCPMM:   "CPMM",
		MethodRMM:    "RMM",
		MethodCuboid: "CuboidMM",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
}

func TestEngineUnknownMethod(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	e := newTestEngine(t, testConfig())
	a := bmat.RandomDense(rng, 4, 4, 2)
	if _, _, err := e.MultiplyOpt(a, a, MulOptions{Method: Method(99)}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestAutoRetriesOnRaggedOOM(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	// 12×12×12 blocks with θt chosen so that Eq.(3)'s average-based
	// feasibility admits parameters whose ragged cuboids exceed the budget:
	// MethodAuto must re-optimize finer instead of failing.
	a := bmat.RandomDense(rng, 768, 768, 64)
	b := bmat.RandomDense(rng, 768, 768, 64)
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.Nodes, cfg.TasksPerNode = 3, 3
	cfg.TaskMemBytes = 256 << 10
	cfg.DiskCapacityBytes = 0
	e := newTestEngine(t, Config{Cluster: cfg})
	got, rep, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodAuto})
	if err != nil {
		t.Fatalf("elastic retry failed: %v", err)
	}
	if !got.ToDense().EqualApprox(matrix.Mul(a.ToDense(), b.ToDense()).Dense(), 1e-9) {
		t.Fatal("retried multiply wrong")
	}
	if rep.Params.Tasks() <= cfg.Slots() {
		t.Fatalf("retry should have refined the partitioning, got %v", rep.Params)
	}
}

func TestEngineConcurrentMultiplies(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	cfg := testConfig()
	cfg.TrackLayouts = true
	e := newTestEngine(t, cfg)
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	want := matrix.Mul(a.ToDense(), b.ToDense()).Dense()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, _, err := e.MultiplyOpt(a, b, MulOptions{Method: MethodCPMM})
			if err != nil {
				errs[g] = err
				return
			}
			if !got.ToDense().EqualApprox(want, 1e-9) {
				errs[g] = errNotEqual
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

var errNotEqual = errors.New("concurrent multiply produced wrong product")

func TestEngineMultiGPUSpecScaling(t *testing.T) {
	cfg := testConfig()
	cfg.Cluster.GPUsPerNode = 4
	e := newTestEngine(t, cfg)
	spec := e.Device().Spec()
	want := cfg.Cluster.GPUMemPerTaskBytes * 4
	if spec.MemPerTaskBytes != want {
		t.Fatalf("multi-GPU θg = %d, want %d", spec.MemPerTaskBytes, want)
	}
}

func TestExplainMatchesExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	e := newTestEngine(t, testConfig())
	a := bmat.RandomDense(rng, 24, 24, 4)
	b := bmat.RandomDense(rng, 24, 24, 4)
	for _, m := range []Method{MethodAuto, MethodBMM, MethodCPMM} {
		ex, err := e.Explain(a, b, MulOptions{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		_, rep, err := e.MultiplyOpt(a, b, MulOptions{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if ex.Params != rep.Params {
			t.Fatalf("%v: explain params %v, executed %v", m, ex.Params, rep.Params)
		}
		if ex.RepartitionBytes != rep.Comm.RepartitionBytes {
			t.Fatalf("%v: explain repartition %d, executed %d", m, ex.RepartitionBytes, rep.Comm.RepartitionBytes)
		}
		if ex.AggregationBytes != rep.Comm.AggregationBytes {
			t.Fatalf("%v: explain aggregation %d, executed %d", m, ex.AggregationBytes, rep.Comm.AggregationBytes)
		}
	}
}

func TestExplainRMMAndGPU(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	cfg := testConfig()
	cfg.UseGPU = true
	e := newTestEngine(t, cfg)
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	ex, err := e.Explain(a, b, MulOptions{Method: MethodRMM})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Method != MethodRMM || ex.Tasks != 16 {
		t.Fatalf("RMM explanation wrong: %+v", ex)
	}
	exAuto, err := e.Explain(a, b, MulOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if exAuto.GPUIterations < 1 {
		t.Fatal("GPU engine explanation missing subcuboid plan")
	}
	if exAuto.String() == "" {
		t.Fatal("explanation should render")
	}
}

func TestSparseOutputPipeline(t *testing.T) {
	// A sparse product comes back CSR-blocked (output-format selection);
	// the element-wise operators must consume it transparently.
	rng := rand.New(rand.NewSource(87))
	e := newTestEngine(t, testConfig())
	a := bmat.RandomSparse(rng, 100, 100, 25, 0.003)
	b := bmat.RandomSparse(rng, 100, 100, 25, 0.003)
	c, err := e.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ref := matrix.Mul(a.ToDense(), b.ToDense()).Dense()

	sum, err := e.Add(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.ToDense().EqualApprox(matrix.Scale(2, ref), 1e-9) {
		t.Fatal("Add over sparse product wrong")
	}
	had, err := e.Hadamard(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if !had.ToDense().EqualApprox(matrix.Hadamard(ref, ref), 1e-9) {
		t.Fatal("Hadamard over sparse product wrong")
	}
	tr, err := e.Transpose(c)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.ToDense().EqualApprox(ref.Transpose(), 1e-9) {
		t.Fatal("Transpose over sparse product wrong")
	}
	// And it must multiply again (chained products on compacted outputs).
	sq, err := e.Multiply(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if !sq.ToDense().EqualApprox(matrix.Mul(ref, ref).Dense(), 1e-6) {
		t.Fatal("chained multiply over sparse product wrong")
	}
}
