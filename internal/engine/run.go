package engine

import (
	"context"
	"fmt"
	"time"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/obs"
	"distme/internal/plan"
)

// Run is the engine's consolidated entry point: one context-first call that
// compiles a matrix expression (with the plan layer's transpose pushing,
// scalar folding, and common-subexpression elimination) and executes the
// whole DAG on the engine — multiplications under the configured strategy
// chooser, everything else block-parallel. A bare multiplication expression
// (plan.Mul of two variables) takes exactly the classic Multiply path, so
// its report and trace shape are unchanged; the deprecated
// Multiply/MultiplyOpt/MultiplyCtx wrappers delegate here.

// RunOption tunes one Run call.
type RunOption func(*runConfig)

type runConfig struct {
	mul       MulOptions
	methodSet bool
}

// WithMulOptions applies explicit per-multiplication options (method,
// cuboid params, RMM task count, GPU toggle) to every multiplication in the
// expression.
func WithMulOptions(o MulOptions) RunOption {
	return func(c *runConfig) { c.mul = o; c.methodSet = true }
}

// WithMethod selects the multiplication strategy for every multiplication
// in the expression.
func WithMethod(m Method) RunOption {
	return func(c *runConfig) { c.mul.Method = m; c.methodSet = true }
}

// WithParams fixes explicit (P,Q,R) cuboid parameters (implies
// MethodCuboid).
func WithParams(p core.Params) RunOption {
	return func(c *runConfig) { c.mul.Params = p; c.mul.Method = MethodCuboid; c.methodSet = true }
}

// WithRMMTasks overrides RMM's task count for this call.
func WithRMMTasks(n int) RunOption {
	return func(c *runConfig) { c.mul.RMMTasks = n }
}

// WithGPU overrides the engine's GPU default for this call.
func WithGPU(use bool) RunOption {
	return func(c *runConfig) { v := use; c.mul.UseGPU = &v }
}

// Run compiles and executes a matrix expression over the bound inputs,
// returning the result and an execution report covering the whole pipeline.
// Without an explicit method option, multiplications use the engine's
// DefaultMethod — the same default the deprecated Multiply had.
func (e *Engine) Run(ctx context.Context, x plan.Expr, binds map[string]*bmat.BlockMatrix, opts ...RunOption) (*bmat.BlockMatrix, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if x == nil {
		return nil, nil, fmt.Errorf("engine: nil expression")
	}
	var ro runConfig
	for _, o := range opts {
		o(&ro)
	}
	if !ro.methodSet {
		ro.mul.Method = e.cfg.DefaultMethod
	}

	// A bare L×R over two bound inputs is the classic multiply: run the
	// exact MultiplyCtx path so the trace keeps one engine.multiply root and
	// the report covers precisely that multiplication.
	if mm, ok := x.(*plan.MatMul); ok {
		lv, lok := mm.L.(*plan.Var)
		rv, rok := mm.R.(*plan.Var)
		if lok && rok {
			a, aok := binds[lv.Name]
			b, bok := binds[rv.Name]
			if !aok || a == nil {
				return nil, nil, fmt.Errorf("plan: input %q not bound", lv.Name)
			}
			if !bok || b == nil {
				return nil, nil, fmt.Errorf("plan: input %q not bound", rv.Name)
			}
			return e.mulTraced(ctx, a, b, ro.mul)
		}
	}

	p, err := plan.Compile(x)
	if err != nil {
		return nil, nil, err
	}
	if err := e.checkOpen(); err != nil {
		return nil, nil, err
	}

	tr := e.cfg.Tracer
	var mark int
	var root obs.Span
	if tr != nil {
		mark = tr.Len()
		root = tr.Start(0, "engine.run", obs.KindDriver)
		if root.Active() {
			root.SetAttr("expr", x.String())
			root.SetAttr("nodes", fmt.Sprintf("%d", p.NumNodes()))
		}
	}
	rec := e.Recorder()
	before := rec.Snapshot()
	gpuBefore := e.device.Stats()
	start := time.Now()

	lastMethod := ro.mul.Method
	var lastParams core.Params
	apply := func(n plan.NodeInfo, a, b *bmat.BlockMatrix) (*bmat.BlockMatrix, error) {
		switch n.Kind {
		case plan.OpMul:
			msp := tr.Start(root.ID(), "engine.multiply", obs.KindDriver)
			c, rep, err := e.multiplyCtx(ctx, a, b, ro.mul, msp)
			if err != nil && msp.Active() {
				msp.SetAttr("error", err.Error())
			}
			msp.End()
			if rep != nil {
				lastMethod, lastParams = rep.Method, rep.Params
			}
			return c, err
		case plan.OpTranspose:
			return e.TransposeCtx(ctx, a)
		case plan.OpAdd:
			return e.AddCtx(ctx, a, b)
		case plan.OpSub:
			return e.SubCtx(ctx, a, b)
		case plan.OpHadamard:
			return e.HadamardCtx(ctx, a, b)
		case plan.OpDivElem:
			return e.DivElemCtx(ctx, a, b, n.Scalar)
		case plan.OpScale:
			return e.ScaleCtx(ctx, n.Scalar, a)
		default:
			return nil, fmt.Errorf("engine: unsupported operator %v", n.Kind)
		}
	}
	out, err := plan.EvalWith(p, binds, apply, nil)
	if tr != nil {
		if err != nil && root.Active() {
			root.SetAttr("error", err.Error())
		}
		root.End()
	}
	if err != nil {
		return nil, nil, err
	}

	comm := rec.Snapshot().Sub(before)
	report := &Report{
		Method:  lastMethod,
		Params:  lastParams,
		Elapsed: time.Since(start),
		Comm:    comm,
		GPU:     subStats(e.device.Stats(), gpuBefore),
		Elastic: comm.Elastic,
	}
	if tr != nil {
		snap := tr.SnapshotSince(mark)
		report.Trace = &snap
	}
	return out, report, nil
}
