package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/core"
	"distme/internal/distnet"
	"distme/internal/metrics"
)

// wireBytesOf sums the exact wire encoding of every block in m — the same
// codec.EncodedBytes accounting the socket codec uses when it frames a
// block, so the Eq.(4) prediction and the measured traffic share one ruler.
func wireBytesOf(m *bmat.BlockMatrix) int64 {
	var total int64
	for _, k := range m.Keys() {
		total += codec.EncodedBytes(m.Block(k.I, k.J))
	}
	return total
}

// ExtWire validates the communication accounting against reality: the same
// cuboid plan runs over actual TCP sockets (in-process workers, block cache
// off so every replica really crosses the wire) and the measured bytes are
// set against the Eq.(4) prediction, with both sides priced by the binary
// block codec. What remains is pure framing and RPC headers — the gap the
// paper's Figure 9(b) attributes to Spark serialization, minus gob.
func ExtWire(seed int64) (*Table, error) {
	t := &Table{
		ID:      "ext-wire",
		Title:   "EXTENSION: Eq.(4) prediction vs real TCP socket bytes (cache off)",
		Columns: []string{"(P,Q,R)", "Eq.(4) payload", "wire sent+received", "framing overhead"},
	}

	// Three in-process workers on loopback.
	var addrs []string
	var listeners []net.Listener
	for i := 0; i < 3; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, l)
		if _, err := distnet.Serve(l); err != nil {
			return nil, err
		}
		addrs = append(addrs, l.Addr().String())
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	a := bmat.RandomDense(rng, 256, 256, 32)
	b := bmat.RandomDense(rng, 256, 256, 32)
	aBytes, bBytes := wireBytesOf(a), wireBytesOf(b)

	// One recorder across all plans, with a fast heartbeat, so the report
	// also shows the failure detector's live traffic.
	rec := &metrics.Recorder{}
	opts := distnet.Options{
		HeartbeatInterval: 25 * time.Millisecond,
		Recorder:          rec,
		DisableBlockCache: true,
	}
	for _, p := range []core.Params{{P: 2, Q: 2, R: 1}, {P: 2, Q: 2, R: 2}, {P: 4, Q: 2, R: 1}} {
		d, err := distnet.DialOptions(addrs, opts)
		if err != nil {
			return nil, err
		}
		sent0, recv0 := d.WireBytes()
		c, err := d.Multiply(a, b, p)
		if err != nil {
			d.Close()
			return nil, err
		}
		sent, recv := d.WireBytes()
		d.Close()

		// Prediction: repartition payload goes out; R·|C| partials come back
		// (with R = 1 the final tiles still return once — the driver is the
		// output sink, unlike the in-cluster aggregation that stays put).
		predicted := int64(p.Q)*aBytes + int64(p.P)*bBytes + int64(maxInt(p.R, 1))*wireBytesOf(c)
		wire := (sent - sent0) + (recv - recv0)
		overhead := float64(wire)/float64(predicted) - 1
		t.AddRow(p.String(),
			fmt.Sprintf("%d", predicted),
			fmt.Sprintf("%d", wire),
			fmt.Sprintf("%.1f%%", 100*overhead))
	}
	t.Notes = append(t.Notes,
		"payload priced by codec.EncodedBytes — the socket codec's own accounting — so the residual is frame headers and RPC envelopes only",
		"elastic layer: "+rec.Net().String())
	return t, nil
}

// ExtWireCache measures what the content-addressed block cache buys: the
// same replicated plan against one worker, cold (cache disabled, every
// replica ships) versus warm (repeat blocks go as 32-byte digests).
func ExtWireCache(seed int64) (*Table, error) {
	t := &Table{
		ID:      "ext-wire-cache",
		Title:   "EXTENSION: content-addressed block cache, cold vs warm wire bytes",
		Columns: []string{"mode", "wire sent", "cache refs", "bytes saved"},
	}

	rng := rand.New(rand.NewSource(seed))
	a := bmat.RandomDense(rng, 256, 256, 32)
	b := bmat.RandomDense(rng, 256, 256, 32)
	params := core.Params{P: 2, Q: 2, R: 2}

	run := func(mode string, disable bool) (int64, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer l.Close()
		if _, err := distnet.Serve(l); err != nil {
			return 0, err
		}
		d, err := distnet.DialOptions([]string{l.Addr().String()}, distnet.Options{DisableBlockCache: disable})
		if err != nil {
			return 0, err
		}
		defer d.Close()
		if _, err := d.Multiply(a, b, params); err != nil {
			return 0, err
		}
		sent, _ := d.WireBytes()
		stats := d.NetStats()
		t.AddRow(mode,
			fmt.Sprintf("%d", sent),
			fmt.Sprintf("%d", stats.CacheRefsSent),
			fmt.Sprintf("%d", stats.CacheBytesSaved))
		return sent, nil
	}
	coldSent, err := run("cold (cache off)", true)
	if err != nil {
		return nil, err
	}
	warmSent, err := run("warm (cache on)", false)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("with (P,Q,R)=%s every A block ships Q=%d times and every B block P=%d times; the cache collapses each repeat to a digest, cutting sent bytes to %.0f%% of cold",
			params.String(), params.Q, params.P, 100*float64(warmSent)/float64(coldSent)),
		"results are byte-identical in both modes — the cache only ever changes how bytes move, never which blocks compute")
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
