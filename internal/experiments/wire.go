package experiments

import (
	"fmt"
	"math/rand"
	"net"
	"time"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/distnet"
	"distme/internal/metrics"
)

// ExtWire validates the communication accounting against reality: the same
// cuboid plan runs over actual TCP sockets (in-process workers) and the
// measured wire bytes are set against the Eq.(4) prediction. The wire total
// exceeds the formula only by serialization framing — the same gap the
// paper's Figure 9(b) attributes to Spark serialization.
func ExtWire(seed int64) (*Table, error) {
	t := &Table{
		ID:      "ext-wire",
		Title:   "EXTENSION: Eq.(4) prediction vs real TCP socket bytes",
		Columns: []string{"(P,Q,R)", "Eq.(4) payload", "wire sent+received", "framing overhead"},
	}

	// Three in-process workers on loopback.
	var addrs []string
	var listeners []net.Listener
	for i := 0; i < 3; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners = append(listeners, l)
		if _, err := distnet.Serve(l); err != nil {
			return nil, err
		}
		addrs = append(addrs, l.Addr().String())
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	a := bmat.RandomDense(rng, 256, 256, 32)
	b := bmat.RandomDense(rng, 256, 256, 32)
	s := core.ShapeOf(a, b)

	// One recorder across all plans, with a fast heartbeat, so the report
	// also shows the failure detector's live traffic.
	rec := &metrics.Recorder{}
	opts := distnet.Options{HeartbeatInterval: 25 * time.Millisecond, Recorder: rec}
	for _, p := range []core.Params{{P: 2, Q: 2, R: 1}, {P: 2, Q: 2, R: 2}, {P: 4, Q: 2, R: 1}} {
		d, err := distnet.DialOptions(addrs, opts)
		if err != nil {
			return nil, err
		}
		sent0, recv0 := d.WireBytes()
		if _, err := d.Multiply(a, b, p); err != nil {
			d.Close()
			return nil, err
		}
		sent, recv := d.WireBytes()
		d.Close()

		// Prediction: repartition payload goes out; R·|C| partials come back
		// (with R = 1 the final tiles still return once — the driver is the
		// output sink, unlike the in-cluster aggregation that stays put).
		predicted := int64(p.Q)*s.ABytes + int64(p.P)*s.BBytes + int64(maxInt(p.R, 1))*s.CBytes
		wire := (sent - sent0) + (recv - recv0)
		overhead := float64(wire)/float64(predicted) - 1
		t.AddRow(p.String(),
			fmt.Sprintf("%d", predicted),
			fmt.Sprintf("%d", wire),
			fmt.Sprintf("%.1f%%", 100*overhead))
	}
	t.Notes = append(t.Notes,
		"gob framing plus RPC headers account for the overhead — the real-world analog of the serialization gap in Figure 9(b)",
		"elastic layer: "+rec.Net().String())
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
