package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"distme/internal/baselines"
	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/costmodel"
	"distme/internal/gpu"
	"distme/internal/matrix"
	"distme/internal/plan"
)

// ExtMultiGPU models the §8 future-work extension "exploit multiple GPUs
// per node": the 40K³ workload under 1, 2 and 4 devices per node. Only the
// local multiplication step accelerates — communication is untouched — so
// scaling saturates once the job becomes network-bound, which the table
// makes visible.
func ExtMultiGPU() *Table {
	t := &Table{
		ID:      "ext-multigpu",
		Title:   "EXTENSION: multi-GPU scaling on 40K x 40K x 40K (modeled)",
		Columns: []string{"GPUs/node", "local [s]", "comm [s]", "total [s]", "speedup vs 1 GPU"},
	}
	w := costmodel.Workload{M: 40_000, K: 40_000, N: 40_000, BlockSize: 1000}
	base := 0.0
	for _, g := range []int{1, 2, 4} {
		m := costmodel.NewPaperModel()
		m.Cfg.GPUsPerNode = g
		est := m.EstimateAuto(w, true)
		if est.Verdict != costmodel.VerdictOK {
			t.AddRow(g, "-", "-", string(est.Verdict), "-")
			continue
		}
		if g == 1 {
			base = est.TotalSec()
		}
		t.AddRow(g,
			fmt.Sprintf("%.0f", est.LocalSec),
			fmt.Sprintf("%.0f", est.RepartitionSec+est.AggregationSec),
			fmt.Sprintf("%.0f", est.TotalSec()),
			fmt.Sprintf("%.2fx", base/est.TotalSec()))
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper (its §8 future work); Amdahl saturation at the network share is the expected shape")
	return t
}

// ExtLoadBalance measures the §8 "load balancing by considering differences
// in sparsities of cuboids" extension: a rating-style matrix whose left
// half is dense and right half nearly empty, multiplied with and without
// longest-work-first cuboid scheduling. The product must be identical; the
// makespan improves when stragglers go first.
func ExtLoadBalance(seed int64) (*Table, error) {
	t := &Table{
		ID:      "ext-balance",
		Title:   "EXTENSION: sparsity-aware cuboid scheduling (measured)",
		Columns: []string{"scheduling", "elapsed", "result"},
	}
	rng := rand.New(rand.NewSource(seed))
	const bs = 32
	// Heavy skew along k: the first quarter of A's columns dense, the rest
	// nearly empty, so (1,1,R) cuboids differ sharply in work.
	a := bmat.New(8*bs, 16*bs, bs)
	for i := 0; i < 8; i++ {
		for k := 0; k < 16; k++ {
			if k < 4 {
				a.SetBlock(i, k, matrix.RandomDense(rng, bs, bs))
			} else if blk := matrix.RandomSparse(rng, bs, bs, 0.01); blk.NNZ() > 0 {
				a.SetBlock(i, k, blk)
			}
		}
	}
	b := bmat.RandomDense(rng, 16*bs, 8*bs, bs)

	run := func(balance bool) (time.Duration, *bmat.BlockMatrix, error) {
		cfg := cluster.LaptopConfig()
		cfg.Nodes, cfg.TasksPerNode = 2, 2 // few slots: stragglers visible
		cfg.LocalWorkers = runtime.GOMAXPROCS(0)
		if cfg.LocalWorkers > 4 {
			cfg.LocalWorkers = 4
		}
		cfg.TaskMemBytes = 1 << 30
		cfg.DiskCapacityBytes = 0
		cl, err := cluster.New(cfg)
		if err != nil {
			return 0, nil, err
		}
		env := core.Env{Cluster: cl, BalanceBySparsity: balance}
		start := time.Now()
		c, err := core.MultiplyCuboid(a, b, core.Params{P: 2, Q: 2, R: 4}, env)
		return time.Since(start), c, err
	}

	unbalancedT, c1, err := run(false)
	if err != nil {
		return nil, err
	}
	balancedT, c2, err := run(true)
	if err != nil {
		return nil, err
	}
	same := "identical products"
	if !bmat.EqualApprox(c1, c2, 1e-9) {
		same = "MISMATCH"
	}
	t.AddRow("submission order (paper)", unbalancedT.Round(time.Millisecond).String(), same)
	t.AddRow("longest-work-first (ext)", balancedT.Round(time.Millisecond).String(), same)
	t.Notes = append(t.Notes,
		"extension beyond the paper (its §8 future work); wall-clock gains depend on skew and scheduler timing — correctness equality is the asserted part")
	return t, nil
}

// ExtCRMM compares Marlin's CRMM (cube-shaped logical blocks, §7) against
// CuboidMM on a skewed shape where cubes cannot flatten, measured at laptop
// scale.
func ExtCRMM(seed int64) (*Table, error) {
	t := &Table{
		ID:      "ext-crmm",
		Title:   "EXTENSION: CRMM (Marlin) vs CuboidMM on a common large dimension (measured)",
		Columns: []string{"method", "comm bytes", "result"},
	}
	rng := rand.New(rand.NewSource(seed))
	a := bmat.RandomDense(rng, 6*16, 60*16, 16)
	b := bmat.RandomDense(rng, 60*16, 6*16, 16)

	newEnv := func() core.Env {
		cfg := cluster.LaptopConfig()
		cfg.Nodes, cfg.TasksPerNode, cfg.LocalWorkers = 2, 2, 4
		cfg.TaskMemBytes = 2 << 20
		cfg.DiskCapacityBytes = 0
		cl, err := cluster.New(cfg)
		if err != nil {
			panic(err)
		}
		return core.Env{Cluster: cl}
	}

	envCRMM := newEnv()
	c1, err := baselines.MultiplyCRMM(a, b, envCRMM)
	if err != nil {
		return nil, err
	}
	t.AddRow("CRMM", fmt.Sprintf("%d", envCRMM.Cluster.Recorder().CommunicationBytes()), "ok")

	envCub := newEnv()
	c2, _, err := core.MultiplyAuto(a, b, envCub)
	if err != nil {
		return nil, err
	}
	verdict := "ok"
	if !bmat.EqualApprox(c1, c2, 1e-9) {
		verdict = "MISMATCH"
	}
	t.AddRow("CuboidMM", fmt.Sprintf("%d", envCub.Cluster.Recorder().CommunicationBytes()), verdict)
	t.Notes = append(t.Notes,
		"§7: cubes cannot flatten along the cheap axes the way cuboids can, so CRMM pays more network on skewed shapes")
	return t, nil
}

// ExtSparseCEstimate shows WHY the paper (like SystemML and DMac, §2.2.2)
// estimates intermediate C as fully dense even for sparse inputs: a
// probabilistic |C| estimate predicts cheaper parameters, but the local
// accumulators are physically dense, so the under-provisioned plan
// out-of-memories where the worst-case plan survives. Safety, not sloppiness.
func ExtSparseCEstimate(seed int64) (*Table, error) {
	t := &Table{
		ID:      "ext-cest",
		Title:   "EXTENSION: worst-case vs estimated |C| in the optimizer (measured)",
		Columns: []string{"estimate", "(P*,Q*,R*)", "predicted Eq.(4) [KB]", "outcome"},
	}
	rng := rand.New(rand.NewSource(seed))
	// Two large dimensions, sparse inputs: the dense |C| (32 MB) dwarfs the
	// sparse inputs (~16 KB each), so the two estimates diverge sharply.
	a := bmat.RandomSparse(rng, 2000, 50, 25, 0.01)
	b := bmat.RandomSparse(rng, 50, 2000, 25, 0.01)
	cfg := cluster.LaptopConfig()
	cfg.Nodes, cfg.TasksPerNode, cfg.LocalWorkers = 2, 2, 4
	cfg.TaskMemBytes = 4 << 20
	cfg.DiskCapacityBytes = 0

	for _, variant := range []struct {
		name  string
		shape core.Shape
	}{
		{"dense worst case (paper)", core.ShapeOf(a, b)},
		{"probabilistic (ext)", core.ShapeOfEstimated(a, b)},
	} {
		params, err := core.Optimize(variant.shape, cfg.TaskMemBytes, cfg.Slots())
		if err != nil {
			t.AddRow(variant.name, "-", "-", err.Error())
			continue
		}
		cl, err := cluster.New(cfg)
		if err != nil {
			return nil, err
		}
		_, err = core.MultiplyCuboid(a, b, params, core.Env{Cluster: cl})
		outcome := "ok"
		if err != nil {
			outcome = "O.O.M. (estimate under-provisioned the dense accumulators)"
		}
		t.AddRow(variant.name, params.String(),
			fmt.Sprintf("%.0f", variant.shape.CostBytes(params)/1024), outcome)
	}
	t.Notes = append(t.Notes,
		"the tighter estimate predicts cheaper communication but picks parameters whose physically dense C accumulators exceed θt — the reason §2.2.2's systems keep the worst case")
	return t, nil
}

// ExtChainOrder demonstrates the planner's matrix-chain re-association on a
// GNMF-like chain Wᵀ·W·H: evaluated left-to-right the r×n intermediate is
// cheap, but the reversed ordering W·(W·H)ᵀ-style trees can be catastrophic;
// the DP picks the minimum. The table reports the predicted scalar work of
// the naive vs optimized parenthesization of a skewed chain.
func ExtChainOrder() (*Table, error) {
	t := &Table{
		ID:      "ext-chain",
		Title:   "EXTENSION: matrix-chain re-association in the plan compiler",
		Columns: []string{"parenthesization", "predicted scalar ops"},
	}
	// The textbook skew: (10K×100)·(100×10K)·(10K×50).
	shapes := map[string]plan.Dims{
		"A": {Rows: 10_000, Cols: 100},
		"B": {Rows: 100, Cols: 10_000},
		"C": {Rows: 10_000, Cols: 50},
	}
	naive := plan.Mul(plan.Mul(plan.V("A"), plan.V("B")), plan.V("C"))
	naiveCost, err := plan.ChainCost(naive, shapes)
	if err != nil {
		return nil, err
	}
	prog, err := plan.CompileWithShapes(naive, shapes)
	if err != nil {
		return nil, err
	}
	_ = prog
	best := plan.Mul(plan.V("A"), plan.Mul(plan.V("B"), plan.V("C")))
	bestCost, err := plan.ChainCost(best, shapes)
	if err != nil {
		return nil, err
	}
	t.AddRow("(A×B)×C as written", fmt.Sprintf("%.2e", naiveCost))
	t.AddRow("A×(B×C) after DP", fmt.Sprintf("%.2e", bestCost))
	t.AddRow("improvement", fmt.Sprintf("%.0fx", naiveCost/bestCost))
	t.Notes = append(t.Notes,
		"the compiler applies the classical matrix-chain dynamic program when shapes are declared (plan.CompileWithShapes)")
	return t, nil
}

// ExtMPSContention measures the §4.1 scenario on the simulated device:
// "multiple tasks that run on a machine and try to use the same GPU
// simultaneously" — comparing the partitioned-bandwidth MPS model against
// a fully contended single PCI-E bus as the number of concurrent tasks
// grows.
func ExtMPSContention(seed int64) (*Table, error) {
	t := &Table{
		ID:      "ext-mps",
		Title:   "EXTENSION: MPS bus contention on the simulated device (measured)",
		Columns: []string{"concurrent tasks", "partitioned bus util %", "contended bus util %"},
	}
	rng := rand.New(rand.NewSource(seed))
	a := bmat.RandomDense(rng, 64, 64, 8)
	b := bmat.RandomDense(rng, 64, 64, 8)
	cuboid := &core.Cuboid{ILo: 0, IHi: a.IB, JLo: 0, JHi: b.JB, KLo: 0, KHi: a.JB, A: a, B: b}
	spec := gpu.Spec{MemPerTaskBytes: 1 << 20, PCIEBandwidth: 5e8, Flops: 5e9, MaxStreams: 16}

	for _, tasks := range []int{1, 4, 8} {
		part := gpu.NewMultiplier(spec, nil)
		for i := 0; i < tasks; i++ {
			if _, err := part.Multiply(cuboid); err != nil {
				return nil, err
			}
		}
		shared := gpu.NewMultiplier(spec, nil)
		shared.Device.SetSharedBus(true)
		for i := 0; i < tasks; i++ {
			if _, err := shared.Multiply(cuboid); err != nil {
				return nil, err
			}
		}
		t.AddRow(tasks,
			fmt.Sprintf("%.1f", 100*part.Device.Stats().Utilization()),
			fmt.Sprintf("%.1f", 100*shared.Device.Stats().Utilization()))
	}
	t.Notes = append(t.Notes,
		"under contention, added tasks queue on the one physical bus and utilization decays — the §4.1 shortage that motivates sizing subcuboids to θg per task")
	return t, nil
}

// ExtBlockSize sweeps the block size the paper fixes at 1000×1000 (§6.1):
// finer blocks give the optimizer a finer grid (slightly better parameters)
// but at paper scale the effect is small — evidence that the default is a
// reasonable plateau, and an ablation the paper does not include.
func ExtBlockSize() *Table {
	t := &Table{
		ID:      "ext-blocksize",
		Title:   "EXTENSION: block-size sweep on 40K x 40K x 40K (modeled)",
		Columns: []string{"block size", "grid", "(P*,Q*,R*)", "comm [GB]", "total [s]"},
	}
	for _, bs := range []int64{250, 500, 1000, 2000, 4000, 16000} {
		m := costmodel.NewPaperModel()
		w := costmodel.Workload{M: 40_000, K: 40_000, N: 40_000, BlockSize: bs}
		est := m.EstimateAuto(w, true)
		s := w.Shape()
		if est.Verdict != costmodel.VerdictOK {
			t.AddRow(bs, fmt.Sprintf("%d³", s.I), "-", "-", string(est.Verdict))
			continue
		}
		t.AddRow(bs, fmt.Sprintf("%d³", s.I), est.Params.String(),
			gb(est.CommunicationBytes()), fmt.Sprintf("%.0f", est.TotalSec()))
	}
	t.Notes = append(t.Notes,
		"the paper fixes 1000×1000 blocks; the optimizer's choice is stable across two orders of magnitude until the grid gets so coarse (16000 → 3³ = 27 cells < 90 slots) that the §3.2 exceptional case fires: communication falls but only 27 of 90 slots work, so elapsed time rises — granularity buys parallelism, not communication")
	return t
}
