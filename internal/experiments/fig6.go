package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/costmodel"
	"distme/internal/workload"
)

// fig6Sizes lists the swept N per family, as in Figure 6.
func fig6Sizes(f workload.Family) (sizes []int64, fixed int64) {
	switch f {
	case workload.General:
		return []int64{70_000, 80_000, 90_000, 100_000}, 0
	case workload.CommonLargeDim:
		return []int64{100_000, 500_000, 1_000_000, 5_000_000}, 10_000
	case workload.TwoLargeDims:
		return []int64{100_000, 250_000, 500_000, 750_000}, 1_000
	default:
		panic("experiments: unknown family")
	}
}

func fig6Workload(f workload.Family, n, fixed int64) costmodel.Workload {
	i, k, j := f.Dims(int(n), int(fixed))
	return costmodel.Workload{M: int64(i), K: int64(k), N: int64(j), BlockSize: 1000}
}

// Fig6Elapsed regenerates Figures 6(a–c): modeled elapsed times of BMM,
// CPMM, RMM and CuboidMM at paper scale, GPU-accelerated as §6.2 runs them
// (all four methods executed on DistME; RMM restricted to block-level GPU).
func Fig6Elapsed(f workload.Family) *Table {
	id := map[workload.Family]string{
		workload.General: "fig6a", workload.CommonLargeDim: "fig6b", workload.TwoLargeDims: "fig6c",
	}[f]
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s (elapsed time, modeled at paper scale)", f),
		Columns: []string{"N", "RMM", "CPMM", "BMM", "CuboidMM", "(P*,Q*,R*)"},
	}
	m := costmodel.NewPaperModel()
	sizes, fixed := fig6Sizes(f)
	for _, n := range sizes {
		w := fig6Workload(f, n, fixed)
		rmm := m.EstimateRMM(w, 0, true)
		cpmm := m.EstimateCPMM(w, true)
		bmm := m.EstimateBMM(w, true)
		cub := m.EstimateAuto(w, true)
		t.AddRow(fmtN(n),
			estCell(rmm), estCell(cpmm), estCell(bmm), estCell(cub), cub.Params.String())
	}
	t.Notes = append(t.Notes,
		"absolute seconds are model outputs at the testbed constants; the paper-matching shape is the ordering, the gaps, and the O.O.M./T.O. boundaries")
	return t
}

// Fig6Comm regenerates Figures 6(d–f): the communication cost (MB) of the
// four methods, from the Table 2 formulas the engine's shuffles implement
// byte-for-byte.
func Fig6Comm(f workload.Family) *Table {
	id := map[workload.Family]string{
		workload.General: "fig6d", workload.CommonLargeDim: "fig6e", workload.TwoLargeDims: "fig6f",
	}[f]
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s (communication cost, MB)", f),
		Columns: []string{"N", "RMM", "CPMM", "BMM", "CuboidMM"},
	}
	m := costmodel.NewPaperModel()
	sizes, fixed := fig6Sizes(f)
	for _, n := range sizes {
		w := fig6Workload(f, n, fixed)
		rmm := m.EstimateRMM(w, 0, true)
		cpmm := m.EstimateCPMM(w, true)
		bmm := m.EstimateBMM(w, true)
		cub := m.EstimateAuto(w, true)
		t.AddRow(fmtN(n),
			commCell(rmm), commCell(cpmm), commCell(bmm), commCell(cub))
	}
	return t
}

// Fig6Measured runs the four methods for real at laptop scale on the given
// family and reports measured shuffle bytes (exact, equal to Eq.(4)) and
// wall-clock times. It is the measured-plane counterpart of Fig6Elapsed.
func Fig6Measured(f workload.Family, seed int64) (*Table, error) {
	t := &Table{
		ID:      "fig6-measured",
		Title:   fmt.Sprintf("%s (measured at laptop scale)", f),
		Columns: []string{"N(blocks)", "method", "comm bytes", "elapsed", "result"},
	}
	const bs = 16
	var n, fixed int
	switch f {
	case workload.General:
		n, fixed = 10*bs, 0
	case workload.CommonLargeDim:
		n, fixed = 40*bs, 3*bs
	case workload.TwoLargeDims:
		n, fixed = 20*bs, 2*bs
	}
	rng := rand.New(rand.NewSource(seed))
	a, b := workload.SyntheticPair(rng, f, n, fixed, bs, 1.0)

	newEnv := func() core.Env {
		cfg := cluster.LaptopConfig()
		cfg.LocalWorkers = runtime.GOMAXPROCS(0)
		cfg.TaskMemBytes = 1 << 30
		cfg.DiskCapacityBytes = 0
		c, err := cluster.New(cfg)
		if err != nil {
			panic(err)
		}
		return core.Env{Cluster: c}
	}

	type method struct {
		name string
		run  func(env core.Env) (*bmat.BlockMatrix, core.Params, error)
	}
	methods := []method{
		{"RMM", func(env core.Env) (*bmat.BlockMatrix, core.Params, error) {
			c, err := core.MultiplyRMM(a, b, 0, env)
			return c, core.ShapeOf(a, b).RMMParams(), err
		}},
		{"CPMM", func(env core.Env) (*bmat.BlockMatrix, core.Params, error) {
			c, err := core.MultiplyCPMM(a, b, env)
			return c, core.ShapeOf(a, b).CPMMParams(), err
		}},
		{"BMM", func(env core.Env) (*bmat.BlockMatrix, core.Params, error) {
			c, err := core.MultiplyBMM(a, b, env)
			return c, core.ShapeOf(a, b).BMMParams(), err
		}},
		{"CuboidMM", func(env core.Env) (*bmat.BlockMatrix, core.Params, error) {
			return core.MultiplyAuto(a, b, env)
		}},
	}
	var ref *bmat.BlockMatrix
	for _, mth := range methods {
		env := newEnv()
		start := time.Now()
		c, params, err := mth.run(env)
		elapsed := time.Since(start)
		if err != nil {
			t.AddRow(fmt.Sprintf("%dx%d", a.IB, b.JB), mth.name, "-", "-", err.Error())
			continue
		}
		verdict := fmt.Sprintf("ok %v", params)
		if ref == nil {
			ref = c
		} else if !bmat.EqualApprox(ref, c, 1e-9) {
			verdict = "MISMATCH"
		}
		t.AddRow(fmt.Sprintf("%dx%d", a.IB, b.JB), mth.name,
			fmt.Sprintf("%d", env.Cluster.Recorder().CommunicationBytes()),
			elapsed.Round(time.Millisecond).String(), verdict)
	}
	return t, nil
}

func fmtN(n int64) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000:
		return fmt.Sprintf("%dK", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

func estCell(e costmodel.Estimate) string {
	return secOrVerdict(e.Verdict == costmodel.VerdictOK, string(e.Verdict), e.TotalSec())
}

func commCell(e costmodel.Estimate) string {
	if e.Verdict == costmodel.VerdictOOM {
		return string(e.Verdict)
	}
	return mb(e.CommunicationBytes())
}
