package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"distme/internal/cluster"
	"distme/internal/ml"
	"distme/internal/systems"
	"distme/internal/workload"
)

// GNMFScale is the default dataset scale factor for measured GNMF runs: the
// Table 3 dimensions shrink by this factor with density preserved, so a
// laptop executes the same query plan the paper timed on the cluster.
const GNMFScale = 0.002

// Fig8 regenerates Figures 8(a–c): GNMF on a Table 3 dataset, accumulated
// execution time per iteration, for all seven systems — measured for real
// on the scaled synthetic stand-in.
func Fig8(d workload.Dataset, scale float64, iterations int, seed int64) (*Table, error) {
	if scale <= 0 {
		scale = GNMFScale
	}
	scaled := d.Scaled(scale)
	t := &Table{
		ID:      fig8ID(d),
		Title:   fmt.Sprintf("GNMF on %s (measured, %d users x %d items, density %.4f)", scaled.Name, scaled.Users, scaled.Items, scaled.Density()),
		Columns: []string{"system", "method mix", "total", "per-iteration (accumulated)"},
	}
	rng := rand.New(rand.NewSource(seed))
	blockSize := pickBlockSize(scaled)
	v := scaled.RatingMatrix(rng, blockSize)

	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = runtime.GOMAXPROCS(0)
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0

	rank := pickRank(scaled, blockSize)
	for _, p := range systems.All() {
		sys, err := systems.New(p, cfg)
		if err != nil {
			return nil, err
		}
		var cum []string
		var total time.Duration
		start := time.Now()
		ok := true
		for it := 1; it <= iterations; it++ {
			if _, err := ml.GNMF(sys, v, ml.GNMFOptions{Rank: rank, Iterations: 1, Seed: seed + int64(it)}); err != nil {
				cum = append(cum, err.Error())
				ok = false
				break
			}
			total = time.Since(start)
			cum = append(cum, total.Round(time.Millisecond).String())
		}
		status := total.Round(time.Millisecond).String()
		if !ok {
			status = "failed"
		}
		t.AddRow(p.Name, methodMix(p), status, joinCells(cum))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("rank=%d, block=%d; the real datasets are proprietary — synthetic stand-ins carry Table 3's dimensions and density scaled by %g", rank, blockSize, scale))
	return t, nil
}

func fig8ID(d workload.Dataset) string {
	switch d.Name {
	case workload.MovieLens.Name:
		return "fig8a"
	case workload.Netflix.Name:
		return "fig8b"
	case workload.YahooMusic.Name:
		return "fig8c"
	default:
		return "fig8"
	}
}

// pickBlockSize keeps the scaled grid a sensible handful of blocks.
func pickBlockSize(d workload.Dataset) int {
	small := d.Items
	if d.Users < small {
		small = d.Users
	}
	bs := int(small / 6)
	if bs < 4 {
		bs = 4
	}
	if bs > 128 {
		bs = 128
	}
	return bs
}

// pickRank scales the paper's factor dimension 200 down with the dataset.
func pickRank(d workload.Dataset, blockSize int) int {
	r := blockSize / 2
	if r < 2 {
		r = 2
	}
	return r
}

// methodMix summarizes what strategies the profile will pick for GNMF's
// product shapes.
func methodMix(p systems.Profile) string {
	switch {
	case p.Name == "DistME(C)" || p.Name == "DistME(G)":
		return "CuboidMM(auto)"
	default:
		return "BMM/CPMM per chooser"
	}
}

func joinCells(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += " "
		}
		out += c
	}
	return out
}

// Fig8d regenerates Figure 8(d): GNMF on YahooMusic while sweeping the
// factor dimension, measured at scale. At paper scale the sweep is
// {200, 500, 1000}; the scaled ranks keep the same 1:2.5:5 proportions.
func Fig8d(scale float64, seed int64) (*Table, error) {
	if scale <= 0 {
		scale = GNMFScale
	}
	scaled := workload.YahooMusic.Scaled(scale)
	t := &Table{
		ID:      "fig8d",
		Title:   fmt.Sprintf("GNMF on %s while varying the factor dimension (measured)", scaled.Name),
		Columns: []string{"factor dim", "SystemML(C)", "SystemML(G)", "DistME(C)", "DistME(G)"},
	}
	rng := rand.New(rand.NewSource(seed))
	blockSize := pickBlockSize(scaled)
	v := scaled.RatingMatrix(rng, blockSize)

	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = runtime.GOMAXPROCS(0)
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0

	base := pickRank(scaled, blockSize)
	ranks := []int{base, base * 5 / 2, base * 5}
	for _, rank := range ranks {
		row := []interface{}{fmt.Sprintf("%d", rank)}
		for _, p := range []systems.Profile{systems.SystemMLC, systems.SystemMLG, systems.DistMEC, systems.DistMEG} {
			sys, err := systems.New(p, cfg)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			_, err = ml.GNMF(sys, v, ml.GNMFOptions{Rank: rank, Iterations: 2, Seed: seed})
			if err != nil {
				row = append(row, "failed")
				continue
			}
			row = append(row, time.Since(start).Round(time.Millisecond).String())
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes, "paper: MatFast O.O.M. beyond factor dimension 500; DistME(G) outperforms SystemML(G) by 3.88x at 1000")
	return t, nil
}
