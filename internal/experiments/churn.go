package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net"
	"time"

	"distme/internal/bmat"
	"distme/internal/core"
	"distme/internal/distnet"
	"distme/internal/metrics"
)

// ExtChurn measures the elastic real-network layer under membership churn:
// the same cuboid multiply runs with workers killed (and one joining)
// between dial and execution, and the report shows what the recovery
// machinery did — retries, reconnect attempts, local fallbacks — plus the
// property the paper's elasticity story hinges on: the output never
// changes, whatever the membership did.
func ExtChurn(seed int64) (*Table, error) {
	t := &Table{
		ID:    "ext-churn",
		Title: "EXTENSION: cuboid multiply under worker churn (kill/join mid-plan)",
		Columns: []string{"scenario", "live workers", "retries", "dead",
			"local fallbacks", "joined", "output identical", "elapsed"},
	}

	rng := rand.New(rand.NewSource(seed))
	a := bmat.RandomDense(rng, 128, 128, 16)
	b := bmat.RandomDense(rng, 128, 128, 16)
	params := core.Params{P: 2, Q: 2, R: 2}

	// Failure-free reference product.
	want, err := func() (*bmat.BlockMatrix, error) {
		pool, err := newChurnPool(3)
		if err != nil {
			return nil, err
		}
		defer pool.close()
		d, err := distnet.Dial(pool.addrs())
		if err != nil {
			return nil, err
		}
		defer d.Close()
		return d.Multiply(a, b, params)
	}()
	if err != nil {
		return nil, err
	}

	scenarios := []struct {
		name string
		kill int  // workers crashed after dial, before the multiply
		join bool // a fresh worker joins before the multiply
	}{
		{"no churn", 0, false},
		{"kill 1 of 3", 1, false},
		{"kill 2 of 3, join 1", 2, true},
		{"kill all 3", 3, false},
	}
	for _, sc := range scenarios {
		pool, err := newChurnPool(3)
		if err != nil {
			return nil, err
		}
		rec := &metrics.Recorder{}
		d, err := distnet.DialOptions(pool.addrs(), distnet.Options{
			HeartbeatInterval: 25 * time.Millisecond,
			RetryBackoff:      time.Millisecond,
			MaxBackoff:        10 * time.Millisecond,
			Recorder:          rec,
		})
		if err != nil {
			pool.close()
			return nil, err
		}
		for i := 0; i < sc.kill; i++ {
			pool.kill(i)
		}
		if sc.join {
			addr, err := pool.spawn()
			if err != nil {
				d.Close()
				pool.close()
				return nil, err
			}
			if err := d.AddWorker(addr); err != nil {
				d.Close()
				pool.close()
				return nil, err
			}
		}

		start := time.Now()
		got, err := d.Multiply(a, b, params)
		elapsed := time.Since(start)
		if err != nil {
			d.Close()
			pool.close()
			return nil, fmt.Errorf("churn %q: %w", sc.name, err)
		}
		stats := d.NetStats()
		t.AddRow(sc.name,
			fmt.Sprintf("%d", d.Workers()),
			fmt.Sprintf("%d", stats.CuboidRetries),
			fmt.Sprintf("%d", stats.WorkersDeclaredDead),
			fmt.Sprintf("%d", stats.LocalFallbacks),
			fmt.Sprintf("%d", stats.WorkersJoined),
			fmt.Sprintf("%v", bytesEqual(got, want)),
			fmt.Sprintf("%.1fms", float64(elapsed.Microseconds())/1000))
		d.Close()
		pool.close()
	}
	t.Notes = append(t.Notes,
		"killed workers crash hard (no drain); their cuboids reassign to survivors, and with the pool fully drained the driver computes locally",
		"'output identical' compares every float64 bitwise against the failure-free product — the elasticity layer never changes the answer")
	return t, nil
}

// bytesEqual reports float64-bitwise equality of two block matrices.
func bytesEqual(x, y *bmat.BlockMatrix) bool {
	dx, dy := x.ToDense(), y.ToDense()
	if dx.RowsN != dy.RowsN || dx.ColsN != dy.ColsN {
		return false
	}
	for i := range dx.Data {
		if math.Float64bits(dx.Data[i]) != math.Float64bits(dy.Data[i]) {
			return false
		}
	}
	return true
}

// churnPool owns in-process workers whose crashes the experiment scripts.
type churnPool struct {
	listeners []net.Listener
	workers   []*distnet.Worker
}

func newChurnPool(n int) (*churnPool, error) {
	p := &churnPool{}
	for i := 0; i < n; i++ {
		if _, err := p.spawn(); err != nil {
			p.close()
			return nil, err
		}
	}
	return p, nil
}

// spawn starts one more worker and returns its address.
func (p *churnPool) spawn() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	w, err := distnet.Serve(l)
	if err != nil {
		l.Close()
		return "", err
	}
	p.listeners = append(p.listeners, l)
	p.workers = append(p.workers, w)
	return l.Addr().String(), nil
}

// kill crashes worker i: stop accepting and sever every connection, no drain.
func (p *churnPool) kill(i int) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p.workers[i].Shutdown(ctx)
	p.listeners[i].Close()
}

func (p *churnPool) addrs() []string {
	out := make([]string, len(p.listeners))
	for i, l := range p.listeners {
		out[i] = l.Addr().String()
	}
	return out
}

func (p *churnPool) close() {
	for i := range p.workers {
		p.kill(i)
	}
}
