package experiments

import (
	"fmt"

	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/costmodel"
	"distme/internal/workload"
)

// Table2 renders the comparison of the four methods' closed forms (paper
// Table 2) and evaluates each on a concrete shape so the formulas are
// exercised by code, not just typeset.
func Table2() *Table {
	t := &Table{
		ID:      "table2",
		Title:   "Comparison among matrix multiplication methods",
		Columns: []string{"method", "repartition cost", "aggregation cost", "memory/task", "max tasks", "example cost (I=J=K=8, |A|=|B|=|C|=1GB)"},
	}
	s := core.Shape{I: 8, J: 8, K: 8, ABytes: 1e9, BBytes: 1e9, CBytes: 1e9}
	rows := []struct {
		name             string
		repart, agg, mem string
		maxTasks         string
		params           core.Params
	}{
		{"BMM", "|A| + T·|B|", "-", "|A|/T + |B| + |C|/T", "I", s.BMMParams()},
		{"CPMM", "|A| + |B|", "T·|C|", "|A|/T + |B|/T + |C|", "K", s.CPMMParams()},
		{"RMM", "J·|A| + I·|B|", "K·|C|", "J·|A|/T + I·|B|/T + K·|C|/T", "I·J·K", s.RMMParams()},
		{"CuboidMM", "Q·|A| + P·|B|", "R·|C|", "|A|/(P·R) + |B|/(R·Q) + |C|/(P·Q)", "I·J·K", core.Params{P: 2, Q: 2, R: 2}},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.repart, r.agg, r.mem, r.maxTasks,
			fmt.Sprintf("%.1f GB at %v", s.CostBytes(r.params)/1e9, r.params))
	}
	t.Notes = append(t.Notes, "example column evaluates Eq.(4) through core.Shape.CostBytes")
	return t
}

// Table3 renders the real-dataset statistics (paper Table 3) from the
// workload profiles that generate their synthetic stand-ins.
func Table3() *Table {
	t := &Table{
		ID:      "table3",
		Title:   "Statistics of real datasets",
		Columns: []string{"dataset", "ratings", "users", "items", "density"},
	}
	for _, d := range workload.Datasets() {
		t.AddRow(d.Name, d.Ratings, d.Users, d.Items, fmt.Sprintf("%.5f", d.Density()))
	}
	t.Notes = append(t.Notes,
		"proprietary rating values are substituted by uniform random non-zeros with identical dimensions and density (DESIGN.md §2)")
	return t
}

// table4Row describes one Table 4 input.
type table4Row struct {
	label   string
	m, k, n int64
}

// table4Rows lists the paper's Table 4 inputs: three families at the
// evaluated sizes (K = thousand, M = million).
func table4Rows() []table4Row {
	return []table4Row{
		{"70K x 70K x 70K", 70_000, 70_000, 70_000},
		{"80K x 80K x 80K", 80_000, 80_000, 80_000},
		{"90K x 90K x 90K", 90_000, 90_000, 90_000},
		{"100K x 100K x 100K", 100_000, 100_000, 100_000},
		{"10K x 100K x 10K", 10_000, 100_000, 10_000},
		{"10K x 500K x 10K", 10_000, 500_000, 10_000},
		{"10K x 1M x 10K", 10_000, 1_000_000, 10_000},
		{"10K x 5M x 10K", 10_000, 5_000_000, 10_000},
		{"100K x 1K x 100K", 100_000, 1_000, 100_000},
		{"250K x 1K x 250K", 250_000, 1_000, 250_000},
		{"500K x 1K x 500K", 500_000, 1_000, 500_000},
		{"750K x 1K x 750K", 750_000, 1_000, 750_000},
	}
}

// paperTable4 is the published column of optimal parameters, kept for
// side-by-side comparison in the output.
var paperTable4 = map[string]core.Params{
	"70K x 70K x 70K":    {P: 4, Q: 7, R: 4},
	"80K x 80K x 80K":    {P: 6, Q: 7, R: 4},
	"90K x 90K x 90K":    {P: 10, Q: 5, R: 5},
	"100K x 100K x 100K": {P: 7, Q: 9, R: 5},
	"10K x 100K x 10K":   {P: 1, Q: 1, R: 9},
	"10K x 500K x 10K":   {P: 1, Q: 1, R: 18},
	"10K x 1M x 10K":     {P: 1, Q: 1, R: 36},
	"10K x 5M x 10K":     {P: 1, Q: 1, R: 176},
	"100K x 1K x 100K":   {P: 9, Q: 10, R: 1},
	"250K x 1K x 250K":   {P: 8, Q: 13, R: 1},
	"500K x 1K x 500K":   {P: 17, Q: 24, R: 1},
	"750K x 1K x 750K":   {P: 26, Q: 35, R: 1},
}

// Table4 runs the Eq.(2) optimizer on the paper's twelve input shapes at
// the testbed budgets and prints our parameters next to the published ones,
// with both evaluated under Eq.(4) so the comparison is quantitative.
func Table4() *Table {
	t := &Table{
		ID:      "table4",
		Title:   "Sizes of input matrices and the optimal parameters of CuboidMM",
		Columns: []string{"input matrices", "(P*,Q*,R*) ours", "paper", "Eq.(4) ours [GB]", "Eq.(4) paper [GB]"},
	}
	cfg := cluster.PaperConfig()
	for _, r := range table4Rows() {
		w := costmodel.Workload{M: r.m, K: r.k, N: r.n, BlockSize: 1000}
		s := w.Shape()
		ours, err := core.Optimize(s, cfg.TaskMemBytes, cfg.Slots())
		oursCell, oursCost := "infeasible", "-"
		if err == nil {
			oursCell = ours.String()
			oursCost = fmt.Sprintf("%.1f", s.CostBytes(ours)/1e9)
		}
		paper := paperTable4[r.label]
		t.AddRow(r.label, oursCell, paper.String(),
			oursCost, fmt.Sprintf("%.1f", s.CostBytes(paper)/1e9))
	}
	t.Notes = append(t.Notes,
		"tie-breaking differs from the paper's unspecified search order; our parameters never cost more under the paper's own Eq.(4)",
		"the paper's 10K×N×10K rows violate its own §3.2 slot prune (P·Q·R ≥ M·Tc); we apply the stated rule, so those rows differ in R")
	return t
}

// Table5 reproduces §6.5: ScaLAPACK, SciDB and DistME(C) on three shape
// families at the testbed constants, modeled.
func Table5() *Table {
	t := &Table{
		ID:      "table5",
		Title:   "Comparison with ScaLAPACK and SciDB",
		Columns: []string{"type", "N", "ScaLAPACK", "SciDB", "DistME(C)", "DistME params"},
	}
	spark := costmodel.NewPaperModel()
	spark.Timeout = 0
	mpi := costmodel.NewMPIModel()
	mpi.Timeout = 0
	cases := []struct {
		family  string
		n       string
		m, k, j int64
	}{
		{"N x N x N", "10K", 10_000, 10_000, 10_000},
		{"N x N x N", "50K", 50_000, 50_000, 50_000},
		{"5K x N x 5K", "1M", 5_000, 1_000_000, 5_000},
		{"5K x N x 5K", "5M", 5_000, 5_000_000, 5_000},
		{"N x 1K x N", "100K", 100_000, 1_000, 100_000},
		{"N x 1K x N", "500K", 500_000, 1_000, 500_000},
	}
	for _, c := range cases {
		w := costmodel.Workload{M: c.m, K: c.k, N: c.j, BlockSize: 1000}
		scal := mpi.EstimateSUMMA(w, 9, 10, "ScaLAPACK")
		scidb := mpi.EstimateSciDB(w, 9, 10)
		distme := spark.EstimateAuto(w, false)
		t.AddRow(c.family, c.n,
			secOrVerdict(scal.Verdict == costmodel.VerdictOK, string(scal.Verdict), scal.TotalSec()),
			secOrVerdict(scidb.Verdict == costmodel.VerdictOK, string(scidb.Verdict), scidb.TotalSec()),
			secOrVerdict(distme.Verdict == costmodel.VerdictOK, string(distme.Verdict), distme.TotalSec()),
			distme.Params.String())
	}
	t.Notes = append(t.Notes,
		"paper shapes: ScaLAPACK wins small N×N×N on overhead, loses ≈3x on the common large dimension, and both HPC systems O.O.M. on 500K×1K×500K")
	return t
}
