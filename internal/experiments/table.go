// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 and Appendix B). Each experiment returns a Table that the
// distme-bench command prints and the repository's benchmarks execute.
// Paper-scale rows come from the costmodel plane (the matrices do not fit a
// laptop); measured rows run the real engine at scaled-down sizes — both
// planes share the optimizer and the Table 2 cost formulas, so the paper's
// qualitative results (who wins, by what factor, where the O.O.M. /
// E.D.C. / T.O. boundaries fall) are reproduced by executable code.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated table or figure, as rows of formatted cells.
type Table struct {
	// ID is the experiment identifier, e.g. "fig6a" or "table4".
	ID string
	// Title describes the experiment as the paper captions it.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, one slice per row.
	Rows [][]string
	// Notes carry reproduction caveats shown under the table.
	Notes []string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v >= 100 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) && len(cell) < widths[i] {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// secOrVerdict renders a modeled outcome the way the paper's figures do.
func secOrVerdict(ok bool, verdict string, sec float64) string {
	if !ok {
		return verdict
	}
	return fmt.Sprintf("%.0fs", sec)
}

// mb renders bytes as whole megabytes, the unit of Figures 6(d–f).
func mb(n int64) string {
	return fmt.Sprintf("%d", n/1e6)
}

// gb renders bytes as gigabytes, the unit of Figure 7(f).
func gb(n int64) string {
	return fmt.Sprintf("%.1f", float64(n)/1e9)
}
