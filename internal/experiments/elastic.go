package experiments

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/engine"
	"distme/internal/storage"
)

// ExtElastic measures the recovery overhead of the elastic-execution
// subsystem: one workload multiplied failure-free and then under mixed
// injected faults (crashes, injected O.O.M., stragglers, shuffle-fetch
// failures) at 5% and 20% per-attempt rates. Each chaos row reports the
// retry/speculation/recomputation work spent and verifies the output is
// byte-identical to the failure-free run — elasticity must cost time, never
// correctness.
func ExtElastic(seed int64) (*Table, error) {
	t := &Table{
		ID:      "ext-elastic",
		Title:   "EXTENSION: fault-injected recovery overhead (measured)",
		Columns: []string{"fault rate", "elapsed", "retries", "speculative", "recomputed", "faults", "result"},
	}
	rng := rand.New(rand.NewSource(seed))
	const bs = 64
	a := bmat.RandomDense(rng, 16*bs, 12*bs, bs)
	b := bmat.RandomDense(rng, 12*bs, 16*bs, bs)

	run := func(f cluster.Faults) (*bmat.BlockMatrix, *engine.Report, error) {
		cfg := cluster.LaptopConfig()
		cfg.TaskMemBytes = 1 << 30
		cfg.DiskCapacityBytes = 0
		cfg.TaskRetries = 4
		cfg.RetryBackoff = time.Millisecond
		cfg.Speculation = true
		cfg.Faults = f
		e, err := engine.New(engine.Config{Cluster: cfg})
		if err != nil {
			return nil, nil, err
		}
		defer e.Close()
		c, rep, err := e.MultiplyOpt(a, b, engine.MulOptions{Method: engine.MethodAuto})
		return c, rep, err
	}

	mixed := func(rate float64) cluster.Faults {
		return cluster.Faults{
			Seed:           seed,
			CrashRate:      rate,
			OOMRate:        rate / 2,
			StragglerRate:  rate,
			StragglerDelay: 5 * time.Millisecond,
			FetchFailRate:  rate,
		}
	}

	base, baseRep, err := run(cluster.Faults{})
	if err != nil {
		return nil, err
	}
	var want bytes.Buffer
	if err := storage.Write(&want, base); err != nil {
		return nil, err
	}
	t.AddRow("0% (baseline)", fmtDur(baseRep.Elapsed), 0, 0, 0, 0, "OK")

	for _, rate := range []float64{0.05, 0.20} {
		c, rep, err := run(mixed(rate))
		if err != nil {
			return nil, err
		}
		var got bytes.Buffer
		if err := storage.Write(&got, c); err != nil {
			return nil, err
		}
		result := "IDENTICAL"
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			result = "DIVERGED"
		}
		el := rep.Elastic
		t.AddRow(fmt.Sprintf("%.0f%% mixed", rate*100),
			fmtDur(rep.Elapsed),
			el.TaskRetries, el.SpeculativeLaunched, el.RecomputedPartials, el.FaultsInjected,
			result)
	}
	t.Notes = append(t.Notes,
		"mixed faults: crash+straggler+fetch at the stated per-attempt rate, injected O.O.M. at half of it",
		"result compares the storage-format bytes of the chaos run against the failure-free baseline")
	return t, nil
}

// fmtDur renders a duration with millisecond resolution for table rows.
func fmtDur(d time.Duration) string {
	return d.Round(100 * time.Microsecond).String()
}
