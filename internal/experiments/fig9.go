package experiments

import (
	"fmt"

	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/costmodel"
)

// Fig9 regenerates Appendix B (Figure 9): the elapsed time and transferred
// data while varying (P,Q,R) around the optimum for the 70K×70K×70K
// dataset. The paper sweeps (P,R) at fixed Q values and shows the optimizer
// landing on the minimum of both curves.
func Fig9() *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "optimization of (P,Q,R) on 70K x 70K x 70K",
		Columns: []string{"(P,Q,R)", "feasible(Eq.3)", "Cost() [GB]", "modeled elapsed", "modeled comm [GB]"},
	}
	m := costmodel.NewPaperModel()
	m.Timeout = 0
	w := costmodel.Workload{M: 70_000, K: 70_000, N: 70_000, BlockSize: 1000}
	s := w.Shape()
	cfg := cluster.PaperConfig()

	opt, err := core.Optimize(s, cfg.TaskMemBytes, cfg.Slots())
	if err != nil {
		t.Notes = append(t.Notes, "optimizer infeasible: "+err.Error())
		return t
	}

	// Sweep each axis around the optimum, as Figure 9 perturbs (P,R) and Q.
	seen := map[core.Params]bool{}
	var sweep []core.Params
	add := func(p core.Params) {
		if p.P < 1 || p.Q < 1 || p.R < 1 || p.P > s.I || p.Q > s.J || p.R > s.K || seen[p] {
			return
		}
		seen[p] = true
		sweep = append(sweep, p)
	}
	add(opt)
	for d := 1; d <= 3; d++ {
		add(core.Params{P: opt.P + d, Q: opt.Q, R: opt.R})
		add(core.Params{P: opt.P - d, Q: opt.Q, R: opt.R})
		add(core.Params{P: opt.P, Q: opt.Q + d, R: opt.R})
		add(core.Params{P: opt.P, Q: opt.Q - d, R: opt.R})
		add(core.Params{P: opt.P, Q: opt.Q, R: opt.R + d})
		add(core.Params{P: opt.P, Q: opt.Q, R: opt.R - d})
	}

	bestCost := s.CostBytes(opt)
	for _, p := range sweep {
		feasible := s.MemBytes(p) <= float64(cfg.TaskMemBytes)
		est := m.EstimateCuboid(w, p, true)
		label := p.String()
		if p == opt {
			label += " *optimal"
		}
		t.AddRow(label,
			fmt.Sprintf("%v", feasible),
			fmt.Sprintf("%.1f", s.CostBytes(p)/1e9),
			estCell(est),
			gb(est.CommunicationBytes()))
		if feasible && p.Tasks() >= cfg.Slots() && s.CostBytes(p) < bestCost {
			t.Notes = append(t.Notes, fmt.Sprintf("REGRESSION: %v beats the optimizer's %v", p, opt))
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: the starred parameters minimize both Cost() and the measured transfer; neighbors cost more or violate the memory budget")
	return t
}
