package experiments

import (
	"fmt"
	"math/rand"
	"runtime"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/core"
	"distme/internal/costmodel"
	"distme/internal/engine"
	"distme/internal/gpu"
	"distme/internal/systems"
)

// sysEstimate models one system (profile) on one workload: the profile's
// chooser picks the method, the cost model executes it.
func sysEstimate(p systems.Profile, w costmodel.Workload, m costmodel.Model) costmodel.Estimate {
	opts := p.Choose(w.Shape(), m.Cfg)
	var est costmodel.Estimate
	switch opts.Method {
	case engine.MethodBMM:
		est = m.EstimateBMM(w, p.UseGPU)
	case engine.MethodCPMM:
		est = m.EstimateCPMM(w, p.UseGPU)
	case engine.MethodRMM:
		est = m.EstimateRMM(w, 0, p.UseGPU)
	default:
		est = m.EstimateAuto(w, p.UseGPU)
	}
	est.Label = p.Name
	return est
}

// fig7Systems is the column order of Figure 7(a–d).
func fig7Systems() []systems.Profile {
	return []systems.Profile{
		systems.MatFastC, systems.MatFastG,
		systems.SystemMLC, systems.SystemMLG,
		systems.DistMEC, systems.DistMEG,
	}
}

// fig7Table builds one systems-comparison subfigure.
func fig7Table(id, title, nLabel string, workloads map[string]costmodel.Workload, order []string) *Table {
	t := &Table{ID: id, Title: title}
	t.Columns = []string{nLabel}
	for _, p := range fig7Systems() {
		t.Columns = append(t.Columns, p.Name)
	}
	m := costmodel.NewPaperModel()
	m.Timeout = 0 // §6.3 has no 4000 s cap (Fig 7(c) runs for hours)
	for _, label := range order {
		w := workloads[label]
		row := []interface{}{label}
		for _, p := range fig7Systems() {
			row = append(row, estCell(sysEstimate(p, w, m)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig7a regenerates Figure 7(a): two large (general) matrices.
func Fig7a() *Table {
	ws := map[string]costmodel.Workload{}
	var order []string
	for _, n := range []int64{30_000, 40_000, 50_000} {
		l := fmtN(n)
		order = append(order, l)
		ws[l] = costmodel.Workload{M: n, K: n, N: n, BlockSize: 1000}
	}
	return fig7Table("fig7a", "systems on two general matrices (N x N x N)", "N", ws, order)
}

// Fig7b regenerates Figure 7(b): common large dimension 5K×N×5K.
func Fig7b() *Table {
	ws := map[string]costmodel.Workload{}
	var order []string
	for _, n := range []int64{5_000_000, 10_000_000, 20_000_000} {
		l := fmtN(n)
		order = append(order, l)
		ws[l] = costmodel.Workload{M: 5_000, K: n, N: 5_000, BlockSize: 1000}
	}
	t := fig7Table("fig7b", "systems on a common large dimension (5K x N x 5K)", "N", ws, order)
	t.Notes = append(t.Notes, "at N=20M the paper's SystemML/MatFast exceed 36TB of disk (E.D.C.) while DistME spills only ~1.5TB")
	return t
}

// Fig7c regenerates Figure 7(c): two large dimensions N×1K×1M.
func Fig7c() *Table {
	ws := map[string]costmodel.Workload{}
	var order []string
	for _, n := range []int64{1_000_000, 1_500_000, 2_000_000} {
		l := fmtN(n)
		order = append(order, l)
		ws[l] = costmodel.Workload{M: n, K: 1_000, N: 1_000_000, BlockSize: 1000}
	}
	t := fig7Table("fig7c", "systems on two large dimensions (N x 1K x 1M)", "N", ws, order)
	t.Notes = append(t.Notes, "paper: MatFast O.O.M. everywhere (CPMM), SystemML picks RMM and hits E.D.C. from 1.5M, DistME runs all sizes")
	return t
}

// Fig7d regenerates Figure 7(d): one large sparse matrix times one small
// dense matrix, sweeping sparsity.
func Fig7d() *Table {
	ws := map[string]costmodel.Workload{}
	var order []string
	for _, sp := range []float64{0.0001, 0.001, 0.01} {
		l := fmt.Sprintf("%g", sp)
		order = append(order, l)
		ws[l] = costmodel.Workload{M: 500_000, K: 1_000_000, N: 1_000, BlockSize: 1000, SparsityA: sp}
	}
	return fig7Table("fig7d", "sparse x dense (500K x 1M x 1K) vs sparsity", "sparsity", ws, order)
}

// Fig7e regenerates Figure 7(e): the time ratio of the three steps for
// MatFast, SystemML and DistME on the 40K³ and 5K×5M×5K workloads.
func Fig7e() *Table {
	t := &Table{
		ID:      "fig7e",
		Title:   "time ratios of the three steps (%)",
		Columns: []string{"workload", "system", "repartition", "local multiply", "aggregation"},
	}
	m := costmodel.NewPaperModel()
	m.Timeout = 0
	cases := map[string]costmodel.Workload{
		"40Kx40Kx40K": {M: 40_000, K: 40_000, N: 40_000, BlockSize: 1000},
		"5Kx5Mx5K":    {M: 5_000, K: 5_000_000, N: 5_000, BlockSize: 1000},
	}
	for _, wl := range []string{"40Kx40Kx40K", "5Kx5Mx5K"} {
		for _, p := range []systems.Profile{systems.MatFastC, systems.SystemMLC, systems.DistMEC} {
			est := sysEstimate(p, cases[wl], m)
			if est.Verdict != costmodel.VerdictOK {
				t.AddRow(wl, p.Name, string(est.Verdict), "-", "-")
				continue
			}
			r, l, a := est.StepRatios()
			t.AddRow(wl, p.Name,
				fmt.Sprintf("%.1f", 100*r), fmt.Sprintf("%.1f", 100*l), fmt.Sprintf("%.1f", 100*a))
		}
	}
	t.Notes = append(t.Notes, "paper shape: DistME's repartition+aggregation share is the smallest of the three systems")
	return t
}

// Fig7f regenerates Figure 7(f): communication volume (GB) per system on
// four workloads.
func Fig7f() *Table {
	t := &Table{
		ID:      "fig7f",
		Title:   "communication cost per system (GB)",
		Columns: []string{"workload", "MatFast", "SystemML", "DistME"},
	}
	m := costmodel.NewPaperModel()
	m.Timeout = 0
	cases := []struct {
		label string
		w     costmodel.Workload
	}{
		{"40Kx40Kx40K", costmodel.Workload{M: 40_000, K: 40_000, N: 40_000, BlockSize: 1000}},
		{"5Kx5Mx5K", costmodel.Workload{M: 5_000, K: 5_000_000, N: 5_000, BlockSize: 1000}},
		{"1Mx1Kx1M", costmodel.Workload{M: 1_000_000, K: 1_000, N: 1_000_000, BlockSize: 1000}},
		{"500Kx1Mx1K(0.0001)", costmodel.Workload{M: 500_000, K: 1_000_000, N: 1_000, BlockSize: 1000, SparsityA: 0.0001}},
	}
	for _, c := range cases {
		row := []interface{}{c.label}
		for _, p := range []systems.Profile{systems.MatFastC, systems.SystemMLC, systems.DistMEC} {
			est := sysEstimate(p, c.w, m)
			if est.Verdict != costmodel.VerdictOK {
				row = append(row, string(est.Verdict))
			} else {
				row = append(row, gb(est.CommunicationBytes()))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig7g regenerates Figure 7(g): GPU core utilization for dense and sparse
// inputs, measured on the simulated device by really streaming subcuboids
// (DistME) versus block-level pairs (the RMM-style path the retrofitted
// systems degrade to under hash partitioning).
func Fig7g(seed int64) (*Table, error) {
	t := &Table{
		ID:      "fig7g",
		Title:   "GPU core utilization (%), measured on the simulated device",
		Columns: []string{"input", "block-level (MatFast/SystemML-style)", "streamed subcuboids (DistME)"},
	}
	rng := rand.New(rand.NewSource(seed))
	// Constants scaled so one dense block-pair kernel takes ≈30× one block
	// copy — the compute/bus balance of dgemm on the testbed GPU, where the
	// streamed path keeps cores nearly saturated while per-voxel copies
	// starve them.
	spec := gpu.Spec{
		MemPerTaskBytes: 1 << 20,
		PCIEBandwidth:   1e9,
		Flops:           1e9,
		MaxStreams:      32,
	}
	type input struct {
		name string
		a, b *bmat.BlockMatrix
	}
	inputs := []input{
		{"dense", bmat.RandomDense(rng, 128, 128, 16), bmat.RandomDense(rng, 128, 128, 16)},
		{"sparse", bmat.RandomSparse(rng, 128, 128, 16, 0.05), bmat.RandomDense(rng, 128, 128, 16)},
	}
	for _, in := range inputs {
		cuboid := &core.Cuboid{ILo: 0, IHi: in.a.IB, JLo: 0, JHi: in.b.JB, KLo: 0, KHi: in.a.JB, A: in.a, B: in.b}

		streamed := gpu.NewMultiplier(spec, nil)
		if _, err := streamed.Multiply(cuboid); err != nil {
			return nil, err
		}

		blockLevel := &gpu.BlockLevel{Device: gpu.NewDevice(spec)}
		for i := 0; i < in.a.IB; i++ {
			for k := 0; k < in.a.JB; k++ {
				ab := in.a.Block(i, k)
				if ab == nil {
					continue
				}
				for j := 0; j < in.b.JB; j++ {
					bb := in.b.Block(k, j)
					if bb == nil {
						continue
					}
					if _, err := blockLevel.MultiplyPair(ab, bb); err != nil {
						return nil, err
					}
				}
			}
		}
		t.AddRow(in.name,
			fmt.Sprintf("%.1f", 100*blockLevel.Device.Stats().Utilization()),
			fmt.Sprintf("%.1f", 100*streamed.Device.Stats().Utilization()))
	}
	t.Notes = append(t.Notes, "paper: DistME 98.4% dense / 79.7% sparse vs 40-73% for the retrofitted systems; the shape to match is streamed > block-level on both inputs")
	return t, nil
}

// Fig7Measured runs the three CPU systems for real at laptop scale on a
// general workload and reports measured communication — the measured-plane
// counterpart of Figures 7(a)/(f).
func Fig7Measured(seed int64) (*Table, error) {
	t := &Table{
		ID:      "fig7-measured",
		Title:   "systems on two general matrices (measured at laptop scale)",
		Columns: []string{"system", "method chosen", "comm bytes", "result"},
	}
	rng := rand.New(rand.NewSource(seed))
	a := bmat.RandomDense(rng, 36*8, 36*8, 8)
	b := bmat.RandomDense(rng, 36*8, 36*8, 8)
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = runtime.GOMAXPROCS(0)
	cfg.TaskMemBytes = 3 << 20 // tight enough that strategies diverge
	cfg.DiskCapacityBytes = 0

	var ref *bmat.BlockMatrix
	for _, p := range []systems.Profile{systems.MatFastC, systems.SystemMLC, systems.DistMEC} {
		sys, err := systems.New(p, cfg)
		if err != nil {
			return nil, err
		}
		c, rep, err := sys.MultiplyReport(a, b)
		if err != nil {
			t.AddRow(p.Name, "-", "-", err.Error())
			continue
		}
		verdict := "ok"
		if ref == nil {
			ref = c
		} else if !bmat.EqualApprox(ref, c, 1e-9) {
			verdict = "MISMATCH"
		}
		t.AddRow(p.Name, rep.Method.String(),
			fmt.Sprintf("%d", rep.Comm.CommunicationBytes()), verdict)
	}
	return t, nil
}
