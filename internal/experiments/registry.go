package experiments

import (
	"fmt"
	"sort"

	"distme/internal/workload"
)

// Runner produces the tables of one experiment.
type Runner func() ([]*Table, error)

// defaultSeed keeps every registry run deterministic.
const defaultSeed = 42

// registry maps experiment IDs to runners, in the paper's order.
func registry() map[string]Runner {
	one := func(t *Table) ([]*Table, error) { return []*Table{t}, nil }
	return map[string]Runner{
		"table2": func() ([]*Table, error) { return one(Table2()) },
		"table3": func() ([]*Table, error) { return one(Table3()) },
		"table4": func() ([]*Table, error) { return one(Table4()) },
		"table5": func() ([]*Table, error) { return one(Table5()) },
		"fig6a":  func() ([]*Table, error) { return one(Fig6Elapsed(workload.General)) },
		"fig6b":  func() ([]*Table, error) { return one(Fig6Elapsed(workload.CommonLargeDim)) },
		"fig6c":  func() ([]*Table, error) { return one(Fig6Elapsed(workload.TwoLargeDims)) },
		"fig6d":  func() ([]*Table, error) { return one(Fig6Comm(workload.General)) },
		"fig6e":  func() ([]*Table, error) { return one(Fig6Comm(workload.CommonLargeDim)) },
		"fig6f":  func() ([]*Table, error) { return one(Fig6Comm(workload.TwoLargeDims)) },
		"fig6-measured": func() ([]*Table, error) {
			var out []*Table
			for _, f := range []workload.Family{workload.General, workload.CommonLargeDim, workload.TwoLargeDims} {
				t, err := Fig6Measured(f, defaultSeed)
				if err != nil {
					return nil, err
				}
				out = append(out, t)
			}
			return out, nil
		},
		"fig7a": func() ([]*Table, error) { return one(Fig7a()) },
		"fig7b": func() ([]*Table, error) { return one(Fig7b()) },
		"fig7c": func() ([]*Table, error) { return one(Fig7c()) },
		"fig7d": func() ([]*Table, error) { return one(Fig7d()) },
		"fig7e": func() ([]*Table, error) { return one(Fig7e()) },
		"fig7f": func() ([]*Table, error) { return one(Fig7f()) },
		"fig7g": func() ([]*Table, error) {
			t, err := Fig7g(defaultSeed)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		},
		"fig7-measured": func() ([]*Table, error) {
			t, err := Fig7Measured(defaultSeed)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		},
		"fig8a": fig8Runner(workload.MovieLens),
		"fig8b": fig8Runner(workload.Netflix),
		"fig8c": fig8Runner(workload.YahooMusic),
		"fig8d": func() ([]*Table, error) {
			t, err := Fig8d(0, defaultSeed)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		},
		"fig9":         func() ([]*Table, error) { return one(Fig9()) },
		"ext-multigpu": func() ([]*Table, error) { return one(ExtMultiGPU()) },
		"ext-balance": func() ([]*Table, error) {
			t, err := ExtLoadBalance(defaultSeed)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		},
		"ext-crmm": func() ([]*Table, error) {
			t, err := ExtCRMM(defaultSeed)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		},
		"ext-cest": func() ([]*Table, error) {
			t, err := ExtSparseCEstimate(defaultSeed)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		},
		"ext-chain": func() ([]*Table, error) {
			t, err := ExtChainOrder()
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		},
		"ext-blocksize": func() ([]*Table, error) { return one(ExtBlockSize()) },
		"ext-wire": func() ([]*Table, error) {
			t, err := ExtWire(defaultSeed)
			if err != nil {
				return nil, err
			}
			tc, err := ExtWireCache(defaultSeed)
			if err != nil {
				return nil, err
			}
			return []*Table{t, tc}, nil
		},
		"ext-mps": func() ([]*Table, error) {
			t, err := ExtMPSContention(defaultSeed)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		},
		"ext-churn": func() ([]*Table, error) {
			t, err := ExtChurn(defaultSeed)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		},
		"ext-elastic": func() ([]*Table, error) {
			t, err := ExtElastic(defaultSeed)
			if err != nil {
				return nil, err
			}
			return []*Table{t}, nil
		},
	}
}

func fig8Runner(d workload.Dataset) Runner {
	return func() ([]*Table, error) {
		t, err := Fig8(d, 0, 10, defaultSeed)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// IDs lists every registered experiment in a stable order.
func IDs() []string {
	m := registry()
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string) ([]*Table, error) {
	r, ok := registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r()
}

// RunAll executes every experiment in order.
func RunAll() ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		ts, err := Run(id)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}
