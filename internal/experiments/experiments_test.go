package experiments

import (
	"strings"
	"testing"

	"distme/internal/workload"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddRow(3.5, int64(7))
	tb.Notes = append(tb.Notes, "a note")
	s := tb.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "3.50", "7", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTable2ContainsAllMethods(t *testing.T) {
	s := Table2().String()
	for _, m := range []string{"BMM", "CPMM", "RMM", "CuboidMM"} {
		if !strings.Contains(s, m) {
			t.Errorf("Table 2 missing %s", m)
		}
	}
}

func TestTable3MatchesPaperRows(t *testing.T) {
	s := Table3().String()
	for _, want := range []string{"27753444", "100480507", "717872016"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 3 missing ratings count %s", want)
		}
	}
}

func TestTable4StructuralPatterns(t *testing.T) {
	tb := Table4()
	if len(tb.Rows) != 12 {
		t.Fatalf("Table 4 has %d rows, want 12", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		label, ours := row[0], row[1]
		if ours == "infeasible" {
			t.Errorf("%s: optimizer infeasible", label)
			continue
		}
		switch {
		case strings.Contains(label, "x 1K x"):
			if !strings.HasSuffix(ours, ",1)") {
				t.Errorf("%s: params %s should end with R=1", label, ours)
			}
		case strings.HasPrefix(label, "10K x"):
			// The paper publishes (1,1,R) here, which violates its own
			// §3.2 slot prune (R < M·Tc); under the stated rule the k-axis
			// still dominates but P·Q stays minimal. Assert the structure.
			p := parseParams(t, ours)
			if p.R <= p.P || p.R <= p.Q {
				t.Errorf("%s: params %s should be k-dominant", label, ours)
			}
			if p.P > 2 || p.Q > 2 {
				t.Errorf("%s: params %s should keep P,Q minimal", label, ours)
			}
		}
	}
}

func TestTable5Verdicts(t *testing.T) {
	s := Table5().String()
	if !strings.Contains(s, "O.O.M.") {
		t.Error("Table 5 should show HPC O.O.M. on the output-heavy shape")
	}
}

func TestFig6ElapsedPatterns(t *testing.T) {
	// Fig 6(a): BMM column must flip to O.O.M. at 90K.
	a := Fig6Elapsed(workload.General)
	if got := a.Rows[2][3]; got != "O.O.M." {
		t.Errorf("fig6a BMM at 90K = %q, want O.O.M.", got)
	}
	if got := a.Rows[0][3]; got == "O.O.M." {
		t.Errorf("fig6a BMM at 70K should run, got %q", got)
	}
	// Fig 6(c): CPMM O.O.M. from 500K.
	c := Fig6Elapsed(workload.TwoLargeDims)
	if got := c.Rows[2][2]; got != "O.O.M." {
		t.Errorf("fig6c CPMM at 500K = %q, want O.O.M.", got)
	}
}

func TestFig6CommCuboidLowest(t *testing.T) {
	// On the first two families CuboidMM has the lowest communication of
	// the runnable methods; on the two-large-dimensions family CPMM/BMM
	// replicate almost nothing (and fail on memory instead, exactly as in
	// Fig 6(f)), so there the assertion is CuboidMM ≤ RMM only.
	for _, tc := range []struct {
		f    workload.Family
		cols []int
	}{
		{workload.General, []int{1, 2, 3}},
		{workload.CommonLargeDim, []int{1, 2, 3}},
		{workload.TwoLargeDims, []int{1}},
	} {
		tb := Fig6Comm(tc.f)
		for _, row := range tb.Rows {
			cub := row[4]
			for _, col := range tc.cols {
				if row[col] == "O.O.M." || cub == "O.O.M." {
					continue
				}
				if atoiSafe(cub) > atoiSafe(row[col]) {
					t.Errorf("%v row %s: CuboidMM comm %s exceeds %s's %s",
						tc.f, row[0], cub, tb.Columns[col], row[col])
				}
			}
		}
	}
}

// parseParams parses "(p,q,r)" cells.
func parseParams(t *testing.T, s string) (p struct{ P, Q, R int }) {
	t.Helper()
	if n, err := fmtSscanf(s, &p.P, &p.Q, &p.R); n != 3 || err != nil {
		t.Fatalf("bad params cell %q: %v", s, err)
	}
	return p
}

func fmtSscanf(s string, p, q, r *int) (int, error) {
	var err error
	n := 0
	cur := 0
	sign := false
	vals := []*int{p, q, r}
	for _, ch := range s {
		switch {
		case ch >= '0' && ch <= '9':
			cur = cur*10 + int(ch-'0')
			sign = true
		case ch == ',' || ch == ')':
			if sign && n < 3 {
				*vals[n] = cur
				n++
			}
			cur, sign = 0, false
		}
	}
	return n, err
}

func atoiSafe(s string) int64 {
	var n int64
	for _, r := range s {
		if r < '0' || r > '9' {
			return 1 << 62
		}
		n = n*10 + int64(r-'0')
	}
	return n
}

func TestFig6MeasuredAllMethodsAgree(t *testing.T) {
	for _, f := range []workload.Family{workload.General, workload.CommonLargeDim, workload.TwoLargeDims} {
		tb, err := Fig6Measured(f, 1)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if strings.Contains(tb.String(), "MISMATCH") {
			t.Errorf("%v: methods disagree:\n%s", f, tb)
		}
	}
}

func TestFig7Tables(t *testing.T) {
	if s := Fig7a().String(); !strings.Contains(s, "DistME(G)") {
		t.Error("fig7a missing DistME(G) column")
	}
	if s := Fig7c().String(); !strings.Contains(s, "O.O.M.") {
		t.Error("fig7c should show MatFast O.O.M.")
	}
	if s := Fig7e().String(); !strings.Contains(s, "local multiply") {
		t.Error("fig7e missing step columns")
	}
	if s := Fig7f().String(); !strings.Contains(s, "500Kx1Mx1K") {
		t.Error("fig7f missing sparse workload")
	}
}

func TestFig7gStreamedBeatsBlockLevel(t *testing.T) {
	tb, err := Fig7g(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		block := parseFloat(row[1])
		streamed := parseFloat(row[2])
		if streamed <= block {
			t.Errorf("%s: streamed utilization %.1f should beat block-level %.1f", row[0], streamed, block)
		}
	}
}

func parseFloat(s string) float64 {
	var v float64
	var frac float64 = -1
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
			if frac < 0 {
				v = v*10 + float64(r-'0')
			} else {
				v += float64(r-'0') * frac
				frac /= 10
			}
		case r == '.':
			frac = 0.1
		}
	}
	return v
}

func TestFig7MeasuredDistMELowestComm(t *testing.T) {
	tb, err := Fig7Measured(1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tb.String(), "MISMATCH") {
		t.Fatalf("systems disagree:\n%s", tb)
	}
	var distme, sysml int64
	for _, row := range tb.Rows {
		switch row[0] {
		case "DistME(C)":
			distme = atoiSafe(row[2])
		case "SystemML(C)":
			sysml = atoiSafe(row[2])
		}
	}
	if distme == 0 || sysml == 0 {
		t.Fatalf("missing rows:\n%s", tb)
	}
	if distme > sysml {
		t.Errorf("DistME comm %d exceeds SystemML %d", distme, sysml)
	}
}

func TestFig8RunsAllSevenSystems(t *testing.T) {
	tb, err := Fig8(workload.MovieLens, 0.001, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("fig8 has %d system rows, want 7", len(tb.Rows))
	}
	if strings.Contains(tb.String(), "failed") {
		t.Errorf("a system failed:\n%s", tb)
	}
}

func TestFig8dSweepsThreeRanks(t *testing.T) {
	tb, err := Fig8d(0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("fig8d has %d rank rows, want 3", len(tb.Rows))
	}
}

func TestFig9OptimizerIsMinimal(t *testing.T) {
	tb := Fig9()
	for _, n := range tb.Notes {
		if strings.HasPrefix(n, "REGRESSION") {
			t.Fatal(n)
		}
	}
	if !strings.Contains(tb.String(), "*optimal") {
		t.Error("fig9 missing the optimal marker")
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run is slow")
	}
	ids := IDs()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range []string{"table2", "fig6d", "fig7e", "fig9"} {
		ts, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(ts) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
	}
	if _, err := Run("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExtMultiGPUScaling(t *testing.T) {
	tb := ExtMultiGPU()
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tb.Rows))
	}
	// Local seconds must strictly shrink with device count.
	l1 := parseFloat(tb.Rows[0][1])
	l4 := parseFloat(tb.Rows[2][1])
	if l4 >= l1 {
		t.Fatalf("4-GPU local (%g) not below 1-GPU (%g)", l4, l1)
	}
	// Communication must be identical across rows.
	if tb.Rows[0][2] != tb.Rows[2][2] {
		t.Fatal("device count changed network time")
	}
}

func TestExtLoadBalanceIdenticalProducts(t *testing.T) {
	tb, err := ExtLoadBalance(2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tb.String(), "MISMATCH") {
		t.Fatalf("balanced schedule changed the product:\n%s", tb)
	}
}

func TestExtCRMMCuboidCheaper(t *testing.T) {
	tb, err := ExtCRMM(2)
	if err != nil {
		t.Fatal(err)
	}
	crmm := atoiSafe(tb.Rows[0][1])
	cuboid := atoiSafe(tb.Rows[1][1])
	if cuboid >= crmm {
		t.Fatalf("CuboidMM (%d) should move less than CRMM (%d)", cuboid, crmm)
	}
	if strings.Contains(tb.String(), "MISMATCH") {
		t.Fatal("CRMM and CuboidMM disagree")
	}
}

func TestExtSparseCEstimateStory(t *testing.T) {
	tb, err := ExtSparseCEstimate(2)
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	if !strings.Contains(s, "O.O.M.") {
		t.Fatalf("the under-provisioned estimate should O.O.M.:\n%s", s)
	}
	if strings.Contains(tb.Rows[0][3], "O.O.M.") {
		t.Fatalf("the worst-case plan must survive:\n%s", s)
	}
}

func TestExtChainOrderImprovement(t *testing.T) {
	tb, err := ExtChainOrder()
	if err != nil {
		t.Fatal(err)
	}
	naive := parseFloat(tb.Rows[0][1])
	best := parseFloat(tb.Rows[1][1])
	if best >= naive {
		t.Fatalf("DP ordering (%g) not below naive (%g)", best, naive)
	}
}

func TestExtMPSContentionDecays(t *testing.T) {
	tb, err := ExtMPSContention(2)
	if err != nil {
		t.Fatal(err)
	}
	// Contended utilization at 8 tasks must be below contended at 1 task,
	// and below the partitioned model at 8 tasks.
	shared1 := parseFloat(tb.Rows[0][2])
	shared8 := parseFloat(tb.Rows[2][2])
	part8 := parseFloat(tb.Rows[2][1])
	if shared8 >= shared1 {
		t.Fatalf("contention should decay utilization: 1 task %.1f, 8 tasks %.1f", shared1, shared8)
	}
	if shared8 >= part8 {
		t.Fatalf("contended %.1f should be below partitioned %.1f at 8 tasks", shared8, part8)
	}
}

func TestExtBlockSizeSweep(t *testing.T) {
	tb := ExtBlockSize()
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// The default 1000 row must be runnable.
	if strings.Contains(tb.Rows[2][4], "O.O.M.") {
		t.Fatal("default block size failed")
	}
	// The too-coarse grid loses parallelism (27 tasks on 90 slots): its
	// elapsed time must exceed the default's even though communication
	// does not rise.
	if parseFloat(tb.Rows[5][4]) <= parseFloat(tb.Rows[2][4]) {
		t.Fatalf("coarse grid total %s should exceed default %s", tb.Rows[5][4], tb.Rows[2][4])
	}
}

func TestExtWireOverheadBounded(t *testing.T) {
	tb, err := ExtWire(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		predicted := atoiSafe(row[1])
		wire := atoiSafe(row[2])
		if wire < predicted {
			t.Fatalf("%s: wire %d below the Eq.(4) payload %d", row[0], wire, predicted)
		}
		if wire > predicted*2 {
			t.Fatalf("%s: framing overhead beyond 100%%: %d vs %d", row[0], wire, predicted)
		}
	}
}

func TestExtWireCacheSavesBytes(t *testing.T) {
	tb, err := ExtWireCache(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	coldSent, warmSent := atoiSafe(tb.Rows[0][1]), atoiSafe(tb.Rows[1][1])
	if warmSent >= coldSent {
		t.Fatalf("warm cache sent %d bytes, cold sent %d — dedup saved nothing", warmSent, coldSent)
	}
	if refs := atoiSafe(tb.Rows[1][2]); refs == 0 {
		t.Fatal("warm run sent no digest references")
	}
	if saved := atoiSafe(tb.Rows[1][3]); saved == 0 {
		t.Fatal("warm run recorded no bytes saved")
	}
	if atoiSafe(tb.Rows[0][2]) != 0 {
		t.Fatal("cold run should not send digest references")
	}
}
