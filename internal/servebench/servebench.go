// Package servebench drives the multi-tenant serving plane (internal/serve)
// with an open-loop mixed-shape workload and writes BENCH_serve.json.
//
// Three phases, each against an in-process cluster:
//
//   - Ladder: several offered-load rungs (jobs/sec). Submission is open
//     loop — arrivals do not wait for completions — so queueing delay shows
//     up in the latency distribution instead of throttling the generator.
//     Each rung records p50/p99 latency, achieved throughput, and SLO
//     attainment.
//   - Overload: an offered rate far past capacity into a small queue. The
//     gate is backpressure, not heroics: submissions must come back as
//     typed rejections, every admitted job must finish, and the server must
//     stay responsive — overload may never deadlock the serving plane.
//   - Fairness: a heavy tenant floods the queue while a light tenant
//     trickles. Weighted fair sharing must keep the light tenant's p99
//     within FairnessFactor of its solo baseline (measured first, same
//     machinery, empty cluster).
//
// A goroutine census brackets the run; the serving plane must settle back
// to its starting footprint after Close.
package servebench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"distme/internal/distnet"
	"distme/internal/obs"
	"distme/internal/serve"
	"distme/internal/workload"
)

// Profile is one servebench configuration.
type Profile struct {
	Name string
	Seed int64
	// Workers is the in-process pool size.
	Workers int
	// Rates is the offered-load ladder in jobs/sec; RungDuration how long
	// each rung submits.
	Rates        []int
	RungDuration time.Duration
	// SustainRate is the rung that must achieve SustainFraction of its
	// offered rate with p99 under SLO — the headline gate.
	SustainRate     int
	SustainFraction float64
	// SLO is the per-job latency objective (submit to done).
	SLO time.Duration
	// OverloadRate/OverloadDuration drive the overload phase into a queue
	// bounded at OverloadQueue.
	OverloadRate     int
	OverloadDuration time.Duration
	OverloadQueue    int
	// FairnessRate is the light tenant's trickle (jobs/sec); the heavy
	// tenant floods at FairnessFloodRate. FairnessFactor bounds the light
	// tenant's shared p99 against its solo baseline.
	FairnessRate      int
	FairnessFloodRate int
	FairnessDuration  time.Duration
	FairnessFactor    float64
}

// Smoke is the CI profile: under ~30s wall clock.
func Smoke() Profile {
	return Profile{
		Name:              "smoke",
		Seed:              1,
		Workers:           4,
		Rates:             []int{200, 500, 800},
		RungDuration:      2 * time.Second,
		SustainRate:       500,
		SustainFraction:   0.95,
		SLO:               250 * time.Millisecond,
		OverloadRate:      4000,
		OverloadDuration:  1500 * time.Millisecond,
		OverloadQueue:     64,
		FairnessRate:      80,
		FairnessFloodRate: 1200,
		FairnessDuration:  4 * time.Second,
		FairnessFactor:    2.0,
	}
}

// Full is the nightly profile: longer rungs and a deeper ladder.
func Full() Profile {
	p := Smoke()
	p.Name = "full"
	p.Rates = []int{200, 500, 800, 1200}
	p.RungDuration = 10 * time.Second
	p.OverloadDuration = 5 * time.Second
	p.FairnessDuration = 10 * time.Second
	return p
}

// cluster is the bench's in-process serving stack.
type cluster struct {
	pool *distnet.InProcPool
	d    *distnet.Driver
}

func startCluster(p Profile, tr *obs.Tracer) (*cluster, error) {
	pool := &distnet.InProcPool{}
	addrs := make([]string, 0, p.Workers)
	for i := 0; i < p.Workers; i++ {
		a, err := pool.Grow(context.Background())
		if err != nil {
			pool.Close(context.Background())
			return nil, err
		}
		addrs = append(addrs, a)
	}
	d, err := distnet.DialOptions(addrs, distnet.Options{
		JitterSeed: p.Seed,
		Tracer:     tr,
	})
	if err != nil {
		pool.Close(context.Background())
		return nil, err
	}
	return &cluster{pool: pool, d: d}, nil
}

func (c *cluster) close() {
	c.d.Close()
	c.pool.Close(context.Background())
}

// openLoop submits mix jobs at ratePerSec for d, never waiting for
// completions, and returns per-job latencies of completed jobs plus
// admission counts. Completions are awaited before returning.
func openLoop(s *serve.Server, mix *workload.ServeMix, tenant string, ratePerSec int, d time.Duration, idx0 int) (lats []time.Duration, submitted, rejected, failed int) {
	interval := time.Second / time.Duration(ratePerSec)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; ; i++ {
		next := start.Add(time.Duration(i) * interval)
		if next.Sub(start) >= d {
			break
		}
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		job := mix.Job(idx0 + i)
		submitted++
		t0 := time.Now()
		id, err := s.Submit(serve.SubmitRequest{Tenant: tenant, A: job.A, B: job.B})
		if err != nil {
			rejected++
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, st, err := s.Result(context.Background(), id)
			lat := time.Since(t0)
			mu.Lock()
			if err != nil || st.State != serve.StateDone {
				failed++
			} else {
				lats = append(lats, lat)
			}
			mu.Unlock()
			s.Forget(id)
		}()
	}
	wg.Wait()
	return lats, submitted, rejected, failed
}

// settleGoroutines polls until the goroutine count drops to at most
// start+4 or the deadline passes, returning the final census.
func settleGoroutines(start int, deadline time.Duration) int {
	t0 := time.Now()
	for {
		n := runtime.NumGoroutine()
		if n <= start+4 || time.Since(t0) > deadline {
			return n
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Run executes the profile and applies its gates.
func Run(p Profile, tr *obs.Tracer) (*Report, error) {
	r := &Report{
		Profile:         p.Name,
		Seed:            p.Seed,
		SLONanos:        p.SLO.Nanoseconds(),
		GoroutinesStart: runtime.NumGoroutine(),
	}
	mix := workload.NewServeMix(p.Seed, 8, 2)

	// Phase 1: the offered-load ladder.
	c, err := startCluster(p, tr)
	if err != nil {
		return nil, err
	}
	s, err := serve.New(c.d, serve.Config{Tracer: tr})
	if err != nil {
		c.close()
		return nil, err
	}
	idx := 0
	for _, rate := range p.Rates {
		sp := tr.Start(0, fmt.Sprintf("servebench.rung.%d", rate), obs.KindBench)
		t0 := time.Now()
		lats, submitted, rejected, failed := openLoop(s, mix, "", rate, p.RungDuration, idx)
		wall := time.Since(t0)
		sp.End()
		idx += submitted
		h := histoOf(lats)
		within := 0
		for _, l := range lats {
			if l <= p.SLO {
				within++
			}
		}
		attain := 0.0
		if len(lats) > 0 {
			attain = float64(within) / float64(len(lats))
		}
		r.Rungs = append(r.Rungs, RungStats{
			OfferedPerSec:  rate,
			Submitted:      submitted,
			Rejected:       rejected,
			Failed:         failed,
			Completed:      len(lats),
			AchievedPerSec: float64(len(lats)) / wall.Seconds(),
			Latency:        h,
			SLOAttainment:  attain,
		})
	}
	s.Close()
	c.close()

	// Phase 2: overload into a small queue — typed rejections, no deadlock.
	c, err = startCluster(p, tr)
	if err != nil {
		return nil, err
	}
	s, err = serve.New(c.d, serve.Config{MaxQueuedJobs: p.OverloadQueue, Tracer: tr})
	if err != nil {
		c.close()
		return nil, err
	}
	sp := tr.Start(0, "servebench.overload", obs.KindBench)
	done := make(chan struct{})
	var ov OverloadStats
	go func() {
		defer close(done)
		lats, submitted, rejected, failed := openLoop(s, mix, "", p.OverloadRate, p.OverloadDuration, 0)
		ov = OverloadStats{
			OfferedPerSec: p.OverloadRate,
			Submitted:     submitted,
			Rejected:      rejected,
			Failed:        failed,
			Completed:     len(lats),
			Latency:       histoOf(lats),
		}
	}()
	// The deadlock gate: the whole overload phase (submission + drain of
	// everything admitted) must finish well inside a generous bound.
	overloadBound := p.OverloadDuration + 60*time.Second
	select {
	case <-done:
	case <-time.After(overloadBound):
		ov.Deadlocked = true
	}
	sp.End()
	if !ov.Deadlocked {
		// Still responsive after the storm?
		probe := mix.Job(0)
		id, err := s.Submit(serve.SubmitRequest{A: probe.A, B: probe.B})
		if err == nil {
			_, st, rerr := s.Result(context.Background(), id)
			ov.ResponsiveAfter = rerr == nil && st.State == serve.StateDone
		}
	}
	r.Overload = ov
	s.Close()
	c.close()

	// Phase 3: fairness. Solo baseline first, then shared with a flood.
	c, err = startCluster(p, tr)
	if err != nil {
		return nil, err
	}
	// Dispatch parallelism is pinned well under the worker count so a
	// dispatched light job lands on an effectively private worker: fair
	// sharing decides dispatch order, and a narrow dispatch window keeps
	// that decision from being washed out by task-level interleaving with
	// the flood on shared workers.
	fairConc := p.Workers / 2
	if fairConc < 2 {
		fairConc = 2
	}
	// Fair share's currency is planned bytes, and the light tenant's jobs
	// are ~8x the flood's per-job bytes: with equal weights every light
	// dispatch would park its virtual clock ~8 heavy dispatches in the
	// future. Weighting the latency-sensitive tenant to its byte profile is
	// exactly the operator knob documented in docs/SERVING.md.
	tenants := []serve.Tenant{{Name: "light", Weight: 8}, {Name: "heavy"}}
	s, err = serve.New(c.d, serve.Config{
		Tenants:           tenants,
		MaxQueuedJobs:     4096,
		MaxConcurrentJobs: fairConc,
		Tracer:            tr,
	})
	if err != nil {
		c.close()
		return nil, err
	}
	// The light tenant runs meaningfully-sized jobs (several ms of work):
	// the fairness gate measures whether the flood starves it, and should
	// not be dominated by the fixed sub-millisecond dispatch overhead that
	// any queued system adds.
	lightMix := workload.NewServeMixShapes(p.Seed+1, 8, 2, []workload.ServeShape{
		{Family: workload.General, N: 128},
	})
	sp = tr.Start(0, "servebench.fairness", obs.KindBench)
	soloLats, _, _, _ := openLoop(s, lightMix, "light", p.FairnessRate, p.FairnessDuration, 0)
	var fl, hv struct {
		lats []time.Duration
		sub  int
		rej  int
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		hv.lats, hv.sub, hv.rej, _ = openLoop(s, mix, "heavy", p.FairnessFloodRate, p.FairnessDuration, 1_000_000)
	}()
	go func() {
		defer wg.Done()
		// Give the flood a head start so the light tenant contends with a
		// standing backlog for its whole window.
		time.Sleep(p.FairnessDuration / 10)
		d := p.FairnessDuration - p.FairnessDuration/5
		fl.lats, fl.sub, fl.rej, _ = openLoop(s, lightMix, "light", p.FairnessRate, d, 0)
	}()
	wg.Wait()
	sp.End()
	solo := histoOf(soloLats)
	shared := histoOf(fl.lats)
	factor := 0.0
	if solo.P99Nanos > 0 {
		factor = float64(shared.P99Nanos) / float64(solo.P99Nanos)
	}
	r.Fairness = FairnessStats{
		SoloLatency:    solo,
		SharedLatency:  shared,
		FactorX:        factor,
		HeavySubmitted: hv.sub,
		HeavyRejected:  hv.rej,
		HeavyLatency:   histoOf(hv.lats),
	}
	s.Close()
	c.close()

	r.GoroutinesEnd = settleGoroutines(r.GoroutinesStart, 10*time.Second)
	r.check(p)
	r.Passed = len(r.Failures) == 0
	if !r.Passed {
		return r, fmt.Errorf("servebench: %d gate(s) failed", len(r.Failures))
	}
	return r, nil
}
