package servebench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Histo is a latency distribution summary in nanoseconds.
type Histo struct {
	Count    int   `json:"count"`
	P50Nanos int64 `json:"p50_ns"`
	P90Nanos int64 `json:"p90_ns"`
	P99Nanos int64 `json:"p99_ns"`
	MaxNanos int64 `json:"max_ns"`
}

func histoOf(ds []time.Duration) Histo {
	if len(ds) == 0 {
		return Histo{}
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(s)))
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i].Nanoseconds()
	}
	return Histo{
		Count:    len(s),
		P50Nanos: at(0.50),
		P90Nanos: at(0.90),
		P99Nanos: at(0.99),
		MaxNanos: s[len(s)-1].Nanoseconds(),
	}
}

func (h Histo) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%s p90=%s p99=%s max=%s",
		h.Count,
		time.Duration(h.P50Nanos),
		time.Duration(h.P90Nanos),
		time.Duration(h.P99Nanos),
		time.Duration(h.MaxNanos))
}

// RungStats is one offered-load level of the ladder phase.
type RungStats struct {
	OfferedPerSec int `json:"offered_per_sec"`
	Submitted     int `json:"submitted"`
	Rejected      int `json:"rejected"`
	Failed        int `json:"failed"`
	Completed     int `json:"completed"`
	// AchievedPerSec is completions over the rung's wall clock (submission
	// window plus drain).
	AchievedPerSec float64 `json:"achieved_per_sec"`
	Latency        Histo   `json:"latency"`
	// SLOAttainment is the fraction of completed jobs inside the SLO.
	SLOAttainment float64 `json:"slo_attainment"`
}

// OverloadStats is the overload phase's outcome.
type OverloadStats struct {
	OfferedPerSec int   `json:"offered_per_sec"`
	Submitted     int   `json:"submitted"`
	Rejected      int   `json:"rejected"`
	Failed        int   `json:"failed"`
	Completed     int   `json:"completed"`
	Latency       Histo `json:"latency"`
	// Deadlocked reports the fatal outcome: the phase failed to settle
	// inside its generous bound.
	Deadlocked bool `json:"deadlocked"`
	// ResponsiveAfter reports whether a probe job submitted after the storm
	// completed normally.
	ResponsiveAfter bool `json:"responsive_after"`
}

// FairnessStats compares the light tenant's solo and contended latency.
type FairnessStats struct {
	SoloLatency   Histo `json:"solo_latency"`
	SharedLatency Histo `json:"shared_latency"`
	// FactorX is shared p99 over solo p99 — the fairness gate's metric.
	FactorX        float64 `json:"factor_x"`
	HeavySubmitted int     `json:"heavy_submitted"`
	HeavyRejected  int     `json:"heavy_rejected"`
	HeavyLatency   Histo   `json:"heavy_latency"`
}

// Report is the full servebench output, written to BENCH_serve.json.
type Report struct {
	Profile  string        `json:"profile"`
	Seed     int64         `json:"seed"`
	SLONanos int64         `json:"slo_ns"`
	Rungs    []RungStats   `json:"rungs"`
	Overload OverloadStats `json:"overload"`
	Fairness FairnessStats `json:"fairness"`
	// Goroutine census at Run start and after teardown settle.
	GoroutinesStart int `json:"goroutines_start"`
	GoroutinesEnd   int `json:"goroutines_end"`
	// Passed is the overall verdict; Failures lists every violated gate.
	Passed   bool     `json:"passed"`
	Failures []string `json:"failures,omitempty"`
}

// check applies the acceptance gates and fills Failures.
func (r *Report) check(p Profile) {
	fail := func(format string, args ...any) {
		r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
	}
	for _, rung := range r.Rungs {
		if rung.Failed > 0 {
			fail("rung %d/s: %d job(s) failed", rung.OfferedPerSec, rung.Failed)
		}
		if rung.OfferedPerSec != p.SustainRate {
			continue
		}
		floor := float64(p.SustainRate) * p.SustainFraction
		if rung.AchievedPerSec < floor {
			fail("rung %d/s: achieved %.0f jobs/s, need at least %.0f",
				rung.OfferedPerSec, rung.AchievedPerSec, floor)
		}
		if rung.Latency.P99Nanos > r.SLONanos {
			fail("rung %d/s: p99 %s breaches the %s SLO",
				rung.OfferedPerSec, time.Duration(rung.Latency.P99Nanos), time.Duration(r.SLONanos))
		}
	}
	if r.Overload.Deadlocked {
		fail("overload: did not settle — the serving plane deadlocked instead of rejecting")
	} else {
		if r.Overload.Rejected == 0 {
			fail("overload: %d jobs/s into a %d-deep queue produced no rejections — admission control is not engaging",
				p.OverloadRate, p.OverloadQueue)
		}
		if r.Overload.Failed > 0 {
			fail("overload: %d admitted job(s) failed", r.Overload.Failed)
		}
		if !r.Overload.ResponsiveAfter {
			fail("overload: probe job after the storm did not complete")
		}
	}
	if r.Fairness.SharedLatency.Count == 0 {
		fail("fairness: light tenant completed no jobs under contention")
	} else if r.Fairness.FactorX > p.FairnessFactor {
		fail("fairness: light tenant p99 %s is %.2fx its solo %s, over the %.1fx bound",
			time.Duration(r.Fairness.SharedLatency.P99Nanos), r.Fairness.FactorX,
			time.Duration(r.Fairness.SoloLatency.P99Nanos), p.FairnessFactor)
	}
	if r.GoroutinesEnd > r.GoroutinesStart+4 {
		fail("goroutine leak: %d at start, %d after teardown settle", r.GoroutinesStart, r.GoroutinesEnd)
	}
}

// WriteJSON writes the report to a file.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Fprint renders the report for a terminal.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "serve %s (seed %d): ", r.Profile, r.Seed)
	if r.Passed {
		fmt.Fprintln(w, "PASS")
	} else {
		fmt.Fprintln(w, "FAIL")
	}
	for _, rung := range r.Rungs {
		fmt.Fprintf(w, "  %4d jobs/s offered: achieved %.0f/s, SLO attainment %.3f, rejected %d\n",
			rung.OfferedPerSec, rung.AchievedPerSec, rung.SLOAttainment, rung.Rejected)
		fmt.Fprintf(w, "       latency %s\n", rung.Latency)
	}
	ov := r.Overload
	fmt.Fprintf(w, "  overload %d/s: %d submitted, %d rejected, %d completed, deadlocked=%v responsive=%v\n",
		ov.OfferedPerSec, ov.Submitted, ov.Rejected, ov.Completed, ov.Deadlocked, ov.ResponsiveAfter)
	f := r.Fairness
	fmt.Fprintf(w, "  fairness: light solo %s\n", f.SoloLatency)
	fmt.Fprintf(w, "            light shared %s (%.2fx, heavy submitted %d)\n",
		f.SharedLatency, f.FactorX, f.HeavySubmitted)
	fmt.Fprintf(w, "  goroutines %d -> %d\n", r.GoroutinesStart, r.GoroutinesEnd)
	for _, fl := range r.Failures {
		fmt.Fprintf(w, "  FAIL: %s\n", fl)
	}
}
