package shuffle

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distme/internal/matrix"
	"distme/internal/metrics"
)

func TestRowPartitioner(t *testing.T) {
	p := RowPartitioner{N: 4}
	if p.NumPartitions() != 4 {
		t.Fatal("wrong partition count")
	}
	// Figure 1(a): all blocks of a row land together.
	for j := 0; j < 4; j++ {
		if p.Partition(BlockKey{I: 2, J: j}) != p.Partition(BlockKey{I: 2, J: 0}) {
			t.Fatal("row partitioner split a row")
		}
	}
	if p.Partition(BlockKey{I: 1}) == p.Partition(BlockKey{I: 2}) {
		t.Fatal("adjacent rows should differ for N=4")
	}
}

func TestColumnPartitioner(t *testing.T) {
	p := ColumnPartitioner{N: 4}
	for i := 0; i < 4; i++ {
		if p.Partition(BlockKey{I: i, J: 3}) != p.Partition(BlockKey{I: 0, J: 3}) {
			t.Fatal("column partitioner split a column")
		}
	}
}

func TestHashPartitionerRangeAndSpread(t *testing.T) {
	p := HashPartitioner{N: 7}
	counts := make([]int, 7)
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			d := p.Partition(BlockKey{I: i, J: j})
			if d < 0 || d >= 7 {
				t.Fatalf("partition %d out of range", d)
			}
			counts[d]++
		}
	}
	for i, c := range counts {
		if c < 1600/7/2 || c > 1600/7*2 {
			t.Fatalf("hash partition %d badly balanced: %d of 1600", i, c)
		}
	}
}

func TestHashPartitionVoxelDeterministic(t *testing.T) {
	p := HashPartitioner{N: 5}
	v := VoxelKey{I: 3, J: 1, K: 2}
	if p.PartitionVoxel(v) != p.PartitionVoxel(v) {
		t.Fatal("voxel hash not deterministic")
	}
}

func TestGridPartitioner(t *testing.T) {
	// Figure 1(d): a 4×4 block matrix in a 2×2 grid.
	p := GridPartitioner{IBlocks: 4, JBlocks: 4, Alpha: 2, Beta: 2}
	if p.NumPartitions() != 4 {
		t.Fatal("grid partition count wrong")
	}
	if p.Partition(BlockKey{I: 0, J: 0}) != p.Partition(BlockKey{I: 1, J: 1}) {
		t.Fatal("top-left tile split")
	}
	if p.Partition(BlockKey{I: 0, J: 0}) == p.Partition(BlockKey{I: 2, J: 0}) {
		t.Fatal("tiles not distinguished vertically")
	}
	if p.Partition(BlockKey{I: 0, J: 0}) == p.Partition(BlockKey{I: 0, J: 2}) {
		t.Fatal("tiles not distinguished horizontally")
	}
}

func TestGridSpanCoversAxis(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		parts := 1 + rng.Intn(n)
		covered := 0
		prevHi := 0
		for t := 0; t < parts; t++ {
			lo, hi := GridSpan(t, n, parts)
			if lo != prevHi && lo < prevHi {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGridSpanInverseOfGridIndex(t *testing.T) {
	// Every block index b must fall inside the span of its own tile.
	for n := 1; n <= 20; n++ {
		for parts := 1; parts <= n; parts++ {
			for b := 0; b < n; b++ {
				tile := gridIndex(b, n, parts)
				lo, hi := GridSpan(tile, n, parts)
				if b < lo || b >= hi {
					t.Fatalf("block %d of n=%d parts=%d: tile %d span [%d,%d)", b, n, parts, tile, lo, hi)
				}
			}
		}
	}
}

func TestExchangeRoutingAndAccounting(t *testing.T) {
	rec := &metrics.Recorder{}
	blk := matrix.NewDense(2, 2) // 32 bytes
	records := []Record{
		{Key: BlockKey{I: 0, J: 0}, Block: blk},
		{Key: BlockKey{I: 1, J: 0}, Block: blk},
		{Key: BlockKey{I: 2, J: 0}, Block: blk},
	}
	parts := Exchange(records, RowPartitioner{N: 3}, rec, metrics.StepRepartition)
	if len(parts) != 3 {
		t.Fatal("wrong partition count")
	}
	for i, p := range parts {
		if len(p) != 1 {
			t.Fatalf("partition %d has %d records, want 1", i, len(p))
		}
	}
	if got := rec.Bytes(metrics.StepRepartition); got != 3*32 {
		t.Fatalf("accounted %d bytes, want 96", got)
	}
}

func TestBroadcastAccounting(t *testing.T) {
	rec := &metrics.Recorder{}
	blocks := []matrix.Block{matrix.NewDense(2, 2), matrix.NewDense(2, 2)}
	n := Broadcast(blocks, 5, rec, metrics.StepRepartition)
	if n != 5*64 {
		t.Fatalf("broadcast returned %d, want 320", n)
	}
	if rec.Bytes(metrics.StepRepartition) != 320 {
		t.Fatalf("broadcast accounted %d", rec.Bytes(metrics.StepRepartition))
	}
}

func TestExchangeNilRecorder(t *testing.T) {
	// nil recorder must not panic (pure routing use).
	blk := matrix.NewDense(1, 1)
	Exchange([]Record{{Key: BlockKey{}, Block: blk}}, HashPartitioner{N: 2}, nil, metrics.StepRepartition)
}

func TestNegativeIndexModulo(t *testing.T) {
	p := RowPartitioner{N: 4}
	if d := p.Partition(BlockKey{I: -1}); d < 0 || d >= 4 {
		t.Fatalf("negative index mapped to %d", d)
	}
}

func TestSimulateFetch(t *testing.T) {
	// No failures: zero retries, nothing lost.
	r, lost := SimulateFetch(func(int) bool { return false }, 2)
	if r != 0 || lost {
		t.Fatalf("clean fetch: retries=%d lost=%v", r, lost)
	}
	// Two transient failures under a budget of two: retried, not lost.
	r, lost = SimulateFetch(func(a int) bool { return a < 2 }, 2)
	if r != 2 || lost {
		t.Fatalf("transient fetch: retries=%d lost=%v", r, lost)
	}
	// Persistent failure: the partition is declared lost after the budget.
	r, lost = SimulateFetch(func(int) bool { return true }, 2)
	if !lost {
		t.Fatal("persistent failure should mark the partition lost")
	}
	if r != 3 {
		t.Fatalf("lost after %d retries, want maxTransient+1 = 3", r)
	}
}
