// Package shuffle implements the matrix partitioning schemes of the paper's
// §2.1 (Row, Column, Hash, Grid) and the keyed block exchange that the
// repartition and aggregation steps of distributed matrix multiplication are
// built on. Every record that crosses a task boundary is charged to the
// run's metrics recorder, which is how the engine measures the
// communication-cost columns of Table 2 and Figures 6–7.
package shuffle

import (
	"distme/internal/bmat"
	"distme/internal/matrix"
	"distme/internal/metrics"
)

// BlockKey aliases bmat.BlockKey, the unit the partitioners route.
type BlockKey = bmat.BlockKey

// VoxelKey aliases bmat.VoxelKey for voxel-granularity shuffles (RMM).
type VoxelKey = bmat.VoxelKey

// Partitioner assigns block keys to partitions (tasks). Implementations are
// the four schemes of §2.1.
type Partitioner interface {
	// NumPartitions returns the partition (task) count.
	NumPartitions() int
	// Partition maps a block key to a partition in [0, NumPartitions()).
	Partition(k BlockKey) int
}

// RowPartitioner sends all blocks of one block-row to the same task:
// partition = i mod n.
type RowPartitioner struct{ N int }

// NumPartitions returns the task count.
func (p RowPartitioner) NumPartitions() int { return p.N }

// Partition maps by row block index.
func (p RowPartitioner) Partition(k BlockKey) int { return mod(k.I, p.N) }

// ColumnPartitioner sends all blocks of one block-column to the same task:
// partition = j mod n.
type ColumnPartitioner struct{ N int }

// NumPartitions returns the task count.
func (p ColumnPartitioner) NumPartitions() int { return p.N }

// Partition maps by column block index.
func (p ColumnPartitioner) Partition(k BlockKey) int { return mod(k.J, p.N) }

// HashPartitioner spreads blocks evenly by hashing both indices; this is the
// scheme RMM uses for replicated voxel records.
type HashPartitioner struct{ N int }

// NumPartitions returns the task count.
func (p HashPartitioner) NumPartitions() int { return p.N }

// Partition maps by a mixed hash of (i, j).
func (p HashPartitioner) Partition(k BlockKey) int {
	return int(hash2(uint64(k.I), uint64(k.J)) % uint64(p.N))
}

// PartitionVoxel maps a voxel key v_{i,j,k} to a partition; RMM shuffles
// replicated blocks with the voxel index as the key (§2.2.3).
func (p HashPartitioner) PartitionVoxel(v VoxelKey) int {
	return int(hash2(hash2(uint64(v.I), uint64(v.J)), uint64(v.K)) % uint64(p.N))
}

// GridPartitioner divides a matrix of IBlocks×JBlocks blocks into an
// Alpha×Beta grid of tiles (§2.1, Figure 1(d)); each tile is one partition.
type GridPartitioner struct {
	IBlocks, JBlocks int // matrix extent in blocks
	Alpha, Beta      int // grid shape
}

// NumPartitions returns Alpha×Beta.
func (p GridPartitioner) NumPartitions() int { return p.Alpha * p.Beta }

// Partition maps a block to its grid tile, row-major over tiles.
func (p GridPartitioner) Partition(k BlockKey) int {
	ti := gridIndex(k.I, p.IBlocks, p.Alpha)
	tj := gridIndex(k.J, p.JBlocks, p.Beta)
	return ti*p.Beta + tj
}

// gridIndex maps block index b of an extent-n axis onto one of parts
// contiguous tiles. Tiles are balanced — sizes differ by at most one block
// (⌊n/parts⌋ or ⌈n/parts⌉) and, unlike fixed ⌈n/parts⌉ strides, no tile is
// ever empty, so every partition count in [1, n] materializes exactly and
// the Table 2 formulas hold for every (P,Q,R).
func gridIndex(b, n, parts int) int {
	if parts <= 0 {
		panic("shuffle: grid partitioner with non-positive parts")
	}
	// Inverse of GridSpan's ⌊t·n/parts⌋ boundaries.
	idx := (b*parts + parts - 1) / n
	if idx >= parts {
		idx = parts - 1
	}
	return idx
}

// GridSpan returns the block-index range [lo, hi) of tile t along an axis of
// extent n split into parts balanced tiles — the inverse of gridIndex, used
// by the cuboid executor to enumerate a cuboid's blocks.
func GridSpan(t, n, parts int) (lo, hi int) {
	lo = t * n / parts
	hi = (t + 1) * n / parts
	return lo, hi
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// hash2 mixes two 64-bit values (splitmix64-style finalizer), giving the
// even spread the Hash scheme promises without pulling in hash/maphash
// state.
func hash2(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Record is one shuffled key/block pair.
type Record struct {
	Key   BlockKey
	Block matrix.Block
}

// Exchange routes records to partitions with a partitioner, charging each
// record's payload to the given step of the recorder — the simulated
// network. It returns the per-partition record lists in deterministic input
// order.
func Exchange(records []Record, p Partitioner, rec *metrics.Recorder, step metrics.Step) [][]Record {
	out := make([][]Record, p.NumPartitions())
	for _, r := range records {
		dst := p.Partition(r.Key)
		if rec != nil {
			rec.AddBytes(step, r.Block.SizeBytes())
		}
		out[dst] = append(out[dst], r)
	}
	return out
}

// SimulateFetch models the aggregation-side fetch of one task's shuffle
// output. fail(attempt) reports whether fetch attempt `attempt` (0-based)
// fails; transient failures are retried up to maxTransient times, after
// which the partition is declared lost — the producing executor is gone and
// the partial must be recomputed from lineage, the way Spark resubmits the
// producing stage on repeated FetchFailed. The return reports how many
// retries were spent and whether the partition was lost.
func SimulateFetch(fail func(attempt int) bool, maxTransient int) (retries int, lost bool) {
	for attempt := 0; fail(attempt); attempt++ {
		retries++
		if retries > maxTransient {
			return retries, true
		}
	}
	return retries, false
}

// Broadcast charges one full copy of the payload per destination task (the
// BMM repartition pattern: T·|B|) and returns the payload size replicated.
func Broadcast(blocks []matrix.Block, tasks int, rec *metrics.Recorder, step metrics.Step) int64 {
	var size int64
	for _, b := range blocks {
		size += b.SizeBytes()
	}
	if rec != nil {
		rec.AddBytes(step, size*int64(tasks))
	}
	return size * int64(tasks)
}
