package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// goldenMatrix rebuilds the exact matrix behind testdata/golden-v1.dmeb: a
// 10x11 element grid with block size 4 (ragged on both axes) holding a
// dense block, a CSR block, a CSC block (which the portable format stores
// as CSR) and a ragged dense corner, with values drawn from a fixed seed.
func goldenMatrix() *bmat.BlockMatrix {
	rng := rand.New(rand.NewSource(424242))
	m := bmat.New(10, 11, 4)
	d := matrix.NewDense(4, 4)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	m.SetBlock(0, 0, d)
	csrd := matrix.NewDense(4, 4)
	for i := range csrd.Data {
		if rng.Float64() < 0.4 {
			csrd.Data[i] = rng.NormFloat64()
		}
	}
	m.SetBlock(1, 1, matrix.NewCSRFromDense(csrd))
	cscd := matrix.NewDense(2, 4)
	for i := range cscd.Data {
		if rng.Float64() < 0.5 {
			cscd.Data[i] = rng.NormFloat64()
		}
	}
	m.SetBlock(2, 0, matrix.NewCSCFromDense(cscd))
	corner := matrix.NewDense(2, 3)
	for i := range corner.Data {
		corner.Data[i] = rng.NormFloat64()
	}
	m.SetBlock(2, 2, corner)
	return m
}

// TestGoldenFileByteIdentical pins the on-disk checkpoint format: Write
// must keep producing the byte-for-byte output of the pre-codec encoder,
// captured in testdata/golden-v1.dmeb, or Driver.ResumeMultiply would stop
// reading checkpoints written by earlier builds.
func TestGoldenFileByteIdentical(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden-v1.dmeb"))
	if err != nil {
		t.Fatalf("read golden file: %v", err)
	}
	var got bytes.Buffer
	if err := Write(&got, goldenMatrix()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("on-disk format drifted from golden-v1.dmeb: got %d bytes, want %d (first divergence at offset %d)",
			got.Len(), len(want), firstDiff(got.Bytes(), want))
	}
}

// TestGoldenFileReadsBack guards the decode side: the checked-in bytes must
// parse into the generating matrix, with the CSC block coming back as CSR
// (the documented portable-format behavior).
func TestGoldenFileReadsBack(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "golden-v1.dmeb"))
	if err != nil {
		t.Fatalf("open golden file: %v", err)
	}
	defer f.Close()
	got, err := Read(f)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	want := goldenMatrix()
	if got.Rows != want.Rows || got.Cols != want.Cols || got.BlockSize != want.BlockSize {
		t.Fatalf("geometry %dx%d/%d, want %dx%d/%d", got.Rows, got.Cols, got.BlockSize, want.Rows, want.Cols, want.BlockSize)
	}
	if got.NumBlocks() != want.NumBlocks() {
		t.Fatalf("got %d blocks, want %d", got.NumBlocks(), want.NumBlocks())
	}
	for _, k := range want.Keys() {
		wb, gb := want.Block(k.I, k.J), got.Block(k.I, k.J)
		if gb == nil {
			t.Fatalf("block %v missing after read", k)
		}
		wr, wc := wb.Dims()
		gr, gc := gb.Dims()
		if wr != gr || wc != gc {
			t.Fatalf("block %v dims %dx%d, want %dx%d", k, gr, gc, wr, wc)
		}
		if _, isCSC := wb.(*matrix.CSC); isCSC {
			if _, nowCSR := gb.(*matrix.CSR); !nowCSR {
				t.Fatalf("block %v: CSC should read back as CSR in the portable format, got %T", k, gb)
			}
		}
		wd, gd := wb.Dense(), gb.Dense()
		for i := range wd.Data {
			if wd.Data[i] != gd.Data[i] {
				t.Fatalf("block %v value %d: %v != %v", k, i, gd.Data[i], wd.Data[i])
			}
		}
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
