// Package storage persists block matrices in a chunked, checksummed,
// columnar binary format — the stand-in for the paper's Parquet-on-HDFS
// data path (§5). Each block is one chunk with a CRC32 trailer; dense
// blocks store raw values, sparse blocks store CSR arrays, so a matrix
// round-trips without densification.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"distme/internal/bmat"
	"distme/internal/codec"
	"distme/internal/matrix"
)

// magic identifies a DistME block-matrix file.
const magic = "DMEB"

// formatVersion is bumped on incompatible layout changes.
const formatVersion = 1

// Chunk format tags. These alias the portable tags in internal/codec — the
// on-disk format predates the shared codec, so the codec's portable layer
// keeps these exact values and byte layouts.
const (
	chunkDense = codec.TagDense
	chunkCSR   = codec.TagCSR
)

// ErrBadFormat reports a corrupt or foreign file.
var ErrBadFormat = errors.New("storage: not a DistME block-matrix file")

// ErrChecksum reports a chunk whose CRC32 does not match its payload.
var ErrChecksum = errors.New("storage: chunk checksum mismatch")

// Write serializes a block matrix to w.
func Write(w io.Writer, m *bmat.BlockMatrix) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	header := []uint64{
		formatVersion,
		uint64(m.Rows), uint64(m.Cols), uint64(m.BlockSize),
		uint64(m.NumBlocks()),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	// Deterministic chunk order: sorted keys.
	keys := m.Keys()
	sortKeys(keys)
	for _, k := range keys {
		if err := writeChunk(bw, k, m.Block(k.I, k.J)); err != nil {
			return fmt.Errorf("storage: block %v: %w", k, err)
		}
	}
	return bw.Flush()
}

// WriteFile serializes a block matrix to a file path.
func WriteFile(path string, m *bmat.BlockMatrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read deserializes a block matrix from r.
func Read(r io.Reader) (*bmat.BlockMatrix, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head) != magic {
		return nil, ErrBadFormat
	}
	var version, rows, cols, blockSize, nblocks uint64
	for _, p := range []*uint64{&version, &rows, &cols, &blockSize, &nblocks} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: truncated header", ErrBadFormat)
		}
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	if rows > 1<<40 || cols > 1<<40 || blockSize == 0 || blockSize > 1<<24 || nblocks > rows*cols+1 {
		return nil, fmt.Errorf("%w: implausible header (%d x %d, block %d, %d chunks)", ErrBadFormat, rows, cols, blockSize, nblocks)
	}
	m := bmat.New(int(rows), int(cols), int(blockSize))
	// The tightest payload any block of this geometry can need: a CSR block
	// with a full complement of entries. Anything larger is corruption —
	// checked before allocating, so a flipped length byte cannot trigger an
	// enormous allocation.
	maxChunk := 24 + 8*(blockSize+1) + 16*blockSize*blockSize + 16
	for i := uint64(0); i < nblocks; i++ {
		key, blk, err := readChunk(br, maxChunk)
		if err != nil {
			return nil, fmt.Errorf("storage: chunk %d: %w", i, err)
		}
		// Keys and the chunk header are outside the payload CRC; validate
		// them against the grid before trusting them (a flipped key byte
		// must surface as ErrBadFormat, not a panic).
		if key.I < 0 || key.I >= m.IB || key.J < 0 || key.J >= m.JB {
			return nil, fmt.Errorf("%w: chunk %d key %v outside grid %dx%d", ErrBadFormat, i, key, m.IB, m.JB)
		}
		wr, wc := m.BlockDims(key.I, key.J)
		br2, bc := blk.Dims()
		if br2 != wr || bc != wc {
			return nil, fmt.Errorf("%w: chunk %d is %dx%d, slot %v wants %dx%d", ErrBadFormat, i, br2, bc, key, wr, wc)
		}
		m.SetBlock(key.I, key.J, blk)
	}
	return m, nil
}

// ReadFile deserializes a block matrix from a file path.
func ReadFile(path string) (*bmat.BlockMatrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// writeChunk emits one block: key, format tag, payload, CRC32 of payload.
// The payload comes from the shared codec's portable encoder, which
// reproduces this package's original chunk layout byte-for-byte (the
// golden-file test pins that).
func writeChunk(w io.Writer, k bmat.BlockKey, b matrix.Block) error {
	payload, tag, err := codec.AppendPortable(codec.GetBuffer(), b)
	if err != nil {
		codec.PutBuffer(payload)
		return err
	}
	defer codec.PutBuffer(payload)
	meta := []uint64{uint64(k.I), uint64(k.J)}
	for _, v := range meta {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, tag); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(payload))); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(payload))
}

func readChunk(r io.Reader, maxChunk uint64) (bmat.BlockKey, matrix.Block, error) {
	var i, j uint64
	if err := binary.Read(r, binary.LittleEndian, &i); err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	if err := binary.Read(r, binary.LittleEndian, &j); err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	var tag uint8
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	if n > maxChunk {
		return bmat.BlockKey{}, nil, fmt.Errorf("%w: chunk size %d exceeds the %d-byte bound for this geometry", ErrBadFormat, n, maxChunk)
	}
	payload, err := readCapped(r, n)
	if err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	var crc uint32
	if err := binary.Read(r, binary.LittleEndian, &crc); err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	if crc != crc32.ChecksumIEEE(payload) {
		return bmat.BlockKey{}, nil, ErrChecksum
	}
	blk, err := decodeBlock(tag, payload)
	if err != nil {
		return bmat.BlockKey{}, nil, err
	}
	return bmat.BlockKey{I: int(i), J: int(j)}, blk, nil
}

// truncated classifies an I/O error while reading chunk structure: a
// stream that ends (or breaks) mid-chunk is a corrupt file, so hostile or
// crash-truncated input always surfaces as ErrBadFormat, never a raw EOF
// the caller would have to special-case.
func truncated(err error) error {
	return fmt.Errorf("%w: truncated chunk: %v", ErrBadFormat, err)
}

// readCapped reads exactly n declared bytes, but grows its buffer only as
// data actually arrives (1 MiB steps). A forged length field therefore
// cannot force an n-sized allocation up front: the allocation is bounded by
// the real input size.
func readCapped(r io.Reader, n uint64) ([]byte, error) {
	const step = 1 << 20
	buf := make([]byte, 0, minU64(n, step))
	for uint64(len(buf)) < n {
		chunk := minU64(n-uint64(len(buf)), step)
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// decodeBlock parses a chunk payload via the shared codec, restricted to
// the portable tags this file format writes, and reclassifies codec
// failures as this package's ErrBadFormat so existing callers (and the fuzz
// harness) keep seeing the same error taxonomy.
func decodeBlock(tag uint8, payload []byte) (matrix.Block, error) {
	if tag != chunkDense && tag != chunkCSR {
		return nil, fmt.Errorf("%w: unknown chunk tag %d", ErrBadFormat, tag)
	}
	blk, err := codec.Decode(tag, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return blk, nil
}

func sortKeys(keys []bmat.BlockKey) {
	for i := 1; i < len(keys); i++ {
		v := keys[i]
		j := i - 1
		for j >= 0 && (keys[j].I > v.I || (keys[j].I == v.I && keys[j].J > v.J)) {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = v
	}
}
