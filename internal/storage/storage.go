// Package storage persists block matrices in a chunked, checksummed,
// columnar binary format — the stand-in for the paper's Parquet-on-HDFS
// data path (§5). Each block is one chunk with a CRC32 trailer; dense
// blocks store raw values, sparse blocks store CSR arrays, so a matrix
// round-trips without densification.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// magic identifies a DistME block-matrix file.
const magic = "DMEB"

// formatVersion is bumped on incompatible layout changes.
const formatVersion = 1

// Chunk format tags.
const (
	chunkDense uint8 = 0
	chunkCSR   uint8 = 1
)

// ErrBadFormat reports a corrupt or foreign file.
var ErrBadFormat = errors.New("storage: not a DistME block-matrix file")

// ErrChecksum reports a chunk whose CRC32 does not match its payload.
var ErrChecksum = errors.New("storage: chunk checksum mismatch")

// Write serializes a block matrix to w.
func Write(w io.Writer, m *bmat.BlockMatrix) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	header := []uint64{
		formatVersion,
		uint64(m.Rows), uint64(m.Cols), uint64(m.BlockSize),
		uint64(m.NumBlocks()),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	// Deterministic chunk order: sorted keys.
	keys := m.Keys()
	sortKeys(keys)
	for _, k := range keys {
		if err := writeChunk(bw, k, m.Block(k.I, k.J)); err != nil {
			return fmt.Errorf("storage: block %v: %w", k, err)
		}
	}
	return bw.Flush()
}

// WriteFile serializes a block matrix to a file path.
func WriteFile(path string, m *bmat.BlockMatrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read deserializes a block matrix from r.
func Read(r io.Reader) (*bmat.BlockMatrix, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head) != magic {
		return nil, ErrBadFormat
	}
	var version, rows, cols, blockSize, nblocks uint64
	for _, p := range []*uint64{&version, &rows, &cols, &blockSize, &nblocks} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: truncated header", ErrBadFormat)
		}
	}
	if version != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, version)
	}
	if rows > 1<<40 || cols > 1<<40 || blockSize == 0 || blockSize > 1<<24 || nblocks > rows*cols+1 {
		return nil, fmt.Errorf("%w: implausible header (%d x %d, block %d, %d chunks)", ErrBadFormat, rows, cols, blockSize, nblocks)
	}
	m := bmat.New(int(rows), int(cols), int(blockSize))
	// The tightest payload any block of this geometry can need: a CSR block
	// with a full complement of entries. Anything larger is corruption —
	// checked before allocating, so a flipped length byte cannot trigger an
	// enormous allocation.
	maxChunk := 24 + 8*(blockSize+1) + 16*blockSize*blockSize + 16
	for i := uint64(0); i < nblocks; i++ {
		key, blk, err := readChunk(br, maxChunk)
		if err != nil {
			return nil, fmt.Errorf("storage: chunk %d: %w", i, err)
		}
		// Keys and the chunk header are outside the payload CRC; validate
		// them against the grid before trusting them (a flipped key byte
		// must surface as ErrBadFormat, not a panic).
		if key.I < 0 || key.I >= m.IB || key.J < 0 || key.J >= m.JB {
			return nil, fmt.Errorf("%w: chunk %d key %v outside grid %dx%d", ErrBadFormat, i, key, m.IB, m.JB)
		}
		wr, wc := m.BlockDims(key.I, key.J)
		br2, bc := blk.Dims()
		if br2 != wr || bc != wc {
			return nil, fmt.Errorf("%w: chunk %d is %dx%d, slot %v wants %dx%d", ErrBadFormat, i, br2, bc, key, wr, wc)
		}
		m.SetBlock(key.I, key.J, blk)
	}
	return m, nil
}

// ReadFile deserializes a block matrix from a file path.
func ReadFile(path string) (*bmat.BlockMatrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// writeChunk emits one block: key, format tag, payload, CRC32 of payload.
func writeChunk(w io.Writer, k bmat.BlockKey, b matrix.Block) error {
	payload, tag, err := encodeBlock(b)
	if err != nil {
		return err
	}
	meta := []uint64{uint64(k.I), uint64(k.J)}
	for _, v := range meta {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, tag); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(payload))); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(payload))
}

func readChunk(r io.Reader, maxChunk uint64) (bmat.BlockKey, matrix.Block, error) {
	var i, j uint64
	if err := binary.Read(r, binary.LittleEndian, &i); err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	if err := binary.Read(r, binary.LittleEndian, &j); err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	var tag uint8
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	var n uint64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	if n > maxChunk {
		return bmat.BlockKey{}, nil, fmt.Errorf("%w: chunk size %d exceeds the %d-byte bound for this geometry", ErrBadFormat, n, maxChunk)
	}
	payload, err := readCapped(r, n)
	if err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	var crc uint32
	if err := binary.Read(r, binary.LittleEndian, &crc); err != nil {
		return bmat.BlockKey{}, nil, truncated(err)
	}
	if crc != crc32.ChecksumIEEE(payload) {
		return bmat.BlockKey{}, nil, ErrChecksum
	}
	blk, err := decodeBlock(tag, payload)
	if err != nil {
		return bmat.BlockKey{}, nil, err
	}
	return bmat.BlockKey{I: int(i), J: int(j)}, blk, nil
}

// truncated classifies an I/O error while reading chunk structure: a
// stream that ends (or breaks) mid-chunk is a corrupt file, so hostile or
// crash-truncated input always surfaces as ErrBadFormat, never a raw EOF
// the caller would have to special-case.
func truncated(err error) error {
	return fmt.Errorf("%w: truncated chunk: %v", ErrBadFormat, err)
}

// readCapped reads exactly n declared bytes, but grows its buffer only as
// data actually arrives (1 MiB steps). A forged length field therefore
// cannot force an n-sized allocation up front: the allocation is bounded by
// the real input size.
func readCapped(r io.Reader, n uint64) ([]byte, error) {
	const step = 1 << 20
	buf := make([]byte, 0, minU64(n, step))
	for uint64(len(buf)) < n {
		chunk := minU64(n-uint64(len(buf)), step)
		start := len(buf)
		buf = append(buf, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// encodeBlock serializes a block to a payload and format tag. CSC blocks
// are converted to CSR on the way out; the format self-describes.
func encodeBlock(b matrix.Block) ([]byte, uint8, error) {
	switch v := b.(type) {
	case *matrix.Dense:
		buf := make([]byte, 16+8*len(v.Data))
		binary.LittleEndian.PutUint64(buf[0:], uint64(v.RowsN))
		binary.LittleEndian.PutUint64(buf[8:], uint64(v.ColsN))
		for i, x := range v.Data {
			binary.LittleEndian.PutUint64(buf[16+8*i:], mathFloat64bits(x))
		}
		return buf, chunkDense, nil
	case *matrix.CSR:
		return encodeCSR(v), chunkCSR, nil
	case *matrix.CSC:
		csr := matrix.NewCSRFromDense(v.Dense())
		return encodeCSR(csr), chunkCSR, nil
	default:
		return nil, 0, fmt.Errorf("storage: unsupported block type %T", b)
	}
}

func encodeCSR(v *matrix.CSR) []byte {
	n := len(v.Val)
	buf := make([]byte, 24+8*(len(v.RowPtr)+n+n))
	binary.LittleEndian.PutUint64(buf[0:], uint64(v.RowsN))
	binary.LittleEndian.PutUint64(buf[8:], uint64(v.ColsN))
	binary.LittleEndian.PutUint64(buf[16:], uint64(n))
	off := 24
	for _, p := range v.RowPtr {
		binary.LittleEndian.PutUint64(buf[off:], uint64(p))
		off += 8
	}
	for _, c := range v.ColIdx {
		binary.LittleEndian.PutUint64(buf[off:], uint64(c))
		off += 8
	}
	for _, x := range v.Val {
		binary.LittleEndian.PutUint64(buf[off:], mathFloat64bits(x))
		off += 8
	}
	return buf
}

// maxBlockSide bounds decoded block dimensions, mirroring the header's
// blockSize plausibility cap; anything larger is corruption and must be
// rejected before the dimensions feed an allocation.
const maxBlockSide = 1 << 24

func decodeBlock(tag uint8, payload []byte) (matrix.Block, error) {
	switch tag {
	case chunkDense:
		if len(payload) < 16 {
			return nil, fmt.Errorf("%w: short dense chunk", ErrBadFormat)
		}
		rows := int(binary.LittleEndian.Uint64(payload[0:]))
		cols := int(binary.LittleEndian.Uint64(payload[8:]))
		if rows < 0 || cols < 0 || rows > maxBlockSide || cols > maxBlockSide {
			return nil, fmt.Errorf("%w: implausible dense dimensions %dx%d", ErrBadFormat, rows, cols)
		}
		if len(payload) != 16+8*rows*cols {
			return nil, fmt.Errorf("%w: dense chunk size mismatch", ErrBadFormat)
		}
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = mathFloat64frombits(binary.LittleEndian.Uint64(payload[16+8*i:]))
		}
		return matrix.NewDenseData(rows, cols, data), nil
	case chunkCSR:
		if len(payload) < 24 {
			return nil, fmt.Errorf("%w: short CSR chunk", ErrBadFormat)
		}
		rows := int(binary.LittleEndian.Uint64(payload[0:]))
		cols := int(binary.LittleEndian.Uint64(payload[8:]))
		nnz := int(binary.LittleEndian.Uint64(payload[16:]))
		if rows < 0 || cols < 0 || rows > maxBlockSide || cols > maxBlockSide {
			return nil, fmt.Errorf("%w: implausible CSR dimensions %dx%d", ErrBadFormat, rows, cols)
		}
		if nnz < 0 || (rows > 0 && cols > 0 && nnz > rows*cols) || (rows*cols == 0 && nnz != 0) {
			return nil, fmt.Errorf("%w: implausible CSR entry count %d for %dx%d", ErrBadFormat, nnz, rows, cols)
		}
		want := 24 + 8*(rows+1+nnz+nnz)
		if len(payload) != want {
			return nil, fmt.Errorf("%w: CSR chunk size mismatch", ErrBadFormat)
		}
		m := &matrix.CSR{
			RowsN: rows, ColsN: cols,
			RowPtr: make([]int, rows+1),
			ColIdx: make([]int, nnz),
			Val:    make([]float64, nnz),
		}
		off := 24
		for i := range m.RowPtr {
			m.RowPtr[i] = int(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		for i := range m.ColIdx {
			m.ColIdx[i] = int(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		for i := range m.Val {
			m.Val[i] = mathFloat64frombits(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		// Structural validation: a well-checksummed but hand-crafted file
		// must not be able to smuggle indices that panic later reads.
		if m.RowPtr[0] != 0 || m.RowPtr[rows] != nnz {
			return nil, fmt.Errorf("%w: CSR row pointers do not span the entries", ErrBadFormat)
		}
		for i := 0; i < rows; i++ {
			if m.RowPtr[i] > m.RowPtr[i+1] {
				return nil, fmt.Errorf("%w: CSR row pointers not monotone", ErrBadFormat)
			}
		}
		for _, c := range m.ColIdx {
			if c < 0 || c >= cols {
				return nil, fmt.Errorf("%w: CSR column index %d outside %d columns", ErrBadFormat, c, cols)
			}
		}
		return m, nil
	default:
		return nil, fmt.Errorf("%w: unknown chunk tag %d", ErrBadFormat, tag)
	}
}

func sortKeys(keys []bmat.BlockKey) {
	for i := 1; i < len(keys); i++ {
		v := keys[i]
		j := i - 1
		for j >= 0 && (keys[j].I > v.I || (keys[j].I == v.I && keys[j].J > v.J)) {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = v
	}
}

// mathFloat64bits and mathFloat64frombits alias math's conversions; kept at
// the bottom to keep the encoding code free of repeated package qualifiers.
func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
