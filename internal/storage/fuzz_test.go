package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"distme/internal/bmat"
)

// fuzzSeedFile builds a small valid file to seed the corpus.
func fuzzSeedFile(tb testing.TB) []byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(99))
	m := bmat.RandomDense(rng, 6, 6, 3)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRead drives Read with arbitrary bytes. Checkpoint recovery reads
// these files right after a crash, so they are hostile input by
// construction: corrupt, truncated, or foreign data must come back as
// ErrBadFormat or ErrChecksum — never a panic, a raw io error, or an
// attacker-sized allocation.
func FuzzRead(f *testing.F) {
	valid := fuzzSeedFile(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])          // truncated mid-chunk
	f.Add(valid[:len(magic)+3])          // truncated header
	f.Add([]byte{})                      // empty
	f.Add([]byte("PAR1 not our format")) // foreign magic

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-5] ^= 0xff // corrupt a payload/CRC byte
	f.Add(flipped)

	// A forged header declaring a huge chunk: must be rejected by the size
	// bound, not allocated.
	forged := append([]byte(nil), valid[:len(magic)+5*8]...)
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint64(huge, 1<<60)
	forged = append(forged, huge...)
	f.Add(forged)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err == nil {
			// Accepted input must be internally consistent enough to walk.
			if m == nil {
				t.Fatal("nil matrix with nil error")
			}
			for _, k := range m.Keys() {
				if blk := m.Block(k.I, k.J); blk != nil {
					blk.Dims()
				}
			}
			return
		}
		if !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("Read returned an untyped error: %v", err)
		}
	})
}

// TestReadTruncatedChunkIsBadFormat pins the classification the fuzz target
// relies on: a file cut off between or inside chunks is ErrBadFormat, not a
// bare io.EOF.
func TestReadTruncatedChunkIsBadFormat(t *testing.T) {
	valid := fuzzSeedFile(t)
	for cut := len(magic) + 5*8; cut < len(valid); cut += 7 {
		_, err := Read(bytes.NewReader(valid[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !errors.Is(err, ErrBadFormat) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("truncation at %d: untyped error %v", cut, err)
		}
	}
}
