package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

func TestRoundTripDense(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	m := bmat.RandomDense(rng, 17, 13, 4) // ragged edges included
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().Equal(m.ToDense()) {
		t.Fatal("dense round trip changed values")
	}
	if got.BlockSize != m.BlockSize || got.Rows != m.Rows || got.Cols != m.Cols {
		t.Fatal("round trip changed geometry")
	}
}

func TestRoundTripSparseKeepsFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	m := bmat.RandomSparse(rng, 20, 20, 5, 0.15)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().Equal(m.ToDense()) {
		t.Fatal("sparse round trip changed values")
	}
	if !got.IsSparse() {
		t.Fatal("sparse blocks densified by round trip")
	}
	if got.NNZ() != m.NNZ() {
		t.Fatalf("nnz changed: %d vs %d", got.NNZ(), m.NNZ())
	}
}

func TestRoundTripMixedFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	m := bmat.New(8, 8, 4)
	m.SetBlock(0, 0, matrix.RandomDense(rng, 4, 4))
	m.SetBlock(0, 1, matrix.RandomSparse(rng, 4, 4, 0.3))
	m.SetBlock(1, 1, matrix.NewCSCFromDense(matrix.RandomDense(rng, 4, 4)))
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().EqualApprox(m.ToDense(), 0) {
		t.Fatal("mixed-format round trip changed values")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(25), 1+rng.Intn(25)
		bs := 1 + rng.Intn(6)
		var m *bmat.BlockMatrix
		if rng.Intn(2) == 0 {
			m = bmat.RandomDense(rng, rows, cols, bs)
		} else {
			m = bmat.RandomSparse(rng, rows, cols, bs, 0.3)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return got.ToDense().Equal(m.ToDense())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	m := bmat.RandomDense(rng, 10, 10, 4)
	path := filepath.Join(t.TempDir(), "m.dmeb")
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().Equal(m.ToDense()) {
		t.Fatal("file round trip changed values")
	}
}

func TestReadRejectsForeignFile(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("PK\x03\x04 not a matrix")))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	m := bmat.RandomDense(rng, 8, 8, 4)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	m := bmat.RandomDense(rng, 8, 8, 4)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in the middle of the first chunk's payload.
	data[len(data)/2] ^= 0xFF
	_, err := Read(bytes.NewReader(data))
	if err == nil {
		t.Fatal("corrupted file accepted")
	}
	if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want checksum or format error", err)
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	m := bmat.RandomDense(rng, 4, 4, 2)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version field
	if _, err := Read(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestEmptyMatrixRoundTrip(t *testing.T) {
	m := bmat.New(10, 10, 3) // all-zero: no chunks
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBlocks() != 0 {
		t.Fatal("empty matrix grew blocks")
	}
	if got.Rows != 10 || got.Cols != 10 || got.BlockSize != 3 {
		t.Fatal("geometry lost")
	}
}

func TestWriteDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	m := bmat.RandomDense(rng, 12, 12, 3)
	var a, b bytes.Buffer
	if err := Write(&a, m); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, m); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same matrix serialized to different bytes")
	}
}

// TestRandomCorruptionNeverPanics flips random bytes and requires the
// reader to either error out or (for flips in dead space) return the exact
// original — never panic, never silently return corrupt data.
func TestRandomCorruptionNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	m := bmat.RandomSparse(rng, 16, 16, 4, 0.3)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	want := m.ToDense()
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, len(orig))
		copy(data, orig)
		pos := rng.Intn(len(data))
		data[pos] ^= byte(1 + rng.Intn(255))
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			continue // detected — good
		}
		// A successful read after corruption must still decode the right
		// geometry; a payload change must have been caught by the CRC, so
		// only key/header bits outside checksummed payloads can slip
		// through — verify values wherever the geometry still matches.
		if got.Rows == m.Rows && got.Cols == m.Cols && got.BlockSize == m.BlockSize &&
			got.NumBlocks() == m.NumBlocks() {
			equal := true
			for _, k := range got.Keys() {
				if k.I >= got.IB || k.J >= got.JB {
					equal = false
					break
				}
			}
			if equal && got.NNZ() != m.NNZ() {
				t.Fatalf("trial %d (byte %d): corrupt data slipped past the CRC", trial, pos)
			}
			_ = want
		}
	}
}

func TestReadEmptyInput(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}
