package metrics

import "testing"

func TestElasticStatsRecorderRoundTrip(t *testing.T) {
	var r Recorder
	r.AddTaskRetry()
	r.AddTaskRetry()
	r.AddSpeculative()
	r.AddSpeculativeWin()
	r.AddFetchRetry()
	r.AddFetchRetry()
	r.AddFetchRetry()
	r.AddRecomputedPartial()
	r.AddFaultInjected()

	el := r.Elastic()
	want := ElasticStats{
		TaskRetries: 2, SpeculativeLaunched: 1, SpeculativeWins: 1,
		FetchRetries: 3, RecomputedPartials: 1, FaultsInjected: 1,
	}
	if el != want {
		t.Fatalf("Elastic() = %+v, want %+v", el, want)
	}
	if snap := r.Snapshot(); snap.Elastic != want {
		t.Fatalf("Snapshot().Elastic = %+v, want %+v", snap.Elastic, want)
	}
}

func TestElasticStatsSub(t *testing.T) {
	a := ElasticStats{TaskRetries: 5, SpeculativeLaunched: 3, SpeculativeWins: 2,
		FetchRetries: 7, RecomputedPartials: 4, FaultsInjected: 9}
	b := ElasticStats{TaskRetries: 2, SpeculativeLaunched: 1, SpeculativeWins: 1,
		FetchRetries: 3, RecomputedPartials: 1, FaultsInjected: 4}
	got := a.Sub(b)
	want := ElasticStats{TaskRetries: 3, SpeculativeLaunched: 2, SpeculativeWins: 1,
		FetchRetries: 4, RecomputedPartials: 3, FaultsInjected: 5}
	if got != want {
		t.Fatalf("Sub = %+v, want %+v", got, want)
	}
}

func TestElasticStatsResets(t *testing.T) {
	var r Recorder
	r.AddTaskRetry()
	r.AddFaultInjected()
	r.Reset()
	if el := r.Elastic(); el != (ElasticStats{}) {
		t.Fatalf("Reset left elastic counters: %+v", el)
	}
}
