package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Per-tenant serving-plane accounting. NetStats counts what the driver's
// wire machinery did in aggregate; TenantStats splits the serving plane's
// view of that traffic by tenant — admission decisions, quota charges, and
// the per-job byte/compute attribution the driver reports back through its
// job meters. A ServeRecorder is the mutable accumulator the server owns.

// TenantStats is one tenant's serving-plane counter block.
type TenantStats struct {
	Tenant string `json:"tenant"`

	// Admission outcomes. Submitted = Admitted + the three Rejected rows.
	Submitted          int64 `json:"submitted"`
	Admitted           int64 `json:"admitted"`
	RejectedQueueFull  int64 `json:"rejected_queue_full"`
	RejectedQuota      int64 `json:"rejected_quota"`
	RejectedInfeasible int64 `json:"rejected_infeasible"`

	// Terminal outcomes of admitted jobs.
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`

	// PlannedBytes accumulates each admitted job's Eq.(4) communication
	// estimate — the quantity byte quotas are charged in. PlannedFlops
	// accumulates the 2·m·k·n multiply-add estimate behind compute quotas.
	PlannedBytes int64 `json:"planned_bytes"`
	PlannedFlops int64 `json:"planned_flops"`

	// MeasuredRequestBytes / MeasuredReplyBytes are the driver's per-job
	// meter totals for completed jobs: encoded block payload dispatched and
	// received. Retries and LocalFallbacks aggregate the same meters.
	MeasuredRequestBytes int64 `json:"measured_request_bytes"`
	MeasuredReplyBytes   int64 `json:"measured_reply_bytes"`
	Retries              int64 `json:"retries"`
	LocalFallbacks       int64 `json:"local_fallbacks"`

	// QueueWaitNanos / RunNanos accumulate time jobs spent queued and
	// running, over completed jobs.
	QueueWaitNanos int64 `json:"queue_wait_nanos"`
	RunNanos       int64 `json:"run_nanos"`
}

// ServeRecorder accumulates TenantStats per tenant. The zero value is ready
// to use; all methods are safe for concurrent use.
type ServeRecorder struct {
	mu      sync.Mutex
	tenants map[string]*TenantStats
}

func (r *ServeRecorder) tenant(name string) *TenantStats {
	if r.tenants == nil {
		r.tenants = map[string]*TenantStats{}
	}
	t, ok := r.tenants[name]
	if !ok {
		t = &TenantStats{Tenant: name}
		r.tenants[name] = t
	}
	return t
}

// OnSubmitted counts one submit attempt (before its admission verdict).
func (r *ServeRecorder) OnSubmitted(tenant string) {
	r.mu.Lock()
	r.tenant(tenant).Submitted++
	r.mu.Unlock()
}

// OnAdmitted counts one admitted job and charges its planned cost.
func (r *ServeRecorder) OnAdmitted(tenant string, plannedBytes, plannedFlops int64) {
	r.mu.Lock()
	t := r.tenant(tenant)
	t.Admitted++
	t.PlannedBytes += plannedBytes
	t.PlannedFlops += plannedFlops
	r.mu.Unlock()
}

// Rejection reasons for OnRejected.
const (
	RejectQueueFull  = "queue_full"
	RejectQuota      = "quota"
	RejectInfeasible = "infeasible"
)

// OnRejected counts one rejected submit under its reason.
func (r *ServeRecorder) OnRejected(tenant, reason string) {
	r.mu.Lock()
	t := r.tenant(tenant)
	switch reason {
	case RejectQueueFull:
		t.RejectedQueueFull++
	case RejectQuota:
		t.RejectedQuota++
	default:
		t.RejectedInfeasible++
	}
	r.mu.Unlock()
}

// OnCompleted counts one successful job with its wait/run times and the
// driver meter's measured traffic.
func (r *ServeRecorder) OnCompleted(tenant string, wait, run time.Duration, requestBytes, replyBytes, retries, localFallbacks int64) {
	r.mu.Lock()
	t := r.tenant(tenant)
	t.Completed++
	t.QueueWaitNanos += wait.Nanoseconds()
	t.RunNanos += run.Nanoseconds()
	t.MeasuredRequestBytes += requestBytes
	t.MeasuredReplyBytes += replyBytes
	t.Retries += retries
	t.LocalFallbacks += localFallbacks
	r.mu.Unlock()
}

// OnFailed counts one admitted job that ended in error.
func (r *ServeRecorder) OnFailed(tenant string) {
	r.mu.Lock()
	r.tenant(tenant).Failed++
	r.mu.Unlock()
}

// OnCancelled counts one admitted job cancelled before completion.
func (r *ServeRecorder) OnCancelled(tenant string) {
	r.mu.Lock()
	r.tenant(tenant).Cancelled++
	r.mu.Unlock()
}

// Tenants snapshots every tenant's counters, sorted by tenant name.
func (r *ServeRecorder) Tenants() []TenantStats {
	r.mu.Lock()
	out := make([]TenantStats, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, *t)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// String renders one line per tenant, for logs.
func (r *ServeRecorder) String() string {
	var b strings.Builder
	for _, t := range r.Tenants() {
		fmt.Fprintf(&b, "%s: submitted=%d admitted=%d completed=%d failed=%d cancelled=%d rejected(queue=%d quota=%d infeasible=%d) planned=%dB measured=%d/%dB\n",
			t.Tenant, t.Submitted, t.Admitted, t.Completed, t.Failed, t.Cancelled,
			t.RejectedQueueFull, t.RejectedQuota, t.RejectedInfeasible,
			t.PlannedBytes, t.MeasuredRequestBytes, t.MeasuredReplyBytes)
	}
	return b.String()
}
