// Package metrics provides the communication and timing accounting that the
// paper's evaluation reports: bytes moved in the matrix-repartition and
// matrix-aggregation steps, time spent in each of the three steps of
// distributed matrix multiplication, and GPU PCI-E traffic. Counters are
// safe for concurrent use by task goroutines.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Step identifies one of the three steps of distributed matrix
// multiplication (paper §2.2) plus the GPU transfer channel.
type Step int

const (
	// StepRepartition is the matrix repartition step (input shuffle /
	// broadcast / replication).
	StepRepartition Step = iota
	// StepLocalMultiply is the per-task local multiplication step.
	StepLocalMultiply
	// StepAggregation is the matrix aggregation step (intermediate-block
	// shuffle and reduce).
	StepAggregation
	// StepPCIE is host↔device traffic in the GPU acceleration path.
	StepPCIE
	numSteps
)

// String names the step as the paper's figures do.
func (s Step) String() string {
	switch s {
	case StepRepartition:
		return "matrix repartition"
	case StepLocalMultiply:
		return "local multiplication"
	case StepAggregation:
		return "matrix aggregation"
	case StepPCIE:
		return "pci-e transfer"
	default:
		return fmt.Sprintf("step(%d)", int(s))
	}
}

// ElasticStats counts the fault-tolerant-execution events of a run: task
// re-executions, speculative straggler copies, shuffle-fetch retries and
// lineage recomputations, plus the injected faults that caused them. All
// counters are monotone; a per-operation view is obtained by snapshot
// subtraction, like the byte counters.
type ElasticStats struct {
	// TaskRetries is the number of task re-executions after failed attempts.
	TaskRetries int64 `json:"task_retries"`
	// SpeculativeLaunched counts speculative copies launched for stragglers.
	SpeculativeLaunched int64 `json:"speculative_launched"`
	// SpeculativeWins counts speculative copies that finished before the
	// original attempt (the original is cancelled and its result discarded).
	SpeculativeWins int64 `json:"speculative_wins"`
	// FetchRetries counts transient shuffle-fetch failures that were retried.
	FetchRetries int64 `json:"fetch_retries"`
	// RecomputedPartials counts aggregation partials recomputed from lineage
	// after their producing task's output was lost.
	RecomputedPartials int64 `json:"recomputed_partials"`
	// FaultsInjected counts faults the deterministic injector delivered
	// (crashes, injected O.O.M., straggler delays, fetch failures).
	FaultsInjected int64 `json:"faults_injected"`
}

// Sub returns the counter-wise difference e − o.
func (e ElasticStats) Sub(o ElasticStats) ElasticStats {
	return ElasticStats{
		TaskRetries:         e.TaskRetries - o.TaskRetries,
		SpeculativeLaunched: e.SpeculativeLaunched - o.SpeculativeLaunched,
		SpeculativeWins:     e.SpeculativeWins - o.SpeculativeWins,
		FetchRetries:        e.FetchRetries - o.FetchRetries,
		RecomputedPartials:  e.RecomputedPartials - o.RecomputedPartials,
		FaultsInjected:      e.FaultsInjected - o.FaultsInjected,
	}
}

// String renders the elastic counters compactly for logs and reports.
func (e ElasticStats) String() string {
	return fmt.Sprintf("retries=%d speculative=%d/%d fetch-retries=%d recomputed=%d faults=%d",
		e.TaskRetries, e.SpeculativeWins, e.SpeculativeLaunched,
		e.FetchRetries, e.RecomputedPartials, e.FaultsInjected)
}

// NetStats counts the real-network elasticity events of a driver: failure
// detector heartbeats and their round-trip times, reconnects of dead
// workers, membership churn, per-RPC deadline expiries, cuboid
// reassignments, and local-compute fallbacks. All counters are monotone;
// per-operation views come from snapshot subtraction.
type NetStats struct {
	// HeartbeatsSent and HeartbeatMisses count failure-detector probes and
	// the ones that failed or timed out.
	HeartbeatsSent  int64 `json:"heartbeats_sent"`
	HeartbeatMisses int64 `json:"heartbeat_misses"`
	// HeartbeatRTTNanos and HeartbeatRTTCount accumulate successful-probe
	// round-trip time (see HeartbeatRTTAvg); HeartbeatRTTMax is the largest
	// single RTT observed.
	HeartbeatRTTNanos int64         `json:"heartbeat_rtt_nanos"`
	HeartbeatRTTCount int64         `json:"heartbeat_rtt_count"`
	HeartbeatRTTMax   time.Duration `json:"heartbeat_rtt_max_nanos"`
	// Reconnects counts dead workers successfully redialed.
	Reconnects int64 `json:"reconnects"`
	// WorkersJoined and WorkersLeft count dynamic membership changes
	// (AddWorker / RemoveWorker); WorkersDeclaredDead counts members the
	// detector or a failed call retired.
	WorkersJoined       int64 `json:"workers_joined"`
	WorkersLeft         int64 `json:"workers_left"`
	WorkersDeclaredDead int64 `json:"workers_declared_dead"`
	// DeadlineTimeouts counts RPCs abandoned past their per-call deadline.
	DeadlineTimeouts int64 `json:"deadline_timeouts"`
	// CuboidRetries counts cuboid scheduling attempts beyond the first.
	CuboidRetries int64 `json:"cuboid_retries"`
	// LocalFallbacks counts cuboids computed on the driver because the
	// worker pool had drained (or every attempt failed).
	LocalFallbacks int64 `json:"local_fallbacks"`
	// WireEncodeBytes/Nanos and WireDecodeBytes/Nanos meter the driver's
	// wire codec: bytes framed for requests and parsed from responses, and
	// the time spent doing it (the serialization cost the gob path hid).
	WireEncodeBytes int64 `json:"wire_encode_bytes"`
	WireEncodeNanos int64 `json:"wire_encode_nanos"`
	WireDecodeBytes int64 `json:"wire_decode_bytes"`
	WireDecodeNanos int64 `json:"wire_decode_nanos"`
	// CacheRefsSent counts blocks replaced by 32-byte digest references on
	// the wire; CacheBytesSaved accumulates the encoded payload bytes those
	// references avoided resending. CacheRefMisses counts unknown-digest
	// refusals (worker restart, eviction, epoch turnover) that forced an
	// inline resend.
	CacheRefsSent   int64 `json:"cache_refs_sent"`
	CacheRefMisses  int64 `json:"cache_ref_misses"`
	CacheBytesSaved int64 `json:"cache_bytes_saved"`
	// EncodedBlocks counts input blocks shipped under an opt-in wire
	// encoding (fp32 or compressed); EncodedBytesSaved accumulates the
	// difference between their raw fp64 plans and the bytes actually framed.
	// Both stay zero under the default bit-exact encoding.
	EncodedBlocks     int64 `json:"encoded_blocks"`
	EncodedBytesSaved int64 `json:"encoded_bytes_saved"`
	// BatchRPCs counts MultiplyBatch calls issued by the small-cuboid
	// coalescer; BatchItems is the total cuboids they carried;
	// BatchItemErrors counts per-item failures inside otherwise-successful
	// batches (each is retried individually).
	BatchRPCs       int64 `json:"batch_rpcs"`
	BatchItems      int64 `json:"batch_items"`
	BatchItemErrors int64 `json:"batch_item_errors"`
	// PipelinePuts/PipelinePutBytes count Handle uploads into the distributed
	// block store; PipelineOps counts worker-side pipeline operators executed;
	// PipelineFetches/PipelineFetchBytes count final results crossing back to
	// the driver. ResidentBytes is a gauge of bytes currently resident in
	// worker stores for live handles (driver-modeled).
	PipelinePuts       int64 `json:"pipeline_puts"`
	PipelinePutBytes   int64 `json:"pipeline_put_bytes"`
	PipelineOps        int64 `json:"pipeline_ops"`
	PipelineFetches    int64 `json:"pipeline_fetches"`
	PipelineFetchBytes int64 `json:"pipeline_fetch_bytes"`
	ResidentBytes      int64 `json:"resident_bytes"`
	// DriverBytesAvoided accumulates the Eq.(4)-modeled difference between
	// materialize-every-op execution and the resident pipeline actually run —
	// the driver traffic the handle store saved. PipelineRecoveries counts
	// lineage rebuilds after a worker holding resident blocks was lost.
	DriverBytesAvoided int64 `json:"driver_bytes_avoided"`
	PipelineRecoveries int64 `json:"pipeline_recoveries"`
	// ScaleUps/ScaleDowns count autoscaler decisions applied (workers added
	// to / drained out of the membership by the self-healing loop);
	// WorkersRetired counts dead members the supervisor reaped from the
	// table after they stayed unreachable past the retirement threshold.
	ScaleUps       int64 `json:"scale_ups"`
	ScaleDowns     int64 `json:"scale_downs"`
	WorkersRetired int64 `json:"workers_retired"`
	// StragglerRPCs counts successful cuboid RPCs whose latency exceeded the
	// straggler multiple of the driver's rolling mean — the health plane's
	// per-worker slowness signal.
	StragglerRPCs int64 `json:"straggler_rpcs"`
	// PullJobs counts cuboids dispatched in pull mode (manifest-only
	// requests; the worker demand-fetches the operand slices). PullCacheHits
	// counts manifest entries satisfied by the worker's content-addressed
	// cache without any fetch; PullPeerFetches/PullPeerBytes count the
	// coalesced worker→worker fetches pull resolution issued and the payload
	// they moved; PullFallbacks counts pull cuboids the driver downgraded to
	// inline push after a failed resolution.
	PullJobs        int64 `json:"pull_jobs"`
	PullCacheHits   int64 `json:"pull_cache_hits"`
	PullPeerFetches int64 `json:"pull_peer_fetches"`
	PullPeerBytes   int64 `json:"pull_peer_bytes"`
	PullFallbacks   int64 `json:"pull_fallbacks"`
}

// HeartbeatRTTAvg is the mean heartbeat round-trip time.
func (n NetStats) HeartbeatRTTAvg() time.Duration {
	if n.HeartbeatRTTCount == 0 {
		return 0
	}
	return time.Duration(n.HeartbeatRTTNanos / n.HeartbeatRTTCount)
}

// Sub returns the counter-wise difference n − o. HeartbeatRTTMax is kept
// from n (a maximum does not subtract).
func (n NetStats) Sub(o NetStats) NetStats {
	return NetStats{
		HeartbeatsSent:      n.HeartbeatsSent - o.HeartbeatsSent,
		HeartbeatMisses:     n.HeartbeatMisses - o.HeartbeatMisses,
		HeartbeatRTTNanos:   n.HeartbeatRTTNanos - o.HeartbeatRTTNanos,
		HeartbeatRTTCount:   n.HeartbeatRTTCount - o.HeartbeatRTTCount,
		HeartbeatRTTMax:     n.HeartbeatRTTMax,
		Reconnects:          n.Reconnects - o.Reconnects,
		WorkersJoined:       n.WorkersJoined - o.WorkersJoined,
		WorkersLeft:         n.WorkersLeft - o.WorkersLeft,
		WorkersDeclaredDead: n.WorkersDeclaredDead - o.WorkersDeclaredDead,
		DeadlineTimeouts:    n.DeadlineTimeouts - o.DeadlineTimeouts,
		CuboidRetries:       n.CuboidRetries - o.CuboidRetries,
		LocalFallbacks:      n.LocalFallbacks - o.LocalFallbacks,
		WireEncodeBytes:     n.WireEncodeBytes - o.WireEncodeBytes,
		WireEncodeNanos:     n.WireEncodeNanos - o.WireEncodeNanos,
		WireDecodeBytes:     n.WireDecodeBytes - o.WireDecodeBytes,
		WireDecodeNanos:     n.WireDecodeNanos - o.WireDecodeNanos,
		CacheRefsSent:       n.CacheRefsSent - o.CacheRefsSent,
		CacheRefMisses:      n.CacheRefMisses - o.CacheRefMisses,
		CacheBytesSaved:     n.CacheBytesSaved - o.CacheBytesSaved,
		EncodedBlocks:       n.EncodedBlocks - o.EncodedBlocks,
		EncodedBytesSaved:   n.EncodedBytesSaved - o.EncodedBytesSaved,
		BatchRPCs:           n.BatchRPCs - o.BatchRPCs,
		BatchItems:          n.BatchItems - o.BatchItems,
		BatchItemErrors:     n.BatchItemErrors - o.BatchItemErrors,
		PipelinePuts:        n.PipelinePuts - o.PipelinePuts,
		PipelinePutBytes:    n.PipelinePutBytes - o.PipelinePutBytes,
		PipelineOps:         n.PipelineOps - o.PipelineOps,
		PipelineFetches:     n.PipelineFetches - o.PipelineFetches,
		PipelineFetchBytes:  n.PipelineFetchBytes - o.PipelineFetchBytes,
		ResidentBytes:       n.ResidentBytes - o.ResidentBytes,
		DriverBytesAvoided:  n.DriverBytesAvoided - o.DriverBytesAvoided,
		PipelineRecoveries:  n.PipelineRecoveries - o.PipelineRecoveries,
		ScaleUps:            n.ScaleUps - o.ScaleUps,
		ScaleDowns:          n.ScaleDowns - o.ScaleDowns,
		WorkersRetired:      n.WorkersRetired - o.WorkersRetired,
		StragglerRPCs:       n.StragglerRPCs - o.StragglerRPCs,
		PullJobs:            n.PullJobs - o.PullJobs,
		PullCacheHits:       n.PullCacheHits - o.PullCacheHits,
		PullPeerFetches:     n.PullPeerFetches - o.PullPeerFetches,
		PullPeerBytes:       n.PullPeerBytes - o.PullPeerBytes,
		PullFallbacks:       n.PullFallbacks - o.PullFallbacks,
	}
}

// String renders the network-elasticity counters compactly.
func (n NetStats) String() string {
	return fmt.Sprintf("heartbeats=%d/%d rtt(avg=%v max=%v) reconnects=%d churn=+%d/-%d dead=%d timeouts=%d retries=%d local=%d wire(enc=%s dec=%s) cache(refs=%d misses=%d saved=%s) encoding(blocks=%d saved=%s) batch(rpcs=%d items=%d errs=%d) pipeline(puts=%d/%s ops=%d fetches=%d/%s resident=%s avoided=%s recoveries=%d)",
		n.HeartbeatsSent-n.HeartbeatMisses, n.HeartbeatsSent,
		n.HeartbeatRTTAvg(), n.HeartbeatRTTMax,
		n.Reconnects, n.WorkersJoined, n.WorkersLeft, n.WorkersDeclaredDead,
		n.DeadlineTimeouts, n.CuboidRetries, n.LocalFallbacks,
		FormatBytes(n.WireEncodeBytes), FormatBytes(n.WireDecodeBytes),
		n.CacheRefsSent, n.CacheRefMisses, FormatBytes(n.CacheBytesSaved),
		n.EncodedBlocks, FormatBytes(n.EncodedBytesSaved),
		n.BatchRPCs, n.BatchItems, n.BatchItemErrors,
		n.PipelinePuts, FormatBytes(n.PipelinePutBytes), n.PipelineOps,
		n.PipelineFetches, FormatBytes(n.PipelineFetchBytes),
		FormatBytes(n.ResidentBytes), FormatBytes(n.DriverBytesAvoided),
		n.PipelineRecoveries) +
		fmt.Sprintf(" scale(+%d/-%d retired=%d) stragglers=%d pull(jobs=%d hits=%d fetches=%d/%s fallbacks=%d)",
			n.ScaleUps, n.ScaleDowns, n.WorkersRetired, n.StragglerRPCs,
			n.PullJobs, n.PullCacheHits, n.PullPeerFetches, FormatBytes(n.PullPeerBytes), n.PullFallbacks)
}

// Recorder accumulates per-step bytes and durations for one job. The zero
// value is ready to use.
type Recorder struct {
	bytes [numSteps]atomic.Int64
	nanos [numSteps]atomic.Int64

	retries      atomic.Int64
	specLaunched atomic.Int64
	specWins     atomic.Int64
	fetchRetries atomic.Int64
	recomputed   atomic.Int64
	faults       atomic.Int64

	heartbeats       atomic.Int64
	heartbeatMisses  atomic.Int64
	rttNanos         atomic.Int64
	rttCount         atomic.Int64
	rttMax           atomic.Int64
	reconnects       atomic.Int64
	workersJoined    atomic.Int64
	workersLeft      atomic.Int64
	workersDead      atomic.Int64
	deadlineTimeouts atomic.Int64
	cuboidRetries    atomic.Int64
	localFallbacks   atomic.Int64

	wireEncBytes    atomic.Int64
	wireEncNanos    atomic.Int64
	wireDecBytes    atomic.Int64
	wireDecNanos    atomic.Int64
	cacheRefsSent   atomic.Int64
	cacheRefMisses  atomic.Int64
	cacheBytesSaved atomic.Int64

	encodedBlocks     atomic.Int64
	encodedBytesSaved atomic.Int64
	batchRPCs         atomic.Int64
	batchItems        atomic.Int64
	batchItemErrors   atomic.Int64

	pipelinePuts       atomic.Int64
	pipelinePutBytes   atomic.Int64
	pipelineOps        atomic.Int64
	pipelineFetches    atomic.Int64
	pipelineFetchBytes atomic.Int64
	residentBytes      atomic.Int64
	driverBytesAvoided atomic.Int64
	pipelineRecoveries atomic.Int64

	scaleUps       atomic.Int64
	scaleDowns     atomic.Int64
	workersRetired atomic.Int64
	stragglerRPCs  atomic.Int64

	pullJobs        atomic.Int64
	pullCacheHits   atomic.Int64
	pullPeerFetches atomic.Int64
	pullPeerBytes   atomic.Int64
	pullFallbacks   atomic.Int64

	mu     sync.Mutex
	spills int64 // bytes written to disk (E.D.C. accounting)
}

// AddHeartbeat records one failure-detector probe sent.
func (r *Recorder) AddHeartbeat() { r.heartbeats.Add(1) }

// AddHeartbeatMiss records a probe that failed or timed out.
func (r *Recorder) AddHeartbeatMiss() { r.heartbeatMisses.Add(1) }

// ObserveHeartbeatRTT records a successful probe's round-trip time.
func (r *Recorder) ObserveHeartbeatRTT(d time.Duration) {
	r.rttNanos.Add(int64(d))
	r.rttCount.Add(1)
	for {
		cur := r.rttMax.Load()
		if int64(d) <= cur || r.rttMax.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// AddReconnect records a dead worker successfully redialed.
func (r *Recorder) AddReconnect() { r.reconnects.Add(1) }

// AddWorkerJoined records a worker added to the membership.
func (r *Recorder) AddWorkerJoined() { r.workersJoined.Add(1) }

// AddWorkerLeft records a worker removed from the membership.
func (r *Recorder) AddWorkerLeft() { r.workersLeft.Add(1) }

// AddWorkerDeclaredDead records a member retired by the failure detector or
// a failed call.
func (r *Recorder) AddWorkerDeclaredDead() { r.workersDead.Add(1) }

// AddDeadlineTimeout records an RPC abandoned past its per-call deadline.
func (r *Recorder) AddDeadlineTimeout() { r.deadlineTimeouts.Add(1) }

// AddCuboidRetry records a cuboid scheduling attempt beyond the first.
func (r *Recorder) AddCuboidRetry() { r.cuboidRetries.Add(1) }

// AddLocalFallback records a cuboid computed locally on the driver.
func (r *Recorder) AddLocalFallback() { r.localFallbacks.Add(1) }

// AddWireEncode records one RPC frame encoded for the wire.
func (r *Recorder) AddWireEncode(bytes int64, d time.Duration) {
	r.wireEncBytes.Add(bytes)
	r.wireEncNanos.Add(int64(d))
}

// AddWireDecode records one RPC body decoded from the wire.
func (r *Recorder) AddWireDecode(bytes int64, d time.Duration) {
	r.wireDecBytes.Add(bytes)
	r.wireDecNanos.Add(int64(d))
}

// AddCacheRefSent records a block replaced by a digest reference on the
// wire; saved is the encoded payload size the reference avoided.
func (r *Recorder) AddCacheRefSent(saved int64) {
	r.cacheRefsSent.Add(1)
	r.cacheBytesSaved.Add(saved)
}

// AddCacheRefMiss records an unknown-digest refusal that forced an inline
// resend.
func (r *Recorder) AddCacheRefMiss() { r.cacheRefMisses.Add(1) }

// AddEncodedBlock records one input block framed under an opt-in wire
// encoding; saved is rawPlan − encodedPlan bytes (never negative: the
// compressed encodings fall back to raw per block).
func (r *Recorder) AddEncodedBlock(saved int64) {
	r.encodedBlocks.Add(1)
	r.encodedBytesSaved.Add(saved)
}

// AddBatchRPC records one MultiplyBatch call carrying items cuboids.
func (r *Recorder) AddBatchRPC(items int) {
	r.batchRPCs.Add(1)
	r.batchItems.Add(int64(items))
}

// AddBatchItemError records one per-item failure inside a batch reply.
func (r *Recorder) AddBatchItemError() { r.batchItemErrors.Add(1) }

// AddPipelinePut records one Handle upload of n payload bytes into the
// distributed block store, and raises the resident gauge.
func (r *Recorder) AddPipelinePut(n int64) {
	r.pipelinePuts.Add(1)
	r.pipelinePutBytes.Add(n)
	r.residentBytes.Add(n)
}

// AddPipelineOp records one worker-side pipeline operator executed, whose
// output adds n bytes to the resident gauge.
func (r *Recorder) AddPipelineOp(n int64) {
	r.pipelineOps.Add(1)
	r.residentBytes.Add(n)
}

// AddPipelineFetch records one final result of n bytes crossing back to the
// driver.
func (r *Recorder) AddPipelineFetch(n int64) {
	r.pipelineFetches.Add(1)
	r.pipelineFetchBytes.Add(n)
}

// AddResidentBytes adjusts the resident gauge by delta (negative on Free).
func (r *Recorder) AddResidentBytes(delta int64) { r.residentBytes.Add(delta) }

// AddDriverBytesAvoided records the Eq.(4)-modeled driver traffic a resident
// pipeline saved over materialize-every-op execution.
func (r *Recorder) AddDriverBytesAvoided(n int64) { r.driverBytesAvoided.Add(n) }

// AddPipelineRecovery records one lineage rebuild of resident handles after
// a worker loss or eviction.
func (r *Recorder) AddPipelineRecovery() { r.pipelineRecoveries.Add(1) }

// AddScaleUp records one autoscaler scale-up applied (a worker added).
func (r *Recorder) AddScaleUp() { r.scaleUps.Add(1) }

// AddScaleDown records one autoscaler scale-down applied (a worker drained
// out of rotation).
func (r *Recorder) AddScaleDown() { r.scaleDowns.Add(1) }

// AddWorkerRetired records a dead member reaped from the table by the
// autoscaler's housekeeping.
func (r *Recorder) AddWorkerRetired() { r.workersRetired.Add(1) }

// AddStragglerRPC records a successful cuboid RPC slower than the straggler
// multiple of the rolling mean.
func (r *Recorder) AddStragglerRPC() { r.stragglerRPCs.Add(1) }

// AddPullJob records one cuboid dispatched in pull mode (manifests on the
// wire instead of operand blocks).
func (r *Recorder) AddPullJob() { r.pullJobs.Add(1) }

// AddPullReply folds one pull reply's resolution counters in: manifest
// entries the worker's cache satisfied, peer fetches it issued, and the
// peer bytes they moved.
func (r *Recorder) AddPullReply(hits, fetches, bytes int64) {
	r.pullCacheHits.Add(hits)
	r.pullPeerFetches.Add(fetches)
	r.pullPeerBytes.Add(bytes)
}

// AddPullFallback records one pull cuboid downgraded to an inline push after
// a failed manifest resolution.
func (r *Recorder) AddPullFallback() { r.pullFallbacks.Add(1) }

// Net returns the current real-network elasticity counters.
func (r *Recorder) Net() NetStats {
	return NetStats{
		HeartbeatsSent:      r.heartbeats.Load(),
		HeartbeatMisses:     r.heartbeatMisses.Load(),
		HeartbeatRTTNanos:   r.rttNanos.Load(),
		HeartbeatRTTCount:   r.rttCount.Load(),
		HeartbeatRTTMax:     time.Duration(r.rttMax.Load()),
		Reconnects:          r.reconnects.Load(),
		WorkersJoined:       r.workersJoined.Load(),
		WorkersLeft:         r.workersLeft.Load(),
		WorkersDeclaredDead: r.workersDead.Load(),
		DeadlineTimeouts:    r.deadlineTimeouts.Load(),
		CuboidRetries:       r.cuboidRetries.Load(),
		LocalFallbacks:      r.localFallbacks.Load(),
		WireEncodeBytes:     r.wireEncBytes.Load(),
		WireEncodeNanos:     r.wireEncNanos.Load(),
		WireDecodeBytes:     r.wireDecBytes.Load(),
		WireDecodeNanos:     r.wireDecNanos.Load(),
		CacheRefsSent:       r.cacheRefsSent.Load(),
		CacheRefMisses:      r.cacheRefMisses.Load(),
		CacheBytesSaved:     r.cacheBytesSaved.Load(),
		EncodedBlocks:       r.encodedBlocks.Load(),
		EncodedBytesSaved:   r.encodedBytesSaved.Load(),
		BatchRPCs:           r.batchRPCs.Load(),
		BatchItems:          r.batchItems.Load(),
		BatchItemErrors:     r.batchItemErrors.Load(),
		PipelinePuts:        r.pipelinePuts.Load(),
		PipelinePutBytes:    r.pipelinePutBytes.Load(),
		PipelineOps:         r.pipelineOps.Load(),
		PipelineFetches:     r.pipelineFetches.Load(),
		PipelineFetchBytes:  r.pipelineFetchBytes.Load(),
		ResidentBytes:       r.residentBytes.Load(),
		DriverBytesAvoided:  r.driverBytesAvoided.Load(),
		PipelineRecoveries:  r.pipelineRecoveries.Load(),
		ScaleUps:            r.scaleUps.Load(),
		ScaleDowns:          r.scaleDowns.Load(),
		WorkersRetired:      r.workersRetired.Load(),
		StragglerRPCs:       r.stragglerRPCs.Load(),
		PullJobs:            r.pullJobs.Load(),
		PullCacheHits:       r.pullCacheHits.Load(),
		PullPeerFetches:     r.pullPeerFetches.Load(),
		PullPeerBytes:       r.pullPeerBytes.Load(),
		PullFallbacks:       r.pullFallbacks.Load(),
	}
}

// AddTaskRetry records one task re-execution after a failed attempt.
func (r *Recorder) AddTaskRetry() { r.retries.Add(1) }

// AddSpeculative records one speculative straggler copy launched.
func (r *Recorder) AddSpeculative() { r.specLaunched.Add(1) }

// AddSpeculativeWin records a speculative copy finishing first.
func (r *Recorder) AddSpeculativeWin() { r.specWins.Add(1) }

// AddFetchRetry records one transient shuffle-fetch failure that was retried.
func (r *Recorder) AddFetchRetry() { r.fetchRetries.Add(1) }

// AddRecomputedPartial records one aggregation partial recomputed from
// lineage after loss.
func (r *Recorder) AddRecomputedPartial() { r.recomputed.Add(1) }

// AddFaultInjected records one fault delivered by the injector.
func (r *Recorder) AddFaultInjected() { r.faults.Add(1) }

// Elastic returns the current elastic-execution counters.
func (r *Recorder) Elastic() ElasticStats {
	return ElasticStats{
		TaskRetries:         r.retries.Load(),
		SpeculativeLaunched: r.specLaunched.Load(),
		SpeculativeWins:     r.specWins.Load(),
		FetchRetries:        r.fetchRetries.Load(),
		RecomputedPartials:  r.recomputed.Load(),
		FaultsInjected:      r.faults.Load(),
	}
}

// AddBytes records n bytes of traffic attributed to step s.
func (r *Recorder) AddBytes(s Step, n int64) { r.bytes[s].Add(n) }

// AddDuration records wall or virtual time attributed to step s.
func (r *Recorder) AddDuration(s Step, d time.Duration) { r.nanos[s].Add(int64(d)) }

// Bytes returns the bytes recorded for step s.
func (r *Recorder) Bytes(s Step) int64 { return r.bytes[s].Load() }

// Duration returns the time recorded for step s.
func (r *Recorder) Duration(s Step) time.Duration { return time.Duration(r.nanos[s].Load()) }

// CommunicationBytes is the paper's "communication cost": repartition plus
// aggregation traffic.
func (r *Recorder) CommunicationBytes() int64 {
	return r.Bytes(StepRepartition) + r.Bytes(StepAggregation)
}

// AddSpill records intermediate data written to disk; the engine compares
// the running total against cluster disk capacity to reproduce the paper's
// E.D.C. (exceeded disk capacity) failures.
func (r *Recorder) AddSpill(n int64) {
	r.mu.Lock()
	r.spills += n
	r.mu.Unlock()
}

// SpillBytes returns the accumulated spill volume.
func (r *Recorder) SpillBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spills
}

// Reset zeroes every counter.
func (r *Recorder) Reset() {
	for i := range r.bytes {
		r.bytes[i].Store(0)
		r.nanos[i].Store(0)
	}
	r.retries.Store(0)
	r.specLaunched.Store(0)
	r.specWins.Store(0)
	r.fetchRetries.Store(0)
	r.recomputed.Store(0)
	r.faults.Store(0)
	r.heartbeats.Store(0)
	r.heartbeatMisses.Store(0)
	r.rttNanos.Store(0)
	r.rttCount.Store(0)
	r.rttMax.Store(0)
	r.reconnects.Store(0)
	r.workersJoined.Store(0)
	r.workersLeft.Store(0)
	r.workersDead.Store(0)
	r.deadlineTimeouts.Store(0)
	r.cuboidRetries.Store(0)
	r.localFallbacks.Store(0)
	r.wireEncBytes.Store(0)
	r.wireEncNanos.Store(0)
	r.wireDecBytes.Store(0)
	r.wireDecNanos.Store(0)
	r.cacheRefsSent.Store(0)
	r.cacheRefMisses.Store(0)
	r.cacheBytesSaved.Store(0)
	r.encodedBlocks.Store(0)
	r.encodedBytesSaved.Store(0)
	r.batchRPCs.Store(0)
	r.batchItems.Store(0)
	r.batchItemErrors.Store(0)
	r.pipelinePuts.Store(0)
	r.pipelinePutBytes.Store(0)
	r.pipelineOps.Store(0)
	r.pipelineFetches.Store(0)
	r.pipelineFetchBytes.Store(0)
	r.residentBytes.Store(0)
	r.driverBytesAvoided.Store(0)
	r.pipelineRecoveries.Store(0)
	r.scaleUps.Store(0)
	r.scaleDowns.Store(0)
	r.workersRetired.Store(0)
	r.stragglerRPCs.Store(0)
	r.pullJobs.Store(0)
	r.pullCacheHits.Store(0)
	r.pullPeerFetches.Store(0)
	r.pullPeerBytes.Store(0)
	r.pullFallbacks.Store(0)
	r.mu.Lock()
	r.spills = 0
	r.mu.Unlock()
}

// StepRatios returns the fraction of total recorded time spent in the three
// multiplication steps, as plotted in Figure 7(e). The fractions sum to 1
// when any time was recorded; otherwise all are 0.
func (r *Recorder) StepRatios() (repartition, local, aggregation float64) {
	rp := float64(r.nanos[StepRepartition].Load())
	lm := float64(r.nanos[StepLocalMultiply].Load())
	ag := float64(r.nanos[StepAggregation].Load())
	total := rp + lm + ag
	if total == 0 {
		return 0, 0, 0
	}
	return rp / total, lm / total, ag / total
}

// Snapshot is an immutable copy of a Recorder's counters, convenient for
// reporting after a run.
type Snapshot struct {
	RepartitionBytes int64         `json:"repartition_bytes"`
	AggregationBytes int64         `json:"aggregation_bytes"`
	PCIEBytes        int64         `json:"pcie_bytes"`
	Repartition      time.Duration `json:"repartition_nanos"`
	LocalMultiply    time.Duration `json:"local_multiply_nanos"`
	Aggregation      time.Duration `json:"aggregation_nanos"`
	PCIE             time.Duration `json:"pcie_nanos"`
	SpillBytes       int64         `json:"spill_bytes"`
	// Elastic carries the fault-tolerant-execution counters.
	Elastic ElasticStats `json:"elastic"`
	// Net carries the real-network elasticity counters (heartbeats,
	// reconnects, membership churn); zero outside the distnet path.
	Net NetStats `json:"net"`
}

// Snapshot captures the current counter values.
func (r *Recorder) Snapshot() Snapshot {
	return Snapshot{
		RepartitionBytes: r.Bytes(StepRepartition),
		AggregationBytes: r.Bytes(StepAggregation),
		PCIEBytes:        r.Bytes(StepPCIE),
		Repartition:      r.Duration(StepRepartition),
		LocalMultiply:    r.Duration(StepLocalMultiply),
		Aggregation:      r.Duration(StepAggregation),
		PCIE:             r.Duration(StepPCIE),
		SpillBytes:       r.SpillBytes(),
		Elastic:          r.Elastic(),
		Net:              r.Net(),
	}
}

// CommunicationBytes is repartition + aggregation traffic of the snapshot.
func (s Snapshot) CommunicationBytes() int64 { return s.RepartitionBytes + s.AggregationBytes }

// Sub returns the counter-wise difference s − o, used to isolate the traffic
// of one operation from a cumulative recorder.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		RepartitionBytes: s.RepartitionBytes - o.RepartitionBytes,
		AggregationBytes: s.AggregationBytes - o.AggregationBytes,
		PCIEBytes:        s.PCIEBytes - o.PCIEBytes,
		Repartition:      s.Repartition - o.Repartition,
		LocalMultiply:    s.LocalMultiply - o.LocalMultiply,
		Aggregation:      s.Aggregation - o.Aggregation,
		PCIE:             s.PCIE - o.PCIE,
		SpillBytes:       s.SpillBytes - o.SpillBytes,
		Elastic:          s.Elastic.Sub(o.Elastic),
		Net:              s.Net.Sub(o.Net),
	}
}

// String renders the snapshot compactly for logs and example output.
func (s Snapshot) String() string {
	return fmt.Sprintf("repartition=%s aggregation=%s pcie=%s comm=%s",
		FormatBytes(s.RepartitionBytes), FormatBytes(s.AggregationBytes),
		FormatBytes(s.PCIEBytes), FormatBytes(s.CommunicationBytes()))
}

// FormatBytes renders a byte count with a binary-prefix unit, e.g. "1.50 GiB".
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.2f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
