package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderBytesAndDurations(t *testing.T) {
	var r Recorder
	r.AddBytes(StepRepartition, 100)
	r.AddBytes(StepRepartition, 50)
	r.AddBytes(StepAggregation, 25)
	r.AddDuration(StepLocalMultiply, time.Second)
	if r.Bytes(StepRepartition) != 150 {
		t.Fatalf("repartition bytes = %d", r.Bytes(StepRepartition))
	}
	if r.CommunicationBytes() != 175 {
		t.Fatalf("communication = %d, want 175", r.CommunicationBytes())
	}
	if r.Duration(StepLocalMultiply) != time.Second {
		t.Fatal("duration lost")
	}
}

func TestRecorderConcurrentSafety(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.AddBytes(StepPCIE, 1)
				r.AddSpill(1)
			}
		}()
	}
	wg.Wait()
	if r.Bytes(StepPCIE) != 16000 {
		t.Fatalf("lost updates: %d", r.Bytes(StepPCIE))
	}
	if r.SpillBytes() != 16000 {
		t.Fatalf("lost spills: %d", r.SpillBytes())
	}
}

func TestStepRatiosSumToOne(t *testing.T) {
	var r Recorder
	r.AddDuration(StepRepartition, 1*time.Second)
	r.AddDuration(StepLocalMultiply, 2*time.Second)
	r.AddDuration(StepAggregation, 1*time.Second)
	a, b, c := r.StepRatios()
	if a != 0.25 || b != 0.5 || c != 0.25 {
		t.Fatalf("ratios = %g, %g, %g", a, b, c)
	}
}

func TestStepRatiosEmpty(t *testing.T) {
	var r Recorder
	a, b, c := r.StepRatios()
	if a != 0 || b != 0 || c != 0 {
		t.Fatal("empty recorder should report zero ratios")
	}
}

func TestReset(t *testing.T) {
	var r Recorder
	r.AddBytes(StepRepartition, 5)
	r.AddDuration(StepRepartition, time.Second)
	r.AddSpill(7)
	r.Reset()
	if r.Bytes(StepRepartition) != 0 || r.Duration(StepRepartition) != 0 || r.SpillBytes() != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestSnapshot(t *testing.T) {
	var r Recorder
	r.AddBytes(StepRepartition, 10)
	r.AddBytes(StepAggregation, 20)
	r.AddBytes(StepPCIE, 30)
	s := r.Snapshot()
	if s.RepartitionBytes != 10 || s.AggregationBytes != 20 || s.PCIEBytes != 30 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.CommunicationBytes() != 30 {
		t.Fatalf("snapshot communication = %d", s.CommunicationBytes())
	}
	if s.String() == "" {
		t.Fatal("snapshot should render")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:        "0 B",
		512:      "512 B",
		1024:     "1.00 KiB",
		1536:     "1.50 KiB",
		1 << 20:  "1.00 MiB",
		1 << 30:  "1.00 GiB",
		36 << 40: "36.00 TiB",
		3 << 50:  "3.00 PiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestStepString(t *testing.T) {
	if StepRepartition.String() != "matrix repartition" {
		t.Fatal("step name wrong")
	}
	if Step(42).String() == "" {
		t.Fatal("unknown step should render")
	}
}
