package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"distme/internal/bmat"
	"distme/internal/cluster"
	"distme/internal/matrix"
	"distme/internal/metrics"
)

// testEnv builds a cluster with generous budgets for correctness tests.
func testEnv(t *testing.T) Env {
	t.Helper()
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return Env{Cluster: c}
}

// refMul is the single-node reference product.
func refMul(a, b *bmat.BlockMatrix) *matrix.Dense {
	return matrix.Mul(a.ToDense(), b.ToDense()).Dense()
}

func TestMultiplyCuboidMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	a := bmat.RandomDense(rng, 12, 16, 4) // 3×4 blocks
	b := bmat.RandomDense(rng, 16, 8, 4)  // 4×2 blocks
	want := refMul(a, b)
	for _, p := range []Params{
		{1, 1, 1}, {3, 1, 1}, {1, 1, 4}, {3, 2, 4}, {2, 2, 2}, {3, 2, 1},
	} {
		env := testEnv(t)
		got, err := MultiplyCuboid(a, b, p, env)
		if err != nil {
			t.Fatalf("params %v: %v", p, err)
		}
		if !got.ToDense().EqualApprox(want, 1e-9) {
			t.Fatalf("params %v: wrong product", p)
		}
	}
}

// TestGeneralizationEquivalenceProperty is the paper's central claim
// verified end to end: BMM, CPMM, RMM and CuboidMM with any valid (P,Q,R)
// compute the same C, for dense and sparse inputs, including ragged edges.
func TestGeneralizationEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bs := 2 + rng.Intn(3)
		m := 1 + rng.Intn(12)
		k := 1 + rng.Intn(12)
		n := 1 + rng.Intn(12)
		var a, b *bmat.BlockMatrix
		if rng.Intn(2) == 0 {
			a = bmat.RandomDense(rng, m, k, bs)
		} else {
			a = bmat.RandomSparse(rng, m, k, bs, 0.4)
		}
		if rng.Intn(2) == 0 {
			b = bmat.RandomDense(rng, k, n, bs)
		} else {
			b = bmat.RandomSparse(rng, k, n, bs, 0.4)
		}
		want := refMul(a, b)

		check := func(got *bmat.BlockMatrix, err error) bool {
			if err != nil {
				return false
			}
			return got.ToDense().EqualApprox(want, 1e-9)
		}
		if !check(MultiplyBMM(a, b, testEnv(t))) {
			return false
		}
		if !check(MultiplyCPMM(a, b, testEnv(t))) {
			return false
		}
		if !check(MultiplyRMM(a, b, 0, testEnv(t))) {
			return false
		}
		s := ShapeOf(a, b)
		p := Params{P: 1 + rng.Intn(s.I), Q: 1 + rng.Intn(s.J), R: 1 + rng.Intn(s.K)}
		return check(MultiplyCuboid(a, b, p, testEnv(t)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCommunicationAccountingMatchesEq4 asserts the measured shuffle volume
// equals the closed-form Cost(P,Q,R) exactly for dense inputs — the engine
// moves precisely what Table 2 says each method moves.
func TestCommunicationAccountingMatchesEq4(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := bmat.RandomDense(rng, 12, 12, 3) // 4×4 blocks
	b := bmat.RandomDense(rng, 12, 12, 3)
	s := ShapeOf(a, b)
	for _, p := range []Params{
		s.BMMParams(), s.CPMMParams(), s.RMMParams(),
		{2, 2, 2}, {4, 1, 2}, {1, 4, 4},
	} {
		env := testEnv(t)
		if _, err := MultiplyCuboid(a, b, p, env); err != nil {
			t.Fatalf("params %v: %v", p, err)
		}
		rec := env.Cluster.Recorder()
		got := float64(rec.CommunicationBytes())
		want := s.CostBytes(p)
		if got != want {
			t.Errorf("params %v: measured %g bytes, Eq.(4) says %g", p, got, want)
		}
	}
}

// TestRMMAccountingMatchesTable2 checks RMM's separate executor against its
// Table 2 row: J·|A| + I·|B| repartition and K·|C| aggregation.
func TestRMMAccountingMatchesTable2(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := bmat.RandomDense(rng, 8, 6, 2)  // I=4, K=3
	b := bmat.RandomDense(rng, 6, 10, 2) // K=3, J=5
	env := testEnv(t)
	if _, err := MultiplyRMM(a, b, 7, env); err != nil {
		t.Fatal(err)
	}
	rec := env.Cluster.Recorder()
	s := ShapeOf(a, b)
	wantRepart := int64(s.J)*a.StoredBytes() + int64(s.I)*b.StoredBytes()
	if got := rec.Bytes(metrics.StepRepartition); got != wantRepart {
		t.Errorf("repartition = %d, want %d", got, wantRepart)
	}
	wantAgg := int64(s.K) * int64(a.Rows) * int64(b.Cols) * 8
	if got := rec.Bytes(metrics.StepAggregation); got != wantAgg {
		t.Errorf("aggregation = %d, want %d (K·|C|)", got, wantAgg)
	}
}

// TestCuboidBeatsRMMCommunication verifies the headline comparison of
// Figure 6: with the same inputs, CuboidMM at the optimizer's choice moves
// far less data than RMM.
func TestCuboidBeatsRMMCommunication(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := bmat.RandomDense(rng, 24, 24, 3)
	b := bmat.RandomDense(rng, 24, 24, 3)
	// A 3-node × 3-slot cluster: the 8×8×8 grid has plenty of headroom over
	// the 9 slots, so the optimizer can exploit coarse cuboids.
	smallEnv := func() Env {
		cfg := cluster.LaptopConfig()
		cfg.Nodes, cfg.TasksPerNode, cfg.LocalWorkers = 3, 3, 4
		cfg.TaskMemBytes = 1 << 30
		cfg.DiskCapacityBytes = 0
		c, err := cluster.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Env{Cluster: c}
	}

	envR := smallEnv()
	if _, err := MultiplyRMM(a, b, 0, envR); err != nil {
		t.Fatal(err)
	}
	rmmBytes := envR.Cluster.Recorder().CommunicationBytes()

	envC := smallEnv()
	if _, _, err := MultiplyAuto(a, b, envC); err != nil {
		t.Fatal(err)
	}
	cuboidBytes := envC.Cluster.Recorder().CommunicationBytes()

	if cuboidBytes*2 >= rmmBytes {
		t.Fatalf("CuboidMM (%d) should move far less than RMM (%d)", cuboidBytes, rmmBytes)
	}
}

func TestMultiplyCuboidOOM(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 2
	cfg.TaskMemBytes = 1 << 10 // 1 KiB: nothing fits
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := bmat.RandomDense(rng, 8, 8, 4)
	b := bmat.RandomDense(rng, 8, 8, 4)
	_, err = MultiplyCuboid(a, b, Params{1, 1, 1}, Env{Cluster: c})
	if !errors.Is(err, cluster.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestMultiplyCuboidEDC(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 2
	cfg.DiskCapacityBytes = 64 // everything spills past this
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := bmat.RandomDense(rng, 8, 8, 2)
	b := bmat.RandomDense(rng, 8, 8, 2)
	_, err = MultiplyCuboid(a, b, Params{2, 2, 2}, Env{Cluster: c})
	if !errors.Is(err, cluster.ErrExceededDisk) {
		t.Fatalf("err = %v, want ErrExceededDisk", err)
	}
}

func TestMultiplyAutoPicksFeasibleParams(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 6 << 10 // tight: forces real partitioning
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := bmat.RandomDense(rng, 32, 32, 4)
	b := bmat.RandomDense(rng, 32, 32, 4)
	got, params, err := MultiplyAuto(a, b, Env{Cluster: c})
	if err != nil {
		t.Fatal(err)
	}
	s := ShapeOf(a, b)
	if s.MemBytes(params) > float64(cfg.TaskMemBytes) {
		t.Fatalf("auto params %v violate θt", params)
	}
	if !got.ToDense().EqualApprox(refMul(a, b), 1e-9) {
		t.Fatal("auto multiply wrong product")
	}
}

func TestMultiplyDimensionMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := bmat.RandomDense(rng, 4, 6, 2)
	b := bmat.RandomDense(rng, 8, 4, 2)
	if _, err := MultiplyCuboid(a, b, Params{1, 1, 1}, testEnv(t)); err == nil {
		t.Fatal("inner dimension mismatch accepted")
	}
	b2 := bmat.RandomDense(rng, 6, 4, 3)
	if _, err := MultiplyCuboid(a, b2, Params{1, 1, 1}, testEnv(t)); err == nil {
		t.Fatal("block size mismatch accepted")
	}
}

func TestMultiplyCuboidInvalidParams(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	a := bmat.RandomDense(rng, 4, 4, 2)
	b := bmat.RandomDense(rng, 4, 4, 2)
	for _, p := range []Params{{0, 1, 1}, {3, 1, 1}, {1, 3, 1}, {1, 1, 3}} {
		if _, err := MultiplyCuboid(a, b, p, testEnv(t)); err == nil {
			t.Errorf("params %v accepted for 2x2x2 grid", p)
		}
	}
}

func TestSparseInputsKeepSparseAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	a := bmat.RandomSparse(rng, 40, 40, 4, 0.05)
	b := bmat.RandomDense(rng, 40, 40, 4)
	env := testEnv(t)
	if _, err := MultiplyCuboid(a, b, Params{2, 2, 1}, env); err != nil {
		t.Fatal(err)
	}
	// Repartition charge must reflect the CSR payload, far below dense.
	got := env.Cluster.Recorder().Bytes(metrics.StepRepartition)
	denseWould := int64(2)*a.DenseBytes() + int64(2)*b.DenseBytes()
	if got >= denseWould {
		t.Fatalf("sparse repartition %d not below dense estimate %d", got, denseWould)
	}
	want := int64(2)*a.StoredBytes() + int64(2)*b.StoredBytes()
	if got != want {
		t.Fatalf("sparse repartition %d, want %d", got, want)
	}
}

func TestCuboidShapeAndMemEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	a := bmat.RandomDense(rng, 8, 8, 2)
	b := bmat.RandomDense(rng, 8, 8, 2)
	c := &Cuboid{P: 0, Q: 0, R: 0, ILo: 0, IHi: 2, JLo: 0, JHi: 2, KLo: 0, KHi: 4, A: a, B: b}
	if c.Voxels() != 16 {
		t.Fatalf("Voxels = %d, want 16", c.Voxels())
	}
	sh := c.Shape()
	if sh.IB != 2 || sh.JB != 2 || sh.KB != 4 {
		t.Fatalf("shape grid = %+v", sh)
	}
	// 2×4 A blocks of 2×2 dense = 8 blocks × 32 bytes.
	if sh.ABytes != 8*32 {
		t.Fatalf("ABytes = %d, want 256", sh.ABytes)
	}
	if c.MemEstimateBytes() != sh.ABytes+sh.BBytes+sh.CBytes {
		t.Fatal("mem estimate inconsistent with shape")
	}
}

func TestStepDurationsRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	env := testEnv(t)
	if _, err := MultiplyCuboid(a, b, Params{2, 2, 2}, env); err != nil {
		t.Fatal(err)
	}
	rec := env.Cluster.Recorder()
	if rec.Duration(metrics.StepLocalMultiply) <= 0 {
		t.Fatal("local multiply duration not recorded")
	}
	_, local, _ := rec.StepRatios()
	if local <= 0 {
		t.Fatal("step ratios empty")
	}
}

func TestFlopsEstimateSparseVsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	aDense := bmat.RandomDense(rng, 8, 8, 2)
	aSparse := bmat.RandomSparse(rng, 8, 8, 2, 0.1)
	b := bmat.RandomDense(rng, 8, 8, 2)
	cd := &Cuboid{ILo: 0, IHi: 4, JLo: 0, JHi: 4, KLo: 0, KHi: 4, A: aDense, B: b}
	cs := &Cuboid{ILo: 0, IHi: 4, JLo: 0, JHi: 4, KLo: 0, KHi: 4, A: aSparse, B: b}
	if cd.FlopsEstimate() <= cs.FlopsEstimate() {
		t.Fatalf("dense cuboid (%g) should predict more work than 10%%-sparse (%g)",
			cd.FlopsEstimate(), cs.FlopsEstimate())
	}
	// Dense estimate is exactly 2·(A elements in range)·(B columns in range).
	want := 2.0 * float64(4*4*2*2) * float64(4*2)
	if got := cd.FlopsEstimate(); got != want {
		t.Fatalf("dense FlopsEstimate = %g, want %g", got, want)
	}
}

func TestSortCuboidsByWorkLPT(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	// A with wildly skewed density: left half dense, right half nearly empty.
	a := bmat.New(8, 16, 2)
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			a.SetBlock(i, k, matrix.RandomDense(rng, 2, 2))
		}
	}
	a.SetBlock(0, 7, matrix.NewCSRFromDense(matrix.NewDense(2, 2))) // empty tail
	b := bmat.RandomDense(rng, 16, 8, 2)
	var cuboids []*Cuboid
	for r := 0; r < 4; r++ {
		cuboids = append(cuboids, &Cuboid{
			R: r, ILo: 0, IHi: 4, JLo: 0, JHi: 4, KLo: 2 * r, KHi: 2 * (r + 1),
			A: a, B: b,
		})
	}
	sortCuboidsByWork(cuboids)
	for i := 1; i < len(cuboids); i++ {
		if cuboids[i-1].FlopsEstimate() < cuboids[i].FlopsEstimate() {
			t.Fatal("cuboids not in descending work order")
		}
	}
}

func TestBalanceBySparsityPreservesResult(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	a := bmat.RandomSparse(rng, 24, 24, 4, 0.3)
	b := bmat.RandomDense(rng, 24, 24, 4)
	want := refMul(a, b)
	env := testEnv(t)
	env.BalanceBySparsity = true
	got, err := MultiplyCuboid(a, b, Params{2, 3, 2}, env)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().EqualApprox(want, 1e-9) {
		t.Fatal("balanced scheduling changed the product")
	}
}

func TestMultiplySurvivesInjectedTaskLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	cfg := cluster.LaptopConfig()
	cfg.LocalWorkers = 4
	cfg.TaskMemBytes = 1 << 30
	cfg.DiskCapacityBytes = 0
	cfg.TaskRetries = 2
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every task's first attempt is lost — the lineage re-run must recover
	// the whole multiplication with an identical product.
	c.SetFailureInjector(func(name string, attempt int) error {
		if attempt == 0 {
			return errors.New("executor lost")
		}
		return nil
	})
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	got, err := MultiplyCuboid(a, b, Params{2, 2, 2}, Env{Cluster: c})
	if err != nil {
		t.Fatal(err)
	}
	if !got.ToDense().EqualApprox(refMul(a, b), 1e-9) {
		t.Fatal("recovered multiply wrong")
	}
}

func TestShapeOfEstimatedSparseProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	a := bmat.RandomSparse(rng, 200, 200, 20, 0.005)
	b := bmat.RandomSparse(rng, 200, 200, 20, 0.005)
	worst := ShapeOf(a, b)
	est := ShapeOfEstimated(a, b)
	if est.CBytes >= worst.CBytes {
		t.Fatalf("estimated |C| (%d) should undercut dense worst case (%d) at 0.5%% density",
			est.CBytes, worst.CBytes)
	}
	// The estimate must still dominate the actual product's stored size.
	env := testEnv(t)
	c, err := MultiplyCPMM(a, b, env)
	if err != nil {
		t.Fatal(err)
	}
	// C blocks are dense accumulators; compare against the nnz payload.
	actualNNZ := c.NNZ() * 16
	if est.CBytes < actualNNZ/4 {
		t.Fatalf("estimate %d is wildly below the actual nnz payload %d", est.CBytes, actualNNZ)
	}
}

func TestShapeOfEstimatedDenseUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	if got, want := ShapeOfEstimated(a, b).CBytes, ShapeOf(a, b).CBytes; got != want {
		t.Fatalf("dense inputs must keep the dense estimate: %d vs %d", got, want)
	}
}

func TestPow1mStability(t *testing.T) {
	if pow1m(0, 100) != 1 || pow1m(1, 100) != 0 {
		t.Fatal("pow1m boundaries wrong")
	}
	// (1-1e-6)^1e6 ≈ 1/e.
	got := pow1m(1e-6, 1_000_000)
	if got < 0.36 || got > 0.37 {
		t.Fatalf("pow1m(1e-6, 1e6) = %g, want ≈0.3679", got)
	}
}

func TestSparseProductOutputCompacted(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	// Very sparse inputs: the product is sparse, so output blocks should
	// come back in CSR form (output-format selection).
	a := bmat.RandomSparse(rng, 200, 200, 25, 0.002)
	b := bmat.RandomSparse(rng, 200, 200, 25, 0.002)
	env := testEnv(t)
	c, err := MultiplyCuboid(a, b, Params{2, 2, 2}, env)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumBlocks() > 0 && !c.IsSparse() {
		t.Fatal("sparse product kept dense output blocks")
	}
	// And the values must still be right.
	if !c.ToDense().EqualApprox(refMul(a, b), 1e-9) {
		t.Fatal("compacted output wrong")
	}
}

func TestDenseProductOutputStaysDense(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	a := bmat.RandomDense(rng, 16, 16, 4)
	b := bmat.RandomDense(rng, 16, 16, 4)
	env := testEnv(t)
	c, err := MultiplyCuboid(a, b, Params{2, 2, 1}, env)
	if err != nil {
		t.Fatal(err)
	}
	if c.IsSparse() {
		t.Fatal("dense product converted to sparse")
	}
}
