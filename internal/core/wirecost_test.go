package core

import (
	"math/rand"
	"testing"
)

// bruteWire is the direct O(I·J·K) scan of Eq.(2) with the wire-priced
// cost — the reference OptimizeWire's O(I·K) search must match exactly.
func bruteWire(s Shape, taskMemBytes int64, slots int, w WireCost) (Params, bool) {
	if slots < 1 {
		slots = 1
	}
	if s.I*s.J*s.K < slots {
		return Params{P: s.I, Q: s.J, R: s.K}, true
	}
	θ := float64(taskMemBytes)
	best := Params{}
	bestCost := 0.0
	found := false
	for p := 1; p <= s.I; p++ {
		for q := 1; q <= s.J; q++ {
			for r := 1; r <= s.K; r++ {
				cand := Params{P: p, Q: q, R: r}
				if cand.Tasks() < slots || s.MemBytes(cand) > θ {
					continue
				}
				cost := s.CostBytesWire(cand, w)
				if !found || cost < bestCost || (cost == bestCost && less(cand, best)) {
					best, bestCost, found = cand, cost, true
				}
			}
		}
	}
	return best, found
}

// TestCostBytesWireDefaultIdentity: under the default prices the wire cost
// IS Eq.(4), bit for bit, and OptimizeWire is Optimize.
func TestCostBytesWireDefaultIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		s := Shape{
			I: 1 + rng.Intn(10), J: 1 + rng.Intn(10), K: 1 + rng.Intn(10),
			ABytes: rng.Int63n(1 << 28), BBytes: rng.Int63n(1 << 28), CBytes: rng.Int63n(1 << 28),
		}
		p := Params{P: 1 + rng.Intn(s.I), Q: 1 + rng.Intn(s.J), R: 1 + rng.Intn(s.K)}
		if got, want := s.CostBytesWire(p, DefaultWireCost()), s.CostBytes(p); got != want {
			t.Fatalf("shape %+v params %v: CostBytesWire %v != CostBytes %v", s, p, got, want)
		}
		// The zero value must normalize to the default too.
		if got, want := s.CostBytesWire(p, WireCost{}), s.CostBytes(p); got != want {
			t.Fatalf("zero WireCost not normalized: %v != %v", got, want)
		}
	}
}

// TestOptimizeWireMatchesBrute: for random shapes and ratios, the fast
// search must return exactly the brute-force argmin — the monotonicity in Q
// that minFeasibleQ exploits survives positive scaling.
func TestOptimizeWireMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ratios := []WireCost{
		DefaultWireCost(),
		{InputRatio: 0.5, AggRatio: 1},
		{InputRatio: 0.85, AggRatio: 1},
		{InputRatio: 0.25, AggRatio: 0.75},
	}
	for trial := 0; trial < 150; trial++ {
		s := Shape{
			I: 1 + rng.Intn(9), J: 1 + rng.Intn(9), K: 1 + rng.Intn(9),
			ABytes: 1 + rng.Int63n(1<<26), BBytes: 1 + rng.Int63n(1<<26), CBytes: 1 + rng.Int63n(1<<26),
		}
		θ := 1 + rng.Int63n(1<<25)
		slots := 1 + rng.Intn(6)
		w := ratios[trial%len(ratios)]
		want, feasible := bruteWire(s, θ, slots, w)
		got, err := OptimizeWire(s, θ, slots, w)
		if !feasible {
			if err == nil {
				t.Fatalf("shape %+v θ=%d: brute infeasible but OptimizeWire returned %v", s, θ, got)
			}
			continue
		}
		if err != nil {
			t.Fatalf("shape %+v θ=%d: %v", s, θ, err)
		}
		if got != want {
			t.Fatalf("shape %+v θ=%d slots=%d w=%+v: OptimizeWire %v != brute %v", s, θ, slots, w, got, want)
		}
	}
}

// TestOptimizeWireEncodingFlipsChoice pins the behavior the opt-in
// encodings buy: a cheaper input ratio genuinely changes the chosen
// partitioning. With 4 MiB operands and a 2 MiB budget the paper's pricing
// picks (2,2,4) — aggregating over R=4 — while halving the repartition
// price (fp32's ratio) makes the optimizer buy more input replication to
// drop the aggregation shuffle entirely: (4,5,1). Both answers are verified
// against the brute-force scan under their own prices.
func TestOptimizeWireEncodingFlipsChoice(t *testing.T) {
	s := Shape{I: 8, J: 8, K: 8, ABytes: 4 << 20, BBytes: 4 << 20, CBytes: 4 << 20}
	const θ = 2 << 20

	def, err := OptimizeWire(s, θ, 1, DefaultWireCost())
	if err != nil {
		t.Fatal(err)
	}
	fp32 := WireCost{InputRatio: 0.5, AggRatio: 1}
	enc, err := OptimizeWire(s, θ, 1, fp32)
	if err != nil {
		t.Fatal(err)
	}
	if def == enc {
		t.Fatalf("encoding ratio did not change the argmin: both %v", def)
	}
	if def != (Params{P: 2, Q: 2, R: 4}) {
		t.Fatalf("default argmin %v, want (2,2,4)", def)
	}
	if enc != (Params{P: 4, Q: 5, R: 1}) {
		t.Fatalf("fp32-priced argmin %v, want (4,5,1)", enc)
	}
	if enc.R != 1 {
		t.Fatalf("cheap inputs should buy away the aggregation shuffle, got R=%d", enc.R)
	}
	for _, tc := range []struct {
		w    WireCost
		want Params
	}{{DefaultWireCost(), def}, {fp32, enc}} {
		brute, ok := bruteWire(s, θ, 1, tc.w)
		if !ok || brute != tc.want {
			t.Fatalf("brute reference under %+v: %v, want %v", tc.w, brute, tc.want)
		}
	}
}
