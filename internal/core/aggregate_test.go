package core

import (
	"math/rand"
	"testing"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// makeBlockPartials fabricates per-cuboid partial maps over a gridI×gridJ
// output with the given block size: every cuboid contributes a random
// subset of keys, so keys overlap across cuboids like an R>1 partitioning.
func makeBlockPartials(rng *rand.Rand, cuboids, gridI, gridJ, bs int) []map[bmat.BlockKey]*matrix.Dense {
	partials := make([]map[bmat.BlockKey]*matrix.Dense, cuboids)
	for t := 0; t < cuboids; t++ {
		part := make(map[bmat.BlockKey]*matrix.Dense)
		for i := 0; i < gridI; i++ {
			for j := 0; j < gridJ; j++ {
				if rng.Intn(3) == 0 {
					continue
				}
				part[bmat.BlockKey{I: i, J: j}] = matrix.RandomDense(rng, bs, bs)
			}
		}
		partials[t] = part
	}
	// A nil and an empty map exercise the skip paths.
	if cuboids > 2 {
		partials[cuboids-1] = nil
		partials[cuboids-2] = map[bmat.BlockKey]*matrix.Dense{}
	}
	return partials
}

// clonePartials deep-copies partial maps so sequential and parallel merges
// consume independent accumulators (the merge mutates blocks in place).
func clonePartials(src []map[bmat.BlockKey]*matrix.Dense) []map[bmat.BlockKey]*matrix.Dense {
	out := make([]map[bmat.BlockKey]*matrix.Dense, len(src))
	for t, part := range src {
		if part == nil {
			continue
		}
		cp := make(map[bmat.BlockKey]*matrix.Dense, len(part))
		for k, v := range part {
			cp[k] = v.Clone()
		}
		out[t] = cp
	}
	return out
}

// matricesBitIdentical compares every stored block of two block matrices
// for exact equality (format and bits).
func matricesBitIdentical(t *testing.T, a, b *bmat.BlockMatrix) {
	t.Helper()
	if a.NumBlocks() != b.NumBlocks() {
		t.Fatalf("block counts differ: %d vs %d", a.NumBlocks(), b.NumBlocks())
	}
	for _, key := range a.Keys() {
		ba := a.Block(key.I, key.J)
		bb := b.Block(key.I, key.J)
		if bb == nil {
			t.Fatalf("block %v missing in second matrix", key)
		}
		da, ok1 := ba.(*matrix.Dense)
		db, ok2 := bb.(*matrix.Dense)
		if ok1 != ok2 {
			t.Fatalf("block %v formats differ", key)
		}
		if ok1 {
			if !da.Equal(db) {
				t.Fatalf("block %v bits differ", key)
			}
			continue
		}
		if !ba.Dense().Equal(bb.Dense()) {
			t.Fatalf("block %v values differ", key)
		}
	}
}

// TestAggregateBlockPartialsWorkerInvariance: the sharded parallel merge
// must produce byte-identical outputs and identical shuffle byte counts to
// the sequential merge, for every worker count.
func TestAggregateBlockPartialsWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	src := makeBlockPartials(rng, 7, 4, 3, 8)

	seqOut := bmat.New(32, 24, 8)
	seqBytes := aggregateBlockPartials(seqOut, clonePartials(src), 1, compactSizeBytes)
	for _, workers := range []int{2, 3, 4, 8, 64} {
		parOut := bmat.New(32, 24, 8)
		parBytes := aggregateBlockPartials(parOut, clonePartials(src), workers, compactSizeBytes)
		if parBytes != seqBytes {
			t.Errorf("workers=%d: aggregation bytes %d != sequential %d", workers, parBytes, seqBytes)
		}
		matricesBitIdentical(t, seqOut, parOut)
	}
}

func TestAggregateBlockPartialsEmptyAndNil(t *testing.T) {
	out := bmat.New(8, 8, 4)
	if n := aggregateBlockPartials(out, nil, 4, nil); n != 0 {
		t.Fatalf("empty partials charged %d bytes", n)
	}
	if n := aggregateBlockPartials(out, []map[bmat.BlockKey]*matrix.Dense{nil, {}}, 4, nil); n != 0 {
		t.Fatalf("nil/empty maps charged %d bytes", n)
	}
	if out.NumBlocks() != 0 {
		t.Fatal("no blocks expected")
	}
}

func makeVoxelPartials(rng *rand.Rand, tasks, gridI, gridJ, gridK, bs int) []map[bmat.VoxelKey]*matrix.Dense {
	partials := make([]map[bmat.VoxelKey]*matrix.Dense, tasks)
	for t := 0; t < tasks; t++ {
		part := make(map[bmat.VoxelKey]*matrix.Dense)
		for i := 0; i < gridI; i++ {
			for j := 0; j < gridJ; j++ {
				for k := 0; k < gridK; k++ {
					if rng.Intn(4) != 0 {
						continue
					}
					part[bmat.VoxelKey{I: i, J: j, K: k}] = matrix.RandomDense(rng, bs, bs)
				}
			}
		}
		partials[t] = part
	}
	return partials
}

func cloneVoxelPartials(src []map[bmat.VoxelKey]*matrix.Dense) []map[bmat.VoxelKey]*matrix.Dense {
	out := make([]map[bmat.VoxelKey]*matrix.Dense, len(src))
	for t, part := range src {
		if part == nil {
			continue
		}
		cp := make(map[bmat.VoxelKey]*matrix.Dense, len(part))
		for k, v := range part {
			cp[k] = v.Clone()
		}
		out[t] = cp
	}
	return out
}

func TestAggregateVoxelPartialsWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	src := makeVoxelPartials(rng, 6, 3, 3, 4, 5)

	seqOut := bmat.New(15, 15, 5)
	seqBytes := aggregateVoxelPartials(seqOut, cloneVoxelPartials(src), 1)
	for _, workers := range []int{2, 4, 16} {
		parOut := bmat.New(15, 15, 5)
		parBytes := aggregateVoxelPartials(parOut, cloneVoxelPartials(src), workers)
		if parBytes != seqBytes {
			t.Errorf("workers=%d: aggregation bytes %d != sequential %d", workers, parBytes, seqBytes)
		}
		matricesBitIdentical(t, seqOut, parOut)
	}
}

// TestMultiplyCuboidAggregationWorkerInvariance runs the full pipeline at
// R>1 with sequential and parallel aggregation and requires byte-identical
// output matrices and identical recorded aggregation bytes — dense and
// sparse inputs, fixed seeds.
func TestMultiplyCuboidAggregationWorkerInvariance(t *testing.T) {
	for _, sparse := range []bool{false, true} {
		rng := rand.New(rand.NewSource(202))
		var a, b *bmat.BlockMatrix
		if sparse {
			a = bmat.RandomSparse(rng, 24, 18, 3, 0.3)
			b = bmat.RandomSparse(rng, 18, 12, 3, 0.3)
		} else {
			a = bmat.RandomDense(rng, 24, 18, 3)
			b = bmat.RandomDense(rng, 18, 12, 3)
		}
		params := Params{P: 2, Q: 2, R: 3} // R>1 ⇒ overlapping partials
		run := func(workers int) *bmat.BlockMatrix {
			env := testEnv(t)
			env.AggregationWorkers = workers
			out, err := MultiplyCuboid(a, b, params, env)
			if err != nil {
				t.Fatalf("sparse=%v workers=%d: %v", sparse, workers, err)
			}
			return out
		}
		seq := run(1)
		for _, workers := range []int{2, 4, 8} {
			matricesBitIdentical(t, seq, run(workers))
		}
	}
}

func TestMultiplyRMMAggregationWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	a := bmat.RandomDense(rng, 12, 12, 3)
	b := bmat.RandomDense(rng, 12, 12, 3)
	run := func(workers int) *bmat.BlockMatrix {
		env := testEnv(t)
		env.AggregationWorkers = workers
		out, err := MultiplyRMM(a, b, 0, env)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	seq := run(1)
	for _, workers := range []int{2, 4, 8} {
		matricesBitIdentical(t, seq, run(workers))
	}
}

// TestAggregationReleasesMergedPartials: merged-away partials must return
// their buffers to the dense pool (the whole point of the release points).
func TestAggregationReleasesMergedPartials(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	partials := make([]map[bmat.BlockKey]*matrix.Dense, 4)
	for i := range partials {
		// Same key everywhere: 3 of the 4 blocks must be released.
		acc := matrix.MulAdd(nil, matrix.RandomDense(rng, 16, 16), matrix.RandomDense(rng, 16, 16))
		partials[i] = map[bmat.BlockKey]*matrix.Dense{{I: 0, J: 0}: acc}
	}
	before := matrix.DensePoolStats()
	out := bmat.New(16, 16, 16)
	aggregateBlockPartials(out, partials, 2, nil)
	after := matrix.DensePoolStats()
	if after.Puts-before.Puts < 3 {
		t.Fatalf("expected ≥3 pool releases, got %d", after.Puts-before.Puts)
	}
}
