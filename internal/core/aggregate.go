package core

import (
	"runtime"
	"sync"

	"distme/internal/bmat"
	"distme/internal/matrix"
)

// Parallel matrix aggregation. The sequential merge of the seed walked
// every cuboid's partial map in turn and folded each block into the output
// matrix — single-threaded work proportional to R·|C|, which for CPMM-like
// partitionings (large R) rivals the local multiplication itself. Here the
// output (i,j) key space is sharded across workers: each block is owned by
// exactly one goroutine, so no locks are taken, and each owner folds its
// blocks in the same cuboid order the sequential merge used, so per-block
// floating-point accumulation order — and therefore every output bit — is
// identical for any worker count.
//
// Merged-away partials are released to the dense-buffer pool at the moment
// they die (their array has no other readers by construction: each partial
// map entry is visited exactly once, by its key's owner).

// aggShard deterministically assigns an output block key to one of n
// workers. The multipliers spread consecutive (i, j) keys across shards so
// row- or column-striped outputs do not pile onto one worker.
func aggShard(key bmat.BlockKey, n int) int {
	h := uint32(key.I)*0x9E3779B1 + uint32(key.J)*0x85EBCA77
	return int(h % uint32(n))
}

// aggregateBlockPartials folds per-cuboid partial maps into out. sizeOf,
// when non-nil, is charged once per partial block and the total returned —
// the aggregation-shuffle byte count. workers <= 1 runs the sequential
// merge; the results are bit-identical either way.
func aggregateBlockPartials(out *bmat.BlockMatrix, partials []map[bmat.BlockKey]*matrix.Dense, workers int, sizeOf func(*matrix.Dense) int64) int64 {
	sorted := make([][]keyedBlock, 0, len(partials))
	for _, p := range partials {
		if len(p) == 0 {
			continue
		}
		sorted = append(sorted, sortedPartials(p))
	}
	if len(sorted) == 0 {
		return 0
	}
	if workers > len(sorted)*4 {
		// More workers than could plausibly find distinct keys to own.
		workers = len(sorted) * 4
	}
	if workers <= 1 {
		var bytes int64
		for _, list := range sorted {
			for _, kb := range list {
				if sizeOf != nil {
					bytes += sizeOf(kb.block)
				}
				mergeBlock(out, kb)
			}
		}
		return bytes
	}

	merged := make([][]keyedBlock, workers)
	byteBy := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var list []keyedBlock
			index := make(map[bmat.BlockKey]int)
			var bytes int64
			for _, part := range sorted {
				for _, kb := range part {
					if aggShard(kb.key, workers) != w {
						continue
					}
					if sizeOf != nil {
						bytes += sizeOf(kb.block)
					}
					if li, ok := index[kb.key]; ok {
						matrix.AddInto(list[li].block, kb.block)
						matrix.PutDense(kb.block)
					} else {
						index[kb.key] = len(list)
						list = append(list, kb)
					}
				}
			}
			merged[w] = list
			byteBy[w] = bytes
		}(w)
	}
	wg.Wait()
	var bytes int64
	for w := 0; w < workers; w++ {
		bytes += byteBy[w]
		for _, kb := range merged[w] {
			mergeBlock(out, kb)
		}
	}
	return bytes
}

// mergeBlock folds one keyed partial into the output matrix, releasing the
// partial when it is consumed by an existing accumulator.
func mergeBlock(out *bmat.BlockMatrix, kb keyedBlock) {
	if existing := out.Block(kb.key.I, kb.key.J); existing != nil {
		matrix.AddInto(existing.(*matrix.Dense), kb.block)
		matrix.PutDense(kb.block)
	} else {
		out.SetBlock(kb.key.I, kb.key.J, kb.block)
	}
}

// aggregateVoxelPartials is the RMM variant: partials are keyed by voxel
// (i,j,k) and every partial block crosses the shuffle, so each is charged
// its full stored size. Keys are sharded by their (i,j) target block,
// which is also the merge granularity.
func aggregateVoxelPartials(out *bmat.BlockMatrix, partials []map[bmat.VoxelKey]*matrix.Dense, workers int) int64 {
	sorted := make([][]keyedVoxelBlock, 0, len(partials))
	for _, p := range partials {
		if len(p) == 0 {
			continue
		}
		sorted = append(sorted, sortedVoxelPartials(p))
	}
	if len(sorted) == 0 {
		return 0
	}
	if workers > len(sorted)*4 {
		workers = len(sorted) * 4
	}
	if workers <= 1 {
		var bytes int64
		for _, list := range sorted {
			for _, kb := range list {
				bytes += kb.block.SizeBytes()
				mergeVoxelBlock(out, kb)
			}
		}
		return bytes
	}

	merged := make([][]keyedVoxelBlock, workers)
	byteBy := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var list []keyedVoxelBlock
			index := make(map[bmat.BlockKey]int)
			var bytes int64
			for _, part := range sorted {
				for _, kb := range part {
					key := bmat.BlockKey{I: kb.key.I, J: kb.key.J}
					if aggShard(key, workers) != w {
						continue
					}
					bytes += kb.block.SizeBytes()
					if li, ok := index[key]; ok {
						matrix.AddInto(list[li].block, kb.block)
						matrix.PutDense(kb.block)
					} else {
						index[key] = len(list)
						list = append(list, kb)
					}
				}
			}
			merged[w] = list
			byteBy[w] = bytes
		}(w)
	}
	wg.Wait()
	var bytes int64
	for w := 0; w < workers; w++ {
		bytes += byteBy[w]
		for _, kb := range merged[w] {
			mergeVoxelBlock(out, kb)
		}
	}
	return bytes
}

func mergeVoxelBlock(out *bmat.BlockMatrix, kb keyedVoxelBlock) {
	if existing := out.Block(kb.key.I, kb.key.J); existing != nil {
		matrix.AddInto(existing.(*matrix.Dense), kb.block)
		matrix.PutDense(kb.block)
	} else {
		out.SetBlock(kb.key.I, kb.key.J, kb.block)
	}
}

// aggWorkers resolves the aggregation fan-out width for this environment.
func (e *Env) aggWorkers() int {
	if e.AggregationWorkers > 0 {
		return e.AggregationWorkers
	}
	return runtime.GOMAXPROCS(0)
}
